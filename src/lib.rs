//! # cache-conscious
//!
//! A from-scratch Rust reproduction of **“Cache-Conscious Structure
//! Layout”** (Trishul M. Chilimbi, Mark D. Hill, James R. Larus —
//! PLDI 1999): the *clustering* and *coloring* placement techniques, the
//! **`ccmorph`** transparent tree reorganizer, the **`ccmalloc`**
//! cache-conscious heap allocator, the Section 5 analytic framework, and
//! the paper's complete evaluation (tree microbenchmark, RADIANCE, VIS,
//! and the Olden suite) on a simulated memory hierarchy.
//!
//! This umbrella crate re-exports the workspace's crates:
//!
//! * [`sim`] (`cc-sim`) — two-level cache + TLB + prefetchers + a
//!   simplified out-of-order pipeline with the paper's stall attribution;
//! * [`heap`] (`cc-heap`) — simulated virtual address space, baseline
//!   `malloc`, and `ccmalloc` with its three block-selection strategies;
//! * [`core`] (`cc-core`) — clustering, coloring, and `ccmorph`;
//! * [`model`] (`cc-model`) — the analytic miss-rate and speedup framework;
//! * [`trees`] (`cc-trees`) — BSTs, B-trees, lists, chained hash tables,
//!   quadtrees on the simulated heap;
//! * [`olden`] (`cc-olden`) — treeadd, health, mst, perimeter;
//! * [`apps`] (`cc-apps`) — mini-RADIANCE and mini-VIS;
//! * [`audit`] (`cc-audit`) — static layout auditor checking the paper's
//!   clustering/coloring claims against heap snapshots and traces.
//!
//! # Quickstart
//!
//! ```
//! use cache_conscious::core::ccmorph::CcMorphParams;
//! use cache_conscious::core::cluster::Order;
//! use cache_conscious::heap::VirtualSpace;
//! use cache_conscious::sim::{MachineConfig, MemorySink};
//! use cache_conscious::trees::bst::Bst;
//! use cache_conscious::trees::BST_NODE_BYTES;
//!
//! let machine = MachineConfig::ultrasparc_e5000();
//!
//! // A binary search tree, laid out randomly (the naive heap layout)…
//! let mut tree = Bst::build_complete(100_000);
//! tree.layout_sequential(Order::Random { seed: 1 });
//! let mut naive = MemorySink::new(machine);
//! for key in (0..200_000).step_by(7) {
//!     tree.search(key, &mut naive, false);
//! }
//!
//! // …then ccmorph'ed: subtree-clustered and colored.
//! let mut vs = VirtualSpace::new(machine.page_bytes);
//! tree.morph(&mut vs, &CcMorphParams::clustering_and_coloring(&machine, BST_NODE_BYTES));
//! let mut cc = MemorySink::new(machine);
//! for key in (0..200_000).step_by(7) {
//!     tree.search(key, &mut cc, false);
//! }
//!
//! assert!(cc.memory_cycles() < naive.memory_cycles());
//! ```
//!
//! See `DESIGN.md` for the system inventory and hardware substitutions,
//! and `EXPERIMENTS.md` for paper-vs-measured results of every table and
//! figure. The `cc-bench` crate's binaries regenerate each one.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use cc_apps as apps;
pub use cc_audit as audit;
pub use cc_core as core;
pub use cc_fault as fault;
pub use cc_heap as heap;
pub use cc_model as model;
pub use cc_olden as olden;
pub use cc_sim as sim;
pub use cc_trees as trees;
