//! Deterministic parallel sweep harness for the reproduction's experiments.
//!
//! Every figure and table in this repository is a *sweep*: a grid of
//! independent simulation cells (layout scheme × trial × machine
//! configuration), each of which builds its own heap, runs its own trace,
//! and reports its own statistics. The cells share nothing — the simulated
//! machines are plain values — so they can run on as many OS threads as the
//! host offers.
//!
//! The hard requirement is *determinism*: a figure regenerated on a 96-core
//! machine must be byte-identical to one produced serially on a laptop.
//! [`Sweep::run`] guarantees that two ways:
//!
//! * **Results are ordered by cell index, not completion order.** Workers
//!   pull cell indices from a shared counter and tag each result with its
//!   index; after the scoped join the results are reassembled into input
//!   order. Thread scheduling decides only *who* computes a cell, never
//!   *what* the cell computes or where its result lands.
//! * **Randomness is seeded per cell, not per thread.** [`cell_seed`]
//!   derives an independent, well-mixed seed from `(base, cell index)`
//!   alone. A cell's RNG stream is a pure function of its coordinates, no
//!   matter which worker runs it or in what order.
//!
//! Merged totals across cells use the commutative, order-fixed
//! [`merge_cache`] / [`merge_tlb`] folds over the *ordered* results, so the
//! fleet-wide statistics are deterministic too.
//!
//! # Example
//!
//! ```
//! use cc_sweep::{cell_seed, Sweep};
//!
//! // A 2×3 grid of (scheme, trial) cells.
//! let cells: Vec<(usize, usize)> =
//!     (0..2).flat_map(|s| (0..3).map(move |t| (s, t))).collect();
//! let results = Sweep::with_threads(4).run(&cells, |i, &(scheme, trial)| {
//!     let seed = cell_seed(0xC0FFEE, i as u64);
//!     (scheme, trial, seed)
//! });
//! // Same grid, serial: byte-identical.
//! let serial = Sweep::with_threads(1).run(&cells, |i, &(scheme, trial)| {
//!     (scheme, trial, cell_seed(0xC0FFEE, i as u64))
//! });
//! assert_eq!(results, serial);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod obs;
pub mod store;

pub use store::{StoreCounters, TraceKey, TraceStore};

use cc_sim::stats::{CacheStats, TlbStats};
use std::io::Write;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The fate of one cell under the fault-isolated runners
/// ([`Sweep::run_isolated`], [`Sweep::run_checkpointed`]).
///
/// A sweep cell that panics takes down only itself: the panic is caught at
/// the cell boundary, the cell is retried (with the attempt number exposed
/// to the closure so it can reseed deterministically), and a cell that
/// exhausts its attempts is reported here instead of aborting the grid.
#[derive(Clone, Debug, PartialEq)]
pub enum CellOutcome<R> {
    /// The cell succeeded on its first attempt.
    Ok(R),
    /// The cell panicked at least once but a retry succeeded.
    Retried {
        /// The successful attempt's result.
        result: R,
        /// Total attempts consumed (≥ 2).
        attempts: u32,
    },
    /// Every attempt panicked; the cell produced no result.
    Failed {
        /// Attempts consumed (the configured maximum).
        attempts: u32,
        /// The final attempt's panic message.
        panic: String,
    },
}

impl<R> CellOutcome<R> {
    /// The cell's result, if any attempt succeeded.
    pub fn result(&self) -> Option<&R> {
        match self {
            CellOutcome::Ok(r) | CellOutcome::Retried { result: r, .. } => Some(r),
            CellOutcome::Failed { .. } => None,
        }
    }

    /// Consumes the outcome, yielding the result if any attempt succeeded.
    pub fn into_result(self) -> Option<R> {
        match self {
            CellOutcome::Ok(r) | CellOutcome::Retried { result: r, .. } => Some(r),
            CellOutcome::Failed { .. } => None,
        }
    }

    /// Attempts consumed: 1 for [`CellOutcome::Ok`], the recorded count
    /// otherwise.
    pub fn attempts(&self) -> u32 {
        match self {
            CellOutcome::Ok(_) => 1,
            CellOutcome::Retried { attempts, .. } | CellOutcome::Failed { attempts, .. } => {
                *attempts
            }
        }
    }

    /// True when no attempt succeeded.
    pub fn is_failed(&self) -> bool {
        matches!(self, CellOutcome::Failed { .. })
    }
}

/// Renders a caught panic payload as a message string.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs one cell with panic isolation and bounded deterministic retry.
///
/// `f` sees the attempt number, so a cell that wants fresh randomness on
/// retry derives it from `(cell index, attempt)` — pure coordinates again,
/// keeping replays byte-identical.
fn isolate_cell<C, R, F>(i: usize, max_attempts: u32, f: &F, cell: &C) -> CellOutcome<R>
where
    F: Fn(usize, u32, &C) -> R,
{
    let mut last = String::new();
    for attempt in 0..max_attempts.max(1) {
        // AssertUnwindSafe: the closure only borrows the shared grid and
        // the caller's `Fn` environment, which the `run` contract already
        // requires to be free of cross-cell mutable state.
        match catch_unwind(AssertUnwindSafe(|| f(i, attempt, cell))) {
            Ok(result) if attempt == 0 => return CellOutcome::Ok(result),
            Ok(result) => {
                return CellOutcome::Retried {
                    result,
                    attempts: attempt + 1,
                }
            }
            Err(payload) => last = panic_message(payload),
        }
    }
    CellOutcome::Failed {
        attempts: max_attempts.max(1),
        panic: last,
    }
}

/// A parallel runner for grids of independent simulation cells.
///
/// See the [module docs](self) for the determinism contract.
#[derive(Clone, Copy, Debug)]
pub struct Sweep {
    threads: usize,
}

impl Sweep {
    /// A sweep sized to the host's available parallelism (at least one
    /// thread).
    pub fn new() -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Sweep { threads }
    }

    /// A sweep with an explicit worker count (clamped to at least 1).
    pub fn with_threads(threads: usize) -> Self {
        Sweep {
            threads: threads.max(1),
        }
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// How many replay shards each of `cells` cells should use so the
    /// grid saturates the host without oversubscribing it: when there are
    /// at least as many cells as worker threads, cell-level parallelism
    /// already fills the machine and each cell replays serially (one
    /// shard); when cells are scarce, the leftover threads are split
    /// evenly across them (capped at 8 — the differential suite's tested
    /// range and past the paper-machine geometries' knee).
    pub fn intra_cell_shards(&self, cells: usize) -> usize {
        if cells == 0 || self.threads <= cells {
            1
        } else {
            (self.threads / cells).clamp(1, 8)
        }
    }

    /// Runs `f` over every cell, in parallel, returning results in cell
    /// order (`results[i]` corresponds to `cells[i]` — always, regardless
    /// of scheduling).
    ///
    /// `f` receives the cell's index alongside the cell so it can derive
    /// the cell's seed via [`cell_seed`]; it must not depend on any other
    /// mutable shared state if byte-identical reruns are wanted.
    ///
    /// A panic in any cell propagates after all workers stop.
    pub fn run<C, R, F>(&self, cells: &[C], f: F) -> Vec<R>
    where
        C: Sync,
        R: Send,
        F: Fn(usize, &C) -> R + Sync,
    {
        let n = cells.len();
        let workers = self.threads.min(n.max(1));
        if workers <= 1 {
            return cells.iter().enumerate().map(|(i, c)| f(i, c)).collect();
        }

        let next = AtomicUsize::new(0);
        let per_worker: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut mine = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            mine.push((i, f(i, &cells[i])));
                        }
                        mine
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("sweep worker panicked"))
                .collect()
        });

        // Reassemble into cell order: scheduling chose who computed each
        // cell, but the output is indexed by the grid.
        let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
        for (i, r) in per_worker.into_iter().flatten() {
            debug_assert!(slots[i].is_none(), "cell {i} ran twice");
            slots[i] = Some(r);
        }
        slots
            .into_iter()
            .map(|s| s.expect("every cell ran exactly once"))
            .collect()
    }

    /// Like [`Sweep::run`], but each cell runs behind a panic boundary with
    /// up to `max_attempts` deterministic attempts (clamped to at least 1).
    ///
    /// `f` receives `(cell index, attempt, cell)`; a cell wanting fresh
    /// randomness per retry should fold the attempt number into its seed
    /// (e.g. `cell_seed(base ^ u64::from(attempt), i as u64)`) so replays
    /// stay byte-identical. A cell that panics on every attempt yields
    /// [`CellOutcome::Failed`] in its slot — neighbouring cells are
    /// untouched and the grid completes.
    pub fn run_isolated<C, R, F>(&self, cells: &[C], max_attempts: u32, f: F) -> Vec<CellOutcome<R>>
    where
        C: Sync,
        R: Send,
        F: Fn(usize, u32, &C) -> R + Sync,
    {
        self.run(cells, |i, c| isolate_cell(i, max_attempts, &f, c))
    }

    /// [`Sweep::run_isolated`] with crash-durable progress: each completed
    /// cell is appended to the checkpoint file at `path` as it finishes,
    /// and a rerun over the same grid resumes from whatever the file holds
    /// instead of recomputing it.
    ///
    /// The file is line-oriented: a header `ccsweep v1 cells=<n> tag=<tag>`
    /// followed by one `<index>\t<payload>` line per completed cell, where
    /// `payload` is `encode`'s single-line rendering of the result
    /// (newlines, tabs, and backslashes are escaped). On resume the header
    /// must match exactly — a different grid size or tag starts fresh — and
    /// any line that fails to parse or `decode` (a torn write from a crash)
    /// is simply recomputed. Failed cells are never checkpointed, so a
    /// resume retries them. Checkpoint *writes* are best-effort (an
    /// unwritable disk degrades durability, not results); only opening the
    /// file reports an error.
    ///
    /// Resumed cells are reported as [`CellOutcome::Ok`]: the retry history
    /// of a previous process is not persisted.
    #[allow(clippy::too_many_arguments)]
    pub fn run_checkpointed<C, R, F, E, D>(
        &self,
        cells: &[C],
        max_attempts: u32,
        path: &Path,
        tag: &str,
        f: F,
        encode: E,
        decode: D,
    ) -> std::io::Result<Vec<CellOutcome<R>>>
    where
        C: Sync,
        R: Send,
        F: Fn(usize, u32, &C) -> R + Sync,
        E: Fn(&R) -> String + Sync,
        D: Fn(&str) -> Option<R>,
    {
        let n = cells.len();
        let header = format!("ccsweep v1 cells={n} tag={tag}");
        let mut resumed: Vec<Option<R>> = (0..n).map(|_| None).collect();
        let mut valid_prior = false;
        if let Ok(text) = std::fs::read_to_string(path) {
            let mut lines = text.lines();
            if lines.next() == Some(header.as_str()) {
                valid_prior = true;
                for line in lines {
                    let Some((idx, payload)) = line.split_once('\t') else {
                        continue;
                    };
                    let Ok(idx) = idx.parse::<usize>() else {
                        continue;
                    };
                    if idx >= n {
                        continue;
                    }
                    if let Some(r) = unescape(payload).as_deref().and_then(&decode) {
                        resumed[idx] = Some(r);
                    }
                }
            }
        }

        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .truncate(false)
            .open(path)?;
        if !valid_prior {
            // Stale header (or no file): restart the log from scratch.
            file.set_len(0)?;
            writeln!(file, "{header}")?;
            file.flush()?;
        }
        let file = Mutex::new(file);

        let pending: Vec<usize> = (0..n).filter(|&i| resumed[i].is_none()).collect();
        let fresh: Vec<(usize, CellOutcome<R>)> = self.run(&pending, |_, &idx| {
            let outcome = isolate_cell(idx, max_attempts, &f, &cells[idx]);
            if let Some(r) = outcome.result() {
                let line = format!("{idx}\t{}\n", escape(&encode(r)));
                let mut guard = file.lock().expect("checkpoint writer poisoned");
                let _ = guard
                    .write_all(line.as_bytes())
                    .and_then(|()| guard.flush());
            }
            (idx, outcome)
        });

        let mut slots: Vec<Option<CellOutcome<R>>> = resumed
            .into_iter()
            .map(|r| r.map(CellOutcome::Ok))
            .collect();
        for (idx, outcome) in fresh {
            slots[idx] = Some(outcome);
        }
        Ok(slots
            .into_iter()
            .map(|s| s.expect("every cell resumed or ran"))
            .collect())
    }
}

impl Default for Sweep {
    fn default() -> Self {
        Self::new()
    }
}

/// Escapes a checkpoint payload onto one line.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

/// Inverse of [`escape`]; `None` on a malformed (torn) payload.
fn unescape(s: &str) -> Option<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next()? {
            '\\' => out.push('\\'),
            'n' => out.push('\n'),
            't' => out.push('\t'),
            'r' => out.push('\r'),
            _ => return None,
        }
    }
    Some(out)
}

/// Derives the RNG seed for one sweep cell from the experiment's base seed
/// and the cell's grid index — a pure function of the coordinates, so the
/// stream a cell sees is independent of thread assignment and completion
/// order.
///
/// The mix is SplitMix64's finalizer over `base ⊕ (golden-ratio stride ×
/// (index+1))`: neighbouring indices land in statistically unrelated
/// streams, and distinct bases give disjoint families.
pub fn cell_seed(base: u64, cell: u64) -> u64 {
    let mut z = base ^ cell.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Folds per-cell cache statistics into a fleet total (order-fixed, so the
/// result is deterministic given ordered sweep output).
pub fn merge_cache<'a>(stats: impl IntoIterator<Item = &'a CacheStats>) -> CacheStats {
    let mut total = CacheStats::new();
    for s in stats {
        total.merge(s);
    }
    total
}

/// Folds per-cell TLB statistics into a fleet total.
pub fn merge_tlb<'a>(stats: impl IntoIterator<Item = &'a TlbStats>) -> TlbStats {
    let mut total = TlbStats::new();
    for s in stats {
        total.merge(s);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_cell_order() {
        let cells: Vec<usize> = (0..100).collect();
        let out = Sweep::with_threads(8).run(&cells, |i, &c| {
            assert_eq!(i, c);
            c * 2
        });
        assert_eq!(out, (0..100).map(|c| c * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_grid() {
        let out = Sweep::with_threads(4).run(&[] as &[u32], |_, &c| c);
        assert!(out.is_empty());
    }

    #[test]
    fn single_cell() {
        let out = Sweep::new().run(&[7u32], |i, &c| (i, c));
        assert_eq!(out, vec![(0, 7)]);
    }

    #[test]
    fn seeds_are_index_pure_and_spread() {
        assert_eq!(cell_seed(1, 0), cell_seed(1, 0));
        assert_ne!(cell_seed(1, 0), cell_seed(1, 1));
        assert_ne!(cell_seed(1, 0), cell_seed(2, 0));
        // No trivial collisions across a figure-sized grid.
        let seeds: std::collections::HashSet<u64> =
            (0..1024).map(|i| cell_seed(0xA11, i)).collect();
        assert_eq!(seeds.len(), 1024);
    }

    #[test]
    fn worker_count_clamps() {
        assert_eq!(Sweep::with_threads(0).threads(), 1);
        assert!(Sweep::default().threads() >= 1);
    }

    /// Silences the default panic hook while `f` runs (the isolation tests
    /// inject panics on purpose; their messages are noise).
    fn with_quiet_panics<T>(f: impl FnOnce() -> T) -> T {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let out = f();
        std::panic::set_hook(prev);
        out
    }

    fn tmp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("ccsweep-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn run_isolated_retries_and_isolates() {
        let cells: Vec<u32> = (0..10).collect();
        let out = with_quiet_panics(|| {
            Sweep::with_threads(4).run_isolated(&cells, 3, |i, attempt, &c| {
                if c == 3 {
                    panic!("injected: cell {i} terminally poisoned");
                }
                if c % 4 == 1 && attempt == 0 {
                    panic!("injected: transient fault");
                }
                c * 10
            })
        });
        for (i, outcome) in out.iter().enumerate() {
            let c = cells[i];
            if c == 3 {
                assert_eq!(
                    outcome,
                    &CellOutcome::Failed {
                        attempts: 3,
                        panic: "injected: cell 3 terminally poisoned".into(),
                    }
                );
                assert!(outcome.result().is_none());
            } else if c % 4 == 1 {
                assert_eq!(
                    outcome,
                    &CellOutcome::Retried {
                        result: c * 10,
                        attempts: 2,
                    }
                );
            } else {
                assert_eq!(outcome, &CellOutcome::Ok(c * 10));
            }
        }
    }

    #[test]
    fn checkpoint_escaping_roundtrips() {
        for s in [
            "",
            "plain",
            "tab\there",
            "line\nbreak",
            "back\\slash",
            "\r\n\t\\",
        ] {
            assert_eq!(unescape(&escape(s)).as_deref(), Some(s));
        }
        assert_eq!(unescape("bad\\q"), None);
        assert_eq!(unescape("trailing\\"), None);
    }

    #[test]
    fn checkpoint_resumes_completed_cells() {
        let path = tmp_path("resume");
        let _ = std::fs::remove_file(&path);
        let cells: Vec<u32> = (0..8).collect();
        let enc = |r: &u32| r.to_string();
        let dec = |s: &str| s.parse::<u32>().ok();
        let first = Sweep::with_threads(2)
            .run_checkpointed(&cells, 1, &path, "t", |_, _, &c| c * 3, enc, dec)
            .unwrap();
        assert_eq!(
            first,
            cells
                .iter()
                .map(|&c| CellOutcome::Ok(c * 3))
                .collect::<Vec<_>>()
        );
        // Resume over the same grid: no cell may recompute.
        let second = with_quiet_panics(|| {
            Sweep::with_threads(2)
                .run_checkpointed(
                    &cells,
                    1,
                    &path,
                    "t",
                    |i, _, _| -> u32 { panic!("cell {i} recomputed") },
                    enc,
                    dec,
                )
                .unwrap()
        });
        assert_eq!(second, first);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn stale_checkpoint_header_starts_fresh() {
        let path = tmp_path("stale");
        std::fs::write(&path, "ccsweep v1 cells=99 tag=other\n0\t42\n").unwrap();
        let cells: Vec<u32> = (0..3).collect();
        let out = Sweep::with_threads(1)
            .run_checkpointed(
                &cells,
                1,
                &path,
                "mine",
                |_, _, &c| c + 1,
                |r| r.to_string(),
                |s| s.parse().ok(),
            )
            .unwrap();
        assert_eq!(
            out,
            vec![CellOutcome::Ok(1), CellOutcome::Ok(2), CellOutcome::Ok(3)]
        );
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("ccsweep v1 cells=3 tag=mine\n"), "{text}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_checkpoint_lines_are_recomputed() {
        let path = tmp_path("torn");
        // Cell 0's line is good; cell 1's has a bad escape (a torn write);
        // cell 2's payload fails to decode.
        std::fs::write(
            &path,
            "ccsweep v1 cells=3 tag=t\n0\t10\n1\t1\\q\n2\tnot-a-number\n",
        )
        .unwrap();
        let recomputed = Mutex::new(Vec::new());
        let cells: Vec<u32> = (0..3).collect();
        let out = Sweep::with_threads(1)
            .run_checkpointed(
                &cells,
                1,
                &path,
                "t",
                |i, _, &c| {
                    recomputed.lock().unwrap().push(i);
                    c * 10
                },
                |r| r.to_string(),
                |s| s.parse().ok(),
            )
            .unwrap();
        assert_eq!(
            out,
            vec![
                CellOutcome::Ok(10),
                CellOutcome::Ok(10),
                CellOutcome::Ok(20)
            ]
        );
        assert_eq!(*recomputed.lock().unwrap(), vec![1, 2]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn failed_cells_are_not_checkpointed_and_retry_on_resume() {
        let path = tmp_path("failed");
        let _ = std::fs::remove_file(&path);
        let cells: Vec<u32> = (0..4).collect();
        let enc = |r: &u32| r.to_string();
        let dec = |s: &str| s.parse::<u32>().ok();
        let first = with_quiet_panics(|| {
            Sweep::with_threads(1)
                .run_checkpointed(
                    &cells,
                    2,
                    &path,
                    "t",
                    |_, _, &c| {
                        if c == 2 {
                            panic!("injected: poisoned cell")
                        }
                        c
                    },
                    enc,
                    dec,
                )
                .unwrap()
        });
        assert!(first[2].is_failed());
        assert_eq!(first[2].attempts(), 2);
        // Resume with the fault gone: only the failed cell reruns.
        let reran = Mutex::new(Vec::new());
        let second = Sweep::with_threads(1)
            .run_checkpointed(
                &cells,
                2,
                &path,
                "t",
                |i, _, &c| {
                    reran.lock().unwrap().push(i);
                    c
                },
                enc,
                dec,
            )
            .unwrap();
        assert_eq!(*reran.lock().unwrap(), vec![2]);
        assert_eq!(second[2], CellOutcome::Ok(2));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn merge_folds_counters() {
        use cc_sim::cache::{Cache, WritePolicy};
        use cc_sim::CacheGeometry;
        let mut a = Cache::new(CacheGeometry::new(4, 16, 1), WritePolicy::WriteBack);
        let mut b = a.clone();
        a.access(0x00, false);
        a.access(0x00, false);
        b.access(0x40, false);
        let total = merge_cache([&a.stats(), &b.stats()]);
        assert_eq!(total.accesses(), 3);
        assert_eq!(total.misses(), 2);
        assert_eq!(total.hits(), 1);
    }
}
