//! Deterministic parallel sweep harness for the reproduction's experiments.
//!
//! Every figure and table in this repository is a *sweep*: a grid of
//! independent simulation cells (layout scheme × trial × machine
//! configuration), each of which builds its own heap, runs its own trace,
//! and reports its own statistics. The cells share nothing — the simulated
//! machines are plain values — so they can run on as many OS threads as the
//! host offers.
//!
//! The hard requirement is *determinism*: a figure regenerated on a 96-core
//! machine must be byte-identical to one produced serially on a laptop.
//! [`Sweep::run`] guarantees that two ways:
//!
//! * **Results are ordered by cell index, not completion order.** Workers
//!   pull cell indices from a shared counter and tag each result with its
//!   index; after the scoped join the results are reassembled into input
//!   order. Thread scheduling decides only *who* computes a cell, never
//!   *what* the cell computes or where its result lands.
//! * **Randomness is seeded per cell, not per thread.** [`cell_seed`]
//!   derives an independent, well-mixed seed from `(base, cell index)`
//!   alone. A cell's RNG stream is a pure function of its coordinates, no
//!   matter which worker runs it or in what order.
//!
//! Merged totals across cells use the commutative, order-fixed
//! [`merge_cache`] / [`merge_tlb`] folds over the *ordered* results, so the
//! fleet-wide statistics are deterministic too.
//!
//! # Example
//!
//! ```
//! use cc_sweep::{cell_seed, Sweep};
//!
//! // A 2×3 grid of (scheme, trial) cells.
//! let cells: Vec<(usize, usize)> =
//!     (0..2).flat_map(|s| (0..3).map(move |t| (s, t))).collect();
//! let results = Sweep::with_threads(4).run(&cells, |i, &(scheme, trial)| {
//!     let seed = cell_seed(0xC0FFEE, i as u64);
//!     (scheme, trial, seed)
//! });
//! // Same grid, serial: byte-identical.
//! let serial = Sweep::with_threads(1).run(&cells, |i, &(scheme, trial)| {
//!     (scheme, trial, cell_seed(0xC0FFEE, i as u64))
//! });
//! assert_eq!(results, serial);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use cc_sim::stats::{CacheStats, TlbStats};
use std::sync::atomic::{AtomicUsize, Ordering};

/// A parallel runner for grids of independent simulation cells.
///
/// See the [module docs](self) for the determinism contract.
#[derive(Clone, Copy, Debug)]
pub struct Sweep {
    threads: usize,
}

impl Sweep {
    /// A sweep sized to the host's available parallelism (at least one
    /// thread).
    pub fn new() -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Sweep { threads }
    }

    /// A sweep with an explicit worker count (clamped to at least 1).
    pub fn with_threads(threads: usize) -> Self {
        Sweep {
            threads: threads.max(1),
        }
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f` over every cell, in parallel, returning results in cell
    /// order (`results[i]` corresponds to `cells[i]` — always, regardless
    /// of scheduling).
    ///
    /// `f` receives the cell's index alongside the cell so it can derive
    /// the cell's seed via [`cell_seed`]; it must not depend on any other
    /// mutable shared state if byte-identical reruns are wanted.
    ///
    /// A panic in any cell propagates after all workers stop.
    pub fn run<C, R, F>(&self, cells: &[C], f: F) -> Vec<R>
    where
        C: Sync,
        R: Send,
        F: Fn(usize, &C) -> R + Sync,
    {
        let n = cells.len();
        let workers = self.threads.min(n.max(1));
        if workers <= 1 {
            return cells.iter().enumerate().map(|(i, c)| f(i, c)).collect();
        }

        let next = AtomicUsize::new(0);
        let per_worker: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut mine = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            mine.push((i, f(i, &cells[i])));
                        }
                        mine
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("sweep worker panicked"))
                .collect()
        });

        // Reassemble into cell order: scheduling chose who computed each
        // cell, but the output is indexed by the grid.
        let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
        for (i, r) in per_worker.into_iter().flatten() {
            debug_assert!(slots[i].is_none(), "cell {i} ran twice");
            slots[i] = Some(r);
        }
        slots
            .into_iter()
            .map(|s| s.expect("every cell ran exactly once"))
            .collect()
    }
}

impl Default for Sweep {
    fn default() -> Self {
        Self::new()
    }
}

/// Derives the RNG seed for one sweep cell from the experiment's base seed
/// and the cell's grid index — a pure function of the coordinates, so the
/// stream a cell sees is independent of thread assignment and completion
/// order.
///
/// The mix is SplitMix64's finalizer over `base ⊕ (golden-ratio stride ×
/// (index+1))`: neighbouring indices land in statistically unrelated
/// streams, and distinct bases give disjoint families.
pub fn cell_seed(base: u64, cell: u64) -> u64 {
    let mut z = base ^ cell.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Folds per-cell cache statistics into a fleet total (order-fixed, so the
/// result is deterministic given ordered sweep output).
pub fn merge_cache<'a>(stats: impl IntoIterator<Item = &'a CacheStats>) -> CacheStats {
    let mut total = CacheStats::new();
    for s in stats {
        total.merge(s);
    }
    total
}

/// Folds per-cell TLB statistics into a fleet total.
pub fn merge_tlb<'a>(stats: impl IntoIterator<Item = &'a TlbStats>) -> TlbStats {
    let mut total = TlbStats::new();
    for s in stats {
        total.merge(s);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_cell_order() {
        let cells: Vec<usize> = (0..100).collect();
        let out = Sweep::with_threads(8).run(&cells, |i, &c| {
            assert_eq!(i, c);
            c * 2
        });
        assert_eq!(out, (0..100).map(|c| c * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_grid() {
        let out = Sweep::with_threads(4).run(&[] as &[u32], |_, &c| c);
        assert!(out.is_empty());
    }

    #[test]
    fn single_cell() {
        let out = Sweep::new().run(&[7u32], |i, &c| (i, c));
        assert_eq!(out, vec![(0, 7)]);
    }

    #[test]
    fn seeds_are_index_pure_and_spread() {
        assert_eq!(cell_seed(1, 0), cell_seed(1, 0));
        assert_ne!(cell_seed(1, 0), cell_seed(1, 1));
        assert_ne!(cell_seed(1, 0), cell_seed(2, 0));
        // No trivial collisions across a figure-sized grid.
        let seeds: std::collections::HashSet<u64> =
            (0..1024).map(|i| cell_seed(0xA11, i)).collect();
        assert_eq!(seeds.len(), 1024);
    }

    #[test]
    fn worker_count_clamps() {
        assert_eq!(Sweep::with_threads(0).threads(), 1);
        assert!(Sweep::default().threads() >= 1);
    }

    #[test]
    fn merge_folds_counters() {
        use cc_sim::cache::{Cache, WritePolicy};
        use cc_sim::CacheGeometry;
        let mut a = Cache::new(CacheGeometry::new(4, 16, 1), WritePolicy::WriteBack);
        let mut b = a.clone();
        a.access(0x00, false);
        a.access(0x00, false);
        b.access(0x40, false);
        let total = merge_cache([&a.stats(), &b.stats()]);
        assert_eq!(total.accesses(), 3);
        assert_eq!(total.misses(), 2);
        assert_eq!(total.hits(), 1);
    }
}
