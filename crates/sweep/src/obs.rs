//! Exports sweep-layer counters into a [`cc_obs::MetricsRegistry`].
//!
//! The sweep crate owns two families of degradation counters: the
//! trace store's activity ([`StoreCounters`]) and the fault-isolated
//! runners' per-cell outcomes ([`CellOutcome`]). Both flatten into the
//! unified metrics snapshot here so `cc-profile` and the figure
//! binaries report them next to the heap's and the observer's own
//! counters, under one byte-stable JSON encoding.

use cc_obs::MetricsRegistry;

use crate::store::StoreCounters;
use crate::CellOutcome;

/// Copies every [`StoreCounters`] field into `registry` as
/// `{prefix}.{counter}`. All keys are written even when zero so
/// snapshots diff cleanly across runs.
pub fn export_store(registry: &mut MetricsRegistry, prefix: &str, counters: &StoreCounters) {
    registry.set(&format!("{prefix}.hits"), counters.hits);
    registry.set(&format!("{prefix}.misses"), counters.misses);
    registry.set(&format!("{prefix}.disk_hits"), counters.disk_hits);
    registry.set(&format!("{prefix}.generations"), counters.generations);
    registry.set(&format!("{prefix}.evictions"), counters.evictions);
    registry.set(&format!("{prefix}.oversized"), counters.oversized);
    registry.set(&format!("{prefix}.disk_errors"), counters.disk_errors);
    registry.set(&format!("{prefix}.disk_corrupt"), counters.disk_corrupt);
    registry.set(&format!("{prefix}.sampled_hits"), counters.sampled_hits);
    registry.set(&format!("{prefix}.sampled_misses"), counters.sampled_misses);
    registry.set(&format!("{prefix}.sampled_puts"), counters.sampled_puts);
}

/// Summarizes a grid of [`CellOutcome`]s into `registry`:
///
/// * `{prefix}.cells` — total cells;
/// * `{prefix}.retried_cells` — cells that needed more than one attempt
///   but eventually succeeded;
/// * `{prefix}.failed_cells` — cells that exhausted every attempt;
/// * `{prefix}.extra_attempts` — attempts beyond the first, summed over
///   all cells (the retry bill).
pub fn export_outcomes<R>(
    registry: &mut MetricsRegistry,
    prefix: &str,
    outcomes: &[CellOutcome<R>],
) {
    let mut retried = 0u64;
    let mut failed = 0u64;
    let mut extra = 0u64;
    for o in outcomes {
        match o {
            CellOutcome::Ok(_) => {}
            CellOutcome::Retried { .. } => retried += 1,
            CellOutcome::Failed { .. } => failed += 1,
        }
        extra += u64::from(o.attempts()) - 1;
    }
    registry.set(&format!("{prefix}.cells"), outcomes.len() as u64);
    registry.set(&format!("{prefix}.retried_cells"), retried);
    registry.set(&format!("{prefix}.failed_cells"), failed);
    registry.set(&format!("{prefix}.extra_attempts"), extra);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_counters_flatten_under_prefix() {
        let counters = StoreCounters {
            hits: 5,
            misses: 2,
            disk_hits: 1,
            generations: 1,
            evictions: 3,
            oversized: 4,
            disk_errors: 6,
            disk_corrupt: 7,
            sampled_hits: 8,
            sampled_misses: 9,
            sampled_puts: 10,
        };
        let mut reg = MetricsRegistry::new();
        export_store(&mut reg, "store", &counters);
        assert_eq!(reg.get("store.hits"), Some(5));
        assert_eq!(reg.get("store.sampled_hits"), Some(8));
        assert_eq!(reg.get("store.sampled_puts"), Some(10));
        assert_eq!(reg.get("store.oversized"), Some(4));
        assert_eq!(reg.get("store.generations"), Some(1));
        assert_eq!(reg.get("store.disk_errors"), Some(6));
        assert_eq!(reg.get("store.disk_corrupt"), Some(7));
    }

    #[test]
    fn outcomes_summarize_retries_and_failures() {
        let outcomes: Vec<CellOutcome<u32>> = vec![
            CellOutcome::Ok(1),
            CellOutcome::Retried {
                result: 2,
                attempts: 3,
            },
            CellOutcome::Failed {
                attempts: 4,
                panic: "boom".into(),
            },
        ];
        let mut reg = MetricsRegistry::new();
        export_outcomes(&mut reg, "sweep", &outcomes);
        assert_eq!(reg.get("sweep.cells"), Some(3));
        assert_eq!(reg.get("sweep.retried_cells"), Some(1));
        assert_eq!(reg.get("sweep.failed_cells"), Some(1));
        assert_eq!(reg.get("sweep.extra_attempts"), Some(2 + 3));
    }
}
