//! Content-addressed trace store: generate a trace once, replay it many
//! times.
//!
//! Sweep cells are pure functions of their coordinates, and so are the
//! traces they replay: the event stream is fully determined by (workload,
//! layout, machine geometry, seed). Yet before this store every figure
//! cell regenerated its trace from scratch — tree construction, morphing,
//! and event emission dominating cells whose *replay* the sharded engine
//! has made cheap. The store keys each trace by a [`TraceKey`] digest of
//! those coordinates and hands back a shared [`Arc`] of packed
//! [`TraceBuf`]s:
//!
//! * **In-memory LRU with a byte budget.** Entries are charged
//!   [`TraceBuf::approx_bytes`]; when an insert pushes the total over
//!   budget, least-recently-used entries (never the one just returned)
//!   are dropped and counted. Figure sweeps whose cells share a machine
//!   and workload hit the same entry instead of regenerating.
//! * **Optional on-disk tier.** When constructed [`TraceStore::from_env`]
//!   with `CC_TRACE_CACHE=<dir>` set, misses fall through to
//!   `<dir>/<key:016x>.cctrace` files in the same hex-stable ASCII
//!   encoding as sweep checkpoints ([`TraceBuf::encode_compact`]), so
//!   warm traces survive process restarts and `fig5`-sized reruns skip
//!   generation entirely. The tier degrades, never fails: a file that
//!   fails to decode is counted (`disk_corrupt`), reported on stderr, and
//!   regenerated — never trusted — and an unusable directory or an I/O
//!   error (bad mount, revoked permissions) is counted (`disk_errors`),
//!   reported once, and latches the tier off, leaving a memory-only store
//!   whose results are bit-identical to the healthy path.
//! * **Deterministic generation.** The generator runs under the store
//!   lock: a key is generated exactly once per process no matter how many
//!   sweep workers race for it, and the counters
//!   ([`TraceStore::counters`]) make "the warm cell skipped generation"
//!   an assertable fact rather than a hope.

use cc_sim::cache::WritePolicy;
use cc_sim::{CacheGeometry, MachineConfig, SplitPool, TraceBuf};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};

/// SplitMix64's finalizer: the same mix `cell_seed` uses.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A content address for one trace: an order-sensitive fold of the
/// coordinates that determine the event stream — a workload tag, the
/// machine geometry (block/set/associativity/policy per level, latencies,
/// pages, TLB size), and any free parameters (tree size, search count,
/// seed, segment index).
///
/// Two cells that fold the same coordinates get the same key and share
/// one generated trace; any differing coordinate lands elsewhere in the
/// 64-bit space.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TraceKey {
    h: u64,
}

impl TraceKey {
    /// Starts a key from a workload tag (e.g. `"fig5-ctree"`).
    pub fn new(tag: &str) -> Self {
        let mut key = TraceKey { h: 0xCC1A_0E57 };
        for b in tag.as_bytes() {
            key = key.fold(u64::from(*b));
        }
        key.fold(tag.len() as u64)
    }

    /// Folds one 64-bit coordinate into the key.
    pub fn fold(self, v: u64) -> Self {
        TraceKey {
            h: mix(self.h ^ v.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// Folds every geometry-relevant field of `machine`: anything that
    /// changes the *trace* (not just its replay) must be here. Block and
    /// set geometry change event decomposition in packed buffers is
    /// address-level, so the full machine shape is folded conservatively.
    pub fn machine(self, machine: &MachineConfig) -> Self {
        let geo =
            |k: Self, g: &CacheGeometry| k.fold(g.sets()).fold(g.block_bytes()).fold(g.assoc());
        let policy = |p: WritePolicy| match p {
            WritePolicy::WriteThrough => 0u64,
            WritePolicy::WriteBack => 1u64,
        };
        geo(geo(self, &machine.l1), &machine.l2)
            .fold(policy(machine.l1_policy))
            .fold(policy(machine.l2_policy))
            .fold(machine.latency.l1_hit)
            .fold(machine.latency.l1_miss)
            .fold(machine.latency.l2_miss)
            .fold(machine.latency.tlb_miss)
            .fold(machine.page_bytes)
            .fold(machine.tlb_entries as u64)
            .fold(machine.clock_mhz)
    }

    /// The finished 64-bit content address.
    pub fn value(&self) -> u64 {
        self.h
    }
}

/// One on-disk lookup's outcome, separating the three failure shapes the
/// caller treats differently: absent (plain miss), mangled (count and
/// regenerate), unreadable (latch the tier off).
enum DiskRead {
    Hit(Arc<Vec<TraceBuf>>),
    Miss,
    Corrupt,
    IoError(std::io::Error),
}

/// Observable store activity (monotonic over the store's life).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreCounters {
    /// Requests served from the in-memory tier.
    pub hits: u64,
    /// Requests that missed the in-memory tier.
    pub misses: u64,
    /// Misses served by decoding an on-disk `.cctrace` file.
    pub disk_hits: u64,
    /// Misses that ran the generator closure.
    pub generations: u64,
    /// Entries dropped by the byte-budget LRU.
    pub evictions: u64,
    /// Generated traces larger than the whole budget: returned to the
    /// caller but never cached (caching one would pin it resident while
    /// it evicted everything else).
    pub oversized: u64,
    /// Disk-tier I/O failures: an unusable cache directory at
    /// construction, or a read/write error at runtime. The first runtime
    /// failure disables the tier for the store's life — the store
    /// degrades to memory-only rather than failing requests.
    pub disk_errors: u64,
    /// On-disk files that failed to decode: treated as misses, never
    /// trusted, and regenerated.
    pub disk_corrupt: u64,
    /// Sampled-result lookups served from the side cache.
    pub sampled_hits: u64,
    /// Sampled-result lookups that missed.
    pub sampled_misses: u64,
    /// Sampled results stored.
    pub sampled_puts: u64,
}

struct Entry {
    bufs: Arc<Vec<TraceBuf>>,
    bytes: usize,
    stamp: u64,
}

struct StoreInner {
    map: HashMap<u64, Entry>,
    bytes: usize,
    stamp: u64,
    counters: StoreCounters,
    /// Sampled-simulation results (opaque encoded strings) keyed by a
    /// [`TraceKey`] that folds the *sampling configuration* on top of the
    /// trace coordinates — a couple hundred bytes each, so a count-capped
    /// LRU rather than a byte-budgeted one.
    sampled: HashMap<u64, (Arc<str>, u64)>,
}

/// The content-addressed trace store. Cheap to share behind an `Arc`;
/// all methods take `&self`.
pub struct TraceStore {
    inner: Mutex<StoreInner>,
    budget: usize,
    disk: Option<PathBuf>,
    /// Latched by the first runtime disk failure: the tier is skipped
    /// from then on (degraded to memory-only), so one bad mount surfaces
    /// as one counter bump and one stderr line, not an error per miss.
    disk_down: std::sync::atomic::AtomicBool,
    /// Reusable shard-split buffers, pooled at the same scope as the
    /// traces themselves: a sweep that replays many cached traces splits
    /// each one into lanes, and recycling those lane vectors here makes
    /// the steady-state split allocation-free
    /// ([`cc_sim::ShardedTrace::split_pooled`]).
    split_pool: SplitPool,
}

impl TraceStore {
    /// Default in-memory byte budget: enough for every segment-sized
    /// trace a quick figure run touches, far below a full `fig5` trace.
    pub const DEFAULT_BUDGET: usize = 256 << 20;

    /// A memory-only store with `budget` bytes of trace residency.
    pub fn with_budget(budget: usize) -> Self {
        TraceStore {
            inner: Mutex::new(StoreInner {
                map: HashMap::new(),
                bytes: 0,
                stamp: 0,
                counters: StoreCounters::default(),
                sampled: HashMap::new(),
            }),
            budget: budget.max(1),
            disk: None,
            disk_down: std::sync::atomic::AtomicBool::new(false),
            split_pool: SplitPool::new(),
        }
    }

    /// The store's shared shard-split buffer pool. Pass it to
    /// [`cc_sim::ShardedTrace::split_pooled`] /
    /// [`cc_sim::ShardedReplayer::split_pooled`] and return consumed
    /// splits with [`SplitPool::recycle`]; every sweep worker sharing
    /// this store then shares one warm set of lane buffers.
    pub fn split_pool(&self) -> &SplitPool {
        &self.split_pool
    }

    /// Adds an on-disk tier rooted at `dir` (created if absent). An
    /// unusable directory — unwritable, or an existing non-directory —
    /// degrades the store to memory-only: the failure is counted
    /// ([`StoreCounters::disk_errors`]) and reported on stderr once, and
    /// every request still succeeds from the memory tier.
    pub fn with_disk(mut self, dir: PathBuf) -> Self {
        match std::fs::create_dir_all(&dir) {
            Ok(()) => self.disk = Some(dir),
            Err(e) => {
                eprintln!(
                    "cc-sweep: trace cache directory {} is unusable ({e}); \
                     continuing with the memory tier only",
                    dir.display()
                );
                self.inner
                    .lock()
                    .expect("trace store poisoned")
                    .counters
                    .disk_errors += 1;
                self.disk = None;
            }
        }
        self
    }

    /// The standard store: [`TraceStore::DEFAULT_BUDGET`] of memory, plus
    /// the on-disk tier iff `CC_TRACE_CACHE` names a directory.
    pub fn from_env() -> Self {
        let store = TraceStore::with_budget(Self::DEFAULT_BUDGET);
        match std::env::var_os("CC_TRACE_CACHE") {
            Some(dir) if !dir.is_empty() => store.with_disk(PathBuf::from(dir)),
            _ => store,
        }
    }

    /// Whether an on-disk tier is active.
    pub fn has_disk(&self) -> bool {
        self.disk.is_some()
    }

    /// The trace for `key`, generating it with `generate` only on a cold
    /// miss (both tiers empty). The generator runs under the store lock,
    /// so each key is generated at most once per process; determinism of
    /// the *content* is the caller's contract (the generator must be a
    /// pure function of the key's coordinates).
    pub fn get_or_generate(
        &self,
        key: TraceKey,
        generate: impl FnOnce() -> Vec<TraceBuf>,
    ) -> Arc<Vec<TraceBuf>> {
        let k = key.value();
        let mut inner = self.inner.lock().expect("trace store poisoned");
        inner.stamp += 1;
        let stamp = inner.stamp;
        if let Some(entry) = inner.map.get_mut(&k) {
            entry.stamp = stamp;
            let bufs = Arc::clone(&entry.bufs);
            inner.counters.hits += 1;
            return bufs;
        }
        inner.counters.misses += 1;

        let disk_live = self.disk.is_some() && !self.disk_down.load(Ordering::Relaxed);
        let mut from_disk = false;
        let mut found = None;
        if disk_live {
            match self.disk_read(k) {
                DiskRead::Hit(bufs) => {
                    from_disk = true;
                    found = Some(bufs);
                }
                DiskRead::Miss => {}
                DiskRead::Corrupt => {
                    // A mangled file is counted and regenerated, never
                    // trusted; the tier itself stays up (other keys may be
                    // intact).
                    inner.counters.disk_corrupt += 1;
                    eprintln!("cc-sweep: corrupt trace cache file {k:016x}.cctrace; regenerating");
                }
                DiskRead::IoError(e) => {
                    // An unreadable tier (bad mount, revoked permissions)
                    // is latched off: the store degrades to memory-only
                    // for its remaining life instead of erroring per miss.
                    inner.counters.disk_errors += 1;
                    self.disk_down.store(true, Ordering::Relaxed);
                    eprintln!(
                        "cc-sweep: trace cache read failed ({e}); \
                         disabling the disk tier, continuing memory-only"
                    );
                }
            }
        }
        let bufs = found.unwrap_or_else(|| {
            inner.counters.generations += 1;
            Arc::new(generate())
        });
        if from_disk {
            inner.counters.disk_hits += 1;
        } else if disk_live && !self.disk_down.load(Ordering::Relaxed) {
            // Best-effort persist: an unwritable cache directory degrades
            // reuse, never results — counted once, then the tier is off.
            let dir = self.disk.as_ref().expect("disk_live implies dir");
            if let Err(e) =
                std::fs::write(dir.join(format!("{k:016x}.cctrace")), encode_file(&bufs))
            {
                inner.counters.disk_errors += 1;
                self.disk_down.store(true, Ordering::Relaxed);
                eprintln!(
                    "cc-sweep: trace cache write failed ({e}); \
                     disabling the disk tier, continuing memory-only"
                );
            }
        }

        let bytes: usize = bufs.iter().map(TraceBuf::approx_bytes).sum();
        if bytes > self.budget {
            // A trace bigger than the whole budget can never coexist with
            // anything: caching it would pin it resident (the LRU never
            // evicts the entry just returned) while evicting every other
            // entry. Hand it to the caller uncached; the budget stays
            // untouched, so no later eviction can underflow it.
            inner.counters.oversized += 1;
            return bufs;
        }
        inner.bytes += bytes;
        inner.map.insert(
            k,
            Entry {
                bufs: Arc::clone(&bufs),
                bytes,
                stamp,
            },
        );
        // Byte-budget LRU: drop the least-recently-used entries (never
        // the one being returned) until back under budget.
        while inner.bytes > self.budget && inner.map.len() > 1 {
            let Some((&victim, _)) = inner
                .map
                .iter()
                .filter(|(&vk, _)| vk != k)
                .min_by_key(|(_, e)| e.stamp)
            else {
                break;
            };
            let dropped = inner.map.remove(&victim).expect("victim present");
            inner.bytes -= dropped.bytes;
            inner.counters.evictions += 1;
        }
        bufs
    }

    /// Reads and decodes `key`'s on-disk file, distinguishing an absent
    /// file (a plain miss) from a mangled one (corruption) and from an
    /// I/O failure (a tier-level problem the caller should latch on).
    fn disk_read(&self, key: u64) -> DiskRead {
        let Some(dir) = self.disk.as_ref() else {
            return DiskRead::Miss;
        };
        match std::fs::read_to_string(dir.join(format!("{key:016x}.cctrace"))) {
            Ok(text) => match decode_file(&text) {
                Some(bufs) => DiskRead::Hit(Arc::new(bufs)),
                None => DiskRead::Corrupt,
            },
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => DiskRead::Miss,
            Err(e) => DiskRead::IoError(e),
        }
    }

    /// Resident sampled-result cap. Results are a few hundred bytes, so
    /// the cap bounds memory at well under a megabyte while covering far
    /// more distinct sampled workloads than any sweep or server session
    /// touches.
    pub const SAMPLED_CAP: usize = 256;

    /// A cached sampled-simulation result for `key`, if present. `key`
    /// must fold the sampling configuration in addition to the trace
    /// coordinates — two sampling configs over one trace are different
    /// results. The encoding is the caller's (the store treats it as an
    /// opaque string); determinism of the content is the caller's
    /// contract, exactly as with [`TraceStore::get_or_generate`].
    pub fn sampled_get(&self, key: TraceKey) -> Option<Arc<str>> {
        let mut inner = self.inner.lock().expect("trace store poisoned");
        inner.stamp += 1;
        let stamp = inner.stamp;
        match inner.sampled.get_mut(&key.value()) {
            Some((encoded, touched)) => {
                *touched = stamp;
                let encoded = Arc::clone(encoded);
                inner.counters.sampled_hits += 1;
                Some(encoded)
            }
            None => {
                inner.counters.sampled_misses += 1;
                None
            }
        }
    }

    /// Stores a sampled-simulation result under `key`, evicting the
    /// least-recently-used result past [`TraceStore::SAMPLED_CAP`].
    pub fn sampled_put(&self, key: TraceKey, encoded: String) {
        let mut inner = self.inner.lock().expect("trace store poisoned");
        inner.stamp += 1;
        let stamp = inner.stamp;
        inner.counters.sampled_puts += 1;
        inner
            .sampled
            .insert(key.value(), (Arc::from(encoded), stamp));
        while inner.sampled.len() > Self::SAMPLED_CAP {
            let Some((&victim, _)) = inner.sampled.iter().min_by_key(|(_, (_, s))| *s) else {
                break;
            };
            inner.sampled.remove(&victim);
        }
    }

    /// Distinct sampled results resident.
    pub fn sampled_len(&self) -> usize {
        self.inner
            .lock()
            .expect("trace store poisoned")
            .sampled
            .len()
    }

    /// A snapshot of the activity counters.
    pub fn counters(&self) -> StoreCounters {
        self.inner.lock().expect("trace store poisoned").counters
    }

    /// Bytes currently charged against the budget.
    pub fn resident_bytes(&self) -> usize {
        self.inner.lock().expect("trace store poisoned").bytes
    }

    /// Distinct traces resident in memory.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("trace store poisoned").map.len()
    }

    /// True when no trace is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for TraceStore {
    fn default() -> Self {
        Self::with_budget(Self::DEFAULT_BUDGET)
    }
}

impl std::fmt::Debug for TraceStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceStore")
            .field("budget", &self.budget)
            .field("disk", &self.disk)
            .field("counters", &self.counters())
            .finish()
    }
}

/// Encodes a buffer sequence as one `.cctrace` file: a count header, then
/// each buffer's [`TraceBuf::encode_compact`] lines (exactly five per
/// buffer) concatenated.
fn encode_file(bufs: &[TraceBuf]) -> String {
    let mut s = format!("cctrace v1 {:x}\n", bufs.len());
    for buf in bufs {
        s.push_str(&buf.encode_compact());
    }
    s
}

/// Inverse of [`encode_file`]; `None` on any corruption (wrong magic,
/// wrong count, any buffer failing to decode or validate).
fn decode_file(text: &str) -> Option<Vec<TraceBuf>> {
    let lines: Vec<&str> = text.lines().collect();
    let mut header = lines.first()?.split_ascii_whitespace();
    if header.next()? != "cctrace" || header.next()? != "v1" {
        return None;
    }
    let count = usize::from_str_radix(header.next()?, 16).ok()?;
    if header.next().is_some() || lines.len() != 1 + 5 * count {
        return None;
    }
    lines[1..]
        .chunks(5)
        .map(|chunk| {
            let mut one = String::new();
            for line in chunk {
                one.push_str(line);
                one.push('\n');
            }
            TraceBuf::decode_compact(&one)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_sim::Event;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn trace(seed: u64, len: usize) -> Vec<TraceBuf> {
        let mut bufs = Vec::new();
        let mut cur = TraceBuf::with_capacity(8);
        for i in 0..len as u64 {
            if cur.is_full() {
                bufs.push(std::mem::replace(&mut cur, TraceBuf::with_capacity(8)));
            }
            match (seed + i) % 4 {
                0 => cur.push(Event::load((seed ^ i) % 4096, 20)),
                1 => cur.push(Event::store(i * 24 % 4096, 8)),
                2 => cur.push(Event::Inst(3)),
                _ => cur.push(Event::Prefetch { addr: i % 4096 }),
            }
        }
        if !cur.is_empty() {
            bufs.push(cur);
        }
        bufs
    }

    fn key(n: u64) -> TraceKey {
        TraceKey::new("store-test").fold(n)
    }

    #[test]
    fn warm_key_skips_generation() {
        let store = TraceStore::with_budget(1 << 20);
        let calls = AtomicUsize::new(0);
        let generate = || {
            calls.fetch_add(1, Ordering::SeqCst);
            trace(1, 30)
        };
        let cold = store.get_or_generate(key(1), generate);
        let warm = store.get_or_generate(key(1), || {
            calls.fetch_add(1, Ordering::SeqCst);
            trace(1, 30)
        });
        // The acceptance-criterion assertion: the warm request ran no
        // generator and the counters prove it.
        assert_eq!(calls.load(Ordering::SeqCst), 1);
        assert!(Arc::ptr_eq(&cold, &warm));
        let c = store.counters();
        assert_eq!(c.hits, 1);
        assert_eq!(c.misses, 1);
        assert_eq!(c.generations, 1);
        assert_eq!(c.disk_hits, 0);
    }

    #[test]
    fn keys_discriminate_coordinates() {
        let e5000 = MachineConfig::ultrasparc_e5000();
        let table1 = MachineConfig::table1();
        let a = TraceKey::new("fig5").machine(&e5000).fold(21);
        assert_eq!(a, TraceKey::new("fig5").machine(&e5000).fold(21));
        assert_ne!(a, TraceKey::new("fig7").machine(&e5000).fold(21));
        assert_ne!(a, TraceKey::new("fig5").machine(&table1).fold(21));
        assert_ne!(a, TraceKey::new("fig5").machine(&e5000).fold(22));
        // Order matters: (1, 2) and (2, 1) are different traces.
        assert_ne!(
            TraceKey::new("t").fold(1).fold(2),
            TraceKey::new("t").fold(2).fold(1)
        );
    }

    #[test]
    fn lru_evicts_by_byte_budget_and_keeps_the_hot_entry() {
        let one = trace(0, 40);
        let bytes: usize = one.iter().map(TraceBuf::approx_bytes).sum();
        // Room for two resident traces, not three.
        let store = TraceStore::with_budget(bytes * 2 + bytes / 2);
        store.get_or_generate(key(0), || trace(0, 40));
        store.get_or_generate(key(1), || trace(1, 40));
        store.get_or_generate(key(0), || unreachable!("key 0 is warm"));
        store.get_or_generate(key(2), || trace(2, 40)); // evicts key 1 (LRU)
        assert_eq!(store.counters().evictions, 1);
        assert_eq!(store.len(), 2);
        store.get_or_generate(key(0), || unreachable!("key 0 survived the eviction"));
        let regen = AtomicUsize::new(0);
        store.get_or_generate(key(1), || {
            regen.fetch_add(1, Ordering::SeqCst);
            trace(1, 40)
        });
        assert_eq!(regen.load(Ordering::SeqCst), 1, "evicted key regenerates");
    }

    #[test]
    fn oversized_entry_is_served_uncached_and_never_underflows() {
        // Budget of one byte: every real trace exceeds it.
        let store = TraceStore::with_budget(1);
        let a = store.get_or_generate(key(7), || trace(7, 40));
        assert!(!a.is_empty());
        assert_eq!(store.len(), 0, "oversized traces are never cached");
        assert_eq!(store.resident_bytes(), 0);
        let c = store.counters();
        assert_eq!(c.oversized, 1);
        assert_eq!(c.evictions, 0);

        // The key stays cold: a second request regenerates rather than
        // finding a permanently-resident over-budget entry.
        let regen = AtomicUsize::new(0);
        let b = store.get_or_generate(key(7), || {
            regen.fetch_add(1, Ordering::SeqCst);
            trace(7, 40)
        });
        assert_eq!(regen.load(Ordering::SeqCst), 1);
        let events_a: Vec<Event> = a.iter().flat_map(|x| x.events()).collect();
        let events_b: Vec<Event> = b.iter().flat_map(|x| x.events()).collect();
        assert_eq!(events_a, events_b);

        // More oversized traffic never drives the byte ledger negative
        // (an underflow would panic in debug builds here).
        store.get_or_generate(key(8), || trace(8, 40));
        assert_eq!(store.resident_bytes(), 0);
        assert_eq!(store.counters().oversized, 3);
    }

    #[test]
    fn disk_tier_survives_a_fresh_store() {
        let dir = std::env::temp_dir().join(format!("cctrace-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let reference = trace(9, 50);

        let first = TraceStore::with_budget(1 << 20).with_disk(dir.clone());
        assert!(first.has_disk());
        let a = first.get_or_generate(key(9), || trace(9, 50));
        assert_eq!(a.len(), reference.len());

        // A fresh store (new process, cold memory) over the same directory
        // must decode the file instead of regenerating.
        let second = TraceStore::with_budget(1 << 20).with_disk(dir.clone());
        let b = second.get_or_generate(key(9), || unreachable!("disk tier must serve this"));
        let c = second.counters();
        assert_eq!(c.disk_hits, 1);
        assert_eq!(c.generations, 0);
        let events_a: Vec<Event> = a.iter().flat_map(|x| x.events()).collect();
        let events_b: Vec<Event> = b.iter().flat_map(|x| x.events()).collect();
        assert_eq!(events_a, events_b);

        // A corrupt file is counted, reported, and regenerated — never
        // trusted, and never fatal.
        let path = dir.join(format!("{:016x}.cctrace", key(9).value()));
        std::fs::write(&path, "cctrace v1 zz\ngarbage").unwrap();
        let third = TraceStore::with_budget(1 << 20).with_disk(dir.clone());
        let regen = AtomicUsize::new(0);
        let d = third.get_or_generate(key(9), || {
            regen.fetch_add(1, Ordering::SeqCst);
            trace(9, 50)
        });
        assert_eq!(regen.load(Ordering::SeqCst), 1);
        let c = third.counters();
        assert_eq!(c.disk_corrupt, 1);
        assert_eq!(c.disk_errors, 0, "corruption does not take the tier down");
        let events_d: Vec<Event> = d.iter().flat_map(|x| x.events()).collect();
        assert_eq!(events_a, events_d, "regenerated trace matches the original");

        // The regeneration self-heals the file: a fourth store decodes it.
        let fourth = TraceStore::with_budget(1 << 20).with_disk(dir.clone());
        fourth.get_or_generate(key(9), || unreachable!("healed file must serve this"));
        assert_eq!(fourth.counters().disk_hits, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// An unusable `CC_TRACE_CACHE` path (here: an existing plain file,
    /// so `create_dir_all` fails even for root, unlike permission bits)
    /// degrades the store to memory-only: counted, reported, and every
    /// request still served.
    #[test]
    fn unusable_cache_directory_degrades_to_memory_only() {
        let file = std::env::temp_dir().join(format!("cctrace-notadir-{}", std::process::id()));
        std::fs::write(&file, "occupied").unwrap();

        let store = TraceStore::with_budget(1 << 20).with_disk(file.clone());
        assert!(
            !store.has_disk(),
            "unusable directory must not arm the tier"
        );
        assert_eq!(store.counters().disk_errors, 1);

        let a = store.get_or_generate(key(11), || trace(11, 30));
        store.get_or_generate(key(11), || unreachable!("memory tier is warm"));
        let c = store.counters();
        assert_eq!(c.generations, 1);
        assert_eq!(c.hits, 1);
        let reference: Vec<Event> = trace(11, 30).iter().flat_map(|x| x.events()).collect();
        let got: Vec<Event> = a.iter().flat_map(|x| x.events()).collect();
        assert_eq!(got, reference, "degraded results are bit-identical");
        let _ = std::fs::remove_file(&file);
    }

    /// A disk tier that turns bad mid-life (here: the cache *file* path is
    /// occupied by a directory, so both read and write fail with a non-
    /// NotFound error) is latched off after one counted, reported failure;
    /// later keys skip the disk entirely and the store stays correct.
    #[test]
    fn runtime_disk_failure_latches_the_tier_off() {
        let dir = std::env::temp_dir().join(format!("cctrace-latch-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = TraceStore::with_budget(1 << 20).with_disk(dir.clone());
        assert!(store.has_disk());

        // Occupy the key's file path with a directory: reading it is an
        // I/O error (not absence, not corruption).
        std::fs::create_dir_all(dir.join(format!("{:016x}.cctrace", key(13).value()))).unwrap();
        let a = store.get_or_generate(key(13), || trace(13, 30));
        let c = store.counters();
        assert_eq!(c.disk_errors, 1);
        assert_eq!(c.disk_corrupt, 0);
        assert_eq!(
            c.generations, 1,
            "the request is still served by generating"
        );
        let reference: Vec<Event> = trace(13, 30).iter().flat_map(|x| x.events()).collect();
        let got: Vec<Event> = a.iter().flat_map(|x| x.events()).collect();
        assert_eq!(got, reference);

        // The tier is now down: a second key neither reads nor writes the
        // directory, and the error counter does not grow per-request.
        store.get_or_generate(key(14), || trace(14, 30));
        let c = store.counters();
        assert_eq!(
            c.disk_errors, 1,
            "one failure, one count — latched, not per-miss"
        );
        assert_eq!(c.generations, 2);
        assert!(
            !dir.join(format!("{:016x}.cctrace", key(14).value()))
                .exists(),
            "a downed tier must not be written"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sampled_results_cache_by_config_keyed_key() {
        let store = TraceStore::default();
        let base = key(21);
        let cfg_a = base.fold(0xA);
        let cfg_b = base.fold(0xB);
        assert!(store.sampled_get(cfg_a).is_none());
        store.sampled_put(cfg_a, "intervals=4;reps=2".to_string());
        let hit = store.sampled_get(cfg_a).expect("warm sampled result");
        assert_eq!(&*hit, "intervals=4;reps=2");
        // A different sampling config over the same trace is a miss.
        assert!(store.sampled_get(cfg_b).is_none());
        let c = store.counters();
        assert_eq!(c.sampled_hits, 1);
        assert_eq!(c.sampled_misses, 2);
        assert_eq!(c.sampled_puts, 1);

        // The count-capped LRU keeps the hot entry.
        for i in 0..TraceStore::SAMPLED_CAP as u64 + 8 {
            store.sampled_put(base.fold(0x100 + i), format!("r{i}"));
            // Keep cfg_a hot so eviction takes the cold tail.
            store.sampled_get(cfg_a);
        }
        assert_eq!(store.sampled_len(), TraceStore::SAMPLED_CAP);
        assert!(store.sampled_get(cfg_a).is_some(), "hot entry survives");
    }

    #[test]
    fn file_codec_roundtrips_multiple_buffers() {
        let bufs = trace(3, 37);
        let text = encode_file(&bufs);
        let back = decode_file(&text).expect("roundtrip");
        assert_eq!(back.len(), bufs.len());
        for (a, b) in bufs.iter().zip(&back) {
            let ea: Vec<Event> = a.events().collect();
            let eb: Vec<Event> = b.events().collect();
            assert_eq!(ea, eb);
        }
        assert!(decode_file("").is_none());
        assert!(decode_file("cctrace v2 1\n").is_none());
        // Truncated: count promises more buffers than the file holds.
        let truncated: String = text.lines().take(1 + 5).collect::<Vec<_>>().join("\n");
        if bufs.len() > 1 {
            assert!(decode_file(&truncated).is_none());
        }
    }
}
