//! Satellite guarantee: a parallel sweep's output is byte-for-byte equal
//! to a serial run of the same grid — per-cell results, their order, the
//! merged fleet statistics, and a rendered report string. Cells here are
//! real simulations (randomized pointer chases through a `BatchSink`), so
//! scheduling nondeterminism had every chance to leak in via RNG streams,
//! prefetch timing, or result placement.

use cc_sim::batch::BatchSink;
use cc_sim::event::EventSink;
use cc_sim::stats::{CacheStats, TlbStats};
use cc_sim::MachineConfig;
use cc_sweep::{cell_seed, merge_cache, merge_tlb, CellOutcome, Sweep};
use proptest::prelude::*;

/// One grid cell: (machine, trial).
#[derive(Clone, Copy)]
struct Cell {
    machine: MachineConfig,
    steps: u64,
}

/// Per-cell observables, all of which must be schedule-independent.
#[derive(Clone, Debug, PartialEq, Eq)]
struct CellResult {
    seed: u64,
    l1: CacheStats,
    l2: CacheStats,
    tlb: TlbStats,
    cycles: u64,
}

fn run_cell(index: usize, cell: &Cell) -> CellResult {
    let seed = cell_seed(0xDEC0DE, index as u64);
    let mut state = seed;
    let mut sink = BatchSink::with_capacity(cell.machine, 64);
    let mut addr = 0x800u64;
    for _ in 0..cell.steps {
        // SplitMix64 walk: mostly short strides (same-block runs), with
        // occasional jumps, stores, and prefetches.
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        match z % 16 {
            0 => addr = z % (64 * 1024),
            1 => sink.store(addr, 8),
            2 => sink.prefetch((addr + 256) % (64 * 1024)),
            _ => {
                addr = (addr + (z >> 8) % 24) % (64 * 1024);
                sink.load(addr, 8);
            }
        }
    }
    sink.flush();
    CellResult {
        seed,
        l1: sink.system().l1_stats(),
        l2: sink.system().l2_stats(),
        tlb: sink.system().tlb_stats(),
        cycles: sink.memory_cycles(),
    }
}

fn grid() -> Vec<Cell> {
    let machines = [
        MachineConfig::test_tiny(),
        MachineConfig::ultrasparc_e5000(),
        MachineConfig::table1(),
    ];
    machines
        .iter()
        .flat_map(|&machine| {
            (0..6).map(move |t| Cell {
                machine,
                steps: 2_000 + t * 500,
            })
        })
        .collect()
}

/// Renders the sweep exactly as a figure binary would print it, so the
/// comparison is literally byte-for-byte over the user-visible artifact.
fn render(results: &[CellResult]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    for (i, r) in results.iter().enumerate() {
        writeln!(
            out,
            "cell {i}: seed={:#018x} l1={}/{} l2={}/{} tlb={}/{} cycles={}",
            r.seed,
            r.l1.misses(),
            r.l1.accesses(),
            r.l2.misses(),
            r.l2.accesses(),
            r.tlb.misses(),
            r.tlb.accesses(),
            r.cycles,
        )
        .unwrap();
    }
    let l1 = merge_cache(results.iter().map(|r| &r.l1));
    let l2 = merge_cache(results.iter().map(|r| &r.l2));
    let tlb = merge_tlb(results.iter().map(|r| &r.tlb));
    writeln!(
        out,
        "fleet: l1={}/{} l2={}/{} tlb={}/{}",
        l1.misses(),
        l1.accesses(),
        l2.misses(),
        l2.accesses(),
        tlb.misses(),
        tlb.accesses(),
    )
    .unwrap();
    out
}

#[test]
fn parallel_sweep_is_byte_identical_to_serial() {
    let cells = grid();
    let serial = Sweep::with_threads(1).run(&cells, run_cell);
    let report = render(&serial);
    for threads in [2, 4, 7] {
        let parallel = Sweep::with_threads(threads).run(&cells, run_cell);
        assert_eq!(parallel, serial, "{threads}-thread results diverged");
        assert_eq!(
            render(&parallel),
            report,
            "{threads}-thread report not byte-identical"
        );
    }
}

#[test]
fn repeated_parallel_runs_are_stable() {
    let cells = grid();
    let a = Sweep::with_threads(4).run(&cells, run_cell);
    let b = Sweep::with_threads(4).run(&cells, run_cell);
    assert_eq!(a, b);
}

/// Silences the default panic hook while `f` runs: the isolation tests
/// below inject panics on purpose, and their traces are noise.
fn with_quiet_panics<T>(f: impl FnOnce() -> T) -> T {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let out = f();
    std::panic::set_hook(prev);
    out
}

/// A cheap grid for the fault-injection properties: real simulations, but
/// small enough to rerun under a property-test case budget.
fn small_grid() -> Vec<Cell> {
    (0..6)
        .map(|t| Cell {
            machine: MachineConfig::test_tiny(),
            steps: 200 + t * 50,
        })
        .collect()
}

#[test]
fn injected_panics_stay_in_their_cells() {
    let cells = grid();
    let clean = Sweep::with_threads(1).run(&cells, run_cell);
    // Every (i % 3 == 1) cell panics on its first attempt; cell 7 panics
    // on every attempt.
    let outcomes = with_quiet_panics(|| {
        Sweep::with_threads(4).run_isolated(&cells, 3, |i, attempt, c| {
            if i == 7 {
                panic!("injected: terminally poisoned");
            }
            if i % 3 == 1 && attempt == 0 {
                panic!("injected: transient fault");
            }
            run_cell(i, c)
        })
    });
    assert_eq!(outcomes.len(), cells.len(), "every cell reported");
    for (i, outcome) in outcomes.iter().enumerate() {
        if i == 7 {
            assert!(outcome.is_failed(), "poisoned cell failed");
            assert_eq!(outcome.attempts(), 3, "all attempts consumed");
        } else if i % 3 == 1 {
            // A retried cell recomputes from its coordinates alone, so the
            // retry reproduces the clean run's result exactly.
            assert!(matches!(outcome, CellOutcome::Retried { attempts: 2, .. }));
            assert_eq!(outcome.result(), Some(&clean[i]));
        } else {
            // Neighbours of failing cells are bit-identical to a clean run.
            assert_eq!(outcome, &CellOutcome::Ok(clean[i].clone()));
        }
    }
}

proptest! {
    /// Over arbitrary poison sets, every poisoned cell fails in place and
    /// every clean cell's result is bit-identical to an unfaulted serial
    /// run — a failure never corrupts a neighbour, and output order is
    /// always grid order.
    #[test]
    fn failed_cells_never_corrupt_neighbours(mask in any::<u64>()) {
        let cells = small_grid();
        let clean = Sweep::with_threads(1).run(&cells, run_cell);
        let poisoned = |i: usize| mask & (1 << (i as u32 % 64)) != 0;
        let outcomes = with_quiet_panics(|| {
            Sweep::with_threads(4).run_isolated(&cells, 2, |i, _, c| {
                if poisoned(i) {
                    panic!("injected");
                }
                run_cell(i, c)
            })
        });
        prop_assert_eq!(outcomes.len(), cells.len());
        for (i, outcome) in outcomes.iter().enumerate() {
            if poisoned(i) {
                prop_assert!(outcome.is_failed());
                prop_assert_eq!(outcome.attempts(), 2);
            } else {
                prop_assert_eq!(outcome.result(), Some(&clean[i]));
            }
        }
    }
}
