//! Set-sharded replay differential over *real application* event streams.
//!
//! The Figure 6 measurements themselves drive the stateful per-cycle
//! [`Pipeline`](cc_sim::Pipeline), whose stall attribution depends on the
//! global in-order event history — that plane cannot shard (DESIGN.md
//! §10). But the memory-system half of the model can: these tests record
//! genuine mini-RADIANCE octree and mini-VIS ROBDD traffic into a
//! [`TraceBuffer`] and prove the set-sharded replayer reproduces the
//! scalar [`MemorySink`] bit-for-bit on it. The synthetic proptest traces
//! in `cc-sim` explore the event grammar; these pin the application
//! access patterns — deep pointer chases, hash-consing probes, object
//! array scans — that the figures actually replay.

use cc_apps::radiance::{synthetic_scene, Octree};
use cc_apps::vis::Bdd;
use cc_core::rng::SplitMix64;
use cc_heap::Malloc;
use cc_sim::event::{Event, EventSink, TraceBuffer};
use cc_sim::{MachineConfig, MemorySink, ShardDegradation, ShardedReplayer, TraceBuf};

/// Packs recorded events into bounded buffers (small capacity, many
/// boundaries) the way the figure binaries feed the sharded replayer.
fn pack(events: &[Event]) -> Vec<TraceBuf> {
    let mut bufs = Vec::new();
    let mut cur = TraceBuf::with_capacity(64);
    for &ev in events {
        if cur.is_full() {
            bufs.push(std::mem::replace(&mut cur, TraceBuf::with_capacity(64)));
        }
        cur.push(ev);
    }
    if !cur.is_empty() {
        bufs.push(cur);
    }
    bufs
}

/// Replays `trace` through the scalar sink and through the sharded
/// replayer at each shard count, split into two segments so persistent
/// per-shard state crosses a boundary, and asserts bit-identical stats.
fn assert_sharded_matches_scalar(machine: MachineConfig, trace: &TraceBuffer, what: &str) {
    let mut scalar = MemorySink::new(machine);
    for &ev in trace.events() {
        scalar.event(ev);
    }

    for shards in [1usize, 2, 5, 8] {
        let mut sharded = ShardedReplayer::new(machine, shards);
        let events = trace.events();
        let (a, b) = events.split_at(events.len() / 2);
        for seg in [a, b] {
            let split = sharded.split(&pack(seg));
            sharded.replay(&split);
        }
        assert_eq!(
            sharded.l1_stats(),
            scalar.system().l1_stats(),
            "{what}: L1 diverged at {shards} shards"
        );
        assert_eq!(
            sharded.l2_stats(),
            scalar.system().l2_stats(),
            "{what}: L2 diverged at {shards} shards"
        );
        assert_eq!(
            sharded.tlb_stats(),
            scalar.system().tlb_stats(),
            "{what}: TLB diverged at {shards} shards"
        );
        assert_eq!(
            sharded.memory_cycles(),
            scalar.memory_cycles(),
            "{what}: cycles diverged at {shards} shards"
        );
        assert_eq!(sharded.insts(), scalar.insts(), "{what}: insts");
        assert_eq!(sharded.branches(), scalar.branches(), "{what}: branches");
        assert_eq!(
            sharded.degradation(),
            ShardDegradation::default(),
            "{what}: healthy replay degraded at {shards} shards"
        );
    }
}

#[test]
fn radiance_ray_cast_trace_shards_exactly() {
    let machine = MachineConfig::ultrasparc_e5000();
    let mut buf = TraceBuffer::new();
    let mut heap = Malloc::new(machine.page_bytes);
    let world = 512i64;
    let scene = synthetic_scene(150, world, 42);
    let tree = Octree::build(scene, world, &mut heap, &mut buf);

    const DIRS: [[i64; 3]; 6] = [
        [1, 0, 0],
        [-1, 0, 0],
        [0, 1, 0],
        [0, -1, 0],
        [0, 0, 1],
        [0, 0, -1],
    ];
    let mut rng = SplitMix64::new(0xFEED);
    let mut hits = 0u64;
    for _ in 0..600 {
        let o = [
            rng.below(world as u64) as i64,
            rng.below(world as u64) as i64,
            rng.below(world as u64) as i64,
        ];
        if tree
            .cast(o, DIRS[rng.below(6) as usize], &mut buf)
            .is_some()
        {
            hits += 1;
        }
    }
    assert!(hits > 0, "degenerate scene: no ray hit anything");
    assert!(
        buf.memory_refs() > 1_000,
        "trace too small to exercise shards"
    );

    assert_sharded_matches_scalar(machine, &buf, "radiance");
}

#[test]
fn vis_robdd_trace_shards_exactly() {
    let machine = MachineConfig::table1();
    let mut buf = TraceBuffer::new();
    let mut heap = Malloc::new(machine.page_bytes);

    // Build a constraint formula: conjunction of pairwise XOR/OR terms
    // over 8 variables, then evaluate it on every input — hash-consing
    // probes on the way up, chases on the way down.
    let mut bdd = Bdd::new(8, false);
    let vars: Vec<u32> = (0..8).map(|i| bdd.var(i, &mut heap, &mut buf)).collect();
    let mut f = bdd.xor(vars[0], vars[1], &mut heap, &mut buf);
    for w in vars.windows(2).skip(1) {
        let t = bdd.or(w[0], w[1], &mut heap, &mut buf);
        f = bdd.and(f, t, &mut heap, &mut buf);
    }
    let mut sat = 0u64;
    for input in 0..256u64 {
        if bdd.eval(f, input, &mut buf) {
            sat += 1;
        }
    }
    assert!(sat > 0 && sat < 256, "degenerate formula");
    assert!(
        buf.memory_refs() > 1_000,
        "trace too small to exercise shards"
    );

    assert_sharded_matches_scalar(machine, &buf, "vis");
}
