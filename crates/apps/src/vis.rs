//! Mini-VIS: a reduced ordered binary decision diagram (ROBDD) engine
//! (paper Section 4.3).
//!
//! VIS represents multi-level logic networks as BDDs. BDDs are DAGs —
//! nodes have multiple parents — so `ccmorph` cannot be used; instead the
//! paper modified VIS's allocation sites to call
//! `ccmalloc(size, hint)` with the new-block strategy and measured a 27%
//! speedup. The mini version is a complete ROBDD package: hash-consing
//! unique table, memoized ITE, negation, satisfy-counting, and
//! assignment evaluation. Every BDD node is allocated through a pluggable
//! [`Allocator`]; the cache-conscious variant hints each new node with its
//! `lo` child — the one-line change the paper describes.
//!
//! The measured workload builds adder output functions under a
//! *deliberately poor variable ordering* (all `a` bits before all `b`
//! bits), which makes the BDDs exponential in the operand width — the
//! classic blow-up that makes model checkers memory-bound — then
//! verifies an algebraic identity and runs a large batch of assignment
//! evaluations (each one a root-to-terminal pointer chase).

use cc_core::rng::SplitMix64;
use cc_heap::{Allocator, CcMalloc, Malloc, Strategy};
use cc_sim::event::EventSink;
use cc_sim::{Breakdown, MachineConfig, Pipeline, PipelineConfig};
use std::collections::HashMap;

/// Bytes per BDD node: variable index + two child pointers + ref/hash
/// link (32-bit layout).
pub const BDD_NODE_BYTES: u64 = 16;

/// The FALSE terminal.
pub const FALSE: u32 = 0;
/// The TRUE terminal.
pub const TRUE: u32 = 1;

const TERMINAL_VAR: u32 = u32::MAX;

#[derive(Clone, Copy, Debug)]
struct Node {
    var: u32,
    lo: u32,
    hi: u32,
    addr: u64,
}

/// Allocation policy for BDD nodes — Figure 6's two VIS bars.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AllocPolicy {
    /// Conventional `malloc`.
    Base,
    /// `ccmalloc` with the new-block strategy, hinting the `lo` child.
    CcMallocNewBlock,
}

impl AllocPolicy {
    /// Both policies in Figure 6 order.
    pub const ALL: [AllocPolicy; 2] = [AllocPolicy::Base, AllocPolicy::CcMallocNewBlock];

    /// Bar label.
    pub fn label(&self) -> &'static str {
        match self {
            AllocPolicy::Base => "base",
            AllocPolicy::CcMallocNewBlock => "ccmalloc new-block",
        }
    }
}

/// A ROBDD manager over `nvars` variables.
///
/// # Example
///
/// ```
/// use cc_apps::vis::{Bdd, TRUE, FALSE};
/// use cc_heap::Malloc;
/// use cc_sim::event::NullSink;
///
/// let mut heap = Malloc::new(8192);
/// let mut sink = NullSink;
/// let mut bdd = Bdd::new(2, false);
/// let x0 = bdd.var(0, &mut heap, &mut sink);
/// let x1 = bdd.var(1, &mut heap, &mut sink);
/// let and = bdd.and(x0, x1, &mut heap, &mut sink);
/// assert_eq!(bdd.sat_count(and, &mut sink), 1); // only x0=1,x1=1
/// let or = bdd.or(x0, x1, &mut heap, &mut sink);
/// assert_eq!(bdd.sat_count(or, &mut sink), 3);
/// ```
#[derive(Clone, Debug)]
pub struct Bdd {
    nodes: Vec<Node>,
    unique: HashMap<(u32, u32, u32), u32>,
    ite_memo: HashMap<(u32, u32, u32), u32>,
    nvars: u32,
    use_hint: bool,
    /// Simulated base address of the unique-table bucket array.
    unique_base: u64,
    /// Simulated base address of the ITE memo array.
    memo_base: u64,
}

impl Bdd {
    /// Creates a manager; `use_hint` selects the `ccmalloc` hinting of the
    /// cache-conscious variant (ignored by allocators that ignore hints).
    pub fn new(nvars: u32, use_hint: bool) -> Self {
        Bdd {
            nodes: vec![
                Node {
                    var: TERMINAL_VAR,
                    lo: FALSE,
                    hi: FALSE,
                    addr: 0x100,
                },
                Node {
                    var: TERMINAL_VAR,
                    lo: TRUE,
                    hi: TRUE,
                    addr: 0x110,
                },
            ],
            unique: HashMap::new(),
            ite_memo: HashMap::new(),
            nvars,
            use_hint,
            unique_base: 0x4_0000_0000,
            memo_base: 0x5_0000_0000,
        }
    }

    /// Number of nodes ever created (terminals included).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of variables.
    pub fn nvars(&self) -> u32 {
        self.nvars
    }

    fn is_terminal(id: u32) -> bool {
        id <= TRUE
    }

    /// Emits the trace of reading node `id` (a dependent pointer chase).
    fn touch<S: EventSink>(&self, id: u32, sink: &mut S) {
        sink.load(self.nodes[id as usize].addr, BDD_NODE_BYTES as u32);
        sink.inst(2);
        sink.branch(1);
    }

    /// Hash-consing constructor (the unique table).
    fn mk<A: Allocator, S: EventSink>(
        &mut self,
        var: u32,
        lo: u32,
        hi: u32,
        alloc: &mut A,
        sink: &mut S,
    ) -> u32 {
        if lo == hi {
            return lo;
        }
        // Unique-table probe: hash + one bucket load.
        sink.inst(6);
        let h = (u64::from(var) << 40) ^ (u64::from(lo) << 20) ^ u64::from(hi);
        sink.load_indep(self.unique_base + (h % 65536) * 8, 8);
        if let Some(&id) = self.unique.get(&(var, lo, hi)) {
            return id;
        }
        // Allocate the new node, hinted with its lo child (the paper's
        // one-argument change to VIS's allocation sites).
        let hint = if self.use_hint {
            let lo_node = if !Self::is_terminal(lo) { lo } else { hi };
            (!Self::is_terminal(lo_node)).then(|| self.nodes[lo_node as usize].addr)
        } else {
            None
        };
        sink.inst(alloc.cost_insts());
        let addr = alloc.alloc_hint(BDD_NODE_BYTES, hint);
        sink.store(addr, BDD_NODE_BYTES as u32);
        let id = self.nodes.len() as u32;
        self.nodes.push(Node { var, lo, hi, addr });
        self.unique.insert((var, lo, hi), id);
        id
    }

    /// The projection function for variable `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn var<A: Allocator, S: EventSink>(&mut self, i: u32, alloc: &mut A, sink: &mut S) -> u32 {
        assert!(i < self.nvars, "variable {i} out of range");
        self.mk(i, FALSE, TRUE, alloc, sink)
    }

    fn var_of(&self, id: u32) -> u32 {
        self.nodes[id as usize].var
    }

    /// If-then-else: the universal BDD operation.
    pub fn ite<A: Allocator, S: EventSink>(
        &mut self,
        f: u32,
        g: u32,
        h: u32,
        alloc: &mut A,
        sink: &mut S,
    ) -> u32 {
        // Terminal cases.
        if f == TRUE {
            return g;
        }
        if f == FALSE {
            return h;
        }
        if g == h {
            return g;
        }
        if g == TRUE && h == FALSE {
            return f;
        }
        // Memo probe.
        sink.inst(8);
        let hsh = (u64::from(f) << 42) ^ (u64::from(g) << 21) ^ u64::from(h);
        sink.load_indep(self.memo_base + (hsh % 262_144) * 16, 8);
        if let Some(&r) = self.ite_memo.get(&(f, g, h)) {
            return r;
        }
        // Read the operand nodes (pointer chases).
        self.touch(f, sink);
        if !Self::is_terminal(g) {
            self.touch(g, sink);
        }
        if !Self::is_terminal(h) {
            self.touch(h, sink);
        }
        let top = [f, g, h]
            .into_iter()
            .filter(|&x| !Self::is_terminal(x))
            .map(|x| self.var_of(x))
            .min()
            .expect("f is not terminal");
        let cof = |b: &Bdd, x: u32, hi: bool| -> u32 {
            if Self::is_terminal(x) || b.var_of(x) != top {
                x
            } else if hi {
                b.nodes[x as usize].hi
            } else {
                b.nodes[x as usize].lo
            }
        };
        let (f0, f1) = (cof(self, f, false), cof(self, f, true));
        let (g0, g1) = (cof(self, g, false), cof(self, g, true));
        let (h0, h1) = (cof(self, h, false), cof(self, h, true));
        let lo = self.ite(f0, g0, h0, alloc, sink);
        let hi = self.ite(f1, g1, h1, alloc, sink);
        let r = self.mk(top, lo, hi, alloc, sink);
        sink.store(self.memo_base + (hsh % 262_144) * 16, 8);
        self.ite_memo.insert((f, g, h), r);
        r
    }

    /// Conjunction.
    pub fn and<A: Allocator, S: EventSink>(
        &mut self,
        f: u32,
        g: u32,
        alloc: &mut A,
        sink: &mut S,
    ) -> u32 {
        self.ite(f, g, FALSE, alloc, sink)
    }

    /// Disjunction.
    pub fn or<A: Allocator, S: EventSink>(
        &mut self,
        f: u32,
        g: u32,
        alloc: &mut A,
        sink: &mut S,
    ) -> u32 {
        self.ite(f, TRUE, g, alloc, sink)
    }

    /// Negation.
    pub fn not<A: Allocator, S: EventSink>(&mut self, f: u32, alloc: &mut A, sink: &mut S) -> u32 {
        self.ite(f, FALSE, TRUE, alloc, sink)
    }

    /// Exclusive or.
    pub fn xor<A: Allocator, S: EventSink>(
        &mut self,
        f: u32,
        g: u32,
        alloc: &mut A,
        sink: &mut S,
    ) -> u32 {
        let ng = self.not(g, alloc, sink);
        self.ite(f, ng, g, alloc, sink)
    }

    /// Number of satisfying assignments over all `nvars` variables,
    /// emitting one dependent load per node visited.
    pub fn sat_count<S: EventSink>(&self, f: u32, sink: &mut S) -> u64 {
        let mut memo: HashMap<u32, u64> = HashMap::new();
        let total_vars = self.nvars;
        self.sat_rec(f, 0, total_vars, &mut memo, sink)
    }

    fn sat_rec<S: EventSink>(
        &self,
        f: u32,
        depth_var: u32,
        total_vars: u32,
        memo: &mut HashMap<u32, u64>,
        sink: &mut S,
    ) -> u64 {
        // Count assignments of variables in [depth_var, total) satisfying f.
        if f == FALSE {
            return 0;
        }
        if f == TRUE {
            return 1u64 << (total_vars - depth_var);
        }
        let v = self.var_of(f);
        let skipped = v - depth_var;
        let below = if let Some(&c) = memo.get(&f) {
            c
        } else {
            self.touch(f, sink);
            let n = &self.nodes[f as usize];
            let lo = self.sat_rec(n.lo, v + 1, total_vars, memo, sink);
            let hi = self.sat_rec(n.hi, v + 1, total_vars, memo, sink);
            memo.insert(f, lo + hi);
            lo + hi
        };
        below << skipped
    }

    /// Evaluates `f` under the assignment encoded in the bits of `input`
    /// (bit `i` = variable `i`): a pure root-to-terminal pointer chase.
    pub fn eval<S: EventSink>(&self, f: u32, input: u64, sink: &mut S) -> bool {
        let mut cur = f;
        while !Self::is_terminal(cur) {
            self.touch(cur, sink);
            let n = &self.nodes[cur as usize];
            cur = if input >> n.var & 1 == 1 { n.hi } else { n.lo };
        }
        cur == TRUE
    }
}

/// Parameters for the mini-VIS workload.
#[derive(Clone, Copy, Debug)]
pub struct VisParams {
    /// Adder operand width. The poor variable ordering makes BDD size
    /// exponential in this; 16 already exceeds the E5000's 1 MB L2.
    pub bits: u32,
    /// Number of assignment evaluations in the query phase.
    pub evals: u64,
    /// Evaluation seed.
    pub seed: u64,
}

impl Default for VisParams {
    fn default() -> Self {
        VisParams {
            bits: 14,
            evals: 400_000,
            seed: 0xB0D,
        }
    }
}

/// Result of one mini-VIS run.
#[derive(Clone, Debug)]
pub struct VisResult {
    /// Allocation policy measured.
    pub policy: AllocPolicy,
    /// Stall breakdown.
    pub breakdown: Breakdown,
    /// Workload checksum (policy invariant).
    pub checksum: u64,
    /// Live BDD nodes at the end.
    pub nodes: usize,
}

/// Runs the mini-VIS workload: builds the sum and carry functions of an
/// adder under a poor variable ordering (variable `i` of operand `a` is
/// BDD variable `i`, of `b` is `bits + i`), checks the identity
/// `a ⊕ b ⊕ c = (a + b) mod 2` bitwise against a re-derivation, then
/// sat-counts and evaluates.
pub fn run(policy: AllocPolicy, params: &VisParams, machine: &MachineConfig) -> VisResult {
    let mut pipe = Pipeline::new(PipelineConfig::table1(), *machine);
    let mut alloc: Box<dyn Allocator> = match policy {
        AllocPolicy::Base => Box::new(Malloc::new(machine.page_bytes)),
        AllocPolicy::CcMallocNewBlock => Box::new(CcMalloc::new(machine, Strategy::NewBlock)),
    };
    let use_hint = policy == AllocPolicy::CcMallocNewBlock;
    let n = params.bits;
    let mut bdd = Bdd::new(2 * n, use_hint);

    // Variables: a_i at index i, b_i at n + i (the poor ordering).
    let a: Vec<u32> = (0..n).map(|i| bdd.var(i, &mut alloc, &mut pipe)).collect();
    let b: Vec<u32> = (0..n)
        .map(|i| bdd.var(n + i, &mut alloc, &mut pipe))
        .collect();

    // Ripple-carry sum bits.
    let mut carry = FALSE;
    let mut sums = Vec::with_capacity(n as usize);
    for i in 0..n as usize {
        let axb = bdd.xor(a[i], b[i], &mut alloc, &mut pipe);
        let sum = bdd.xor(axb, carry, &mut alloc, &mut pipe);
        let ab = bdd.and(a[i], b[i], &mut alloc, &mut pipe);
        let ac = bdd.and(axb, carry, &mut alloc, &mut pipe);
        carry = bdd.or(ab, ac, &mut alloc, &mut pipe);
        sums.push(sum);
    }

    // Verification: re-derive each sum bit by a different formula
    // (s = (a ∨ b ∨ c) ∧ ¬maj ∨ (a ∧ b ∧ c)) and check canonicity gives
    // the identical node.
    let mut verified = 0u64;
    let mut carry2 = FALSE;
    for i in 0..n as usize {
        let ab_or = bdd.or(a[i], b[i], &mut alloc, &mut pipe);
        let any = bdd.or(ab_or, carry2, &mut alloc, &mut pipe);
        let ab = bdd.and(a[i], b[i], &mut alloc, &mut pipe);
        let bc = bdd.and(b[i], carry2, &mut alloc, &mut pipe);
        let ca = bdd.and(carry2, a[i], &mut alloc, &mut pipe);
        let maj_ab = bdd.or(ab, bc, &mut alloc, &mut pipe);
        let maj = bdd.or(maj_ab, ca, &mut alloc, &mut pipe);
        let nmaj = bdd.not(maj, &mut alloc, &mut pipe);
        let lo = bdd.and(any, nmaj, &mut alloc, &mut pipe);
        let abc = bdd.and(ab, carry2, &mut alloc, &mut pipe);
        let s2 = bdd.or(lo, abc, &mut alloc, &mut pipe);
        if s2 == sums[i] {
            verified += 1;
        }
        carry2 = maj;
    }
    assert_eq!(verified, u64::from(n), "adder identity must verify");
    assert_eq!(carry2, carry, "carry chains must agree");

    // Query phase: sat-count the top carry and a middle sum bit, then a
    // large batch of assignment evaluations.
    let mut checksum = bdd.sat_count(carry, &mut pipe);
    checksum = checksum
        .wrapping_mul(31)
        .wrapping_add(bdd.sat_count(sums[n as usize / 2], &mut pipe));
    let mut rng = SplitMix64::new(params.seed);
    let mut trues = 0u64;
    for _ in 0..params.evals {
        let input = rng.next_u64() & ((1u64 << (2 * n)) - 1);
        let f = sums[(rng.below(u64::from(n))) as usize];
        if bdd.eval(f, input, &mut pipe) {
            trues += 1;
        }
    }
    checksum = checksum.wrapping_mul(31).wrapping_add(trues);
    checksum = checksum.wrapping_mul(31).wrapping_add(verified);

    VisResult {
        policy,
        breakdown: pipe.finish(),
        checksum,
        nodes: bdd.node_count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_sim::event::NullSink;

    fn mgr(nvars: u32) -> (Malloc, NullSink, Bdd) {
        (Malloc::new(8192), NullSink, Bdd::new(nvars, false))
    }

    #[test]
    fn basic_boolean_algebra() {
        let (mut heap, mut s, mut bdd) = mgr(3);
        let x = bdd.var(0, &mut heap, &mut s);
        let y = bdd.var(1, &mut heap, &mut s);
        let nx = bdd.not(x, &mut heap, &mut s);
        assert_eq!(bdd.and(x, nx, &mut heap, &mut s), FALSE);
        assert_eq!(bdd.or(x, nx, &mut heap, &mut s), TRUE);
        let xy = bdd.and(x, y, &mut heap, &mut s);
        let yx = bdd.and(y, x, &mut heap, &mut s);
        assert_eq!(xy, yx, "hash consing canonicalizes");
        let xx = bdd.xor(x, x, &mut heap, &mut s);
        assert_eq!(xx, FALSE);
    }

    #[test]
    fn sat_counts() {
        let (mut heap, mut s, mut bdd) = mgr(4);
        let vars: Vec<u32> = (0..4).map(|i| bdd.var(i, &mut heap, &mut s)).collect();
        // x0 & x1: 1 * 2^2 assignments of the other two vars.
        let f = bdd.and(vars[0], vars[1], &mut heap, &mut s);
        assert_eq!(bdd.sat_count(f, &mut s), 4);
        // Parity of 4 vars: half of 16.
        let mut p = FALSE;
        for &v in &vars {
            p = bdd.xor(p, v, &mut heap, &mut s);
        }
        assert_eq!(bdd.sat_count(p, &mut s), 8);
    }

    #[test]
    fn eval_agrees_with_semantics() {
        let (mut heap, mut s, mut bdd) = mgr(6);
        let vars: Vec<u32> = (0..6).map(|i| bdd.var(i, &mut heap, &mut s)).collect();
        // f = (x0 & x1) | (x2 ^ x5)
        let c = bdd.and(vars[0], vars[1], &mut heap, &mut s);
        let x = bdd.xor(vars[2], vars[5], &mut heap, &mut s);
        let f = bdd.or(c, x, &mut heap, &mut s);
        for input in 0u64..64 {
            let want = (input & 3 == 3) || ((input >> 2 & 1) ^ (input >> 5 & 1) == 1);
            assert_eq!(bdd.eval(f, input, &mut NullSink), want, "input {input:b}");
        }
    }

    #[test]
    fn poor_ordering_blows_up() {
        // The run() workload relies on exponential growth; confirm the
        // trend holds (node count roughly doubles per extra bit).
        let small = run(
            AllocPolicy::Base,
            &VisParams {
                bits: 6,
                evals: 10,
                seed: 1,
            },
            &MachineConfig::ultrasparc_e5000(),
        );
        let big = run(
            AllocPolicy::Base,
            &VisParams {
                bits: 9,
                evals: 10,
                seed: 1,
            },
            &MachineConfig::ultrasparc_e5000(),
        );
        assert!(
            big.nodes > 4 * small.nodes,
            "{} vs {}",
            big.nodes,
            small.nodes
        );
    }

    #[test]
    fn checksums_agree_across_policies() {
        let machine = MachineConfig::ultrasparc_e5000();
        let p = VisParams {
            bits: 8,
            evals: 2000,
            seed: 5,
        };
        let a = run(AllocPolicy::Base, &p, &machine);
        let b = run(AllocPolicy::CcMallocNewBlock, &p, &machine);
        assert_eq!(a.checksum, b.checksum);
        assert_eq!(a.nodes, b.nodes, "same DAG regardless of placement");
    }

    #[test]
    fn ccmalloc_colocates_lo_chains() {
        let machine = MachineConfig::ultrasparc_e5000();
        let mut heap = CcMalloc::new(&machine, Strategy::NewBlock);
        let mut s = NullSink;
        let mut bdd = Bdd::new(8, true);
        let vars: Vec<u32> = (0..8).map(|i| bdd.var(i, &mut heap, &mut s)).collect();
        let mut f = vars[7];
        for i in (0..7).rev() {
            f = bdd.and(vars[i], f, &mut heap, &mut s);
        }
        // Walking the all-ones path: count block transitions.
        let mut cur = f;
        let mut prev_block = None;
        let mut same = 0;
        let mut steps = 0;
        while !Bdd::is_terminal(cur) {
            let blk = bdd.nodes[cur as usize].addr / 64;
            if prev_block == Some(blk) {
                same += 1;
            }
            prev_block = Some(blk);
            cur = bdd.nodes[cur as usize].hi;
            steps += 1;
        }
        assert!(steps >= 7);
        assert!(same > 0, "hinted chain shares at least one block");
    }
}
