//! Macrobenchmark applications reproducing Figure 6 of *Cache-Conscious
//! Structure Layout*: RADIANCE and VIS.
//!
//! The paper's applications are 60 k and 160 k lines of C; what its
//! Figure 6 measures, though, is the behaviour of each program's *primary
//! data structure*:
//!
//! * [`radiance`] — RADIANCE's octree over the modelled scene, traversed
//!   by rays. The paper changed the octree to use subtree clustering and
//!   colored it (no `ccmalloc`: RADIANCE already lays the octree out
//!   depth-first), for a 42% speedup. Our mini-RADIANCE is a from-scratch
//!   octree ray caster over a synthetic box scene with the same three
//!   layouts: depth-first (base), clustered, clustered + colored.
//! * [`vis`] — VIS's multi-level logic networks represented as Binary
//!   Decision Diagrams. BDDs are DAGs, so `ccmorph` does not apply; the
//!   paper modified VIS to allocate BDD nodes with `ccmalloc`'s new-block
//!   strategy, for a 27% speedup, noting the change took "a few hours,
//!   with little understanding of the application". Our mini-VIS is a
//!   from-scratch ROBDD engine (unique table, ITE with memoization,
//!   satisfy-count, evaluation) whose nodes come from a pluggable
//!   allocator — swapping `malloc` for `ccmalloc(hint = lo-child)` is
//!   exactly the paper's one-argument change.
//!
//! Both report a [`cc_sim::Breakdown`] so the harness can print Figure 6's
//! normalized execution-time bars.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod radiance;
pub mod vis;
