//! Mini-RADIANCE: an octree-based ray caster (paper Section 4.3).
//!
//! RADIANCE models the distribution of visible radiation in a space; its
//! primary data structure is a highly optimized octree over the scene,
//! laid out in depth-first order. The paper changed that octree to
//! subtree clustering plus coloring and measured a 42% speedup, *including
//! the reorganization cost*.
//!
//! The mini version builds an octree over a synthetic scene of
//! axis-aligned boxes and casts rays by leaf marching: locate the leaf
//! containing the ray's current point (a root-down chain of dependent
//! loads — the hot top of the octree), test the leaf's objects, then
//! advance past the leaf boundary. That access pattern — repeated
//! root-down descents with object tests at the fringe — is what makes
//! clustering and coloring pay in the real program.

use cc_core::ccmorph::{ccmorph, CcMorphParams, ColorConfig};
use cc_core::cluster::ClusterKind;
use cc_core::rng::SplitMix64;
use cc_core::Topology;
use cc_heap::{Allocator, Malloc, VirtualSpace};
use cc_sim::event::EventSink;
use cc_sim::{Breakdown, MachineConfig, Pipeline, PipelineConfig};

/// Bytes per octree node. RADIANCE's octree is highly compact — "the
/// program uses explicit knowledge of the structure's layout to eliminate
/// pointers, much like an implicit heap" (Section 4.3) — so a node is a
/// child-block offset plus an object-list handle: 32 bytes, two per
/// 64-byte L2 block.
pub const OCT_NODE_BYTES: u64 = 32;
/// Bytes per scene object (box) record.
pub const OBJ_BYTES: u64 = 32;

const NIL: u32 = u32::MAX;

/// An axis-aligned box in the integer world cube.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Aabb {
    /// Minimum corner (inclusive).
    pub min: [i64; 3],
    /// Maximum corner (exclusive).
    pub max: [i64; 3],
}

impl Aabb {
    /// Whether this box overlaps `other`.
    pub fn overlaps(&self, other: &Aabb) -> bool {
        (0..3).all(|i| self.min[i] < other.max[i] && self.max[i] > other.min[i])
    }

    /// Whether the point lies inside.
    pub fn contains(&self, p: [i64; 3]) -> bool {
        (0..3).all(|i| p[i] >= self.min[i] && p[i] < self.max[i])
    }
}

/// A synthetic scene: `n` pseudo-random boxes inside a cube of edge
/// `world`.
pub fn synthetic_scene(n: usize, world: i64, seed: u64) -> Vec<Aabb> {
    let mut rng = SplitMix64::new(seed);
    let mut boxes = Vec::with_capacity(n);
    for _ in 0..n {
        // Mostly small objects (furniture-scale), occasionally large ones
        // (walls): small objects drive deep local subdivision, large ones
        // populate many leaves.
        let size = if rng.below(64) == 0 {
            world / 64 + rng.below(world as u64 / 64) as i64
        } else {
            4 + rng.below(28) as i64
        };
        let x = rng.below((world - size) as u64) as i64;
        let y = rng.below((world - size) as u64) as i64;
        let z = rng.below((world - size) as u64) as i64;
        boxes.push(Aabb {
            min: [x, y, z],
            max: [x + size, y + size, z + size],
        });
    }
    boxes
}

#[derive(Clone, Debug)]
struct ONode {
    kids: [u32; 8],
    objs: Vec<u32>,
    addr: u64,
}

/// Octree layout variants measured in Figure 6.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Layout {
    /// RADIANCE's native depth-first allocation order.
    Base,
    /// `ccmorph` subtree clustering.
    Cluster,
    /// `ccmorph` subtree clustering + coloring.
    ClusterColor,
}

impl Layout {
    /// All variants in Figure 6 order.
    pub const ALL: [Layout; 3] = [Layout::Base, Layout::Cluster, Layout::ClusterColor];

    /// Bar label.
    pub fn label(&self) -> &'static str {
        match self {
            Layout::Base => "base",
            Layout::Cluster => "clustering",
            Layout::ClusterColor => "clustering+coloring",
        }
    }
}

/// The scene octree.
#[derive(Clone, Debug)]
pub struct Octree {
    nodes: Vec<ONode>,
    root: u32,
    world: i64,
    /// Base simulated address of the object array.
    obj_base: u64,
    scene: Vec<Aabb>,
}

/// Max objects in a leaf before subdividing.
const LEAF_OBJS: usize = 2;
/// Minimum leaf edge.
const MIN_EDGE: i64 = 8;

impl Octree {
    /// Builds the octree over `scene` (depth-first allocation through
    /// `alloc`, like RADIANCE's implicit-heap layout).
    ///
    /// # Panics
    ///
    /// Panics if `world` is not a power of two.
    pub fn build<A: Allocator, S: EventSink>(
        scene: Vec<Aabb>,
        world: i64,
        alloc: &mut A,
        sink: &mut S,
    ) -> Self {
        assert!(
            world > 0 && (world as u64).is_power_of_two(),
            "world edge must be a power of two"
        );
        let obj_base = alloc.alloc((scene.len().max(1) as u64) * OBJ_BYTES);
        let mut t = Octree {
            nodes: Vec::new(),
            root: NIL,
            world,
            obj_base,
            scene,
        };
        let all: Vec<u32> = (0..t.scene.len() as u32).collect();
        let cube = Aabb {
            min: [0, 0, 0],
            max: [world, world, world],
        };
        t.root = t.subdivide(&all, cube, alloc, sink);
        t
    }

    fn subdivide<A: Allocator, S: EventSink>(
        &mut self,
        objs: &[u32],
        cube: Aabb,
        alloc: &mut A,
        sink: &mut S,
    ) -> u32 {
        sink.inst(alloc.cost_insts());
        let addr = alloc.alloc(OCT_NODE_BYTES);
        sink.store(addr, OCT_NODE_BYTES as u32);
        let id = self.nodes.len() as u32;
        self.nodes.push(ONode {
            kids: [NIL; 8],
            objs: Vec::new(),
            addr,
        });

        let edge = cube.max[0] - cube.min[0];
        if objs.len() <= LEAF_OBJS || edge <= MIN_EDGE {
            self.nodes[id as usize].objs = objs.to_vec();
            return id;
        }
        let h = edge / 2;
        for oct in 0..8 {
            let off = [
                if oct & 1 != 0 { h } else { 0 },
                if oct & 2 != 0 { h } else { 0 },
                if oct & 4 != 0 { h } else { 0 },
            ];
            let sub = Aabb {
                min: [
                    cube.min[0] + off[0],
                    cube.min[1] + off[1],
                    cube.min[2] + off[2],
                ],
                max: [
                    cube.min[0] + off[0] + h,
                    cube.min[1] + off[1] + h,
                    cube.min[2] + off[2] + h,
                ],
            };
            let inside: Vec<u32> = objs
                .iter()
                .copied()
                .filter(|&o| self.scene[o as usize].overlaps(&sub))
                .collect();
            let kid = self.subdivide(&inside, sub, alloc, sink);
            self.nodes[id as usize].kids[oct] = kid;
        }
        id
    }

    /// Node count.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// World edge length.
    pub fn world(&self) -> i64 {
        self.world
    }

    /// Reorganizes the octree with `ccmorph`, charging the copy (the
    /// paper includes restructuring overhead in RADIANCE's numbers).
    pub fn morph<S: EventSink>(&mut self, machine: &MachineConfig, color: bool, sink: &mut S) {
        let mut vspace = VirtualSpace::new(machine.page_bytes);
        vspace.skip_pages((1 << 33) / machine.page_bytes);
        let params = CcMorphParams {
            cache: machine.l2,
            page_bytes: machine.page_bytes,
            elem_bytes: OCT_NODE_BYTES,
            color: color.then(ColorConfig::default),
            cluster_kind: ClusterKind::SubtreeBfs,
        };
        let old: Vec<u64> = self.nodes.iter().map(|n| n.addr).collect();
        let layout = ccmorph(self, &mut vspace, &params);
        layout.charge_copy_cost(sink, |id| old[id]);
        for (id, node) in self.nodes.iter_mut().enumerate() {
            node.addr = layout.addr_of(id);
        }
    }

    /// Locates the leaf containing `p`, emitting the root-down dependent
    /// loads, and returns (leaf id, leaf cube).
    fn locate<S: EventSink>(&self, p: [i64; 3], sink: &mut S) -> (u32, Aabb) {
        let mut cube = Aabb {
            min: [0, 0, 0],
            max: [self.world, self.world, self.world],
        };
        let mut cur = self.root;
        loop {
            let n = &self.nodes[cur as usize];
            sink.load(n.addr, OCT_NODE_BYTES as u32);
            sink.inst(6);
            sink.branch(1);
            if n.kids[0] == NIL {
                return (cur, cube);
            }
            let h = (cube.max[0] - cube.min[0]) / 2;
            let mut oct = 0usize;
            let mut min = cube.min;
            for i in 0..3 {
                if p[i] >= cube.min[i] + h {
                    oct |= 1 << i;
                    min[i] += h;
                }
            }
            cube = Aabb {
                min,
                max: [min[0] + h, min[1] + h, min[2] + h],
            };
            cur = n.kids[oct];
        }
    }

    /// Casts an axis-aligned ray from `origin` along `dir` (exactly one
    /// component is ±1), marching leaf to leaf. Returns the id of the
    /// nearest object hit, if any.
    ///
    /// # Panics
    ///
    /// Panics unless exactly one component of `dir` is ±1 and the rest 0.
    pub fn cast<S: EventSink>(&self, origin: [i64; 3], dir: [i64; 3], sink: &mut S) -> Option<u32> {
        let axis = (0..3)
            .find(|&i| dir[i] != 0)
            .expect("direction must be nonzero");
        assert!(
            dir[axis].abs() == 1 && (0..3).filter(|&i| dir[i] != 0).count() == 1,
            "direction must be a unit axis vector"
        );
        let sign = dir[axis];
        let mut p = origin;
        loop {
            if !(0..3).all(|i| p[i] >= 0 && p[i] < self.world) {
                return None;
            }
            let (leaf, cube) = self.locate(p, sink);
            // Distance to the leaf's exit face along the ray.
            let step = if sign == 1 {
                cube.max[axis] - p[axis]
            } else {
                p[axis] - cube.min[axis] + 1
            };
            // Test the leaf's objects (array-resident: independent loads)
            // for the nearest intersection within this leaf segment.
            let node = &self.nodes[leaf as usize];
            let mut best: Option<(i64, u32)> = None;
            for &o in &node.objs {
                sink.load_indep(self.obj_base + u64::from(o) * OBJ_BYTES, OBJ_BYTES as u32);
                sink.inst(8);
                sink.branch(1);
                let b = &self.scene[o as usize];
                let sideways_inside =
                    (0..3).all(|i| i == axis || (p[i] >= b.min[i] && p[i] < b.max[i]));
                if !sideways_inside {
                    continue;
                }
                let t = if sign == 1 {
                    if p[axis] >= b.max[axis] {
                        continue; // behind the ray
                    }
                    (b.min[axis] - p[axis]).max(0)
                } else {
                    if p[axis] < b.min[axis] {
                        continue;
                    }
                    (p[axis] - (b.max[axis] - 1)).max(0)
                };
                if t <= step && best.is_none_or(|bst| (t, o) < bst) {
                    best = Some((t, o));
                }
            }
            if let Some((_, o)) = best {
                return Some(o);
            }
            sink.inst(10);
            p[axis] += sign * step;
        }
    }
}

impl Topology for Octree {
    fn node_count(&self) -> usize {
        self.nodes.len()
    }
    fn root(&self) -> Option<usize> {
        (self.root != NIL).then_some(self.root as usize)
    }
    fn max_kids(&self) -> usize {
        8
    }
    fn child(&self, node: usize, i: usize) -> Option<usize> {
        let k = self.nodes[node].kids[i];
        (k != NIL).then_some(k as usize)
    }
}

/// Result of one mini-RADIANCE run.
#[derive(Clone, Debug)]
pub struct RadianceResult {
    /// Layout measured.
    pub layout: Layout,
    /// Stall breakdown.
    pub breakdown: Breakdown,
    /// Hit-count checksum (layout invariant).
    pub checksum: u64,
}

/// Parameters for a run.
#[derive(Clone, Copy, Debug)]
pub struct RadianceParams {
    /// Number of scene boxes.
    pub objects: usize,
    /// World cube edge (power of two).
    pub world: i64,
    /// Rays to cast.
    pub rays: usize,
    /// Scene/ray seed.
    pub seed: u64,
}

impl Default for RadianceParams {
    fn default() -> Self {
        RadianceParams {
            objects: 60_000,
            world: 8192,
            rays: 150_000,
            seed: 0xACE5,
        }
    }
}

/// Runs mini-RADIANCE with the given octree layout on `machine`.
pub fn run(layout: Layout, params: &RadianceParams, machine: &MachineConfig) -> RadianceResult {
    let mut pipe = Pipeline::new(PipelineConfig::table1(), *machine);
    let mut heap = Malloc::new(machine.page_bytes);
    let scene = synthetic_scene(params.objects, params.world, params.seed);
    let mut tree = Octree::build(scene, params.world, &mut heap, &mut pipe);

    match layout {
        Layout::Base => {}
        Layout::Cluster => tree.morph(machine, false, &mut pipe),
        Layout::ClusterColor => tree.morph(machine, true, &mut pipe),
    }

    // Cast rays from pseudo-random origins along axis directions.
    let mut rng = SplitMix64::new(params.seed ^ 0xFEED);
    let mut checksum = 0u64;
    const DIRS: [[i64; 3]; 6] = [
        [1, 0, 0],
        [-1, 0, 0],
        [0, 1, 0],
        [0, -1, 0],
        [0, 0, 1],
        [0, 0, -1],
    ];
    for _ in 0..params.rays {
        let o = [
            rng.below(params.world as u64) as i64,
            rng.below(params.world as u64) as i64,
            rng.below(params.world as u64) as i64,
        ];
        let d = DIRS[rng.below(6) as usize];
        if let Some(hit) = tree.cast(o, d, &mut pipe) {
            checksum = checksum.wrapping_mul(31).wrapping_add(u64::from(hit) + 1);
        }
    }

    RadianceResult {
        layout,
        breakdown: pipe.finish(),
        checksum,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_sim::event::NullSink;

    fn small() -> RadianceParams {
        RadianceParams {
            objects: 60,
            world: 256,
            rays: 800,
            seed: 7,
        }
    }

    #[test]
    fn octree_covers_all_objects() {
        let p = small();
        let scene = synthetic_scene(p.objects, p.world, p.seed);
        let mut heap = Malloc::new(8192);
        let t = Octree::build(scene.clone(), p.world, &mut heap, &mut NullSink);
        // Every object appears in at least one leaf.
        let mut seen = vec![false; scene.len()];
        for n in &t.nodes {
            for &o in &n.objs {
                seen[o as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn ray_into_object_hits_it() {
        let scene = vec![Aabb {
            min: [100, 100, 100],
            max: [150, 150, 150],
        }];
        let mut heap = Malloc::new(8192);
        let t = Octree::build(scene, 256, &mut heap, &mut NullSink);
        let hit = t.cast([0, 120, 120], [1, 0, 0], &mut NullSink);
        assert_eq!(hit, Some(0));
        let miss = t.cast([0, 200, 200], [1, 0, 0], &mut NullSink);
        assert_eq!(miss, None);
    }

    #[test]
    fn checksums_agree_across_layouts() {
        let machine = MachineConfig::ultrasparc_e5000();
        let p = small();
        let base = run(Layout::Base, &p, &machine);
        for l in Layout::ALL {
            let r = run(l, &p, &machine);
            assert_eq!(r.checksum, base.checksum, "{l:?}");
        }
    }

    /// The Figure 6 effect needs an octree several times the L2 and a
    /// ray-dominated run — minutes in a debug build, so opt-in:
    /// `cargo test -p cc-apps --release -- --ignored`.
    #[test]
    #[ignore = "large-structure effect; run with --release -- --ignored"]
    fn clustering_and_coloring_beat_base() {
        let machine = MachineConfig::ultrasparc_e5000();
        let p = RadianceParams::default();
        let base = run(Layout::Base, &p, &machine);
        let cc = run(Layout::ClusterColor, &p, &machine);
        assert!(
            cc.breakdown.total() < base.breakdown.total(),
            "cc {} vs base {}",
            cc.breakdown.total(),
            base.breakdown.total()
        );
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn world_must_be_pow2() {
        let mut heap = Malloc::new(8192);
        let _ = Octree::build(vec![], 1000, &mut heap, &mut NullSink);
    }
}
