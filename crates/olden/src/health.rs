//! Olden **health**: simulation of the Columbian health-care system
//! (Table 2: doubly linked lists, max level 3, max time 3000).
//!
//! Villages form a 4-ary tree; each village's hospital keeps a doubly
//! linked list of patients under treatment. Patients arrive at leaf
//! villages, are treated for a few time steps, and are then either
//! discharged or referred up to the parent village — the `addList` walk of
//! the paper's Figure 4. Lists churn constantly, so allocation order decays
//! and the cache-conscious schemes matter: `ccmalloc` hints each new cell
//! next to its list predecessor, and the `ccmorph` scheme periodically
//! reorganizes every list ("no attempt was made to determine the optimal
//! interval between invocations", Section 4.4 — we use a fixed interval).

use crate::{RunResult, Scheme};
use cc_core::ccmorph::CcMorphParams;
use cc_core::rng::SplitMix64;
use cc_heap::{Allocator, VirtualSpace};
use cc_sim::event::EventSink;
use cc_sim::MachineConfig;
use cc_trees::list::{DList, LIST_CELL_BYTES};

/// Branching factor of the village tree (Colombia's four-region layout in
/// the original benchmark).
const KIDS: usize = 4;

/// Steps between `ccmorph` invocations for the CC schemes.
const MORPH_INTERVAL: u64 = 64;

/// Bytes per patient record (Olden's `struct Patient`: id, time,
/// hosps_visited, village pointer — 40 bytes on the 32-bit layout).
pub const PATIENT_BYTES: u64 = 40;

/// One village with its hospital's patient list.
#[derive(Clone, Debug)]
struct Village {
    parent: Option<usize>,
    kids: Vec<usize>,
    patients: DList,
    is_leaf: bool,
}

/// The health simulation.
#[derive(Clone, Debug)]
pub struct Health {
    villages: Vec<Village>,
    rng: SplitMix64,
    next_patient: u64,
    /// Simulated address of each patient's record, indexed by patient id.
    /// List cells point at these — Olden's `list->patient` indirection.
    patient_addrs: Vec<u64>,
    /// Patients fully treated and discharged (the checksum).
    discharged: u64,
    /// Total treatment steps administered.
    treatments: u64,
}

impl Health {
    /// Builds the village tree with `levels` levels (paper: 3 → 85
    /// villages).
    pub fn new(levels: u32, seed: u64) -> Self {
        let mut villages = Vec::new();
        build_villages(&mut villages, None, levels);
        Health {
            villages,
            rng: SplitMix64::new(seed),
            next_patient: 0,
            patient_addrs: Vec::new(),
            discharged: 0,
            treatments: 0,
        }
    }

    /// Number of villages.
    pub fn village_count(&self) -> usize {
        self.villages.len()
    }

    /// Patients currently under treatment across all villages.
    pub fn patients_in_system(&self) -> usize {
        self.villages.iter().map(|v| v.patients.len()).sum()
    }

    /// Patients discharged so far.
    pub fn discharged(&self) -> u64 {
        self.discharged
    }

    /// Runs one time step. Patient values encode `id << 8 | remaining`.
    pub fn step<A: Allocator, S: EventSink>(
        &mut self,
        alloc: &mut A,
        sink: &mut S,
        use_hints: bool,
        sw_prefetch: bool,
    ) {
        // New arrivals at leaf villages.
        for v in 0..self.villages.len() {
            if !self.villages[v].is_leaf {
                continue;
            }
            // One arrival per leaf per step: the original benchmark's
            // population grows into the hundreds of KB (Table 2: 828 KB).
            {
                let treatment = 32 + self.rng.below(128);
                let val = (self.next_patient << 8) | treatment;
                self.next_patient += 1;
                // The addList pattern: walk the list, then allocate the
                // new cell hinted with the predecessor (Figure 4).
                self.villages[v].patients.walk(sink, sw_prefetch);
                let cell = self.villages[v]
                    .patients
                    .push_back(val, alloc, sink, use_hints);
                // The patient record itself (`list->patient`). The
                // paper's Figure 4 hints only the list cell; the record
                // is a plain allocation.
                let _ = cell;
                sink.inst(alloc.cost_insts());
                let paddr = alloc.alloc_hint(PATIENT_BYTES, None);
                sink.store(paddr, PATIENT_BYTES as u32);
                self.patient_addrs.push(paddr);
            }
        }

        // Treat everyone: walk each list, chase the cell's patient
        // pointer, and decrement the remaining time in the record.
        let mut referrals: Vec<(usize, u64)> = Vec::new();
        for v in 0..self.villages.len() {
            let ids = self.villages[v].patients.ids();
            for &id in &ids {
                let cell_addr = self.villages[v].patients.addr_of(id);
                sink.load(cell_addr, 16);
                sink.inst(3);
                sink.branch(1);
                let val = self.villages[v].patients.value(id);
                let pid = (val >> 8) as usize;
                sink.load(self.patient_addrs[pid], PATIENT_BYTES as u32);
                let rem = val & 0xFF;
                if rem > 0 {
                    sink.store(self.patient_addrs[pid] + 4, 4);
                    self.villages[v].patients.set_value(id, val - 1);
                }
            }
            self.treatments += ids.len() as u64;

            // Collect finished patients (remaining == 0).
            while let Some(done) = self.villages[v].patients.find(sink, |val| val & 0xFF == 0) {
                let val = self.villages[v].patients.remove(done, alloc, sink);
                match self.villages[v].parent {
                    // Referred upward with probability 1/3 for further
                    // (shorter) treatment; the record travels with them.
                    Some(p) if self.rng.below(3) == 0 => {
                        let renewed = (val & !0xFF) | (16 + self.rng.below(48));
                        referrals.push((p, renewed));
                    }
                    _ => {
                        self.discharged += 1;
                        alloc.free(self.patient_addrs[(val >> 8) as usize]);
                    }
                }
            }
        }

        // Deliver referrals (walk + hinted append, Figure 4 again); the
        // patient record keeps its address.
        for (village, val) in referrals {
            self.villages[village].patients.walk(sink, sw_prefetch);
            self.villages[village]
                .patients
                .push_back(val, alloc, sink, use_hints);
        }
    }

    /// Reorganizes every village's list, packing all lists into one dense
    /// block-aligned region (the unary case of `ccmorph`'s clustering) and
    /// charging the copy costs.
    pub fn morph_all<A: Allocator, S: EventSink>(
        &mut self,
        vspace: &mut VirtualSpace,
        params: &CcMorphParams,
        alloc: &mut A,
        sink: &mut S,
    ) {
        let total: u64 = self
            .villages
            .iter()
            .map(|v| v.patients.len() as u64 * LIST_CELL_BYTES)
            .sum();
        if total == 0 {
            return;
        }
        let block = params.cache.block_bytes();
        let mut cursor = vspace.align_to(block.max(vspace.page_bytes()));
        vspace.alloc_bytes(total + block * self.villages.len() as u64);
        for v in &mut self.villages {
            for (old, new) in v.patients.pack(&mut cursor, block, alloc) {
                sink.inst(6);
                sink.load_indep(old, LIST_CELL_BYTES as u32);
                sink.store(new, LIST_CELL_BYTES as u32);
            }
        }
    }

    /// Checksum combining discharges and total treatments.
    pub fn checksum(&self) -> u64 {
        self.discharged
            .wrapping_mul(1_000_003)
            .wrapping_add(self.treatments)
    }
}

fn build_villages(out: &mut Vec<Village>, parent: Option<usize>, levels: u32) -> usize {
    let id = out.len();
    out.push(Village {
        parent,
        kids: Vec::new(),
        patients: DList::new(),
        is_leaf: levels == 0,
    });
    if levels > 0 {
        for _ in 0..KIDS {
            let k = build_villages(out, Some(id), levels - 1);
            out[id].kids.push(k);
        }
    }
    id
}

/// Runs health for `steps` time steps at `levels` village-tree levels
/// under `scheme` on `machine`.
pub fn run(scheme: Scheme, levels: u32, steps: u64, machine: &MachineConfig) -> RunResult {
    let mut pipe = scheme.pipeline(machine);
    let mut alloc = scheme.allocator(machine);
    let mut sim = Health::new(levels, 0xC0FFEE);

    let mut morph_space = scheme.morph().map(|color| {
        let mut vs = VirtualSpace::new(machine.page_bytes);
        vs.skip_pages((1 << 33) / machine.page_bytes);
        let params = CcMorphParams {
            cache: machine.l2,
            page_bytes: machine.page_bytes,
            elem_bytes: LIST_CELL_BYTES,
            color: color.then(cc_core::ccmorph::ColorConfig::default),
            // For unary structures chain and subtree packing coincide.
            cluster_kind: cc_core::cluster::ClusterKind::SubtreeBfs,
        };
        (vs, params)
    });

    for t in 0..steps {
        sim.step(
            &mut alloc,
            &mut pipe,
            scheme.uses_hints(),
            scheme.sw_prefetch(),
        );
        if let Some((vs, params)) = &mut morph_space {
            if t % MORPH_INTERVAL == MORPH_INTERVAL - 1 {
                sim.morph_all(vs, params, &mut alloc, &mut pipe);
            }
        }
    }

    let checksum = sim.checksum();
    let breakdown = pipe.finish();
    RunResult {
        scheme,
        breakdown,
        checksum,
        heap: *alloc.stats(),
        l2_misses: pipe.memory().l2_stats().misses(),
        snapshot: alloc.snapshot(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_heap::Malloc;
    use cc_sim::event::NullSink;

    #[test]
    fn village_tree_size() {
        let h = Health::new(3, 1);
        assert_eq!(h.village_count(), 1 + 4 + 16 + 64);
    }

    #[test]
    fn patients_flow_through_system() {
        let mut h = Health::new(2, 7);
        let mut heap = Malloc::new(8192);
        for _ in 0..300 {
            h.step(&mut heap, &mut NullSink, false, false);
        }
        assert!(h.discharged() > 0, "patients should finish treatment");
        // Population reaches a (large but bounded) equilibrium:
        // leaves x avg stay ~ 16 x 48.
        assert!(h.patients_in_system() < 4000, "system must drain");
    }

    #[test]
    fn checksums_agree_across_schemes() {
        let machine = MachineConfig::table1();
        let base = run(Scheme::Base, 2, 60, &machine);
        for s in [
            Scheme::CcMallocNewBlock,
            Scheme::CcMorphClusterColor,
            Scheme::SwPrefetch,
            Scheme::CcMallocNullHint,
        ] {
            let r = run(s, 2, 60, &machine);
            assert_eq!(r.checksum, base.checksum, "{s:?}");
        }
    }

    #[test]
    fn morphing_does_not_change_behaviour() {
        let machine = MachineConfig::table1();
        let a = run(Scheme::CcMorphCluster, 2, 80, &machine);
        let b = run(Scheme::Base, 2, 80, &machine);
        assert_eq!(a.checksum, b.checksum);
    }
}
