//! Olden **mst**: minimum spanning tree of a graph whose adjacency is
//! stored in chained hash tables (Table 2: 512 nodes; "array of singly
//! linked lists").
//!
//! Each vertex owns a hash table mapping neighbour → edge weight. The MST
//! is computed Prim-style: each time a vertex joins the tree, every
//! remaining vertex looks up its edge to the newcomer in its own hash
//! table (`n²` chained lookups in total — the pointer-chasing workload).
//! The structure is built at start-up and never mutated, so `ccmorph`'s
//! chain packing and `ccmalloc`'s chain hints both apply; the paper notes
//! coloring has little effect because the chains are short.

use crate::{RunResult, Scheme};
use cc_heap::VirtualSpace;
use cc_sim::event::EventSink;
use cc_sim::MachineConfig;
use cc_trees::hash::ChainedHash;

/// Deterministic pseudo-random edge weight, mimicking Olden's hash-based
/// weight generation.
fn weight(i: u64, j: u64) -> u64 {
    let x = (i.min(j) << 32) | i.max(j);
    let mut z = x.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z ^= z >> 29;
    z = z.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    1 + ((z >> 33) % 1000)
}

/// The mst graph: one adjacency hash table per vertex.
#[derive(Clone, Debug)]
pub struct MstGraph {
    adj: Vec<ChainedHash>,
    n: usize,
    degree: usize,
}

impl MstGraph {
    /// Builds a ring-plus-chords graph of `n` vertices, each with
    /// `degree` incident edges stored in its own chained hash table
    /// (buckets sized to keep chains short, as in Olden).
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or `degree < 2` or `degree >= n`.
    pub fn build<A: cc_heap::Allocator, S: EventSink>(
        n: usize,
        degree: usize,
        alloc: &mut A,
        sink: &mut S,
        use_hints: bool,
    ) -> Self {
        assert!(n >= 2, "need at least two vertices");
        assert!((2..n).contains(&degree), "degree must be in [2, n)");
        let buckets = (degree / 2).max(4);
        let mut adj = Vec::with_capacity(n);
        for i in 0..n as u64 {
            let mut h = ChainedHash::new(buckets, alloc);
            // Ring edges guarantee connectivity; chords add bulk.
            for d in 1..=degree as u64 / 2 {
                let fwd = (i + d) % n as u64;
                let back = (i + n as u64 - d) % n as u64;
                h.insert(fwd, weight(i, fwd), alloc, sink, use_hints);
                if back != fwd {
                    h.insert(back, weight(i, back), alloc, sink, use_hints);
                }
            }
            adj.push(h);
        }
        MstGraph { adj, n, degree }
    }

    /// Vertex count.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the graph is empty (never, post-build).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Edge degree used at construction.
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// Packs every vertex's chains into one dense, block-aligned region
    /// (`ccmorph` applied per component). A single shared region matters:
    /// per-table pages would exceed the TLB's reach and alias every table
    /// onto the same cache sets.
    pub fn morph_chains(&mut self, vspace: &mut VirtualSpace, block_bytes: u64) {
        let cells: u64 = self.adj.iter().map(|h| h.len() as u64).sum();
        let slack = block_bytes * self.adj.iter().map(|h| h.n_buckets() as u64).sum::<u64>();
        let mut cursor = vspace.align_to(block_bytes.max(vspace.page_bytes()));
        vspace.alloc_bytes(cells * cc_trees::hash::HASH_CELL_BYTES + slack);
        for h in &mut self.adj {
            h.pack_chains(&mut cursor, block_bytes);
        }
    }

    /// Computes the MST weight Prim-style (Olden's BlueRule): `n − 1`
    /// rounds, each scanning all remaining vertices and looking up their
    /// edge to the newest tree vertex in their own hash table.
    pub fn mst_weight<S: EventSink>(&self, sink: &mut S) -> u64 {
        const INF: u64 = u64::MAX;
        let n = self.n;
        let mut dist = vec![INF; n];
        let mut in_tree = vec![false; n];
        let mut total = 0u64;
        let mut newest = 0usize;
        in_tree[0] = true;

        for _ in 1..n {
            // Every out-of-tree vertex updates its distance via a hash
            // lookup against the newest member …
            for v in 0..n {
                if in_tree[v] {
                    continue;
                }
                sink.inst(3);
                if let Some(w) = self.adj[v].lookup(newest as u64, sink) {
                    if w < dist[v] {
                        dist[v] = w;
                        sink.store(0x800_0000 + v as u64 * 8, 8);
                    }
                }
            }
            // … then the minimum joins the tree (array scan).
            let mut best = INF;
            let mut pick = usize::MAX;
            for v in 0..n {
                if !in_tree[v] {
                    sink.load_indep(0x800_0000 + v as u64 * 8, 8);
                    sink.inst(2);
                    sink.branch(1);
                    if dist[v] < best {
                        best = dist[v];
                        pick = v;
                    }
                }
            }
            assert!(pick != usize::MAX && best != INF, "graph must be connected");
            in_tree[pick] = true;
            total += best;
            dist[pick] = INF;
            newest = pick;
        }
        total
    }
}

/// Runs mst with `n` vertices of degree `degree` under `scheme`.
pub fn run(scheme: Scheme, n: usize, degree: usize, machine: &MachineConfig) -> RunResult {
    let mut pipe = scheme.pipeline(machine);
    let mut alloc = scheme.allocator(machine);
    let mut graph = MstGraph::build(n, degree, &mut alloc, &mut pipe, scheme.uses_hints());

    if scheme.morph().is_some() {
        let mut vspace = VirtualSpace::new(machine.page_bytes);
        vspace.skip_pages((1 << 33) / machine.page_bytes);
        // Coloring is a no-op for short chains (paper: "ccmorph's coloring
        // did not have much impact since the lists were short").
        graph.morph_chains(&mut vspace, machine.l2.block_bytes());
    }

    let checksum = graph.mst_weight(&mut pipe);
    let breakdown = pipe.finish();
    RunResult {
        scheme,
        breakdown,
        checksum,
        heap: *alloc.stats(),
        l2_misses: pipe.memory().l2_stats().misses(),
        snapshot: alloc.snapshot(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_heap::Malloc;
    use cc_sim::event::NullSink;

    #[test]
    fn weights_are_symmetric_and_positive() {
        assert_eq!(weight(3, 7), weight(7, 3));
        assert!(weight(0, 1) >= 1);
    }

    #[test]
    fn ring_graph_mst_is_connected() {
        let mut heap = Malloc::new(8192);
        let g = MstGraph::build(32, 4, &mut heap, &mut NullSink, false);
        let w = g.mst_weight(&mut NullSink);
        assert!(w > 0);
        // MST has 31 edges of weight <= 1000 each.
        assert!(w <= 31 * 1000);
    }

    #[test]
    fn mst_weight_is_layout_invariant() {
        let machine = MachineConfig::table1();
        let base = run(Scheme::Base, 64, 8, &machine);
        for s in Scheme::FIGURE7 {
            let r = run(s, 64, 8, &machine);
            assert_eq!(r.checksum, base.checksum, "{s:?}");
        }
    }

    #[test]
    fn brute_force_agreement_on_tiny_graph() {
        // Kruskal via edge list on the same ring graph.
        let n = 10usize;
        let degree = 4;
        let mut heap = Malloc::new(8192);
        let g = MstGraph::build(n, degree, &mut heap, &mut NullSink, false);
        let prim = g.mst_weight(&mut NullSink);

        let mut edges = Vec::new();
        for i in 0..n as u64 {
            for d in 1..=degree as u64 / 2 {
                let j = (i + d) % n as u64;
                edges.push((weight(i, j), i as usize, j as usize));
            }
        }
        edges.sort_unstable();
        edges.dedup();
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(p: &mut Vec<usize>, x: usize) -> usize {
            if p[x] != x {
                let r = find(p, p[x]);
                p[x] = r;
            }
            p[x]
        }
        let mut kruskal = 0;
        for (w, a, b) in edges {
            let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
            if ra != rb {
                parent[ra] = rb;
                kruskal += w;
            }
        }
        assert_eq!(prim, kruskal);
    }

    #[test]
    #[should_panic(expected = "degree must be")]
    fn silly_degree_rejected() {
        let mut heap = Malloc::new(8192);
        let _ = MstGraph::build(4, 10, &mut heap, &mut NullSink, false);
    }
}
