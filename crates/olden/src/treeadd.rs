//! Olden **treeadd**: sums the values stored in a binary tree
//! (Table 2: 256 K nodes, 4 MB).
//!
//! The tree is built once at program start by a recursive constructor —
//! so allocation order is the dominant (depth-first) traversal order, and
//! the paper sees only a 10–20% gain from cache-conscious placement here.

use crate::{RunResult, Scheme};
use cc_core::ccmorph::{ccmorph, CcMorphParams, ColorConfig};
use cc_core::cluster::ClusterKind;
use cc_core::Topology;
use cc_heap::{Allocator, VirtualSpace};
use cc_sim::event::EventSink;
use cc_sim::prefetch::greedy_prefetch_children;
use cc_sim::MachineConfig;

/// Bytes per treeadd node: value + two child pointers + padding
/// (Table 2: 256 K nodes in 4 MB = 16 bytes each).
pub const TREE_NODE_BYTES: u64 = 16;

const NIL: u32 = u32::MAX;

#[derive(Clone, Copy, Debug)]
struct Node {
    val: u64,
    left: u32,
    right: u32,
    addr: u64,
}

/// The treeadd binary tree on the simulated heap.
#[derive(Clone, Debug)]
pub struct TreeAdd {
    nodes: Vec<Node>,
    root: u32,
}

impl TreeAdd {
    /// Builds a complete binary tree of `n` nodes through `alloc`,
    /// hinting each child's allocation with its parent when `use_hints`.
    /// Construction emits allocation costs and initializing stores.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn build<A: Allocator, S: EventSink>(
        n: u64,
        alloc: &mut A,
        sink: &mut S,
        use_hints: bool,
    ) -> Self {
        assert!(n > 0, "tree must be nonempty");
        let mut t = TreeAdd {
            nodes: Vec::with_capacity(n as usize),
            root: NIL,
        };
        t.root = t.build_rec(n, None, alloc, sink, use_hints);
        t
    }

    fn build_rec<A: Allocator, S: EventSink>(
        &mut self,
        n: u64,
        parent_addr: Option<u64>,
        alloc: &mut A,
        sink: &mut S,
        use_hints: bool,
    ) -> u32 {
        if n == 0 {
            return NIL;
        }
        sink.inst(alloc.cost_insts());
        let addr = alloc.alloc_hint(TREE_NODE_BYTES, if use_hints { parent_addr } else { None });
        sink.store(addr, TREE_NODE_BYTES as u32);
        let id = self.nodes.len() as u32;
        self.nodes.push(Node {
            val: u64::from(id) + 1,
            left: NIL,
            right: NIL,
            addr,
        });
        let rest = n - 1;
        let left_n = rest / 2 + rest % 2;
        let right_n = rest / 2;
        let l = self.build_rec(left_n, Some(addr), alloc, sink, use_hints);
        let r = self.build_rec(right_n, Some(addr), alloc, sink, use_hints);
        self.nodes[id as usize].left = l;
        self.nodes[id as usize].right = r;
        id
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree is empty (never, post-build).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The recursive sum, emitting one dependent load per node (plus
    /// greedy child prefetches for the SP scheme).
    pub fn sum<S: EventSink>(&self, sink: &mut S, sw_prefetch: bool) -> u64 {
        self.sum_from(self.root, sink, sw_prefetch)
    }

    fn sum_from<S: EventSink>(&self, id: u32, sink: &mut S, sw_prefetch: bool) -> u64 {
        if id == NIL {
            return 0;
        }
        let n = &self.nodes[id as usize];
        sink.load(n.addr, TREE_NODE_BYTES as u32);
        sink.inst(4);
        sink.branch(1);
        if sw_prefetch {
            let mut kids = [0u64; 2];
            let mut cnt = 0;
            for c in [n.left, n.right] {
                if c != NIL {
                    kids[cnt] = self.nodes[c as usize].addr;
                    cnt += 1;
                }
            }
            greedy_prefetch_children(sink, &kids[..cnt]);
        }
        n.val + self.sum_from(n.left, sink, sw_prefetch) + self.sum_from(n.right, sink, sw_prefetch)
    }

    /// Reorganizes with `ccmorph` (charging the copy cost) and updates
    /// addresses.
    pub fn morph<S: EventSink>(
        &mut self,
        vspace: &mut VirtualSpace,
        params: &CcMorphParams,
        sink: &mut S,
    ) {
        let old: Vec<u64> = self.nodes.iter().map(|n| n.addr).collect();
        let layout = ccmorph(self, vspace, params);
        layout.charge_copy_cost(sink, |id| old[id]);
        for (id, node) in self.nodes.iter_mut().enumerate() {
            node.addr = layout.addr_of(id);
        }
    }
}

impl Topology for TreeAdd {
    fn node_count(&self) -> usize {
        self.nodes.len()
    }
    fn root(&self) -> Option<usize> {
        (self.root != NIL).then_some(self.root as usize)
    }
    fn max_kids(&self) -> usize {
        2
    }
    fn child(&self, node: usize, i: usize) -> Option<usize> {
        let c = match i {
            0 => self.nodes[node].left,
            1 => self.nodes[node].right,
            _ => NIL,
        };
        (c != NIL).then_some(c as usize)
    }
}

/// Runs treeadd with `n` nodes under `scheme` on `machine` (Table 1
/// pipeline) and returns the stall breakdown, the sum as checksum, and
/// heap statistics. Runs one summation pass; see [`run_iters`] for the
/// steady-state variant.
pub fn run(scheme: Scheme, n: u64, machine: &MachineConfig) -> RunResult {
    run_iters(scheme, n, 1, machine)
}

/// Runs treeadd with `iters` summation passes. A single pass cannot
/// amortize `ccmorph`'s copy on a structure this small relative to its
/// traversal (the paper's 256 K-node run amortizes better); the figure
/// harness uses a few passes to reach the steady state Figure 7 reports.
pub fn run_iters(scheme: Scheme, n: u64, iters: u64, machine: &MachineConfig) -> RunResult {
    let mut pipe = scheme.pipeline(machine);
    let mut alloc = scheme.allocator(machine);
    let mut tree = TreeAdd::build(n, &mut alloc, &mut pipe, scheme.uses_hints());

    if let Some(color) = scheme.morph() {
        let mut vspace = VirtualSpace::new(machine.page_bytes);
        // Morph regions live far from the allocator's heap.
        vspace.skip_pages((1 << 33) / machine.page_bytes);
        // treeadd's consumer is a depth-first sweep, so ccmorph packs
        // depth-first chains rather than subtrees (Section 2.1's caveat).
        let params = CcMorphParams {
            cache: machine.l2,
            page_bytes: machine.page_bytes,
            elem_bytes: TREE_NODE_BYTES,
            color: color.then(ColorConfig::default),
            cluster_kind: ClusterKind::DepthFirstChain,
        };
        tree.morph(&mut vspace, &params, &mut pipe);
    }

    assert!(iters > 0, "need at least one pass");
    let mut checksum = 0;
    for _ in 0..iters {
        checksum = tree.sum(&mut pipe, scheme.sw_prefetch());
    }
    let breakdown = pipe.finish();
    RunResult {
        scheme,
        breakdown,
        checksum,
        heap: *alloc.stats(),
        l2_misses: pipe.memory().l2_stats().misses(),
        snapshot: alloc.snapshot(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_heap::Malloc;
    use cc_sim::event::NullSink;

    #[test]
    fn sum_is_n_n_plus_1_over_2() {
        let mut heap = Malloc::new(8192);
        let t = TreeAdd::build(1000, &mut heap, &mut NullSink, false);
        assert_eq!(t.sum(&mut NullSink, false), 1000 * 1001 / 2);
        assert_eq!(t.len(), 1000);
    }

    #[test]
    fn checksums_agree_across_all_schemes() {
        let machine = MachineConfig::table1();
        let base = run(Scheme::Base, 2048, &machine);
        for s in Scheme::FIGURE7 {
            let r = run(s, 2048, &machine);
            assert_eq!(r.checksum, base.checksum, "{s:?}");
        }
    }

    #[test]
    fn cc_morph_beats_base_in_steady_state() {
        // 64 K nodes = 1 MB of tree, 4x the Table-1 L2; four passes
        // amortize the reorganization copy.
        let machine = MachineConfig::table1();
        let base = run_iters(Scheme::Base, 65536, 4, &machine);
        let cc = run_iters(Scheme::CcMorphClusterColor, 65536, 4, &machine);
        assert!(
            cc.breakdown.total() < base.breakdown.total(),
            "cc {} vs base {}",
            cc.breakdown.total(),
            base.breakdown.total()
        );
    }

    #[test]
    fn new_block_uses_more_memory_than_first_fit() {
        let machine = MachineConfig::table1();
        let nb = run(Scheme::CcMallocNewBlock, 16384, &machine);
        let ff = run(Scheme::CcMallocFirstFit, 16384, &machine);
        assert!(nb.heap.footprint_bytes() >= ff.heap.footprint_bytes());
    }
}
