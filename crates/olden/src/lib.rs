//! The four Olden benchmarks evaluated in Section 4.4 of *Cache-Conscious
//! Structure Layout*, reimplemented against the simulated heap and
//! pipeline: **treeadd**, **health**, **mst**, and **perimeter**
//! (Table 2), each runnable under every placement scheme of Figure 7.
//!
//! Each benchmark follows the same protocol: build its pointer structure
//! through the scheme's allocator (emitting allocation costs and
//! initializing stores), optionally reorganize with `ccmorph` (charging
//! the copy), then run the benchmark's computation emitting its memory
//! trace into a [`cc_sim::Pipeline`]. The result is a [`RunResult`]
//! holding the Figure 7 stall breakdown, the computation's checksum (for
//! correctness checks across schemes), and the heap footprint (for the
//! Section 4.4 memory-overhead comparison).
//!
//! # Example
//!
//! ```
//! use cc_olden::{treeadd, Scheme};
//! use cc_sim::MachineConfig;
//!
//! let machine = MachineConfig::table1();
//! // Four summation passes amortize the reorganization copy.
//! let base = treeadd::run_iters(Scheme::Base, 65536, 4, &machine);
//! let cc = treeadd::run_iters(Scheme::CcMorphClusterColor, 65536, 4, &machine);
//! assert_eq!(base.checksum, cc.checksum, "same sum regardless of layout");
//! assert!(cc.breakdown.total() < base.breakdown.total());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod health;
pub mod mst;
pub mod perimeter;
pub mod treeadd;

use cc_heap::{Allocator, CcMalloc, HeapStats, LayoutSnapshot, Malloc, Strategy};
use cc_sim::{Breakdown, MachineConfig, Pipeline, PipelineConfig};

/// A placement / latency-reduction scheme of Figure 7.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// Unmodified program, conventional allocator ("B").
    Base,
    /// Hardware prefetching ("HP").
    HwPrefetch,
    /// Greedy software prefetching, Luk & Mowry ("SP").
    SwPrefetch,
    /// `ccmalloc` with the first-fit block strategy ("FA").
    CcMallocFirstFit,
    /// `ccmalloc` with the closest block strategy ("CA").
    CcMallocClosest,
    /// `ccmalloc` with the new-block strategy ("NA").
    CcMallocNewBlock,
    /// `ccmorph`, clustering only ("CI").
    CcMorphCluster,
    /// `ccmorph`, clustering and coloring ("CI+Col").
    CcMorphClusterColor,
    /// Control experiment: `ccmalloc` machinery with null hints
    /// (Section 4.4 measured this 2–6% *slower* than base).
    CcMallocNullHint,
}

impl Scheme {
    /// The eight schemes of Figure 7, in presentation order.
    pub const FIGURE7: [Scheme; 8] = [
        Scheme::Base,
        Scheme::HwPrefetch,
        Scheme::SwPrefetch,
        Scheme::CcMallocFirstFit,
        Scheme::CcMallocClosest,
        Scheme::CcMallocNewBlock,
        Scheme::CcMorphCluster,
        Scheme::CcMorphClusterColor,
    ];

    /// Figure 7's bar label.
    pub fn label(&self) -> &'static str {
        match self {
            Scheme::Base => "B",
            Scheme::HwPrefetch => "HP",
            Scheme::SwPrefetch => "SP",
            Scheme::CcMallocFirstFit => "FA",
            Scheme::CcMallocClosest => "CA",
            Scheme::CcMallocNewBlock => "NA",
            Scheme::CcMorphCluster => "CI",
            Scheme::CcMorphClusterColor => "CI+Col",
            Scheme::CcMallocNullHint => "NULL",
        }
    }

    /// The allocator this scheme builds structures with.
    pub fn allocator(&self, machine: &MachineConfig) -> Box<dyn Allocator> {
        match self {
            Scheme::CcMallocFirstFit => Box::new(CcMalloc::new(machine, Strategy::FirstFit)),
            Scheme::CcMallocClosest => Box::new(CcMalloc::new(machine, Strategy::Closest)),
            Scheme::CcMallocNewBlock | Scheme::CcMallocNullHint => {
                Box::new(CcMalloc::new(machine, Strategy::NewBlock))
            }
            _ => Box::new(Malloc::new(machine.page_bytes)),
        }
    }

    /// Whether allocations pass co-location hints.
    pub fn uses_hints(&self) -> bool {
        matches!(
            self,
            Scheme::CcMallocFirstFit | Scheme::CcMallocClosest | Scheme::CcMallocNewBlock
        )
    }

    /// Whether traversals emit greedy software prefetches.
    pub fn sw_prefetch(&self) -> bool {
        *self == Scheme::SwPrefetch
    }

    /// Whether the structure is `ccmorph`ed before (or during) the run,
    /// and if so whether coloring is applied too.
    pub fn morph(&self) -> Option<bool> {
        match self {
            Scheme::CcMorphCluster => Some(false),
            Scheme::CcMorphClusterColor => Some(true),
            _ => None,
        }
    }

    /// Pipeline configuration (hardware prefetcher for HP).
    pub fn pipeline_config(&self) -> PipelineConfig {
        match self {
            Scheme::HwPrefetch => PipelineConfig::table1_hw_prefetch(),
            _ => PipelineConfig::table1(),
        }
    }

    /// A ready-to-run pipeline for this scheme on `machine`.
    pub fn pipeline(&self, machine: &MachineConfig) -> Pipeline {
        Pipeline::new(self.pipeline_config(), *machine)
    }
}

/// Outcome of one benchmark run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Which scheme produced it.
    pub scheme: Scheme,
    /// Execution-time breakdown (Figure 7's bar).
    pub breakdown: Breakdown,
    /// Benchmark-defined checksum; must agree across schemes.
    pub checksum: u64,
    /// Allocator statistics (footprint for Section 4.4 overheads).
    pub heap: HeapStats,
    /// L2 demand misses, for miss-rate analyses.
    pub l2_misses: u64,
    /// The heap's final layout (live allocations plus recorded hints),
    /// so a `cc-audit` pass can check the scheme kept its promises.
    pub snapshot: LayoutSnapshot,
}

impl RunResult {
    /// Normalized execution time versus a base run (Figure 7's y-axis).
    pub fn normalized_to(&self, base: &RunResult) -> f64 {
        self.breakdown.normalized_to(&base.breakdown)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure7_has_eight_distinct_schemes() {
        let mut labels: Vec<&str> = Scheme::FIGURE7.iter().map(|s| s.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 8);
    }

    #[test]
    fn hint_usage_matches_scheme() {
        assert!(!Scheme::Base.uses_hints());
        assert!(!Scheme::CcMallocNullHint.uses_hints());
        assert!(Scheme::CcMallocNewBlock.uses_hints());
    }

    #[test]
    fn allocators_have_expected_type() {
        let m = MachineConfig::table1();
        // ccmalloc costs more per call than malloc.
        assert!(
            Scheme::CcMallocNewBlock.allocator(&m).cost_insts()
                > Scheme::Base.allocator(&m).cost_insts()
        );
    }

    #[test]
    fn hw_prefetch_config_only_for_hp() {
        assert!(Scheme::HwPrefetch.pipeline_config().hw_prefetch.is_some());
        assert!(Scheme::Base.pipeline_config().hw_prefetch.is_none());
    }
}
