//! Olden **perimeter**: computes the perimeter of a region represented as
//! a quadtree over a binary image (Table 2: 4K × 4K image).
//!
//! The region is a disk, whose boundary forces subdivision to pixel
//! granularity — the classic quadtree workload. The perimeter is the
//! number of unit edges between black and white/outside cells: for every
//! black leaf the algorithm probes the adjacent cells along each side by
//! descending from the root (each probe is a chain of dependent loads).
//! The tree is built once at start-up in depth-first order and never
//! changes, so — like `treeadd` — the base layout is already close to
//! traversal order and the paper's gains here are modest.
//!
//! Deviation from Olden noted in DESIGN.md: Olden finds neighbours by
//! walking *up* parent pointers to a common ancestor; we probe *down*
//! from the root. Both produce a dependent-load chain of the same length
//! distribution (the path between the leaf and the ancestor); the probe
//! direction concentrates hits near the root, which is also where
//! coloring places the hot elements.

use crate::{RunResult, Scheme};
use cc_core::ccmorph::{CcMorphParams, ColorConfig};
use cc_heap::VirtualSpace;
use cc_sim::event::EventSink;
use cc_sim::MachineConfig;
use cc_trees::quadtree::{Color, QuadTree, QUAD_NODE_BYTES};

/// The disk region predicate: inside iff within radius `size * 3 / 8` of
/// the image center.
pub fn disk(size: u32) -> impl Fn(u32, u32) -> bool {
    let c = f64::from(size) / 2.0;
    let r = f64::from(size) * 3.0 / 8.0;
    move |x, y| {
        let dx = f64::from(x) + 0.5 - c;
        let dy = f64::from(y) + 0.5 - c;
        dx * dx + dy * dy < r * r
    }
}

/// Computes the perimeter of the black region, emitting the full memory
/// trace: a depth-first enumeration of black leaves plus root-down probes
/// of each side's neighbouring cells.
pub fn perimeter<S: EventSink>(tree: &QuadTree, sink: &mut S, sw_prefetch: bool) -> u64 {
    let size = tree.size();
    let mut total = 0u64;
    let mut leaves: Vec<(u32, u32, u32)> = Vec::new();
    tree.for_each_black_leaf(sink, &mut |_, x, y, s| leaves.push((x, y, s)));

    for (x, y, s) in leaves {
        // For each side, walk the adjacent strip one neighbouring leaf at
        // a time.
        // West:
        total += side(tree, sink, x.checked_sub(1), y, s, false, size, sw_prefetch);
        // East:
        let ex = x + s;
        total += side(
            tree,
            sink,
            (ex < size).then_some(ex),
            y,
            s,
            false,
            size,
            sw_prefetch,
        );
        // North:
        total += side(tree, sink, y.checked_sub(1), x, s, true, size, sw_prefetch);
        // South:
        let sy = y + s;
        total += side(
            tree,
            sink,
            (sy < size).then_some(sy),
            x,
            s,
            true,
            size,
            sw_prefetch,
        );
    }
    total
}

/// Walks one side of a black leaf. `fixed` is the coordinate just outside
/// the leaf (None = off the image, so the whole side is boundary);
/// `from..from+len` is the span along the side; `horizontal` selects
/// whether `fixed` is a y (north/south) or x (west/east) coordinate.
#[allow(clippy::too_many_arguments)]
fn side<S: EventSink>(
    tree: &QuadTree,
    sink: &mut S,
    fixed: Option<u32>,
    from: u32,
    len: u32,
    horizontal: bool,
    _size: u32,
    _sw_prefetch: bool,
) -> u64 {
    let Some(fixed) = fixed else {
        return u64::from(len); // image border: all boundary
    };
    let mut boundary = 0u64;
    let mut t = from;
    let end = from + len;
    while t < end {
        let (px, py) = if horizontal { (t, fixed) } else { (fixed, t) };
        let (color, x0, y0, s) = tree.locate(px, py, sink);
        // The found leaf covers [x0, x0+s) × [y0, y0+s): overlap along the
        // side is bounded by the leaf's extent in the walk direction.
        let leaf_from = if horizontal { x0 } else { y0 };
        let covered = (leaf_from + s).min(end) - t;
        if color == Color::White {
            boundary += u64::from(covered);
        }
        t += covered;
    }
    boundary
}

/// Runs perimeter on a `size × size` disk image under `scheme`.
pub fn run(scheme: Scheme, size: u32, machine: &MachineConfig) -> RunResult {
    let mut pipe = scheme.pipeline(machine);
    let mut alloc = scheme.allocator(machine);
    let pred = disk(size);
    let mut tree = QuadTree::build(size, &pred, &mut alloc, &mut pipe, scheme.uses_hints());

    if let Some(color) = scheme.morph() {
        let mut vspace = VirtualSpace::new(machine.page_bytes);
        vspace.skip_pages((1 << 33) / machine.page_bytes);
        // perimeter's dominant pass is the depth-first leaf enumeration
        // (the probes mostly hit the L2-resident tree), so ccmorph packs
        // depth-first chains — the Section 2.1 caveat again.
        let params = CcMorphParams {
            cache: machine.l2,
            page_bytes: machine.page_bytes,
            elem_bytes: QUAD_NODE_BYTES,
            color: color.then(ColorConfig::default),
            cluster_kind: cc_core::cluster::ClusterKind::DepthFirstChain,
        };
        tree.morph(&mut vspace, &params);
    }

    let checksum = perimeter(&tree, &mut pipe, scheme.sw_prefetch());
    let breakdown = pipe.finish();
    RunResult {
        scheme,
        breakdown,
        checksum,
        heap: *alloc.stats(),
        l2_misses: pipe.memory().l2_stats().misses(),
        snapshot: alloc.snapshot(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_heap::Malloc;
    use cc_sim::event::NullSink;

    /// Brute-force perimeter: count black pixels with white/outside
    /// 4-neighbours.
    fn brute(size: u32, inside: &dyn Fn(u32, u32) -> bool) -> u64 {
        let mut p = 0u64;
        for y in 0..size {
            for x in 0..size {
                if !inside(x, y) {
                    continue;
                }
                let neighbours = [
                    (x.wrapping_sub(1), y),
                    (x + 1, y),
                    (x, y.wrapping_sub(1)),
                    (x, y + 1),
                ];
                for (nx, ny) in neighbours {
                    if nx >= size || ny >= size || !inside(nx, ny) {
                        p += 1;
                    }
                }
            }
        }
        p
    }

    #[test]
    fn quarter_plane_perimeter() {
        let size = 64;
        let pred = |x: u32, y: u32| x < 32 && y < 32;
        let mut heap = Malloc::new(8192);
        let tree = QuadTree::build(size, &pred, &mut heap, &mut NullSink, false);
        assert_eq!(perimeter(&tree, &mut NullSink, false), brute(size, &pred));
    }

    #[test]
    fn disk_perimeter_matches_brute_force() {
        let size = 128;
        let pred = disk(size);
        let mut heap = Malloc::new(8192);
        let tree = QuadTree::build(size, &pred, &mut heap, &mut NullSink, false);
        assert_eq!(perimeter(&tree, &mut NullSink, false), brute(size, &pred));
    }

    #[test]
    fn checksums_agree_across_schemes() {
        let machine = MachineConfig::table1();
        let base = run(Scheme::Base, 64, &machine);
        for s in Scheme::FIGURE7 {
            let r = run(s, 64, &machine);
            assert_eq!(r.checksum, base.checksum, "{s:?}");
        }
    }

    #[test]
    fn full_image_has_only_border() {
        let mut heap = Malloc::new(8192);
        let tree = QuadTree::build(32, &|_, _| true, &mut heap, &mut NullSink, false);
        assert_eq!(perimeter(&tree, &mut NullSink, false), 4 * 32);
    }

    #[test]
    fn empty_image_has_no_perimeter() {
        let mut heap = Malloc::new(8192);
        let tree = QuadTree::build(32, &|_, _| false, &mut heap, &mut NullSink, false);
        assert_eq!(perimeter(&tree, &mut NullSink, false), 0);
    }
}
