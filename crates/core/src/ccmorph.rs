//! **`ccmorph`** — transparent cache-conscious tree reorganization
//! (paper Section 3.1.1).
//!
//! `ccmorph` copies a tree-like structure into a contiguous, page-aligned
//! region, packing subtrees into cache blocks ([`crate::cluster`]) and
//! optionally coloring the topmost elements into a reserved region of the
//! cache ([`crate::color`]). It is *semantics-preserving provided the
//! programmer's guarantee holds*: homogeneous elements, no external
//! pointers into the middle of the structure. It is appropriate for
//! read-mostly structures, and can be re-invoked periodically for
//! structures that change slowly (the Olden `health` benchmark does
//! exactly that).
//!
//! The programmer supplies what the paper's Figure 3 shows: the structure
//! (via the [`Topology`] trait, the analogue of `next_node`), the cache
//! parameters, and the color constant. The reorganizer returns a
//! [`Layout`] assigning every reachable node a new simulated address; the
//! client then rewrites its arena's address fields (the "copy") and can
//! charge the copying cost to the simulated machine with
//! [`Layout::charge_copy_cost`].

use crate::cluster::{dfs_chain_clusters, subtree_clusters, ClusterKind};
use crate::color::ColoredSpace;
use crate::error::LayoutError;
use crate::topology::{validate_topology, Topology};
use cc_heap::VirtualSpace;
use cc_sim::event::EventSink;
use cc_sim::{CacheGeometry, MachineConfig};

/// Coloring parameters (the paper's `Color_const` argument).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ColorConfig {
    /// Fraction of the cache's sets reserved for the structure's hot top
    /// (`p / C` in Figure 2). The paper's microbenchmark uses one half.
    pub hot_fraction: f64,
}

impl Default for ColorConfig {
    fn default() -> Self {
        ColorConfig { hot_fraction: 0.5 }
    }
}

/// Everything `ccmorph` needs to know about the machine and the structure
/// element (paper Figure 3: `Cache_sets`, `Cache_blk_size`,
/// `Cache_associativity`, `Color_const`).
#[derive(Clone, Copy, Debug)]
pub struct CcMorphParams {
    /// Geometry of the cache being optimized for (the L2, as with
    /// `ccmalloc`).
    pub cache: CacheGeometry,
    /// Virtual-memory page size (coloring gaps must be page multiples).
    pub page_bytes: u64,
    /// Size of one structure element in bytes.
    pub elem_bytes: u64,
    /// `Some` to color the layout; `None` for clustering only.
    pub color: Option<ColorConfig>,
    /// Which nodes share a block: subtrees (search workloads) or
    /// depth-first chains (sweep workloads) — see [`ClusterKind`].
    pub cluster_kind: ClusterKind,
}

impl CcMorphParams {
    /// Subtree clustering only (the paper's "CI" configuration).
    pub fn clustering_only(machine: &MachineConfig, elem_bytes: u64) -> Self {
        CcMorphParams {
            cache: machine.l2,
            page_bytes: machine.page_bytes,
            elem_bytes,
            color: None,
            cluster_kind: ClusterKind::SubtreeBfs,
        }
    }

    /// Sets the cluster kind (builder-style).
    pub fn with_cluster_kind(self, cluster_kind: ClusterKind) -> Self {
        CcMorphParams {
            cluster_kind,
            ..self
        }
    }

    /// Subtree clustering plus default (half-cache) coloring — the
    /// paper's "CI+Col" configuration and the transparent C-tree layout.
    pub fn clustering_and_coloring(machine: &MachineConfig, elem_bytes: u64) -> Self {
        CcMorphParams {
            color: Some(ColorConfig::default()),
            ..Self::clustering_only(machine, elem_bytes)
        }
    }

    /// Elements per cache block: the paper's `k = ⌊b/e⌋`, at least 1.
    pub fn elems_per_block(&self) -> usize {
        self.cache.elems_per_block(self.elem_bytes) as usize
    }

    /// Bytes reserved per cluster: one cache block, or a whole number of
    /// blocks for oversized elements.
    fn slot_bytes(&self) -> u64 {
        if self.elem_bytes > self.cache.block_bytes() {
            self.elem_bytes.next_multiple_of(self.cache.block_bytes())
        } else {
            self.cache.block_bytes()
        }
    }
}

/// The address assignment `ccmorph` produced.
#[derive(Clone, Debug)]
pub struct Layout {
    addr: Vec<Option<u64>>,
    elem_bytes: u64,
    hot_elems: usize,
    pages_touched: u64,
}

impl Layout {
    /// New address of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` was not reachable from the root when `ccmorph`
    /// ran (unreachable arena slots are not laid out).
    pub fn addr_of(&self, node: usize) -> u64 {
        self.addr_of_checked(node).unwrap_or_else(|e| panic!("{e}"))
    }

    /// New address of `node`, failing with [`LayoutError::NodeNotLaidOut`]
    /// if it was unreachable when `ccmorph` ran.
    pub fn addr_of_checked(&self, node: usize) -> Result<u64, LayoutError> {
        self.try_addr_of(node)
            .ok_or(LayoutError::NodeNotLaidOut { node })
    }

    /// New address of `node`, or `None` if it was unreachable.
    pub fn try_addr_of(&self, node: usize) -> Option<u64> {
        self.addr.get(node).copied().flatten()
    }

    /// Number of elements placed in the colored hot region (0 without
    /// coloring).
    pub fn hot_elems(&self) -> usize {
        self.hot_elems
    }

    /// Pages of physical memory the new layout touches (coloring gaps
    /// excluded — untouched pages cost no RAM).
    pub fn pages_touched(&self) -> u64 {
        self.pages_touched
    }

    /// Number of nodes laid out.
    pub fn len(&self) -> usize {
        self.addr.iter().filter(|a| a.is_some()).count()
    }

    /// Whether no nodes were laid out.
    pub fn is_empty(&self) -> bool {
        self.addr.iter().all(|a| a.is_none())
    }

    /// Charges the cost of the reorganization copy to the simulated
    /// machine: one load of each element at its old address and one store
    /// at its new one, plus bookkeeping instructions. The paper includes
    /// this overhead in its measurements ("the performance results include
    /// the overhead of restructuring the octree", Section 4.3).
    ///
    /// `old_addr_of(node)` must return the node's address before the
    /// reorganization.
    pub fn charge_copy_cost<S, F>(&self, sink: &mut S, old_addr_of: F)
    where
        S: EventSink,
        F: Fn(usize) -> u64,
    {
        let size = self.elem_bytes as u32;
        for (node, slot) in self.addr.iter().enumerate() {
            if let Some(new) = slot {
                sink.inst(6);
                // The copy loop iterates the arena: loads are independent
                // (array-indexed), unlike the pointer chases of traversal.
                sink.load_indep(old_addr_of(node), size);
                sink.store(*new, size);
            }
        }
    }
}

/// Reorganizes the structure, returning its new layout.
///
/// Subtrees of `k = ⌊b/e⌋` elements are packed one per cache block, blocks
/// laid out in breadth-first cluster order. With coloring enabled the
/// clusters nearest the root — the elements a random search is most likely
/// to touch — fill the reserved hot region (up to its conflict-free
/// capacity `p·b·a`); the rest interleave through the cold slots, with
/// page-multiple gaps where hot slots were skipped.
///
/// See the crate-level example for usage.
///
/// # Panics
///
/// Panics with the corresponding [`LayoutError`]'s message on invalid
/// parameters or a topology that breaks the programmer's guarantee; use
/// [`try_ccmorph`] to handle those as values.
pub fn ccmorph<T: Topology>(t: &T, vspace: &mut VirtualSpace, params: &CcMorphParams) -> Layout {
    try_ccmorph(t, vspace, params).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible [`ccmorph`]: validates the parameters and the topology before
/// touching the virtual space, so an `Err` leaves `vspace` unchanged.
///
/// Fails with [`LayoutError::ZeroElemBytes`] or
/// [`LayoutError::ColorOutOfRange`] for bad parameters, and with the
/// [`validate_topology`] errors (cycle, aliased node, dangling child) for
/// structures that break the programmer's guarantee — inputs on which the
/// unchecked traversal would loop forever or silently duplicate nodes.
pub fn try_ccmorph<T: Topology>(
    t: &T,
    vspace: &mut VirtualSpace,
    params: &CcMorphParams,
) -> Result<Layout, LayoutError> {
    if params.elem_bytes == 0 {
        return Err(LayoutError::ZeroElemBytes);
    }
    if let Some(cfg) = params.color {
        if !(cfg.hot_fraction > 0.0 && cfg.hot_fraction < 1.0) {
            return Err(LayoutError::ColorOutOfRange {
                hot_fraction: cfg.hot_fraction,
            });
        }
    }
    validate_topology(t)?;
    Ok(layout_validated(t, vspace, params))
}

/// The layout construction proper; callers have already validated the
/// parameters and topology.
fn layout_validated<T: Topology>(
    t: &T,
    vspace: &mut VirtualSpace,
    params: &CcMorphParams,
) -> Layout {
    let k = params.elems_per_block();
    let clusters = match params.cluster_kind {
        ClusterKind::SubtreeBfs => subtree_clusters(t, k),
        ClusterKind::DepthFirstChain => dfs_chain_clusters(t, k),
    };
    let slot = params.slot_bytes();
    let mut addr = vec![None; t.node_count()];

    let (hot_clusters, pages_touched) = match params.color {
        None => {
            let total = clusters.len() as u64 * slot;
            let base = vspace.align_to(params.cache.block_bytes().max(vspace.page_bytes()));
            if total > 0 {
                vspace.alloc_bytes(total);
            }
            for (i, cluster) in clusters.iter().enumerate() {
                let block_base = base + i as u64 * slot;
                for (j, &node) in cluster.nodes.iter().enumerate() {
                    addr[node] = Some(block_base + j as u64 * params.elem_bytes);
                }
            }
            (0, total.div_ceil(vspace.page_bytes()))
        }
        Some(cfg) => {
            let total = clusters.len() as u64 * slot;
            let mut cs = ColoredSpace::new(
                vspace,
                params.cache,
                params.page_bytes,
                cfg.hot_fraction,
                total,
            );
            // Hot clusters are the *shallowest* in the cluster tree — the
            // "first p elements traversed" of the paper (under random
            // root-to-leaf searches, shallow elements are touched most).
            // Selection is by depth; layout order stays DFS for both
            // regions.
            let hot_budget = (cs.hot_capacity() / slot) as usize;
            let mut by_depth: Vec<usize> = (0..clusters.len()).collect();
            by_depth.sort_by_key(|&i| clusters[i].depth);
            let mut is_hot = vec![false; clusters.len()];
            for &i in by_depth.iter().take(hot_budget) {
                is_hot[i] = true;
            }
            let mut hot_elems = 0;
            for (i, cluster) in clusters.iter().enumerate() {
                let block_base = if is_hot[i] {
                    hot_elems += cluster.nodes.len();
                    cs.alloc_hot(slot)
                } else {
                    cs.alloc_cold(slot)
                };
                for (j, &node) in cluster.nodes.iter().enumerate() {
                    addr[node] = Some(block_base + j as u64 * params.elem_bytes);
                }
            }
            (hot_elems, cs.pages_touched())
        }
    };

    Layout {
        addr,
        elem_bytes: params.elem_bytes,
        hot_elems: hot_clusters,
        pages_touched,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::VecTree;
    use cc_sim::event::TraceBuffer;
    use cc_sim::MachineConfig;

    fn machine() -> MachineConfig {
        MachineConfig::ultrasparc_e5000()
    }

    #[test]
    fn clustering_packs_subtrees_into_blocks() {
        let t = VecTree::complete_binary(4095);
        let mut vs = VirtualSpace::new(8192);
        let layout = ccmorph(&t, &mut vs, &CcMorphParams::clustering_only(&machine(), 20));
        // k = 3: every parent of a full subtree shares a block with its
        // two children.
        let block = |n: usize| layout.addr_of(n) / 64;
        assert_eq!(block(0), block(1));
        assert_eq!(block(0), block(2));
        assert_eq!(block(3), block(7));
        assert_eq!(block(3), block(8));
        // Grandchildren of a cluster root start fresh blocks.
        assert_ne!(block(0), block(3));
    }

    #[test]
    fn all_reachable_nodes_get_unique_addresses() {
        let t = VecTree::complete_binary(1000);
        let mut vs = VirtualSpace::new(8192);
        let layout = ccmorph(&t, &mut vs, &CcMorphParams::clustering_only(&machine(), 20));
        let mut addrs: Vec<u64> = (0..1000).map(|n| layout.addr_of(n)).collect();
        addrs.sort_unstable();
        addrs.dedup();
        assert_eq!(addrs.len(), 1000);
        assert_eq!(layout.len(), 1000);
    }

    #[test]
    fn coloring_places_top_of_tree_hot() {
        let t = VecTree::complete_binary((1 << 18) - 1);
        let mut vs = VirtualSpace::new(8192);
        let params = CcMorphParams::clustering_and_coloring(&machine(), 20);
        let layout = ccmorph(&t, &mut vs, &params);
        assert!(layout.hot_elems() > 0);
        // The root must be hot; the deepest leaf must be cold. Hot slots
        // are offsets < 512 KB within each 1 MB chunk.
        let way = 1 << 20;
        let hot_bytes = 512 * 1024;
        let off = |n: usize| (layout.addr_of(n)) % way;
        assert!(off(0) < hot_bytes, "root in hot region");
        let leaf = (1 << 18) - 2;
        assert!(off(leaf) >= hot_bytes, "deep leaf in cold region");
    }

    #[test]
    fn hot_capacity_respected() {
        let t = VecTree::complete_binary((1 << 18) - 1);
        let mut vs = VirtualSpace::new(8192);
        let params = CcMorphParams::clustering_and_coloring(&machine(), 20);
        let layout = ccmorph(&t, &mut vs, &params);
        // Hot capacity is 512 KB; at one 3-node cluster per 64-byte block
        // that is 8192 clusters = 24576 elements.
        assert_eq!(layout.hot_elems(), 24576);
    }

    #[test]
    fn coloring_costs_no_extra_pages() {
        let t = VecTree::complete_binary((1 << 16) - 1);
        let mut vs1 = VirtualSpace::new(8192);
        let plain = ccmorph(
            &t,
            &mut vs1,
            &CcMorphParams::clustering_only(&machine(), 20),
        );
        let mut vs2 = VirtualSpace::new(8192);
        let colored = ccmorph(
            &t,
            &mut vs2,
            &CcMorphParams::clustering_and_coloring(&machine(), 20),
        );
        // The colored layout's *touched* pages match the plain layout
        // within a page per region: gaps are address space, not memory.
        let diff = colored.pages_touched().abs_diff(plain.pages_touched());
        assert!(
            diff <= 2,
            "colored {} vs plain {}",
            colored.pages_touched(),
            plain.pages_touched()
        );
    }

    #[test]
    fn lists_cluster_consecutive_cells() {
        let t = VecTree::list(100);
        let mut vs = VirtualSpace::new(8192);
        let layout = ccmorph(&t, &mut vs, &CcMorphParams::clustering_only(&machine(), 16));
        // k = 4 cells per 64-byte block.
        let block = |n: usize| layout.addr_of(n) / 64;
        assert_eq!(block(0), block(3));
        assert_ne!(block(0), block(4));
        assert_eq!(block(4), block(7));
    }

    #[test]
    fn oversized_elements_get_block_multiples() {
        let t = VecTree::complete_binary(31);
        let mut vs = VirtualSpace::new(8192);
        let layout = ccmorph(
            &t,
            &mut vs,
            &CcMorphParams::clustering_only(&machine(), 100),
        );
        // 100-byte elements: one per 128-byte (2-block) slot.
        let a: Vec<u64> = (0..31).map(|n| layout.addr_of(n)).collect();
        for w in a.windows(2) {
            assert!(w[1].abs_diff(w[0]) >= 128);
        }
    }

    #[test]
    fn unreachable_nodes_not_laid_out() {
        let mut t = VecTree::new(2);
        let root = t.add_node();
        let kid = t.add_node();
        let _orphan = t.add_node();
        t.link(root, kid);
        let mut vs = VirtualSpace::new(8192);
        let layout = ccmorph(&t, &mut vs, &CcMorphParams::clustering_only(&machine(), 20));
        assert!(layout.try_addr_of(2).is_none());
        assert_eq!(layout.len(), 2);
    }

    #[test]
    fn copy_cost_emits_load_store_per_node() {
        let t = VecTree::complete_binary(7);
        let mut vs = VirtualSpace::new(8192);
        let layout = ccmorph(&t, &mut vs, &CcMorphParams::clustering_only(&machine(), 20));
        let mut buf = TraceBuffer::new();
        layout.charge_copy_cost(&mut buf, |n| 0xdead_0000 + n as u64 * 32);
        assert_eq!(buf.memory_refs(), 14); // 7 loads + 7 stores
    }

    #[test]
    fn empty_structure_is_fine() {
        let t = VecTree::new(2);
        let mut vs = VirtualSpace::new(8192);
        let layout = ccmorph(&t, &mut vs, &CcMorphParams::clustering_only(&machine(), 20));
        assert!(layout.is_empty());
        assert_eq!(layout.pages_touched(), 0);
    }

    #[test]
    fn cyclic_topology_is_a_typed_error_not_a_hang() {
        let mut t = VecTree::new(1);
        let a = t.add_node();
        let b = t.add_node();
        t.link(a, b);
        t.link(b, a);
        let mut vs = VirtualSpace::new(8192);
        let before = vs.span_bytes();
        let err =
            try_ccmorph(&t, &mut vs, &CcMorphParams::clustering_only(&machine(), 20)).unwrap_err();
        assert_eq!(err, LayoutError::CyclicTopology { node: a });
        assert_eq!(
            vs.span_bytes(),
            before,
            "failed morph leaves vspace untouched"
        );
    }

    #[test]
    fn bad_params_are_typed_errors() {
        let t = VecTree::complete_binary(7);
        let mut vs = VirtualSpace::new(8192);
        let zero = CcMorphParams {
            elem_bytes: 0,
            ..CcMorphParams::clustering_only(&machine(), 20)
        };
        assert_eq!(
            try_ccmorph(&t, &mut vs, &zero).unwrap_err(),
            LayoutError::ZeroElemBytes
        );
        let mut hot = CcMorphParams::clustering_and_coloring(&machine(), 20);
        hot.color = Some(ColorConfig { hot_fraction: 1.5 });
        assert_eq!(
            try_ccmorph(&t, &mut vs, &hot).unwrap_err(),
            LayoutError::ColorOutOfRange { hot_fraction: 1.5 }
        );
    }

    #[test]
    #[should_panic(expected = "element size must be nonzero")]
    fn infallible_wrapper_keeps_param_panic_message() {
        let t = VecTree::complete_binary(7);
        let mut vs = VirtualSpace::new(8192);
        let zero = CcMorphParams {
            elem_bytes: 0,
            ..CcMorphParams::clustering_only(&machine(), 20)
        };
        let _ = ccmorph(&t, &mut vs, &zero);
    }

    #[test]
    fn addr_of_checked_reports_unplaced_nodes() {
        let mut t = VecTree::new(2);
        let root = t.add_node();
        let kid = t.add_node();
        let orphan = t.add_node();
        t.link(root, kid);
        let mut vs = VirtualSpace::new(8192);
        let layout = ccmorph(&t, &mut vs, &CcMorphParams::clustering_only(&machine(), 20));
        assert!(layout.addr_of_checked(kid).is_ok());
        assert_eq!(
            layout.addr_of_checked(orphan),
            Err(LayoutError::NodeNotLaidOut { node: orphan })
        );
    }

    #[test]
    fn separate_morphs_do_not_overlap() {
        let t = VecTree::complete_binary(1000);
        let mut vs = VirtualSpace::new(8192);
        let params = CcMorphParams::clustering_and_coloring(&machine(), 20);
        let a = ccmorph(&t, &mut vs, &params);
        let b = ccmorph(&t, &mut vs, &params);
        let max_a = (0..1000).map(|n| a.addr_of(n)).max().unwrap();
        let min_b = (0..1000).map(|n| b.addr_of(n)).min().unwrap();
        assert!(min_b > max_a, "regions must be disjoint");
    }
}
