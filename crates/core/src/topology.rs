//! The structure-topology interface `ccmorph` reorganizes through.

use crate::error::LayoutError;

/// Access to a tree-like structure's shape — the Rust analogue of the
/// `next_node` function a programmer supplies to the paper's `ccmorph`
/// (Figure 3).
///
/// Nodes are identified by arena indices (`usize`), which keeps the
/// reorganizer independent of the client's node representation. The
/// structure must be tree-like: homogeneous elements, no external pointers
/// into the middle (paper Section 3.1.1). Parent/predecessor pointers are
/// allowed — they are simply not reported as children.
///
/// Linked lists are unary trees (`max_kids() == 1`), so the same interface
/// reorganizes lists and chained hash-table buckets.
pub trait Topology {
    /// Total number of nodes (the paper's `Num_nodes` argument).
    fn node_count(&self) -> usize;

    /// The root node, or `None` for an empty structure.
    fn root(&self) -> Option<usize>;

    /// Maximum children per node (the paper's `Max_kids`).
    fn max_kids(&self) -> usize;

    /// The `i`-th child of `node` (0-based), if present.
    fn child(&self, node: usize, i: usize) -> Option<usize>;

    /// Convenience iterator over the present children of `node`.
    fn children(&self, node: usize) -> Children<'_, Self>
    where
        Self: Sized,
    {
        Children {
            topo: self,
            node,
            next: 0,
        }
    }
}

/// Checks the programmer's guarantee `ccmorph` relies on (paper
/// Section 3.1.1): the structure reachable from the root is a genuine
/// tree. Detects, in one iterative DFS:
///
/// * [`LayoutError::DanglingChild`] — a child id outside the arena;
/// * [`LayoutError::CyclicTopology`] — a node reachable through itself
///   (the traversal would otherwise never terminate);
/// * [`LayoutError::AliasedNode`] — a node with two parents (a DAG;
///   copying it would silently duplicate the shared subtree).
///
/// Unreachable arena slots are fine — `ccmorph` simply does not lay them
/// out.
pub fn validate_topology<T: Topology>(t: &T) -> Result<(), LayoutError> {
    let n = t.node_count();
    let Some(root) = t.root() else {
        return Ok(());
    };
    if root >= n {
        return Err(LayoutError::DanglingChild {
            node: root,
            child: root,
        });
    }
    // 0 = unvisited, 1 = on the current DFS path, 2 = finished.
    let mut state = vec![0u8; n];
    let mut stack = vec![(root, false)];
    while let Some((node, leaving)) = stack.pop() {
        if leaving {
            state[node] = 2;
            continue;
        }
        match state[node] {
            1 => return Err(LayoutError::CyclicTopology { node }),
            2 => return Err(LayoutError::AliasedNode { node }),
            _ => {}
        }
        state[node] = 1;
        stack.push((node, true));
        for child in t.children(node) {
            if child >= n {
                return Err(LayoutError::DanglingChild { node, child });
            }
            match state[child] {
                1 => return Err(LayoutError::CyclicTopology { node: child }),
                2 => return Err(LayoutError::AliasedNode { node: child }),
                _ => stack.push((child, false)),
            }
        }
    }
    Ok(())
}

/// Iterator over a node's present children; see [`Topology::children`].
#[derive(Debug)]
pub struct Children<'a, T> {
    topo: &'a T,
    node: usize,
    next: usize,
}

impl<T: Topology> Iterator for Children<'_, T> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        while self.next < self.topo.max_kids() {
            let i = self.next;
            self.next += 1;
            if let Some(c) = self.topo.child(self.node, i) {
                return Some(c);
            }
        }
        None
    }
}

/// A minimal arena-backed n-ary tree used in tests and examples.
#[derive(Clone, Debug, Default)]
pub struct VecTree {
    /// `kids[n]` lists node `n`'s children.
    kids: Vec<Vec<usize>>,
    max_kids: usize,
}

impl VecTree {
    /// Creates an empty tree whose nodes may have up to `max_kids`
    /// children.
    pub fn new(max_kids: usize) -> Self {
        VecTree {
            kids: Vec::new(),
            max_kids,
        }
    }

    /// Adds a node, returning its id. The first node added is the root.
    pub fn add_node(&mut self) -> usize {
        self.kids.push(Vec::new());
        self.kids.len() - 1
    }

    /// Links `child` as the next child of `parent`.
    ///
    /// # Panics
    ///
    /// Panics if `parent` already has `max_kids` children.
    pub fn link(&mut self, parent: usize, child: usize) {
        assert!(
            self.kids[parent].len() < self.max_kids,
            "node {parent} already has {} children",
            self.max_kids
        );
        self.kids[parent].push(child);
    }

    /// Builds a complete binary tree with `n` nodes (heap numbering).
    pub fn complete_binary(n: usize) -> Self {
        let mut t = VecTree::new(2);
        for _ in 0..n {
            t.add_node();
        }
        for i in 0..n {
            if 2 * i + 1 < n {
                t.link(i, 2 * i + 1);
            }
            if 2 * i + 2 < n {
                t.link(i, 2 * i + 2);
            }
        }
        t
    }

    /// Builds a singly linked list of `n` nodes.
    pub fn list(n: usize) -> Self {
        let mut t = VecTree::new(1);
        for _ in 0..n {
            t.add_node();
        }
        for i in 1..n {
            t.link(i - 1, i);
        }
        t
    }
}

impl Topology for VecTree {
    fn node_count(&self) -> usize {
        self.kids.len()
    }

    fn root(&self) -> Option<usize> {
        (!self.kids.is_empty()).then_some(0)
    }

    fn max_kids(&self) -> usize {
        self.max_kids
    }

    fn child(&self, node: usize, i: usize) -> Option<usize> {
        self.kids[node].get(i).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_binary_shape() {
        let t = VecTree::complete_binary(7);
        assert_eq!(t.node_count(), 7);
        assert_eq!(t.root(), Some(0));
        assert_eq!(t.children(0).collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(t.children(3).count(), 0);
    }

    #[test]
    fn list_is_unary() {
        let t = VecTree::list(4);
        assert_eq!(t.max_kids(), 1);
        assert_eq!(t.children(0).collect::<Vec<_>>(), vec![1]);
        assert_eq!(t.children(3).count(), 0);
    }

    #[test]
    fn children_skips_holes() {
        // A node with only a "right" child reported at index 1.
        struct Holey;
        impl Topology for Holey {
            fn node_count(&self) -> usize {
                2
            }
            fn root(&self) -> Option<usize> {
                Some(0)
            }
            fn max_kids(&self) -> usize {
                2
            }
            fn child(&self, node: usize, i: usize) -> Option<usize> {
                (node == 0 && i == 1).then_some(1)
            }
        }
        assert_eq!(Holey.children(0).collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn empty_tree_has_no_root() {
        let t = VecTree::new(2);
        assert_eq!(t.root(), None);
    }

    #[test]
    fn validate_accepts_trees_lists_and_empty() {
        assert_eq!(validate_topology(&VecTree::complete_binary(1023)), Ok(()));
        assert_eq!(validate_topology(&VecTree::list(100)), Ok(()));
        assert_eq!(validate_topology(&VecTree::new(2)), Ok(()));
    }

    #[test]
    fn validate_detects_cycles() {
        let mut t = VecTree::new(1);
        let a = t.add_node();
        let b = t.add_node();
        t.link(a, b);
        t.link(b, a);
        assert_eq!(
            validate_topology(&t),
            Err(crate::LayoutError::CyclicTopology { node: a })
        );
    }

    #[test]
    fn validate_detects_self_loop() {
        let mut t = VecTree::new(1);
        let a = t.add_node();
        t.link(a, a);
        assert_eq!(
            validate_topology(&t),
            Err(crate::LayoutError::CyclicTopology { node: a })
        );
    }

    #[test]
    fn validate_detects_aliased_nodes() {
        let mut t = VecTree::new(2);
        let root = t.add_node();
        let a = t.add_node();
        let b = t.add_node();
        let shared = t.add_node();
        t.link(root, a);
        t.link(root, b);
        t.link(a, shared);
        t.link(b, shared);
        assert_eq!(
            validate_topology(&t),
            Err(crate::LayoutError::AliasedNode { node: shared })
        );
    }

    #[test]
    fn validate_detects_dangling_children() {
        let mut t = VecTree::new(1);
        let a = t.add_node();
        t.link(a, 99);
        assert_eq!(
            validate_topology(&t),
            Err(crate::LayoutError::DanglingChild { node: a, child: 99 })
        );
    }

    #[test]
    fn validate_ignores_unreachable_garbage() {
        let mut t = VecTree::new(1);
        let root = t.add_node();
        let kid = t.add_node();
        let orphan_a = t.add_node();
        let orphan_b = t.add_node();
        t.link(root, kid);
        // The orphans form a cycle among themselves — but ccmorph never
        // traverses them, so the reachable structure is still valid.
        t.link(orphan_a, orphan_b);
        t.link(orphan_b, orphan_a);
        assert_eq!(validate_topology(&t), Ok(()));
    }

    #[test]
    #[should_panic(expected = "already has")]
    fn link_respects_arity() {
        let mut t = VecTree::new(1);
        let a = t.add_node();
        let b = t.add_node();
        let c = t.add_node();
        t.link(a, b);
        t.link(a, c);
    }
}
