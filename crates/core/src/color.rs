//! Coloring (paper Section 2.2): segregating heavily accessed elements
//! into cache sets that infrequently accessed elements can never evict.
//!
//! A cache with `C` sets is split into a *hot* region of `p` sets and a
//! *cold* region of `C − p` sets (Figure 2). The virtual address space is
//! then viewed as a sequence of cache-sized chunks: the first `p·b` bytes
//! of every chunk map to the hot sets, the remainder to the cold sets.
//! Laying hot elements only in hot slots and cold elements only in cold
//! slots guarantees (a) hot elements are only ever evicted by other hot
//! elements, and (b) an associativity-`a` cache gives `a` chunks of
//! conflict-free hot capacity.
//!
//! The resulting gaps in the address space are *multiples of the VM page
//! size* (paper Section 3.1.1), so skipped slots never touch physical
//! memory — coloring costs address space, not RAM.

use cc_heap::VirtualSpace;
use cc_sim::CacheGeometry;

/// The hot bytes per way-sized chunk a [`ColoredSpace`] with these
/// parameters reserves: `hot_fraction` of the way, rounded to whole pages
/// (at least one page hot, at least one page cold). Exposed so analysis
/// passes (`cc-audit`) can reconstruct the exact hot/cold boundary of a
/// colored layout from its parameters alone.
///
/// # Panics
///
/// Panics if `hot_fraction` is not in `(0, 1)` or the way is smaller than
/// two pages — the same preconditions as [`ColoredSpace::new`].
pub fn hot_bytes_per_way(geometry: CacheGeometry, page_bytes: u64, hot_fraction: f64) -> u64 {
    assert!(
        hot_fraction > 0.0 && hot_fraction < 1.0,
        "hot fraction must be in (0, 1), got {hot_fraction}"
    );
    let way_bytes = geometry.way_bytes();
    assert!(
        way_bytes >= 2 * page_bytes,
        "cache way ({way_bytes} B) too small for page-granular coloring"
    );
    let raw = (hot_fraction * way_bytes as f64) as u64;
    let hot_bytes = (raw / page_bytes).max(1) * page_bytes;
    hot_bytes.min(way_bytes - page_bytes)
}

/// A page-aligned region laid out in the Figure 2 hot/cold pattern.
///
/// # Example
///
/// ```
/// use cc_core::color::ColoredSpace;
/// use cc_heap::VirtualSpace;
/// use cc_sim::CacheGeometry;
///
/// let l2 = CacheGeometry::with_capacity(1 << 20, 64, 1);
/// let mut vs = VirtualSpace::new(8192);
/// // Reserve half the cache for hot data, sized for 4 MB of elements.
/// let mut cs = ColoredSpace::new(&mut vs, l2, 8192, 0.5, 4 << 20);
/// let hot = cs.alloc_hot(64);
/// let cold = cs.alloc_cold(64);
/// assert!(cs.is_hot_slot(hot));
/// assert!(!cs.is_hot_slot(cold));
/// // They can never conflict: different cache sets by construction.
/// assert_ne!(l2.set_of(hot), l2.set_of(cold));
/// ```
#[derive(Clone, Debug)]
pub struct ColoredSpace {
    base: u64,
    /// Bytes spanned by one pass over the sets: `sets × block`.
    way_bytes: u64,
    /// Hot bytes at the start of each chunk: `p × block`.
    hot_bytes: u64,
    assoc: u64,
    page_bytes: u64,
    hot_next: u64,
    cold_next: u64,
    region_end: u64,
    bytes_hot: u64,
    bytes_cold: u64,
}

impl ColoredSpace {
    /// Carves a colored region out of `vspace` for a cache shaped like
    /// `geometry`. `hot_fraction` of the sets (rounded so the hot region
    /// is a whole number of pages, as the paper requires) are reserved for
    /// hot data. The region is sized to hold at least `capacity_bytes` of
    /// data (hot + cold combined) and is reserved from `vspace` up front,
    /// so other allocators sharing the address space cannot collide with
    /// it.
    ///
    /// # Panics
    ///
    /// Panics if `hot_fraction` is not in `(0, 1)`, or if the cache way is
    /// smaller than two pages (page-granular coloring needs at least one
    /// hot and one cold page per chunk).
    pub fn new(
        vspace: &mut VirtualSpace,
        geometry: CacheGeometry,
        page_bytes: u64,
        hot_fraction: f64,
        capacity_bytes: u64,
    ) -> Self {
        let way_bytes = geometry.way_bytes();
        let hot_bytes = hot_bytes_per_way(geometry, page_bytes, hot_fraction);

        // Size the region: enough chunks for all data to land cold, plus
        // the associativity's worth of hot chunks, plus slack for block
        // padding.
        let cold_per_chunk = way_bytes - hot_bytes;
        let chunks = capacity_bytes.div_ceil(cold_per_chunk) + geometry.assoc() + 1;

        // Align the region base to the way size so that an address's
        // offset within a chunk equals its cache-set position.
        let base = vspace.align_to(way_bytes.max(page_bytes));
        vspace.alloc_pages(chunks * way_bytes / page_bytes);

        ColoredSpace {
            base,
            way_bytes,
            hot_bytes,
            assoc: geometry.assoc(),
            page_bytes,
            hot_next: base,
            cold_next: base + hot_bytes,
            region_end: base + chunks * way_bytes,
            bytes_hot: 0,
            bytes_cold: 0,
        }
    }

    /// Region base address (aligned to the cache way size).
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Hot bytes per chunk (`p × b`), always a page multiple.
    pub fn hot_bytes_per_way(&self) -> u64 {
        self.hot_bytes
    }

    /// Total conflict-free hot capacity: `p × b × a` (paper Section 2.2 —
    /// each of the `a` ways contributes one chunk's hot region).
    pub fn hot_capacity(&self) -> u64 {
        self.hot_bytes * self.assoc
    }

    /// Bytes allocated hot so far.
    pub fn bytes_hot(&self) -> u64 {
        self.bytes_hot
    }

    /// Bytes allocated cold so far.
    pub fn bytes_cold(&self) -> u64 {
        self.bytes_cold
    }

    /// Approximate pages of physical memory touched (hot runs + cold
    /// runs; each run is page-aligned by construction).
    pub fn pages_touched(&self) -> u64 {
        self.bytes_hot.div_ceil(self.page_bytes) + self.bytes_cold.div_ceil(self.page_bytes)
    }

    /// Whether `addr` lies in a hot slot of this region.
    pub fn is_hot_slot(&self, addr: u64) -> bool {
        addr >= self.base && (addr - self.base) % self.way_bytes < self.hot_bytes
    }

    /// Allocates `size` bytes in the hot region, never splitting an
    /// element across the hot/cold boundary. Allocating beyond
    /// [`Self::hot_capacity`] keeps working but starts conflicting with
    /// earlier hot data — callers (like `ccmorph`) cap themselves.
    pub fn alloc_hot(&mut self, size: u64) -> u64 {
        assert!(size > 0 && size <= self.hot_bytes, "bad hot allocation");
        let chunk = (self.hot_next - self.base) / self.way_bytes;
        let chunk_hot_end = self.base + chunk * self.way_bytes + self.hot_bytes;
        if self.hot_next + size > chunk_hot_end {
            // Jump to the next chunk's hot region.
            self.hot_next = self.base + (chunk + 1) * self.way_bytes;
        }
        let addr = self.hot_next;
        assert!(
            addr + size <= self.region_end,
            "colored region exhausted (hot); size it with a larger capacity"
        );
        self.hot_next += size;
        self.bytes_hot += size;
        addr
    }

    /// Allocates `size` bytes in the cold region, skipping every hot slot.
    pub fn alloc_cold(&mut self, size: u64) -> u64 {
        assert!(
            size > 0 && size <= self.way_bytes - self.hot_bytes,
            "bad cold allocation"
        );
        // If the cursor sits inside a hot slot (e.g. exactly on a chunk
        // boundary after filling the previous cold region), skip past it.
        let off = (self.cold_next - self.base) % self.way_bytes;
        if off < self.hot_bytes {
            self.cold_next += self.hot_bytes - off;
        }
        let chunk = (self.cold_next - self.base) / self.way_bytes;
        let chunk_end = self.base + (chunk + 1) * self.way_bytes;
        if self.cold_next + size > chunk_end {
            // Jump past the next chunk's hot region.
            self.cold_next = chunk_end + self.hot_bytes;
        }
        let addr = self.cold_next;
        assert!(
            addr + size <= self.region_end,
            "colored region exhausted (cold); size it with a larger capacity"
        );
        self.cold_next += size;
        self.bytes_cold += size;
        addr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space(hot_fraction: f64) -> (VirtualSpace, ColoredSpace) {
        let l2 = CacheGeometry::with_capacity(1 << 20, 64, 1);
        let mut vs = VirtualSpace::new(8192);
        let cs = ColoredSpace::new(&mut vs, l2, 8192, hot_fraction, 16 << 20);
        (vs, cs)
    }

    #[test]
    fn base_is_way_aligned() {
        let (_, cs) = space(0.5);
        assert_eq!(cs.base() % (1 << 20), 0);
    }

    #[test]
    fn hot_region_is_page_multiple() {
        let (_, cs) = space(0.33);
        assert_eq!(cs.hot_bytes_per_way() % 8192, 0);
        assert!(cs.hot_bytes_per_way() > 0);
    }

    #[test]
    fn hot_and_cold_never_share_a_set() {
        let l2 = CacheGeometry::with_capacity(1 << 20, 64, 1);
        let (_, mut cs) = space(0.5);
        let hot_sets: Vec<u64> = (0..100).map(|_| l2.set_of(cs.alloc_hot(64))).collect();
        let cold_sets: Vec<u64> = (0..100_000).map(|_| l2.set_of(cs.alloc_cold(64))).collect();
        for h in &hot_sets {
            assert!(!cold_sets.contains(h));
        }
    }

    #[test]
    fn cold_allocation_skips_hot_slots_of_every_chunk() {
        let (_, mut cs) = space(0.5);
        // Allocate more cold data than one chunk's cold region (512 KB).
        let mut last = 0;
        for _ in 0..20_000 {
            let a = cs.alloc_cold(64);
            assert!(!cs.is_hot_slot(a), "cold alloc landed hot: {a:#x}");
            assert!(a >= last);
            last = a;
        }
        assert!(cs.bytes_cold() > 1 << 20, "spanned multiple chunks");
    }

    #[test]
    fn hot_overflow_moves_to_next_chunk() {
        let (_, mut cs) = space(0.5);
        let per_chunk = cs.hot_bytes_per_way();
        let n = per_chunk / 64;
        for _ in 0..n {
            cs.alloc_hot(64);
        }
        let next = cs.alloc_hot(64);
        assert!(cs.is_hot_slot(next));
        assert_eq!((next - cs.base()) / (1 << 20), 1, "second chunk");
    }

    #[test]
    fn elements_never_straddle_the_boundary() {
        let (_, mut cs) = space(0.5);
        // 48-byte elements don't divide the hot region evenly.
        for _ in 0..100_000 {
            let a = cs.alloc_cold(48);
            assert!(!cs.is_hot_slot(a));
            assert!(!cs.is_hot_slot(a + 47));
        }
    }

    #[test]
    fn pages_touched_excludes_gaps() {
        let (_, mut cs) = space(0.5);
        for _ in 0..32768 {
            cs.alloc_cold(64); // 2 MB of cold data = 4 chunks' cold halves
        }
        let touched = cs.pages_touched();
        let span_pages = 4 * (1 << 20) / 8192;
        assert!(touched < span_pages, "{touched} < {span_pages}");
        assert_eq!(touched, 2 * 1024 * 1024 / 8192);
    }

    #[test]
    fn two_way_cache_doubles_hot_capacity() {
        let l2 = CacheGeometry::with_capacity(256 * 1024, 128, 2);
        let mut vs = VirtualSpace::new(8192);
        let cs = ColoredSpace::new(&mut vs, l2, 8192, 0.5, 1 << 20);
        assert_eq!(cs.hot_capacity(), 2 * cs.hot_bytes_per_way());
    }

    #[test]
    #[should_panic(expected = "hot fraction")]
    fn rejects_full_hot_fraction() {
        let l2 = CacheGeometry::with_capacity(1 << 20, 64, 1);
        let mut vs = VirtualSpace::new(8192);
        let _ = ColoredSpace::new(&mut vs, l2, 8192, 1.0, 1 << 20);
    }
}
