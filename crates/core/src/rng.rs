//! A tiny deterministic PRNG (SplitMix64) so layout randomization needs no
//! external dependency and is reproducible across platforms.

/// SplitMix64: Steele, Lea & Flood's statistically solid 64-bit generator.
/// Used only for the *randomly clustered* baseline layout, never for
/// anything cryptographic.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)` via Lemire's multiply-shift reduction
    /// (bias is negligible for the permutation sizes used here).
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be nonzero");
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SplitMix64::new(7);
        for _ in 0..1000 {
            assert!(r.below(13) < 13);
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SplitMix64::new(3);
        let mut xs: Vec<u32> = (0..100).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(xs, (0..100).collect::<Vec<_>>(), "seed 3 shuffles");
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn below_zero_bound_panics() {
        SplitMix64::new(1).below(0);
    }
}
