//! Cache-conscious structure layout: the primary contribution of
//! *Cache-Conscious Structure Layout* (Chilimbi, Hill & Larus, PLDI 1999).
//!
//! Pointer structures have a property arrays lack — **locational
//! transparency**: elements can be placed at any address without changing
//! program semantics. This crate packages the paper's two placement
//! techniques and its transparent reorganizer:
//!
//! * [`cluster`] — **clustering** (Section 2.1): pack structure elements
//!   likely to be accessed contemporaneously into the same cache block.
//!   For trees, pack *subtrees*: for random searches a k-node subtree in a
//!   block yields ~log2(k+1) accesses per block fetched, versus ≤ 2 for a
//!   depth-first parent-child-grandchild chain.
//! * [`color`] — **coloring** (Section 2.2): partition the cache's sets
//!   into a *hot* region of `p` sets and a *cold* region of `C − p` sets,
//!   and lay addresses out so frequently accessed elements map only to hot
//!   sets — they can never be evicted by the cold ones.
//! * [`ccmorph`] — the semi-automatic tool (Section 3.1): given a
//!   [`Topology`] (the analogue of the paper's programmer-supplied
//!   `next_node` function, Figure 3), copy a tree-like structure into a
//!   contiguous page-aligned region, subtree-clustered and optionally
//!   colored. Appropriate for read-mostly structures; for structures that
//!   change slowly it can be re-invoked periodically.
//!
//! The companion allocator `ccmalloc` lives in the `cc-heap` crate.
//!
//! # Example: reorganizing a small binary tree
//!
//! ```
//! use cc_core::{ccmorph::{ccmorph, CcMorphParams}, Topology};
//! use cc_heap::VirtualSpace;
//! use cc_sim::MachineConfig;
//!
//! /// A binary tree stored in an arena: nodes[i] = (left, right).
//! struct Tree(Vec<(Option<usize>, Option<usize>)>);
//! impl Topology for Tree {
//!     fn node_count(&self) -> usize { self.0.len() }
//!     fn root(&self) -> Option<usize> { (!self.0.is_empty()).then_some(0) }
//!     fn max_kids(&self) -> usize { 2 }
//!     fn child(&self, n: usize, i: usize) -> Option<usize> {
//!         match i { 0 => self.0[n].0, 1 => self.0[n].1, _ => None }
//!     }
//! }
//!
//! // A 7-node complete tree.
//! let t = Tree(vec![
//!     (Some(1), Some(2)),
//!     (Some(3), Some(4)), (Some(5), Some(6)),
//!     (None, None), (None, None), (None, None), (None, None),
//! ]);
//! let machine = MachineConfig::ultrasparc_e5000();
//! let mut vs = VirtualSpace::new(machine.page_bytes);
//! let layout = ccmorph(&t, &mut vs, &CcMorphParams::clustering_only(&machine, 20));
//! // Root and both children share one 64-byte cache block.
//! let block = |n: usize| layout.addr_of(n) / 64;
//! assert_eq!(block(0), block(1));
//! assert_eq!(block(0), block(2));
//! // The grandchild level starts new blocks.
//! assert_ne!(block(0), block(3));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod affinity;
pub mod ccmorph;
pub mod cluster;
pub mod color;
pub mod error;
pub mod field_layout;
pub mod rng;
pub mod topology;

pub use ccmorph::{ccmorph, try_ccmorph, CcMorphParams, ColorConfig, Layout};
pub use cluster::Order;
pub use color::ColoredSpace;
pub use error::LayoutError;
pub use field_layout::{
    reorder_fields, soa_convert, split_hot_cold, try_reorder_fields, try_soa_convert,
    try_split_hot_cold, FieldDef, FieldLayout, FieldLayoutParams, FieldSchema, FieldTransform,
    HotSpec,
};
pub use topology::{validate_topology, Topology};
