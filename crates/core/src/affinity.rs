//! Static affinity extraction from a [`Topology`].
//!
//! Clustering's promise is about *pairs*: elements accessed
//! contemporaneously should share a cache block. For tree-like structures
//! the high-affinity pairs are structural — a traversal that visits a
//! node is likely to visit its children next (subtree clustering,
//! Section 2.1) or its depth-first successor (the paper's
//! depth-first comparison layout). These helpers enumerate both pair
//! sets, plus node depths (the heat proxy `ccmorph` itself uses: for
//! random searches, expected accesses fall geometrically with depth), so
//! `cc-audit` can score a concrete layout without running a workload.

use crate::topology::Topology;

/// All `(parent, child)` edges, in preorder. These are the hint edges a
/// `ccmalloc`-style allocation of the tree would pass, and the pairs
/// subtree clustering tries to co-locate.
pub fn parent_child_pairs<T: Topology>(topo: &T) -> Vec<(usize, usize)> {
    let mut pairs = Vec::new();
    let Some(root) = topo.root() else {
        return pairs;
    };
    let mut stack = vec![root];
    while let Some(n) = stack.pop() {
        // Push in reverse so children pop in order.
        let kids: Vec<usize> = topo.children(n).collect();
        for &c in kids.iter().rev() {
            pairs.push((n, c));
            stack.push(c);
        }
    }
    pairs
}

/// Consecutive pairs of the preorder (depth-first) visit sequence — the
/// affinity a depth-first *traversal* exercises, and what a depth-first
/// chain clustering ([`crate::cluster::ClusterKind::DepthFirstChain`])
/// optimizes for.
pub fn preorder_chain_pairs<T: Topology>(topo: &T) -> Vec<(usize, usize)> {
    let order = preorder(topo);
    order.windows(2).map(|w| (w[0], w[1])).collect()
}

/// The preorder visit sequence itself.
pub fn preorder<T: Topology>(topo: &T) -> Vec<usize> {
    let mut order = Vec::with_capacity(topo.node_count());
    let Some(root) = topo.root() else {
        return order;
    };
    let mut stack = vec![root];
    while let Some(n) = stack.pop() {
        order.push(n);
        let kids: Vec<usize> = topo.children(n).collect();
        for &c in kids.iter().rev() {
            stack.push(c);
        }
    }
    order
}

/// Depth of every reachable node (root = 0); unreachable nodes get
/// `usize::MAX`. Depth is the static heat proxy: level `d` of a tree is
/// visited by a random root-to-leaf search with probability ~2^-d times
/// the fan-out, so shallow nodes are hot.
pub fn node_depths<T: Topology>(topo: &T) -> Vec<usize> {
    let mut depths = vec![usize::MAX; topo.node_count()];
    let Some(root) = topo.root() else {
        return depths;
    };
    depths[root] = 0;
    let mut queue = std::collections::VecDeque::from([root]);
    while let Some(n) = queue.pop_front() {
        for c in topo.children(n) {
            if depths[c] == usize::MAX {
                depths[c] = depths[n] + 1;
                queue.push_back(c);
            }
        }
    }
    depths
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::VecTree;

    #[test]
    fn parent_child_pairs_cover_every_edge() {
        let t = VecTree::complete_binary(7);
        let pairs = parent_child_pairs(&t);
        assert_eq!(pairs.len(), 6, "n-1 edges");
        assert!(pairs.contains(&(0, 1)));
        assert!(pairs.contains(&(2, 6)));
        assert!(!pairs.contains(&(1, 0)), "directed parent→child");
    }

    #[test]
    fn preorder_chain_of_list_is_the_list() {
        let t = VecTree::list(4);
        assert_eq!(preorder(&t), vec![0, 1, 2, 3]);
        assert_eq!(preorder_chain_pairs(&t), vec![(0, 1), (1, 2), (2, 3)]);
    }

    #[test]
    fn preorder_of_binary_tree() {
        let t = VecTree::complete_binary(7);
        assert_eq!(preorder(&t), vec![0, 1, 3, 4, 2, 5, 6]);
    }

    #[test]
    fn depths_follow_levels() {
        let t = VecTree::complete_binary(7);
        assert_eq!(node_depths(&t), vec![0, 1, 1, 2, 2, 2, 2]);
    }

    #[test]
    fn empty_topology_yields_nothing() {
        let t = VecTree::new(2);
        assert!(parent_child_pairs(&t).is_empty());
        assert!(preorder_chain_pairs(&t).is_empty());
        assert!(node_depths(&t).is_empty());
    }
}
