//! Clustering (paper Section 2.1): choosing which structure elements share
//! a cache block.
//!
//! For a series of random tree searches, a cache block holding a *k-node
//! subtree* is accessed ~log2(k+1) times per fetch, while a block holding a
//! depth-first parent-child-grandchild chain is accessed < 2 times
//! (paper's geometric-series argument in Section 2.1). [`subtree_clusters`]
//! computes the subtree packing; [`order`] produces the baseline layouts
//! (depth-first, breadth-first, random) the evaluation compares against.

use crate::rng::SplitMix64;
use crate::topology::Topology;
use std::collections::VecDeque;

/// Baseline layout orders for a tree-like structure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Order {
    /// Pre-order depth-first — what allocation order produces when a tree
    /// is built by a recursive constructor (the Olden benchmarks), and the
    /// "depth-first clustered" layout of the paper's microbenchmark.
    DepthFirst,
    /// Level order.
    BreadthFirst,
    /// A seeded random permutation — the "randomly clustered" baseline,
    /// modelling a heap whose allocation order bears no relation to the
    /// structure (e.g. after heavy churn).
    Random {
        /// PRNG seed, for reproducibility.
        seed: u64,
    },
}

/// Lists the structure's reachable nodes in the given order.
///
/// # Example
///
/// ```
/// use cc_core::cluster::{order, Order};
/// use cc_core::topology::VecTree;
///
/// let t = VecTree::complete_binary(7);
/// assert_eq!(order(&t, Order::DepthFirst), vec![0, 1, 3, 4, 2, 5, 6]);
/// assert_eq!(order(&t, Order::BreadthFirst), vec![0, 1, 2, 3, 4, 5, 6]);
/// ```
pub fn order<T: Topology>(t: &T, order: Order) -> Vec<usize> {
    let mut out = Vec::with_capacity(t.node_count());
    let Some(root) = t.root() else {
        return out;
    };
    match order {
        Order::DepthFirst => {
            // Explicit stack; trees can be millions of nodes deep in the
            // pathological case and must not overflow the host stack.
            let mut stack = vec![root];
            while let Some(n) = stack.pop() {
                out.push(n);
                let kids: Vec<usize> = t.children(n).collect();
                // Push right-to-left so the leftmost child is visited next.
                for c in kids.into_iter().rev() {
                    stack.push(c);
                }
            }
        }
        Order::BreadthFirst => {
            let mut q = VecDeque::from([root]);
            while let Some(n) = q.pop_front() {
                out.push(n);
                q.extend(t.children(n));
            }
        }
        Order::Random { seed } => {
            out = self::order(t, Order::DepthFirst);
            SplitMix64::new(seed).shuffle(&mut out);
        }
    }
    out
}

/// Which nodes `ccmorph` packs together in a cache block.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ClusterKind {
    /// Subtrees per block ([`subtree_clusters`]) — maximizes per-fetch
    /// use for root-to-leaf searches (Section 2.1's analysis).
    #[default]
    SubtreeBfs,
    /// Pre-order chains per block ([`dfs_chain_clusters`]) — streams for
    /// depth-first sweeps, where subtree packing would refetch blocks.
    DepthFirstChain,
}

/// One cache-block's worth of subtree, with its depth in the cluster tree
/// (the root cluster has depth 0).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cluster {
    /// Member nodes, cluster-root first.
    pub nodes: Vec<usize>,
    /// Depth of this cluster's root in the *cluster* tree. Coloring uses
    /// this: the shallowest clusters are the hottest under random
    /// searches.
    pub depth: u32,
}

/// Partitions the structure's reachable nodes into subtree clusters of at
/// most `k` nodes each.
///
/// Each cluster is filled by truncated breadth-first expansion from its
/// cluster root, which for a complete binary tree and `k = 2^h − 1`
/// produces exactly the height-`h` subtrees of Figure 1. Children left
/// outside a full cluster seed new clusters.
///
/// Clusters are returned in **depth-first order of the cluster tree**, so
/// laying them out sequentially also serves depth-first sweeps well
/// (treeadd, perimeter): a DFS that leaves a cluster returns to addresses
/// just ahead of the cursor. Intra-block membership — the property the
/// Section 2.1 analysis is about — is the same whatever the inter-block
/// order; hot/cold selection for coloring uses [`Cluster::depth`], not
/// position.
///
/// For unary structures (`max_kids() == 1`, i.e. linked lists) this packs
/// `k` consecutive cells per block, which is how `ccmorph` reorganizes the
/// lists and hash-chains of the Olden benchmarks.
///
/// # Panics
///
/// Panics if `k` is zero.
///
/// # Example
///
/// ```
/// use cc_core::cluster::subtree_clusters;
/// use cc_core::topology::VecTree;
///
/// let t = VecTree::complete_binary(15);
/// let clusters = subtree_clusters(&t, 3);
/// assert_eq!(clusters[0].nodes, vec![0, 1, 2]); // root subtree
/// assert_eq!(clusters.len(), 5);                // 1 + 4 grandchild subtrees
/// assert_eq!(clusters[1].depth, 1);
/// ```
pub fn subtree_clusters<T: Topology>(t: &T, k: usize) -> Vec<Cluster> {
    assert!(k > 0, "cluster capacity must be nonzero");
    let mut clusters = Vec::new();
    let Some(root) = t.root() else {
        return clusters;
    };
    // Stack of (cluster-root node, cluster depth): DFS over the cluster
    // tree.
    let mut roots = vec![(root, 0u32)];
    while let Some((start, depth)) = roots.pop() {
        let mut nodes = Vec::with_capacity(k);
        let mut frontier = VecDeque::from([start]);
        let mut overflow = Vec::new();
        while let Some(n) = frontier.pop_front() {
            if nodes.len() == k {
                // Doesn't fit: seeds a child cluster.
                overflow.push(n);
                continue;
            }
            nodes.push(n);
            frontier.extend(t.children(n));
        }
        // Push child clusters right-to-left so the leftmost is processed
        // next (pre-order DFS).
        for n in overflow.into_iter().rev() {
            roots.push((n, depth + 1));
        }
        clusters.push(Cluster { nodes, depth });
    }
    clusters
}

/// Packs the structure's nodes into clusters of `k` along the *pre-order
/// depth-first* visit sequence — the right clustering when the consuming
/// traversal is itself a depth-first sweep (Olden's `treeadd`), as the
/// paper's Section 2.1 notes: "for specific access patterns, such as
/// depth-first search, other clustering schemes may be better."
///
/// Cluster `depth` is the tree depth of the cluster's first node, so
/// coloring still pulls root-side clusters hot.
///
/// # Panics
///
/// Panics if `k` is zero.
pub fn dfs_chain_clusters<T: Topology>(t: &T, k: usize) -> Vec<Cluster> {
    assert!(k > 0, "cluster capacity must be nonzero");
    let mut clusters = Vec::new();
    let Some(root) = t.root() else {
        return clusters;
    };
    let mut stack = vec![(root, 0u32)];
    let mut current: Vec<usize> = Vec::with_capacity(k);
    let mut current_depth = 0u32;
    while let Some((n, d)) = stack.pop() {
        if current.is_empty() {
            current_depth = d;
        }
        current.push(n);
        if current.len() == k {
            clusters.push(Cluster {
                nodes: std::mem::take(&mut current),
                depth: current_depth,
            });
        }
        let kids: Vec<usize> = t.children(n).collect();
        for c in kids.into_iter().rev() {
            stack.push((c, d + 1));
        }
    }
    if !current.is_empty() {
        clusters.push(Cluster {
            nodes: current,
            depth: current_depth,
        });
    }
    clusters
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::VecTree;

    #[test]
    fn dfs_matches_recursive_preorder() {
        let t = VecTree::complete_binary(15);
        let got = order(&t, Order::DepthFirst);
        assert_eq!(got[..6], [0, 1, 3, 7, 8, 4]);
        assert_eq!(got.len(), 15);
    }

    #[test]
    fn random_is_permutation_and_seed_dependent() {
        let t = VecTree::complete_binary(63);
        let a = order(&t, Order::Random { seed: 1 });
        let b = order(&t, Order::Random { seed: 1 });
        let c = order(&t, Order::Random { seed: 2 });
        assert_eq!(a, b);
        assert_ne!(a, c);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..63).collect::<Vec<_>>());
    }

    #[test]
    fn clusters_cover_all_nodes_exactly_once() {
        let t = VecTree::complete_binary(100);
        let clusters = subtree_clusters(&t, 3);
        let mut all: Vec<usize> = clusters.into_iter().flat_map(|c| c.nodes).collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cluster_of_complete_tree_is_subtrees() {
        let t = VecTree::complete_binary(15);
        let clusters = subtree_clusters(&t, 3);
        assert_eq!(clusters[0].nodes, vec![0, 1, 2]);
        // Each remaining cluster is a node plus its two children.
        for c in &clusters[1..] {
            assert_eq!(c.nodes.len(), 3);
            let root = c.nodes[0];
            assert_eq!(c.nodes[1], 2 * root + 1);
            assert_eq!(c.nodes[2], 2 * root + 2);
            assert_eq!(c.depth, 1);
        }
    }

    #[test]
    fn clusters_are_in_dfs_order() {
        let t = VecTree::complete_binary(127);
        let clusters = subtree_clusters(&t, 7);
        // Root cluster holds nodes 0..6; its first child cluster must be
        // the leftmost grandchild subtree (rooted at node 7).
        assert_eq!(clusters[0].nodes[0], 0);
        assert_eq!(clusters[1].nodes[0], 7);
        assert_eq!(clusters[1].depth, 1);
        // DFS: a deeper cluster can precede a shallower one later on.
        let depths: Vec<u32> = clusters.iter().map(|c| c.depth).collect();
        assert!(depths.windows(2).any(|w| w[1] < w[0]), "{depths:?}");
    }

    #[test]
    fn depths_count_cluster_levels() {
        let t = VecTree::complete_binary(127);
        let clusters = subtree_clusters(&t, 7); // height-3 subtrees
        let max_depth = clusters.iter().map(|c| c.depth).max().unwrap();
        // 7 tree levels / 3 per cluster => cluster-tree depth 2.
        assert_eq!(max_depth, 2);
    }

    #[test]
    fn list_clustering_packs_consecutive_cells() {
        let t = VecTree::list(10);
        let clusters = subtree_clusters(&t, 3);
        let nodes: Vec<Vec<usize>> = clusters.iter().map(|c| c.nodes.clone()).collect();
        assert_eq!(
            nodes,
            vec![vec![0, 1, 2], vec![3, 4, 5], vec![6, 7, 8], vec![9]]
        );
        let depths: Vec<u32> = clusters.iter().map(|c| c.depth).collect();
        assert_eq!(depths, vec![0, 1, 2, 3]);
    }

    #[test]
    fn k_one_gives_singletons() {
        let t = VecTree::complete_binary(7);
        let clusters = subtree_clusters(&t, 1);
        assert_eq!(clusters.len(), 7);
        assert!(clusters.iter().all(|c| c.nodes.len() == 1));
    }

    #[test]
    fn empty_tree_yields_nothing() {
        let t = VecTree::new(2);
        assert!(order(&t, Order::DepthFirst).is_empty());
        assert!(subtree_clusters(&t, 3).is_empty());
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_k_panics() {
        let t = VecTree::complete_binary(3);
        subtree_clusters(&t, 0);
    }
}
