//! **Field-level layout transforms** — hot/cold structure splitting,
//! field reordering, and SoA conversion as first-class layouts alongside
//! clustering and coloring.
//!
//! `ccmorph` places *whole objects*; these transforms rearrange the bytes
//! *inside* each object, the companion direction the paper sketches for
//! structures too big to cluster profitably:
//!
//! * [`split_hot_cold`] — pack the hot fields into a small hot half laid
//!   out with the full clustering machinery (the hot halves are what
//!   traversals touch, so they get the cache-conscious placement) and
//!   exile the cold fields to an index-linked cold arena;
//! * [`reorder_fields`] — the `cc-lint` optimal reorder applied to the
//!   in-heap object model: one contiguous object per node, fields packed
//!   (align desc, size desc) with hot fields first when a [`HotSpec`] is
//!   given;
//! * [`soa_convert`] — structure-of-arrays conversion for array-ish node
//!   pools: one parallel array per field, indexed by node id.
//!
//! Each transform follows the `ccmorph` contract: the fallible `try_*`
//! form validates the schema, the parameters, and (where a topology is
//! involved) the programmer's guarantee *before* touching the
//! [`VirtualSpace`], so an `Err` leaves the space unchanged; the classic
//! form panics with the error's `Display` text. Each produced
//! [`FieldLayout`] can render itself as a [`LayoutSnapshot`] the existing
//! auditor understands.
//!
//! Because `split_hot_cold` lays its hot halves out through the *same*
//! clustering path as `ccmorph` (with `elem_bytes` = the packed hot
//! stride), splitting composes with clustering by construction:
//! `ccmorph` at the hot stride and the hot half of a split produce
//! identical addresses, pages, and hot-element counts.

use crate::ccmorph::{try_ccmorph, CcMorphParams, ColorConfig, Layout};
use crate::cluster::ClusterKind;
use crate::error::LayoutError;
use crate::topology::Topology;
use cc_heap::{AllocRecord, LayoutSnapshot, VirtualSpace};
use cc_sim::{CacheGeometry, MachineConfig};

/// One field of the simulated object: a name, a size, and an alignment —
/// the in-heap analogue of a `cc-lint` `SizedField`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FieldDef {
    /// Field name (unique within the schema).
    pub name: String,
    /// Size in bytes (nonzero).
    pub size: u64,
    /// Alignment in bytes (a power of two).
    pub align: u64,
}

impl FieldDef {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, size: u64, align: u64) -> Self {
        FieldDef {
            name: name.into(),
            size,
            align,
        }
    }
}

/// The declared shape of the structure being transformed: an ordered
/// list of fields, as the source declares them.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FieldSchema {
    strukt: String,
    fields: Vec<FieldDef>,
}

impl FieldSchema {
    /// A schema for struct `strukt` with `fields` in declaration order.
    /// Validation happens at transform time (so the typed-error contract
    /// is uniform with the parameter checks).
    pub fn new(strukt: impl Into<String>, fields: Vec<FieldDef>) -> Self {
        FieldSchema {
            strukt: strukt.into(),
            fields,
        }
    }

    /// The struct name.
    pub fn struct_name(&self) -> &str {
        &self.strukt
    }

    /// The declared fields.
    pub fn fields(&self) -> &[FieldDef] {
        &self.fields
    }

    /// Declaration index of `name`.
    pub fn field_index(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }

    fn validate(&self) -> Result<(), LayoutError> {
        if self.fields.is_empty() {
            return Err(LayoutError::EmptySchema);
        }
        for (i, f) in self.fields.iter().enumerate() {
            if f.size == 0 {
                return Err(LayoutError::ZeroFieldSize { field: i });
            }
            if !f.align.is_power_of_two() {
                return Err(LayoutError::FieldAlignNotPow2 { field: i });
            }
            if self.fields[..i].iter().any(|g| g.name == f.name) {
                return Err(LayoutError::DuplicateField { field: i });
            }
        }
        Ok(())
    }
}

/// Which fields are hot, with observed weights — the dynamic profile
/// that drives [`split_hot_cold`] and biases [`reorder_fields`]. The
/// flat `"field": weight` shape round-trips with `cc-profile`'s field
/// heat map and `cc-lint --hot`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct HotSpec {
    entries: Vec<(String, f64)>,
}

impl HotSpec {
    /// An empty spec (nothing hot).
    pub fn new() -> Self {
        HotSpec::default()
    }

    /// Builds a spec from `(field, weight)` pairs; entries with
    /// non-positive weight are dropped (they carry no heat).
    pub fn from_weights<I, S>(weights: I) -> Self
    where
        I: IntoIterator<Item = (S, f64)>,
        S: Into<String>,
    {
        HotSpec {
            entries: weights
                .into_iter()
                .map(|(n, w)| (n.into(), w))
                .filter(|(_, w)| *w > 0.0)
                .collect(),
        }
    }

    /// Marks `field` hot with unit weight (builder-style).
    pub fn mark(mut self, field: impl Into<String>) -> Self {
        self.entries.push((field.into(), 1.0));
        self
    }

    /// Whether `field` is marked hot.
    pub fn is_hot(&self, field: &str) -> bool {
        self.entries.iter().any(|(n, _)| n == field)
    }

    /// The observed weight of `field` (0 if unmarked).
    pub fn weight(&self, field: &str) -> f64 {
        self.entries
            .iter()
            .find(|(n, _)| n == field)
            .map_or(0.0, |(_, w)| *w)
    }

    /// Whether nothing is marked hot.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The `(field, weight)` entries in insertion order.
    pub fn entries(&self) -> &[(String, f64)] {
        &self.entries
    }

    fn validate_against(&self, schema: &FieldSchema) -> Result<(), LayoutError> {
        for (i, (name, _)) in self.entries.iter().enumerate() {
            if schema.field_index(name).is_none() {
                return Err(LayoutError::UnknownHotField { entry: i });
            }
        }
        Ok(())
    }
}

/// Machine parameters for the field transforms — [`CcMorphParams`]
/// without `elem_bytes`, which the transforms derive from the schema.
#[derive(Clone, Copy, Debug)]
pub struct FieldLayoutParams {
    /// Geometry of the cache being optimized for (the L2, as with
    /// `ccmorph`).
    pub cache: CacheGeometry,
    /// Virtual-memory page size.
    pub page_bytes: u64,
    /// `Some` to color the hot placement; `None` for clustering only.
    pub color: Option<ColorConfig>,
    /// Cluster shape for the per-node placements (hot halves and
    /// reordered objects); ignored by [`soa_convert`].
    pub cluster_kind: ClusterKind,
}

impl FieldLayoutParams {
    /// Clustering-only parameters for `machine` (the common case).
    pub fn new(machine: &MachineConfig) -> Self {
        FieldLayoutParams {
            cache: machine.l2,
            page_bytes: machine.page_bytes,
            color: None,
            cluster_kind: ClusterKind::SubtreeBfs,
        }
    }

    /// Enables coloring (builder-style).
    pub fn with_color(self, color: ColorConfig) -> Self {
        FieldLayoutParams {
            color: Some(color),
            ..self
        }
    }

    /// Sets the cluster kind (builder-style).
    pub fn with_cluster_kind(self, cluster_kind: ClusterKind) -> Self {
        FieldLayoutParams {
            cluster_kind,
            ..self
        }
    }

    /// The equivalent whole-object morph parameters at `elem_bytes`.
    pub fn morph_params(&self, elem_bytes: u64) -> CcMorphParams {
        CcMorphParams {
            cache: self.cache,
            page_bytes: self.page_bytes,
            elem_bytes,
            color: self.color,
            cluster_kind: self.cluster_kind,
        }
    }
}

/// Which transform produced a [`FieldLayout`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FieldTransform {
    /// [`reorder_fields`]: one contiguous object per node, fields packed.
    Reorder,
    /// [`split_hot_cold`]: hot half + index-linked cold arena.
    HotCold,
    /// [`soa_convert`]: one parallel array per field.
    Soa,
}

impl FieldTransform {
    /// Stable lower-case name (`reorder` / `hot_cold` / `soa`), used in
    /// JSON artifacts and server requests.
    pub fn name(&self) -> &'static str {
        match self {
            FieldTransform::Reorder => "reorder",
            FieldTransform::HotCold => "hot_cold",
            FieldTransform::Soa => "soa",
        }
    }
}

/// One field's placement inside the transformed layout.
#[derive(Clone, Debug)]
struct FieldSlot {
    name: String,
    size: u64,
    /// Lives in the hot half (always true for `Reorder`; per-array for
    /// `Soa`, where it records the `HotSpec` marking only).
    hot: bool,
    /// Offset within the owning half's stride (`Reorder`/`HotCold`);
    /// zero for `Soa`.
    offset: u64,
}

/// The address assignment a field transform produced: per-node (and
/// per-field) simulated addresses, plus the placement metadata the
/// observability layer needs to attribute misses back to fields.
#[derive(Clone, Debug)]
pub struct FieldLayout {
    transform: FieldTransform,
    strukt: String,
    slots: Vec<FieldSlot>,
    /// Per node: base of the hot half (`HotCold`), of the whole object
    /// (`Reorder`), or of the node's slot in field 0's array (`Soa`).
    base_addr: Vec<Option<u64>>,
    /// Per node: base of the cold half (`HotCold` only, else empty).
    cold_addr: Vec<Option<u64>>,
    /// Per field: array base (`Soa` only, else empty).
    array_base: Vec<u64>,
    /// Pool length (`Soa` only).
    pool_len: usize,
    hot_stride: u64,
    cold_stride: u64,
    pages_touched: u64,
    hot_elems: usize,
}

impl FieldLayout {
    /// Which transform built this layout.
    pub fn transform(&self) -> FieldTransform {
        self.transform
    }

    /// The schema's struct name.
    pub fn struct_name(&self) -> &str {
        &self.strukt
    }

    /// Number of fields.
    pub fn field_count(&self) -> usize {
        self.slots.len()
    }

    /// Index of field `name` (declaration order is preserved).
    pub fn field_index(&self, name: &str) -> Option<usize> {
        self.slots.iter().position(|s| s.name == name)
    }

    /// Name of field `field`.
    pub fn field_name(&self, field: usize) -> &str {
        &self.slots[field].name
    }

    /// Size of field `field` in bytes.
    pub fn field_size(&self, field: usize) -> u64 {
        self.slots[field].size
    }

    /// Whether field `field` landed in the hot placement.
    pub fn field_is_hot(&self, field: usize) -> bool {
        self.slots[field].hot
    }

    /// Address of field `field` of `node`, or `None` if the node was
    /// unreachable when the transform ran (or outside the SoA pool).
    pub fn try_field_addr(&self, node: usize, field: usize) -> Option<u64> {
        let slot = &self.slots[field];
        match self.transform {
            FieldTransform::Soa => {
                (node < self.pool_len).then(|| self.array_base[field] + node as u64 * slot.size)
            }
            FieldTransform::Reorder => {
                Some(self.base_addr.get(node).copied().flatten()? + slot.offset)
            }
            FieldTransform::HotCold => {
                let half = if slot.hot {
                    &self.base_addr
                } else {
                    &self.cold_addr
                };
                Some(half.get(node).copied().flatten()? + slot.offset)
            }
        }
    }

    /// Address of field `field` of `node`.
    ///
    /// # Panics
    ///
    /// Panics if the node was never laid out.
    pub fn field_addr(&self, node: usize, field: usize) -> u64 {
        self.try_field_addr(node, field)
            .unwrap_or_else(|| panic!("{}", LayoutError::NodeNotLaidOut { node }))
    }

    /// Base address of `node`'s hot placement (the whole object for
    /// `Reorder`, the hot half for `HotCold`, field 0's element for
    /// `Soa`), or `None` if unreachable.
    pub fn try_node_addr(&self, node: usize) -> Option<u64> {
        match self.transform {
            FieldTransform::Soa => self.try_field_addr(node, 0),
            _ => self.base_addr.get(node).copied().flatten(),
        }
    }

    /// Base address of `node`'s hot placement.
    ///
    /// # Panics
    ///
    /// Panics if the node was never laid out.
    pub fn node_addr(&self, node: usize) -> u64 {
        self.try_node_addr(node)
            .unwrap_or_else(|| panic!("{}", LayoutError::NodeNotLaidOut { node }))
    }

    /// Bytes of one hot half / reordered object / (summed) SoA element.
    pub fn hot_stride(&self) -> u64 {
        self.hot_stride
    }

    /// Bytes of one cold half (0 unless `HotCold`).
    pub fn cold_stride(&self) -> u64 {
        self.cold_stride
    }

    /// Number of nodes laid out.
    pub fn len(&self) -> usize {
        match self.transform {
            FieldTransform::Soa => self.pool_len,
            _ => self.base_addr.iter().filter(|a| a.is_some()).count(),
        }
    }

    /// Whether no nodes were laid out.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Pages of physical memory the layout touches.
    pub fn pages_touched(&self) -> u64 {
        self.pages_touched
    }

    /// Elements placed in the colored hot region (0 without coloring).
    pub fn hot_elems(&self) -> usize {
        self.hot_elems
    }

    /// Renders the layout as a [`LayoutSnapshot`] the auditor (and the
    /// field-attribution bridge in `cc-heap`) understands: one record
    /// per hot half / object, one per cold half, one per SoA array.
    /// Record ids are node ids (`HotCold` cold halves are offset by the
    /// arena size so both halves stay distinguishable).
    pub fn snapshot(&self) -> LayoutSnapshot {
        let mut records = Vec::new();
        match self.transform {
            FieldTransform::Soa => {
                for (f, slot) in self.slots.iter().enumerate() {
                    if self.pool_len > 0 {
                        records.push(AllocRecord {
                            addr: self.array_base[f],
                            size: slot.size * self.pool_len as u64,
                            id: f as u64,
                            hint: None,
                        });
                    }
                }
            }
            _ => {
                let arena = self.base_addr.len() as u64;
                for (node, slot) in self.base_addr.iter().enumerate() {
                    if let Some(addr) = slot {
                        records.push(AllocRecord {
                            addr: *addr,
                            size: self.hot_stride,
                            id: node as u64,
                            hint: None,
                        });
                    }
                }
                for (node, slot) in self.cold_addr.iter().enumerate() {
                    if let Some(addr) = slot {
                        records.push(AllocRecord {
                            addr: *addr,
                            size: self.cold_stride,
                            id: arena + node as u64,
                            hint: None,
                        });
                    }
                }
            }
        }
        LayoutSnapshot::from_records(records)
    }

    /// Per-field spans within one hot-placement stride, as
    /// `(name, offset, size)` — the span table the field-attribution
    /// map consumes. For `Soa` the offsets are within one *element* of
    /// each array and meaningful only per array.
    pub fn hot_spans(&self) -> Vec<(&str, u64, u64)> {
        self.slots
            .iter()
            .filter(|s| s.hot || self.transform == FieldTransform::Soa)
            .map(|s| (s.name.as_str(), s.offset, s.size))
            .collect()
    }

    /// Per-field spans within one cold stride (`HotCold` only).
    pub fn cold_spans(&self) -> Vec<(&str, u64, u64)> {
        self.slots
            .iter()
            .filter(|s| !s.hot && self.transform == FieldTransform::HotCold)
            .map(|s| (s.name.as_str(), s.offset, s.size))
            .collect()
    }

    /// `Soa` only: per-field `(name, array_base, elem_size)`.
    pub fn arrays(&self) -> Vec<(&str, u64, u64)> {
        self.slots
            .iter()
            .enumerate()
            .map(|(f, s)| (s.name.as_str(), self.array_base[f], s.size))
            .collect()
    }
}

/// Packs `fields` (indices into the schema) by (align desc, size desc,
/// declaration order) — the `cc-lint` optimal reorder — returning
/// per-schema-field offsets and the padded stride.
fn pack(schema: &FieldSchema, members: &[usize]) -> (Vec<u64>, u64) {
    let mut order: Vec<usize> = members.to_vec();
    order.sort_by(|&a, &b| {
        let fa = &schema.fields[a];
        let fb = &schema.fields[b];
        (fb.align, fb.size)
            .cmp(&(fa.align, fa.size))
            .then(a.cmp(&b))
    });
    let mut offsets = vec![0u64; schema.fields.len()];
    let mut off = 0u64;
    let mut align = 1u64;
    for &i in &order {
        let f = &schema.fields[i];
        off = off.next_multiple_of(f.align);
        offsets[i] = off;
        off += f.size;
        align = align.max(f.align);
    }
    (offsets, off.next_multiple_of(align))
}

/// Hot-prefix packing: hot members first (optimally packed among
/// themselves), cold members after — the in-heap `hot_prefix` layout.
fn pack_hot_prefix(schema: &FieldSchema, hot: &[usize], cold: &[usize]) -> (Vec<u64>, u64) {
    let (mut offsets, hot_size) = pack(schema, hot);
    // Cold fields continue after the packed hot prefix; alignment of the
    // whole object is the max over all members.
    let mut order: Vec<usize> = cold.to_vec();
    order.sort_by(|&a, &b| {
        let fa = &schema.fields[a];
        let fb = &schema.fields[b];
        (fb.align, fb.size)
            .cmp(&(fa.align, fa.size))
            .then(a.cmp(&b))
    });
    let mut off = hot_size;
    let mut align = 1u64;
    for &i in hot {
        align = align.max(schema.fields[i].align);
    }
    for &i in &order {
        let f = &schema.fields[i];
        off = off.next_multiple_of(f.align);
        offsets[i] = off;
        off += f.size;
        align = align.max(f.align);
    }
    (offsets, off.next_multiple_of(align))
}

fn split_members(schema: &FieldSchema, hot: &HotSpec) -> (Vec<usize>, Vec<usize>) {
    let (mut h, mut c) = (Vec::new(), Vec::new());
    for (i, f) in schema.fields.iter().enumerate() {
        if hot.is_hot(&f.name) {
            h.push(i);
        } else {
            c.push(i);
        }
    }
    (h, c)
}

fn slots_from(
    schema: &FieldSchema,
    offsets: &[u64],
    hot_mask: impl Fn(usize) -> bool,
) -> Vec<FieldSlot> {
    schema
        .fields
        .iter()
        .enumerate()
        .map(|(i, f)| FieldSlot {
            name: f.name.clone(),
            size: f.size,
            hot: hot_mask(i),
            offset: offsets[i],
        })
        .collect()
}

/// Fallible [`split_hot_cold`]: validates the schema, the hot spec, the
/// parameters, and the topology before touching `vspace`.
pub fn try_split_hot_cold<T: Topology>(
    t: &T,
    vspace: &mut VirtualSpace,
    params: &FieldLayoutParams,
    schema: &FieldSchema,
    hot: &HotSpec,
) -> Result<FieldLayout, LayoutError> {
    schema.validate()?;
    hot.validate_against(schema)?;
    let (hot_members, cold_members) = split_members(schema, hot);
    if hot_members.is_empty() {
        return Err(LayoutError::NoHotFields);
    }
    if cold_members.is_empty() {
        return Err(LayoutError::NoColdFields);
    }
    let (hot_offsets, hot_stride) = pack(schema, &hot_members);
    let (cold_offsets, cold_stride) = pack(schema, &cold_members);

    // The hot halves get the full clustering/coloring treatment — they
    // are the bytes traversals touch, and laying them out through
    // `try_ccmorph` is what makes splitting compose with clustering.
    // `try_ccmorph` validates params + topology before touching vspace,
    // preserving the Err-leaves-vspace-unchanged contract.
    let morph = try_ccmorph(t, vspace, &params.morph_params(hot_stride))?;

    // Cold halves are linked by *index*: node n's cold half lives at
    // `cold_base + n * cold_stride`, so the split needs no pointer field
    // added to the hot half. The arena is allocated dense over the node
    // arena (reachable or not — the index link must stay O(1)).
    let nodes = t.node_count() as u64;
    let cold_base = vspace.align_to(params.cache.block_bytes().max(vspace.page_bytes()));
    if nodes * cold_stride > 0 {
        vspace.alloc_bytes(nodes * cold_stride);
    }
    let mut base_addr = vec![None; t.node_count()];
    let mut cold_addr = vec![None; t.node_count()];
    for node in 0..t.node_count() {
        if let Some(a) = morph.try_addr_of(node) {
            base_addr[node] = Some(a);
            cold_addr[node] = Some(cold_base + node as u64 * cold_stride);
        }
    }

    let mut offsets = vec![0u64; schema.fields.len()];
    for &i in &hot_members {
        offsets[i] = hot_offsets[i];
    }
    for &i in &cold_members {
        offsets[i] = cold_offsets[i];
    }
    let hot_set: Vec<bool> = (0..schema.fields.len())
        .map(|i| hot_members.contains(&i))
        .collect();
    let pages = morph.pages_touched() + (nodes * cold_stride).div_ceil(vspace.page_bytes());
    Ok(FieldLayout {
        transform: FieldTransform::HotCold,
        strukt: schema.strukt.clone(),
        slots: slots_from(schema, &offsets, |i| hot_set[i]),
        base_addr,
        cold_addr,
        array_base: Vec::new(),
        pool_len: 0,
        hot_stride,
        cold_stride,
        pages_touched: pages,
        hot_elems: morph.hot_elems(),
    })
}

/// Splits each object into a hot half (clustered/colored like a
/// `ccmorph` element of the packed hot size) and an index-linked cold
/// half in a dense arena.
///
/// # Panics
///
/// Panics with the corresponding [`LayoutError`]'s message; use
/// [`try_split_hot_cold`] to handle errors as values.
pub fn split_hot_cold<T: Topology>(
    t: &T,
    vspace: &mut VirtualSpace,
    params: &FieldLayoutParams,
    schema: &FieldSchema,
    hot: &HotSpec,
) -> FieldLayout {
    try_split_hot_cold(t, vspace, params, schema, hot).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible [`reorder_fields`].
pub fn try_reorder_fields<T: Topology>(
    t: &T,
    vspace: &mut VirtualSpace,
    params: &FieldLayoutParams,
    schema: &FieldSchema,
    hot: &HotSpec,
) -> Result<FieldLayout, LayoutError> {
    schema.validate()?;
    hot.validate_against(schema)?;
    let all: Vec<usize> = (0..schema.fields.len()).collect();
    let (offsets, stride) = if hot.is_empty() {
        pack(schema, &all)
    } else {
        let (h, c) = split_members(schema, hot);
        if c.is_empty() {
            pack(schema, &all)
        } else {
            pack_hot_prefix(schema, &h, &c)
        }
    };
    let morph = try_ccmorph(t, vspace, &params.morph_params(stride))?;
    let base_addr: Vec<Option<u64>> = (0..t.node_count()).map(|n| morph.try_addr_of(n)).collect();
    Ok(FieldLayout {
        transform: FieldTransform::Reorder,
        strukt: schema.strukt.clone(),
        slots: slots_from(schema, &offsets, |_| true),
        base_addr,
        cold_addr: Vec::new(),
        array_base: Vec::new(),
        pool_len: 0,
        hot_stride: stride,
        cold_stride: 0,
        pages_touched: morph.pages_touched(),
        hot_elems: morph.hot_elems(),
    })
}

/// Reorders each object's fields into the `cc-lint` optimal packing
/// (hot-prefix when `hot` is nonempty) and lays the reordered objects
/// out with the clustering machinery at the packed stride.
///
/// # Panics
///
/// Panics with the corresponding [`LayoutError`]'s message; use
/// [`try_reorder_fields`] to handle errors as values.
pub fn reorder_fields<T: Topology>(
    t: &T,
    vspace: &mut VirtualSpace,
    params: &FieldLayoutParams,
    schema: &FieldSchema,
    hot: &HotSpec,
) -> FieldLayout {
    try_reorder_fields(t, vspace, params, schema, hot).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible [`soa_convert`].
pub fn try_soa_convert(
    vspace: &mut VirtualSpace,
    params: &FieldLayoutParams,
    schema: &FieldSchema,
    hot: &HotSpec,
    pool_len: usize,
) -> Result<FieldLayout, LayoutError> {
    schema.validate()?;
    hot.validate_against(schema)?;
    let block = params.cache.block_bytes().max(vspace.page_bytes());
    let mut array_base = vec![0u64; schema.fields.len()];
    let mut pages = 0u64;
    for (i, f) in schema.fields.iter().enumerate() {
        // Each array starts block-aligned so two arrays never share a
        // cache block (a scan of one array cannot be charged to another).
        let base = vspace.align_to(block.max(f.align));
        let bytes = f.size * pool_len as u64;
        if bytes > 0 {
            vspace.alloc_bytes(bytes);
        }
        array_base[i] = base;
        pages += bytes.div_ceil(vspace.page_bytes());
    }
    let offsets = vec![0u64; schema.fields.len()];
    let elem_total: u64 = schema.fields.iter().map(|f| f.size).sum();
    Ok(FieldLayout {
        transform: FieldTransform::Soa,
        strukt: schema.strukt.clone(),
        slots: slots_from(schema, &offsets, |i| hot.is_hot(&schema.fields[i].name)),
        base_addr: Vec::new(),
        cold_addr: Vec::new(),
        array_base,
        pool_len,
        hot_stride: elem_total,
        cold_stride: 0,
        pages_touched: pages,
        hot_elems: 0,
    })
}

/// Converts an array-ish pool of `pool_len` objects to
/// structure-of-arrays: one block-aligned parallel array per field,
/// indexed by node id. A scan that touches one field streams through a
/// dense array instead of striding over whole objects.
///
/// # Panics
///
/// Panics with the corresponding [`LayoutError`]'s message; use
/// [`try_soa_convert`] to handle errors as values.
pub fn soa_convert(
    vspace: &mut VirtualSpace,
    params: &FieldLayoutParams,
    schema: &FieldSchema,
    hot: &HotSpec,
    pool_len: usize,
) -> FieldLayout {
    try_soa_convert(vspace, params, schema, hot, pool_len).unwrap_or_else(|e| panic!("{e}"))
}

/// Lays out the hot halves of a split via plain [`try_ccmorph`] — the
/// composition identity the proptests pin: `split_hot_cold`'s hot
/// addresses equal `ccmorph`'s at the packed hot stride.
pub fn hot_half_morph<T: Topology>(
    t: &T,
    vspace: &mut VirtualSpace,
    params: &FieldLayoutParams,
    schema: &FieldSchema,
    hot: &HotSpec,
) -> Result<Layout, LayoutError> {
    schema.validate()?;
    hot.validate_against(schema)?;
    let (hot_members, cold_members) = split_members(schema, hot);
    if hot_members.is_empty() {
        return Err(LayoutError::NoHotFields);
    }
    if cold_members.is_empty() {
        return Err(LayoutError::NoColdFields);
    }
    let (_, hot_stride) = pack(schema, &hot_members);
    try_ccmorph(t, vspace, &params.morph_params(hot_stride))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::VecTree;
    use cc_sim::MachineConfig;

    fn machine() -> MachineConfig {
        MachineConfig::ultrasparc_e5000()
    }

    /// The fat-node shape the bench sweep uses: 16 hot bytes, 48 cold.
    fn fat_schema() -> FieldSchema {
        FieldSchema::new(
            "FatNode",
            vec![
                FieldDef::new("key", 8, 8),
                FieldDef::new("left", 4, 4),
                FieldDef::new("right", 4, 4),
                FieldDef::new("payload", 48, 8),
            ],
        )
    }

    fn hot_klr() -> HotSpec {
        HotSpec::new().mark("key").mark("left").mark("right")
    }

    #[test]
    fn split_packs_hot_half_to_sixteen_bytes() {
        let t = VecTree::complete_binary(1023);
        let mut vs = VirtualSpace::new(8192);
        let fl = split_hot_cold(
            &t,
            &mut vs,
            &FieldLayoutParams::new(&machine()),
            &fat_schema(),
            &hot_klr(),
        );
        assert_eq!(fl.hot_stride(), 16);
        assert_eq!(fl.cold_stride(), 48);
        // Hot fields pack align-desc: key 0, left 8, right 12.
        let key = fl.field_index("key").unwrap();
        let left = fl.field_index("left").unwrap();
        let right = fl.field_index("right").unwrap();
        let payload = fl.field_index("payload").unwrap();
        let base = fl.node_addr(0);
        assert_eq!(fl.field_addr(0, key), base);
        assert_eq!(fl.field_addr(0, left), base + 8);
        assert_eq!(fl.field_addr(0, right), base + 12);
        // The cold half is elsewhere, index-linked.
        assert!(fl.field_addr(0, payload) != base);
        assert_eq!(
            fl.field_addr(5, payload) - fl.field_addr(0, payload),
            5 * 48
        );
    }

    #[test]
    fn split_hot_addresses_equal_plain_ccmorph_at_hot_stride() {
        let t = VecTree::complete_binary(2047);
        let params = FieldLayoutParams::new(&machine());
        let mut vs1 = VirtualSpace::new(8192);
        let split = split_hot_cold(&t, &mut vs1, &params, &fat_schema(), &hot_klr());
        let mut vs2 = VirtualSpace::new(8192);
        let morph = hot_half_morph(&t, &mut vs2, &params, &fat_schema(), &hot_klr()).unwrap();
        for n in 0..2047 {
            assert_eq!(split.node_addr(n), morph.addr_of(n));
        }
        assert_eq!(split.hot_elems(), morph.hot_elems());
    }

    #[test]
    fn reorder_packs_optimally_without_hotspec() {
        // Declared (u8, u64, u16) C layout is 24 bytes; optimal is 16.
        let schema = FieldSchema::new(
            "S",
            vec![
                FieldDef::new("a", 1, 1),
                FieldDef::new("b", 8, 8),
                FieldDef::new("c", 2, 2),
            ],
        );
        let t = VecTree::complete_binary(63);
        let mut vs = VirtualSpace::new(8192);
        let fl = reorder_fields(
            &t,
            &mut vs,
            &FieldLayoutParams::new(&machine()),
            &schema,
            &HotSpec::new(),
        );
        assert_eq!(fl.hot_stride(), 16);
        let base = fl.node_addr(0);
        assert_eq!(fl.field_addr(0, 1), base, "u64 first");
        assert_eq!(fl.field_addr(0, 2), base + 8, "u16 next");
        assert_eq!(fl.field_addr(0, 0), base + 10, "u8 last");
    }

    #[test]
    fn reorder_hot_prefix_puts_hot_fields_first() {
        let schema = fat_schema();
        let t = VecTree::complete_binary(63);
        let mut vs = VirtualSpace::new(8192);
        let fl = reorder_fields(
            &t,
            &mut vs,
            &FieldLayoutParams::new(&machine()),
            &schema,
            &hot_klr(),
        );
        // Hot prefix: key/left/right in the first 16 bytes, payload after.
        let base = fl.node_addr(0);
        assert_eq!(fl.field_addr(0, fl.field_index("key").unwrap()), base);
        assert_eq!(
            fl.field_addr(0, fl.field_index("payload").unwrap()),
            base + 16
        );
        assert_eq!(fl.hot_stride(), 64);
    }

    #[test]
    fn soa_gives_each_field_a_dense_array() {
        let mut vs = VirtualSpace::new(8192);
        let fl = soa_convert(
            &mut vs,
            &FieldLayoutParams::new(&machine()),
            &fat_schema(),
            &hot_klr(),
            100,
        );
        let key = fl.field_index("key").unwrap();
        let left = fl.field_index("left").unwrap();
        assert_eq!(fl.field_addr(7, key) - fl.field_addr(6, key), 8);
        assert_eq!(fl.field_addr(7, left) - fl.field_addr(6, left), 4);
        // Arrays are disjoint and block-aligned.
        let snap = fl.snapshot();
        assert_eq!(snap.records().len(), 4);
        for r in snap.records() {
            assert_eq!(r.addr % 64, 0);
        }
        assert!(fl.try_field_addr(100, key).is_none(), "outside the pool");
    }

    #[test]
    fn snapshot_covers_both_halves() {
        let t = VecTree::complete_binary(31);
        let mut vs = VirtualSpace::new(8192);
        let fl = split_hot_cold(
            &t,
            &mut vs,
            &FieldLayoutParams::new(&machine()),
            &fat_schema(),
            &hot_klr(),
        );
        let snap = fl.snapshot();
        assert_eq!(snap.records().len(), 62, "31 hot halves + 31 cold halves");
        let key = fl.field_index("key").unwrap();
        let payload = fl.field_index("payload").unwrap();
        assert!(snap.record_at(fl.field_addr(3, key)).is_some());
        assert!(snap.record_at(fl.field_addr(3, payload)).is_some());
    }

    #[test]
    fn rejection_paths_leave_vspace_untouched() {
        let t = VecTree::complete_binary(31);
        let schema = fat_schema();
        let params = FieldLayoutParams::new(&machine());
        let mut vs = VirtualSpace::new(8192);
        let before = vs.span_bytes();

        let empty = FieldSchema::new("E", vec![]);
        assert_eq!(
            try_split_hot_cold(&t, &mut vs, &params, &empty, &hot_klr()).unwrap_err(),
            LayoutError::EmptySchema
        );
        let zero = FieldSchema::new("Z", vec![FieldDef::new("z", 0, 1)]);
        assert_eq!(
            try_reorder_fields(&t, &mut vs, &params, &zero, &HotSpec::new()).unwrap_err(),
            LayoutError::ZeroFieldSize { field: 0 }
        );
        let crooked = FieldSchema::new("C", vec![FieldDef::new("c", 4, 3)]);
        assert_eq!(
            try_soa_convert(&mut vs, &params, &crooked, &HotSpec::new(), 8).unwrap_err(),
            LayoutError::FieldAlignNotPow2 { field: 0 }
        );
        let dup = FieldSchema::new(
            "D",
            vec![FieldDef::new("x", 4, 4), FieldDef::new("x", 4, 4)],
        );
        assert_eq!(
            try_reorder_fields(&t, &mut vs, &params, &dup, &HotSpec::new()).unwrap_err(),
            LayoutError::DuplicateField { field: 1 }
        );
        assert_eq!(
            try_split_hot_cold(&t, &mut vs, &params, &schema, &HotSpec::new().mark("nope"))
                .unwrap_err(),
            LayoutError::UnknownHotField { entry: 0 }
        );
        assert_eq!(
            try_split_hot_cold(&t, &mut vs, &params, &schema, &HotSpec::new()).unwrap_err(),
            LayoutError::NoHotFields
        );
        let all_hot = HotSpec::new()
            .mark("key")
            .mark("left")
            .mark("right")
            .mark("payload");
        assert_eq!(
            try_split_hot_cold(&t, &mut vs, &params, &schema, &all_hot).unwrap_err(),
            LayoutError::NoColdFields
        );
        // A broken topology is caught before any allocation too.
        let mut cyc = VecTree::new(1);
        let a = cyc.add_node();
        let b = cyc.add_node();
        cyc.link(a, b);
        cyc.link(b, a);
        assert_eq!(
            try_split_hot_cold(&cyc, &mut vs, &params, &schema, &hot_klr()).unwrap_err(),
            LayoutError::CyclicTopology { node: a }
        );

        assert_eq!(
            vs.span_bytes(),
            before,
            "failed transforms leave vspace unchanged"
        );
    }

    #[test]
    #[should_panic(expected = "hot/cold split needs at least one hot field")]
    fn infallible_wrapper_keeps_error_message() {
        let t = VecTree::complete_binary(7);
        let mut vs = VirtualSpace::new(8192);
        let _ = split_hot_cold(
            &t,
            &mut vs,
            &FieldLayoutParams::new(&machine()),
            &fat_schema(),
            &HotSpec::new(),
        );
    }

    #[test]
    fn unreachable_nodes_get_no_addresses_in_any_transform() {
        let mut t = VecTree::new(2);
        let root = t.add_node();
        let kid = t.add_node();
        let orphan = t.add_node();
        t.link(root, kid);
        let params = FieldLayoutParams::new(&machine());
        let mut vs = VirtualSpace::new(8192);
        let split = split_hot_cold(&t, &mut vs, &params, &fat_schema(), &hot_klr());
        assert!(split.try_node_addr(orphan).is_none());
        assert_eq!(split.len(), 2);
        let reord = reorder_fields(&t, &mut vs, &params, &fat_schema(), &hot_klr());
        assert!(reord.try_field_addr(orphan, 0).is_none());
    }

    #[test]
    fn hotspec_from_weights_drops_nonpositive() {
        let spec = HotSpec::from_weights(vec![("a", 3.0), ("b", 0.0), ("c", -1.0)]);
        assert!(spec.is_hot("a"));
        assert!(!spec.is_hot("b"));
        assert!(!spec.is_hot("c"));
        assert_eq!(spec.weight("a"), 3.0);
    }
}
