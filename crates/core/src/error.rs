//! Typed errors for `ccmorph` layout construction.
//!
//! `ccmorph` is only semantics-preserving under the programmer's guarantee
//! (paper Section 3.1.1): tree-like structure, homogeneous elements, no
//! external pointers into the middle. A violated guarantee used to mean a
//! panic or — for a cyclic topology — an unbounded traversal. Every such
//! violation is now a [`LayoutError`], surfaced by [`crate::try_ccmorph`]
//! and [`crate::validate_topology`]; the classic [`crate::ccmorph`] stays
//! infallible by panicking with the error's `Display` text, which renders
//! the historical assertion messages exactly.

use std::fmt;

/// A reorganization request `ccmorph` could not satisfy.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LayoutError {
    /// The topology reaches a node along a path through itself — the
    /// traversal would never terminate.
    CyclicTopology {
        /// A node on the cycle (the first one the DFS re-entered).
        node: usize,
    },
    /// Two different parents (or child slots) report the same node — the
    /// structure is a DAG, not a tree, and "copying" it would silently
    /// duplicate the shared subtree.
    AliasedNode {
        /// The node reported by more than one parent.
        node: usize,
    },
    /// A node links to a child id outside the arena.
    DanglingChild {
        /// The linking parent.
        node: usize,
        /// The out-of-bounds child id.
        child: usize,
    },
    /// The coloring fraction is outside the open interval `(0, 1)`.
    ColorOutOfRange {
        /// The rejected fraction.
        hot_fraction: f64,
    },
    /// Structure elements must occupy at least one byte.
    ZeroElemBytes,
    /// A node address was requested for a node the layout never placed
    /// (unreachable from the root when `ccmorph` ran).
    NodeNotLaidOut {
        /// The unplaced node.
        node: usize,
    },
    /// A field transform was asked to lay out a schema with no fields.
    EmptySchema,
    /// A schema field occupies zero bytes — the transforms address fields
    /// by byte offset, so a zero-sized field can never be resolved.
    ZeroFieldSize {
        /// Declaration index of the offending field.
        field: usize,
    },
    /// A schema field's alignment is not a power of two.
    FieldAlignNotPow2 {
        /// Declaration index of the offending field.
        field: usize,
    },
    /// Two schema fields share a name — field addresses are looked up by
    /// name, so a duplicate would be ambiguous.
    DuplicateField {
        /// Declaration index of the second occurrence.
        field: usize,
    },
    /// A [`HotSpec`](crate::field_layout::HotSpec) entry names a field
    /// the schema does not declare.
    UnknownHotField {
        /// Index of the offending entry in the hot spec.
        entry: usize,
    },
    /// `split_hot_cold` needs at least one hot field to build the hot
    /// half from.
    NoHotFields,
    /// `split_hot_cold` needs at least one cold field — with every field
    /// hot there is nothing to split off, and the caller wants plain
    /// `reorder_fields` (or `ccmorph`) instead.
    NoColdFields,
}

impl fmt::Display for LayoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LayoutError::CyclicTopology { node } => {
                write!(f, "topology is cyclic: node {node} is its own ancestor")
            }
            LayoutError::AliasedNode { node } => {
                write!(f, "topology is not a tree: node {node} has two parents")
            }
            LayoutError::DanglingChild { node, child } => {
                write!(f, "node {node} links to nonexistent child {child}")
            }
            LayoutError::ColorOutOfRange { hot_fraction } => {
                write!(f, "hot fraction must be in (0, 1), got {hot_fraction}")
            }
            LayoutError::ZeroElemBytes => write!(f, "element size must be nonzero"),
            LayoutError::NodeNotLaidOut { node } => {
                write!(f, "node {node} was not laid out")
            }
            LayoutError::EmptySchema => write!(f, "field schema declares no fields"),
            LayoutError::ZeroFieldSize { field } => {
                write!(f, "schema field {field} has zero size")
            }
            LayoutError::FieldAlignNotPow2 { field } => {
                write!(f, "schema field {field} has a non-power-of-two alignment")
            }
            LayoutError::DuplicateField { field } => {
                write!(f, "schema field {field} duplicates an earlier field name")
            }
            LayoutError::UnknownHotField { entry } => {
                write!(f, "hot spec entry {entry} names a field the schema lacks")
            }
            LayoutError::NoHotFields => {
                write!(f, "hot/cold split needs at least one hot field")
            }
            LayoutError::NoColdFields => {
                write!(f, "hot/cold split needs at least one cold field")
            }
        }
    }
}

impl std::error::Error for LayoutError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_historical_assertion_messages() {
        assert_eq!(
            LayoutError::ZeroElemBytes.to_string(),
            "element size must be nonzero"
        );
        assert_eq!(
            LayoutError::ColorOutOfRange { hot_fraction: 1.5 }.to_string(),
            "hot fraction must be in (0, 1), got 1.5"
        );
        assert_eq!(
            LayoutError::NodeNotLaidOut { node: 7 }.to_string(),
            "node 7 was not laid out"
        );
    }
}
