//! `cc-audit` as an oracle for `ccmorph`: the reorganizer's output must
//! satisfy the layout invariants it exists to establish, and a naive
//! index-order layout of the same tree must not.

use cc_audit::{audit, AffinityKind, AuditConfig, AuditInput, Rule};
use cc_core::ccmorph::{ccmorph, CcMorphParams};
use cc_core::cluster::ClusterKind;
use cc_core::topology::VecTree;
use cc_heap::VirtualSpace;
use cc_sim::MachineConfig;

const ELEM: u64 = 20;

fn machine() -> MachineConfig {
    MachineConfig::ultrasparc_e5000()
}

#[test]
fn ccmorph_clustering_audits_clean() {
    let m = machine();
    let t = VecTree::complete_binary(4095);
    let mut vs = VirtualSpace::new(m.page_bytes);
    let params = CcMorphParams::clustering_only(&m, ELEM);
    let layout = ccmorph(&t, &mut vs, &params);
    let report = audit(
        &AuditInput::from_tree_layout(&t, &layout, &params),
        &AuditConfig::default(),
    );
    assert!(report.is_clean(), "{}", report.to_text());
    assert_eq!(report.stats.colocation_score, Some(1.0));
}

#[test]
fn ccmorph_coloring_audits_clean() {
    let m = machine();
    // Large enough that the hot region cannot hold the whole tree.
    let t = VecTree::complete_binary((1 << 16) - 1);
    let mut vs = VirtualSpace::new(m.page_bytes);
    let params = CcMorphParams::clustering_and_coloring(&m, ELEM);
    let layout = ccmorph(&t, &mut vs, &params);
    let report = audit(
        &AuditInput::from_tree_layout(&t, &layout, &params),
        &AuditConfig::default(),
    );
    assert!(report.is_clean(), "{}", report.to_text());
}

#[test]
fn dfs_chain_layout_audits_clean_for_traversal_affinity() {
    let m = machine();
    let t = VecTree::list(10_000);
    let mut vs = VirtualSpace::new(m.page_bytes);
    let params =
        CcMorphParams::clustering_only(&m, ELEM).with_cluster_kind(ClusterKind::DepthFirstChain);
    let layout = ccmorph(&t, &mut vs, &params);
    let report = audit(
        &AuditInput::from_tree_layout(&t, &layout, &params),
        &AuditConfig::default(),
    );
    assert!(report.is_clean(), "{}", report.to_text());
}

#[test]
fn index_order_layout_trips_cluster_01() {
    let m = machine();
    let t = VecTree::complete_binary(4095);
    // The untransformed baseline: node i at base + i*e, breadth-first
    // numbering. Parents and children drift apart after the first levels.
    let input = AuditInput::from_tree_addrs(
        &t,
        |n| Some(0x4_0000 + n as u64 * ELEM),
        ELEM,
        m.l2,
        m.page_bytes,
        None,
        AffinityKind::ParentChild,
    );
    let report = audit(&input, &AuditConfig::default());
    let c1 = report.of_rule(Rule::Cluster01);
    assert_eq!(c1.len(), 1, "{}", report.to_text());
    let score = report.stats.colocation_score.unwrap();
    assert!(
        score < 0.1,
        "index order should co-locate almost nothing, got {score}"
    );
}

#[test]
fn coloring_for_the_wrong_workload_trips_color_01() {
    let m = machine();
    // ccmorph colors a long list assuming head-hot access (heat falls
    // with depth). If the actual workload hammers the *tail*, the audit
    // must notice that the truly hot elements sit in cold sets.
    let t = VecTree::list(100_000);
    let mut vs = VirtualSpace::new(m.page_bytes);
    let params = CcMorphParams::clustering_and_coloring(&m, ELEM);
    let layout = ccmorph(&t, &mut vs, &params);
    let mut input = AuditInput::from_tree_layout(&t, &layout, &params);
    for item in &mut input.items {
        item.heat = -item.heat; // tail-hot: heat now rises with depth
    }
    let report = audit(&input, &AuditConfig::default());
    assert!(
        !report.of_rule(Rule::Color01).is_empty(),
        "{}",
        report.to_text()
    );
    assert!(report.stats.hot_in_cold > 0);
}
