//! Deterministic fault injection for the whole reproduction.
//!
//! Robustness claims are only testable if the misfortune is replayable: a
//! fault that cannot be reproduced cannot be debugged, bisected, or turned
//! into a regression test. This crate therefore derives *every* injected
//! fault — heap allocation denials, co-location hint corruption, trace
//! buffer damage, sweep worker panics — from one `u64` seed, through the
//! same SplitMix64 mixing the experiments already use for layout
//! randomization.
//!
//! A [`FaultPlan`] is the seed plus per-plane intensities. From it:
//!
//! * [`FaultPlan::heap_schedule`] produces a
//!   [`cc_heap::HeapFaultSchedule`] — fresh-page denials and hint
//!   drop/corrupt entries keyed by allocation ordinal — to install on a
//!   `Malloc`/`CcMalloc` via `set_fault_schedule`;
//! * [`FaultPlan::trace_schedule`] produces [`cc_sim::TraceFault`]s to
//!   inject into a `BatchSink` (the first is always a lane truncation, so
//!   a plan with any trace faults at all is guaranteed to exercise the
//!   scalar fallback on a sufficiently full buffer);
//! * [`FaultPlan::sweep_poison_set`] picks the sweep cells whose first
//!   attempt a harness should kill, exercising the retry path of
//!   `Sweep::run_isolated`;
//! * [`FaultPlan::shard_poison_set`] picks the replay workers to hand to
//!   [`cc_sim::ShardedReplayer::replay_poisoned`], exercising the
//!   sharded replayer's catch-unwind + serial-fallback path;
//! * [`FaultPlan::sample_poison_set`] picks the sampler representatives
//!   to hand to [`cc_sample::replay_representatives`], exercising the
//!   sampler's counted neighbouring-interval fallback path.
//!
//! The planes draw from *independent* streams (the plane index is
//! folded into the seed via [`cc_sweep::cell_seed`]), so arming one plane
//! never shifts another plane's schedule.
//!
//! The empty plan ([`FaultPlan::new`] with no intensities) derives empty
//! schedules everywhere, and installing those is the no-op the
//! differential gate relies on: a figure binary run under an empty plan is
//! byte-identical to one that never heard of fault injection
//! (`tests/differential.rs`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use cc_core::rng::SplitMix64;
use cc_heap::HeapFaultSchedule;
use cc_sim::TraceFault;
use cc_sweep::cell_seed;
use std::collections::BTreeSet;

/// Plane tags folded into the seed so each plane gets an independent
/// stream.
const PLANE_HEAP: u64 = 0;
const PLANE_TRACE: u64 = 1;
const PLANE_SWEEP: u64 = 2;
const PLANE_SHARD: u64 = 3;
const PLANE_SERVER: u64 = 4;
const PLANE_SAMPLE: u64 = 5;

/// One server-plane fault for the cc-serve chaos harness.
///
/// Each variant maps to a hostile client behavior or worker misfortune
/// the server's robustness contract must absorb with a typed reply (or a
/// clean session close) and an honest degradation counter — never an
/// escaped panic or a hung drain.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServerFault {
    /// The worker panics before doing any replay work
    /// (`chaos_panic`): exercises `catch_unwind` isolation and the
    /// circuit breaker.
    WorkerPanicStart,
    /// The worker panics mid-replay, after at least one segment
    /// (`chaos_panic_mid`): exercises isolation with partially-built
    /// state and shared-store writes already issued.
    WorkerPanicMid,
    /// The client vanishes without reading its reply after sending
    /// `after_frames` complete frames: exercises dead-session reply
    /// discard.
    ConnectionDrop {
        /// Complete frames sent before the hangup.
        after_frames: u32,
    },
    /// The client sends a frame prefix and then stalls forever:
    /// exercises the slow-loris read-stall guard.
    SlowLoris,
    /// The client sends `len` seed-derived garbage bytes plus a newline:
    /// exercises framer totality (typed `bad_frame`, session survives).
    GarbageFrame {
        /// Garbage length in bytes (≥ 1).
        len: u32,
    },
    /// The client streams an over-large frame with no newline until the
    /// server's frame cap trips: exercises oversized-frame shedding.
    OversizedFrame,
}

/// A seeded, replayable fault-injection plan.
///
/// Construction is fluent; the zero-intensity default injects nothing:
///
/// ```
/// use cc_fault::FaultPlan;
///
/// let quiet = FaultPlan::new(42);
/// assert!(quiet.is_empty());
/// assert!(quiet.heap_schedule().is_empty());
///
/// let noisy = FaultPlan::new(42).heap_faults(3, 100).trace_faults(2).sweep_poisons(1);
/// assert_eq!(noisy.heap_schedule(), noisy.heap_schedule()); // replayable
/// ```
// The two u64s lead and the six u32 intensities pack the tail — the
// PAD-01-clean order (40 B, zero padding), pinned by repr(C) and the
// offset test at the bottom of this file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(C)]
pub struct FaultPlan {
    seed: u64,
    heap_horizon: u64,
    heap_faults: u32,
    trace_faults: u32,
    sweep_poisons: u32,
    shard_poisons: u32,
    server_faults: u32,
    sample_poisons: u32,
}

impl FaultPlan {
    /// A plan that injects nothing (all intensities zero).
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            heap_faults: 0,
            heap_horizon: 0,
            trace_faults: 0,
            sweep_poisons: 0,
            shard_poisons: 0,
            server_faults: 0,
            sample_poisons: 0,
        }
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Arms `n` heap faults drawn over allocation ordinals
    /// `[1, horizon)` (ordinal 0 is excluded so a workload's very first
    /// allocation — often the root everything else is hinted at — always
    /// lands). `horizon` must exceed 1 when `n > 0`.
    pub fn heap_faults(mut self, n: u32, horizon: u64) -> Self {
        assert!(n == 0 || horizon > 1, "heap fault horizon too small");
        self.heap_faults = n;
        self.heap_horizon = horizon;
        self
    }

    /// Arms `n` trace faults. The first derived fault is always a lane
    /// truncation with `keep < 64`, so any armed plan corrupts a batch of
    /// ≥ 64 staged entries detectably.
    pub fn trace_faults(mut self, n: u32) -> Self {
        self.trace_faults = n;
        self
    }

    /// Arms `n` sweep-cell poisons (distinct cells per grid, capped at the
    /// grid size when the grid is smaller).
    pub fn sweep_poisons(mut self, n: u32) -> Self {
        self.sweep_poisons = n;
        self
    }

    /// Arms `n` shard-worker poisons (distinct worker indices per replay,
    /// capped at the shard count when it is smaller). Feed the derived set
    /// to [`cc_sim::ShardedReplayer::replay_poisoned`]: poisoned workers
    /// panic on entry, and the replayer must absorb the panic through the
    /// serial fallback with exact stats and honest degradation counters.
    pub fn shard_poisons(mut self, n: u32) -> Self {
        self.shard_poisons = n;
        self
    }

    /// Arms `n` server faults for the cc-serve chaos harness. The derived
    /// schedule ([`FaultPlan::server_schedule`]) cycles through every
    /// [`ServerFault`] variant before repeating, so any plan with
    /// `n >= 6` is guaranteed to exercise the whole server plane.
    pub fn server_faults(mut self, n: u32) -> Self {
        self.server_faults = n;
        self
    }

    /// Arms `n` sampler-representative poisons (distinct cluster
    /// ordinals per plan, capped at the cluster count when it is
    /// smaller). Feed the derived set to
    /// [`cc_sample::replay_representatives`]: poisoned representatives
    /// panic at replay, and the sampler must degrade each to a counted
    /// neighbouring-interval fallback (or an honest lost-representative
    /// coverage gap) — never a silent wrong estimate.
    pub fn sample_poisons(mut self, n: u32) -> Self {
        self.sample_poisons = n;
        self
    }

    /// True when no plane is armed.
    pub fn is_empty(&self) -> bool {
        self.heap_faults == 0
            && self.trace_faults == 0
            && self.sweep_poisons == 0
            && self.shard_poisons == 0
            && self.server_faults == 0
            && self.sample_poisons == 0
    }

    /// Derives the heap plane: `heap_faults` entries cycling through
    /// deny-fresh-page, drop-hint, and corrupt-hint, at seed-chosen
    /// ordinals in `[1, horizon)`.
    pub fn heap_schedule(&self) -> HeapFaultSchedule {
        let mut schedule = HeapFaultSchedule::empty();
        if self.heap_faults == 0 {
            return schedule;
        }
        let mut rng = SplitMix64::new(cell_seed(self.seed, PLANE_HEAP));
        for _ in 0..self.heap_faults {
            let ordinal = 1 + rng.below(self.heap_horizon - 1);
            match rng.below(3) {
                0 => {
                    schedule.deny_fresh_page.insert(ordinal);
                }
                1 => {
                    schedule.drop_hint.insert(ordinal);
                }
                _ => {
                    // `| 1` keeps the mask nonzero, so a corrupt entry
                    // always actually moves the hint.
                    schedule.corrupt_hint.insert(ordinal, rng.next_u64() | 1);
                }
            }
        }
        schedule
    }

    /// Derives the trace plane. The first fault is always
    /// [`TraceFault::TruncateAddrLane`]; later draws mix truncations,
    /// zeroed gap runs, and address scrambles.
    pub fn trace_schedule(&self) -> Vec<TraceFault> {
        let mut rng = SplitMix64::new(cell_seed(self.seed, PLANE_TRACE));
        (0..self.trace_faults)
            .map(|i| {
                if i == 0 {
                    return TraceFault::TruncateAddrLane {
                        keep: rng.below(64) as usize,
                    };
                }
                match rng.below(3) {
                    0 => TraceFault::TruncateAddrLane {
                        keep: rng.below(64) as usize,
                    },
                    1 => TraceFault::ZeroGapRun {
                        entry: rng.below(64) as usize,
                    },
                    _ => TraceFault::ScrambleAddrs {
                        seed: rng.next_u64(),
                    },
                }
            })
            .collect()
    }

    /// Derives the sweep plane for a grid of `cells` cells: the distinct
    /// indices whose first attempt a harness should poison.
    pub fn sweep_poison_set(&self, cells: usize) -> BTreeSet<usize> {
        let mut set = BTreeSet::new();
        if cells == 0 {
            return set;
        }
        let want = (self.sweep_poisons as usize).min(cells);
        let mut rng = SplitMix64::new(cell_seed(self.seed, PLANE_SWEEP));
        while set.len() < want {
            set.insert(rng.below(cells as u64) as usize);
        }
        set
    }

    /// Convenience for sweep harnesses: should this `(cell, attempt)` be
    /// killed? Poisons fire on the first attempt only, so a poisoned cell
    /// demonstrates the retry path rather than exhausting it.
    pub fn poisons(&self, cell: usize, attempt: u32, cells: usize) -> bool {
        attempt == 0 && self.sweep_poison_set(cells).contains(&cell)
    }

    /// Derives the shard plane for a replay on `shards` workers: the
    /// distinct worker indices to pass to
    /// [`cc_sim::ShardedReplayer::replay_poisoned`], sorted ascending.
    pub fn shard_poison_set(&self, shards: usize) -> Vec<usize> {
        let mut set = BTreeSet::new();
        if shards == 0 {
            return Vec::new();
        }
        let want = (self.shard_poisons as usize).min(shards);
        let mut rng = SplitMix64::new(cell_seed(self.seed, PLANE_SHARD));
        while set.len() < want {
            set.insert(rng.below(shards as u64) as usize);
        }
        set.into_iter().collect()
    }

    /// Derives the sample plane for a plan with `clusters`
    /// representatives: the distinct representative ordinals whose replay
    /// a harness should poison, for
    /// [`cc_sample::replay_representatives`].
    pub fn sample_poison_set(&self, clusters: usize) -> BTreeSet<usize> {
        let mut set = BTreeSet::new();
        if clusters == 0 {
            return set;
        }
        let want = (self.sample_poisons as usize).min(clusters);
        let mut rng = SplitMix64::new(cell_seed(self.seed, PLANE_SAMPLE));
        while set.len() < want {
            set.insert(rng.below(clusters as u64) as usize);
        }
        set
    }

    /// Derives the server plane: `server_faults` faults, one per chaos
    /// connection. The first six cycle through every [`ServerFault`]
    /// variant in a seed-chosen rotation (full coverage before any
    /// repeat); parameters within a variant are seed-derived.
    pub fn server_schedule(&self) -> Vec<ServerFault> {
        let mut rng = SplitMix64::new(cell_seed(self.seed, PLANE_SERVER));
        let rotation = rng.below(6);
        (0..self.server_faults as u64)
            .map(|i| match (i + rotation) % 6 {
                0 => ServerFault::WorkerPanicStart,
                1 => ServerFault::WorkerPanicMid,
                2 => ServerFault::ConnectionDrop {
                    after_frames: 1 + rng.below(3) as u32,
                },
                3 => ServerFault::SlowLoris,
                4 => ServerFault::GarbageFrame {
                    len: 1 + rng.below(512) as u32,
                },
                _ => ServerFault::OversizedFrame,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Compiler-backed verification site for the repr(C) layout; the
    // cc-lint offset-model sweep (verify_offsets.rs VERIFIED) points here.
    #[test]
    fn fault_plan_offsets_are_pinned() {
        assert_eq!(core::mem::offset_of!(FaultPlan, seed), 0);
        assert_eq!(core::mem::offset_of!(FaultPlan, heap_horizon), 8);
        assert_eq!(core::mem::offset_of!(FaultPlan, heap_faults), 16);
        assert_eq!(core::mem::offset_of!(FaultPlan, trace_faults), 20);
        assert_eq!(core::mem::offset_of!(FaultPlan, sweep_poisons), 24);
        assert_eq!(core::mem::offset_of!(FaultPlan, shard_poisons), 28);
        assert_eq!(core::mem::offset_of!(FaultPlan, server_faults), 32);
        assert_eq!(core::mem::offset_of!(FaultPlan, sample_poisons), 36);
        assert_eq!(core::mem::size_of::<FaultPlan>(), 40);
        assert_eq!(core::mem::align_of::<FaultPlan>(), 8);
    }

    #[test]
    fn empty_plan_derives_empty_schedules() {
        let plan = FaultPlan::new(0xD15EA5E);
        assert!(plan.is_empty());
        assert!(plan.heap_schedule().is_empty());
        assert!(plan.trace_schedule().is_empty());
        assert!(plan.sweep_poison_set(100).is_empty());
        assert!(plan.shard_poison_set(8).is_empty());
        assert!(plan.sample_poison_set(8).is_empty());
        assert!(plan.server_schedule().is_empty());
        assert!(!plan.poisons(0, 0, 100));
    }

    #[test]
    fn server_schedule_covers_every_variant_before_repeating() {
        for seed in 0..32 {
            let plan = FaultPlan::new(seed).server_faults(6);
            let schedule = plan.server_schedule();
            assert_eq!(schedule.len(), 6);
            let tags: BTreeSet<u8> = schedule
                .iter()
                .map(|f| match f {
                    ServerFault::WorkerPanicStart => 0,
                    ServerFault::WorkerPanicMid => 1,
                    ServerFault::ConnectionDrop { .. } => 2,
                    ServerFault::SlowLoris => 3,
                    ServerFault::GarbageFrame { .. } => 4,
                    ServerFault::OversizedFrame => 5,
                })
                .collect();
            assert_eq!(tags.len(), 6, "seed {seed}: {schedule:?}");
            // Replayable.
            assert_eq!(schedule, plan.server_schedule());
        }
    }

    #[test]
    fn server_plane_is_independent_of_other_planes() {
        let base = FaultPlan::new(13).server_faults(8);
        let more = base.heap_faults(4, 50).trace_faults(2).sweep_poisons(1);
        assert_eq!(base.server_schedule(), more.server_schedule());
    }

    #[test]
    fn planes_are_independent_streams() {
        let base = FaultPlan::new(7).heap_faults(4, 50).sweep_poisons(2);
        let more = base.trace_faults(3).shard_poisons(2).sample_poisons(2);
        // Arming other planes must not move the armed planes' schedules.
        assert_eq!(base.heap_schedule(), more.heap_schedule());
        assert_eq!(base.sweep_poison_set(16), more.sweep_poison_set(16));
    }

    #[test]
    fn sample_plane_is_independent_of_other_planes() {
        let base = FaultPlan::new(21).sample_poisons(3);
        let more = base.heap_faults(4, 50).shard_poisons(2).server_faults(4);
        assert_eq!(base.sample_poison_set(8), more.sample_poison_set(8));
        // And distinct from the other poison planes' draws for the same
        // seed and intensity.
        let cross = FaultPlan::new(21).sweep_poisons(3).shard_poisons(3);
        let sweep: BTreeSet<usize> = cross.sweep_poison_set(64);
        let shard: BTreeSet<usize> = cross.shard_poison_set(64).into_iter().collect();
        let sample = FaultPlan::new(21).sample_poisons(3).sample_poison_set(64);
        assert!(sample != sweep || sample != shard);
    }

    #[test]
    fn first_trace_fault_is_a_truncation() {
        for seed in 0..64 {
            let plan = FaultPlan::new(seed).trace_faults(3);
            let faults = plan.trace_schedule();
            assert_eq!(faults.len(), 3);
            assert!(
                matches!(faults[0], TraceFault::TruncateAddrLane { keep } if keep < 64),
                "seed {seed}: {:?}",
                faults[0]
            );
        }
    }

    #[test]
    fn heap_ordinals_respect_the_horizon() {
        let plan = FaultPlan::new(99).heap_faults(32, 10);
        let s = plan.heap_schedule();
        let all: Vec<u64> = s
            .deny_fresh_page
            .iter()
            .chain(s.drop_hint.iter())
            .chain(s.corrupt_hint.keys())
            .copied()
            .collect();
        assert!(!all.is_empty());
        assert!(all.iter().all(|&o| (1..10).contains(&o)), "{all:?}");
    }

    #[test]
    fn poison_sets_are_distinct_and_bounded() {
        let plan = FaultPlan::new(3).sweep_poisons(5);
        let set = plan.sweep_poison_set(8);
        assert_eq!(set.len(), 5, "distinct cells");
        assert!(set.iter().all(|&c| c < 8));
        // A grid smaller than the intensity saturates instead of spinning.
        assert_eq!(plan.sweep_poison_set(3).len(), 3);
        assert_eq!(plan.sweep_poison_set(0).len(), 0);
    }

    #[test]
    fn shard_poison_sets_are_distinct_sorted_and_bounded() {
        let plan = FaultPlan::new(11).shard_poisons(3);
        let set = plan.shard_poison_set(8);
        assert_eq!(set.len(), 3);
        assert!(set.windows(2).all(|w| w[0] < w[1]), "{set:?}");
        assert!(set.iter().all(|&w| w < 8));
        // Fewer workers than poisons saturates instead of spinning.
        assert_eq!(plan.shard_poison_set(2).len(), 2);
        assert_eq!(plan.shard_poison_set(0).len(), 0);
        // Replayable.
        assert_eq!(set, plan.shard_poison_set(8));
    }

    #[test]
    fn sample_poison_sets_are_distinct_and_bounded() {
        let plan = FaultPlan::new(17).sample_poisons(4);
        let set = plan.sample_poison_set(8);
        assert_eq!(set.len(), 4, "distinct representatives");
        assert!(set.iter().all(|&r| r < 8));
        // Fewer representatives than poisons saturates instead of
        // spinning.
        assert_eq!(plan.sample_poison_set(2).len(), 2);
        assert_eq!(plan.sample_poison_set(0).len(), 0);
        // Replayable.
        assert_eq!(set, plan.sample_poison_set(8));
    }
}
