//! Fault-matrix harness: seeds × planes, fail on any escaped panic.
//!
//! For every seed (arguments, or a small default set) this binary runs a
//! scripted workload against each fault plane — `heap` (allocation denials
//! and hint tampering under `CcMalloc`/`Malloc`), `morph` (corrupted
//! topologies and parameters into `try_ccmorph`), `sweep` (poisoned cells
//! under `Sweep::run_isolated`), `shard` (poisoned replay workers
//! under `ShardedReplayer::replay_poisoned`), and `sample` (poisoned
//! cluster representatives under `cc_sample::replay_representatives`) —
//! inside a top-level `catch_unwind`.
//!
//! The contract under test is *graceful degradation*: injected faults must
//! surface as typed errors, fallback placements, or retried cells — never
//! as a panic escaping the plane's API. Any escape prints the payload and
//! the process exits 1 (CI's `fault-matrix` job gates on that).
//!
//! Usage: `fault-matrix [seed ...]` (decimal or `0x`-prefixed hex).

use cc_core::topology::Topology;
use cc_core::{try_ccmorph, CcMorphParams, LayoutError};
use cc_fault::FaultPlan;
use cc_heap::{Allocator, CcMalloc, HeapError, Malloc, Strategy, VirtualSpace};
use cc_obs::MetricsRegistry;
use cc_sim::MachineConfig;
use cc_sweep::{cell_seed, Sweep};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Seeds used when none are given (and by CI).
const DEFAULT_SEEDS: [u64; 5] = [0xA1, 0xB2, 0xC3, 0xD4, 0xE5];

/// A small binary-ish tree as an adjacency list.
struct VecTree {
    kids: Vec<Vec<usize>>,
}

impl VecTree {
    /// A complete-ish binary tree over `n` nodes (node `i`'s children are
    /// `2i+1`, `2i+2`).
    fn binary(n: usize) -> Self {
        let kids = (0..n)
            .map(|i| {
                [2 * i + 1, 2 * i + 2]
                    .into_iter()
                    .filter(|&c| c < n)
                    .collect()
            })
            .collect();
        VecTree { kids }
    }
}

impl Topology for VecTree {
    fn node_count(&self) -> usize {
        self.kids.len()
    }
    fn root(&self) -> Option<usize> {
        (!self.kids.is_empty()).then_some(0)
    }
    fn max_kids(&self) -> usize {
        2
    }
    fn child(&self, node: usize, i: usize) -> Option<usize> {
        self.kids[node].get(i).copied()
    }
}

/// A hinted allocate/free churn against one allocator with faults armed.
/// Every injected fault must come back as a typed error or a counted
/// fallback — never a panic. Degradation counts land in `reg` under
/// `fault.heap.{name}.*`.
fn churn<A: Allocator>(
    name: &str,
    mut heap: A,
    reg: &mut MetricsRegistry,
) -> Result<String, String> {
    let mut typed_errors = 0u64;
    let mut live: Vec<u64> = Vec::new();
    let mut prev = None;
    for i in 0..40u64 {
        match heap.try_alloc_hint(20, prev) {
            Ok(addr) => {
                prev = Some(addr);
                live.push(addr);
            }
            Err(HeapError::PageExhaustion { .. }) => typed_errors += 1,
            Err(e) => return Err(format!("{name}: unexpected error {e}")),
        }
        if i % 7 == 3 {
            if let Some(addr) = live.pop() {
                heap.try_free(addr).map_err(|e| format!("{name}: {e}"))?;
            }
        }
    }
    for addr in live.drain(..) {
        heap.try_free(addr).map_err(|e| format!("{name}: {e}"))?;
    }
    let stats = heap.stats();
    reg.bump(
        &format!("fault.heap.{name}.fallback_allocations"),
        stats.fallback_allocations(),
    );
    reg.bump(
        &format!("fault.heap.{name}.degraded_hints"),
        stats.degraded_hints(),
    );
    reg.bump(&format!("fault.heap.{name}.typed_errors"), typed_errors);
    Ok(format!(
        "{name} allocs={} fallbacks={} degraded={} typed_errors={typed_errors}",
        stats.allocations(),
        stats.fallback_allocations(),
        stats.degraded_hints(),
    ))
}

/// Heap plane: the churn over both allocators with the seed's schedule
/// installed.
fn heap_plane(seed: u64, reg: &mut MetricsRegistry) -> Result<String, String> {
    // Small pages so the churn crosses page boundaries often enough for
    // armed denials to actually meet a fresh-page request.
    let schedule = FaultPlan::new(seed).heap_faults(8, 48).heap_schedule();
    let mut cc = CcMalloc::with_geometry(64, 256, Strategy::Closest);
    cc.set_fault_schedule(schedule.clone());
    let mut base = Malloc::new(256);
    base.set_fault_schedule(schedule);
    Ok(format!(
        "{}; {}",
        churn("ccmalloc", cc, reg)?,
        churn("malloc", base, reg)?
    ))
}

/// Morph plane: seed-chosen structural corruption fed to `try_ccmorph`,
/// which must reject it with a typed error and leave the space untouched.
fn morph_plane(seed: u64, reg: &mut MetricsRegistry) -> Result<String, String> {
    let mut rng = cc_core::rng::SplitMix64::new(seed);
    let machine = MachineConfig::test_tiny();
    let mut tree = VecTree::binary(31);
    let mut params = CcMorphParams::clustering_only(&machine, 16);
    let victim = 1 + rng.below(30) as usize;
    let kind = rng.below(4);
    if kind == 3 {
        params.elem_bytes = 0; // bad parameter
    } else {
        let target = match kind {
            0 => 0, // edge back to the root: a guaranteed cycle
            1 => 1, // edge to an interior node: alias (or cycle, if the
            // victim sits inside node 1's own subtree)
            _ => 1000, // dangling child
        };
        // Stay within `max_kids`: a third child would be invisible to the
        // `children` iterator and the corruption would vanish.
        let kids = &mut tree.kids[victim];
        if kids.len() == 2 {
            kids[1] = target;
        } else {
            kids.push(target);
        }
    }
    let mut vspace = VirtualSpace::new(machine.page_bytes);
    let before = vspace.span_bytes();
    let err = match try_ccmorph(&tree, &mut vspace, &params) {
        Err(e) => e,
        Ok(_) => return Err(format!("corruption kind {kind} was not detected")),
    };
    if vspace.span_bytes() != before {
        return Err("rejected morph still grew the virtual space".into());
    }
    let label = match (kind, err) {
        (0..=2, LayoutError::CyclicTopology { .. }) => "cycle",
        (0..=2, LayoutError::AliasedNode { .. }) => "alias",
        (0..=2, LayoutError::DanglingChild { .. }) => "dangling",
        (3, LayoutError::ZeroElemBytes) => "zero-elem",
        (_, other) => return Err(format!("kind {kind} raised the wrong class: {other}")),
    };
    reg.bump("fault.morph.rejections", 1);
    Ok(format!("rejected {label} (kind {kind})"))
}

/// Sweep plane: poisoned first attempts must be retried in place; the
/// grid must complete with every result present and deterministic.
fn sweep_plane(seed: u64, reg: &mut MetricsRegistry) -> Result<String, String> {
    let plan = FaultPlan::new(seed).sweep_poisons(2);
    let cells: Vec<u64> = (0..12).collect();
    let compute = |i: usize| cell_seed(seed, i as u64).count_ones() as u64;
    let clean: Vec<u64> = cells.iter().map(|&c| compute(c as usize)).collect();
    let outcomes = Sweep::with_threads(4).run_isolated(&cells, 2, |i, attempt, _| {
        if plan.poisons(i, attempt, 12) {
            panic!("injected poison in cell {i}");
        }
        compute(i)
    });
    let mut retried = 0;
    for (i, outcome) in outcomes.iter().enumerate() {
        match outcome.result() {
            Some(r) if *r == clean[i] => {}
            Some(r) => return Err(format!("cell {i} diverged: {r} != {}", clean[i])),
            None => return Err(format!("cell {i} failed outright")),
        }
        if outcome.attempts() > 1 {
            retried += 1;
        }
    }
    let expected = plan.sweep_poison_set(12).len();
    if retried != expected {
        return Err(format!("retried {retried} cells, expected {expected}"));
    }
    reg.bump("fault.sweep.retried_cells", retried as u64);
    Ok(format!("retried={retried} of 12 cells"))
}

/// Shard plane: seed-chosen replay workers panic on entry; the sharded
/// replayer must absorb every panic through its serial fallback — stats
/// bit-identical to a clean replay, degradation counters honest, nothing
/// escaping.
fn shard_plane(seed: u64, reg: &mut MetricsRegistry) -> Result<String, String> {
    let machine = MachineConfig::table1();
    const SHARDS: usize = 6;
    let plan = FaultPlan::new(seed).shard_poisons(2);
    let poisoned = plan.shard_poison_set(SHARDS);

    // A deterministic pointer-chase-ish trace wide enough to land events
    // in every shard.
    let mut rng = cc_core::rng::SplitMix64::new(cell_seed(seed, 17));
    let mut buf = cc_sim::TraceBuf::with_capacity(4096);
    for _ in 0..4000 {
        let addr = rng.next_u64() % (1 << 22);
        if rng.below(4) == 0 {
            buf.push(cc_sim::event::Event::store(addr, 8));
        } else {
            buf.push(cc_sim::event::Event::load(addr, 8));
        }
    }
    let bufs = [buf];

    let mut clean = cc_sim::ShardedReplayer::new(machine, SHARDS);
    let split = clean.split(&bufs);
    clean.replay(&split);

    let mut faulted = cc_sim::ShardedReplayer::new(machine, SHARDS);
    let split = faulted.split(&bufs);
    faulted.replay_poisoned(&split, &poisoned);

    if faulted.l1_stats() != clean.l1_stats()
        || faulted.l2_stats() != clean.l2_stats()
        || faulted.tlb_stats() != clean.tlb_stats()
        || faulted.memory_cycles() != clean.memory_cycles()
    {
        return Err("poisoned replay diverged from the clean replay".into());
    }
    let d = faulted.degradation();
    let want = poisoned.len() as u64;
    if d.worker_panics != want || d.fallback_lanes != want || d.lost_lanes != 0 {
        return Err(format!(
            "dishonest degradation counters: panics={} fallbacks={} lost={} (expected {want})",
            d.worker_panics, d.fallback_lanes, d.lost_lanes
        ));
    }
    if clean.degradation() != cc_sim::ShardDegradation::default() {
        return Err("clean replay reported degradation".into());
    }
    reg.bump("fault.shard.worker_panics", d.worker_panics);
    reg.bump("fault.shard.fallback_lanes", d.fallback_lanes);
    reg.bump("fault.shard.lost_lanes", d.lost_lanes);
    Ok(format!(
        "{} poisoned worker(s) of {SHARDS} fell back serially, stats exact",
        poisoned.len()
    ))
}

/// Sample plane: seed-chosen cluster representatives panic at replay; the
/// sampler must degrade each to a counted neighbouring-interval fallback
/// with full coverage and a near-identical estimate — degraded output
/// visible, never silently wrong.
fn sample_plane(seed: u64, reg: &mut MetricsRegistry) -> Result<String, String> {
    let machine = MachineConfig::test_tiny();
    const INTERVALS: usize = 12;
    let plan = FaultPlan::new(seed).sample_poisons(1);

    // Three phases cycling by interval index: distinct regions, strides,
    // and write mixes give k-medoids real structure to find, and keep
    // every cluster populated so a poisoned medoid always has a
    // same-phase member to fall back to.
    let interval_bufs = |i: usize| -> std::sync::Arc<Vec<cc_sim::TraceBuf>> {
        let phase = (i % 3) as u32;
        let base = 0x1000u64 << (8 * phase);
        let stride = 16u64 << (2 * phase);
        let mut buf = cc_sim::TraceBuf::with_capacity(1024);
        for j in 0..600u64 {
            let addr = base + (j * stride) % 8192;
            if phase == 1 && j % 4 == 0 {
                buf.push(cc_sim::event::Event::store(addr, 8));
            } else {
                buf.push(cc_sim::event::Event::load(addr, 8));
            }
            buf.push_ticks(1);
        }
        std::sync::Arc::new(vec![buf])
    };

    let cfg = cc_sample::SampleConfig {
        max_clusters: 3,
        ..cc_sample::SampleConfig::default()
    };
    let sigs: Vec<cc_sample::Signature> = (0..INTERVALS)
        .map(|i| cc_sample::Signature::from_bufs(&interval_bufs(i), cfg.stride_shift))
        .collect();
    let sample_plan = cc_sample::cluster(&sigs, &cfg);
    let poisoned = plan.sample_poison_set(sample_plan.representatives());
    let mut provider = |i: usize| interval_bufs(i);

    let faulted = cc_sample::replay_representatives(
        &machine,
        2,
        &sample_plan,
        &sigs,
        cfg.warmup_intervals,
        &poisoned,
        &mut provider,
    );
    let d = faulted.degradation;
    let want = poisoned.len() as u64;
    if d.fallback_representatives != want
        || d.lost_representatives != 0
        || d.lost_weight_events != 0
    {
        return Err(format!(
            "dishonest degradation counters: fallbacks={} lost={} lost_events={} (expected {want} fallbacks)",
            d.fallback_representatives, d.lost_representatives, d.lost_weight_events
        ));
    }
    let est = cc_sample::extrapolate(&sample_plan, &faulted, &cfg);
    if est.coverage_pct != 100.0 {
        return Err(format!("degraded run lost coverage: {}%", est.coverage_pct));
    }

    let clean = cc_sample::replay_representatives(
        &machine,
        2,
        &sample_plan,
        &sigs,
        cfg.warmup_intervals,
        &std::collections::BTreeSet::new(),
        &mut provider,
    );
    if clean.degradation != cc_sample::SampleDegradation::default() {
        return Err("clean representative replay reported degradation".into());
    }
    let clean_est = cc_sample::extrapolate(&sample_plan, &clean, &cfg);
    let drift = cc_sample::error_report(&est.counters, &clean_est.counters);
    if drift.max_error_pct > 10.0 {
        return Err(format!(
            "fallback estimate drifted {:.2}% ({}) from the clean estimate",
            drift.max_error_pct, drift.worst
        ));
    }

    // Replayable: the same poisons degrade to the same estimate.
    let again = cc_sample::replay_representatives(
        &machine,
        2,
        &sample_plan,
        &sigs,
        cfg.warmup_intervals,
        &poisoned,
        &mut provider,
    );
    if cc_sample::extrapolate(&sample_plan, &again, &cfg) != est {
        return Err("poisoned sampler run was not replayable".into());
    }

    reg.bump(
        "fault.sample.fallback_representatives",
        d.fallback_representatives,
    );
    reg.bump("fault.sample.lost_representatives", d.lost_representatives);
    Ok(format!(
        "{} poisoned representative(s) of {} fell back, coverage exact, drift {:.3}% ({})",
        poisoned.len(),
        sample_plan.representatives(),
        drift.max_error_pct,
        drift.worst
    ))
}

fn parse_seed(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let seeds: Vec<u64> = if args.is_empty() {
        DEFAULT_SEEDS.to_vec()
    } else {
        match args.iter().map(|a| parse_seed(a)).collect() {
            Some(seeds) => seeds,
            None => {
                eprintln!("usage: fault-matrix [seed ...] (decimal or 0x hex)");
                std::process::exit(2);
            }
        }
    };

    // The planes inject panics on purpose; silence the default hook and
    // report captured payloads ourselves.
    std::panic::set_hook(Box::new(|_| {}));

    let planes: [(
        &str,
        fn(u64, &mut MetricsRegistry) -> Result<String, String>,
    ); 5] = [
        ("heap", heap_plane),
        ("morph", morph_plane),
        ("sweep", sweep_plane),
        ("shard", shard_plane),
        ("sample", sample_plane),
    ];
    let mut reg = MetricsRegistry::new();
    let mut escaped = 0u32;
    for &seed in &seeds {
        for (name, plane) in planes {
            match catch_unwind(AssertUnwindSafe(|| plane(seed, &mut reg))) {
                Ok(Ok(detail)) => println!("seed {seed:#x} {name}: ok ({detail})"),
                Ok(Err(msg)) => {
                    escaped += 1;
                    println!("seed {seed:#x} {name}: FAILED: {msg}");
                }
                Err(payload) => {
                    escaped += 1;
                    let msg = payload
                        .downcast_ref::<&str>()
                        .map(|s| (*s).to_string())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "non-string panic payload".into());
                    println!("seed {seed:#x} {name}: ESCAPED PANIC: {msg}");
                }
            }
        }
    }
    reg.set("fault.planes.escaped", u64::from(escaped));
    reg.set("fault.planes.runs", (seeds.len() * planes.len()) as u64);
    // The aggregated degradation counters, as one byte-stable JSON line
    // (and, when CC_OBS_OUT names a path, as a file CI can upload).
    println!("metrics: {}", reg.to_json());
    if let Some(path) = std::env::var_os("CC_OBS_OUT").filter(|v| !v.is_empty()) {
        if let Err(e) = std::fs::write(&path, reg.to_json()) {
            eprintln!(
                "warning: fault-matrix: cannot write {}: {e}",
                path.to_string_lossy()
            );
        }
    }
    if escaped > 0 {
        println!("fault-matrix: {escaped} plane run(s) failed");
        std::process::exit(1);
    }
    println!(
        "fault-matrix: {} seeds x {} planes survived",
        seeds.len(),
        planes.len()
    );
}
