//! Satellite guarantee: a `FaultPlan` seed is a complete description of
//! the misfortune. Replaying the same seed yields the same schedules, the
//! same tampered allocations, the same heap statistics, and the same
//! per-cell sweep outcomes — which is what makes any fault run a
//! regression test instead of an anecdote.

use cc_fault::FaultPlan;
use cc_heap::{Allocator, CcMalloc, HeapError, Strategy};
use cc_sweep::{cell_seed, CellOutcome, Sweep};
use proptest::prelude::*;

/// Silences the default panic hook while `f` runs (the sweep property
/// injects panics on purpose).
fn with_quiet_panics<T>(f: impl FnOnce() -> T) -> T {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let out = f();
    std::panic::set_hook(prev);
    out
}

/// A hinted churn under the seed's heap schedule, returning everything
/// observable: each allocation's address or typed error, and the final
/// statistics.
fn heap_run(seed: u64) -> (Vec<Result<u64, HeapError>>, cc_heap::HeapStats) {
    let mut heap = CcMalloc::with_geometry(64, 256, Strategy::Closest);
    heap.set_fault_schedule(FaultPlan::new(seed).heap_faults(6, 32).heap_schedule());
    let mut prev = None;
    let mut addrs = Vec::new();
    for i in 0..30u64 {
        let got = heap.try_alloc_hint(20, prev);
        if let Ok(addr) = got {
            prev = Some(addr);
            if i % 5 == 4 {
                heap.try_free(addr).expect("freeing a live address");
                prev = None;
            }
        }
        addrs.push(got);
    }
    (addrs, heap.stats().clone())
}

/// A poisoned sweep under the seed's poison set.
fn sweep_run(seed: u64) -> Vec<CellOutcome<u64>> {
    let plan = FaultPlan::new(seed).sweep_poisons(2);
    let cells: Vec<u64> = (0..10).collect();
    Sweep::with_threads(4).run_isolated(&cells, 2, |i, attempt, _| {
        if plan.poisons(i, attempt, 10) {
            panic!("injected");
        }
        cell_seed(seed, i as u64)
    })
}

proptest! {
    #[test]
    fn schedules_replay_identically(seed in any::<u64>()) {
        let make = || FaultPlan::new(seed).heap_faults(6, 64).trace_faults(4).sweep_poisons(3);
        prop_assert_eq!(make().heap_schedule(), make().heap_schedule());
        prop_assert_eq!(make().trace_schedule(), make().trace_schedule());
        prop_assert_eq!(make().sweep_poison_set(16), make().sweep_poison_set(16));
    }

    #[test]
    fn replayed_heap_runs_are_identical(seed in any::<u64>()) {
        prop_assert_eq!(heap_run(seed), heap_run(seed));
    }

    #[test]
    fn replayed_sweep_outcomes_are_identical(seed in any::<u64>()) {
        let (a, b) = with_quiet_panics(|| (sweep_run(seed), sweep_run(seed)));
        prop_assert_eq!(a, b);
    }
}
