//! The no-fault differential gate: plumbing an *empty* `FaultPlan`
//! through a representative experiment — `CcMalloc` allocation, a batched
//! simulation, a parallel sweep — must leave the rendered output
//! byte-identical to a run that never touched the fault APIs at all.
//!
//! This is what makes the fault plane safe to wire into the figure
//! binaries: with no plan armed, every code path (schedule lookups, sink
//! validation arming, isolated runners) is exactly the old behaviour.

use cc_fault::FaultPlan;
use cc_heap::{Allocator, CcMalloc, Strategy};
use cc_sim::event::EventSink;
use cc_sim::{BatchSink, MachineConfig};
use cc_sweep::Sweep;
use std::fmt::Write;

/// One representative cell: a hinted allocation chain traversed through
/// the batched simulator, rendered the way a figure binary would print it.
fn run_cell(i: usize, plan: Option<&FaultPlan>) -> String {
    let mut heap = CcMalloc::with_geometry(64, 4096, Strategy::Closest);
    if let Some(p) = plan {
        heap.set_fault_schedule(p.heap_schedule());
    }
    let mut sink = BatchSink::with_capacity(MachineConfig::test_tiny(), 64);
    let mut prev = None;
    let mut addrs = Vec::new();
    for _ in 0..(40 + i * 7) {
        let addr = heap.try_alloc_hint(20, prev).expect("allocation");
        prev = Some(addr);
        addrs.push(addr);
    }
    if let Some(p) = plan {
        for fault in p.trace_schedule() {
            sink.inject_fault(&fault);
        }
    }
    for &addr in &addrs {
        sink.load(addr, 20);
        sink.inst(1);
    }
    sink.flush();
    let stats = heap.stats();
    format!(
        "cell {i}: l1={}/{} cycles={} insts={} pages={} fallbacks={} degraded={}",
        sink.system().l1_stats().misses(),
        sink.system().l1_stats().accesses(),
        sink.memory_cycles(),
        sink.insts(),
        stats.pages(),
        stats.fallback_allocations(),
        stats.degraded_hints(),
    )
}

/// Renders a 6-cell sweep. `None` never touches a fault API; `Some(plan)`
/// routes everything through the fault plumbing (schedules installed,
/// faults injected, isolated runner with the plan's poison set).
fn render(plan: Option<&FaultPlan>) -> String {
    let cells: Vec<usize> = (0..6).collect();
    let lines: Vec<String> = match plan {
        None => Sweep::with_threads(2).run(&cells, |i, _| run_cell(i, None)),
        Some(p) => Sweep::with_threads(2)
            .run_isolated(&cells, 2, |i, attempt, _| {
                if p.poisons(i, attempt, 6) {
                    panic!("injected");
                }
                run_cell(i, Some(p))
            })
            .into_iter()
            .map(|o| o.into_result().expect("cell survived"))
            .collect(),
    };
    let mut out = String::new();
    for line in lines {
        writeln!(out, "{line}").unwrap();
    }
    out
}

#[test]
fn empty_plan_output_is_byte_identical() {
    let clean = render(None);
    let empty = FaultPlan::new(0x5EED);
    assert!(empty.is_empty());
    assert_eq!(
        render(Some(&empty)),
        clean,
        "empty FaultPlan perturbed the output"
    );
}

#[test]
fn armed_plan_is_visible_in_the_output() {
    // Sanity check on the gate itself: the differential test would pass
    // vacuously if the plumbing ignored the plan entirely, so make sure an
    // armed plan actually changes the rendered counters.
    let clean = render(None);
    let armed = FaultPlan::new(0x5EED).heap_faults(8, 32);
    assert_ne!(render(Some(&armed)), clean, "armed plan had no effect");
}
