//! The documented survival run (DESIGN.md §9): one seed, three planes,
//! three distinct graceful-degradation mechanisms demonstrably exercised:
//!
//! 1. a sweep worker panic, retried in place ([`CellOutcome::Retried`]);
//! 2. a fresh-page denial absorbed by the scavenging fallback and counted
//!    in `HeapStats::fallback_allocations`;
//! 3. a corrupt trace batch replayed on the scalar reference path and
//!    counted in `BatchSink::fallback_batches`.
//!
//! The seed is a constant so the run replays bit-for-bit; if this test
//! fails after a change to schedule derivation, update DESIGN.md §9 along
//! with the constant.

use cc_fault::FaultPlan;
use cc_heap::{Allocator, CcMalloc, Malloc, Strategy};
use cc_sim::event::EventSink;
use cc_sim::{BatchSink, MachineConfig};
use cc_sweep::{cell_seed, CellOutcome, Sweep};

/// The seed documented in DESIGN.md §9.
const DOCUMENTED_SEED: u64 = 0xCC15_FA00;

fn with_quiet_panics<T>(f: impl FnOnce() -> T) -> T {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let out = f();
    std::panic::set_hook(prev);
    out
}

#[test]
fn documented_seed_survives_all_three_planes() {
    let plan = FaultPlan::new(DOCUMENTED_SEED)
        .heap_faults(6, 32)
        .trace_faults(1)
        .sweep_poisons(1);

    // --- Plane 1: sweep. One poisoned cell panics on its first attempt
    // and is retried; every other cell is bit-identical to a clean run.
    let cells: Vec<u64> = (0..8).collect();
    let compute = |i: usize| cell_seed(DOCUMENTED_SEED, i as u64);
    let clean: Vec<u64> = (0..8).map(compute).collect();
    let outcomes = with_quiet_panics(|| {
        Sweep::with_threads(4).run_isolated(&cells, 2, |i, attempt, _| {
            if plan.poisons(i, attempt, 8) {
                panic!("injected poison");
            }
            compute(i)
        })
    });
    let poisoned = plan.sweep_poison_set(8);
    assert_eq!(poisoned.len(), 1, "the plan poisons exactly one cell");
    let mut retried = 0;
    for (i, outcome) in outcomes.iter().enumerate() {
        assert_eq!(outcome.result(), Some(&clean[i]), "cell {i} diverged");
        if poisoned.contains(&i) {
            assert!(
                matches!(outcome, CellOutcome::Retried { attempts: 2, .. }),
                "poisoned cell {i} was not retried: {outcome:?}"
            );
            retried += 1;
        } else {
            assert!(matches!(outcome, CellOutcome::Ok(_)));
        }
    }
    assert_eq!(retried, 1, "exactly one worker panic survived via retry");

    // --- Plane 2: heap. The schedule arms at least one fresh-page
    // denial; a workload with freed larger-class slots on hand absorbs it
    // through the scavenging fallback instead of failing.
    let schedule = plan.heap_schedule();
    assert!(
        !schedule.deny_fresh_page.is_empty(),
        "documented seed arms a denial: {schedule:?}"
    );
    let mut heap = Malloc::new(8192);
    heap.set_fault_schedule(schedule.clone());
    // Ordinals 0..=27: churn 100-byte slots (all on the page claimed at
    // ordinal 0, before any denial matures), then free them all. The next
    // allocation is a different size class with no chunk yet, so it must
    // request a fresh page — by now the armed denials have matured, and
    // the freed slots give scavenging something to find.
    let mut slots = Vec::new();
    for _ in 0..28 {
        slots.push(heap.try_alloc(100).expect("large-class churn"));
    }
    for addr in slots.drain(..) {
        heap.try_free(addr).expect("freeing live slot");
    }
    let fallback_addr = heap.try_alloc(16).expect("denial absorbed by scavenging");
    assert!(fallback_addr != 0);
    assert_eq!(
        heap.stats().fallback_allocations(),
        1,
        "the page-exhaustion fallback is counted in HeapStats"
    );

    // The paper's allocator degrades hints rather than failing: the same
    // schedule's hint tampering shows up in `degraded_hints`.
    let mut cc = CcMalloc::with_geometry(64, 256, Strategy::Closest);
    cc.set_fault_schedule(schedule);
    let mut prev = None;
    for _ in 0..30 {
        if let Ok(addr) = cc.try_alloc_hint(20, prev) {
            prev = Some(addr);
        }
    }
    assert!(
        cc.stats().degraded_hints() > 0,
        "hint tampering is observable: {:?}",
        cc.stats()
    );

    // --- Plane 3: trace. The plan's first fault is always a lane
    // truncation; a staged batch of 100 entries is therefore corrupt, and
    // the sink survives by replaying the repaired batch on the scalar
    // path.
    let faults = plan.trace_schedule();
    assert_eq!(faults.len(), 1);
    let mut sink = BatchSink::with_capacity(MachineConfig::test_tiny(), 128);
    for i in 0..100u64 {
        sink.load(0x1000 + i * 0x40, 8);
    }
    sink.inject_fault(&faults[0]);
    sink.flush();
    assert_eq!(
        sink.fallback_batches(),
        1,
        "the corrupt batch fell back to the scalar path"
    );
    assert!(sink.fallback_events() > 0);
    // The sink keeps working after the fallback.
    sink.load(0x9000, 8);
    sink.flush();
    assert_eq!(sink.fallback_batches(), 1, "clean batches stay batched");
}
