//! Property tests for the lint parser and layout model.
//!
//! Two families:
//!
//! * **Round-trip**: generated struct definitions parse back to exactly
//!   the generated field list, reprs, and hot marks.
//! * **Totality**: the parser and the whole analyze pipeline never panic
//!   on arbitrary token soup — the CLI's exit-2 "input error" path is
//!   reserved for broken invocations, so no source text may crash it.
//!
//! Plus layout invariants: optimal reorder never pads more than
//! declaration order, and modeled sizes respect alignment.

use cc_lint::{analyze_sources, parse_source, HotSpec, LintConfig};
use proptest::prelude::*;

/// Field types the generator draws from (name, lint-modeled exactly).
const TYPES: &[&str] = &[
    "u8",
    "u16",
    "u32",
    "u64",
    "u128",
    "i8",
    "i16",
    "i32",
    "i64",
    "f32",
    "f64",
    "bool",
    "char",
    "usize",
    "*const u8",
    "[u8; 3]",
    "[u64; 2]",
    "Vec<u64>",
    "String",
    "Option<u32>",
    "(u8, u32)",
];

/// Builds a struct source from generator choices.
fn render_struct(
    name_idx: u8,
    repr_c: bool,
    fields: &[(u8, bool)], // (type index, hot)
) -> (String, String, Vec<(String, String, bool)>) {
    let name = format!("S{name_idx}");
    let mut src = String::new();
    if repr_c {
        src.push_str("#[repr(C)]\n");
    }
    src.push_str(&format!("pub struct {name} {{\n"));
    let mut expect = Vec::new();
    for (i, (ty_idx, hot)) in fields.iter().enumerate() {
        let field = format!("f{i}");
        let ty = TYPES[*ty_idx as usize % TYPES.len()];
        src.push_str(&format!(
            "    {field}: {ty},{}\n",
            if *hot { " // cc-hot" } else { "" }
        ));
        expect.push((field, ty.to_string(), *hot));
    }
    src.push_str("}\n");
    (name, src, expect)
}

/// Normalizes a rendered type for comparison (the parser's Display puts
/// single spaces in fixed places).
fn norm(ty: &str) -> String {
    ty.split_whitespace().collect::<Vec<_>>().join(" ")
}

proptest! {
    /// Generated definitions round-trip: same struct name, same fields in
    /// order, same types (up to whitespace), same repr, same hot marks.
    #[test]
    fn roundtrip_generated_structs(
        name_idx in any::<u8>(),
        repr_c in any::<bool>(),
        fields in prop::collection::vec((any::<u8>(), any::<bool>()), 1..12),
    ) {
        let (name, src, expect) = render_struct(name_idx, repr_c, &fields);
        let parsed = parse_source("gen.rs", &src);
        prop_assert_eq!(parsed.structs.len(), 1, "{}", src);
        let s = &parsed.structs[0];
        prop_assert_eq!(&s.name, &name);
        prop_assert_eq!(s.repr.c, repr_c);
        prop_assert_eq!(s.fields.len(), expect.len());
        for (got, want) in s.fields.iter().zip(&expect) {
            prop_assert_eq!(&got.name, &want.0);
            prop_assert_eq!(norm(&got.ty.to_string()), norm(&want.1));
            prop_assert_eq!(got.hot, want.2, "hot mark on {}", want.0);
        }
    }

    /// The parser is total over arbitrary bytes-as-text.
    #[test]
    fn parser_never_panics_on_soup(bytes in prop::collection::vec(any::<u8>(), 0..300)) {
        let soup = String::from_utf8_lossy(&bytes);
        let _ = parse_source("soup.rs", &soup);
    }

    /// The parser is total over *almost-Rust* token soup, which reaches
    /// deeper into the recovery paths than uniformly random text.
    #[test]
    fn parser_never_panics_on_rusty_soup(
        tokens in prop::collection::vec(
            prop::sample::select(vec![
                "struct", "enum", "pub", "S", "x", ":", ",", "<", ">", "{",
                "}", "(", ")", "[", "]", "#", "=", ";", "u64", "'a", "//x\n",
                "/*", "*/", "\"s", "0xFF", "repr", "C", "packed", "align",
                "where", "dyn", "fn", "&", "*", "!", "...", "r#type",
            ]),
            0..60,
        )
    ) {
        let soup = tokens.join(" ");
        let _ = parse_source("soup.rs", &soup);
    }

    /// The whole pipeline (parse, model, rules, render) is total, and both
    /// renderings are deterministic.
    #[test]
    fn analyzer_total_and_deterministic_on_soup(
        bytes in prop::collection::vec(any::<u8>(), 0..300),
    ) {
        let soup = String::from_utf8_lossy(&bytes).into_owned();
        let files = [("soup.rs".to_string(), soup)];
        let a = analyze_sources(&files, &HotSpec::empty(), &LintConfig::default());
        let b = analyze_sources(&files, &HotSpec::empty(), &LintConfig::default());
        prop_assert_eq!(a.to_json(), b.to_json());
        prop_assert_eq!(a.to_text(), b.to_text());
    }

    /// Layout invariants over generated (well-formed) structs: the
    /// optimal reorder never has more padding or a larger size than
    /// declaration order, and every modeled size is a multiple of its
    /// alignment.
    #[test]
    fn optimal_reorder_never_worse(
        name_idx in any::<u8>(),
        repr_c in any::<bool>(),
        fields in prop::collection::vec((any::<u8>(), any::<bool>()), 1..12),
    ) {
        let (_, src, _) = render_struct(name_idx, repr_c, &fields);
        let report = analyze_sources(
            &[("gen.rs".to_string(), src.clone())],
            &HotSpec::empty(),
            &LintConfig::default(),
        );
        prop_assert_eq!(report.structs.len(), 1, "{}", src);
        let s = &report.structs[0];
        prop_assert!(s.optimal_padding <= s.padding, "{}", src);
        prop_assert!(s.optimal_size <= s.size, "{}", src);
        prop_assert!(s.align > 0 && s.size % s.align == 0, "{}", src);
        for (_, offset, size, align, _) in &s.fields {
            prop_assert!(align > &0);
            prop_assert_eq!(offset % align, 0, "field misaligned in {}", src);
            prop_assert!(offset + size <= s.size);
        }
    }
}
