//! Deliberately-bad struct layouts for the cc-lint golden report test.
//! This file is test DATA — it is parsed by the analyzer, never compiled
//! into the workspace.

/// PAD-01 bait: three u8/u64 interleavings waste 14 bytes of padding.
#[repr(C)]
pub struct Interleaved {
    a: u8,
    b: u64,
    c: u8,
    d: u64,
    e: u8,
    f: u64,
}

/// SPAN-01 bait: the hot timestamp sits at offset 60 of a 72-byte
/// element, so in an array it crosses a 64-byte line boundary.
#[repr(C)]
pub struct Straddler {
    header: [u8; 60],
    stamp: [u8; 8], // cc-hot
    tail: u32,
}

/// HOT-01 bait: hot fields separated by a cold page of bytes.
#[repr(C)]
pub struct SplitHot {
    key: u64, // cc-hot
    cold: [u8; 120],
    next: u64, // cc-hot
}

/// SOA-01 bait: arrays of this carry 64 B/element, only 16 hot.
#[repr(C)]
pub struct Particle {
    x: f64, // cc-hot
    y: f64, // cc-hot
    history: [u64; 6],
}

/// The arrays that make `Particle` an AoS element.
pub struct World {
    particles: Vec<Particle>,
    bounds: [f64; 4],
}
