//! Pins the `repr(C)` offset model against the real compiler.
//!
//! Every battery entry declares an actual Rust struct, feeds its
//! *stringified source* through the cc-lint parser + layout model, and
//! asserts the modeled offset of every field equals
//! `core::mem::offset_of!`, and modeled size/align equal
//! `core::mem::size_of` / `core::mem::align_of`. If the model ever
//! disagrees with rustc, these tests fail — the model is verified, not
//! assumed.
//!
//! The final test sweeps the workspace source tree and asserts every
//! struct the model claims is *exact* (`repr(C)`, all field sizes
//! guaranteed) is registered in [`VERIFIED`], i.e. has a compiler-backed
//! verification site: either the battery below or an in-crate
//! `#[cfg(test)]` module next to the definition (see `cc-trees/src/bst.rs`
//! and `cc-sim/src/geometry.rs`). Adding a new `repr(C)` struct without a
//! verification site fails the sweep.

use cc_lint::{analyze_sources, HotSpec, LintConfig};

/// `(file suffix, struct name)` pairs with a compiler-backed verification
/// site somewhere in the workspace test suite.
const VERIFIED: &[(&str, &str)] = &[
    ("crates/trees/src/bst.rs", "Node"),
    ("crates/sim/src/geometry.rs", "CacheGeometry"),
    // PAD-01 burn-down reorder, pinned by fault_plan_offsets_are_pinned
    // in its own crate.
    ("crates/fault/src/lib.rs", "FaultPlan"),
];

/// Runs the full parse → model pipeline on one source string and returns
/// the summary for `name`.
fn model_one(src: &str, name: &str) -> cc_lint::report::StructSummary {
    let report = analyze_sources(
        &[("verify.rs".to_string(), src.to_string())],
        &HotSpec::empty(),
        &LintConfig::default(),
    );
    report
        .structs
        .iter()
        .find(|s| s.name == name)
        .unwrap_or_else(|| panic!("struct {name} not modeled from: {src}"))
        .clone()
}

fn field_offset(s: &cc_lint::report::StructSummary, field: &str) -> u64 {
    s.fields
        .iter()
        .find(|(n, ..)| n == field)
        .unwrap_or_else(|| panic!("field {field} missing from model of {}", s.name))
        .1
}

/// Declares a real struct, models its stringified source, and checks every
/// field offset plus size/align against the compiler.
macro_rules! verify_repr_c {
    ($(#[$meta:meta])* struct $name:ident { $($field:ident : $ty:ty),* $(,)? }) => {{
        #[allow(dead_code)]
        $(#[$meta])*
        struct $name { $($field: $ty),* }
        let src = stringify!($(#[$meta])* struct $name { $($field: $ty),* });
        let modeled = model_one(src, stringify!($name));
        assert!(modeled.exact, "{} must be exactly modeled", stringify!($name));
        assert_eq!(
            modeled.size,
            core::mem::size_of::<$name>() as u64,
            "size of {}",
            stringify!($name)
        );
        assert_eq!(
            modeled.align,
            core::mem::align_of::<$name>() as u64,
            "align of {}",
            stringify!($name)
        );
        $(
            assert_eq!(
                field_offset(&modeled, stringify!($field)),
                core::mem::offset_of!($name, $field) as u64,
                "offset of {}.{}",
                stringify!($name),
                stringify!($field)
            );
        )*
    }};
}

#[test]
fn mixed_primitives() {
    verify_repr_c!(
        #[repr(C)]
        struct Mixed {
            a: u8,
            b: u64,
            c: u16,
            d: u32,
            e: i8,
            f: f64,
            g: bool,
            h: char,
        }
    );
}

#[test]
fn paper_shape_interleaved() {
    // The lib.rs doctest's deliberately-bad shape: 3× (u8 + pad + u64).
    verify_repr_c!(
        #[repr(C)]
        struct Bad {
            a: u8,
            b: u64,
            c: u8,
            d: u64,
            e: u8,
            f: u64,
        }
    );
}

#[test]
fn arrays_and_pointers() {
    verify_repr_c!(
        #[repr(C)]
        struct ArrPtr {
            tag: u8,
            block: [u8; 13],
            words: [u64; 3],
            p: *const u64,
            q: *mut u8,
            nested: [[u32; 2]; 2],
        }
    );
}

#[test]
fn wide_and_narrow() {
    verify_repr_c!(
        #[repr(C)]
        struct Wide {
            lo: u128,
            mid: u8,
            hi: i128,
            tail: u16,
        }
    );
}

#[test]
fn usize_isize_floats() {
    verify_repr_c!(
        #[repr(C)]
        struct Sizes {
            n: usize,
            d: f32,
            i: isize,
            x: f64,
            b: i16,
        }
    );
}

#[test]
fn align_attr_raises_alignment() {
    verify_repr_c!(
        #[repr(C, align(32))]
        struct Aligned {
            a: u8,
            b: u32,
        }
    );
}

#[test]
fn packed_one() {
    verify_repr_c!(
        #[repr(C, packed)]
        struct Packed1 {
            a: u8,
            b: u64,
            c: u16,
        }
    );
}

#[test]
fn packed_two() {
    verify_repr_c!(
        #[repr(C, packed(2))]
        struct Packed2 {
            a: u8,
            b: u64,
            c: u32,
        }
    );
}

#[test]
fn nonzero_niches() {
    verify_repr_c!(
        #[repr(C)]
        struct Nz {
            a: core::num::NonZeroU64,
            b: core::num::NonZeroU8,
            c: u16,
        }
    );
}

#[test]
fn nested_repr_c_struct_field() {
    // Two structs in one source: the outer embeds the inner by name, the
    // model resolves it locally; both verified against the compiler.
    #[allow(dead_code)]
    #[repr(C)]
    struct Inner {
        x: u32,
        y: u8,
    }
    #[allow(dead_code)]
    #[repr(C)]
    struct Outer {
        head: u8,
        mid: Inner,
        tail: u64,
    }
    let src = "#[repr(C)] struct Inner { x: u32, y: u8 }\n\
               #[repr(C)] struct Outer { head: u8, mid: Inner, tail: u64 }";
    let inner = model_one(src, "Inner");
    assert_eq!(inner.size, core::mem::size_of::<Inner>() as u64);
    assert_eq!(inner.align, core::mem::align_of::<Inner>() as u64);
    let outer = model_one(src, "Outer");
    assert!(outer.exact);
    assert_eq!(outer.size, core::mem::size_of::<Outer>() as u64);
    assert_eq!(outer.align, core::mem::align_of::<Outer>() as u64);
    assert_eq!(
        field_offset(&outer, "head"),
        core::mem::offset_of!(Outer, head) as u64
    );
    assert_eq!(
        field_offset(&outer, "mid"),
        core::mem::offset_of!(Outer, mid) as u64
    );
    assert_eq!(
        field_offset(&outer, "tail"),
        core::mem::offset_of!(Outer, tail) as u64
    );
}

#[test]
fn fieldless_enum_field() {
    #[allow(dead_code)]
    #[repr(u8)]
    enum Kind {
        A,
        B,
        C,
    }
    #[allow(dead_code)]
    #[repr(C)]
    struct Tagged {
        kind: Kind,
        pad_target: u64,
        other: Kind,
    }
    let src = "#[repr(u8)] enum Kind { A, B, C }\n\
               #[repr(C)] struct Tagged { kind: Kind, pad_target: u64, other: Kind }";
    let t = model_one(src, "Tagged");
    assert!(t.exact, "repr(u8) fieldless enum fields stay exact");
    assert_eq!(t.size, core::mem::size_of::<Tagged>() as u64);
    assert_eq!(
        field_offset(&t, "pad_target"),
        core::mem::offset_of!(Tagged, pad_target) as u64
    );
    assert_eq!(
        field_offset(&t, "other"),
        core::mem::offset_of!(Tagged, other) as u64
    );
}

/// Collects workspace `.rs` sources relative to this crate's manifest.
fn workspace_sources() -> Vec<(String, String)> {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root");
    let mut files = Vec::new();
    let mut stack = vec![root.clone()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if path.is_dir() {
                if name != "target" && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                let rel = path
                    .strip_prefix(&root)
                    .unwrap_or(&path)
                    .display()
                    .to_string();
                if let Ok(src) = std::fs::read_to_string(&path) {
                    files.push((rel, src));
                }
            }
        }
    }
    files.sort();
    files
}

/// Every struct the model claims is exact must have a verification site.
#[test]
fn every_exact_workspace_struct_is_verified() {
    let files = workspace_sources();
    assert!(files.len() > 50, "workspace sweep found too few files");
    let report = analyze_sources(&files, &HotSpec::empty(), &LintConfig::default());
    let exact: Vec<&cc_lint::report::StructSummary> =
        report.structs.iter().filter(|s| s.exact).collect();
    assert!(
        !exact.is_empty(),
        "expected at least the pinned Node/CacheGeometry structs"
    );
    for s in &exact {
        // Files under crates/lint/tests/ are the verification battery and
        // its fixtures — the structs there are compiler-checked in place.
        if s.file.contains("crates/lint/tests/") {
            continue;
        }
        assert!(
            VERIFIED
                .iter()
                .any(|(file, name)| s.file.ends_with(file) && s.name == *name),
            "exact-modeled struct {}::{} has no compiler-backed verification \
             site — add one (in-crate #[cfg(test)] offset_of! check or the \
             battery in crates/lint/tests/verify_offsets.rs) and register it \
             in VERIFIED",
            s.file,
            s.name
        );
    }
    // And the registry is live: every registered struct is actually found
    // and exactly modeled (catches renames going stale).
    for (file, name) in VERIFIED {
        assert!(
            exact
                .iter()
                .any(|s| s.file.ends_with(file) && s.name == *name),
            "VERIFIED entry {file}::{name} not found as an exact-modeled \
             struct in the workspace sweep"
        );
    }
}
