//! Golden-file tests pinning the cc-lint report formats byte-for-byte,
//! plus the acceptance checks on the deliberately-bad fixture structs.
//!
//! The JSON report is consumed by the CI lint gate and artifact diffing,
//! so its encoding is a contract: fixed key order, `{:.4}` floats,
//! canonical finding order. These tests compare against committed files
//! under `tests/golden/`; set `CC_BLESS=1` to regenerate after an
//! intentional format change (same convention as cc-obs).

use cc_lint::{analyze_sources, HotSpec, LintConfig, LintRule};
use std::path::PathBuf;

fn check(name: &str, actual: &str) {
    let path: PathBuf = [env!("CARGO_MANIFEST_DIR"), "tests", "golden", name]
        .iter()
        .collect();
    if std::env::var_os("CC_BLESS").is_some() {
        std::fs::write(&path, actual).expect("bless golden file");
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {} ({e}); run with CC_BLESS=1", name));
    assert_eq!(
        actual.trim_end_matches('\n'),
        expected.trim_end_matches('\n'),
        "{name} drifted from its golden file; if the format change is \
         intentional, regenerate with CC_BLESS=1"
    );
}

fn fixture_report() -> cc_lint::LintReport {
    let src = include_str!("fixtures/bad_layouts.rs");
    analyze_sources(
        &[("fixtures/bad_layouts.rs".to_string(), src.to_string())],
        &HotSpec::empty(),
        &LintConfig::default(),
    )
}

#[test]
fn fixture_json_matches_golden() {
    check("report.json", &fixture_report().to_json());
}

#[test]
fn fixture_text_matches_golden() {
    check("report.txt", &fixture_report().to_text());
}

/// Acceptance: PAD-01 fires on the fixture with a reorder suggestion
/// whose modeled padding is strictly smaller than declaration order.
#[test]
fn pad_01_reorder_strictly_shrinks_padding() {
    let report = fixture_report();
    let pad = report
        .findings
        .iter()
        .find(|f| f.rule == LintRule::Pad01 && f.strukt == "Interleaved")
        .expect("PAD-01 fires on Interleaved");
    let s = report
        .structs
        .iter()
        .find(|s| s.name == "Interleaved")
        .unwrap();
    assert!(
        s.optimal_padding < s.padding,
        "reorder padding {} must be strictly below declared {}",
        s.optimal_padding,
        s.padding
    );
    assert_eq!(s.size, 48);
    assert_eq!(s.optimal_size, 32);
    assert!(pad.suggestion.contains("reorder fields as"));
}

/// Acceptance: SPAN-01 fires on the fixture's hot straddler at a
/// concrete array element index.
#[test]
fn span_01_fires_on_hot_straddler() {
    let report = fixture_report();
    let span = report
        .findings
        .iter()
        .find(|f| f.rule == LintRule::Span01 && f.strukt == "Straddler")
        .expect("SPAN-01 fires on Straddler");
    assert_eq!(span.fields, vec!["stamp".to_string()]);
    assert!(span.message.contains("array element"), "{}", span.message);
}

#[test]
fn hot_01_and_soa_01_fire_on_fixtures() {
    let report = fixture_report();
    assert!(report
        .findings
        .iter()
        .any(|f| f.rule == LintRule::Hot01 && f.strukt == "SplitHot"));
    assert!(report
        .findings
        .iter()
        .any(|f| f.rule == LintRule::Soa01 && f.strukt == "Particle"));
}
