//! Pins the `cc-lint` CLI exit-code convention — the same one `cc-audit`
//! uses: 0 = clean (or fully baselined), 1 = new findings, 2 = input
//! error. The parser is total, so no *source* input can produce exit 2;
//! only a broken invocation can.

use std::path::PathBuf;
use std::process::Command;

fn run(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_cc-lint"))
        .args(args)
        .output()
        .expect("cc-lint runs")
}

/// A scratch directory unique to this test process.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cc-lint-cli-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

#[test]
fn clean_source_exits_zero() {
    let dir = scratch("clean");
    std::fs::write(
        dir.join("good.rs"),
        "#[repr(C)] pub struct Good { a: u64, b: u32, c: u32 }\n",
    )
    .unwrap();
    let out = run(&[dir.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
}

#[test]
fn findings_exit_one() {
    let dir = scratch("findings");
    std::fs::write(
        dir.join("bad.rs"),
        "pub struct Bad { a: u8, b: u64, c: u8, d: u64, e: u8, f: u64 }\n",
    )
    .unwrap();
    let out = run(&[dir.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("PAD-01"), "{stdout}");
}

#[test]
fn baselined_findings_exit_zero() {
    let dir = scratch("baselined");
    let src = dir.join("bad.rs");
    std::fs::write(
        &src,
        "pub struct Bad { a: u8, b: u64, c: u8, d: u64, e: u8, f: u64 }\n",
    )
    .unwrap();
    let baseline = dir.join("baseline.txt");
    // First run writes the baseline (and still exits 1: findings are new).
    let out = run(&[
        "--write-baseline",
        baseline.to_str().unwrap(),
        src.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    // Second run against the blessed baseline is clean.
    let out = run(&[
        "--baseline",
        baseline.to_str().unwrap(),
        src.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("waived"), "{stdout}");
}

#[test]
fn missing_path_exits_two() {
    let out = run(&["/no/such/path/anywhere"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}

#[test]
fn invalid_hot_json_exits_two() {
    let dir = scratch("badhot");
    std::fs::write(dir.join("ok.rs"), "pub struct S { a: u64 }\n").unwrap();
    let hot = dir.join("weights.json");
    std::fs::write(&hot, "{\"S.a\": }").unwrap();
    let out = run(&["--hot", hot.to_str().unwrap(), dir.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("invalid hotness JSON"), "{stderr}");
}

#[test]
fn unreadable_baseline_exits_two() {
    let dir = scratch("nobase");
    std::fs::write(dir.join("ok.rs"), "pub struct S { a: u64 }\n").unwrap();
    let out = run(&["--baseline", "/no/such/baseline", dir.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}

#[test]
fn usage_error_exits_two() {
    let out = run(&["--no-such-flag"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let out = run(&[]);
    assert_eq!(
        out.status.code(),
        Some(2),
        "no input paths is an input error"
    );
}

#[test]
fn garbage_source_is_not_an_input_error() {
    // The parser is total: unparseable Rust degrades to skipped structs,
    // never exit 2.
    let dir = scratch("garbage");
    std::fs::write(
        dir.join("soup.rs"),
        "struct { { ] 0xFFZZ 'a \"unterminated... #[repr(C)] fn ]]]",
    )
    .unwrap();
    let out = run(&[dir.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
}
