//! Lint findings and the deterministic report renderings.
//!
//! Mirrors `cc-audit`'s report contract: canonical ordering, fixed JSON
//! key order, fixed-precision floats — the JSON is byte-stable and pinned
//! by golden-file tests (`tests/golden.rs`, `CC_BLESS=1` to regenerate).

use crate::modeled::{Analysis, ModeledStruct};
use std::fmt;

/// The static rule catalog.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LintRule {
    /// Avoidable padding waste above the threshold.
    Pad01,
    /// A field straddling a cache-line boundary.
    Span01,
    /// Declared-hot fields split across lines by cold ones.
    Hot01,
    /// AoS array whose per-element hot bytes fit a line after splitting.
    Soa01,
}

impl LintRule {
    /// Every rule, in report order.
    pub const ALL: [LintRule; 4] = [
        LintRule::Pad01,
        LintRule::Span01,
        LintRule::Hot01,
        LintRule::Soa01,
    ];

    /// Stable diagnostic id.
    pub fn id(&self) -> &'static str {
        match self {
            LintRule::Pad01 => "PAD-01",
            LintRule::Span01 => "SPAN-01",
            LintRule::Hot01 => "HOT-01",
            LintRule::Soa01 => "SOA-01",
        }
    }

    /// Severity name, aligned with `cc-audit`'s scale.
    pub fn severity(&self) -> &'static str {
        match self {
            LintRule::Hot01 => "error",
            LintRule::Pad01 | LintRule::Span01 => "warning",
            LintRule::Soa01 => "info",
        }
    }
}

impl fmt::Display for LintRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One static finding.
#[derive(Clone, Debug, PartialEq)]
// Field order is the analyzer's own PAD-01 suggestion for itself;
// repr(C) pins it, the offset test in this file holds it.
#[repr(C)]
pub struct LintFinding {
    /// Offending struct.
    pub strukt: String,
    /// Source file label.
    pub file: String,
    /// Offending fields (empty = whole struct).
    pub fields: Vec<String>,
    /// What happened, evidence inline.
    pub message: String,
    /// Concrete suggested reorder/split.
    pub suggestion: String,
    /// Unit of the before/after metric.
    pub unit: &'static str,
    /// Measured heat joined from a hotness input.
    pub weight: Option<f64>,
    /// Predicted metric under the current layout.
    pub before: f64,
    /// Predicted metric under the suggestion.
    pub after: f64,
    /// 1-based definition line.
    pub line: u32,
    /// Which rule fired.
    pub rule: LintRule,
    /// Present in the baseline file (does not affect the exit code).
    pub waived: bool,
}

impl LintFinding {
    /// Stable baseline key: `RULE file::Struct[.field]`.
    pub fn key(&self) -> String {
        match (self.rule, self.fields.first()) {
            (LintRule::Span01, Some(field)) => {
                format!(
                    "{} {}::{}.{}",
                    self.rule.id(),
                    self.file,
                    self.strukt,
                    field
                )
            }
            _ => format!("{} {}::{}", self.rule.id(), self.file, self.strukt),
        }
    }
}

/// Aggregate numbers, reported even when clean.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LintStats {
    /// Files analysed.
    pub files: usize,
    /// Structs fully modeled.
    pub structs_modeled: usize,
    /// Structs skipped (generics, opaque fields).
    pub structs_skipped: usize,
    /// Structs whose `repr(C)` layout is a compiler guarantee end-to-end.
    pub structs_exact: usize,
    /// Enums seen.
    pub enums: usize,
    /// Total padding bytes under the declaration-order model.
    pub decl_padding: u64,
    /// Total padding bytes under the optimal-reorder model.
    pub optimal_padding: u64,
    /// Findings waived by the baseline.
    pub waived: usize,
}

/// The lint's outcome.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LintReport {
    /// Findings, canonically ordered.
    pub findings: Vec<LintFinding>,
    /// Aggregate statistics.
    pub stats: LintStats,
    /// Per-struct layout summaries (the model, for the artifact).
    pub structs: Vec<StructSummary>,
}

/// Serializable layout summary of one modeled struct.
#[derive(Clone, Debug, PartialEq)]
pub struct StructSummary {
    /// Type name.
    pub name: String,
    /// Source file label.
    pub file: String,
    /// Repr rendering (`"C"` / `"Rust"`, with packed/align suffixes).
    pub repr: String,
    /// Modeled size.
    pub size: u64,
    /// Modeled alignment.
    pub align: u64,
    /// Total padding (declaration order).
    pub padding: u64,
    /// Size after optimal reorder.
    pub optimal_size: u64,
    /// Padding after optimal reorder.
    pub optimal_padding: u64,
    /// Layout is a compiler guarantee.
    pub exact: bool,
    /// Fields: (name, offset, size, align, hot), declaration order.
    pub fields: Vec<(String, u64, u64, u64, bool)>,
}

impl StructSummary {
    fn of(m: &ModeledStruct) -> Self {
        let mut repr = if m.repr_c {
            "C".to_string()
        } else {
            "Rust".to_string()
        };
        if let Some(p) = m.packed {
            repr.push_str(&format!(",packed({p})"));
        }
        if let Some(a) = m.align_attr {
            repr.push_str(&format!(",align({a})"));
        }
        let mut fields: Vec<_> = m
            .decl
            .fields
            .iter()
            .map(|f| (f.name.clone(), f.offset, f.size, f.align, f.hot))
            .collect();
        fields.sort_by_key(|f| f.1);
        StructSummary {
            name: m.name.clone(),
            file: m.file.clone(),
            repr,
            size: m.decl.size,
            align: m.decl.align,
            padding: m.decl.padding,
            optimal_size: m.opt.size,
            optimal_padding: m.opt.padding,
            exact: m.exact,
            fields,
        }
    }
}

impl LintReport {
    /// Builds the report from an analysis and its findings.
    pub fn build(analysis: &Analysis, mut findings: Vec<LintFinding>) -> Self {
        findings.sort_by(|a, b| {
            (&a.file, &a.strukt, a.rule, &a.fields).cmp(&(&b.file, &b.strukt, b.rule, &b.fields))
        });
        let stats = LintStats {
            files: analysis.files,
            structs_modeled: analysis.modeled.len(),
            structs_skipped: analysis.skipped.len(),
            structs_exact: analysis.modeled.iter().filter(|m| m.exact).count(),
            enums: analysis.enums,
            decl_padding: analysis.modeled.iter().map(|m| m.decl.padding).sum(),
            optimal_padding: analysis.modeled.iter().map(|m| m.opt.padding).sum(),
            waived: 0,
        };
        LintReport {
            findings,
            stats,
            structs: analysis.modeled.iter().map(StructSummary::of).collect(),
        }
    }

    /// Marks findings present in the baseline as waived.
    pub fn apply_baseline(&mut self, waivers: &std::collections::BTreeSet<String>) {
        for f in &mut self.findings {
            f.waived = waivers.contains(&f.key());
        }
        self.stats.waived = self.findings.iter().filter(|f| f.waived).count();
    }

    /// Findings not covered by the baseline (the exit-code signal).
    pub fn new_findings(&self) -> usize {
        self.findings.iter().filter(|f| !f.waived).count()
    }

    /// Whether nothing fired at all (waived or not).
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Human-readable rendering.
    pub fn to_text(&self) -> String {
        let s = &self.stats;
        let mut out = String::new();
        out.push_str(&format!(
            "cc-lint: {} file(s), {} struct(s) modeled ({} exact repr(C), {} skipped), {} enum(s)\n",
            s.files, s.structs_modeled, s.structs_exact, s.structs_skipped, s.enums
        ));
        out.push_str(&format!(
            "padding: {} byte(s) declared, {} after optimal reorder\n",
            s.decl_padding, s.optimal_padding
        ));
        if self.is_clean() {
            out.push_str("clean: no layout findings\n");
            return out;
        }
        for f in &self.findings {
            out.push_str(&format!(
                "{}{} [{}] {}::{} {}\n",
                if f.waived { "waived " } else { "" },
                f.rule.severity(),
                f.rule,
                f.file,
                f.strukt,
                f.message
            ));
            out.push_str(&format!(
                "  predicted: {} -> {} {}\n",
                fmt_f64(f.before),
                fmt_f64(f.after),
                f.unit
            ));
            out.push_str(&format!("  fix: {}\n", f.suggestion));
        }
        out.push_str(&format!(
            "{} finding(s), {} waived, {} new\n",
            self.findings.len(),
            self.stats.waived,
            self.new_findings()
        ));
        out
    }

    /// Stable machine-readable rendering: fixed key order, fixed float
    /// precision, canonical finding order.
    pub fn to_json(&self) -> String {
        let s = &self.stats;
        let mut out = String::from("{\n");
        out.push_str(&format!(
            "  \"clean\": {},\n  \"new_findings\": {},\n",
            self.is_clean(),
            self.new_findings()
        ));
        out.push_str("  \"stats\": {\n");
        out.push_str(&format!("    \"files\": {},\n", s.files));
        out.push_str(&format!(
            "    \"structs_modeled\": {},\n",
            s.structs_modeled
        ));
        out.push_str(&format!(
            "    \"structs_skipped\": {},\n",
            s.structs_skipped
        ));
        out.push_str(&format!("    \"structs_exact\": {},\n", s.structs_exact));
        out.push_str(&format!("    \"enums\": {},\n", s.enums));
        out.push_str(&format!("    \"decl_padding\": {},\n", s.decl_padding));
        out.push_str(&format!(
            "    \"optimal_padding\": {},\n",
            s.optimal_padding
        ));
        out.push_str(&format!("    \"waived\": {}\n", s.waived));
        out.push_str("  },\n");
        out.push_str("  \"structs\": [");
        for (i, st) in self.structs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\n");
            out.push_str(&format!("      \"name\": \"{}\",\n", escape_json(&st.name)));
            out.push_str(&format!("      \"file\": \"{}\",\n", escape_json(&st.file)));
            out.push_str(&format!("      \"repr\": \"{}\",\n", st.repr));
            out.push_str(&format!("      \"size\": {},\n", st.size));
            out.push_str(&format!("      \"align\": {},\n", st.align));
            out.push_str(&format!("      \"padding\": {},\n", st.padding));
            out.push_str(&format!("      \"optimal_size\": {},\n", st.optimal_size));
            out.push_str(&format!(
                "      \"optimal_padding\": {},\n",
                st.optimal_padding
            ));
            out.push_str(&format!("      \"exact\": {},\n", st.exact));
            out.push_str("      \"fields\": [");
            for (j, (name, off, size, align, hot)) in st.fields.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "\n        {{\"name\": \"{}\", \"offset\": {}, \"size\": {}, \
                     \"align\": {}, \"hot\": {}}}",
                    escape_json(name),
                    off,
                    size,
                    align,
                    hot
                ));
            }
            if !st.fields.is_empty() {
                out.push_str("\n      ");
            }
            out.push_str("]\n    }");
        }
        if !self.structs.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n");
        out.push_str("  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\n");
            out.push_str(&format!("      \"rule\": \"{}\",\n", f.rule.id()));
            out.push_str(&format!("      \"severity\": \"{}\",\n", f.rule.severity()));
            out.push_str(&format!(
                "      \"struct\": \"{}\",\n",
                escape_json(&f.strukt)
            ));
            out.push_str(&format!("      \"file\": \"{}\",\n", escape_json(&f.file)));
            out.push_str(&format!("      \"line\": {},\n", f.line));
            let fields: Vec<String> = f
                .fields
                .iter()
                .map(|x| format!("\"{}\"", escape_json(x)))
                .collect();
            out.push_str(&format!("      \"fields\": [{}],\n", fields.join(", ")));
            out.push_str(&format!(
                "      \"message\": \"{}\",\n",
                escape_json(&f.message)
            ));
            out.push_str(&format!(
                "      \"suggestion\": \"{}\",\n",
                escape_json(&f.suggestion)
            ));
            out.push_str(&format!("      \"unit\": \"{}\",\n", f.unit));
            out.push_str(&format!("      \"before\": {},\n", fmt_f64(f.before)));
            out.push_str(&format!("      \"after\": {},\n", fmt_f64(f.after)));
            out.push_str(&format!(
                "      \"weight\": {},\n",
                f.weight.map_or("null".to_string(), fmt_f64)
            ));
            out.push_str(&format!("      \"waived\": {}\n", f.waived));
            out.push_str("    }");
        }
        if !self.findings.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

/// Fixed-precision float formatting (same convention as `cc-audit`).
fn fmt_f64(x: f64) -> String {
    format!("{x:.4}")
}

/// Minimal JSON string escaping.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod layout_tests {
    use super::*;

    // Compiler-backed pin of the repr(C) reorder (PAD-01 burn-down):
    // the five 24-byte string/vec headers lead, the f64/Option block
    // follows, and line/rule/waived pack the tail.
    #[test]
    fn lint_finding_offsets_are_pinned() {
        use core::mem::{offset_of, size_of};
        assert_eq!(offset_of!(LintFinding, strukt), 0);
        assert_eq!(offset_of!(LintFinding, file), 24);
        assert_eq!(offset_of!(LintFinding, fields), 48);
        assert_eq!(offset_of!(LintFinding, message), 72);
        assert_eq!(offset_of!(LintFinding, suggestion), 96);
        assert_eq!(offset_of!(LintFinding, unit), 120);
        assert_eq!(offset_of!(LintFinding, weight), 136);
        assert_eq!(offset_of!(LintFinding, before), 152);
        assert_eq!(offset_of!(LintFinding, after), 160);
        assert_eq!(offset_of!(LintFinding, line), 168);
        assert_eq!(offset_of!(LintFinding, rule), 172);
        assert_eq!(offset_of!(LintFinding, waived), 173);
        assert_eq!(size_of::<LintFinding>(), 176);
    }
}
