//! A total lexer + parser for the `struct`/`enum` subset the lint models.
//!
//! This is deliberately **not** a Rust parser. It is a scavenger: it
//! tokenizes arbitrary text without ever panicking, scans for `struct` and
//! `enum` items at any nesting depth, and extracts exactly the facts the
//! offset model needs — names, `#[repr(..)]` attributes, field names and
//! types, fieldless-enum discriminants, and `cc-hot` comment annotations.
//! Anything it cannot understand degrades to [`Ty::Opaque`] or a skipped
//! item with a reason; it never fails the whole file. Totality (no panic,
//! no unbounded recursion on any byte sequence) is pinned by the token-soup
//! proptests in `tests/proptests.rs`.

use std::fmt;

/// Recursion ceiling for nested types (`Vec<Vec<...>>`); beyond this the
/// type degrades to [`Ty::Opaque`] instead of risking the stack.
const MAX_TYPE_DEPTH: u32 = 32;

// ---------------------------------------------------------------------------
// Tokens
// ---------------------------------------------------------------------------

/// One lexed token.
#[derive(Clone, Debug, PartialEq)]
pub(crate) struct Token {
    pub kind: Tok,
    /// 1-based source line.
    pub line: u32,
    /// A leading `cc-hot` comment (on its own line) directly precedes
    /// this token.
    pub lead_hot: bool,
}

/// Token kinds; everything the grammar does not care about is a `Punct`.
#[derive(Clone, Debug, PartialEq)]
pub(crate) enum Tok {
    Ident(String),
    Lifetime,
    /// Integer literal; `None` when it does not fit `u64` (or is a float).
    Num(Option<u64>),
    Punct(char),
}

/// Lexer output: tokens plus the lines carrying a *trailing* `cc-hot`
/// comment (code before the comment on the same line).
pub(crate) struct LexOut {
    pub tokens: Vec<Token>,
    pub trailing_hot_lines: Vec<u32>,
}

/// The annotation comment that marks a field hot. Matched as a substring
/// of any comment, so `// cc-hot`, `/* cc-hot */` and `/// cc-hot: why`
/// all work.
pub const HOT_MARKER: &str = "cc-hot";

pub(crate) fn lex(src: &str) -> LexOut {
    let bytes = src.as_bytes();
    let mut tokens = Vec::new();
    let mut trailing_hot_lines = Vec::new();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let mut line_has_code = false;
    let mut pending_lead_hot = false;

    macro_rules! push {
        ($kind:expr) => {{
            tokens.push(Token {
                kind: $kind,
                line,
                lead_hot: std::mem::take(&mut pending_lead_hot),
            });
            line_has_code = true;
        }};
    }

    // Advances past a run of identifier-continue chars starting at byte
    // `at` (which must be a char boundary), returning the next boundary.
    // Byte-wise scans would step into the middle of multi-byte chars:
    // many UTF-8 continuation bytes read as Latin-1 alphanumerics.
    fn ident_run(src: &str, mut at: usize) -> usize {
        for ch in src[at..].chars() {
            if ch.is_alphanumeric() || ch == '_' {
                at += ch.len_utf8();
            } else {
                break;
            }
        }
        at
    }

    while i < bytes.len() {
        let c = src[i..].chars().next().expect("i is on a char boundary");
        if c == '\n' {
            line = line.saturating_add(1);
            line_has_code = false;
            i += 1;
            continue;
        }
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // Line comment.
        if c == '/' && bytes.get(i + 1) == Some(&b'/') {
            let start = i;
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            if src[start..i].contains(HOT_MARKER) {
                if line_has_code {
                    trailing_hot_lines.push(line);
                } else {
                    pending_lead_hot = true;
                }
            }
            continue;
        }
        // Block comment (nested).
        if c == '/' && bytes.get(i + 1) == Some(&b'*') {
            let start = i;
            let start_line_has_code = line_has_code;
            let start_line = line;
            let mut depth = 1u32;
            i += 2;
            while i < bytes.len() && depth > 0 {
                if bytes[i] == b'\n' {
                    line = line.saturating_add(1);
                    line_has_code = false;
                    i += 1;
                } else if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    depth += 1;
                    i += 2;
                } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            if src[start..i].contains(HOT_MARKER) {
                if start_line_has_code {
                    trailing_hot_lines.push(start_line);
                } else {
                    pending_lead_hot = true;
                }
            }
            continue;
        }
        // String literal.
        if c == '"' {
            i += 1;
            while i < bytes.len() {
                match bytes[i] {
                    b'\\' => i += 2,
                    b'"' => {
                        i += 1;
                        break;
                    }
                    b'\n' => {
                        line = line.saturating_add(1);
                        i += 1;
                    }
                    _ => i += 1,
                }
            }
            line_has_code = true;
            continue;
        }
        // Lifetime or char literal.
        if c == '\'' {
            let next = bytes.get(i + 1).copied();
            match next {
                Some(n) if n.is_ascii_alphabetic() || n == b'_' => {
                    // Ident chars follow; a closing quote right after the
                    // run means char literal ('a'), otherwise lifetime.
                    let j = ident_run(src, i + 1);
                    if bytes.get(j) == Some(&b'\'') {
                        i = j + 1; // char literal, consumed
                        line_has_code = true;
                    } else {
                        push!(Tok::Lifetime);
                        i = j;
                    }
                }
                Some(b'\\') => {
                    // Escaped char literal: skip escape then scan to quote.
                    i += 2;
                    while i < bytes.len() && bytes[i] != b'\'' {
                        i += 1;
                    }
                    i = (i + 1).min(bytes.len());
                    line_has_code = true;
                }
                Some(_) => {
                    // Plain char literal like '+' (or stray quote at EOF).
                    if bytes.get(i + 2) == Some(&b'\'') {
                        i += 3;
                    } else {
                        i += 1;
                    }
                    line_has_code = true;
                }
                None => {
                    i += 1;
                }
            }
            continue;
        }
        // Number.
        if c.is_ascii_digit() {
            let start = i;
            let mut is_int = true;
            if c == '0' && matches!(bytes.get(i + 1), Some(b'x') | Some(b'X')) {
                i += 2;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_hexdigit() || bytes[i] == b'_')
                {
                    i += 1;
                }
                let digits: String = src[start + 2..i].chars().filter(|&d| d != '_').collect();
                push!(Tok::Num(u64::from_str_radix(&digits, 16).ok()));
                // Swallow a type suffix (u64, usize, ...).
                i = ident_run(src, i);
                continue;
            }
            while i < bytes.len() && ((bytes[i] as char).is_ascii_digit() || bytes[i] == b'_') {
                i += 1;
            }
            // Float part: `1.5` but not `1.method()` or `1..2`.
            if bytes.get(i) == Some(&b'.')
                && bytes
                    .get(i + 1)
                    .is_some_and(|d| (*d as char).is_ascii_digit())
            {
                is_int = false;
                i += 1;
                while i < bytes.len() && ((bytes[i] as char).is_ascii_digit() || bytes[i] == b'_') {
                    i += 1;
                }
            }
            let digits: String = src[start..i].chars().filter(|&d| d != '_').collect();
            let val = if is_int { digits.parse().ok() } else { None };
            push!(Tok::Num(val));
            // Swallow a type suffix.
            i = ident_run(src, i);
            continue;
        }
        // Identifier / keyword / raw string / raw ident.
        if c.is_alphabetic() || c == '_' {
            let start = i;
            i = ident_run(src, i);
            let word = &src[start..i];
            // Raw string r"..." / r#"..."# / byte strings b"..", br#"..#.
            if matches!(word, "r" | "b" | "br") && matches!(bytes.get(i), Some(b'"') | Some(b'#')) {
                let mut hashes = 0usize;
                while bytes.get(i) == Some(&b'#') {
                    hashes += 1;
                    i += 1;
                }
                if bytes.get(i) == Some(&b'"') {
                    i += 1;
                    'raw: while i < bytes.len() {
                        if bytes[i] == b'\n' {
                            line = line.saturating_add(1);
                        } else if bytes[i] == b'"' {
                            let mut j = i + 1;
                            let mut h = 0usize;
                            while h < hashes && bytes.get(j) == Some(&b'#') {
                                h += 1;
                                j += 1;
                            }
                            if h == hashes {
                                i = j;
                                break 'raw;
                            }
                        }
                        i += 1;
                    }
                    line_has_code = true;
                    continue;
                }
                // `r#ident`: fall through, lex the ident after the hash.
                if word == "r" && hashes == 1 {
                    let istart = i;
                    i = ident_run(src, i);
                    push!(Tok::Ident(src[istart..i].to_string()));
                    continue;
                }
            }
            push!(Tok::Ident(word.to_string()));
            continue;
        }
        // Everything else: one punctuation char.
        push!(Tok::Punct(c));
        i += c.len_utf8();
    }

    LexOut {
        tokens,
        trailing_hot_lines,
    }
}

// ---------------------------------------------------------------------------
// Syntax model
// ---------------------------------------------------------------------------

/// A parsed type, reduced to what the size model distinguishes.
#[derive(Clone, Debug, PartialEq)]
pub enum Ty {
    /// Path type: last segment plus its generic type arguments
    /// (`std::vec::Vec<u64>` parses as `Path { last: "Vec", args: [u64] }`).
    Path {
        /// Last path segment.
        last: String,
        /// Generic type arguments (lifetimes and const args dropped).
        args: Vec<Ty>,
    },
    /// `&T` / `&mut T`.
    Ref(Box<Ty>),
    /// `*const T` / `*mut T`.
    Ptr(Box<Ty>),
    /// `[T; N]`; the length is `None` when it is not a literal.
    Array(Box<Ty>, Option<u64>),
    /// `[T]` (unsized; only meaningful behind a pointer).
    Slice(Box<Ty>),
    /// Tuple; `()` is the empty tuple.
    Tuple(Vec<Ty>),
    /// `dyn Trait` (unsized).
    Dyn,
    /// `fn(..) -> _` pointer.
    FnPtr,
    /// `!`.
    Never,
    /// Anything the parser could not understand.
    Opaque,
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ty::Path { last, args } => {
                f.write_str(last)?;
                if !args.is_empty() {
                    write!(f, "<")?;
                    for (i, a) in args.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{a}")?;
                    }
                    write!(f, ">")?;
                }
                Ok(())
            }
            Ty::Ref(t) => write!(f, "&{t}"),
            Ty::Ptr(t) => write!(f, "*const {t}"),
            Ty::Array(t, Some(n)) => write!(f, "[{t}; {n}]"),
            Ty::Array(t, None) => write!(f, "[{t}; ?]"),
            Ty::Slice(t) => write!(f, "[{t}]"),
            Ty::Tuple(ts) => {
                write!(f, "(")?;
                for (i, t) in ts.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{t}")?;
                }
                write!(f, ")")
            }
            Ty::Dyn => f.write_str("dyn _"),
            Ty::FnPtr => f.write_str("fn(..)"),
            Ty::Never => f.write_str("!"),
            Ty::Opaque => f.write_str("?"),
        }
    }
}

/// `#[repr(..)]` facts attached to an item.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReprAttr {
    /// `repr(C)`.
    pub c: bool,
    /// `repr(transparent)`.
    pub transparent: bool,
    /// `repr(packed)` / `repr(packed(N))` cap on field alignment.
    pub packed: Option<u64>,
    /// `repr(align(N))` floor on struct alignment.
    pub align: Option<u64>,
    /// Integer repr on enums (`repr(u8)`, ...): (size, align).
    pub int: Option<(u64, u64)>,
}

/// One struct field.
#[derive(Clone, Debug, PartialEq)]
pub struct FieldDef {
    /// Field name (tuple fields are `"0"`, `"1"`, ...).
    pub name: String,
    /// Parsed type.
    pub ty: Ty,
    /// Marked hot by a `cc-hot` comment annotation.
    pub hot: bool,
}

/// A parsed struct definition.
#[derive(Clone, Debug, PartialEq)]
// Field order is the analyzer's own PAD-01 suggestion for itself;
// repr(C) pins it, the offset test in this file holds it.
#[repr(C)]
pub struct StructDef {
    /// Repr attributes.
    pub repr: ReprAttr,
    /// Type name.
    pub name: String,
    /// Source file label (as given to the parser).
    pub file: String,
    /// Fields in declaration order.
    pub fields: Vec<FieldDef>,
    /// 1-based line of the `struct` keyword.
    pub line: u32,
    /// The item has non-lifetime generic parameters (not modelable).
    pub generic: bool,
}

/// A parsed enum definition (modeled for size only, as a field type).
#[derive(Clone, Debug, PartialEq)]
// Same discipline as `StructDef`: the PAD-01-clean order, pinned.
#[repr(C)]
pub struct EnumDef {
    /// Repr attributes.
    pub repr: ReprAttr,
    /// Type name.
    pub name: String,
    /// Source file label.
    pub file: String,
    /// Number of variants.
    pub variants: usize,
    /// Largest literal discriminant seen (fieldless enums).
    pub max_discriminant: u64,
    /// 1-based line of the `enum` keyword.
    pub line: u32,
    /// Any variant carries data (tuple or struct payload).
    pub has_payload: bool,
    /// A discriminant was present but not a plain literal (pessimize).
    pub opaque_discriminant: bool,
    /// The item has non-lifetime generic parameters.
    pub generic: bool,
}

/// Everything extracted from one source file.
#[derive(Clone, Debug, Default)]
pub struct ParsedFile {
    /// Struct definitions, in source order.
    pub structs: Vec<StructDef>,
    /// Enum definitions, in source order.
    pub enums: Vec<EnumDef>,
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    toks: &'a [Token],
    trailing_hot: &'a [u32],
    file: &'a str,
}

/// Parses one source file. Total: any input yields a (possibly empty)
/// [`ParsedFile`]; malformed items are skipped, malformed types degrade to
/// [`Ty::Opaque`].
pub fn parse_source(file: &str, src: &str) -> ParsedFile {
    let lexed = lex(src);
    let p = Parser {
        toks: &lexed.tokens,
        trailing_hot: &lexed.trailing_hot_lines,
        file,
    };
    p.run()
}

impl<'a> Parser<'a> {
    fn run(&self) -> ParsedFile {
        let mut out = ParsedFile::default();
        let mut repr = ReprAttr::default();
        let mut i = 0usize;
        while i < self.toks.len() {
            match &self.toks[i].kind {
                Tok::Punct('#') if self.peek_punct(i + 1, '[') => {
                    let end = self.skip_balanced(i + 1, '[', ']');
                    self.scan_repr(i + 2, end.saturating_sub(1), &mut repr);
                    i = end;
                }
                Tok::Ident(w) if w == "struct" => {
                    if let Some((def, next)) = self.parse_struct(i, repr) {
                        out.structs.push(def);
                        i = next;
                    } else {
                        i += 1;
                    }
                    repr = ReprAttr::default();
                }
                Tok::Ident(w) if w == "enum" => {
                    if let Some((def, next)) = self.parse_enum(i, repr) {
                        out.enums.push(def);
                        i = next;
                    } else {
                        i += 1;
                    }
                    repr = ReprAttr::default();
                }
                // Tokens that may sit between an attribute and its item.
                Tok::Ident(w)
                    if matches!(w.as_str(), "pub" | "crate" | "super" | "self" | "in") =>
                {
                    i += 1;
                }
                Tok::Punct('(') | Tok::Punct(')') => i += 1,
                _ => {
                    repr = ReprAttr::default();
                    i += 1;
                }
            }
        }
        out
    }

    // -- token utilities ---------------------------------------------------

    fn peek_punct(&self, i: usize, c: char) -> bool {
        matches!(self.toks.get(i), Some(t) if t.kind == Tok::Punct(c))
    }

    fn peek_ident(&self, i: usize) -> Option<&'a str> {
        match self.toks.get(i) {
            Some(Token {
                kind: Tok::Ident(w),
                ..
            }) => Some(w.as_str()),
            _ => None,
        }
    }

    /// Given `i` at an opening delimiter, returns the index just past its
    /// match (or the end of input).
    fn skip_balanced(&self, mut i: usize, open: char, close: char) -> usize {
        debug_assert!(self.peek_punct(i, open));
        let mut depth = 0i64;
        while i < self.toks.len() {
            match self.toks[i].kind {
                Tok::Punct(c) if c == open => depth += 1,
                Tok::Punct(c) if c == close => {
                    depth -= 1;
                    if depth <= 0 {
                        return i + 1;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        i
    }

    /// Scans an attribute body for `repr(..)` facts.
    fn scan_repr(&self, start: usize, end: usize, repr: &mut ReprAttr) {
        if self.peek_ident(start) != Some("repr") {
            return;
        }
        let mut i = start + 1;
        while i < end {
            if let Tok::Ident(w) = &self.toks[i].kind {
                match w.as_str() {
                    "C" => repr.c = true,
                    "transparent" => repr.transparent = true,
                    "packed" => {
                        if self.peek_punct(i + 1, '(') {
                            if let Some(Token {
                                kind: Tok::Num(Some(n)),
                                ..
                            }) = self.toks.get(i + 2)
                            {
                                repr.packed = Some((*n).max(1));
                            } else {
                                repr.packed = Some(1);
                            }
                        } else {
                            repr.packed = Some(1);
                        }
                    }
                    "align" => {
                        if let (
                            true,
                            Some(Token {
                                kind: Tok::Num(Some(n)),
                                ..
                            }),
                        ) = (self.peek_punct(i + 1, '('), self.toks.get(i + 2))
                        {
                            repr.align = Some((*n).max(1));
                        }
                    }
                    "u8" | "i8" => repr.int = Some((1, 1)),
                    "u16" | "i16" => repr.int = Some((2, 2)),
                    "u32" | "i32" => repr.int = Some((4, 4)),
                    "u64" | "i64" | "usize" | "isize" => repr.int = Some((8, 8)),
                    "u128" | "i128" => repr.int = Some((16, 16)),
                    _ => {}
                }
            }
            i += 1;
        }
    }

    /// Skips generics after a name; returns (next index, has non-lifetime
    /// params).
    fn skip_generics(&self, mut i: usize) -> (usize, bool) {
        if !self.peek_punct(i, '<') {
            return (i, false);
        }
        let mut depth = 0i64;
        let mut generic = false;
        let mut at_param_start = false;
        while i < self.toks.len() {
            match &self.toks[i].kind {
                Tok::Punct('<') => {
                    depth += 1;
                    at_param_start = depth == 1;
                }
                Tok::Punct('>') => {
                    depth -= 1;
                    if depth <= 0 {
                        return (i + 1, generic);
                    }
                }
                Tok::Punct(',') if depth == 1 => at_param_start = true,
                Tok::Lifetime => at_param_start = false,
                _ => {
                    if at_param_start && depth == 1 {
                        generic = true;
                    }
                    at_param_start = false;
                }
            }
            i += 1;
        }
        (i, generic)
    }

    /// Skips a `where` clause: everything up to the next top-level `{`,
    /// `(` or `;`.
    fn skip_where(&self, mut i: usize) -> usize {
        if self.peek_ident(i) != Some("where") {
            return i;
        }
        let mut angle = 0i64;
        while i < self.toks.len() {
            match self.toks[i].kind {
                Tok::Punct('<') => angle += 1,
                Tok::Punct('>') => angle -= 1,
                Tok::Punct('{') | Tok::Punct(';') if angle <= 0 => return i,
                Tok::Punct('(') if angle <= 0 => return i,
                _ => {}
            }
            i += 1;
        }
        i
    }

    /// Whether the field whose name token is at `name_idx` and whose last
    /// token sits at `end_idx` is annotated hot.
    fn field_hot(&self, name_idx: usize, end_idx: usize) -> bool {
        if self.toks[name_idx].lead_hot {
            return true;
        }
        let lo = self.toks[name_idx].line;
        let hi = self
            .toks
            .get(end_idx.min(self.toks.len().saturating_sub(1)))
            .map_or(lo, |t| t.line);
        self.trailing_hot.iter().any(|&l| l >= lo && l <= hi)
    }

    // -- items -------------------------------------------------------------

    fn parse_struct(&self, kw: usize, repr: ReprAttr) -> Option<(StructDef, usize)> {
        let line = self.toks[kw].line;
        let name = self.peek_ident(kw + 1)?.to_string();
        if is_keyword(&name) {
            return None;
        }
        let (mut i, generic) = self.skip_generics(kw + 2);
        i = self.skip_where(i);
        let mut fields = Vec::new();
        if self.peek_punct(i, ';') {
            // Unit struct.
            i += 1;
        } else if self.peek_punct(i, '(') {
            // Tuple struct.
            let end = self.skip_balanced(i, '(', ')');
            let mut j = i + 1;
            let mut idx = 0usize;
            while j < end.saturating_sub(1) {
                j = self.skip_field_prefix(j);
                if j >= end.saturating_sub(1) {
                    break;
                }
                let name_idx = j;
                let (ty, next) = self.parse_ty(j, 0);
                let stop = self.seek_list_end(next.max(j + 1), end.saturating_sub(1), ',');
                fields.push(FieldDef {
                    name: idx.to_string(),
                    ty,
                    hot: self.field_hot(name_idx, stop.saturating_sub(1)),
                });
                idx += 1;
                j = if self.peek_punct(stop, ',') {
                    stop + 1
                } else {
                    stop
                };
            }
            i = end;
            // Trailing where-clause + semicolon.
            i = self.skip_where(i);
            if self.peek_punct(i, ';') {
                i += 1;
            }
        } else if self.peek_punct(i, '{') {
            let end = self.skip_balanced(i, '{', '}');
            let body_end = end.saturating_sub(1);
            let mut j = i + 1;
            while j < body_end {
                j = self.skip_field_prefix(j);
                if j >= body_end {
                    break;
                }
                let Some(fname) = self.peek_ident(j) else {
                    // Unparseable: resync at the next comma.
                    j = self.seek_list_end(j + 1, body_end, ',') + 1;
                    continue;
                };
                let fname = fname.to_string();
                let name_idx = j;
                if !self.peek_punct(j + 1, ':') {
                    j = self.seek_list_end(j + 1, body_end, ',') + 1;
                    continue;
                }
                let (ty, next) = self.parse_ty(j + 2, 0);
                let stop = self.seek_list_end(next.max(j + 2), body_end, ',');
                fields.push(FieldDef {
                    name: fname,
                    ty,
                    hot: self.field_hot(name_idx, stop.saturating_sub(1).max(name_idx)),
                });
                j = if self.peek_punct(stop, ',') {
                    stop + 1
                } else {
                    stop
                };
            }
            i = end;
        } else {
            return None;
        }
        Some((
            StructDef {
                name,
                file: self.file.to_string(),
                line,
                repr,
                fields,
                generic,
            },
            i,
        ))
    }

    fn parse_enum(&self, kw: usize, repr: ReprAttr) -> Option<(EnumDef, usize)> {
        let line = self.toks[kw].line;
        let name = self.peek_ident(kw + 1)?.to_string();
        if is_keyword(&name) {
            return None;
        }
        let (mut i, generic) = self.skip_generics(kw + 2);
        i = self.skip_where(i);
        if !self.peek_punct(i, '{') {
            return None;
        }
        let end = self.skip_balanced(i, '{', '}');
        let body_end = end.saturating_sub(1);
        let mut j = i + 1;
        let mut variants = 0usize;
        let mut has_payload = false;
        let mut max_discriminant = 0u64;
        let mut opaque_discriminant = false;
        while j < body_end {
            j = self.skip_field_prefix(j);
            if j >= body_end {
                break;
            }
            if self.peek_ident(j).is_none() {
                j = self.seek_list_end(j + 1, body_end, ',') + 1;
                continue;
            }
            variants += 1;
            j += 1;
            if self.peek_punct(j, '(') {
                has_payload = true;
                j = self.skip_balanced(j, '(', ')');
            } else if self.peek_punct(j, '{') {
                has_payload = true;
                j = self.skip_balanced(j, '{', '}');
            }
            if self.peek_punct(j, '=') {
                match self.toks.get(j + 1).map(|t| &t.kind) {
                    Some(Tok::Num(Some(n)))
                        if matches!(
                            self.toks.get(j + 2).map(|t| &t.kind),
                            Some(Tok::Punct(',')) | None
                        ) || j + 2 >= body_end =>
                    {
                        max_discriminant = max_discriminant.max(*n);
                        j += 2;
                    }
                    _ => {
                        opaque_discriminant = true;
                        j = self.seek_list_end(j + 1, body_end, ',');
                    }
                }
            }
            j = self.seek_list_end(j, body_end, ',');
            if self.peek_punct(j, ',') {
                j += 1;
            }
        }
        Some((
            EnumDef {
                name,
                file: self.file.to_string(),
                line,
                repr,
                variants,
                has_payload,
                max_discriminant,
                opaque_discriminant,
                generic,
            },
            end,
        ))
    }

    /// Skips attributes and visibility before a field or variant.
    fn skip_field_prefix(&self, mut i: usize) -> usize {
        loop {
            if self.peek_punct(i, '#') && self.peek_punct(i + 1, '[') {
                i = self.skip_balanced(i + 1, '[', ']');
            } else if self.peek_ident(i) == Some("pub") {
                i += 1;
                if self.peek_punct(i, '(') {
                    i = self.skip_balanced(i, '(', ')');
                }
            } else {
                return i;
            }
        }
    }

    /// Advances to the next `sep` at zero bracket depth, or to `end`.
    fn seek_list_end(&self, mut i: usize, end: usize, sep: char) -> usize {
        let mut angle = 0i64;
        let mut round = 0i64;
        let mut square = 0i64;
        let mut brace = 0i64;
        while i < end {
            match self.toks[i].kind {
                Tok::Punct('<') => angle += 1,
                Tok::Punct('>') => angle = (angle - 1).max(0),
                Tok::Punct('(') => round += 1,
                Tok::Punct(')') => round -= 1,
                Tok::Punct('[') => square += 1,
                Tok::Punct(']') => square -= 1,
                Tok::Punct('{') => brace += 1,
                Tok::Punct('}') => brace -= 1,
                Tok::Punct(c)
                    if c == sep && angle == 0 && round <= 0 && square <= 0 && brace <= 0 =>
                {
                    return i;
                }
                _ => {}
            }
            if round < 0 || square < 0 || brace < 0 {
                return i;
            }
            i += 1;
        }
        end
    }

    // -- types -------------------------------------------------------------

    /// Parses a type at `i`; returns the type (Opaque on failure) and the
    /// index just past it (always > `i` when `i` is in range).
    fn parse_ty(&self, i: usize, depth: u32) -> (Ty, usize) {
        if depth > MAX_TYPE_DEPTH || i >= self.toks.len() {
            return (Ty::Opaque, i + 1);
        }
        match &self.toks[i].kind {
            Tok::Punct('&') => {
                let mut j = i + 1;
                if matches!(self.toks.get(j), Some(t) if t.kind == Tok::Lifetime) {
                    j += 1;
                }
                if self.peek_ident(j) == Some("mut") {
                    j += 1;
                }
                let (inner, next) = self.parse_ty(j, depth + 1);
                (Ty::Ref(Box::new(inner)), next)
            }
            Tok::Punct('*') => {
                let mut j = i + 1;
                if matches!(self.peek_ident(j), Some("const") | Some("mut")) {
                    j += 1;
                }
                let (inner, next) = self.parse_ty(j, depth + 1);
                (Ty::Ptr(Box::new(inner)), next)
            }
            Tok::Punct('[') => {
                let close = self.skip_balanced(i, '[', ']');
                let (inner, next) = self.parse_ty(i + 1, depth + 1);
                if self.peek_punct(next, ';') {
                    // Length: a single literal we keep, anything else drops
                    // to unknown.
                    let len = match self.toks.get(next + 1).map(|t| &t.kind) {
                        Some(Tok::Num(v)) if self.peek_punct(next + 2, ']') => *v,
                        _ => None,
                    };
                    (Ty::Array(Box::new(inner), len), close)
                } else {
                    (Ty::Slice(Box::new(inner)), close)
                }
            }
            Tok::Punct('(') => {
                let close = self.skip_balanced(i, '(', ')');
                let body_end = close.saturating_sub(1);
                if i + 1 >= close.saturating_sub(1) && self.peek_punct(i + 1, ')') {
                    return (Ty::Tuple(Vec::new()), close);
                }
                let mut elems = Vec::new();
                let mut j = i + 1;
                let mut saw_comma = false;
                while j < body_end {
                    let (t, next) = self.parse_ty(j, depth + 1);
                    elems.push(t);
                    let stop = self.seek_list_end(next.max(j + 1), body_end, ',');
                    if self.peek_punct(stop, ',') {
                        saw_comma = true;
                        j = stop + 1;
                    } else {
                        j = stop;
                    }
                }
                if elems.len() == 1 && !saw_comma {
                    // Parenthesized type, not a 1-tuple.
                    (elems.pop().unwrap_or(Ty::Opaque), close)
                } else {
                    (Ty::Tuple(elems), close)
                }
            }
            Tok::Punct('!') => (Ty::Never, i + 1),
            Tok::Punct('<') => {
                // Qualified path `<T as Trait>::X`: opaque.
                let close = self.skip_balanced(i, '<', '>');
                let mut j = close;
                while self.peek_punct(j, ':') {
                    j += 1;
                    if let Some(Tok::Ident(_)) = self.toks.get(j).map(|t| &t.kind) {
                        j += 1;
                    }
                }
                (Ty::Opaque, j.max(i + 1))
            }
            Tok::Ident(w) if w == "dyn" || w == "impl" => {
                let next = self.skip_bounds(i + 1);
                (if w == "dyn" { Ty::Dyn } else { Ty::Opaque }, next)
            }
            Tok::Ident(w) if w == "fn" || w == "unsafe" || w == "extern" => {
                // fn pointer, possibly `unsafe extern "C" fn(..) -> T`.
                let mut j = i;
                while matches!(
                    self.peek_ident(j),
                    Some("unsafe") | Some("extern") | Some("fn")
                ) {
                    j += 1;
                }
                // Skip an ABI string (already consumed by the lexer as a
                // string literal, which produced no token) then params.
                if self.peek_punct(j, '(') {
                    j = self.skip_balanced(j, '(', ')');
                }
                if self.peek_punct(j, '-') && self.peek_punct(j + 1, '>') {
                    let (_, next) = self.parse_ty(j + 2, depth + 1);
                    j = next;
                }
                (Ty::FnPtr, j.max(i + 1))
            }
            Tok::Ident(w) if !is_keyword(w) => {
                let mut last = w.clone();
                let mut args = Vec::new();
                let mut j = i + 1;
                loop {
                    if self.peek_punct(j, '<') {
                        let close = self.skip_balanced(j, '<', '>');
                        args = self.parse_generic_args(j + 1, close.saturating_sub(1), depth);
                        j = close;
                    }
                    if self.peek_punct(j, ':') && self.peek_punct(j + 1, ':') {
                        if let Some(seg) = self.peek_ident(j + 2) {
                            if is_keyword(seg) {
                                break;
                            }
                            last = seg.to_string();
                            args.clear();
                            j += 3;
                            continue;
                        }
                        if self.peek_punct(j + 2, '<') {
                            // Turbofish in type position: `Vec::<u8>`.
                            let close = self.skip_balanced(j + 2, '<', '>');
                            args = self.parse_generic_args(j + 3, close.saturating_sub(1), depth);
                            j = close;
                            continue;
                        }
                    }
                    break;
                }
                (Ty::Path { last, args }, j)
            }
            _ => (Ty::Opaque, i + 1),
        }
    }

    /// Parses the comma-separated generic args in `[start, end)`.
    fn parse_generic_args(&self, start: usize, end: usize, depth: u32) -> Vec<Ty> {
        let mut args = Vec::new();
        let mut j = start;
        while j < end {
            match self.toks.get(j).map(|t| &t.kind) {
                Some(Tok::Lifetime) => {
                    j += 1;
                    if self.peek_punct(j, ',') {
                        j += 1;
                    }
                    continue;
                }
                Some(Tok::Num(_)) | Some(Tok::Punct('{')) => {
                    // Const argument: skip to the next separator.
                    let stop = self.seek_list_end(j, end, ',');
                    j = if self.peek_punct(stop, ',') {
                        stop + 1
                    } else {
                        stop
                    };
                    continue;
                }
                Some(Tok::Ident(w)) if self.peek_punct(j + 1, '=') && !is_keyword(w) => {
                    // Associated type binding `Item = T`: not a positional
                    // argument.
                    let stop = self.seek_list_end(j, end, ',');
                    j = if self.peek_punct(stop, ',') {
                        stop + 1
                    } else {
                        stop
                    };
                    continue;
                }
                None => break,
                _ => {}
            }
            let (t, next) = self.parse_ty(j, depth + 1);
            args.push(t);
            let stop = self.seek_list_end(next.max(j + 1), end, ',');
            j = if self.peek_punct(stop, ',') {
                stop + 1
            } else {
                stop
            };
        }
        args
    }

    /// Skips a bound list (`Trait + 'a + OtherTrait<..>`), stopping at a
    /// list-level separator.
    fn skip_bounds(&self, mut i: usize) -> usize {
        let mut expecting_elem = true;
        while i < self.toks.len() {
            match &self.toks[i].kind {
                Tok::Punct('+') => {
                    expecting_elem = true;
                    i += 1;
                }
                Tok::Lifetime if expecting_elem => {
                    expecting_elem = false;
                    i += 1;
                }
                Tok::Ident(w) if expecting_elem && !is_keyword(w) => {
                    let (_, next) = self.parse_ty(i, MAX_TYPE_DEPTH - 1);
                    i = next.max(i + 1);
                    expecting_elem = false;
                }
                Tok::Punct('(') if expecting_elem => {
                    i = self.skip_balanced(i, '(', ')');
                    expecting_elem = false;
                }
                Tok::Punct('?') => i += 1,
                _ => return i,
            }
        }
        i
    }
}

/// Keywords that can never be type or field names in our subset.
fn is_keyword(w: &str) -> bool {
    matches!(
        w,
        "as" | "break"
            | "const"
            | "continue"
            | "crate"
            | "else"
            | "enum"
            | "extern"
            | "false"
            | "fn"
            | "for"
            | "if"
            | "impl"
            | "in"
            | "let"
            | "loop"
            | "match"
            | "mod"
            | "move"
            | "mut"
            | "pub"
            | "ref"
            | "return"
            | "static"
            | "struct"
            | "trait"
            | "true"
            | "type"
            | "unsafe"
            | "use"
            | "where"
            | "while"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_struct(src: &str) -> StructDef {
        let parsed = parse_source("t.rs", src);
        assert_eq!(parsed.structs.len(), 1, "expected one struct in {src:?}");
        parsed.structs.into_iter().next().unwrap()
    }

    // Compiler-backed pins of the repr(C) reorders (PAD-01 burn-down):
    // `repr` leads, the strings and tables follow, narrow scalars and
    // bools pack the tail. Offsets are relative to `ReprAttr`'s size so
    // the pin survives changes to that struct.
    #[test]
    fn struct_def_offsets_are_pinned() {
        use core::mem::{offset_of, size_of};
        let r = size_of::<ReprAttr>();
        assert_eq!(offset_of!(StructDef, repr), 0);
        assert_eq!(offset_of!(StructDef, name), r);
        assert_eq!(offset_of!(StructDef, file), r + 24);
        assert_eq!(offset_of!(StructDef, fields), r + 48);
        assert_eq!(offset_of!(StructDef, line), r + 72);
        assert_eq!(offset_of!(StructDef, generic), r + 76);
        assert_eq!(size_of::<StructDef>(), r + 80);
    }

    #[test]
    fn enum_def_offsets_are_pinned() {
        use core::mem::{offset_of, size_of};
        let r = size_of::<ReprAttr>();
        assert_eq!(offset_of!(EnumDef, repr), 0);
        assert_eq!(offset_of!(EnumDef, name), r);
        assert_eq!(offset_of!(EnumDef, file), r + 24);
        assert_eq!(offset_of!(EnumDef, variants), r + 48);
        assert_eq!(offset_of!(EnumDef, max_discriminant), r + 56);
        assert_eq!(offset_of!(EnumDef, line), r + 64);
        assert_eq!(offset_of!(EnumDef, has_payload), r + 68);
        assert_eq!(offset_of!(EnumDef, opaque_discriminant), r + 69);
        assert_eq!(offset_of!(EnumDef, generic), r + 70);
        assert_eq!(size_of::<EnumDef>(), r + 72);
    }

    #[test]
    fn parses_plain_struct() {
        let s = one_struct("pub struct Foo { pub a: u64, b: u32, c: [u8; 4] }");
        assert_eq!(s.name, "Foo");
        assert_eq!(s.fields.len(), 3);
        assert_eq!(s.fields[0].name, "a");
        assert_eq!(
            s.fields[2].ty,
            Ty::Array(
                Box::new(Ty::Path {
                    last: "u8".into(),
                    args: vec![]
                }),
                Some(4)
            )
        );
    }

    #[test]
    fn parses_repr_attrs() {
        let s = one_struct("#[repr(C, align(32))] struct A { x: u8 }");
        assert!(s.repr.c);
        assert_eq!(s.repr.align, Some(32));
        let s = one_struct("#[repr(packed)] struct B { x: u64 }");
        assert_eq!(s.repr.packed, Some(1));
        let s = one_struct("#[repr(C, packed(2))] struct P { x: u64 }");
        assert_eq!(s.repr.packed, Some(2));
    }

    #[test]
    fn derive_does_not_eat_repr() {
        let s = one_struct("#[derive(Clone, Debug)]\n#[repr(C)]\npub struct X { a: u8 }");
        assert!(s.repr.c);
    }

    #[test]
    fn parses_paths_and_generics() {
        let s = one_struct("struct S { v: std::vec::Vec<u64>, o: Option<Box<Node>> }");
        assert_eq!(
            s.fields[0].ty,
            Ty::Path {
                last: "Vec".into(),
                args: vec![Ty::Path {
                    last: "u64".into(),
                    args: vec![]
                }]
            }
        );
        match &s.fields[1].ty {
            Ty::Path { last, args } => {
                assert_eq!(last, "Option");
                assert_eq!(args.len(), 1);
            }
            other => panic!("bad type {other:?}"),
        }
    }

    #[test]
    fn hot_annotations_leading_and_trailing() {
        let src = "struct H {\n    // cc-hot: traversal key\n    key: u64,\n    left: u32, // cc-hot\n    cold: u64,\n}";
        let s = one_struct(src);
        assert!(s.fields[0].hot, "leading marker");
        assert!(s.fields[1].hot, "trailing marker");
        assert!(!s.fields[2].hot);
    }

    #[test]
    fn generic_structs_are_flagged() {
        let s = one_struct("struct G<T> { x: T }");
        assert!(s.generic);
        let s = one_struct("struct L<'a> { x: &'a u64 }");
        assert!(!s.generic, "lifetime-only generics are modelable");
        assert_eq!(
            s.fields[0].ty,
            Ty::Ref(Box::new(Ty::Path {
                last: "u64".into(),
                args: vec![]
            }))
        );
    }

    #[test]
    fn tuple_and_unit_structs() {
        let s = one_struct("struct T(u32, u64);");
        assert_eq!(s.fields.len(), 2);
        assert_eq!(s.fields[0].name, "0");
        let s = one_struct("struct U;");
        assert!(s.fields.is_empty());
    }

    #[test]
    fn enums_fieldless_and_payload() {
        let p = parse_source("t.rs", "enum E { A, B = 300, C }\nenum D { X(u32), Y }");
        assert_eq!(p.enums.len(), 2);
        assert_eq!(p.enums[0].variants, 3);
        assert!(!p.enums[0].has_payload);
        assert_eq!(p.enums[0].max_discriminant, 300);
        assert!(p.enums[1].has_payload);
    }

    #[test]
    fn struct_keyword_in_code_is_skipped() {
        let p = parse_source(
            "t.rs",
            "fn f() { let s = \"struct Fake { x: u64 }\"; }\nstruct Real { x: u8 }",
        );
        assert_eq!(p.structs.len(), 1);
        assert_eq!(p.structs[0].name, "Real");
    }

    #[test]
    fn total_on_garbage() {
        for src in [
            "struct",
            "struct {",
            "struct X {",
            "struct X { a: }",
            "struct X { a: [u8; }",
            "#[repr(",
            "enum E { A(",
            "'unterminated",
            "\"unterminated",
            "r#\"raw",
            "struct X<'a { b: &'a }",
        ] {
            let _ = parse_source("t.rs", src);
        }
    }
}
