//! The waiver/baseline file: one finding key per line, `#` comments.
//!
//! The CI gate runs `cc-lint --baseline .cc-lint-baseline` over the
//! workspace; findings whose key appears in the file are *waived* (still
//! reported, never counted for the exit code), so the gate fails only on
//! findings **new** since the baseline was blessed. Keys are
//! [`LintFinding::key`] strings — `RULE file::Struct[.field]` — stable
//! across reruns.
//!
//! [`LintFinding::key`]: crate::report::LintFinding::key

use crate::report::LintReport;
use std::collections::BTreeSet;

/// Parses a baseline file's contents into waiver keys.
pub fn parse(src: &str) -> BTreeSet<String> {
    src.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(str::to_string)
        .collect()
}

/// Renders the baseline covering every finding in `report` (used by
/// `cc-lint --write-baseline`). Deterministic: sorted, one key per line.
pub fn render(report: &LintReport) -> String {
    let mut keys: BTreeSet<String> = report.findings.iter().map(|f| f.key()).collect();
    let mut out = String::from(
        "# cc-lint baseline: waived findings, one `RULE file::Struct[.field]` key\n\
         # per line. Regenerate with `cc-lint --write-baseline <this file> ...`\n\
         # after deliberately accepting a layout; the CI gate fails on any\n\
         # finding not listed here.\n",
    );
    for key in std::mem::take(&mut keys) {
        out.push_str(&key);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_skips_comments_and_blanks() {
        let set = parse("# header\n\nPAD-01 a.rs::Foo\n  SPAN-01 b.rs::Bar.x  \n");
        assert_eq!(set.len(), 2);
        assert!(set.contains("PAD-01 a.rs::Foo"));
        assert!(set.contains("SPAN-01 b.rs::Bar.x"));
    }
}
