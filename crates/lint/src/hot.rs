//! Field-hotness input: a flat JSON object mapping `"Struct"` or
//! `"Struct.field"` to a numeric weight, as emitted by `cc-profile`'s
//! attribution join (`*.hot.json`).
//!
//! The parser is a tiny recursive-descent JSON-subset reader — the
//! workspace has no serde — and rejects anything that is not a flat
//! string→number object, reporting a position so the CLI can exit 2
//! (input error) with something actionable.

use std::collections::BTreeMap;

/// Parsed hotness weights.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct HotSpec {
    weights: BTreeMap<String, f64>,
}

impl HotSpec {
    /// No hotness input: only `cc-hot` source annotations apply.
    pub fn empty() -> Self {
        HotSpec::default()
    }

    /// Builds a spec from explicit entries (used by the `cc-profile`
    /// join).
    pub fn from_entries(entries: impl IntoIterator<Item = (String, f64)>) -> Self {
        HotSpec {
            weights: entries.into_iter().collect(),
        }
    }

    /// Parses the `{"Struct.field": weight, ...}` JSON form.
    pub fn parse_json(src: &str) -> Result<Self, String> {
        let mut p = Json {
            bytes: src.as_bytes(),
            i: 0,
        };
        p.ws();
        let weights = p.object()?;
        p.ws();
        if p.i != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.i));
        }
        Ok(HotSpec { weights })
    }

    /// Serializes back to the canonical sorted JSON form.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (k, v)) in self.weights.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n  \"{}\": {}", escape(k), fmt_weight(*v)));
        }
        if !self.weights.is_empty() {
            out.push('\n');
        }
        out.push_str("}\n");
        out
    }

    /// Struct-level weight (`"Struct"` key, or the sum of its
    /// `"Struct.field"` keys when only fields are weighted).
    pub fn struct_weight(&self, strukt: &str) -> Option<f64> {
        if let Some(w) = self.weights.get(strukt) {
            return Some(*w);
        }
        let prefix = format!("{strukt}.");
        let sum: f64 = self
            .weights
            .iter()
            .filter(|(k, _)| k.starts_with(&prefix))
            .map(|(_, v)| *v)
            .sum();
        (sum > 0.0).then_some(sum)
    }

    /// Whether a specific field is marked hot (positive weight).
    pub fn field_hot(&self, strukt: &str, field: &str) -> bool {
        self.weights
            .get(&format!("{strukt}.{field}"))
            .is_some_and(|w| *w > 0.0)
    }

    /// Whether any weights were supplied.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }
}

fn fmt_weight(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.4}")
    }
}

fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            c => vec![c],
        })
        .collect()
}

struct Json<'a> {
    bytes: &'a [u8],
    i: usize,
}

impl Json<'_> {
    fn ws(&mut self) {
        while self
            .bytes
            .get(self.i)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.i += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.bytes.get(self.i) == Some(&c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", c as char, self.i))
        }
    }

    fn object(&mut self) -> Result<BTreeMap<String, f64>, String> {
        self.expect(b'{')?;
        let mut out = BTreeMap::new();
        self.ws();
        if self.bytes.get(self.i) == Some(&b'}') {
            self.i += 1;
            return Ok(out);
        }
        loop {
            self.ws();
            let key = self.string()?;
            self.ws();
            self.expect(b':')?;
            self.ws();
            let val = self.number()?;
            out.insert(key, val);
            self.ws();
            match self.bytes.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(out);
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.i)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.i) {
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    match self.bytes.get(self.i + 1) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(&c) => out.push(c as char),
                        None => return Err("unterminated escape".to_string()),
                    }
                    self.i += 2;
                }
                Some(&c) => {
                    out.push(c as char);
                    self.i += 1;
                }
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<f64, String> {
        let start = self.i;
        while self
            .bytes
            .get(self.i)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.i += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.i])
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| format!("expected a number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flat_object() {
        let spec = HotSpec::parse_json(
            "{\n  \"Node\": 1200,\n  \"Node.key\": 800.5,\n  \"Node.left\": 400\n}\n",
        )
        .unwrap();
        assert_eq!(spec.struct_weight("Node"), Some(1200.0));
        assert!(spec.field_hot("Node", "key"));
        assert!(!spec.field_hot("Node", "addr"));
    }

    #[test]
    fn field_weights_sum_to_struct_weight() {
        let spec = HotSpec::parse_json("{\"N.a\": 10, \"N.b\": 5}").unwrap();
        assert_eq!(spec.struct_weight("N"), Some(15.0));
        assert_eq!(spec.struct_weight("M"), None);
    }

    #[test]
    fn rejects_non_flat_json() {
        assert!(HotSpec::parse_json("{\"a\": {\"b\": 1}}").is_err());
        assert!(HotSpec::parse_json("[1, 2]").is_err());
        assert!(HotSpec::parse_json("{\"a\": 1} extra").is_err());
        assert!(HotSpec::parse_json("").is_err());
    }

    #[test]
    fn round_trips_canonical_form() {
        let spec = HotSpec::from_entries([("B.x".to_string(), 2.0), ("A".to_string(), 1.5)]);
        let json = spec.to_json();
        assert_eq!(HotSpec::parse_json(&json).unwrap(), spec);
        assert!(
            json.starts_with("{\n  \"A\": 1.5000"),
            "sorted keys: {json}"
        );
    }
}
