//! From parsed sources to modeled structs: resolves every field, builds
//! the declaration-order and optimal-reorder layouts, joins hotness
//! input, and detects array-element usage across the corpus.

use crate::hot::HotSpec;
use crate::layout::{declared, optimal, size_fields, SizedField, StructLayout};
use crate::model::TypeEnv;
use crate::parse::{ParsedFile, Ty};
use std::collections::BTreeSet;

/// One struct the offset model fully resolved.
#[derive(Clone, Debug)]
pub struct ModeledStruct {
    /// Type name.
    pub name: String,
    /// Source file label.
    pub file: String,
    /// 1-based line of the definition.
    pub line: u32,
    /// Has `#[repr(C)]` (layout guaranteed, declaration order binding).
    pub repr_c: bool,
    /// `repr(packed(N))` cap.
    pub packed: Option<u64>,
    /// `repr(align(N))` floor.
    pub align_attr: Option<u64>,
    /// Resolved fields in declaration order.
    pub sized: Vec<SizedField>,
    /// Declaration-order layout (exact for `repr(C)`, the pessimistic
    /// model for `repr(Rust)`).
    pub decl: StructLayout,
    /// Optimal-reorder layout.
    pub opt: StructLayout,
    /// Every field's size/align is a language guarantee *and* the struct
    /// is `repr(C)` — i.e. `decl` must equal the compiler's layout.
    pub exact: bool,
    /// Number of hot-marked fields.
    pub hot_count: usize,
    /// The struct appears as an array element (`Vec<T>`, `[T; N]`,
    /// `Box<[T]>`, `&[T]`) somewhere in the corpus.
    pub array_element: bool,
    /// Measured heat joined from a hotness input, if any.
    pub weight: Option<f64>,
}

/// A struct the model had to skip, with the reason.
#[derive(Clone, Debug, PartialEq)]
pub struct SkippedStruct {
    /// Type name.
    pub name: String,
    /// Source file label.
    pub file: String,
    /// Why it could not be modeled.
    pub reason: String,
}

/// The full modeling pass output.
#[derive(Clone, Debug, Default)]
pub struct Analysis {
    /// Structs the model resolved, in (file, name) order.
    pub modeled: Vec<ModeledStruct>,
    /// Structs skipped (generic parameters, opaque field types).
    pub skipped: Vec<SkippedStruct>,
    /// Enums seen (modeled for size only).
    pub enums: usize,
    /// Files analysed.
    pub files: usize,
}

/// Collects the names of struct types used as array elements anywhere.
fn array_element_names(files: &[(String, ParsedFile)]) -> BTreeSet<String> {
    fn walk(ty: &Ty, inside_seq: bool, out: &mut BTreeSet<String>) {
        match ty {
            Ty::Path { last, args } => {
                let seq = matches!(last.as_str(), "Vec" | "VecDeque");
                if inside_seq && args.is_empty() {
                    out.insert(last.clone());
                }
                for a in args {
                    walk(a, seq, out);
                }
            }
            Ty::Array(t, _) | Ty::Slice(t) => walk(t, true, out),
            Ty::Ref(t) | Ty::Ptr(t) => walk(t, false, out),
            Ty::Tuple(ts) => {
                for t in ts {
                    walk(t, false, out);
                }
            }
            _ => {}
        }
    }
    let mut out = BTreeSet::new();
    for (_, parsed) in files {
        for s in &parsed.structs {
            for f in &s.fields {
                walk(&f.ty, false, &mut out);
            }
        }
    }
    out
}

/// Runs the modeling pass over parsed files.
pub fn model_files(files: &[(String, ParsedFile)], hot: &HotSpec) -> Analysis {
    let env = TypeEnv::new(files);
    let array_elems = array_element_names(files);
    let mut analysis = Analysis {
        files: files.len(),
        ..Analysis::default()
    };
    for (_, parsed) in files {
        analysis.enums += parsed.enums.len();
        for s in &parsed.structs {
            if s.generic {
                analysis.skipped.push(SkippedStruct {
                    name: s.name.clone(),
                    file: s.file.clone(),
                    reason: "generic parameters".to_string(),
                });
                continue;
            }
            let Some(mut sized) = size_fields(s, &env) else {
                let culprit = s
                    .fields
                    .iter()
                    .find(|f| env.resolve(&f.ty, &s.file, &mut Vec::new()).is_none())
                    .map(|f| format!("opaque field `{}: {}`", f.name, f.ty))
                    .unwrap_or_else(|| "opaque field".to_string());
                analysis.skipped.push(SkippedStruct {
                    name: s.name.clone(),
                    file: s.file.clone(),
                    reason: culprit,
                });
                continue;
            };
            // Join hotness input on top of source annotations.
            for f in &mut sized {
                f.hot = f.hot || hot.field_hot(&s.name, &f.name);
            }
            let exact = s.repr.c && sized.iter().all(|f| f.resolved.exact);
            let decl = declared(&sized, s.repr.packed, s.repr.align);
            let opt = optimal(&sized, s.repr.packed, s.repr.align);
            let hot_count = sized.iter().filter(|f| f.hot).count();
            analysis.modeled.push(ModeledStruct {
                name: s.name.clone(),
                file: s.file.clone(),
                line: s.line,
                repr_c: s.repr.c,
                packed: s.repr.packed,
                align_attr: s.repr.align,
                decl,
                opt,
                exact,
                hot_count,
                array_element: array_elems.contains(&s.name),
                weight: hot.struct_weight(&s.name),
                sized,
            });
        }
    }
    analysis
        .modeled
        .sort_by(|a, b| (&a.file, &a.name).cmp(&(&b.file, &b.name)));
    analysis
        .skipped
        .sort_by(|a, b| (&a.file, &a.name).cmp(&(&b.file, &b.name)));
    analysis
}
