//! From parsed sources to modeled structs: resolves every field, builds
//! the declaration-order and optimal-reorder layouts, joins hotness
//! input, and detects array-element usage across the corpus.

use crate::hot::HotSpec;
use crate::layout::{declared, optimal, size_fields, SizedField, StructLayout};
use crate::model::TypeEnv;
use crate::parse::{ParsedFile, Ty};
use std::collections::BTreeSet;

/// One struct the offset model fully resolved.
#[derive(Clone, Debug)]
// Field order is the analyzer's own PAD-01 suggestion for itself (wide
// members first, the bool tail packed); repr(C) pins it, the offset test
// below holds it.
#[repr(C)]
pub struct ModeledStruct {
    /// Declaration-order layout (exact for `repr(C)`, the pessimistic
    /// model for `repr(Rust)`).
    pub decl: StructLayout,
    /// Optimal-reorder layout.
    pub opt: StructLayout,
    /// Type name.
    pub name: String,
    /// Source file label.
    pub file: String,
    /// Resolved fields in declaration order.
    pub sized: Vec<SizedField>,
    /// `repr(packed(N))` cap.
    pub packed: Option<u64>,
    /// `repr(align(N))` floor.
    pub align_attr: Option<u64>,
    /// Measured heat joined from a hotness input, if any.
    pub weight: Option<f64>,
    /// Number of hot-marked fields.
    pub hot_count: usize,
    /// 1-based line of the definition.
    pub line: u32,
    /// Has `#[repr(C)]` (layout guaranteed, declaration order binding).
    pub repr_c: bool,
    /// Every field's size/align is a language guarantee *and* the struct
    /// is `repr(C)` — i.e. `decl` must equal the compiler's layout.
    pub exact: bool,
    /// The struct appears as an array element (`Vec<T>`, `[T; N]`,
    /// `Box<[T]>`, `&[T]`) somewhere in the corpus.
    pub array_element: bool,
}

/// A struct the model had to skip, with the reason.
#[derive(Clone, Debug, PartialEq)]
pub struct SkippedStruct {
    /// Type name.
    pub name: String,
    /// Source file label.
    pub file: String,
    /// Why it could not be modeled.
    pub reason: String,
}

/// The full modeling pass output.
#[derive(Clone, Debug, Default)]
pub struct Analysis {
    /// Structs the model resolved, in (file, name) order.
    pub modeled: Vec<ModeledStruct>,
    /// Structs skipped (generic parameters, opaque field types).
    pub skipped: Vec<SkippedStruct>,
    /// Enums seen (modeled for size only).
    pub enums: usize,
    /// Files analysed.
    pub files: usize,
}

/// Collects the names of struct types used as array elements anywhere.
fn array_element_names(files: &[(String, ParsedFile)]) -> BTreeSet<String> {
    fn walk(ty: &Ty, inside_seq: bool, out: &mut BTreeSet<String>) {
        match ty {
            Ty::Path { last, args } => {
                let seq = matches!(last.as_str(), "Vec" | "VecDeque");
                if inside_seq && args.is_empty() {
                    out.insert(last.clone());
                }
                for a in args {
                    walk(a, seq, out);
                }
            }
            Ty::Array(t, _) | Ty::Slice(t) => walk(t, true, out),
            Ty::Ref(t) | Ty::Ptr(t) => walk(t, false, out),
            Ty::Tuple(ts) => {
                for t in ts {
                    walk(t, false, out);
                }
            }
            _ => {}
        }
    }
    let mut out = BTreeSet::new();
    for (_, parsed) in files {
        for s in &parsed.structs {
            for f in &s.fields {
                walk(&f.ty, false, &mut out);
            }
        }
    }
    out
}

/// Runs the modeling pass over parsed files.
pub fn model_files(files: &[(String, ParsedFile)], hot: &HotSpec) -> Analysis {
    let env = TypeEnv::new(files);
    let array_elems = array_element_names(files);
    let mut analysis = Analysis {
        files: files.len(),
        ..Analysis::default()
    };
    for (_, parsed) in files {
        analysis.enums += parsed.enums.len();
        for s in &parsed.structs {
            if s.generic {
                analysis.skipped.push(SkippedStruct {
                    name: s.name.clone(),
                    file: s.file.clone(),
                    reason: "generic parameters".to_string(),
                });
                continue;
            }
            let Some(mut sized) = size_fields(s, &env) else {
                let culprit = s
                    .fields
                    .iter()
                    .find(|f| env.resolve(&f.ty, &s.file, &mut Vec::new()).is_none())
                    .map(|f| format!("opaque field `{}: {}`", f.name, f.ty))
                    .unwrap_or_else(|| "opaque field".to_string());
                analysis.skipped.push(SkippedStruct {
                    name: s.name.clone(),
                    file: s.file.clone(),
                    reason: culprit,
                });
                continue;
            };
            // Join hotness input on top of source annotations.
            for f in &mut sized {
                f.hot = f.hot || hot.field_hot(&s.name, &f.name);
            }
            let exact = s.repr.c && sized.iter().all(|f| f.resolved.exact);
            let decl = declared(&sized, s.repr.packed, s.repr.align);
            let opt = optimal(&sized, s.repr.packed, s.repr.align);
            let hot_count = sized.iter().filter(|f| f.hot).count();
            analysis.modeled.push(ModeledStruct {
                name: s.name.clone(),
                file: s.file.clone(),
                line: s.line,
                repr_c: s.repr.c,
                packed: s.repr.packed,
                align_attr: s.repr.align,
                decl,
                opt,
                exact,
                hot_count,
                array_element: array_elems.contains(&s.name),
                weight: hot.struct_weight(&s.name),
                sized,
            });
        }
    }
    analysis
        .modeled
        .sort_by(|a, b| (&a.file, &a.name).cmp(&(&b.file, &b.name)));
    analysis
        .skipped
        .sort_by(|a, b| (&a.file, &a.name).cmp(&(&b.file, &b.name)));
    analysis
}

#[cfg(test)]
mod layout_tests {
    use super::*;

    // Compiler-backed pin of the repr(C) reorder (PAD-01 burn-down):
    // the two layout blocks lead, strings and tables follow, the bool
    // tail packs last. Offsets are relative to `StructLayout`'s size so
    // the pin survives changes to that struct.
    #[test]
    fn modeled_struct_offsets_are_pinned() {
        use core::mem::{offset_of, size_of};
        let s = size_of::<StructLayout>();
        assert_eq!(offset_of!(ModeledStruct, decl), 0);
        assert_eq!(offset_of!(ModeledStruct, opt), s);
        assert_eq!(offset_of!(ModeledStruct, name), 2 * s);
        assert_eq!(offset_of!(ModeledStruct, file), 2 * s + 24);
        assert_eq!(offset_of!(ModeledStruct, sized), 2 * s + 48);
        assert_eq!(offset_of!(ModeledStruct, packed), 2 * s + 72);
        assert_eq!(offset_of!(ModeledStruct, align_attr), 2 * s + 88);
        assert_eq!(offset_of!(ModeledStruct, weight), 2 * s + 104);
        assert_eq!(offset_of!(ModeledStruct, hot_count), 2 * s + 120);
        assert_eq!(offset_of!(ModeledStruct, line), 2 * s + 128);
        assert_eq!(offset_of!(ModeledStruct, repr_c), 2 * s + 132);
        assert_eq!(offset_of!(ModeledStruct, exact), 2 * s + 133);
        assert_eq!(offset_of!(ModeledStruct, array_element), 2 * s + 134);
        assert_eq!(size_of::<ModeledStruct>(), 2 * s + 136);
    }
}
