//! **`cc-lint`** — a static struct-layout analyzer with a verified offset
//! model and concrete reorder suggestions.
//!
//! *Cache-Conscious Structure Layout* (Chilimbi, Hill & Larus, PLDI 1999)
//! argues that structure **definition** decides miss rates before a single
//! instruction runs. Every other checker in this workspace is dynamic —
//! `cc-audit` needs a heap snapshot, `cc-obs` a replayed trace. This crate
//! closes the static gap: it parses Rust `struct`/`enum` definitions
//! straight from source with a small in-tree parser (no crates.io, same
//! policy as the proptest/criterion shims), computes a field-offset/
//! size/padding model, and emits deterministic findings with byte-stable
//! JSON.
//!
//! # The offset model
//!
//! * `#[repr(C)]` structs get the guaranteed declaration-order C layout.
//!   The model is **verified against the compiler**: the harness in
//!   `tests/verify_offsets.rs` pins predicted offsets against
//!   `core::mem::offset_of!` / `size_of` / `align_of` for every
//!   exactly-modeled struct in this workspace.
//! * `repr(Rust)` structs get the same declaration-order layout as a
//!   **pessimistic** model — the compiler guarantees nothing, so the
//!   unguaranteed layout is assumed worst-case; the remediation is always
//!   to pin the optimal order with `#[repr(C)]`.
//! * The **optimal-reorder model** stable-sorts fields by decreasing
//!   alignment then size, which (since every modeled size is a multiple
//!   of its alignment) eliminates all internal padding.
//!
//! # Rules
//!
//! | rule | fires when |
//! |---|---|
//! | PAD-01  | declaration order wastes ≥ threshold avoidable padding bytes |
//! | SPAN-01 | a field straddles a cache-line boundary (any array stride for hot fields) |
//! | HOT-01  | declared-hot fields are split across lines by cold ones |
//! | SOA-01  | an AoS element whose hot bytes fit a line after splitting |
//!
//! Hot fields come from `// cc-hot` comment annotations or a field-hotness
//! JSON (`--hot`, the `*.hot.json` emitted by `cc-profile`'s measured
//! attribution join).
//!
//! # Example
//!
//! ```
//! use cc_lint::{analyze_sources, HotSpec, LintConfig};
//!
//! let src = "pub struct Bad { a: u8, b: u64, c: u8, d: u64, e: u8, f: u64 }";
//! let report = analyze_sources(
//!     &[("bad.rs".to_string(), src.to_string())],
//!     &HotSpec::empty(),
//!     &LintConfig::default(),
//! );
//! let pad: Vec<_> = report
//!     .findings
//!     .iter()
//!     .filter(|f| f.rule == cc_lint::LintRule::Pad01)
//!     .collect();
//! assert_eq!(pad.len(), 1, "interleaved u8/u64 wastes 14 bytes");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod hot;
pub mod layout;
pub mod model;
pub mod modeled;
pub mod parse;
pub mod report;
pub mod rules;

pub use hot::HotSpec;
pub use layout::{FieldLayout, StructLayout};
pub use modeled::{Analysis, ModeledStruct, SkippedStruct};
pub use parse::{parse_source, ParsedFile, StructDef, Ty, HOT_MARKER};
pub use report::{LintFinding, LintReport, LintRule, LintStats};
pub use rules::LintConfig;

/// Parses and analyzes a set of `(file label, source)` pairs.
///
/// Total: any input produces a report; unmodelable structs are counted in
/// `stats.structs_skipped` rather than failing the run.
pub fn analyze_sources(
    files: &[(String, String)],
    hot: &HotSpec,
    config: &LintConfig,
) -> LintReport {
    let parsed: Vec<(String, ParsedFile)> = files
        .iter()
        .map(|(name, src)| (name.clone(), parse_source(name, src)))
        .collect();
    analyze_parsed(&parsed, hot, config)
}

/// Analyzes already-parsed files (for callers that reuse the parse).
pub fn analyze_parsed(
    parsed: &[(String, ParsedFile)],
    hot: &HotSpec,
    config: &LintConfig,
) -> LintReport {
    let analysis = modeled::model_files(parsed, hot);
    let mut findings = Vec::new();
    for m in &analysis.modeled {
        findings.extend(rules::check(m, config));
    }
    LintReport::build(&analysis, findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> LintReport {
        analyze_sources(
            &[("t.rs".to_string(), src.to_string())],
            &HotSpec::empty(),
            &LintConfig::default(),
        )
    }

    #[test]
    fn clean_struct_produces_no_findings() {
        let r = run("#[repr(C)] struct Good { a: u64, b: u64, c: u32, d: u32 }");
        assert!(r.is_clean(), "{}", r.to_text());
        assert_eq!(r.stats.structs_modeled, 1);
        assert_eq!(r.stats.structs_exact, 1);
    }

    #[test]
    fn pad_01_fires_with_strictly_smaller_reorder() {
        let r = run("#[repr(C)] struct Bad { a: u8, b: u64, c: u8, d: u64, e: u8, f: u64 }");
        let f = r
            .findings
            .iter()
            .find(|f| f.rule == LintRule::Pad01)
            .expect("PAD-01 fires");
        // 3 * (u8 + 7 pad + u64) = 48 declared; optimal 3*8 + 3 + 5 = 32.
        let st = &r.structs[0];
        assert_eq!(st.size, 48);
        assert_eq!(st.optimal_size, 32);
        assert!(st.optimal_padding < st.padding, "strictly smaller padding");
        assert!(f.suggestion.contains("reorder fields as: b, d, f, a, c, e"));
    }

    #[test]
    fn hot_01_fires_on_split_hot_fields() {
        let r = run("#[repr(C)] struct H {\n\
                 key: u64, // cc-hot\n\
                 pad0: [u8; 64],\n\
                 next: u64, // cc-hot\n\
             }");
        let f = r
            .findings
            .iter()
            .find(|f| f.rule == LintRule::Hot01)
            .expect("HOT-01 fires");
        assert_eq!(f.before, 2.0);
        assert_eq!(f.after, 1.0);
    }

    #[test]
    fn soa_01_fires_on_aos_with_hot_subset() {
        let r = run("#[repr(C)] struct Elem {\n\
                 x: f64, // cc-hot\n\
                 y: f64, // cc-hot\n\
                 meta: [u64; 6],\n\
             }\n\
             struct World { elems: Vec<Elem> }");
        assert!(
            r.findings.iter().any(|f| f.rule == LintRule::Soa01),
            "{}",
            r.to_text()
        );
    }

    #[test]
    fn hot_weights_join_marks_fields() {
        let hot = HotSpec::parse_json("{\"N.a\": 10, \"N.c\": 10}").unwrap();
        let r = analyze_sources(
            &[(
                "t.rs".to_string(),
                "#[repr(C)] struct N { a: u64, cold: [u8; 64], c: u64 }".to_string(),
            )],
            &hot,
            &LintConfig::default(),
        );
        let f = r
            .findings
            .iter()
            .find(|f| f.rule == LintRule::Hot01)
            .expect("weights mark hot fields");
        assert_eq!(f.weight, Some(20.0));
    }

    #[test]
    fn json_is_deterministic() {
        let src = "struct A { a: u8, b: u64, c: u8, d: u64, e: u8, f: u64 } struct B { x: u8 }";
        let a = run(src).to_json();
        let b = run(src).to_json();
        assert_eq!(a, b);
    }
}
