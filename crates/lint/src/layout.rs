//! The offset model: declaration-order `repr(C)` layout, the
//! optimal-reorder layout, and cache-line span math.
//!
//! For `#[repr(C)]` structs the declaration-order layout is *the* layout,
//! guaranteed by the ABI and pinned against `core::mem::offset_of!` by the
//! verification harness. For `repr(Rust)` structs the compiler promises
//! nothing; cc-lint models them **pessimistically as declaration-order C
//! layout** — the worst layout any reasonable compiler produces — because
//! an unguaranteed layout must be assumed bad until it is pinned. (rustc
//! in practice packs optimally, which is exactly what [`optimal`]
//! computes; the remediation for a flagged `repr(Rust)` struct is to pin
//! the optimal order with `#[repr(C)]`.)

use crate::model::{round_up, Resolved, TypeEnv};
use crate::parse::StructDef;

/// One field placed at a concrete offset.
#[derive(Clone, Debug, PartialEq)]
pub struct FieldLayout {
    /// Field name.
    pub name: String,
    /// Rendered type.
    pub ty: String,
    /// Byte offset from the struct base.
    pub offset: u64,
    /// Field size in bytes.
    pub size: u64,
    /// Field alignment in bytes.
    pub align: u64,
    /// Marked hot (`cc-hot` annotation or hotness input).
    pub hot: bool,
    /// Index in the declaration order.
    pub decl_index: usize,
}

/// A fully placed struct.
#[derive(Clone, Debug, PartialEq)]
pub struct StructLayout {
    /// Total size (includes trailing padding).
    pub size: u64,
    /// Struct alignment.
    pub align: u64,
    /// Total padding bytes (internal + trailing).
    pub padding: u64,
    /// Fields in *placement* order.
    pub fields: Vec<FieldLayout>,
}

impl StructLayout {
    /// Cache lines a single object at a line-aligned base touches.
    pub fn lines_per_object(&self, block: u64) -> u64 {
        self.size.max(1).div_ceil(block.max(1))
    }

    /// Field by name.
    pub fn field(&self, name: &str) -> Option<&FieldLayout> {
        self.fields.iter().find(|f| f.name == name)
    }
}

/// Input to placement: one field with a resolved size.
#[derive(Clone, Debug)]
pub struct SizedField {
    /// Field name.
    pub name: String,
    /// Rendered type.
    pub ty: String,
    /// Resolved size/align.
    pub resolved: Resolved,
    /// Hot flag.
    pub hot: bool,
    /// Declaration index.
    pub decl_index: usize,
}

/// Resolves every field of `s`; `None` if any field is opaque/unsized.
pub fn size_fields(s: &StructDef, env: &TypeEnv<'_>) -> Option<Vec<SizedField>> {
    let mut out = Vec::with_capacity(s.fields.len());
    for (i, f) in s.fields.iter().enumerate() {
        let resolved = env.resolve(&f.ty, &s.file, &mut Vec::new())?;
        out.push(SizedField {
            name: f.name.clone(),
            ty: f.ty.to_string(),
            resolved,
            hot: f.hot,
            decl_index: i,
        });
    }
    Some(out)
}

/// C layout in the given field order, honoring `packed`/`align` caps.
pub fn place(fields: &[SizedField], packed: Option<u64>, align_attr: Option<u64>) -> StructLayout {
    let cap = packed.unwrap_or(u64::MAX).max(1);
    let mut off = 0u64;
    let mut align = align_attr.unwrap_or(1).max(1);
    let mut placed = Vec::with_capacity(fields.len());
    let mut payload = 0u64;
    for f in fields {
        let a = f.resolved.align.min(cap).max(1);
        off = round_up(off, a);
        placed.push(FieldLayout {
            name: f.name.clone(),
            ty: f.ty.clone(),
            offset: off,
            size: f.resolved.size,
            align: a,
            hot: f.hot,
            decl_index: f.decl_index,
        });
        off = off.saturating_add(f.resolved.size);
        payload = payload.saturating_add(f.resolved.size);
        align = align.max(a);
    }
    let size = round_up(off, align);
    StructLayout {
        size,
        align,
        padding: size.saturating_sub(payload),
        fields: placed,
    }
}

/// Declaration-order layout (the `repr(C)` truth / `repr(Rust)` pessimum).
pub fn declared(
    fields: &[SizedField],
    packed: Option<u64>,
    align_attr: Option<u64>,
) -> StructLayout {
    place(fields, packed, align_attr)
}

/// Optimal-reorder layout: stable sort by (align desc, size desc). With
/// every modeled type's size a multiple of its alignment this leaves zero
/// internal padding, so it minimizes total padding.
pub fn optimal(
    fields: &[SizedField],
    packed: Option<u64>,
    align_attr: Option<u64>,
) -> StructLayout {
    let mut order: Vec<&SizedField> = fields.iter().collect();
    order.sort_by(|a, b| {
        (b.resolved.align, b.resolved.size)
            .cmp(&(a.resolved.align, a.resolved.size))
            .then(a.decl_index.cmp(&b.decl_index))
    });
    let reordered: Vec<SizedField> = order.into_iter().cloned().collect();
    place(&reordered, packed, align_attr)
}

/// Hot-prefix layout: hot fields first (optimally packed among
/// themselves), cold fields after. This is the layout HOT-01 suggests:
/// the hot working set occupies a contiguous line-aligned prefix.
pub fn hot_prefix(
    fields: &[SizedField],
    packed: Option<u64>,
    align_attr: Option<u64>,
) -> StructLayout {
    let mut hot: Vec<&SizedField> = fields.iter().filter(|f| f.hot).collect();
    let mut cold: Vec<&SizedField> = fields.iter().filter(|f| !f.hot).collect();
    let key = |a: &&SizedField, b: &&SizedField| {
        (b.resolved.align, b.resolved.size)
            .cmp(&(a.resolved.align, a.resolved.size))
            .then(a.decl_index.cmp(&b.decl_index))
    };
    hot.sort_by(key);
    cold.sort_by(key);
    let reordered: Vec<SizedField> = hot.into_iter().chain(cold).cloned().collect();
    place(&reordered, packed, align_attr)
}

/// Distinct cache lines the `hot` fields of a layout touch, for an object
/// whose base is line-aligned.
pub fn hot_lines(layout: &StructLayout, block: u64) -> u64 {
    let block = block.max(1);
    let mut lines: Vec<u64> = Vec::new();
    for f in layout.fields.iter().filter(|f| f.hot && f.size > 0) {
        let first = f.offset / block;
        let last = (f.offset + f.size - 1) / block;
        for l in first..=last {
            if !lines.contains(&l) {
                lines.push(l);
            }
        }
    }
    lines.len() as u64
}

/// Packed size of the hot fields alone (their own optimal struct).
pub fn hot_packed_size(fields: &[SizedField]) -> u64 {
    let hot: Vec<SizedField> = fields.iter().filter(|f| f.hot).cloned().collect();
    if hot.is_empty() {
        return 0;
    }
    optimal(&hot, None, None).size
}

/// Whether a field at `offset`/`size` inside an element of `stride` bytes
/// straddles a `block` boundary at *some* array index; returns the first
/// such index.
///
/// Offsets of element `i` repeat with period `block / gcd(stride, block)`,
/// so the scan is bounded by `block` iterations.
pub fn straddle_index(offset: u64, size: u64, stride: u64, block: u64) -> Option<u64> {
    let block = block.max(1);
    if size == 0 || size > block || stride == 0 {
        return None;
    }
    let period = block / gcd(stride % block, block).max(1);
    for i in 0..period.max(1) {
        let start = (i * stride + offset) % block;
        if start + size > block {
            return Some(i);
        }
    }
    None
}

fn gcd(a: u64, b: u64) -> u64 {
    let (mut a, mut b) = (a, b);
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Resolved;

    fn f(name: &str, size: u64, align: u64, hot: bool, idx: usize) -> SizedField {
        SizedField {
            name: name.into(),
            ty: format!("u{}", size * 8),
            resolved: Resolved {
                size,
                align,
                exact: true,
            },
            hot,
            decl_index: idx,
        }
    }

    #[test]
    fn c_layout_matches_classic_rules() {
        // struct { u8, u64, u16 } -> 0, 8, 16, size 24.
        let fields = [
            f("a", 1, 1, false, 0),
            f("b", 8, 8, false, 1),
            f("c", 2, 2, false, 2),
        ];
        let l = declared(&fields, None, None);
        assert_eq!(
            l.fields.iter().map(|x| x.offset).collect::<Vec<_>>(),
            vec![0, 8, 16]
        );
        assert_eq!(l.size, 24);
        assert_eq!(l.padding, 24 - 11);
    }

    #[test]
    fn optimal_removes_internal_padding() {
        let fields = [
            f("a", 1, 1, false, 0),
            f("b", 8, 8, false, 1),
            f("c", 2, 2, false, 2),
        ];
        let l = optimal(&fields, None, None);
        assert_eq!(l.size, 16);
        assert_eq!(l.padding, 5, "only trailing padding remains");
        assert_eq!(l.fields[0].name, "b");
    }

    #[test]
    fn packed_caps_alignment() {
        let fields = [f("a", 1, 1, false, 0), f("b", 8, 8, false, 1)];
        let l = declared(&fields, Some(1), None);
        assert_eq!(l.fields[1].offset, 1);
        assert_eq!(l.size, 9);
    }

    #[test]
    fn align_attr_raises() {
        let fields = [f("a", 4, 4, false, 0)];
        let l = declared(&fields, None, Some(32));
        assert_eq!(l.size, 32);
    }

    #[test]
    fn hot_prefix_groups_hot_fields() {
        let fields = [
            f("hot1", 8, 8, true, 0),
            f("cold", 8, 8, false, 1),
            f("hot2", 8, 8, true, 2),
        ];
        let l = hot_prefix(&fields, None, None);
        assert_eq!(l.fields[0].name, "hot1");
        assert_eq!(l.fields[1].name, "hot2");
        assert_eq!(hot_lines(&l, 64), 1);
    }

    #[test]
    fn straddle_detection() {
        // 24-byte stride, field at offset 16 of size 8: element 1 puts it
        // at byte 40..48 (fine), element 2 at 64.. (aligned), but offset
        // 20 size 8 straddles at some index.
        assert_eq!(straddle_index(16, 8, 24, 64), None);
        assert!(straddle_index(20, 8, 24, 64).is_some());
        // Stride 64: only the base position matters.
        assert_eq!(straddle_index(60, 8, 64, 64), Some(0));
        assert_eq!(straddle_index(0, 8, 64, 64), None);
        // A field wider than a block never reports (always spans).
        assert_eq!(straddle_index(0, 128, 128, 64), None);
    }
}
