//! The static rule catalog: PAD-01, SPAN-01, HOT-01, SOA-01.
//!
//! Every rule reasons purely about the offset model — no trace, no heap
//! snapshot — and every finding carries a *concrete* suggested reorder or
//! split plus a predicted before/after metric (padding bytes, cache lines
//! per object, or elements per line).

use crate::layout::{hot_lines, hot_packed_size, hot_prefix, straddle_index, StructLayout};
use crate::modeled::ModeledStruct;
use crate::report::{LintFinding, LintRule};

/// Tunables for the rules.
#[derive(Clone, Debug)]
pub struct LintConfig {
    /// Cache-line size the rules reason against.
    pub block_bytes: u64,
    /// PAD-01 fires when declaration order wastes at least this many
    /// avoidable padding bytes versus the optimal reorder.
    pub pad_threshold: u64,
}

impl Default for LintConfig {
    fn default() -> Self {
        LintConfig {
            block_bytes: 64,
            pad_threshold: 8,
        }
    }
}

/// The `repr(Rust)` pessimism note appended to findings on unpinned
/// structs.
fn repr_note(m: &ModeledStruct) -> &'static str {
    if m.repr_c {
        ""
    } else {
        " [repr(Rust): layout unguaranteed, modeled pessimistically in \
         declaration order — pin with #[repr(C)]]"
    }
}

fn order_names(l: &StructLayout) -> String {
    l.fields
        .iter()
        .map(|f| f.name.as_str())
        .collect::<Vec<_>>()
        .join(", ")
}

/// Runs every rule over one modeled struct.
pub fn check(m: &ModeledStruct, config: &LintConfig) -> Vec<LintFinding> {
    let mut out = Vec::new();
    pad_01(m, config, &mut out);
    span_01(m, config, &mut out);
    hot_01(m, config, &mut out);
    soa_01(m, config, &mut out);
    out
}

/// PAD-01: declaration order wastes avoidable padding.
fn pad_01(m: &ModeledStruct, config: &LintConfig, out: &mut Vec<LintFinding>) {
    let avoidable = m.decl.padding.saturating_sub(m.opt.padding);
    if avoidable < config.pad_threshold.max(1) {
        return;
    }
    let block = config.block_bytes;
    out.push(LintFinding {
        rule: LintRule::Pad01,
        strukt: m.name.clone(),
        file: m.file.clone(),
        line: m.line,
        fields: Vec::new(),
        message: format!(
            "declaration order wastes {avoidable} avoidable padding byte(s): \
             size {} ({} padding) vs {} ({} padding) after reorder{}",
            m.decl.size,
            m.decl.padding,
            m.opt.size,
            m.opt.padding,
            repr_note(m)
        ),
        suggestion: format!(
            "reorder fields as: {}{}",
            order_names(&m.opt),
            if m.repr_c {
                ""
            } else {
                "; pin the order with #[repr(C)]"
            }
        ),
        unit: "lines/object",
        before: m.decl.lines_per_object(block) as f64,
        after: m.opt.lines_per_object(block) as f64,
        weight: m.weight,
        waived: false,
    });
}

/// SPAN-01: a field straddles a cache-line boundary.
///
/// For a *hot* field the rule considers every array stride (an AoS array
/// of this struct places element `i` at `i * size`; the field straddles if
/// any residue does). For unannotated fields only the line-aligned base
/// placement is checked — with a stride that is not a multiple of the
/// line, almost every field straddles at *some* index, which would be
/// noise, but a field crossing a boundary within the first object is a
/// defect at any allocation site.
fn span_01(m: &ModeledStruct, config: &LintConfig, out: &mut Vec<LintFinding>) {
    let block = config.block_bytes;
    let stride = m.decl.size;
    for f in &m.decl.fields {
        if f.size == 0 || f.size > block {
            continue;
        }
        // Hot fields: any array stride counts. Unannotated fields: only a
        // boundary crossed within the first (line-aligned) object — with
        // stride == block the scan degenerates to the base placement.
        let hit = if f.hot {
            straddle_index(f.offset, f.size, stride, block)
        } else {
            straddle_index(f.offset, f.size, block, block)
        };
        let Some(elem) = hit else { continue };
        // Does the optimal reorder cure it (same check, reordered offset)?
        let cured = m.opt.field(&f.name).is_none_or(|of| {
            (if f.hot {
                straddle_index(of.offset, of.size, m.opt.size, block)
            } else {
                straddle_index(of.offset, of.size, block, block)
            })
            .is_none()
        });
        out.push(LintFinding {
            rule: LintRule::Span01,
            strukt: m.name.clone(),
            file: m.file.clone(),
            line: m.line,
            fields: vec![f.name.clone()],
            message: if f.hot {
                format!(
                    "hot field `{}` ({} B at offset {}) straddles a {block}-byte \
                     line at array element {elem} (stride {stride}){}",
                    f.name,
                    f.size,
                    f.offset,
                    repr_note(m)
                )
            } else {
                format!(
                    "field `{}` ({} B at offset {}) crosses a {block}-byte line \
                     boundary within the object{}",
                    f.name,
                    f.size,
                    f.offset,
                    repr_note(m)
                )
            },
            suggestion: if cured {
                format!(
                    "reorder fields as: {}{} — `{}` then stays within one line",
                    order_names(&m.opt),
                    if m.repr_c {
                        ""
                    } else {
                        "; pin with #[repr(C)]"
                    },
                    f.name
                )
            } else {
                format!(
                    "align the element to the line (#[repr(align({block}))]) or \
                     shrink the struct so `{}` cannot cross a boundary",
                    f.name
                )
            },
            unit: "lines/access",
            before: 2.0,
            after: 1.0,
            weight: m.weight,
            waived: false,
        });
    }
}

/// HOT-01: declared-hot fields are split across lines by cold ones.
fn hot_01(m: &ModeledStruct, config: &LintConfig, out: &mut Vec<LintFinding>) {
    if m.hot_count == 0 || m.hot_count == m.decl.fields.len() {
        return;
    }
    let block = config.block_bytes;
    let prefix = hot_prefix(&m.sized, m.packed, m.align_attr);
    let before = hot_lines(&m.decl, block);
    let after = hot_lines(&prefix, block);
    if before <= after {
        return;
    }
    let hot_names: Vec<String> = m
        .decl
        .fields
        .iter()
        .filter(|f| f.hot)
        .map(|f| f.name.clone())
        .collect();
    let prefix_order: Vec<&str> = prefix
        .fields
        .iter()
        .take(m.hot_count)
        .map(|f| f.name.as_str())
        .collect();
    out.push(LintFinding {
        rule: LintRule::Hot01,
        strukt: m.name.clone(),
        file: m.file.clone(),
        line: m.line,
        fields: hot_names.clone(),
        message: format!(
            "hot fields ({}) touch {before} line(s) per object; packed as a \
             prefix they fit in {after}{}",
            hot_names.join(", "),
            repr_note(m)
        ),
        suggestion: format!(
            "move the hot fields to a contiguous prefix: {}, then the cold \
             fields; or split into {}Hot {{ {} }} + {}Cold",
            prefix_order.join(", "),
            m.name,
            prefix_order.join(", "),
            m.name
        ),
        unit: "hot-lines/object",
        before: before as f64,
        after: after as f64,
        weight: m.weight,
        waived: false,
    });
}

/// SOA-01: an AoS array whose per-element hot bytes fit a line after
/// splitting — the paper's structure-splitting/SoA opportunity.
fn soa_01(m: &ModeledStruct, config: &LintConfig, out: &mut Vec<LintFinding>) {
    if !m.array_element || m.hot_count == 0 || m.hot_count == m.decl.fields.len() {
        return;
    }
    let block = config.block_bytes;
    let hot_stride = hot_packed_size(&m.sized).max(1);
    if hot_stride > block {
        return;
    }
    let full_stride = m.decl.size.max(1);
    let elems_before = (block / full_stride).max(if full_stride > block { 0 } else { 1 });
    let elems_after = block / hot_stride;
    if elems_after <= elems_before {
        return;
    }
    let hot_names: Vec<String> = m
        .decl
        .fields
        .iter()
        .filter(|f| f.hot)
        .map(|f| f.name.clone())
        .collect();
    let cold_names: Vec<String> = m
        .decl
        .fields
        .iter()
        .filter(|f| !f.hot)
        .map(|f| f.name.clone())
        .collect();
    out.push(LintFinding {
        rule: LintRule::Soa01,
        strukt: m.name.clone(),
        file: m.file.clone(),
        line: m.line,
        fields: hot_names.clone(),
        message: format!(
            "arrays of `{}` carry {} B/element but only {} B are hot; a \
             hot/cold split packs {elems_after} hot element(s) per {block}-byte \
             line instead of {elems_before}",
            m.name, full_stride, hot_stride
        ),
        suggestion: format!(
            "split the array structure-of-arrays style: a hot array of \
             {{ {} }} ({hot_stride} B/elem) and a cold array of {{ {} }}; a \
             hot-loop scan then fetches {:.1}x fewer lines",
            hot_names.join(", "),
            cold_names.join(", "),
            full_stride as f64 / hot_stride as f64
        ),
        unit: "elements/line",
        before: elems_before as f64,
        after: elems_after as f64,
        weight: m.weight,
        waived: false,
    });
}
