//! `cc-lint` — static struct-layout analysis over Rust source trees.
//!
//! ```text
//! cc-lint [--json] [--baseline FILE] [--write-baseline FILE] [--hot FILE]
//!         [--pad-threshold N] [--block-bytes N] PATH...
//! cc-lint --list-rules
//! ```
//!
//! `PATH` arguments are files or directories (searched recursively for
//! `*.rs`, skipping `target/` and hidden directories). Exit status follows
//! the workspace CLI convention (shared with `cc-audit`):
//!
//! * **0** — no findings beyond the baseline,
//! * **1** — findings present (new relative to `--baseline`, if given),
//! * **2** — input or parse error (unreadable path, invalid hotness
//!   JSON, unreadable baseline, usage error).
//!
//! The Rust parser itself is total — unparseable constructs degrade to
//! skipped structs, never to exit 2 — so exit 2 always means the
//! *invocation* was broken, not the code under analysis.

use cc_lint::{analyze_sources, baseline, HotSpec, LintConfig, LintRule};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

struct Options {
    json: bool,
    baseline: Option<PathBuf>,
    write_baseline: Option<PathBuf>,
    hot: Option<PathBuf>,
    config: LintConfig,
    paths: Vec<PathBuf>,
}

fn usage_text() -> &'static str {
    "usage: cc-lint [--json] [--baseline FILE] [--write-baseline FILE] [--hot FILE]\n\
     \x20             [--pad-threshold N] [--block-bytes N] PATH...\n\
     \x20      cc-lint --list-rules\n\
     exit: 0 = clean (or all findings baselined), 1 = findings, 2 = input error"
}

fn input_error(msg: &str) -> ExitCode {
    eprintln!("cc-lint: {msg}");
    ExitCode::from(2)
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        json: false,
        baseline: None,
        write_baseline: None,
        hot: None,
        config: LintConfig::default(),
        paths: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => opts.json = true,
            "--list-rules" => {
                for rule in LintRule::ALL {
                    println!("{} [{}]", rule.id(), rule.severity());
                }
                std::process::exit(0);
            }
            "--baseline" => {
                opts.baseline = Some(args.next().ok_or("--baseline needs a file")?.into());
            }
            "--write-baseline" => {
                opts.write_baseline =
                    Some(args.next().ok_or("--write-baseline needs a file")?.into());
            }
            "--hot" => opts.hot = Some(args.next().ok_or("--hot needs a file")?.into()),
            "--pad-threshold" => {
                opts.config.pad_threshold = args
                    .next()
                    .and_then(|n| n.parse().ok())
                    .ok_or("--pad-threshold needs a number")?;
            }
            "--block-bytes" => {
                let n: u64 = args
                    .next()
                    .and_then(|n| n.parse().ok())
                    .ok_or("--block-bytes needs a number")?;
                if n == 0 {
                    return Err("--block-bytes must be nonzero".to_string());
                }
                opts.config.block_bytes = n;
            }
            "--help" | "-h" => {
                println!("{}", usage_text());
                std::process::exit(0);
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown argument '{other}'"));
            }
            path => opts.paths.push(path.into()),
        }
    }
    if opts.paths.is_empty() {
        return Err("no input paths".to_string());
    }
    Ok(opts)
}

/// Collects `.rs` files under `path`, sorted for determinism.
fn collect_sources(path: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    if path.is_file() {
        out.push(path.to_path_buf());
        return Ok(());
    }
    if !path.is_dir() {
        return Err(format!("no such file or directory: {}", path.display()));
    }
    let mut entries: Vec<PathBuf> = std::fs::read_dir(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for entry in entries {
        let name = entry.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if entry.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_sources(&entry, out)?;
        } else if name.ends_with(".rs") {
            out.push(entry);
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("cc-lint: {msg}");
            eprintln!("{}", usage_text());
            return ExitCode::from(2);
        }
    };

    let hot = match &opts.hot {
        None => HotSpec::empty(),
        Some(path) => {
            let src = match std::fs::read_to_string(path) {
                Ok(s) => s,
                Err(e) => return input_error(&format!("cannot read {}: {e}", path.display())),
            };
            match HotSpec::parse_json(&src) {
                Ok(h) => h,
                Err(e) => {
                    return input_error(&format!("invalid hotness JSON {}: {e}", path.display()))
                }
            }
        }
    };

    let waivers = match &opts.baseline {
        None => Default::default(),
        Some(path) => match std::fs::read_to_string(path) {
            Ok(s) => baseline::parse(&s),
            Err(e) => return input_error(&format!("cannot read {}: {e}", path.display())),
        },
    };

    let mut files = Vec::new();
    for path in &opts.paths {
        if let Err(msg) = collect_sources(path, &mut files) {
            return input_error(&msg);
        }
    }
    files.sort();
    files.dedup();
    let mut sources = Vec::with_capacity(files.len());
    for f in &files {
        match std::fs::read_to_string(f) {
            Ok(src) => sources.push((f.display().to_string(), src)),
            Err(e) => return input_error(&format!("cannot read {}: {e}", f.display())),
        }
    }

    let mut report = analyze_sources(&sources, &hot, &opts.config);
    report.apply_baseline(&waivers);

    if let Some(path) = &opts.write_baseline {
        if let Err(e) = std::fs::write(path, baseline::render(&report)) {
            return input_error(&format!("cannot write {}: {e}", path.display()));
        }
        eprintln!(
            "cc-lint: wrote baseline with {} finding key(s) to {}",
            report.findings.len(),
            path.display()
        );
    }

    if opts.json {
        print!("{}", report.to_json());
    } else {
        print!("{}", report.to_text());
    }

    if report.new_findings() > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
