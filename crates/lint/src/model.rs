//! Size/alignment resolution: from a parsed [`Ty`] to `(size, align)`
//! on a 64-bit target.
//!
//! Three tiers of knowledge, tracked by [`Resolved::exact`]:
//!
//! * **guaranteed** — primitives, pointers/references, `repr(C)` structs
//!   of guaranteed fields, `repr(uN)` fieldless enums, arrays of
//!   guaranteed elements. These the compiler *must* lay out as modeled;
//!   the verification harness (`tests/verify_offsets.rs`) pins them
//!   against `core::mem::offset_of!`.
//! * **known-in-practice** — `Vec` (24), `String` (24), `Option<T>`
//!   niches, tuples, `repr(Rust)` locals. Stable on every shipping rustc
//!   but not documented guarantees; modeled, flagged inexact.
//! * **opaque** — anything else. Structs containing opaque fields are
//!   excluded from offset findings and counted in the report's
//!   `structs_opaque`.

use crate::parse::{EnumDef, ParsedFile, StructDef, Ty};
use std::collections::BTreeMap;

/// Pointer size on the modeled (64-bit) target.
pub const PTR_BYTES: u64 = 8;

/// A resolved size/alignment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Resolved {
    /// Size in bytes.
    pub size: u64,
    /// Alignment in bytes (power of two, ≥ 1).
    pub align: u64,
    /// The layout is a language/ABI guarantee, not a stable-in-practice
    /// observation.
    pub exact: bool,
}

impl Resolved {
    fn exact(size: u64, align: u64) -> Self {
        Resolved {
            size,
            align,
            exact: true,
        }
    }

    fn known(size: u64, align: u64) -> Self {
        Resolved {
            size,
            align,
            exact: false,
        }
    }
}

/// Whether a type is sized, for fat-pointer detection.
fn is_unsized(ty: &Ty) -> bool {
    match ty {
        Ty::Slice(_) | Ty::Dyn => true,
        Ty::Path { last, args } if last == "str" && args.is_empty() => true,
        _ => false,
    }
}

/// Cross-file type environment: every parsed struct and enum, addressable
/// by (file, name) and by bare name when unambiguous.
pub struct TypeEnv<'a> {
    structs: BTreeMap<(&'a str, &'a str), &'a StructDef>,
    enums: BTreeMap<(&'a str, &'a str), &'a EnumDef>,
    by_name_structs: BTreeMap<&'a str, Vec<&'a StructDef>>,
    by_name_enums: BTreeMap<&'a str, Vec<&'a EnumDef>>,
}

impl<'a> TypeEnv<'a> {
    /// Builds the environment over all parsed files.
    pub fn new(files: &'a [(String, ParsedFile)]) -> Self {
        let mut env = TypeEnv {
            structs: BTreeMap::new(),
            enums: BTreeMap::new(),
            by_name_structs: BTreeMap::new(),
            by_name_enums: BTreeMap::new(),
        };
        for (file, parsed) in files {
            for s in &parsed.structs {
                env.structs.insert((file.as_str(), s.name.as_str()), s);
                env.by_name_structs
                    .entry(s.name.as_str())
                    .or_default()
                    .push(s);
            }
            for e in &parsed.enums {
                env.enums.insert((file.as_str(), e.name.as_str()), e);
                env.by_name_enums
                    .entry(e.name.as_str())
                    .or_default()
                    .push(e);
            }
        }
        env
    }

    /// Looks up a struct by name, preferring the referencing file, then a
    /// globally unique match.
    fn find_struct(&self, name: &str, from_file: &str) -> Option<&'a StructDef> {
        if let Some(s) = self.structs.get(&(from_file, name)) {
            return Some(s);
        }
        match self.by_name_structs.get(name).map(Vec::as_slice) {
            Some([one]) => Some(one),
            _ => None,
        }
    }

    fn find_enum(&self, name: &str, from_file: &str) -> Option<&'a EnumDef> {
        if let Some(e) = self.enums.get(&(from_file, name)) {
            return Some(e);
        }
        match self.by_name_enums.get(name).map(Vec::as_slice) {
            Some([one]) => Some(one),
            _ => None,
        }
    }

    /// Resolves a type's size/alignment, or `None` for opaque/unsized.
    ///
    /// `from_file` scopes bare-name lookups; `visiting` breaks cycles
    /// (a self-referential struct resolves to `None`, as it would be
    /// infinite-size without indirection anyway).
    pub fn resolve(
        &self,
        ty: &Ty,
        from_file: &str,
        visiting: &mut Vec<String>,
    ) -> Option<Resolved> {
        if visiting.len() > 64 {
            return None;
        }
        match ty {
            Ty::Ref(inner) | Ty::Ptr(inner) => Some(if is_unsized(inner) {
                Resolved::exact(2 * PTR_BYTES, PTR_BYTES)
            } else {
                Resolved::exact(PTR_BYTES, PTR_BYTES)
            }),
            Ty::FnPtr => Some(Resolved::exact(PTR_BYTES, PTR_BYTES)),
            Ty::Never => Some(Resolved::known(0, 1)),
            Ty::Slice(_) | Ty::Dyn => None, // unsized: only valid behind a pointer
            Ty::Array(elem, Some(n)) => {
                let e = self.resolve(elem, from_file, visiting)?;
                Some(Resolved {
                    size: e.size.checked_mul(*n)?,
                    align: e.align,
                    exact: e.exact,
                })
            }
            Ty::Array(_, None) => None,
            Ty::Tuple(elems) if elems.is_empty() => Some(Resolved::exact(0, 1)),
            Ty::Tuple(elems) => {
                // Tuples are repr(Rust); model them at their optimal
                // packing (what rustc produces) and flag inexact.
                let mut parts = Vec::with_capacity(elems.len());
                for e in elems {
                    parts.push(self.resolve(e, from_file, visiting)?);
                }
                parts.sort_by_key(|p| std::cmp::Reverse((p.align, p.size)));
                let mut off = 0u64;
                let mut align = 1u64;
                for p in &parts {
                    off = round_up(off, p.align).checked_add(p.size)?;
                    align = align.max(p.align);
                }
                Some(Resolved::known(round_up(off, align), align))
            }
            Ty::Path { last, args } => self.resolve_path(last, args, from_file, visiting),
            Ty::Opaque => None,
        }
    }

    fn resolve_path(
        &self,
        last: &str,
        args: &[Ty],
        from_file: &str,
        visiting: &mut Vec<String>,
    ) -> Option<Resolved> {
        // Primitives (guaranteed).
        if args.is_empty() {
            match last {
                "u8" | "i8" => return Some(Resolved::exact(1, 1)),
                "bool" => return Some(Resolved::exact(1, 1)),
                "u16" | "i16" => return Some(Resolved::exact(2, 2)),
                "u32" | "i32" | "f32" | "char" => return Some(Resolved::exact(4, 4)),
                "u64" | "i64" | "f64" | "usize" | "isize" => {
                    return Some(Resolved::exact(8, 8));
                }
                "u128" | "i128" => return Some(Resolved::exact(16, 16)),
                "str" => return None, // unsized
                _ => {}
            }
            // NonZero integers: same layout as the integer (guaranteed).
            if let Some(rest) = last
                .strip_prefix("NonZeroU")
                .or_else(|| last.strip_prefix("NonZeroI"))
            {
                return match rest {
                    "8" => Some(Resolved::exact(1, 1)),
                    "16" => Some(Resolved::exact(2, 2)),
                    "32" => Some(Resolved::exact(4, 4)),
                    "64" | "size" => Some(Resolved::exact(8, 8)),
                    "128" => Some(Resolved::exact(16, 16)),
                    _ => None,
                };
            }
            // Atomics: documented same-size-as-underlying, natural align.
            if let Some(rest) = last
                .strip_prefix("AtomicU")
                .or_else(|| last.strip_prefix("AtomicI"))
            {
                return match rest {
                    "8" => Some(Resolved::known(1, 1)),
                    "16" => Some(Resolved::known(2, 2)),
                    "32" => Some(Resolved::known(4, 4)),
                    "64" | "size" => Some(Resolved::known(8, 8)),
                    _ => None,
                };
            }
            if last == "AtomicBool" {
                return Some(Resolved::known(1, 1));
            }
        }
        // Std containers known in practice on 64-bit.
        match last {
            "Vec" | "String" | "VecDeque" if last == "String" || !args.is_empty() => {
                let words = if last == "VecDeque" { 4 } else { 3 };
                return Some(Resolved::known(words * PTR_BYTES, PTR_BYTES));
            }
            "Box" | "Rc" | "Arc" | "NonNull" => {
                let fat = args.first().map(is_unsized).unwrap_or(false);
                return Some(Resolved::known(
                    if fat { 2 * PTR_BYTES } else { PTR_BYTES },
                    PTR_BYTES,
                ));
            }
            "PhantomData" => return Some(Resolved::exact(0, 1)),
            "ManuallyDrop" | "MaybeUninit" | "Cell" | "UnsafeCell" | "Wrapping" => {
                // Transparent-ish wrappers: the argument's layout.
                let arg = args.first()?;
                let r = self.resolve(arg, from_file, visiting)?;
                // MaybeUninit/ManuallyDrop/Wrapping are documented
                // same-layout; Cell/UnsafeCell too. Keep exactness.
                return Some(r);
            }
            "Option" => {
                let arg = args.first()?;
                // Niche-optimized cases: guaranteed for Box/&/fn/NonNull,
                // stable-in-practice for bool/char/NonZero.
                let niche = match arg {
                    Ty::Ref(_) | Ty::FnPtr => true,
                    Ty::Path { last, .. } => {
                        matches!(last.as_str(), "Box" | "NonNull" | "bool" | "char")
                            || last.starts_with("NonZero")
                    }
                    _ => false,
                };
                let r = self.resolve(arg, from_file, visiting)?;
                if niche {
                    return Some(Resolved::known(r.size, r.align));
                }
                // Tag byte rounded up to the payload's alignment.
                let size = round_up(r.size.checked_add(1)?, r.align);
                return Some(Resolved::known(size, r.align));
            }
            _ => {}
        }
        if !args.is_empty() {
            // A generic local/unknown type we do not model.
            return None;
        }
        // Local structs.
        if let Some(s) = self.find_struct(last, from_file) {
            if visiting.iter().any(|v| v == &s.name) || s.generic {
                return None;
            }
            visiting.push(s.name.clone());
            let out = self.struct_size(s, visiting);
            visiting.pop();
            return out;
        }
        // Local enums.
        if let Some(e) = self.find_enum(last, from_file) {
            return enum_size(e);
        }
        None
    }

    /// A struct's size/align as a *field type*: exact C layout when
    /// `repr(C)`, optimal-packing estimate (inexact) for `repr(Rust)`.
    fn struct_size(&self, s: &StructDef, visiting: &mut Vec<String>) -> Option<Resolved> {
        let mut parts = Vec::with_capacity(s.fields.len());
        let mut all_exact = true;
        for f in &s.fields {
            let r = self.resolve(&f.ty, &s.file, visiting)?;
            all_exact &= r.exact;
            parts.push(r);
        }
        if !s.repr.c {
            // repr(Rust): assume the compiler packs optimally (it does in
            // practice); never exact.
            parts.sort_by_key(|p| std::cmp::Reverse((p.align, p.size)));
            all_exact = false;
        }
        let cap = s.repr.packed.unwrap_or(u64::MAX);
        let mut off = 0u64;
        let mut align = s.repr.align.unwrap_or(1).max(1);
        for p in &parts {
            let a = p.align.min(cap).max(1);
            off = round_up(off, a).checked_add(p.size)?;
            align = align.max(a);
        }
        Some(Resolved {
            size: round_up(off, align),
            align,
            exact: all_exact && s.repr.c,
        })
    }
}

/// A fieldless enum's size; data-carrying enums are opaque.
fn enum_size(e: &EnumDef) -> Option<Resolved> {
    if e.has_payload || e.generic {
        return None;
    }
    if let Some((size, align)) = e.repr.int {
        // repr(uN) fieldless enums are a guaranteed layout.
        return Some(Resolved::exact(size, align));
    }
    if e.opaque_discriminant {
        return None;
    }
    let needed = e.variants.max(1) as u64 - 1;
    let max = e.max_discriminant.max(needed);
    let size = if max < 1 << 8 {
        1
    } else if max < 1 << 16 {
        2
    } else if max < 1 << 32 {
        4
    } else {
        8
    };
    Some(Resolved::known(size, size))
}

/// Rounds `x` up to a multiple of `align` (`align` ≥ 1; non-powers of two
/// are treated as their value, which only arises from hostile input).
pub fn round_up(x: u64, align: u64) -> u64 {
    let a = align.max(1);
    match x % a {
        0 => x,
        r => x.saturating_add(a - r),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_source;

    fn env_of(src: &str) -> Vec<(String, ParsedFile)> {
        vec![("t.rs".to_string(), parse_source("t.rs", src))]
    }

    fn resolve_field(
        files: &[(String, ParsedFile)],
        strukt: &str,
        field: &str,
    ) -> Option<Resolved> {
        let env = TypeEnv::new(files);
        let s = files
            .iter()
            .flat_map(|(_, p)| &p.structs)
            .find(|s| s.name == strukt)
            .expect("struct present");
        let f = s.fields.iter().find(|f| f.name == field).expect("field");
        env.resolve(&f.ty, &s.file, &mut Vec::new())
    }

    #[test]
    fn primitives_and_pointers() {
        let files = env_of(
            "struct S { a: u8, b: u64, c: &'static str, d: &u64, e: Box<[u8]>, f: Vec<u32> }",
        );
        assert_eq!(resolve_field(&files, "S", "a"), Some(Resolved::exact(1, 1)));
        assert_eq!(resolve_field(&files, "S", "b"), Some(Resolved::exact(8, 8)));
        assert_eq!(
            resolve_field(&files, "S", "c"),
            Some(Resolved::exact(16, 8)),
            "&str is a fat pointer"
        );
        assert_eq!(resolve_field(&files, "S", "d"), Some(Resolved::exact(8, 8)));
        assert_eq!(resolve_field(&files, "S", "e").map(|r| r.size), Some(16));
        assert_eq!(resolve_field(&files, "S", "f").map(|r| r.size), Some(24));
    }

    #[test]
    fn options_and_niches() {
        let files = env_of("struct S { a: Option<Box<u8>>, b: Option<u64>, c: Option<u32> }");
        assert_eq!(resolve_field(&files, "S", "a").map(|r| r.size), Some(8));
        assert_eq!(resolve_field(&files, "S", "b").map(|r| r.size), Some(16));
        assert_eq!(resolve_field(&files, "S", "c").map(|r| r.size), Some(8));
    }

    #[test]
    fn local_struct_and_enum_fields() {
        let files = env_of(
            "#[repr(C)] struct Inner { a: u32, b: u32 }\n\
             enum Color { Black, White, Grey }\n\
             enum Big { A = 300 }\n\
             struct Outer { i: Inner, c: Color, d: Big }",
        );
        assert_eq!(
            resolve_field(&files, "Outer", "i"),
            Some(Resolved::exact(8, 4))
        );
        assert_eq!(
            resolve_field(&files, "Outer", "c"),
            Some(Resolved::known(1, 1))
        );
        assert_eq!(
            resolve_field(&files, "Outer", "d"),
            Some(Resolved::known(2, 2))
        );
    }

    #[test]
    fn cycles_and_unknowns_are_opaque() {
        let files = env_of("struct A { b: B }\nstruct B { a: A }\nstruct C { m: HashMap<u8, u8> }");
        assert_eq!(resolve_field(&files, "A", "b"), None);
        assert_eq!(resolve_field(&files, "C", "m"), None);
    }

    #[test]
    fn arrays_scale() {
        let files = env_of("struct S { k: [u32; 4], pad: [u8; 3] }");
        assert_eq!(
            resolve_field(&files, "S", "k"),
            Some(Resolved::exact(16, 4))
        );
        assert_eq!(
            resolve_field(&files, "S", "pad"),
            Some(Resolved::exact(3, 1))
        );
    }
}
