//! A minimal, dependency-free property-testing shim exposing the subset of
//! the `proptest` API this workspace uses.
//!
//! The build environment has no access to crates.io, so the real
//! `proptest` crate cannot be vendored; this in-tree package carries the
//! same name and is wired in as a path dependency. It provides:
//!
//! * the [`proptest!`] macro (named tests with `arg in strategy` inputs),
//! * [`prop_assert!`] / [`prop_assert_eq!`],
//! * range strategies (`1usize..400`, `0.05f64..0.95`, …),
//! * [`prelude::any`] for types with an obvious uniform distribution,
//! * `prop::collection::vec` and `prop::sample::select`.
//!
//! Unlike real proptest there is **no shrinking**: a failing case reports
//! its case index (cases are deterministic, so a failure is perfectly
//! reproducible). Each test runs a fixed number of cases (64 by default,
//! overridable with the `PROPTEST_CASES` environment variable).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod test_runner {
    //! Deterministic case generation and failure plumbing.

    use std::fmt;

    /// Error carried out of a failing property body by the
    /// `prop_assert!` family.
    #[derive(Clone, Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Creates a failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// SplitMix64 — a tiny deterministic generator, seeded per case.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator whose stream is fully determined by `case`.
        pub fn deterministic(case: u64) -> Self {
            let mut rng = TestRng {
                state: 0x9E37_79B9_7F4A_7C15_u64.wrapping_mul(case.wrapping_add(1)),
            };
            // Scramble once: a linear seed makes case k+1's stream equal
            // case k's shifted by one draw (the increment and the seed
            // stride coincide), so neighbouring cases would retest
            // nearly identical inputs.
            rng.state = rng.next_u64();
            rng
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; 0 when `bound` is 0.
        pub fn below(&mut self, bound: u64) -> u64 {
            if bound == 0 {
                return 0;
            }
            // Multiply-shift bounded sampling; bias is irrelevant here.
            ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
        }

        /// Uniform value in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// Number of cases each property runs (`PROPTEST_CASES` overrides the
    /// default of 64).
    pub fn cases() -> u64 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64)
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and the range strategies.

    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    /// Types [`crate::prelude::any`] can draw uniformly.
    pub trait Arbitrary {
        /// Draws one value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, usize);

    /// Pair strategy: both sides drawn independently (mirrors proptest's
    /// tuple strategies for the 2-tuple case this workspace uses).
    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.generate(rng), self.1.generate(rng))
        }
    }

    /// Strategy produced by [`crate::prelude::any`].
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T> Any<T> {
        pub(crate) fn new() -> Self {
            Any(std::marker::PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec`s of `elem` values with a length drawn from
    /// `len`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// `Vec` strategy: length in `len`, elements from `elem`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = Strategy::generate(&self.len, rng);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod sample {
    //! Sampling strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy choosing uniformly among a fixed set of values.
    #[derive(Clone, Debug)]
    pub struct Select<T> {
        choices: Vec<T>,
    }

    /// Uniform choice among `choices`.
    ///
    /// # Panics
    ///
    /// Panics (at generation time) if `choices` is empty.
    pub fn select<T: Clone>(choices: Vec<T>) -> Select<T> {
        Select { choices }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            assert!(!self.choices.is_empty(), "select over an empty set");
            self.choices[rng.below(self.choices.len() as u64) as usize].clone()
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.

    pub use crate::strategy::{Arbitrary, Strategy};
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, proptest};

    /// Uniform strategy for a whole type (`any::<bool>()`).
    pub fn any<T: Arbitrary>() -> crate::strategy::Any<T> {
        crate::strategy::Any::new()
    }

    /// Namespace mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Defines property tests: `fn name(arg in strategy, …) { body }` items,
/// each expanded to a `#[test]` running the body over deterministic cases.
#[macro_export]
macro_rules! proptest {
    ($( $(#[$meta:meta])* fn $name:ident ( $( $arg:ident in $strat:expr ),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                for case in 0..$crate::test_runner::cases() {
                    let mut prop_rng = $crate::test_runner::TestRng::deterministic(case);
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut prop_rng);
                    )*
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            #[allow(unreachable_code)]
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!("property {} failed at case {case}: {e}", stringify!($name));
                    }
                }
            }
        )*
    };
}

/// `assert!` that reports through the property harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// `assert_eq!` that reports through the property harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: `{:?}` == `{:?}`", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{:?}` == `{:?}`: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        /// Ranges stay in bounds and bool draws both values eventually.
        #[test]
        fn ranges_in_bounds(n in 5usize..10, x in 1u64..3, f in 0.25f64..0.75) {
            prop_assert!((5..10).contains(&n));
            prop_assert!((1..3).contains(&x));
            prop_assert!((0.25..0.75).contains(&f));
        }

        /// Vec strategy respects its length range.
        #[test]
        fn vec_lengths(v in prop::collection::vec(0u32..5, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        /// Select only yields members; early return is allowed.
        #[test]
        fn select_members(c in prop::sample::select(vec![2u64, 4, 8]), b in any::<bool>()) {
            if b {
                return Ok(());
            }
            prop_assert!([2u64, 4, 8].contains(&c));
            prop_assert_eq!(c % 2, 0, "choices are even");
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = crate::test_runner::TestRng::deterministic(7);
        let mut b = crate::test_runner::TestRng::deterministic(7);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::test_runner::TestRng::deterministic(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
