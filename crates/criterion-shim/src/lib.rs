//! A minimal, dependency-free benchmarking shim exposing the subset of
//! the `criterion` API this workspace uses.
//!
//! The build environment has no access to crates.io, so the real
//! `criterion` crate cannot be vendored; this in-tree package carries the
//! same name and is wired in as a path dependency. All workspace benches
//! use `harness = false`, so the shim only needs [`Criterion`],
//! [`Bencher::iter`], [`criterion_group!`], and [`criterion_main!`].
//! Timing is wall-clock via [`std::time::Instant`]; each sample times a
//! batch of iterations and the report prints the fastest sample (least
//! noisy under an unloaded machine).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` keeps working; benches that use
/// `std::hint::black_box` directly are unaffected.
pub use std::hint::black_box;

/// Top-level driver: holds configuration and runs named benchmarks.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one named benchmark and prints a one-line report.
    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.bench_measured(id, f);
        self
    }

    /// Runs one named benchmark, prints the usual one-line report, and
    /// returns the timing so callers (e.g. `cc-bench-engine`) can compute
    /// throughput ratios and emit machine-readable results.
    pub fn bench_measured<F>(&mut self, id: impl AsRef<str>, mut f: F) -> Measurement
    where
        F: FnMut(&mut Bencher),
    {
        let mut best: Option<Duration> = None;
        let mut total = Duration::ZERO;
        let mut iters_per_sample = 0u64;
        // One untimed warmup sample, then `sample_size` timed samples.
        for sample in 0..=self.sample_size {
            let mut b = Bencher {
                iters: 0,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            if sample == 0 {
                continue;
            }
            iters_per_sample = b.iters.max(1);
            let per_iter = b.elapsed / u32::try_from(iters_per_sample).unwrap_or(u32::MAX);
            total += per_iter;
            best = Some(match best {
                Some(prev) if prev <= per_iter => prev,
                _ => per_iter,
            });
        }
        let best = best.unwrap_or_default();
        let mean = total / u32::try_from(self.sample_size).unwrap_or(1);
        println!(
            "{:<40} fastest {:>12?}   mean {:>12?}   ({} samples x {} iters)",
            id.as_ref(),
            best,
            mean,
            self.sample_size,
            iters_per_sample,
        );
        Measurement {
            fastest: best,
            mean,
            iters_per_sample,
        }
    }

    /// Criterion calls this at the end of `main`; the shim has no state
    /// to flush but keeps the call site compiling.
    pub fn final_summary(&mut self) {}
}

/// Per-benchmark timing summary returned by [`Criterion::bench_measured`].
#[derive(Clone, Copy, Debug)]
pub struct Measurement {
    /// Fastest per-iteration time across samples (least noisy estimate).
    pub fastest: Duration,
    /// Mean per-iteration time across samples.
    pub mean: Duration,
    /// Iterations each sample ran.
    pub iters_per_sample: u64,
}

/// Timer handle passed to each benchmark closure.
#[derive(Clone, Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times repeated calls of `routine`, keeping its output alive via
    /// [`black_box`] so the work is not optimized away.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        const ITERS: u64 = 3;
        let start = Instant::now();
        for _ in 0..ITERS {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.iters += ITERS;
    }
}

/// Declares a group of benchmark functions; supports both the plain
/// `criterion_group!(name, target, …)` form and the
/// `name = …; config = …; targets = …` form the workspace benches use.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
            criterion.final_summary();
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Expands to `fn main` running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial_bench(c: &mut Criterion) {
        c.bench_function("trivial", |b| b.iter(|| black_box(2u64) + 2));
    }

    criterion_group! {
        name = shim_group;
        config = Criterion::default().sample_size(2);
        targets = trivial_bench
    }

    criterion_group!(shim_group_plain, trivial_bench);

    #[test]
    fn groups_run() {
        shim_group();
        shim_group_plain();
    }

    #[test]
    fn bench_measured_reports_timing() {
        let mut c = Criterion::default().sample_size(2);
        let m = c.bench_measured("measured", |b| b.iter(|| black_box(3u64) * 3));
        assert!(m.iters_per_sample > 0);
        assert!(m.fastest <= m.mean || m.mean == Duration::ZERO);
    }

    #[test]
    fn bencher_accumulates() {
        let mut b = Bencher {
            iters: 0,
            elapsed: Duration::ZERO,
        };
        b.iter(|| 1 + 1);
        b.iter(|| 2 + 2);
        assert_eq!(b.iters, 6);
    }
}
