//! The analytic framework of Section 5 of *Cache-Conscious Structure
//! Layout* (Chilimbi, Hill & Larus, PLDI 1999).
//!
//! The framework is *data-structure-centric*: it models a series of
//! pointer-path accesses (tree searches, list walks) to one in-core
//! pointer structure, characterized by three functions:
//!
//! * `D` — the **access function**: average unique element references per
//!   pointer-path access (e.g. `log2(n+1)` for search in a balanced binary
//!   tree);
//! * `K` — **spatial locality**: average number of same-block elements
//!   used by an access (`1 ≤ K ≤ ⌊b/e⌋`);
//! * `R` — **temporal locality**: elements already cached from prior
//!   accesses (`0 ≤ R ≤ min(D, c·b·a/e)`).
//!
//! The per-access miss rate is `m(i) = (1 − R(i)/D) / K`
//! ([`StructureModel::transient_miss_rate`]); for colored structures `R(i)`
//! approaches a constant `Rs` and the **amortized steady-state miss rate**
//! is `m_s = (1 − Rs/D) / K` ([`StructureModel::steady_state_miss_rate`]).
//! Module [`speedup`] implements the Figure 8 speedup equation, and
//! [`ctree`] the Figure 9 closed form for cache-conscious binary trees,
//! whose predictions Figure 10 validates against measurement.
//!
//! # Example: predicting the C-tree's advantage
//!
//! ```
//! use cc_model::ctree;
//! use cc_sim::MachineConfig;
//!
//! let m = MachineConfig::ultrasparc_e5000();
//! // 2^22-node tree of 20-byte nodes, subtrees of 3 per 64-byte block,
//! // half the L2 colored hot.
//! let s = ctree::predicted_speedup((1 << 22) - 1, m.l2, 20, 0.5, &m.latency);
//! assert!(s > 3.0 && s < 5.0, "speedup {s}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ctree;
pub mod speedup;

/// The three locality functions `⟨D, K, Rs⟩` describing one pointer-based
/// data structure under one access pattern (Section 5.1).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StructureModel {
    /// `D`: average unique references per pointer-path access.
    pub d: f64,
    /// `K`: average same-block elements used per access (spatial
    /// locality), `1 ≤ K`.
    pub k: f64,
    /// `Rs`: steady-state reuse — elements found in cache from prior
    /// accesses (temporal locality), `0 ≤ Rs ≤ D`.
    pub rs: f64,
}

impl StructureModel {
    /// Creates a model, validating the Section 5.1 bounds.
    ///
    /// # Panics
    ///
    /// Panics if `d ≤ 0`, `k < 1`, or `rs ∉ [0, d]`.
    pub fn new(d: f64, k: f64, rs: f64) -> Self {
        assert!(d > 0.0, "D must be positive, got {d}");
        assert!(k >= 1.0, "K must be at least 1, got {k}");
        assert!((0.0..=d).contains(&rs), "Rs must be in [0, D], got {rs}");
        StructureModel { d, k, rs }
    }

    /// The paper's worst-case naive layout: each block holds one useful
    /// element (`K = 1`) and nothing is reused (`R = 0`), so every
    /// reference misses (Section 5.2).
    pub fn naive(d: f64) -> Self {
        Self::new(d, 1.0, 0.0)
    }

    /// Steady-state amortized miss rate `m_s = (1 − Rs/D) / K`.
    pub fn steady_state_miss_rate(&self) -> f64 {
        (1.0 - self.rs / self.d) / self.k
    }

    /// Transient miss rate for the `i`-th access given the reuse `r_i`
    /// observed so far: `m(i) = (1 − R(i)/D) / K`. Early accesses have
    /// `R(i) ≈ 0` (cold-start misses); `r_i → Rs` in steady state.
    ///
    /// # Panics
    ///
    /// Panics if `r_i ∉ [0, D]`.
    pub fn transient_miss_rate(&self, r_i: f64) -> f64 {
        assert!(
            (0.0..=self.d).contains(&r_i),
            "R(i) must be in [0, D], got {r_i}"
        );
        (1.0 - r_i / self.d) / self.k
    }
}

/// Amortized miss rate over a sequence of per-access miss rates:
/// `m_a(p) = (Σ m(i)) / p` (Section 5.1). Returns 0 for an empty
/// sequence.
pub fn amortized_miss_rate(per_access: &[f64]) -> f64 {
    if per_access.is_empty() {
        0.0
    } else {
        per_access.iter().sum::<f64>() / per_access.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naive_misses_every_reference() {
        let m = StructureModel::naive(20.0);
        assert!((m.steady_state_miss_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn clustering_divides_miss_rate_by_k() {
        let naive = StructureModel::naive(20.0);
        let clustered = StructureModel::new(20.0, 2.0, 0.0);
        assert!(
            (naive.steady_state_miss_rate() / clustered.steady_state_miss_rate() - 2.0).abs()
                < 1e-12
        );
    }

    #[test]
    fn full_reuse_means_no_misses() {
        let m = StructureModel::new(10.0, 2.0, 10.0);
        assert_eq!(m.steady_state_miss_rate(), 0.0);
    }

    #[test]
    fn transient_decreases_with_reuse() {
        let m = StructureModel::new(20.0, 2.0, 15.0);
        assert!(m.transient_miss_rate(0.0) > m.transient_miss_rate(10.0));
        assert!((m.transient_miss_rate(m.rs) - m.steady_state_miss_rate()).abs() < 1e-12);
    }

    #[test]
    fn amortized_averages() {
        assert_eq!(amortized_miss_rate(&[]), 0.0);
        assert!((amortized_miss_rate(&[1.0, 0.0]) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "K must be at least 1")]
    fn k_below_one_rejected() {
        StructureModel::new(10.0, 0.5, 0.0);
    }

    #[test]
    #[should_panic(expected = "Rs must be in [0, D]")]
    fn rs_above_d_rejected() {
        StructureModel::new(10.0, 2.0, 11.0);
    }
}
