//! The cache-conscious binary tree closed form (paper Section 5.3,
//! Figure 9) and its speedup prediction (validated in Figure 10).
//!
//! For a balanced, complete binary tree of `n` nodes of `e` bytes each,
//! with subtrees of `k = ⌊b/e⌋` nodes clustered per block and the top
//! `(c/2)·k·a` nodes colored into half the cache:
//!
//! * `D  = log2(n + 1)` — nodes examined by a search;
//! * `K  = log2(k + 1)` — nodes per fetched block that the search uses;
//! * `Rs = log2((c/2)·k·a + 1)` — the colored top levels, cache-resident
//!   in steady state.
//!
//! Both spatial and temporal locality are *logarithmic* — intuitively the
//! best attainable, since the access function itself is logarithmic.

use crate::speedup::{speedup, MissRates};
use crate::StructureModel;
use cc_sim::{CacheGeometry, Latency};

/// `D`, `K`, `Rs` for a cache-conscious (clustered + colored) binary
/// search tree under random searches.
///
/// `hot_fraction` is the share of the cache colored hot (1/2 in the
/// paper). `Rs` is clamped to `D` for trees small enough to fit their
/// whole search path in the hot region.
///
/// # Panics
///
/// Panics if `n` is zero or `elem_bytes` is zero.
///
/// # Example
///
/// ```
/// use cc_model::ctree::ctree_model;
/// use cc_sim::CacheGeometry;
///
/// let l2 = CacheGeometry::with_capacity(1 << 20, 64, 1);
/// let m = ctree_model((1 << 21) - 1, l2, 20, 0.5);
/// assert!((m.d - 21.0).abs() < 0.01);
/// assert!((m.k - 2.0).abs() < 0.01);        // log2(3+1)
/// assert!(m.rs > 14.0 && m.rs < 15.0);      // log2(8192*3 + 1)
/// ```
pub fn ctree_model(
    n: u64,
    cache: CacheGeometry,
    elem_bytes: u64,
    hot_fraction: f64,
) -> StructureModel {
    assert!(n > 0, "tree must be nonempty");
    assert!(elem_bytes > 0, "element size must be nonzero");
    let k = cache.elems_per_block(elem_bytes);
    let d = ((n + 1) as f64).log2();
    let kk = ((k + 1) as f64).log2();
    let hot_nodes = hot_fraction * cache.sets() as f64 * k as f64 * cache.assoc() as f64;
    let rs = (hot_nodes + 1.0).log2().min(d);
    StructureModel::new(d, kk.max(1.0), rs)
}

/// The naive counterpart: worst-case layout of the same tree
/// (`K = 1`, `R = 0`; Section 5.2).
pub fn naive_model(n: u64) -> StructureModel {
    assert!(n > 0, "tree must be nonempty");
    StructureModel::naive(((n + 1) as f64).log2())
}

/// Predicted speedup of the transparent C-tree over the naive tree
/// (Figure 10's dashed line).
///
/// Following the paper's validation setup, the L1 is assumed to provide
/// no clustering or reuse for 20-byte nodes in 16-byte lines, so
/// `m_L1 = 1` for both layouts and the L2 miss rates come from the model.
pub fn predicted_speedup(
    n: u64,
    cache: CacheGeometry,
    elem_bytes: u64,
    hot_fraction: f64,
    lat: &Latency,
) -> f64 {
    let cc = ctree_model(n, cache, elem_bytes, hot_fraction);
    let naive = naive_model(n);
    speedup(
        lat,
        MissRates::new(1.0, naive.steady_state_miss_rate()),
        MissRates::new(1.0, cc.steady_state_miss_rate()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l2() -> CacheGeometry {
        CacheGeometry::with_capacity(1 << 20, 64, 1)
    }

    fn e5000_lat() -> Latency {
        Latency {
            l1_hit: 1,
            l1_miss: 6,
            l2_miss: 64,
            tlb_miss: 0,
        }
    }

    #[test]
    fn paper_validation_parameters() {
        // Section 5.4: subtrees of size 3 per block, half the L2 colored.
        let m = ctree_model((1 << 22) - 1, l2(), 20, 0.5);
        assert!((m.d - 22.0).abs() < 1e-6);
        assert!((m.k - 2.0).abs() < 1e-12);
        // (c/2)·k·a = 8192 * 3 = 24576 hot nodes.
        assert!((m.rs - (24576.0f64 + 1.0).log2()).abs() < 1e-9);
    }

    #[test]
    fn miss_rate_grows_with_tree_size() {
        let small = ctree_model((1 << 18) - 1, l2(), 20, 0.5).steady_state_miss_rate();
        let large = ctree_model((1 << 22) - 1, l2(), 20, 0.5).steady_state_miss_rate();
        assert!(large > small);
    }

    #[test]
    fn tiny_tree_entirely_hot_never_misses() {
        // A tree smaller than the hot region: Rs = D, steady state has no
        // misses at all.
        let m = ctree_model(1023, l2(), 20, 0.5);
        assert_eq!(m.rs, m.d);
        assert_eq!(m.steady_state_miss_rate(), 0.0);
    }

    #[test]
    fn predicted_speedup_in_paper_range() {
        // Figure 10 shows speedups between ~3.5 and ~7 for trees of
        // 2^18..2^22 nodes.
        for log_n in 18..=22 {
            let s = predicted_speedup((1u64 << log_n) - 1, l2(), 20, 0.5, &e5000_lat());
            assert!(s > 3.0 && s < 7.5, "n=2^{log_n}: {s}");
        }
    }

    #[test]
    fn speedup_decreases_with_tree_size() {
        // The hot region covers a smaller share of a bigger tree.
        let s18 = predicted_speedup((1 << 18) - 1, l2(), 20, 0.5, &e5000_lat());
        let s22 = predicted_speedup((1 << 22) - 1, l2(), 20, 0.5, &e5000_lat());
        assert!(s18 > s22);
    }

    #[test]
    fn bigger_blocks_help() {
        let narrow = CacheGeometry::with_capacity(1 << 20, 64, 1);
        let wide = CacheGeometry::with_capacity(1 << 20, 128, 1);
        let a = ctree_model((1 << 20) - 1, narrow, 20, 0.5).steady_state_miss_rate();
        let b = ctree_model((1 << 20) - 1, wide, 20, 0.5).steady_state_miss_rate();
        assert!(b < a, "k=6 beats k=3: {b} vs {a}");
    }

    #[test]
    #[should_panic(expected = "nonempty")]
    fn empty_tree_rejected() {
        naive_model(0);
    }
}
