//! The cache-conscious speedup equation (paper Figure 8, Section 5.2).
//!
//! When only the structure *layout* changes, the number of memory
//! references is unchanged, so speedup reduces to the ratio of expected
//! memory access times:
//!
//! ```text
//!            t_h + (m_L1)naive·t_m,L1 + (m_L1·m_L2)naive·t_m,L2
//! speedup = ----------------------------------------------------
//!            t_h + (m_L1)cc·t_m,L1    + (m_L1·m_L2)cc·t_m,L2
//! ```

use cc_sim::Latency;

/// Per-level miss rates of one configuration (`m_L2` is *local*: L2
/// misses over L2 accesses).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MissRates {
    /// L1 miss rate.
    pub l1: f64,
    /// L2 local miss rate.
    pub l2: f64,
}

impl MissRates {
    /// Creates miss rates, validating both lie in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if either rate is outside `[0, 1]`.
    pub fn new(l1: f64, l2: f64) -> Self {
        assert!((0.0..=1.0).contains(&l1), "m_L1 out of range: {l1}");
        assert!((0.0..=1.0).contains(&l2), "m_L2 out of range: {l2}");
        MissRates { l1, l2 }
    }

    /// The paper's worst-case naive rates: every reference misses both
    /// levels.
    pub fn worst_case() -> Self {
        MissRates { l1: 1.0, l2: 1.0 }
    }

    /// Expected memory access time per reference (Section 5.1).
    pub fn access_time(&self, lat: &Latency) -> f64 {
        lat.access_time(self.l1, self.l2)
    }
}

/// Figure 8: speedup of the cache-conscious layout over the naive layout.
///
/// # Example
///
/// ```
/// use cc_model::speedup::{speedup, MissRates};
/// use cc_sim::MachineConfig;
///
/// let lat = MachineConfig::ultrasparc_e5000().latency;
/// let naive = MissRates::worst_case();
/// let cc = MissRates::new(1.0, 0.25); // clustering+coloring on the L2
/// let s = speedup(&lat, naive, cc);
/// assert!(s > 3.0);
/// ```
pub fn speedup(lat: &Latency, naive: MissRates, cache_conscious: MissRates) -> f64 {
    naive.access_time(lat) / cache_conscious.access_time(lat)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lat() -> Latency {
        Latency {
            l1_hit: 1,
            l1_miss: 6,
            l2_miss: 64,
            tlb_miss: 0,
        }
    }

    #[test]
    fn identical_rates_give_unity() {
        let r = MissRates::new(0.5, 0.5);
        assert!((speedup(&lat(), r, r) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn worst_case_over_perfect_is_bounded_by_total_latency() {
        let s = speedup(&lat(), MissRates::worst_case(), MissRates::new(0.0, 0.0));
        assert!((s - 71.0).abs() < 1e-12);
    }

    #[test]
    fn lower_l2_rate_raises_speedup() {
        let naive = MissRates::worst_case();
        let a = speedup(&lat(), naive, MissRates::new(1.0, 0.5));
        let b = speedup(&lat(), naive, MissRates::new(1.0, 0.25));
        assert!(b > a);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_negative_rate() {
        MissRates::new(-0.1, 0.0);
    }
}
