//! Machine configurations: the two substrates the paper evaluates on.

use crate::cache::WritePolicy;
use crate::geometry::CacheGeometry;

/// Access latencies of the two-level hierarchy, in cycles, in the paper's
/// Section 5.1 notation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Latency {
    /// L1 hit time `t_h`.
    pub l1_hit: u64,
    /// Additional cycles for an L1 miss that hits in L2 (`t_m,L1`).
    pub l1_miss: u64,
    /// Additional cycles for an L2 miss (`t_m,L2`).
    pub l2_miss: u64,
    /// TLB-miss handling cost (UltraSPARC's software trap through the
    /// Translation Storage Buffer; ~tens of cycles).
    pub tlb_miss: u64,
}

impl Latency {
    /// Expected memory access time per reference given per-level miss
    /// rates — the paper's Section 5.1 formula
    /// `t = t_h + m_L1·t_m,L1 + m_L1·m_L2·t_m,L2` (TLB excluded).
    pub fn access_time(&self, m_l1: f64, m_l2: f64) -> f64 {
        self.l1_hit as f64 + m_l1 * self.l1_miss as f64 + m_l1 * m_l2 * self.l2_miss as f64
    }
}

/// Full description of a simulated machine's memory system.
// The two 40-byte geometries and the latency block lead, the u64/usize
// scalars follow, and the two one-byte policies pack the tail — the
// PAD-01-clean order (144 B vs 152 interleaved), pinned by repr(C) and
// the offset test at the bottom of this file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(C)]
pub struct MachineConfig {
    /// L1 data cache geometry.
    pub l1: CacheGeometry,
    /// Unified L2 cache geometry.
    pub l2: CacheGeometry,
    /// Latencies.
    pub latency: Latency,
    /// Virtual-memory page size in bytes.
    pub page_bytes: u64,
    /// Number of TLB entries (fully associative); 0 disables the TLB model.
    pub tlb_entries: usize,
    /// Clock frequency in MHz, used only to convert cycles to wall time
    /// when printing figures in the paper's units.
    pub clock_mhz: u64,
    /// L1 write policy.
    pub l1_policy: WritePolicy,
    /// L2 write policy.
    pub l2_policy: WritePolicy,
}

impl MachineConfig {
    /// The Sun Ultraserver E5000 configuration used for the tree
    /// microbenchmark, RADIANCE, and VIS (paper Section 4.1):
    /// 16 KB direct-mapped L1 with 16-byte lines, 1 MB direct-mapped L2
    /// with 64-byte lines, `t_h = 1`, `t_m,L1 = 6`, `t_m,L2 = 64`,
    /// 8 KB pages, 167 MHz UltraSPARC.
    pub fn ultrasparc_e5000() -> Self {
        MachineConfig {
            l1: CacheGeometry::with_capacity(16 * 1024, 16, 1),
            l1_policy: WritePolicy::WriteThrough,
            l2: CacheGeometry::with_capacity(1 << 20, 64, 1),
            l2_policy: WritePolicy::WriteBack,
            latency: Latency {
                l1_hit: 1,
                l1_miss: 6,
                l2_miss: 64,
                tlb_miss: 30,
            },
            page_bytes: 8192,
            tlb_entries: 64,
            clock_mhz: 167,
        }
    }

    /// The RSIM configuration of the paper's Table 1, used for the Olden
    /// benchmarks: 16 KB direct-mapped write-through L1, 256 KB 2-way
    /// write-back L2, 128-byte lines, L1 miss 9 cycles, L2 miss 60 cycles.
    pub fn table1() -> Self {
        MachineConfig {
            l1: CacheGeometry::with_capacity(16 * 1024, 128, 1),
            l1_policy: WritePolicy::WriteThrough,
            l2: CacheGeometry::with_capacity(256 * 1024, 128, 2),
            l2_policy: WritePolicy::WriteBack,
            latency: Latency {
                l1_hit: 1,
                // Table 1: "L1 miss 9 cycles" total to reach L2; expressed
                // here as 8 additional cycles on top of the 1-cycle hit.
                l1_miss: 8,
                l2_miss: 60,
                tlb_miss: 30,
            },
            page_bytes: 8192,
            tlb_entries: 64,
            clock_mhz: 200,
        }
    }

    /// A deliberately tiny machine for tests: 4-set/16 B direct-mapped L1,
    /// 16-set/64 B direct-mapped L2, 256-byte pages, 4-entry TLB.
    pub fn test_tiny() -> Self {
        MachineConfig {
            l1: CacheGeometry::new(4, 16, 1),
            l1_policy: WritePolicy::WriteThrough,
            l2: CacheGeometry::new(16, 64, 1),
            l2_policy: WritePolicy::WriteBack,
            latency: Latency {
                l1_hit: 1,
                l1_miss: 6,
                l2_miss: 64,
                tlb_miss: 30,
            },
            page_bytes: 256,
            tlb_entries: 4,
            clock_mhz: 100,
        }
    }

    /// Cycles per microsecond, for converting simulated cycles to the
    /// paper's microsecond axes.
    pub fn cycles_per_us(&self) -> f64 {
        self.clock_mhz as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Compiler-backed pin of the repr(C) reorder: geometries and latency
    // lead, scalars follow, the two policy bytes pack the tail.
    #[test]
    fn machine_config_offsets_are_pinned() {
        assert_eq!(core::mem::offset_of!(MachineConfig, l1), 0);
        assert_eq!(core::mem::offset_of!(MachineConfig, l2), 40);
        assert_eq!(core::mem::offset_of!(MachineConfig, latency), 80);
        assert_eq!(core::mem::offset_of!(MachineConfig, page_bytes), 112);
        assert_eq!(core::mem::offset_of!(MachineConfig, tlb_entries), 120);
        assert_eq!(core::mem::offset_of!(MachineConfig, clock_mhz), 128);
        assert_eq!(core::mem::offset_of!(MachineConfig, l1_policy), 136);
        assert_eq!(core::mem::offset_of!(MachineConfig, l2_policy), 137);
        assert_eq!(core::mem::size_of::<MachineConfig>(), 144);
    }

    #[test]
    fn e5000_matches_paper_parameters() {
        let m = MachineConfig::ultrasparc_e5000();
        assert_eq!(m.l1.capacity_bytes(), 16 * 1024);
        assert_eq!(m.l1.block_bytes(), 16);
        assert_eq!(m.l1.assoc(), 1);
        assert_eq!(m.l2.capacity_bytes(), 1 << 20);
        assert_eq!(m.l2.block_bytes(), 64);
        assert_eq!(m.latency.l1_hit, 1);
        assert_eq!(m.latency.l1_miss, 6);
        assert_eq!(m.latency.l2_miss, 64);
    }

    #[test]
    fn table1_matches_paper_parameters() {
        let m = MachineConfig::table1();
        assert_eq!(m.l1.capacity_bytes(), 16 * 1024);
        assert_eq!(m.l2.capacity_bytes(), 256 * 1024);
        assert_eq!(m.l2.assoc(), 2);
        assert_eq!(m.l1.block_bytes(), 128);
        assert_eq!(m.l2.block_bytes(), 128);
        assert_eq!(m.latency.l1_hit + m.latency.l1_miss, 9);
        assert_eq!(m.latency.l2_miss, 60);
    }

    #[test]
    fn access_time_formula() {
        let lat = Latency {
            l1_hit: 1,
            l1_miss: 6,
            l2_miss: 64,
            tlb_miss: 0,
        };
        // Perfect caching: just the hit time.
        assert!((lat.access_time(0.0, 0.0) - 1.0).abs() < 1e-12);
        // Worst case: every reference goes to memory.
        assert!((lat.access_time(1.0, 1.0) - 71.0).abs() < 1e-12);
        // Paper-style mixed case.
        let t = lat.access_time(1.0, 0.5);
        assert!((t - (1.0 + 6.0 + 32.0)).abs() < 1e-12);
    }
}
