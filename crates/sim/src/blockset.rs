//! A dense membership set over block-aligned simulated addresses.
//!
//! Each [`crate::cache::Cache`] tracks every block address that was ever
//! resident, to classify re-reference misses — a set probed and updated on
//! *every* miss, which makes it one of the hottest structures in the
//! simulator. The heaps this repository simulates come from `VirtualSpace`
//! bump allocation, so the block population is dense over one contiguous
//! window: a bitmap answers membership in a couple of arithmetic ops and a
//! single, usually host-cache-resident, load — an order of magnitude
//! cheaper than any hash probe.
//!
//! The window is anchored at the first inserted block and grows upward on
//! demand (capped at [`MAX_WORDS`]); the rare blocks outside it — traces
//! mixing tiny and astronomical addresses — spill into a hash set, keeping
//! membership exact for arbitrary address patterns without letting a
//! pathological trace allocate an absurd bitmap.

use crate::fasthash::FastHashSet;

/// Upper bound on the dense window, in 64-bit words: 2 MB of bitmap,
/// covering 128 M consecutive blocks (2 GB of heap at 16-byte blocks) —
/// far beyond any workload here, while bounding worst-case memory.
const MAX_WORDS: usize = 1 << 18;

/// Set of block-aligned addresses: dense bitmap window + spill set.
#[derive(Clone, Debug, Default)]
pub(crate) struct BlockSet {
    /// `log2(block_bytes)`; `addr >> shift` is the block index.
    shift: u32,
    /// First block index the window covers (multiple of 64).
    base: u64,
    words: Vec<u64>,
    /// Blocks outside the dense window (checked only when nonempty).
    spill: FastHashSet<u64>,
}

impl BlockSet {
    /// An empty set over blocks of `block_bytes` bytes (a power of two).
    pub(crate) fn new(block_bytes: u64) -> Self {
        debug_assert!(block_bytes.is_power_of_two());
        BlockSet {
            shift: block_bytes.trailing_zeros(),
            base: 0,
            words: Vec::new(),
            spill: FastHashSet::default(),
        }
    }

    /// Whether the block containing `addr` was ever inserted.
    pub(crate) fn contains(&self, addr: u64) -> bool {
        let idx = addr >> self.shift;
        if idx >= self.base {
            let off = idx - self.base;
            let w = (off >> 6) as usize;
            if w < self.words.len() {
                return (self.words[w] >> (off & 63)) & 1 == 1;
            }
        }
        !self.spill.is_empty() && self.spill.contains(&idx)
    }

    /// Inserts the block containing `addr`.
    pub(crate) fn insert(&mut self, addr: u64) {
        let idx = addr >> self.shift;
        if self.words.is_empty() && self.spill.is_empty() {
            // Anchor the window at the first block seen.
            self.base = idx & !63;
        }
        if idx >= self.base {
            let off = idx - self.base;
            let w = (off >> 6) as usize;
            if w < self.words.len() {
                self.words[w] |= 1 << (off & 63);
                return;
            }
            if w < MAX_WORDS {
                // Grow geometrically so repeated upward extension stays
                // amortized O(1) per insert.
                let new_len = (w + 1).next_power_of_two().clamp(64, MAX_WORDS);
                self.words.resize(new_len.max(w + 1), 0);
                self.words[w] |= 1 << (off & 63);
                return;
            }
        }
        self.spill.insert(idx);
    }

    /// Removes every member.
    pub(crate) fn clear(&mut self) {
        self.base = 0;
        self.words.clear();
        self.spill.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_membership() {
        let mut s = BlockSet::new(16);
        assert!(!s.contains(0x1000));
        s.insert(0x1000);
        assert!(s.contains(0x1000));
        assert!(s.contains(0x100f), "same block");
        assert!(!s.contains(0x1010), "next block");
        for a in (0x1000..0x9000u64).step_by(16) {
            s.insert(a);
        }
        assert!(s.contains(0x8ff0));
        assert!(!s.contains(0x9000));
    }

    #[test]
    fn below_anchor_spills() {
        let mut s = BlockSet::new(16);
        s.insert(0x10_0000);
        s.insert(0x10); // below the anchored window
        assert!(s.contains(0x10));
        assert!(s.contains(0x10_0000));
        assert!(!s.contains(0x20));
    }

    #[test]
    fn far_above_window_spills() {
        let mut s = BlockSet::new(16);
        s.insert(0x1000);
        let far = 0x1000 + (MAX_WORDS as u64) * 64 * 16 + 512;
        s.insert(far);
        assert!(s.contains(far));
        assert!(s.contains(0x1000));
        assert!(!s.contains(far + 16));
    }

    #[test]
    fn clear_empties() {
        let mut s = BlockSet::new(64);
        s.insert(0x40);
        s.insert(u64::MAX - 63);
        s.clear();
        assert!(!s.contains(0x40));
        assert!(!s.contains(u64::MAX - 63));
        // Re-anchors cleanly after clear.
        s.insert(0x80);
        assert!(s.contains(0x80));
    }
}
