//! The abstract instruction stream that workloads emit.
//!
//! Workloads in this reproduction are real algorithms (tree searches, the
//! Olden benchmarks, a BDD engine) running over a *simulated* heap: every
//! node holds a simulated address, and traversals narrate what a compiled
//! version would do to memory as a stream of [`Event`]s. Sinks turn the
//! stream into measurements: [`crate::MemorySink`] counts misses,
//! [`crate::pipeline::Pipeline`] produces the Figure 7 stall breakdown.

/// One step of a workload's execution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Event {
    /// `n` non-memory instructions (ALU, address arithmetic, compares).
    Inst(u32),
    /// `n` conditional branches (subject to the pipeline's misprediction
    /// model; they also count as instructions).
    Branch(u32),
    /// A data load of `size` bytes at `addr`.
    ///
    /// `dep` marks a *pointer-chase* load: its address was produced by the
    /// immediately preceding load (e.g. `n = n->next`), so no out-of-order
    /// window or hardware prefetcher can start it early. This is the
    /// property that makes pointer programs latency-bound (paper, Section 1).
    Load {
        /// Simulated virtual address.
        addr: u64,
        /// Access width in bytes.
        size: u32,
        /// Whether the address depends on the previous load's value.
        dep: bool,
    },
    /// A data store of `size` bytes at `addr`.
    Store {
        /// Simulated virtual address.
        addr: u64,
        /// Access width in bytes.
        size: u32,
    },
    /// A non-binding software prefetch of the block containing `addr`
    /// (Luk & Mowry greedy prefetching emits these).
    Prefetch {
        /// Simulated virtual address.
        addr: u64,
    },
}

impl Event {
    /// A dependent (pointer-chase) load — the common case in this codebase.
    pub fn load(addr: u64, size: u32) -> Self {
        Event::Load {
            addr,
            size,
            dep: true,
        }
    }

    /// An independent load whose address did not come from the previous
    /// load (array indexing, loads off a register-resident base).
    pub fn load_indep(addr: u64, size: u32) -> Self {
        Event::Load {
            addr,
            size,
            dep: false,
        }
    }

    /// A store.
    pub fn store(addr: u64, size: u32) -> Self {
        Event::Store { addr, size }
    }
}

/// Consumer of a workload's event stream.
pub trait EventSink {
    /// Processes one event.
    fn event(&mut self, ev: Event);

    /// Convenience: emit `n` plain instructions.
    fn inst(&mut self, n: u32) {
        self.event(Event::Inst(n));
    }

    /// Convenience: emit `n` branches.
    fn branch(&mut self, n: u32) {
        self.event(Event::Branch(n));
    }

    /// Convenience: emit a dependent load.
    fn load(&mut self, addr: u64, size: u32) {
        self.event(Event::load(addr, size));
    }

    /// Convenience: emit an independent load.
    fn load_indep(&mut self, addr: u64, size: u32) {
        self.event(Event::load_indep(addr, size));
    }

    /// Convenience: emit a store.
    fn store(&mut self, addr: u64, size: u32) {
        self.event(Event::store(addr, size));
    }

    /// Convenience: emit a software prefetch.
    fn prefetch(&mut self, addr: u64) {
        self.event(Event::Prefetch { addr });
    }
}

impl<S: EventSink + ?Sized> EventSink for &mut S {
    fn event(&mut self, ev: Event) {
        (**self).event(ev);
    }
}

/// A sink that discards everything — for running workloads purely for their
/// computed results (e.g. in correctness tests).
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl EventSink for NullSink {
    fn event(&mut self, _ev: Event) {}
}

/// A sink that records the stream, for tests and for replaying the same
/// trace through several machines.
#[derive(Clone, Debug, Default)]
pub struct TraceBuffer {
    events: Vec<Event>,
}

impl TraceBuffer {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The recorded events.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Number of loads and stores recorded.
    pub fn memory_refs(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, Event::Load { .. } | Event::Store { .. }))
            .count()
    }

    /// Replays the recorded stream into another sink.
    pub fn replay<S: EventSink>(&self, sink: &mut S) {
        for &ev in &self.events {
            sink.event(ev);
        }
    }
}

impl EventSink for TraceBuffer {
    fn event(&mut self, ev: Event) {
        self.events.push(ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_build_expected_variants() {
        assert_eq!(
            Event::load(8, 4),
            Event::Load {
                addr: 8,
                size: 4,
                dep: true
            }
        );
        assert_eq!(
            Event::load_indep(8, 4),
            Event::Load {
                addr: 8,
                size: 4,
                dep: false
            }
        );
    }

    #[test]
    fn trace_buffer_records_and_replays() {
        let mut buf = TraceBuffer::new();
        buf.load(0x10, 8);
        buf.store(0x20, 8);
        buf.inst(3);
        assert_eq!(buf.events().len(), 3);
        assert_eq!(buf.memory_refs(), 2);

        let mut copy = TraceBuffer::new();
        buf.replay(&mut copy);
        assert_eq!(copy.events(), buf.events());
    }

    #[test]
    fn null_sink_accepts_anything() {
        let mut s = NullSink;
        s.load(0, 1);
        s.prefetch(64);
        s.branch(2);
    }
}
