//! The abstract instruction stream that workloads emit.
//!
//! Workloads in this reproduction are real algorithms (tree searches, the
//! Olden benchmarks, a BDD engine) running over a *simulated* heap: every
//! node holds a simulated address, and traversals narrate what a compiled
//! version would do to memory as a stream of [`Event`]s. Sinks turn the
//! stream into measurements: [`crate::MemorySink`] counts misses,
//! [`crate::pipeline::Pipeline`] produces the Figure 7 stall breakdown.

/// One step of a workload's execution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Event {
    /// `n` non-memory instructions (ALU, address arithmetic, compares).
    Inst(u32),
    /// `n` conditional branches (subject to the pipeline's misprediction
    /// model; they also count as instructions).
    Branch(u32),
    /// A data load of `size` bytes at `addr`.
    ///
    /// `dep` marks a *pointer-chase* load: its address was produced by the
    /// immediately preceding load (e.g. `n = n->next`), so no out-of-order
    /// window or hardware prefetcher can start it early. This is the
    /// property that makes pointer programs latency-bound (paper, Section 1).
    Load {
        /// Simulated virtual address.
        addr: u64,
        /// Access width in bytes.
        size: u32,
        /// Whether the address depends on the previous load's value.
        dep: bool,
    },
    /// A data store of `size` bytes at `addr`.
    Store {
        /// Simulated virtual address.
        addr: u64,
        /// Access width in bytes.
        size: u32,
    },
    /// A non-binding software prefetch of the block containing `addr`
    /// (Luk & Mowry greedy prefetching emits these).
    Prefetch {
        /// Simulated virtual address.
        addr: u64,
    },
}

impl Event {
    /// A dependent (pointer-chase) load — the common case in this codebase.
    pub fn load(addr: u64, size: u32) -> Self {
        Event::Load {
            addr,
            size,
            dep: true,
        }
    }

    /// An independent load whose address did not come from the previous
    /// load (array indexing, loads off a register-resident base).
    pub fn load_indep(addr: u64, size: u32) -> Self {
        Event::Load {
            addr,
            size,
            dep: false,
        }
    }

    /// A store.
    pub fn store(addr: u64, size: u32) -> Self {
        Event::Store { addr, size }
    }
}

/// Consumer of a workload's event stream.
pub trait EventSink {
    /// Processes one event.
    fn event(&mut self, ev: Event);

    /// Convenience: emit `n` plain instructions.
    fn inst(&mut self, n: u32) {
        self.event(Event::Inst(n));
    }

    /// Convenience: emit `n` branches.
    fn branch(&mut self, n: u32) {
        self.event(Event::Branch(n));
    }

    /// Convenience: emit a dependent load.
    fn load(&mut self, addr: u64, size: u32) {
        self.event(Event::load(addr, size));
    }

    /// Convenience: emit an independent load.
    fn load_indep(&mut self, addr: u64, size: u32) {
        self.event(Event::load_indep(addr, size));
    }

    /// Convenience: emit a store.
    fn store(&mut self, addr: u64, size: u32) {
        self.event(Event::store(addr, size));
    }

    /// Convenience: emit a software prefetch.
    fn prefetch(&mut self, addr: u64) {
        self.event(Event::Prefetch { addr });
    }
}

impl<S: EventSink + ?Sized> EventSink for &mut S {
    fn event(&mut self, ev: Event) {
        (**self).event(ev);
    }
}

/// A sink that discards everything — for running workloads purely for their
/// computed results (e.g. in correctness tests).
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl EventSink for NullSink {
    fn event(&mut self, _ev: Event) {}
}

/// A sink that records the stream, for tests and for replaying the same
/// trace through several machines.
#[derive(Clone, Debug, Default)]
pub struct TraceBuffer {
    events: Vec<Event>,
}

impl TraceBuffer {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The recorded events.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Number of loads and stores recorded.
    pub fn memory_refs(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, Event::Load { .. } | Event::Store { .. }))
            .count()
    }

    /// Replays the recorded stream into another sink.
    pub fn replay<S: EventSink>(&self, sink: &mut S) {
        for &ev in &self.events {
            sink.event(ev);
        }
    }
}

impl EventSink for TraceBuffer {
    fn event(&mut self, ev: Event) {
        self.events.push(ev);
    }
}

/// A sink that distills the stream into *affinity* data: per-address
/// access counts (heat) and pointer-chase edges (which addresses are
/// accessed contemporaneously). This is the trace input of `cc-audit` —
/// the dynamic evidence behind the paper's static placement claims.
///
/// A dependent load (`dep: true`) records an edge from the previous
/// memory reference to it: `b = a->child` touches `a` then chases into
/// `b`, which is precisely the pair clustering wants co-located.
///
/// # Example
///
/// ```
/// use cc_sim::event::{AffinityTrace, EventSink};
///
/// let mut trace = AffinityTrace::new();
/// trace.load(0x100, 8);  // touch the parent…
/// trace.load(0x140, 8);  // …then chase into the child
/// assert_eq!(trace.count_of(0x100), 1);
/// assert_eq!(trace.edges().get(&(0x100, 0x140)), Some(&1));
/// ```
#[derive(Clone, Debug, Default)]
pub struct AffinityTrace {
    counts: std::collections::HashMap<u64, u64>,
    edges: std::collections::HashMap<(u64, u64), u64>,
    last_ref: Option<u64>,
}

impl AffinityTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Access counts per referenced address (loads + stores).
    pub fn counts(&self) -> &std::collections::HashMap<u64, u64> {
        &self.counts
    }

    /// Times `addr` was referenced (0 if never).
    pub fn count_of(&self, addr: u64) -> u64 {
        self.counts.get(&addr).copied().unwrap_or(0)
    }

    /// Pointer-chase edges `(from, to)` with their occurrence counts.
    pub fn edges(&self) -> &std::collections::HashMap<(u64, u64), u64> {
        &self.edges
    }

    /// Total memory references recorded.
    pub fn total_refs(&self) -> u64 {
        self.counts.values().sum()
    }
}

impl EventSink for AffinityTrace {
    fn event(&mut self, ev: Event) {
        match ev {
            Event::Load { addr, dep, .. } => {
                *self.counts.entry(addr).or_insert(0) += 1;
                if dep {
                    if let Some(prev) = self.last_ref {
                        if prev != addr {
                            *self.edges.entry((prev, addr)).or_insert(0) += 1;
                        }
                    }
                }
                self.last_ref = Some(addr);
            }
            Event::Store { addr, .. } => {
                *self.counts.entry(addr).or_insert(0) += 1;
                self.last_ref = Some(addr);
            }
            // Prefetches are non-binding and instructions touch no data;
            // neither breaks a chase chain.
            Event::Prefetch { .. } | Event::Inst(_) | Event::Branch(_) => {}
        }
    }
}

/// Fans one event stream out to two sinks — e.g. measure misses in a
/// [`crate::MemorySink`] *and* record affinity for auditing, in one run.
///
/// # Example
///
/// ```
/// use cc_sim::event::{AffinityTrace, EventSink, Tee, TraceBuffer};
///
/// let mut tee = Tee::new(TraceBuffer::new(), AffinityTrace::new());
/// tee.load(0x40, 8);
/// assert_eq!(tee.first.events().len(), 1);
/// assert_eq!(tee.second.count_of(0x40), 1);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Tee<A, B> {
    /// The first receiving sink.
    pub first: A,
    /// The second receiving sink.
    pub second: B,
}

impl<A: EventSink, B: EventSink> Tee<A, B> {
    /// Combines two sinks.
    pub fn new(first: A, second: B) -> Self {
        Tee { first, second }
    }

    /// Splits the tee back into its sinks.
    pub fn into_parts(self) -> (A, B) {
        (self.first, self.second)
    }
}

impl<A: EventSink, B: EventSink> EventSink for Tee<A, B> {
    fn event(&mut self, ev: Event) {
        self.first.event(ev);
        self.second.event(ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_build_expected_variants() {
        assert_eq!(
            Event::load(8, 4),
            Event::Load {
                addr: 8,
                size: 4,
                dep: true
            }
        );
        assert_eq!(
            Event::load_indep(8, 4),
            Event::Load {
                addr: 8,
                size: 4,
                dep: false
            }
        );
    }

    #[test]
    fn trace_buffer_records_and_replays() {
        let mut buf = TraceBuffer::new();
        buf.load(0x10, 8);
        buf.store(0x20, 8);
        buf.inst(3);
        assert_eq!(buf.events().len(), 3);
        assert_eq!(buf.memory_refs(), 2);

        let mut copy = TraceBuffer::new();
        buf.replay(&mut copy);
        assert_eq!(copy.events(), buf.events());
    }

    #[test]
    fn null_sink_accepts_anything() {
        let mut s = NullSink;
        s.load(0, 1);
        s.prefetch(64);
        s.branch(2);
    }

    #[test]
    fn affinity_trace_counts_and_edges() {
        let mut t = AffinityTrace::new();
        t.load(0x100, 8); // parent
        t.load(0x140, 8); // dep chase: edge (0x100, 0x140)
        t.inst(5); // does not break the chain
        t.load(0x180, 8); // dep chase: edge (0x140, 0x180)
        t.load_indep(0x100, 8); // indep: counted, no edge
        t.store(0x200, 8);
        assert_eq!(t.count_of(0x100), 2);
        assert_eq!(t.count_of(0x140), 1);
        assert_eq!(t.total_refs(), 5);
        assert_eq!(t.edges().get(&(0x100, 0x140)), Some(&1));
        assert_eq!(t.edges().get(&(0x140, 0x180)), Some(&1));
        assert_eq!(t.edges().get(&(0x180, 0x100)), None, "indep load");
    }

    #[test]
    fn affinity_trace_ignores_self_edges() {
        let mut t = AffinityTrace::new();
        t.load(0x100, 8);
        t.load(0x100, 8);
        assert!(t.edges().is_empty());
        assert_eq!(t.count_of(0x100), 2);
    }

    #[test]
    fn tee_duplicates_the_stream() {
        let mut tee = Tee::new(TraceBuffer::new(), TraceBuffer::new());
        tee.load(0x10, 8);
        tee.store(0x20, 4);
        let (a, b) = tee.into_parts();
        assert_eq!(a.events(), b.events());
        assert_eq!(a.events().len(), 2);
    }
}
