//! Portable fixed-width "pseudo-SIMD" primitives for the replay hot
//! loops.
//!
//! `std::simd` is still unstable, so the explicit-vector kernel is built
//! the way the paper builds cache-conscious layouts: fixed-width chunks
//! of plain `u64` lanes ([`WIDTH`] per chunk) over the structure-of-arrays
//! trace, shaped so LLVM's autovectorizer turns each helper into vector
//! shifts/masks/compares (one small loop of independent lane ops, no
//! data-dependent branches, no cross-lane state). Callers process a
//! scalar tail for the last `len % WIDTH` entries.
//!
//! The kernel only ever *reads* simulator state: each helper is a pure
//! function, and the one consumer ([`crate::cache::Cache::read_direct_hits`]
//! via the shard lane replay) uses it as an all-hit filter. That is what
//! makes the chunked path bit-exact: a direct-mapped read *hit* mutates
//! nothing (see [`crate::cache::Cache::read_direct`]), so probing a
//! chunk's addresses against a snapshot of the tag lane is
//! indistinguishable from probing them in order — and the moment any
//! lane might miss, the caller falls back to the exact in-order scalar
//! path for that chunk.

/// Chunk width in `u64` lanes: 64 bytes of addresses per chunk — one AVX-512
/// register, two AVX2 registers, or four NEON q-registers after
/// autovectorization, and exactly one host cache line of the address lane.
pub(crate) const WIDTH: usize = 8;

/// Lane-wise set-index extraction: `(addr >> block_shift) & set_mask` per
/// lane — the vectorized form of [`crate::geometry::CacheGeometry::set_of`].
#[inline(always)]
pub(crate) fn set_lanes(addrs: &[u64; WIDTH], block_shift: u32, set_mask: u64) -> [u64; WIDTH] {
    let mut out = [0u64; WIDTH];
    for (o, &a) in out.iter_mut().zip(addrs) {
        *o = (a >> block_shift) & set_mask;
    }
    out
}

/// Lane-wise tag extraction: `addr >> tag_shift` per lane — the vectorized
/// form of [`crate::geometry::CacheGeometry::tag_of`].
#[inline(always)]
pub(crate) fn tag_lanes(addrs: &[u64; WIDTH], tag_shift: u32) -> [u64; WIDTH] {
    let mut out = [0u64; WIDTH];
    for (o, &a) in out.iter_mut().zip(addrs) {
        *o = a >> tag_shift;
    }
    out
}

/// Gathers `table[idx]` per lane (the resident-tag fetch). Indices must be
/// in range — they are set indices masked by the table's own geometry.
#[inline(always)]
pub(crate) fn gather(table: &[u64], idx: &[u64; WIDTH]) -> [u64; WIDTH] {
    let mut out = [0u64; WIDTH];
    for (o, &i) in out.iter_mut().zip(idx) {
        *o = table[i as usize];
    }
    out
}

/// Whether every lane of `a` equals the corresponding lane of `b`,
/// branch-free: XOR the lanes, OR-reduce, one compare at the end.
#[inline(always)]
pub(crate) fn all_eq(a: &[u64; WIDTH], b: &[u64; WIDTH]) -> bool {
    let mut acc = 0u64;
    for (&x, &y) in a.iter().zip(b) {
        acc |= x ^ y;
    }
    acc == 0
}

/// Whether every op byte in `ops` (a [`WIDTH`]-long chunk of the lane's op
/// stream) equals `op` — the chunk-uniformity test that guards the
/// all-reads fast path.
#[inline(always)]
pub(crate) fn all_op(ops: &[u8], op: u8) -> bool {
    debug_assert_eq!(ops.len(), WIDTH);
    let mut acc = 0u8;
    for &o in ops {
        acc |= o ^ op;
    }
    acc == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lanes_match_scalar_decomposition() {
        let g = crate::geometry::CacheGeometry::new(64, 16, 1);
        let (block_shift, set_mask, tag_shift) = g.probe_fields();
        let addrs = [0u64, 0x13, 0x40, 0x3FF, 0x1000, 0xFFFF, 0x12345, 0x70];
        let sets = set_lanes(&addrs, block_shift, set_mask);
        let tags = tag_lanes(&addrs, tag_shift);
        for i in 0..WIDTH {
            assert_eq!(sets[i], g.set_of(addrs[i]));
            assert_eq!(tags[i], g.tag_of(addrs[i]));
        }
    }

    #[test]
    fn gather_and_compare() {
        let table: Vec<u64> = (0..16).map(|i| i * 10).collect();
        let idx = [0u64, 3, 3, 15, 1, 2, 7, 8];
        let got = gather(&table, &idx);
        assert_eq!(got, [0, 30, 30, 150, 10, 20, 70, 80]);
        assert!(all_eq(&got, &got.clone()));
        let mut other = got;
        other[5] ^= 1;
        assert!(!all_eq(&got, &other));
    }

    #[test]
    fn op_uniformity() {
        assert!(all_op(&[2; WIDTH], 2));
        let mut ops = [0u8; WIDTH];
        assert!(all_op(&ops, 0));
        ops[WIDTH - 1] = 1;
        assert!(!all_op(&ops, 0));
    }
}
