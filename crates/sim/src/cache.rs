//! A single set-associative cache level with true-LRU replacement.

use crate::geometry::CacheGeometry;
use crate::stats::CacheStats;
use std::collections::HashSet;

/// Write policy of one cache level.
///
/// The paper's machines use a write-through L1 (with a write buffer) in
/// front of a write-back L2 (Table 1); the E5000's L1 is also modelled as
/// write-through.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WritePolicy {
    /// Writes update the level and propagate below; lines are never dirty.
    /// Write misses do not allocate (write-around), matching a
    /// write-through no-allocate L1.
    WriteThrough,
    /// Writes dirty the line; evictions of dirty lines cost a writeback.
    /// Write misses allocate.
    WriteBack,
}

#[derive(Clone, Copy, Debug)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// Monotonic use stamp for true-LRU within the set.
    used: u64,
}

const INVALID: Line = Line {
    tag: 0,
    valid: false,
    dirty: false,
    used: 0,
};

/// Result of probing one cache level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Probe {
    /// Whether the access hit.
    pub hit: bool,
    /// On a fill, whether a dirty victim was written back.
    pub writeback: bool,
}

/// One level of set-associative cache with LRU replacement.
///
/// The cache stores tags only: the simulated heap holds all data, so the
/// cache's job is purely to answer "would this access have hit?".
///
/// # Example
///
/// ```
/// use cc_sim::cache::{Cache, WritePolicy};
/// use cc_sim::geometry::CacheGeometry;
///
/// let mut c = Cache::new(CacheGeometry::new(2, 16, 1), WritePolicy::WriteBack);
/// assert!(!c.access(0x00, false).hit); // cold miss
/// assert!(c.access(0x04, false).hit);  // same block
/// assert!(!c.access(0x40, false).hit); // maps to set 0 too: conflict
/// assert!(!c.access(0x00, false).hit); // evicted by the conflicting block
/// ```
#[derive(Clone, Debug)]
pub struct Cache {
    geometry: CacheGeometry,
    policy: WritePolicy,
    lines: Vec<Line>,
    clock: u64,
    stats: CacheStats,
    /// Block addresses ever resident, to classify re-reference misses.
    ever_resident: HashSet<u64>,
}

impl Cache {
    /// Creates an empty (all-invalid) cache.
    pub fn new(geometry: CacheGeometry, policy: WritePolicy) -> Self {
        let n = (geometry.sets() * geometry.assoc()) as usize;
        Cache {
            geometry,
            policy,
            lines: vec![INVALID; n],
            clock: 0,
            stats: CacheStats::new(),
            ever_resident: HashSet::new(),
        }
    }

    /// The cache's geometry.
    pub fn geometry(&self) -> CacheGeometry {
        self.geometry
    }

    /// The cache's write policy.
    pub fn policy(&self) -> WritePolicy {
        self.policy
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Zeroes the statistics without touching cache contents, so warm-up
    /// can be excluded from steady-state measurements.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::new();
    }

    pub(crate) fn stats_mut(&mut self) -> &mut CacheStats {
        &mut self.stats
    }

    /// Invalidates every line and clears statistics.
    pub fn clear(&mut self) {
        for l in &mut self.lines {
            *l = INVALID;
        }
        self.clock = 0;
        self.stats = CacheStats::new();
        self.ever_resident.clear();
    }

    fn set_range(&self, set: u64) -> std::ops::Range<usize> {
        let a = self.geometry.assoc() as usize;
        let start = set as usize * a;
        start..start + a
    }

    /// Whether the block containing `addr` is currently resident.
    pub fn contains(&self, addr: u64) -> bool {
        let set = self.geometry.set_of(addr);
        let tag = self.geometry.tag_of(addr);
        self.lines[self.set_range(set)]
            .iter()
            .any(|l| l.valid && l.tag == tag)
    }

    /// Performs a demand access to the *block* containing `addr` and
    /// updates statistics. On a miss the block is filled (except for write
    /// misses under [`WritePolicy::WriteThrough`], which do not allocate).
    pub fn access(&mut self, addr: u64, write: bool) -> Probe {
        self.stats.record_access(write);
        self.probe_internal(addr, write, true)
    }

    /// Fills the block containing `addr` without recording a demand access
    /// — used for prefetches. Returns the probe result (hit means the block
    /// was already resident).
    pub fn fill(&mut self, addr: u64) -> Probe {
        self.probe_internal(addr, false, false)
    }

    fn probe_internal(&mut self, addr: u64, write: bool, demand: bool) -> Probe {
        self.clock += 1;
        let set = self.geometry.set_of(addr);
        let tag = self.geometry.tag_of(addr);
        let range = self.set_range(set);
        let clock = self.clock;

        // Hit path.
        if let Some(line) = self.lines[range.clone()]
            .iter_mut()
            .find(|l| l.valid && l.tag == tag)
        {
            line.used = clock;
            if write {
                match self.policy {
                    WritePolicy::WriteBack => line.dirty = true,
                    WritePolicy::WriteThrough => {}
                }
            }
            return Probe {
                hit: true,
                writeback: false,
            };
        }

        // Miss path.
        let block = self.geometry.block_of(addr);
        if demand {
            let seen = self.ever_resident.contains(&block);
            self.stats.record_miss(write, seen);
        }

        // Write-through caches do not allocate on write misses.
        if write && self.policy == WritePolicy::WriteThrough {
            return Probe {
                hit: false,
                writeback: false,
            };
        }

        // Choose a victim: an invalid way if any, else LRU.
        let lines = &mut self.lines[range];
        let victim = lines
            .iter_mut()
            .min_by_key(|l| if l.valid { l.used + 1 } else { 0 })
            .expect("associativity is nonzero");
        let mut writeback = false;
        if victim.valid {
            writeback = victim.dirty && self.policy == WritePolicy::WriteBack;
            self.stats.record_eviction(writeback);
        }
        *victim = Line {
            tag,
            valid: true,
            dirty: write && self.policy == WritePolicy::WriteBack,
            used: clock,
        };
        self.ever_resident.insert(block);
        Probe {
            hit: false,
            writeback,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(sets: u64, assoc: u64) -> Cache {
        Cache::new(CacheGeometry::new(sets, 16, assoc), WritePolicy::WriteBack)
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny(4, 1);
        assert!(!c.access(0x100, false).hit);
        assert!(c.access(0x100, false).hit);
        assert!(c.access(0x10f, false).hit, "same block");
        assert_eq!(c.stats().misses(), 1);
        assert_eq!(c.stats().hits(), 2);
    }

    #[test]
    fn direct_mapped_conflict() {
        let mut c = tiny(4, 1);
        let cap = 4 * 16;
        assert!(!c.access(0, false).hit);
        assert!(!c.access(cap, false).hit, "same set, different tag");
        assert!(!c.access(0, false).hit, "got evicted");
        assert_eq!(c.stats().rereference_misses(), 1);
    }

    #[test]
    fn two_way_avoids_that_conflict() {
        let mut c = tiny(4, 2);
        let stride = 4 * 16; // maps to the same set
        assert!(!c.access(0, false).hit);
        assert!(!c.access(stride, false).hit);
        assert!(
            c.access(0, false).hit,
            "both ways hold the conflicting pair"
        );
        assert!(c.access(stride, false).hit);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = tiny(1, 2);
        c.access(0x00, false); // A
        c.access(0x10, false); // B
        c.access(0x00, false); // touch A; B is now LRU
        c.access(0x20, false); // C evicts B
        assert!(c.access(0x00, false).hit, "A stayed");
        assert!(!c.access(0x10, false).hit, "B was evicted");
    }

    #[test]
    fn writeback_of_dirty_victim() {
        let mut c = tiny(1, 1);
        c.access(0x00, true); // allocate dirty
        let p = c.access(0x10, false); // evicts dirty block
        assert!(p.writeback);
        assert_eq!(c.stats().writebacks(), 1);
    }

    #[test]
    fn write_through_never_writes_back_and_does_not_allocate_on_write_miss() {
        let mut c = Cache::new(CacheGeometry::new(1, 16, 1), WritePolicy::WriteThrough);
        c.access(0x00, true);
        assert!(!c.contains(0x00), "write miss does not allocate");
        c.access(0x00, false); // read fills
        c.access(0x00, true); // write hit, stays clean
        let p = c.access(0x10, false);
        assert!(!p.writeback);
        assert_eq!(c.stats().writebacks(), 0);
    }

    #[test]
    fn fill_does_not_count_as_demand() {
        let mut c = tiny(4, 1);
        c.fill(0x40);
        assert_eq!(c.stats().accesses(), 0);
        assert!(c.access(0x40, false).hit);
    }

    #[test]
    fn clear_resets_everything() {
        let mut c = tiny(4, 1);
        c.access(0x40, false);
        c.clear();
        assert!(!c.contains(0x40));
        assert_eq!(c.stats().accesses(), 0);
    }
}
