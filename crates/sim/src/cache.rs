//! A single set-associative cache level with true-LRU replacement.

use crate::blockset::BlockSet;
use crate::geometry::CacheGeometry;
use crate::kernel;
use crate::stats::CacheStats;

/// Write policy of one cache level.
///
/// The paper's machines use a write-through L1 (with a write buffer) in
/// front of a write-back L2 (Table 1); the E5000's L1 is also modelled as
/// write-through.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WritePolicy {
    /// Writes update the level and propagate below; lines are never dirty.
    /// Write misses do not allocate (write-around), matching a
    /// write-through no-allocate L1.
    WriteThrough,
    /// Writes dirty the line; evictions of dirty lines cost a writeback.
    /// Write misses allocate.
    WriteBack,
}

/// Reads bit `i` of a packed bitmap.
#[inline]
fn bit(words: &[u64], i: usize) -> bool {
    (words[i >> 6] >> (i & 63)) & 1 == 1
}

/// Writes bit `i` of a packed bitmap.
#[inline]
fn set_bit(words: &mut [u64], i: usize, v: bool) {
    let mask = 1u64 << (i & 63);
    if v {
        words[i >> 6] |= mask;
    } else {
        words[i >> 6] &= !mask;
    }
}

/// Tag value marking an invalid line. No reachable address produces it:
/// a real tag is `addr >> (block + set bits)`, which is all-ones only for
/// addresses within a block of `u64::MAX` — far outside any simulated
/// heap (the access paths `debug_assert` this). Folding validity into the
/// tag makes the hit test one compare with no bitmap load.
const TAG_INVALID: u64 = u64::MAX;

/// Sentinel for [`Cache::last_victim`]: the previous probe evicted
/// nothing. Same unreachable-address argument as [`TAG_INVALID`].
const NO_VICTIM: u64 = u64::MAX;

/// Register-resident demand-read counters for the batched direct-mapped
/// read path ([`Cache::read_direct`]). Each field mirrors one
/// [`CacheStats`] counter the scalar path would bump per probe; the batch
/// loop accumulates them branch-free and flushes once per batch via
/// [`CacheStats::add_read_tally`].
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct ReadTally {
    pub(crate) reads: u64,
    pub(crate) misses: u64,
    pub(crate) rereferences: u64,
    pub(crate) evictions: u64,
    pub(crate) writebacks: u64,
}

impl ReadTally {
    /// Whether any field is nonzero (i.e. a flush would change stats).
    pub(crate) fn any(&self) -> bool {
        self.reads != 0
    }
}

/// Result of probing one cache level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Probe {
    /// Whether the access hit.
    pub hit: bool,
    /// On a fill, whether a dirty victim was written back.
    pub writeback: bool,
}

/// One level of set-associative cache with LRU replacement.
///
/// The cache stores tags only: the simulated heap holds all data, so the
/// cache's job is purely to answer "would this access have hit?".
///
/// # Example
///
/// ```
/// use cc_sim::cache::{Cache, WritePolicy};
/// use cc_sim::geometry::CacheGeometry;
///
/// let mut c = Cache::new(CacheGeometry::new(2, 16, 1), WritePolicy::WriteBack);
/// assert!(!c.access(0x00, false).hit); // cold miss
/// assert!(c.access(0x04, false).hit);  // same block
/// assert!(!c.access(0x40, false).hit); // maps to set 0 too: conflict
/// assert!(!c.access(0x00, false).hit); // evicted by the conflicting block
/// ```
/// The line array is stored structure-of-arrays, applying the paper's own
/// hot/cold splitting to the simulator's hottest structure: a probe reads
/// eight dense bytes from the tag lane (validity is folded into the tag as
/// a sentinel, so the hit test is a single compare) instead of dragging a
/// whole padded line record through the *host's* caches, and the LRU
/// stamps — dead weight on the direct-mapped configurations every preset
/// uses — live in a lane only associative probes touch.
#[derive(Clone, Debug)]
pub struct Cache {
    geometry: CacheGeometry,
    policy: WritePolicy,
    /// Per-line tags; [`TAG_INVALID`] marks an empty line.
    tags: Vec<u64>,
    /// One dirty bit per line.
    dirty: Vec<u64>,
    /// Monotonic use stamps for true-LRU; read only when `assoc > 1`.
    used: Vec<u64>,
    clock: u64,
    stats: CacheStats,
    /// Block addresses ever resident, to classify re-reference misses.
    /// Probed on every miss, so it uses a dense bitmap over the heap's
    /// block range rather than a hash set.
    ever_resident: BlockSet,
    /// Block address evicted by the most recent [`Cache::access`] /
    /// [`Cache::fill`], or [`NO_VICTIM`]. Miss attribution reads this to
    /// name the conflict victim; one unconditional store per probe keeps
    /// it current, so the plain replay paths pay nothing measurable.
    last_victim: u64,
}

impl Cache {
    /// Creates an empty (all-invalid) cache.
    pub fn new(geometry: CacheGeometry, policy: WritePolicy) -> Self {
        let n = (geometry.sets() * geometry.assoc()) as usize;
        let words = n.div_ceil(64);
        Cache {
            geometry,
            policy,
            tags: vec![TAG_INVALID; n],
            dirty: vec![0; words],
            used: vec![0; n],
            clock: 0,
            stats: CacheStats::new(),
            ever_resident: BlockSet::new(geometry.block_bytes()),
            last_victim: NO_VICTIM,
        }
    }

    /// The cache's geometry.
    pub fn geometry(&self) -> CacheGeometry {
        self.geometry
    }

    /// The cache's write policy.
    pub fn policy(&self) -> WritePolicy {
        self.policy
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Zeroes the statistics without touching cache contents, so warm-up
    /// can be excluded from steady-state measurements.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::new();
    }

    pub(crate) fn stats_mut(&mut self) -> &mut CacheStats {
        &mut self.stats
    }

    /// Invalidates every line and clears statistics.
    pub fn clear(&mut self) {
        self.tags.fill(TAG_INVALID);
        self.dirty.fill(0);
        self.clock = 0;
        self.stats = CacheStats::new();
        self.ever_resident.clear();
        self.last_victim = NO_VICTIM;
    }

    /// The block address the most recent [`Cache::access`] /
    /// [`Cache::fill`] evicted, if any. The batched direct-mapped fast
    /// paths do not maintain this; they are disabled while attribution
    /// (the only consumer) is enabled.
    pub(crate) fn last_victim(&self) -> Option<u64> {
        (self.last_victim != NO_VICTIM).then_some(self.last_victim)
    }

    fn set_start(&self, set: u64) -> usize {
        set as usize * self.geometry.assoc() as usize
    }

    /// Whether the block containing `addr` is currently resident.
    pub fn contains(&self, addr: u64) -> bool {
        let start = self.set_start(self.geometry.set_of(addr));
        let tag = self.geometry.tag_of(addr);
        debug_assert_ne!(tag, TAG_INVALID, "address tag collides with the sentinel");
        (start..start + self.geometry.assoc() as usize).any(|i| self.tags[i] == tag)
    }

    /// Performs a demand access to the *block* containing `addr` and
    /// updates statistics. On a miss the block is filled (except for write
    /// misses under [`WritePolicy::WriteThrough`], which do not allocate).
    pub fn access(&mut self, addr: u64, write: bool) -> Probe {
        self.stats.record_access(write);
        self.probe_internal(addr, write, true)
    }

    /// Fills the block containing `addr` without recording a demand access
    /// — used for prefetches. Returns the probe result (hit means the block
    /// was already resident).
    pub fn fill(&mut self, addr: u64) -> Probe {
        self.probe_internal(addr, false, false)
    }

    /// Demand *read* probe specialized for direct-mapped caches. With a
    /// single way per set there is no replacement choice, so the LRU clock
    /// and use stamps are semantically inert and the probe reduces to one
    /// tag compare. Miss classification, residency, dirty bits, and
    /// writeback accounting match [`Cache::access`]`(addr, false)` exactly;
    /// only the (meaningless) stamp values differ. Nothing is recorded in
    /// [`CacheStats`] here: every counter the scalar path would bump lands
    /// in `tally` instead — plain register arithmetic with no
    /// data-dependent branches — and the batched caller flushes the tally
    /// with [`CacheStats::add_read_tally`] once per batch, which is
    /// equivalent because nothing observes the counters mid-batch. The
    /// caller must ensure `geometry().assoc() == 1`.
    #[inline]
    pub(crate) fn read_direct(&mut self, addr: u64, tally: &mut ReadTally) -> bool {
        debug_assert_eq!(self.geometry.assoc(), 1);
        let tag = self.geometry.tag_of(addr);
        debug_assert_ne!(tag, TAG_INVALID, "address tag collides with the sentinel");
        let set = self.geometry.set_of(addr) as usize;
        tally.reads += 1;
        if self.tags[set] == tag {
            return true;
        }
        let was_valid = self.tags[set] != TAG_INVALID;
        let seen = self.ever_resident.contains(addr);
        tally.misses += 1;
        tally.rereferences += u64::from(seen);
        tally.evictions += u64::from(was_valid);
        // Write-through lines are never dirty, so the dirty bitmap is
        // untouched on that policy's read path (and nothing ever counts
        // toward writebacks).
        if self.policy == WritePolicy::WriteBack {
            tally.writebacks += u64::from(was_valid && bit(&self.dirty, set));
            set_bit(&mut self.dirty, set, false);
        }
        self.tags[set] = tag;
        // Unconditional: re-inserting a member is an idempotent bit-OR on
        // the word `contains` just pulled into cache, cheaper than a
        // data-dependent branch around it.
        self.ever_resident.insert(addr);
        false
    }

    /// Whether *all* [`kernel::WIDTH`] probe addresses in `addrs` hit a
    /// direct-mapped cache, with no side effects — the chunked form of
    /// [`Cache::read_direct`]'s hit test, built from the pseudo-SIMD lane
    /// helpers so the whole chunk retires as vector shifts, a gather, and
    /// one OR-reduced compare.
    ///
    /// Soundness is the same argument as [`Cache::hit_pair`], widened:
    /// direct-mapped read *hits* touch no replacement state, no dirty
    /// bits, no residency set — only the read counters, which the caller
    /// accounts in bulk (`WIDTH` guaranteed hits). Probing all lanes
    /// against a snapshot of the tag array is therefore bit-identical to
    /// probing them in order, duplicates included (a duplicate's first
    /// probe would not have changed what its second probe sees). When
    /// this returns `false`, at least one lane *may* miss and mutate, so
    /// the caller must redo the whole chunk with the exact in-order
    /// scalar path. The caller must ensure `geometry().assoc() == 1`.
    #[inline]
    pub(crate) fn read_direct_hits(&self, addrs: &[u64; kernel::WIDTH]) -> bool {
        debug_assert_eq!(self.geometry.assoc(), 1);
        let (block_shift, set_mask, tag_shift) = self.geometry.probe_fields();
        let sets = kernel::set_lanes(addrs, block_shift, set_mask);
        let tags = kernel::tag_lanes(addrs, tag_shift);
        let resident = kernel::gather(&self.tags, &sets);
        kernel::all_eq(&resident, &tags)
    }

    /// Whether the blocks containing `a1` and `a2` are *both* resident in
    /// a direct-mapped cache, without any side effects. The batched read
    /// path uses this to retire a two-block reference — the shape of every
    /// node load whose structure straddles a block boundary — on a single
    /// branch; on a miss it falls back to per-block probes, which redo the
    /// two compares but keep all mutation in one place. Skipping the
    /// per-block probes on the both-hit path changes nothing observable:
    /// direct-mapped hits touch no replacement state (see
    /// [`Cache::read_direct`]), only the read counters, which the caller
    /// accounts in bulk. The caller must ensure `geometry().assoc() == 1`
    /// and that the two addresses fall in distinct sets.
    #[inline]
    pub(crate) fn hit_pair(&self, a1: u64, a2: u64) -> bool {
        debug_assert_eq!(self.geometry.assoc(), 1);
        debug_assert_ne!(self.geometry.set_of(a1), self.geometry.set_of(a2));
        let s1 = self.geometry.set_of(a1) as usize;
        let s2 = self.geometry.set_of(a2) as usize;
        // Bitwise `&` retires both compares before the single branch.
        (self.tags[s1] == self.geometry.tag_of(a1)) & (self.tags[s2] == self.geometry.tag_of(a2))
    }

    fn probe_internal(&mut self, addr: u64, write: bool, demand: bool) -> Probe {
        self.clock += 1;
        self.last_victim = NO_VICTIM;
        let tag = self.geometry.tag_of(addr);
        debug_assert_ne!(tag, TAG_INVALID, "address tag collides with the sentinel");
        let set = self.geometry.set_of(addr);
        let start = self.set_start(set);
        let assoc = self.geometry.assoc() as usize;
        let clock = self.clock;

        // Hit path.
        for i in start..start + assoc {
            if self.tags[i] == tag {
                self.used[i] = clock;
                if write && self.policy == WritePolicy::WriteBack {
                    set_bit(&mut self.dirty, i, true);
                }
                return Probe {
                    hit: true,
                    writeback: false,
                };
            }
        }

        // Miss path.
        let mut seen = false;
        if demand {
            seen = self.ever_resident.contains(addr);
            self.stats.record_miss(write, seen);
        }

        // Write-through caches do not allocate on write misses.
        if write && self.policy == WritePolicy::WriteThrough {
            return Probe {
                hit: false,
                writeback: false,
            };
        }

        // Choose a victim: the first invalid way if any, else true LRU
        // (first way on stamp ties, matching `min_by_key`).
        let mut victim = start;
        let mut best = u64::MAX;
        for i in start..start + assoc {
            let key = if self.tags[i] != TAG_INVALID {
                self.used[i] + 1
            } else {
                0
            };
            if key < best {
                best = key;
                victim = i;
            }
        }
        let mut writeback = false;
        if self.tags[victim] != TAG_INVALID {
            writeback = bit(&self.dirty, victim) && self.policy == WritePolicy::WriteBack;
            self.stats.record_eviction(writeback);
            self.last_victim = self.geometry.block_addr(self.tags[victim], set);
        }
        self.tags[victim] = tag;
        set_bit(
            &mut self.dirty,
            victim,
            write && self.policy == WritePolicy::WriteBack,
        );
        self.used[victim] = clock;
        if !seen {
            // Re-inserting a known member is a no-op; only genuinely new
            // blocks (and fills, which skip the membership probe) pay it.
            self.ever_resident.insert(addr);
        }
        Probe {
            hit: false,
            writeback,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(sets: u64, assoc: u64) -> Cache {
        Cache::new(CacheGeometry::new(sets, 16, assoc), WritePolicy::WriteBack)
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny(4, 1);
        assert!(!c.access(0x100, false).hit);
        assert!(c.access(0x100, false).hit);
        assert!(c.access(0x10f, false).hit, "same block");
        assert_eq!(c.stats().misses(), 1);
        assert_eq!(c.stats().hits(), 2);
    }

    #[test]
    fn direct_mapped_conflict() {
        let mut c = tiny(4, 1);
        let cap = 4 * 16;
        assert!(!c.access(0, false).hit);
        assert!(!c.access(cap, false).hit, "same set, different tag");
        assert!(!c.access(0, false).hit, "got evicted");
        assert_eq!(c.stats().rereference_misses(), 1);
    }

    #[test]
    fn two_way_avoids_that_conflict() {
        let mut c = tiny(4, 2);
        let stride = 4 * 16; // maps to the same set
        assert!(!c.access(0, false).hit);
        assert!(!c.access(stride, false).hit);
        assert!(
            c.access(0, false).hit,
            "both ways hold the conflicting pair"
        );
        assert!(c.access(stride, false).hit);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = tiny(1, 2);
        c.access(0x00, false); // A
        c.access(0x10, false); // B
        c.access(0x00, false); // touch A; B is now LRU
        c.access(0x20, false); // C evicts B
        assert!(c.access(0x00, false).hit, "A stayed");
        assert!(!c.access(0x10, false).hit, "B was evicted");
    }

    #[test]
    fn writeback_of_dirty_victim() {
        let mut c = tiny(1, 1);
        c.access(0x00, true); // allocate dirty
        let p = c.access(0x10, false); // evicts dirty block
        assert!(p.writeback);
        assert_eq!(c.stats().writebacks(), 1);
    }

    #[test]
    fn write_through_never_writes_back_and_does_not_allocate_on_write_miss() {
        let mut c = Cache::new(CacheGeometry::new(1, 16, 1), WritePolicy::WriteThrough);
        c.access(0x00, true);
        assert!(!c.contains(0x00), "write miss does not allocate");
        c.access(0x00, false); // read fills
        c.access(0x00, true); // write hit, stays clean
        let p = c.access(0x10, false);
        assert!(!p.writeback);
        assert_eq!(c.stats().writebacks(), 0);
    }

    #[test]
    fn fill_does_not_count_as_demand() {
        let mut c = tiny(4, 1);
        c.fill(0x40);
        assert_eq!(c.stats().accesses(), 0);
        assert!(c.access(0x40, false).hit);
    }

    #[test]
    fn chunked_probe_agrees_with_scalar_hits() {
        // Fill a direct-mapped cache, then check read_direct_hits against
        // per-address contains() on mixed hit/miss chunks, including
        // duplicates within a chunk.
        let mut c = tiny(16, 1);
        for a in (0..256u64).step_by(16) {
            c.fill(a);
        }
        let all_hit = [0u64, 16, 32, 48, 0, 240, 128, 64];
        assert!(all_hit.iter().all(|&a| c.contains(a)));
        assert!(c.read_direct_hits(&all_hit));
        let one_miss = [0u64, 16, 32, 48, 0x1000, 240, 128, 64];
        assert!(!c.contains(0x1000));
        assert!(!c.read_direct_hits(&one_miss));
        // The probe itself mutated nothing: the same chunks answer the
        // same way, and stats recorded no accesses.
        assert!(c.read_direct_hits(&all_hit));
        assert_eq!(c.stats().accesses(), 0);
    }

    #[test]
    fn clear_resets_everything() {
        let mut c = tiny(4, 1);
        c.access(0x40, false);
        c.clear();
        assert!(!c.contains(0x40));
        assert_eq!(c.stats().accesses(), 0);
    }
}
