//! Simplified out-of-order pipeline model producing the paper's Figure 7
//! execution-time breakdown.
//!
//! The paper attributes each cycle with the rule: "if, in a cycle, the
//! processor retires the maximum number of instructions, that cycle is
//! counted as busy time; otherwise, the cycle is charged to the stall time
//! component corresponding to the first instruction that could not be
//! retired" (Section 4.4). This model reproduces that attribution with a
//! deliberately simple machine:
//!
//! * **busy** — instructions retired at the issue width;
//! * **instruction stall** — branch-misprediction pipeline refills (2-bit
//!   counters, Table 1);
//! * **data stall** — load misses. A *dependent* (pointer-chase) load can
//!   never be overlapped; independent load misses (array scans, copies)
//!   pipeline through the non-blocking caches and stall only when the
//!   MSHRs fill (ROB pressure is subsumed by that bound). TLB misses are
//!   also data stalls.
//! * **store stall** — cycles waiting for a slot in the (8-entry, Table 1)
//!   write buffer that drains at L2/memory speed.
//!
//! This is not a cycle-accurate RSIM replacement — see DESIGN.md for the
//! substitution argument. It preserves the property Figure 7 relies on:
//! execution time is dominated by the product of (dependent-miss count ×
//! miss penalty), which the paper's placement techniques reduce.

use crate::config::MachineConfig;
use crate::event::{Event, EventSink};
use crate::hierarchy::{AccessKind, Level, MemorySystem};
use crate::prefetch::HardwarePrefetcher;
use std::collections::VecDeque;

/// Processor-side parameters (paper Table 1).
#[derive(Clone, Copy, Debug)]
pub struct PipelineConfig {
    /// Instructions retired per cycle at best.
    pub issue_width: u32,
    /// Reorder-buffer entries; bounds run-ahead past an unresolved miss.
    pub rob_size: u32,
    /// Outstanding misses supported per cache (Table 1 "MSHRs 8, 8").
    pub mshrs: u32,
    /// Write-buffer entries between the write-through L1 and L2.
    pub write_buffer: u32,
    /// Fraction of branches mispredicted by the 2-bit-counter predictor.
    pub mispredict_rate: f64,
    /// Pipeline-refill penalty per misprediction, in cycles.
    pub mispredict_penalty: u32,
    /// Hardware prefetcher, if this machine variant has one.
    pub hw_prefetch: Option<HardwarePrefetcher>,
}

impl PipelineConfig {
    /// The paper's Table 1 processor: 4-wide, 64-entry ROB, 8 MSHRs,
    /// 8-entry write buffer, 2-bit branch predictors (modelled as a 6%
    /// misprediction rate with a 4-cycle refill).
    pub fn table1() -> Self {
        PipelineConfig {
            issue_width: 4,
            rob_size: 64,
            mshrs: 8,
            write_buffer: 8,
            mispredict_rate: 0.06,
            mispredict_penalty: 4,
            hw_prefetch: None,
        }
    }

    /// Table 1 machine with the hardware-prefetching scheme enabled.
    pub fn table1_hw_prefetch() -> Self {
        PipelineConfig {
            hw_prefetch: Some(HardwarePrefetcher::new(1)),
            ..Self::table1()
        }
    }
}

/// Execution-time breakdown in cycles (the four bar segments of Figure 7).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Breakdown {
    /// Cycles retiring at full width.
    pub busy: u64,
    /// Branch-misprediction (front-end) stalls.
    pub inst_stall: u64,
    /// Load-miss and TLB stalls.
    pub data_stall: u64,
    /// Write-buffer-full stalls.
    pub store_stall: u64,
}

impl Breakdown {
    /// Total execution cycles.
    pub fn total(&self) -> u64 {
        self.busy + self.inst_stall + self.data_stall + self.store_stall
    }

    /// This breakdown's total as a percentage of `base`'s total — the
    /// "normalized execution time" y-axis of Figures 6 and 7.
    pub fn normalized_to(&self, base: &Breakdown) -> f64 {
        if base.total() == 0 {
            0.0
        } else {
            100.0 * self.total() as f64 / base.total() as f64
        }
    }
}

/// The pipeline model: an [`EventSink`] that executes a workload's event
/// stream against a [`MemorySystem`] and accumulates a [`Breakdown`].
///
/// # Example
///
/// ```
/// use cc_sim::{MachineConfig, Pipeline, PipelineConfig};
/// use cc_sim::event::EventSink;
///
/// let mut p = Pipeline::new(PipelineConfig::table1(), MachineConfig::table1());
/// p.inst(8);          // two busy cycles at width 4
/// p.load(0x1000, 8);  // cold miss: data stall (the load itself is busy)
/// let b = p.finish();
/// assert_eq!(b.busy, 3);
/// assert!(b.data_stall > 0);
/// ```
#[derive(Debug)]
pub struct Pipeline {
    cfg: PipelineConfig,
    mem: MemorySystem,
    cycle: u64,
    breakdown: Breakdown,
    /// Instructions awaiting conversion into busy cycles.
    pending_insts: u64,
    /// Fractional branch-misprediction accumulator (deterministic).
    mispredict_debt: f64,
    /// Completion times of overlapped (independent) outstanding misses.
    outstanding: VecDeque<u64>,
    /// Completion times of write-buffer entries, oldest first.
    write_buffer: VecDeque<u64>,
}

impl Pipeline {
    /// Creates a pipeline over a cold memory system.
    pub fn new(cfg: PipelineConfig, machine: MachineConfig) -> Self {
        Pipeline {
            cfg,
            mem: MemorySystem::new(machine),
            cycle: 0,
            breakdown: Breakdown::default(),
            pending_insts: 0,
            mispredict_debt: 0.0,
            outstanding: VecDeque::new(),
            write_buffer: VecDeque::new(),
        }
    }

    /// The memory system, for inspecting cache statistics.
    pub fn memory(&self) -> &MemorySystem {
        &self.mem
    }

    /// Current simulated cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Finalizes pending instruction work and returns the breakdown.
    pub fn finish(&mut self) -> Breakdown {
        self.flush_insts();
        self.breakdown
    }

    /// Converts accumulated instructions into busy cycles.
    fn flush_insts(&mut self) {
        if self.pending_insts == 0 {
            return;
        }
        let width = u64::from(self.cfg.issue_width.max(1));
        let cycles = self.pending_insts.div_ceil(width);
        self.busy(cycles);
        self.pending_insts = 0;
    }

    fn busy(&mut self, cycles: u64) {
        self.breakdown.busy += cycles;
        self.advance(cycles);
    }

    fn advance(&mut self, cycles: u64) {
        self.cycle += cycles;
        // Background drains.
        while let Some(&front) = self.write_buffer.front() {
            if front <= self.cycle {
                self.write_buffer.pop_front();
            } else {
                break;
            }
        }
        while let Some(&front) = self.outstanding.front() {
            if front <= self.cycle {
                self.outstanding.pop_front();
            } else {
                break;
            }
        }
    }

    fn do_load(&mut self, addr: u64, size: u32, dep: bool) {
        self.pending_insts += 1;
        self.flush_insts();
        let l1_hit_time = self.mem.config().latency.l1_hit;
        let out = self.mem.access(addr, size, AccessKind::Read, self.cycle);

        if let (Some(pf), true) = (self.cfg.hw_prefetch, out.level > Level::L1) {
            pf.on_l1_miss(&mut self.mem, addr, self.cycle);
        }

        let penalty = out.cycles.saturating_sub(l1_hit_time);
        if penalty == 0 {
            return; // pipelined L1 hit
        }
        if dep {
            // Pointer chase: nothing can hide it.
            self.breakdown.data_stall += penalty;
            self.advance(penalty);
            return;
        }
        // Independent miss (array scans, reorganization copies): the
        // non-blocking caches pipeline these. The processor stalls only
        // when all MSHRs are busy; otherwise the miss is posted with a
        // completion bounded by both its own latency and the memory
        // pipe's initiation interval.
        if self.outstanding.len() >= self.cfg.mshrs as usize {
            if let Some(&front) = self.outstanding.front() {
                let wait = front.saturating_sub(self.cycle);
                self.breakdown.data_stall += wait;
                self.advance(wait);
            }
            self.outstanding.pop_front();
        }
        let ii = self.mem.config().latency.l1_miss.max(1);
        let back = self.outstanding.back().copied().unwrap_or(self.cycle);
        let completion = (self.cycle + penalty).max(back + ii);
        self.outstanding.push_back(completion);
    }

    fn do_store(&mut self, addr: u64, size: u32) {
        self.pending_insts += 1;
        self.flush_insts();
        let lat = self.mem.config().latency;
        let out = self.mem.access(addr, size, AccessKind::Write, self.cycle);
        // TLB translation stalls the store itself.
        let extra = out.cycles.saturating_sub(lat.l1_hit);
        if extra > 0 {
            self.breakdown.data_stall += extra;
            self.advance(extra);
        }
        // Drain time per buffer entry: the write path to L2 is pipelined
        // (write-back L2 + MSHRs absorb write-allocate fills), so entries
        // retire at L2-access cadence; a write that misses L2 occupies the
        // pipe a bit longer but is not serialized on the full memory
        // latency.
        let drain = match out.level {
            Level::L1 | Level::L2 => lat.l1_miss,
            Level::Memory => 2 * lat.l1_miss,
        };
        if self.write_buffer.len() >= self.cfg.write_buffer as usize {
            if let Some(&front) = self.write_buffer.front() {
                let wait = front.saturating_sub(self.cycle);
                self.breakdown.store_stall += wait;
                self.advance(wait);
            }
            self.write_buffer.pop_front();
        }
        let start = self
            .write_buffer
            .back()
            .copied()
            .unwrap_or(self.cycle)
            .max(self.cycle);
        self.write_buffer.push_back(start + drain);
    }

    fn do_branch(&mut self, n: u32) {
        self.pending_insts += u64::from(n);
        self.mispredict_debt +=
            f64::from(n) * self.cfg.mispredict_rate * f64::from(self.cfg.mispredict_penalty);
        if self.mispredict_debt >= 1.0 {
            let stall = self.mispredict_debt as u64;
            self.mispredict_debt -= stall as f64;
            self.flush_insts();
            self.breakdown.inst_stall += stall;
            self.advance(stall);
        }
    }

    fn do_prefetch(&mut self, addr: u64) {
        // A prefetch instruction occupies an issue slot (the overhead the
        // paper notes software prefetching pays) …
        self.pending_insts += 1;
        self.flush_insts();
        // … and an MSHR; drop it when none is free (non-binding).
        if self.mem.inflight_at(self.cycle) >= self.cfg.mshrs as usize {
            return;
        }
        self.mem.prefetch(addr, self.cycle);
    }
}

impl EventSink for Pipeline {
    fn event(&mut self, ev: Event) {
        match ev {
            Event::Inst(n) => self.pending_insts += u64::from(n),
            Event::Branch(n) => self.do_branch(n),
            Event::Load { addr, size, dep } => self.do_load(addr, size, dep),
            Event::Store { addr, size } => self.do_store(addr, size),
            Event::Prefetch { addr } => self.do_prefetch(addr),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pipe() -> Pipeline {
        Pipeline::new(PipelineConfig::table1(), MachineConfig::table1())
    }

    #[test]
    fn busy_cycles_follow_issue_width() {
        let mut p = pipe();
        p.inst(9); // ceil(9/4) = 3 cycles
        let b = p.finish();
        assert_eq!(b.busy, 3);
        assert_eq!(b.total(), 3);
    }

    #[test]
    fn dependent_miss_stalls_fully() {
        let mut p = pipe();
        p.load(0x10000, 8);
        let b = p.finish();
        // 8 (L1 miss) + 60 (L2 miss) + 30 (TLB) cycles of data stall;
        // plus 1 busy cycle for the load instruction itself.
        assert_eq!(b.data_stall, 98);
        assert_eq!(b.busy, 1);
    }

    #[test]
    fn independent_miss_stream_pipelines() {
        // 64 dependent misses serialize; 64 independent misses to the
        // same addresses stall only on MSHR pressure.
        let run = |dep: bool| {
            let mut p = pipe();
            for i in 0..64u64 {
                // 1 MB apart: every load misses L2 and a fresh TLB page.
                let a = 0x100000 * (i + 1);
                if dep {
                    p.load(a, 8);
                } else {
                    p.load_indep(a, 8);
                }
            }
            p.finish()
        };
        let b_dep = run(true);
        let b_ind = run(false);
        assert!(
            b_ind.data_stall * 2 < b_dep.data_stall,
            "streaming should be much cheaper: {} vs {}",
            b_ind.data_stall,
            b_dep.data_stall
        );
        assert!(b_ind.data_stall > 0, "MSHR pressure still shows up");
    }

    #[test]
    fn l1_hits_do_not_stall() {
        let mut p = pipe();
        p.load(0x2000, 8);
        let first = p.finish().data_stall;
        p.load(0x2008, 8);
        let after = p.finish().data_stall;
        assert_eq!(first, after, "second load hit L1: no added stall");
    }

    #[test]
    fn store_burst_fills_write_buffer() {
        let mut p = pipe();
        // Warm the TLB page so stores don't stall on translation.
        p.load(0x3000, 8);
        // 32 stores, all L2 hits (drain 8 cycles each), buffer holds 8.
        for i in 0..32 {
            p.store(0x3000 + i * 8, 8);
        }
        let b = p.finish();
        assert!(b.store_stall > 0, "buffer must have filled: {b:?}");
    }

    #[test]
    fn branches_accumulate_inst_stall() {
        let mut p = pipe();
        for _ in 0..100 {
            p.branch(10);
        }
        let b = p.finish();
        // 1000 branches * 0.06 * 4 = 240 cycles of refill (floating-point
        // accumulation may leave a cycle of debt unflushed).
        assert!((239..=240).contains(&b.inst_stall), "{}", b.inst_stall);
    }

    #[test]
    fn software_prefetch_hides_latency() {
        let mut base = pipe();
        base.inst(400);
        base.load(0x50000, 8);
        let b_base = base.finish();

        let mut sw = pipe();
        sw.prefetch(0x50000);
        sw.inst(400); // 100 cycles of work to hide the latency behind
        sw.load(0x50000, 8);
        let b_sw = sw.finish();
        assert!(
            b_sw.data_stall < b_base.data_stall,
            "prefetch should hide the miss: {} vs {}",
            b_sw.data_stall,
            b_base.data_stall
        );
    }

    #[test]
    fn hw_prefetch_helps_sequential_access() {
        let run = |cfg: PipelineConfig| {
            let mut p = Pipeline::new(cfg, MachineConfig::table1());
            for i in 0..512u64 {
                p.load(0x10000 + i * 128, 8);
                p.inst(40);
            }
            p.finish()
        };
        let base = run(PipelineConfig::table1());
        let hw = run(PipelineConfig::table1_hw_prefetch());
        assert!(
            hw.total() < base.total(),
            "sequential blocks should benefit from next-line prefetch: {} vs {}",
            hw.total(),
            base.total()
        );
    }

    #[test]
    fn normalized_to_base() {
        let base = Breakdown {
            busy: 50,
            inst_stall: 0,
            data_stall: 50,
            store_stall: 0,
        };
        let better = Breakdown {
            busy: 50,
            inst_stall: 0,
            data_stall: 10,
            store_stall: 0,
        };
        assert!((better.normalized_to(&base) - 60.0).abs() < 1e-12);
        assert!((base.normalized_to(&base) - 100.0).abs() < 1e-12);
    }
}
