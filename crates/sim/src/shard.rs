//! Set-sharded parallel trace replay.
//!
//! The paper's measurements are pure cache-residency effects: per-level
//! miss counts fully determine the Section 5.1 latency formula, and a
//! set-indexed cache *partitions* by set — a reference to set `s` can only
//! hit, miss, evict, or re-reference lines of set `s`. That makes the
//! replay embarrassingly parallel along an axis the batched engine
//! ([`MemorySystem::access_batch`]) cannot exploit: split the trace's
//! block-level probes by set index, replay each shard against its own
//! slice of cache state, and merge the counters with a plain sum.
//!
//! # Why the partition is exact
//!
//! [`ShardPlan`] routes every probe by the *overlap field*: the address
//! bits that sit inside **both** caches' set-index fields,
//! `[max(bs₁, bs₂), min(bs₁ + log₂ c₁, bs₂ + log₂ c₂))` for block shifts
//! `bsᵢ` and set counts `cᵢ`. Three facts follow:
//!
//! 1. Two addresses in the same L1 block (or the same L2 block) agree on
//!    all bits at or above both block shifts, hence on the overlap field:
//!    **every block is wholly owned by one shard.**
//! 2. Two addresses with the same L1 set index agree on the whole L1 set
//!    field, a superset of the overlap field — so the router is constant
//!    on each L1 set, and likewise on each L2 set: **every set is wholly
//!    owned by one shard**, for *any* shard count (the router reduces the
//!    overlap value modulo the count, still a pure function of it).
//! 3. A shard therefore sees *all* the traffic its sets receive and *none*
//!    of any other set's. True-LRU state is per-set, the `ever_resident`
//!    re-reference sets partition by block, and the prefetch in-flight
//!    table keys by L2 block (whose L1 and L2 fills land in the same
//!    shard, by fact 1) — every piece of replay state decomposes.
//!
//! Within a shard, probes keep their original relative order (the splitter
//! walks the trace once, appending in order), so per-set LRU decisions are
//! bit-identical to a serial replay: stamps differ, comparisons do not.
//!
//! What does *not* shard is the TLB — fully associative, global LRU, no
//! set structure. [`ShardedTrace`] therefore carries a dedicated serial
//! *TLB lane* of page translations (replayed on the calling thread while
//! the shard workers run) and the cycle total decomposes additively:
//! block-probe cycles per shard lane + TLB penalties from the TLB lane +
//! a split-time base (the write-buffer `l1_hit` per store and the
//! memo-resolved guaranteed hits, both stream-constants).
//!
//! # Degradation
//!
//! Shard workers degrade the way sweep cells do: each worker body runs
//! under `catch_unwind`; a panicking worker falls back to a serial
//! reference replay of its own lane (`access_block` per entry — the exact
//! slow path) on the same state, and the replayer counts
//! [`ShardDegradation::worker_panics`] / `fallback_lanes`. The fallback is
//! exact whenever the panic fired before the fast replay mutated anything
//! (the injected-fault class `cc-fault` exercises); a panic in the middle
//! of a genuinely buggy replay is still contained, surfaced by the
//! counters, and the lane is re-replayed best-effort (a second failure
//! marks the lane lost rather than propagating). Corrupt input buffers are
//! repaired at split time ([`TraceBuf::repair`]) and counted, mirroring
//! [`crate::batch::BatchSink`]'s validate-repair-fallback contract.
//!
//! # Winning on wall-clock, not just the model
//!
//! Three mechanisms keep the *measured* replay time close to the modeled
//! critical path instead of losing it to overhead:
//!
//! * **Chunked probe kernel.** The lane fast path retires runs of
//!   [`kernel::WIDTH`] reads as one vectorizable all-hit probe
//!   ([`crate::cache::Cache::read_direct_hits`]); direct-mapped read hits
//!   mutate nothing, so the chunk is bit-exact, and any possible miss
//!   re-runs the chunk on the exact in-order scalar path.
//! * **Pooled, parallel splits.** [`SplitPool`] recycles `Lane`/`TlbLane`
//!   buffers across splits (no per-split allocation in the steady state),
//!   and large splits fan the lane fill out over worker threads — every
//!   walker derives the same memo state because it is a pure function of
//!   the stream, so the parallel split is bit-identical to the serial one.
//! * **Work-queue replay.** [`ShardedReplayer::replay`] claims lanes from
//!   an atomic queue in longest-lane-first order with
//!   `min(cores, shards)` workers (the caller joins after the serial TLB
//!   lane), so a hot set-shard starts first instead of serializing the
//!   merge, and a small host never oversubscribes itself with idle
//!   threads.
//!
//! The whole module is pinned to the scalar and batched engines by
//! differential property tests (`tests/shard_differential.rs`): identical
//! statistics, cycles, and counts across shard counts, machines, and
//! injected faults.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::batch::{PackedKind, TraceBuf};
use crate::cache::ReadTally;
use crate::config::{Latency, MachineConfig};
use crate::hierarchy::MemorySystem;
use crate::kernel;
use crate::stats::{CacheStats, TlbStats};
use crate::tlb::Tlb;
use crate::CacheGeometry;

/// "Nothing memoized" sentinel (same convention as the batch cursor).
const NO_MEMO: u64 = u64::MAX;

/// Block-lane entry kinds.
const OP_READ: u8 = 0;
const OP_WRITE: u8 = 1;
const OP_PREFETCH: u8 = 2;

/// TLB-lane entry kinds. Stores group: a store's pages accumulate one
/// *combined* missed flag, because the scalar write path charges at most
/// one TLB penalty per store (the write-buffer override).
const TLB_LOAD: u8 = 0;
const TLB_STORE_FIRST: u8 = 1;
const TLB_STORE_CONT: u8 = 2;

/// The routing function from addresses to shards for one machine.
///
/// See the module docs for the correctness argument. The usable shard
/// count is bounded by the width of the L1∩L2 set-field overlap (capped at
/// 16 bits); a request beyond the bound clamps, and a machine with no
/// overlap (the tiny test preset) clamps to one shard — sharded replay
/// then degenerates to a serial replay, still bit-exact.
#[derive(Clone, Copy, Debug)]
pub struct ShardPlan {
    shards: usize,
    /// Low bit of the overlap field.
    lo: u32,
    /// Mask of the overlap field's width (applied after shifting by `lo`).
    mask: u64,
}

impl ShardPlan {
    /// Computes the overlap field `[lo, lo + width)` for `machine`.
    fn overlap(machine: &MachineConfig) -> (u32, u32) {
        let l1_bs = machine.l1.block_bytes().trailing_zeros();
        let l2_bs = machine.l2.block_bytes().trailing_zeros();
        let l1_hi = l1_bs + machine.l1.sets().trailing_zeros();
        let l2_hi = l2_bs + machine.l2.sets().trailing_zeros();
        let lo = l1_bs.max(l2_bs);
        let hi = l1_hi.min(l2_hi);
        (lo, hi.saturating_sub(lo).min(16))
    }

    /// The largest exact shard count `machine`'s geometry supports.
    pub fn max_shards(machine: &MachineConfig) -> usize {
        let (_, width) = Self::overlap(machine);
        1usize << width
    }

    /// A plan for `machine` with `requested` shards, clamped to
    /// `1..=max_shards(machine)`.
    pub fn new(machine: &MachineConfig, requested: usize) -> Self {
        let (lo, width) = Self::overlap(machine);
        ShardPlan {
            shards: requested.clamp(1, 1usize << width),
            lo,
            mask: (1u64 << width) - 1,
        }
    }

    /// The effective shard count.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning `addr`'s L1 set, L2 set, L1 block, and L2 block.
    pub fn shard_of(&self, addr: u64) -> usize {
        (((addr >> self.lo) & self.mask) as usize) % self.shards
    }
}

/// One shard's block-probe lane, structure-of-arrays like [`TraceBuf`].
#[derive(Clone, Debug, Default)]
struct Lane {
    ops: Vec<u8>,
    /// Block base address (`OP_READ`/`OP_WRITE`) or raw prefetch address.
    addrs: Vec<u64>,
    /// Event time relative to the split's first event (the replayer adds
    /// its persistent clock), feeding prefetch arrival/wait arithmetic.
    nows: Vec<u64>,
    /// Maximal runs of consecutive `OP_READ` entries as `(start, end)`
    /// index pairs, maintained incrementally at push time. This moves the
    /// chunk-uniformity scan out of the replay loop: a [`kernel::WIDTH`]
    /// window starting at `i` is all-reads iff `i` lies in a run whose
    /// end is at least `i + WIDTH`, so [`replay_lane_fast`] walks this
    /// list with a cursor instead of re-inspecting `WIDTH` op bytes per
    /// position. `u32` indices: a single split holding 2^32 lane entries
    /// would be a ≥64 GiB trace segment, far past any segment cap.
    read_runs: Vec<(u32, u32)>,
}

impl Lane {
    fn push(&mut self, op: u8, addr: u64, now: u64) {
        if op == OP_READ {
            let idx = self.ops.len() as u32;
            match self.read_runs.last_mut() {
                Some(run) if run.1 == idx => run.1 = idx + 1,
                _ => self.read_runs.push((idx, idx + 1)),
            }
        }
        self.ops.push(op);
        self.addrs.push(addr);
        self.nows.push(now);
    }

    /// Empties the lane, keeping its allocations for reuse.
    fn clear(&mut self) {
        self.ops.clear();
        self.addrs.clear();
        self.nows.clear();
        self.read_runs.clear();
    }
}

/// The serial TLB lane: space-salted page keys in stream order.
#[derive(Clone, Debug, Default)]
struct TlbLane {
    ops: Vec<u8>,
    pages: Vec<u64>,
}

impl TlbLane {
    /// Empties the lane, keeping its allocations for reuse.
    fn clear(&mut self) {
        self.ops.clear();
        self.pages.clear();
    }
}

/// One reusable set of split buffers: the per-shard block lanes plus the
/// TLB lane. These are exactly the allocations a split performs; pooling
/// them is what makes steady-state splits allocation-free.
// Field order per cc-lint SPAN-01: the 48-byte TLB lane leads so it sits
// in the first cache line instead of straddling the boundary after the
// lane vector's header.
#[derive(Debug, Default)]
struct SplitBuffers {
    tlb: TlbLane,
    lanes: Vec<Lane>,
}

impl SplitBuffers {
    /// Empties every buffer and sizes the lane set to `shards`, keeping
    /// allocations wherever the shard count allows.
    fn reset(&mut self, shards: usize) {
        self.lanes.resize_with(shards, Lane::default);
        for lane in &mut self.lanes {
            lane.clear();
        }
        self.tlb.clear();
    }
}

/// A pool of reusable split buffers, shared across replays (and across
/// threads — all methods take `&self`).
///
/// [`ShardedTrace::split_pooled`] draws its `Lane`/`TlbLane` vectors from
/// here instead of allocating, and [`SplitPool::recycle`] returns a
/// consumed split's buffers with their capacity intact. A warm
/// pool therefore makes the split step allocation-free in the steady
/// state: the only per-split work left is the (possibly parallel) walk
/// that fills the lanes. The trace store owns one so every figure sweep
/// and benchmark shares the same warm buffers.
#[derive(Debug, Default)]
pub struct SplitPool {
    free: Mutex<Vec<SplitBuffers>>,
}

impl SplitPool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes a buffer set from the pool, or a fresh (empty) one when the
    /// pool is dry. The split resets/sizes it either way.
    fn acquire(&self) -> SplitBuffers {
        self.free
            .lock()
            .expect("split pool")
            .pop()
            .unwrap_or_default()
    }

    /// Returns a consumed split's buffers to the pool, cleared but with
    /// their capacity intact, ready for the next
    /// [`ShardedTrace::split_pooled`].
    pub fn recycle(&self, split: ShardedTrace) {
        let mut sb = SplitBuffers {
            lanes: split.lanes,
            tlb: split.tlb_lane,
        };
        sb.reset(sb.lanes.len());
        self.free.lock().expect("split pool").push(sb);
    }

    /// Buffer sets currently idle in the pool.
    pub fn idle(&self) -> usize {
        self.free.lock().expect("split pool").len()
    }
}

/// A trace split into per-shard block lanes plus the serial TLB lane —
/// the reusable product of one [`ShardedTrace::split`] pass, replayable
/// any number of times (and by any number of fresh replayers).
#[derive(Clone, Debug)]
pub struct ShardedTrace {
    shards: usize,
    lanes: Vec<Lane>,
    tlb_lane: TlbLane,
    /// Stream-constant cycles resolved at split time: `l1_hit` per store
    /// (the write-buffer base) and per memo-resolved guaranteed L1 hit.
    base_cycles: u64,
    /// Guaranteed L1 hits the batch cursor's same-block memo would skip —
    /// counted here, folded into the merged statistics at replay time.
    l1_memo_reads: u64,
    /// Guaranteed TLB hits the same-page memo would skip.
    tlb_memo_accesses: u64,
    insts: u64,
    branches: u64,
    events: u64,
    repaired_bufs: u64,
    repaired_entries: u64,
}

impl ShardedTrace {
    /// Splits `bufs` into `plan.shards()` block lanes plus the TLB lane,
    /// resolving the batch cursor's stream-determined memoizations along
    /// the way (their hits are cycle/statistic constants, so they never
    /// reach a lane at all). Buffers that fail [`TraceBuf::validate`] are
    /// repaired on a clone and counted — the splitter's analogue of
    /// [`crate::batch::BatchSink`]'s corrupt-batch fallback.
    pub fn split(machine: &MachineConfig, plan: &ShardPlan, bufs: &[TraceBuf]) -> ShardedTrace {
        Self::split_impl(machine, plan, bufs, true, SplitBuffers::default())
    }

    /// [`ShardedTrace::split`] drawing its lane buffers from `pool`
    /// instead of allocating. Bit-identical output; when the pool holds a
    /// recycled buffer set of comparable capacity, the split performs no
    /// allocation at all. Return the consumed split with
    /// [`SplitPool::recycle`] to keep the loop warm.
    pub fn split_pooled(
        machine: &MachineConfig,
        plan: &ShardPlan,
        bufs: &[TraceBuf],
        pool: &SplitPool,
    ) -> ShardedTrace {
        Self::split_impl(machine, plan, bufs, true, pool.acquire())
    }

    /// [`ShardedTrace::split`] with the guaranteed-hit memoizations
    /// disabled: every block probe and page translation reaches a lane.
    /// Required when the replaying lanes attribute misses — a memo-skip
    /// is invisible to attribution, so per-region totals would fall
    /// short of the merged statistics. Cycles and statistics are
    /// unchanged either way (the memos only skip probes whose outcome
    /// is already determined).
    pub fn split_for_attribution(
        machine: &MachineConfig,
        plan: &ShardPlan,
        bufs: &[TraceBuf],
    ) -> ShardedTrace {
        Self::split_impl(machine, plan, bufs, false, SplitBuffers::default())
    }

    fn split_impl(
        machine: &MachineConfig,
        plan: &ShardPlan,
        bufs: &[TraceBuf],
        memoize: bool,
        mut buffers: SplitBuffers,
    ) -> ShardedTrace {
        let shards = plan.shards();
        buffers.reset(shards);

        // Repair pre-pass: every walker must see the same repaired stream,
        // so corrupt buffers are cloned and repaired once, up front.
        let mut repaired_bufs = 0u64;
        let mut repaired_entries = 0u64;
        let mut owned: Vec<TraceBuf> = Vec::new();
        let mut slots: Vec<Option<usize>> = Vec::with_capacity(bufs.len());
        for src in bufs {
            if src.validate().is_ok() {
                slots.push(None);
            } else {
                let mut repaired = src.clone();
                repaired_bufs += 1;
                repaired_entries += repaired.repair() as u64;
                slots.push(Some(owned.len()));
                owned.push(repaired);
            }
        }
        let refs: Vec<&TraceBuf> = slots
            .iter()
            .zip(bufs)
            .map(|(slot, src)| match slot {
                Some(i) => &owned[*i],
                None => src,
            })
            .collect();

        let entries: usize = refs.iter().map(|b| b.len()).sum();
        let threads = std::thread::available_parallelism()
            .map_or(1, |n| n.get())
            .min(shards);
        let totals = if threads > 1 && entries >= PARALLEL_SPLIT_MIN_ENTRIES {
            // Parallel fill: each worker walks the whole (shared, read-only)
            // stream and appends only its own contiguous range of shard
            // lanes. The memo/routing state every walker needs is a pure
            // function of the stream, so each derives it identically and
            // the lanes come out bit-identical to a serial fill. The
            // caller's own walk produces the TLB lane and the
            // stream-constant totals concurrently.
            let per = shards.div_ceil(threads);
            let lanes = &mut buffers.lanes;
            let tlb = &mut buffers.tlb;
            std::thread::scope(|s| {
                for (g, group) in lanes.chunks_mut(per).enumerate() {
                    let refs = &refs;
                    s.spawn(move || {
                        let lo = g * per;
                        let hi = lo + group.len();
                        walk_stream(
                            machine,
                            plan,
                            refs,
                            memoize,
                            |shard, op, addr, now| {
                                if (lo..hi).contains(&shard) {
                                    group[shard - lo].push(op, addr, now);
                                }
                            },
                            None,
                        );
                    });
                }
                walk_stream(machine, plan, &refs, memoize, |_, _, _, _| {}, Some(tlb))
            })
        } else {
            let SplitBuffers { lanes, tlb } = &mut buffers;
            walk_stream(
                machine,
                plan,
                &refs,
                memoize,
                |shard, op, addr, now| lanes[shard].push(op, addr, now),
                Some(tlb),
            )
        };

        let SplitBuffers { lanes, tlb } = buffers;
        ShardedTrace {
            shards,
            lanes,
            tlb_lane: tlb,
            base_cycles: totals.base_cycles,
            l1_memo_reads: totals.l1_memo_reads,
            tlb_memo_accesses: totals.tlb_memo_accesses,
            insts: totals.insts,
            branches: totals.branches,
            events: totals.events,
            repaired_bufs,
            repaired_entries,
        }
    }

    /// The shard count this split was routed for.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Events in the underlying stream (the replayer's clock advance).
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Total block-lane entries across all shards.
    pub fn lane_entries(&self) -> usize {
        self.lanes.iter().map(|l| l.ops.len()).sum()
    }

    /// TLB-lane entries.
    pub fn tlb_entries(&self) -> usize {
        self.tlb_lane.ops.len()
    }

    /// Buffers repaired (validate-failed) during the split.
    pub fn repaired_bufs(&self) -> u64 {
        self.repaired_bufs
    }

    /// Entries dropped by those repairs.
    pub fn repaired_entries(&self) -> u64 {
        self.repaired_entries
    }
}

/// Entry count below which a parallel split is not worth its thread
/// spawns: a lane walk runs at hundreds of entries per microsecond, so a
/// stream this small splits serially faster than a thread starts.
const PARALLEL_SPLIT_MIN_ENTRIES: usize = 1 << 14;

/// Stream-constant totals one full walk produces. Every walker of the
/// same (repaired) stream derives identical values — they are pure
/// functions of the event sequence, independent of which lanes the
/// walker fills.
#[derive(Debug, Default)]
struct WalkTotals {
    base_cycles: u64,
    l1_memo_reads: u64,
    tlb_memo_accesses: u64,
    insts: u64,
    branches: u64,
    events: u64,
}

/// One walk over the (already repaired) stream: decomposes every event
/// into block probes and page translations, resolving the batch cursor's
/// stream-determined memoizations exactly as `access_batch` would at
/// replay (the memos are set by loads/stores and cleared by
/// stores/prefetches — pure functions of the stream). Each block probe is
/// handed to `block(shard, op, addr, now)`; the caller decides whether to
/// append it (and to which lane). Page translations append to `tlb_lane`
/// when provided; a `None` walker skips all TLB work (parallel lane
/// fillers only need the block routing) and must ignore the TLB fields of
/// the returned totals.
fn walk_stream(
    machine: &MachineConfig,
    plan: &ShardPlan,
    bufs: &[&TraceBuf],
    memoize: bool,
    mut block: impl FnMut(usize, u8, u64, u64),
    mut tlb_lane: Option<&mut TlbLane>,
) -> WalkTotals {
    let lat = machine.latency;
    let l1_geo = machine.l1;
    let block_bytes = l1_geo.block_bytes();
    let track_tlb = machine.tlb_entries > 0 && tlb_lane.is_some();
    let page_bytes = machine.page_bytes;
    let page_pow2 = page_bytes.is_power_of_two();
    let page_shift = page_bytes.trailing_zeros();
    let page_of = |a: u64| {
        if page_pow2 {
            a >> page_shift
        } else {
            a / page_bytes
        }
    };
    let mut t = WalkTotals::default();
    let mut memo_block = NO_MEMO;
    let mut memo_page = NO_MEMO;
    let mut now = 0u64;
    for buf in bufs {
        let salt = u64::from(buf.space()) << 32;
        let (kinds, addrs, sizes, ticks) = buf.lanes();
        for i in 0..kinds.len() {
            let (addr, size) = (addrs[i], sizes[i]);
            now += 1;
            t.events += 1;
            match kinds[i] {
                PackedKind::Inst => t.insts += addr,
                PackedKind::Branch => t.branches += addr,
                PackedKind::Gap => {
                    now += addr - 1;
                    t.events += addr - 1;
                }
                PackedKind::Prefetch => {
                    block(plan.shard_of(addr), OP_PREFETCH, addr, now);
                    memo_block = NO_MEMO;
                }
                PackedKind::LoadDep | PackedKind::LoadIndep => {
                    let span = u64::from(size).max(1) - 1;
                    if track_tlb {
                        let tlb = tlb_lane.as_deref_mut().expect("track_tlb implies a lane");
                        let first_p = page_of(addr);
                        let last_p = page_of(addr + span);
                        let mut p = first_p;
                        if memoize && memo_page == (salt | first_p) {
                            t.tlb_memo_accesses += 1;
                            p += 1;
                        }
                        while p <= last_p {
                            tlb.ops.push(TLB_LOAD);
                            tlb.pages.push(salt | p);
                            p += 1;
                        }
                        memo_page = salt | last_p;
                    }
                    let first_b = l1_geo.block_of(addr);
                    let last_b = l1_geo.block_of(addr + span);
                    let mut b = first_b;
                    if memoize && memo_block == first_b {
                        t.l1_memo_reads += 1;
                        t.base_cycles += lat.l1_hit;
                        b += block_bytes;
                    }
                    while b <= last_b {
                        // Lane entries carry the first referenced byte of
                        // each block (shard_of and every kernel probe mask
                        // to the block internally), so lane-level
                        // attribution resolves precise regions and fields.
                        block(plan.shard_of(b), OP_READ, addr.max(b), now);
                        b += block_bytes;
                    }
                    memo_block = last_b;
                }
                PackedKind::Store => {
                    let span = u64::from(size).max(1) - 1;
                    if track_tlb {
                        let tlb = tlb_lane.as_deref_mut().expect("track_tlb implies a lane");
                        let mut p = page_of(addr);
                        let last_p = page_of(addr + span);
                        let mut op = TLB_STORE_FIRST;
                        while p <= last_p {
                            tlb.ops.push(op);
                            tlb.pages.push(salt | p);
                            op = TLB_STORE_CONT;
                            p += 1;
                        }
                        memo_page = salt | page_of(addr + span);
                    }
                    let mut b = l1_geo.block_of(addr);
                    let last_b = l1_geo.block_of(addr + span);
                    while b <= last_b {
                        block(plan.shard_of(b), OP_WRITE, addr.max(b), now);
                        b += block_bytes;
                    }
                    // The scalar write path overrides its cycles to
                    // `l1_hit` (+ one TLB penalty, accounted by the
                    // store group in the TLB lane).
                    t.base_cycles += lat.l1_hit;
                    memo_block = NO_MEMO;
                }
            }
            let tick = u64::from(ticks[i]);
            now += tick;
            t.events += tick;
        }
    }
    t
}

/// Degradation counters for a [`ShardedReplayer`] — the shard analogue of
/// sweep-cell retry accounting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardDegradation {
    /// Worker bodies that panicked (injected or genuine).
    pub worker_panics: u64,
    /// Lanes salvaged by the serial reference fallback.
    pub fallback_lanes: u64,
    /// Lanes whose fallback *also* failed; their statistics are absent
    /// from the merge (never silently wrong — this counter is the signal).
    pub lost_lanes: u64,
    /// Corrupt buffers repaired at split time.
    pub repaired_bufs: u64,
}

/// Per-replay totals and per-lane wall times.
#[derive(Clone, Debug)]
pub struct ShardReplayOutcome {
    /// Section 5.1 memory cycles contributed by this replay.
    pub cycles: u64,
    /// Events consumed (the replayer's clock advanced by this much).
    pub events: u64,
    /// Wall nanoseconds each shard worker spent, measured inside the
    /// worker — on a machine with one core per shard, the replay's
    /// critical path is `max(lane_nanos) ⊔ tlb_nanos`.
    pub lane_nanos: Vec<u64>,
    /// Wall nanoseconds the serial TLB lane took.
    pub tlb_nanos: u64,
}

impl ShardReplayOutcome {
    /// The modeled critical-path latency: the slowest lane, given one
    /// core per shard (the TLB lane runs concurrently on the caller).
    pub fn critical_path_nanos(&self) -> u64 {
        self.lane_nanos
            .iter()
            .copied()
            .max()
            .unwrap_or(0)
            .max(self.tlb_nanos)
    }
}

/// What one shard worker reports back.
struct LaneOutcome {
    cycles: u64,
    nanos: u64,
    panicked: bool,
    lost: bool,
}

/// Replays [`ShardedTrace`]s against persistent per-shard cache state —
/// the sharded counterpart of [`crate::MemorySink`] /
/// [`crate::batch::BatchSink`], producing bit-identical statistics and
/// cycles.
///
/// State persists across [`ShardedReplayer::replay`] calls (each split is
/// one *segment* of a longer stream), so figure loops can interleave
/// measurement checkpoints with replay, and
/// [`ShardedReplayer::reset_stats`] separates warm-up from steady state
/// exactly like the scalar sink: counters clear, cache/TLB contents stay.
pub struct ShardedReplayer {
    machine: MachineConfig,
    plan: ShardPlan,
    /// One memory system per shard, TLB-less (`tlb_entries` zeroed): each
    /// owns the L1/L2 sets and in-flight entries its shard routes to.
    lanes: Vec<MemorySystem>,
    /// The one global TLB, fed by the serial TLB lane.
    tlb: Option<Tlb>,
    now: u64,
    cycles: u64,
    insts: u64,
    branches: u64,
    events: u64,
    degradation: ShardDegradation,
}

impl ShardedReplayer {
    /// Creates a replayer for `machine` with `requested` shards (clamped
    /// by [`ShardPlan::new`]).
    pub fn new(machine: MachineConfig, requested: usize) -> Self {
        let plan = ShardPlan::new(&machine, requested);
        let mut lane_machine = machine;
        lane_machine.tlb_entries = 0;
        let lanes = (0..plan.shards())
            .map(|_| MemorySystem::new(lane_machine))
            .collect();
        let tlb =
            (machine.tlb_entries > 0).then(|| Tlb::new(machine.tlb_entries, machine.page_bytes));
        ShardedReplayer {
            machine,
            plan,
            lanes,
            tlb,
            now: 0,
            cycles: 0,
            insts: 0,
            branches: 0,
            events: 0,
            degradation: ShardDegradation::default(),
        }
    }

    /// The routing plan (effective shard count, overlap field).
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// Effective shard count.
    pub fn shards(&self) -> usize {
        self.plan.shards()
    }

    /// Splits `bufs` with this replayer's plan and machine, choosing the
    /// attribution-safe (unmemoized) split automatically while
    /// attribution is enabled.
    pub fn split(&self, bufs: &[TraceBuf]) -> ShardedTrace {
        if self.attribution_enabled() {
            ShardedTrace::split_for_attribution(&self.machine, &self.plan, bufs)
        } else {
            ShardedTrace::split(&self.machine, &self.plan, bufs)
        }
    }

    /// [`ShardedReplayer::split`] drawing lane buffers from `pool`
    /// (see [`ShardedTrace::split_pooled`]); the attribution-safe
    /// unmemoized split is chosen automatically, as in `split`.
    pub fn split_pooled(&self, bufs: &[TraceBuf], pool: &SplitPool) -> ShardedTrace {
        let memoize = !self.attribution_enabled();
        ShardedTrace::split_impl(&self.machine, &self.plan, bufs, memoize, pool.acquire())
    }

    /// Starts attributing every lane's accesses and evictions to the
    /// regions of `map`. Workers route through the serial reference
    /// replay (the memoizing fast path cannot observe per-probe
    /// outcomes), and [`ShardedReplayer::split`] switches to the
    /// unmemoized split; statistics and cycles are unchanged. Splits
    /// produced *before* enabling attribution carry resolved memo hits
    /// that attribution cannot see — re-split for complete totals.
    pub fn enable_attribution(&mut self, map: std::sync::Arc<cc_obs::RegionMap>) {
        for lane in &mut self.lanes {
            lane.enable_attribution(std::sync::Arc::clone(&map));
        }
    }

    /// Whether attribution is enabled on the lanes.
    pub fn attribution_enabled(&self) -> bool {
        self.lanes.iter().any(MemorySystem::attribution_enabled)
    }

    /// Additionally attributes each lane's demand accesses to struct
    /// fields. Every lane shares the same `map`, so the merged profile's
    /// field tallies sum cleanly (see [`cc_obs::MissProfile::merge`]).
    ///
    /// # Panics
    ///
    /// Panics if [`ShardedReplayer::enable_attribution`] was not called.
    pub fn enable_field_attribution(&mut self, map: std::sync::Arc<cc_obs::FieldMap>) {
        for lane in &mut self.lanes {
            lane.enable_field_attribution(std::sync::Arc::clone(&map));
        }
    }

    /// The lanes' merged attribution profile, if enabled: a plain sum —
    /// lanes own disjoint cache sets, so their per-region tallies and
    /// conflict pairs are disjoint contributions to the same totals.
    pub fn attribution(&self) -> Option<cc_obs::MissProfile> {
        let mut merged: Option<cc_obs::MissProfile> = None;
        for lane in &self.lanes {
            if let Some(p) = lane.attribution() {
                match &mut merged {
                    Some(m) => m.merge(p),
                    None => merged = Some(p.clone()),
                }
            }
        }
        merged
    }

    /// Replays one split segment by draining a work queue of lanes with
    /// `min(host cores, shards)` workers, merging cycles and statistics
    /// exactly.
    ///
    /// Lanes are claimed from an atomic queue in longest-lane-first order
    /// (classic longest-processing-time scheduling): the hot set-shard
    /// starts immediately and can never be picked up last, where it would
    /// serialize the merge. The serial TLB lane runs on the caller
    /// thread — it shares no state with the block lanes — after which the
    /// caller joins the queue as one more worker. On a host with fewer
    /// cores than shards this degrades to fewer (down to zero) spawned
    /// threads draining the same queue, instead of `shards` threads
    /// taking turns on the same core.
    ///
    /// # Panics
    ///
    /// Panics if `split` was routed for a different shard count.
    pub fn replay(&mut self, split: &ShardedTrace) -> ShardReplayOutcome {
        self.replay_poisoned(split, &[])
    }

    /// [`ShardedReplayer::replay`] with fault injection: workers whose
    /// index is in `poisoned` panic on entry and must come back through
    /// the serial fallback — the hook `cc-fault`'s shard plane drives.
    pub fn replay_poisoned(
        &mut self,
        split: &ShardedTrace,
        poisoned: &[usize],
    ) -> ShardReplayOutcome {
        assert_eq!(
            split.shards,
            self.lanes.len(),
            "split shard count does not match this replayer"
        );
        let base_now = self.now;
        let tlb_miss_lat = self.machine.latency.tlb_miss;
        let n = self.lanes.len();
        // Longest-lane-first claim order (ties by index, stable).
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(split.lanes[i].ops.len()));
        let workers = std::thread::available_parallelism()
            .map_or(1, |nz| nz.get())
            .min(n);

        // Each lane's state sits behind a mutex claimed exactly once per
        // replay (via the atomic index, so the locks are uncontended);
        // the mutexes exist so the borrow of the per-shard systems can
        // move between workers without tearing the merge.
        struct LaneSlot<'a> {
            sys: &'a mut MemorySystem,
            outcome: Option<LaneOutcome>,
        }
        let tlb = &mut self.tlb;
        let slots: Vec<Mutex<LaneSlot>> = self
            .lanes
            .iter_mut()
            .map(|sys| Mutex::new(LaneSlot { sys, outcome: None }))
            .collect();
        let next = AtomicUsize::new(0);
        let drain = || loop {
            let k = next.fetch_add(1, Ordering::Relaxed);
            let Some(&i) = order.get(k) else { return };
            let mut slot = slots[i].lock().expect("lane slot");
            slot.outcome = Some(run_lane(
                slot.sys,
                &split.lanes[i],
                base_now,
                poisoned.contains(&i),
            ));
        };
        let (tlb_cycles, tlb_acc, tlb_miss, tlb_nanos) = std::thread::scope(|s| {
            for _ in 1..workers {
                s.spawn(drain);
            }
            // The TLB lane is inherently serial; run it here while the
            // spawned workers own the cache sets, then join the queue.
            let start = Instant::now();
            let (c, a, m) = match tlb {
                Some(tlb) => replay_tlb_lane(tlb, &split.tlb_lane, tlb_miss_lat),
                None => (0, 0, 0),
            };
            let nanos = start.elapsed().as_nanos() as u64;
            drain();
            (c, a, m, nanos)
        });
        let outcomes: Vec<LaneOutcome> = slots
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .expect("lane slot")
                    .outcome
                    .expect("every lane was claimed from the queue")
            })
            .collect();

        self.merge_segment(split, &outcomes, tlb_cycles, tlb_acc, tlb_miss, tlb_nanos)
    }

    /// Replays one split segment with every lane run *inline on the caller
    /// thread*, in shard order — no worker threads.
    ///
    /// Statistics, cycles, and degradation accounting are identical to
    /// [`ShardedReplayer::replay`] (the lanes touch disjoint state, so
    /// execution order cannot matter). What changes is what the per-lane
    /// nanosecond timings *mean*: threaded lanes report wall time, which on
    /// an oversubscribed host includes time spent descheduled; serial lanes
    /// report pure uncontended compute. `critical_path_nanos` over a serial
    /// replay is therefore the modeled one-core-per-shard replay time —
    /// the number the engine benchmark reports — independent of how many
    /// cores the measuring host happens to have.
    ///
    /// # Panics
    ///
    /// Panics if `split` was routed for a different shard count.
    pub fn replay_serial(&mut self, split: &ShardedTrace) -> ShardReplayOutcome {
        assert_eq!(
            split.shards,
            self.lanes.len(),
            "split shard count does not match this replayer"
        );
        let base_now = self.now;
        let tlb_miss_lat = self.machine.latency.tlb_miss;
        let outcomes: Vec<LaneOutcome> = self
            .lanes
            .iter_mut()
            .zip(&split.lanes)
            .map(|(sys, lane)| run_lane(sys, lane, base_now, false))
            .collect();
        let start = Instant::now();
        let (tlb_cycles, tlb_acc, tlb_miss) = match &mut self.tlb {
            Some(tlb) => replay_tlb_lane(tlb, &split.tlb_lane, tlb_miss_lat),
            None => (0, 0, 0),
        };
        let tlb_nanos = start.elapsed().as_nanos() as u64;
        self.merge_segment(split, &outcomes, tlb_cycles, tlb_acc, tlb_miss, tlb_nanos)
    }

    /// The shared merge tail: order-insensitive reduction of lane outcomes
    /// plus the split-resolved memo tallies and TLB bulk counts.
    fn merge_segment(
        &mut self,
        split: &ShardedTrace,
        outcomes: &[LaneOutcome],
        tlb_cycles: u64,
        tlb_acc: u64,
        tlb_miss: u64,
        tlb_nanos: u64,
    ) -> ShardReplayOutcome {
        let mut seg_cycles = split.base_cycles + tlb_cycles;
        let mut lane_nanos = Vec::with_capacity(outcomes.len());
        for o in outcomes {
            seg_cycles += o.cycles;
            lane_nanos.push(o.nanos);
            self.degradation.worker_panics += u64::from(o.panicked);
            self.degradation.fallback_lanes += u64::from(o.panicked && !o.lost);
            self.degradation.lost_lanes += u64::from(o.lost);
        }
        self.degradation.repaired_bufs += split.repaired_bufs;

        // Fold the split-resolved memo hits and the TLB lane's bulk counts
        // into the owned statistics, so the merged accessors see exactly
        // what the batched engine would have recorded.
        if split.l1_memo_reads > 0 {
            let tally = ReadTally {
                reads: split.l1_memo_reads,
                ..ReadTally::default()
            };
            self.lanes[0].l1.stats_mut().add_read_tally(&tally);
        }
        if let Some(tlb) = &mut self.tlb {
            let acc = tlb_acc + split.tlb_memo_accesses;
            if acc > 0 {
                tlb.add_bulk_stats(acc, tlb_miss);
            }
        }

        self.cycles += seg_cycles;
        self.insts += split.insts;
        self.branches += split.branches;
        self.events += split.events;
        self.now += split.events;
        ShardReplayOutcome {
            cycles: seg_cycles,
            events: split.events,
            lane_nanos,
            tlb_nanos,
        }
    }

    /// Merged L1 statistics (order-insensitive sum over the disjoint
    /// shard states, plus the split-resolved guaranteed hits).
    pub fn l1_stats(&self) -> CacheStats {
        let mut s = CacheStats::new();
        for lane in &self.lanes {
            s.merge(&lane.l1_stats());
        }
        s
    }

    /// Merged L2 statistics.
    pub fn l2_stats(&self) -> CacheStats {
        let mut s = CacheStats::new();
        for lane in &self.lanes {
            s.merge(&lane.l2_stats());
        }
        s
    }

    /// TLB statistics (the serial TLB lane's counters).
    pub fn tlb_stats(&self) -> TlbStats {
        self.tlb.as_ref().map(Tlb::stats).unwrap_or_default()
    }

    /// Accumulated Section 5.1 memory cycles.
    pub fn memory_cycles(&self) -> u64 {
        self.cycles
    }

    /// Instructions retired.
    pub fn insts(&self) -> u64 {
        self.insts
    }

    /// Branches observed.
    pub fn branches(&self) -> u64 {
        self.branches
    }

    /// Events replayed so far (the persistent logical clock).
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Degradation counters accumulated over this replayer's life.
    pub fn degradation(&self) -> ShardDegradation {
        self.degradation
    }

    /// Zeroes measurement counters, keeping cache/TLB *contents* (and the
    /// degradation counters — they are diagnostics, not measurements),
    /// mirroring [`crate::MemorySink::reset_stats`].
    pub fn reset_stats(&mut self) {
        for lane in &mut self.lanes {
            lane.reset_stats();
        }
        if let Some(tlb) = &mut self.tlb {
            tlb.reset_stats();
        }
        self.cycles = 0;
        self.insts = 0;
        self.branches = 0;
    }
}

impl std::fmt::Debug for ShardedReplayer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedReplayer")
            .field("shards", &self.plan.shards())
            .field("events", &self.events)
            .field("cycles", &self.cycles)
            .field("degradation", &self.degradation)
            .finish_non_exhaustive()
    }
}

/// One worker: fast replay under `catch_unwind`, serial reference
/// fallback on panic, both timed.
fn run_lane(sys: &mut MemorySystem, lane: &Lane, base_now: u64, poison: bool) -> LaneOutcome {
    let start = Instant::now();
    let fast = catch_unwind(AssertUnwindSafe(|| {
        if poison {
            panic!("injected shard-worker poison");
        }
        if sys.attribution_enabled() {
            // Attribution observes individual probes; take the exact
            // reference path instead of the memoizing fast replay.
            replay_lane_reference(sys, lane, base_now)
        } else {
            replay_lane_fast(sys, lane, base_now)
        }
    }));
    match fast {
        Ok(cycles) => LaneOutcome {
            cycles,
            nanos: start.elapsed().as_nanos() as u64,
            panicked: false,
            lost: false,
        },
        Err(_) => {
            let fallback = catch_unwind(AssertUnwindSafe(|| {
                replay_lane_reference(sys, lane, base_now)
            }));
            match fallback {
                Ok(cycles) => LaneOutcome {
                    cycles,
                    nanos: start.elapsed().as_nanos() as u64,
                    panicked: true,
                    lost: false,
                },
                Err(_) => LaneOutcome {
                    cycles: 0,
                    nanos: start.elapsed().as_nanos() as u64,
                    panicked: true,
                    lost: true,
                },
            }
        }
    }
}

/// One `OP_READ` on the memoizing scalar path — the per-block body of
/// [`MemorySystem::access_batch`]'s read handling, shared by the
/// per-entry loop and the chunk-miss fallback in [`replay_lane_fast`].
/// Only valid while no prefetch is in flight (the caller checks).
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn scalar_read(
    sys: &mut MemorySystem,
    addr: u64,
    lat: Latency,
    l1_direct: bool,
    l2_direct: bool,
    l2_geo: CacheGeometry,
    cycles: &mut u64,
    l1_tally: &mut ReadTally,
    l2_tally: &mut ReadTally,
    l2_memo: &mut u64,
) {
    let l1_hit = if l1_direct {
        sys.l1.read_direct(addr, l1_tally)
    } else {
        sys.l1.access(addr, false).hit
    };
    if l1_hit {
        *cycles += lat.l1_hit;
    } else {
        let l2b = l2_geo.block_of(addr);
        if *l2_memo == l2b {
            l2_tally.reads += 1;
            *cycles += lat.l1_hit + lat.l1_miss;
        } else {
            *l2_memo = l2b;
            let l2_hit = if l2_direct {
                sys.l2.read_direct(addr, l2_tally)
            } else {
                sys.l2.access(addr, false).hit
            };
            *cycles += lat.l1_hit + lat.l1_miss;
            if !l2_hit {
                *cycles += lat.l2_miss;
            }
        }
    }
}

/// The lane fast path: the per-block body of
/// [`MemorySystem::access_batch`], restricted to this shard's blocks.
/// Guaranteed-hit shortcuts (the lane-local L2 memo) follow the same MRU
/// argument as the batch cursor — sound here because no other lane can
/// touch this shard's sets.
///
/// On top of the scalar body, runs of [`kernel::WIDTH`] consecutive reads
/// (the dominant shape of a pointer-chase lane) retire through the
/// chunked probe [`crate::cache::Cache::read_direct_hits`]: when every
/// chunk lane hits a direct-mapped L1, the whole chunk is `WIDTH`
/// guaranteed hits — `WIDTH · l1_hit` cycles and `WIDTH` tallied reads,
/// no state change, bit-exact by the hits-don't-mutate argument. A chunk
/// that may miss is re-run on the exact in-order scalar path (reads never
/// change the in-flight set, so the run stays a read run), and the L2
/// memo is untouched either way, exactly as a run of scalar L1 hits
/// would leave it.
///
/// Chunk *eligibility* comes precomputed: the splitter segments each
/// lane into maximal read runs ([`Lane::read_runs`]) as it pushes
/// entries, so this loop advances a run cursor instead of scanning
/// `WIDTH` op bytes per position. The decisions are identical to the
/// old per-window [`kernel::all_op`] scan — a window crossing a maximal
/// run's boundary contains a non-read and always failed the scan, a
/// window inside a run always passed — which the pooled == eager ==
/// batched == scalar differential proptests pin.
fn replay_lane_fast(sys: &mut MemorySystem, lane: &Lane, base_now: u64) -> u64 {
    let lat = sys.config.latency;
    let l1_direct = sys.config.l1.assoc() == 1;
    let l2_direct = sys.config.l2.assoc() == 1;
    let l2_geo = sys.config.l2;
    let mut cycles = 0u64;
    let mut l1_tally = ReadTally::default();
    let mut l2_tally = ReadTally::default();
    let mut l2_memo = NO_MEMO;
    let mut no_inflight = sys.inflight.is_empty();
    let n = lane.ops.len();
    let runs = &lane.read_runs;
    let mut run = 0usize;
    let mut i = 0usize;
    while i < n {
        while run < runs.len() && runs[run].1 as usize <= i {
            run += 1;
        }
        let in_chunkable_run = run < runs.len()
            && runs[run].0 as usize <= i
            && runs[run].1 as usize - i >= kernel::WIDTH;
        if l1_direct && no_inflight && in_chunkable_run {
            debug_assert!(kernel::all_op(&lane.ops[i..i + kernel::WIDTH], OP_READ));
            let addrs: &[u64; kernel::WIDTH] = lane.addrs[i..i + kernel::WIDTH]
                .try_into()
                .expect("chunk width");
            if sys.l1.read_direct_hits(addrs) {
                l1_tally.reads += kernel::WIDTH as u64;
                cycles += lat.l1_hit * kernel::WIDTH as u64;
            } else {
                for j in i..i + kernel::WIDTH {
                    scalar_read(
                        sys,
                        lane.addrs[j],
                        lat,
                        l1_direct,
                        l2_direct,
                        l2_geo,
                        &mut cycles,
                        &mut l1_tally,
                        &mut l2_tally,
                        &mut l2_memo,
                    );
                }
            }
            i += kernel::WIDTH;
            continue;
        }
        let addr = lane.addrs[i];
        match lane.ops[i] {
            OP_READ => {
                if no_inflight {
                    scalar_read(
                        sys,
                        addr,
                        lat,
                        l1_direct,
                        l2_direct,
                        l2_geo,
                        &mut cycles,
                        &mut l1_tally,
                        &mut l2_tally,
                        &mut l2_memo,
                    );
                } else {
                    sys.access_block(addr, false, base_now + lane.nows[i], &mut cycles);
                    l2_memo = NO_MEMO;
                    no_inflight = sys.inflight.is_empty();
                }
            }
            OP_WRITE => {
                let mut discard = 0u64;
                sys.access_block(addr, true, base_now + lane.nows[i], &mut discard);
                l2_memo = NO_MEMO;
            }
            _ => {
                sys.prefetch(addr, base_now + lane.nows[i]);
                no_inflight = false;
                l2_memo = NO_MEMO;
            }
        }
        i += 1;
    }
    if l1_tally.any() {
        sys.l1.stats_mut().add_read_tally(&l1_tally);
    }
    if l2_tally.any() {
        sys.l2.stats_mut().add_read_tally(&l2_tally);
    }
    cycles
}

/// The lane reference fallback: every entry through the slow path
/// (`access_block` / `prefetch`), no memoization — exactly what the
/// scalar engine does per block.
fn replay_lane_reference(sys: &mut MemorySystem, lane: &Lane, base_now: u64) -> u64 {
    let mut cycles = 0u64;
    for i in 0..lane.ops.len() {
        let addr = lane.addrs[i];
        let now = base_now + lane.nows[i];
        match lane.ops[i] {
            OP_READ => {
                sys.access_block(addr, false, now, &mut cycles);
            }
            OP_WRITE => {
                let mut discard = 0u64;
                sys.access_block(addr, true, now, &mut discard);
            }
            _ => {
                sys.prefetch(addr, now);
            }
        }
    }
    cycles
}

/// Replays the serial TLB lane; returns `(cycles, accesses, misses)`.
/// Loads charge one penalty per missed page; a store's pages OR into one
/// group flag and charge at most one penalty (the scalar write override).
fn replay_tlb_lane(tlb: &mut Tlb, lane: &TlbLane, tlb_miss_lat: u64) -> (u64, u64, u64) {
    let mut cycles = 0u64;
    let mut acc = 0u64;
    let mut misses = 0u64;
    let mut in_group = false;
    let mut group_missed = 0u64;
    for i in 0..lane.ops.len() {
        let miss = u64::from(!tlb.access_page_untallied(lane.pages[i]));
        acc += 1;
        misses += miss;
        match lane.ops[i] {
            TLB_LOAD => {
                if in_group {
                    cycles += tlb_miss_lat * group_missed;
                    in_group = false;
                }
                cycles += tlb_miss_lat * miss;
            }
            TLB_STORE_FIRST => {
                if in_group {
                    cycles += tlb_miss_lat * group_missed;
                }
                in_group = true;
                group_missed = miss;
            }
            _ => group_missed |= miss,
        }
    }
    if in_group {
        cycles += tlb_miss_lat * group_missed;
    }
    (cycles, acc, misses)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, EventSink, TraceBuffer};
    use crate::{MachineConfig, MemorySink};

    /// A unit-test machine with a 4-bit L1∩L2 set-field overlap (up to 16
    /// exact shards) and caches small enough that an 8 KB arena thrashes.
    fn overlapped() -> MachineConfig {
        MachineConfig {
            l1: crate::CacheGeometry::new(64, 16, 1),
            l2: crate::CacheGeometry::new(64, 64, 1),
            ..MachineConfig::test_tiny()
        }
    }

    fn pack(events: &[Event]) -> Vec<TraceBuf> {
        let mut bufs = Vec::new();
        let mut cur = TraceBuf::with_capacity(32);
        for &ev in events {
            if cur.is_full() {
                bufs.push(std::mem::replace(&mut cur, TraceBuf::with_capacity(32)));
            }
            cur.push(ev);
        }
        if !cur.is_empty() {
            bufs.push(cur);
        }
        bufs
    }

    fn chase(seed: u64) -> Vec<Event> {
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut evs = Vec::new();
        let mut cur = 0x100u64;
        for _ in 0..400 {
            let r = next();
            match r % 10 {
                0..=5 => {
                    cur = (cur + (r >> 8) % 40) % 8192;
                    evs.push(Event::load(cur, 20));
                }
                6 => evs.push(Event::store((r >> 8) % 8192, 8)),
                7 => evs.push(Event::Prefetch {
                    addr: (r >> 8) % 8192,
                }),
                8 => evs.push(Event::Inst((r % 5) as u32)),
                _ => cur = (r >> 8) % 8192,
            }
        }
        evs
    }

    fn scalar_reference(machine: MachineConfig, events: &[Event]) -> MemorySink {
        let mut sink = MemorySink::new(machine);
        for &ev in events {
            sink.event(ev);
        }
        sink
    }

    #[test]
    fn plan_clamps_to_the_overlap_width() {
        // E5000: L1 [4,14), L2 [6,20) → overlap [6,14) → 256 shards max.
        let e5000 = MachineConfig::ultrasparc_e5000();
        assert_eq!(ShardPlan::max_shards(&e5000), 256);
        assert_eq!(ShardPlan::new(&e5000, 4).shards(), 4);
        assert_eq!(ShardPlan::new(&e5000, 1_000).shards(), 256);
        // Table 1: L1 [7,14), L2 [7,17) → overlap [7,14) → 128.
        assert_eq!(ShardPlan::max_shards(&MachineConfig::table1()), 128);
        // The tiny preset has an *empty* overlap: serial fallback.
        let tiny = MachineConfig::test_tiny();
        assert_eq!(ShardPlan::max_shards(&tiny), 1);
        assert_eq!(ShardPlan::new(&tiny, 8).shards(), 1);
        assert_eq!(ShardPlan::new(&e5000, 0).shards(), 1);
    }

    #[test]
    fn router_owns_whole_sets_and_blocks() {
        for machine in [
            MachineConfig::ultrasparc_e5000(),
            MachineConfig::table1(),
            overlapped(),
        ] {
            for shards in [2usize, 3, 4, 7, 8] {
                let plan = ShardPlan::new(&machine, shards);
                let mut state = 0x5EED_u64;
                for _ in 0..2000 {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let addr = state % (1 << 24);
                    let home = plan.shard_of(addr);
                    // Same L1 block / L2 block → same shard.
                    assert_eq!(home, plan.shard_of(machine.l1.block_of(addr)));
                    assert_eq!(home, plan.shard_of(machine.l2.block_of(addr)));
                    // Same set index (address ± one way) → same shard.
                    assert_eq!(home, plan.shard_of(addr + machine.l1.way_bytes()));
                    assert_eq!(home, plan.shard_of(addr + machine.l2.way_bytes()));
                }
            }
        }
    }

    #[test]
    fn sharded_replay_matches_scalar_across_shard_counts() {
        let machine = overlapped();
        let events = chase(42);
        let scalar = scalar_reference(machine, &events);
        let bufs = pack(&events);
        for shards in 1..=8 {
            let mut r = ShardedReplayer::new(machine, shards);
            let split = r.split(&bufs);
            let out = r.replay(&split);
            assert_eq!(
                r.l1_stats(),
                scalar.system().l1_stats(),
                "{shards} shards L1"
            );
            assert_eq!(
                r.l2_stats(),
                scalar.system().l2_stats(),
                "{shards} shards L2"
            );
            assert_eq!(
                r.tlb_stats(),
                scalar.system().tlb_stats(),
                "{shards} shards TLB"
            );
            assert_eq!(
                r.memory_cycles(),
                scalar.memory_cycles(),
                "{shards} shards cycles"
            );
            assert_eq!(r.insts(), scalar.insts());
            assert_eq!(r.branches(), scalar.branches());
            assert_eq!(out.events, events.len() as u64);
            assert_eq!(out.lane_nanos.len(), r.shards());
            assert_eq!(r.degradation(), ShardDegradation::default());
        }
    }

    #[test]
    fn serial_replay_matches_threaded_replay() {
        let machine = overlapped();
        let events = chase(17);
        let bufs = pack(&events);
        let mut threaded = ShardedReplayer::new(machine, 5);
        let mut serial = ShardedReplayer::new(machine, 5);
        let ts = threaded.split(&bufs);
        let ss = serial.split(&bufs);
        let t_out = threaded.replay(&ts);
        let s_out = serial.replay_serial(&ss);
        assert_eq!(serial.l1_stats(), threaded.l1_stats());
        assert_eq!(serial.l2_stats(), threaded.l2_stats());
        assert_eq!(serial.tlb_stats(), threaded.tlb_stats());
        assert_eq!(s_out.cycles, t_out.cycles);
        assert_eq!(s_out.events, t_out.events);
        assert_eq!(s_out.lane_nanos.len(), t_out.lane_nanos.len());
        assert_eq!(serial.degradation(), ShardDegradation::default());
    }

    #[test]
    fn segmented_replay_with_reset_matches_the_scalar_sink() {
        let machine = overlapped();
        let warm = chase(7);
        let steady = chase(8);
        let mut scalar = scalar_reference(machine, &warm);
        scalar.reset_stats();
        for &ev in &steady {
            scalar.event(ev);
        }
        let mut r = ShardedReplayer::new(machine, 4);
        let w = r.split(&pack(&warm));
        r.replay(&w);
        r.reset_stats();
        // Replay the steady segment in two chunks: persistent state must
        // carry the clock and contents across segment boundaries.
        let (a, b) = steady.split_at(steady.len() / 2);
        let sa = r.split(&pack(a));
        r.replay(&sa);
        let sb = r.split(&pack(b));
        r.replay(&sb);
        assert_eq!(r.l1_stats(), scalar.system().l1_stats());
        assert_eq!(r.l2_stats(), scalar.system().l2_stats());
        assert_eq!(r.tlb_stats(), scalar.system().tlb_stats());
        assert_eq!(r.memory_cycles(), scalar.memory_cycles());
        assert_eq!(r.insts(), scalar.insts());
    }

    #[test]
    fn poisoned_workers_fall_back_and_stay_exact() {
        let machine = overlapped();
        let events = chase(99);
        let scalar = scalar_reference(machine, &events);
        let bufs = pack(&events);
        let mut r = ShardedReplayer::new(machine, 4);
        let split = r.split(&bufs);
        r.replay_poisoned(&split, &[0, 2]);
        let d = r.degradation();
        assert_eq!(d.worker_panics, 2);
        assert_eq!(d.fallback_lanes, 2);
        assert_eq!(d.lost_lanes, 0);
        // The fallback replays the poisoned lanes on the reference path:
        // the merge is still bit-identical to the scalar engine.
        assert_eq!(r.l1_stats(), scalar.system().l1_stats());
        assert_eq!(r.l2_stats(), scalar.system().l2_stats());
        assert_eq!(r.tlb_stats(), scalar.system().tlb_stats());
        assert_eq!(r.memory_cycles(), scalar.memory_cycles());
    }

    #[test]
    fn corrupt_buffers_are_repaired_and_counted() {
        use crate::batch::TraceFault;
        let machine = overlapped();
        let events = chase(5);
        let mut bufs = pack(&events);
        bufs[0].inject_fault(&TraceFault::TruncateAddrLane { keep: 3 });
        // Reference: the repaired stream through the scalar sink.
        let mut repaired = bufs.clone();
        repaired[0].repair();
        let ref_events: Vec<Event> = repaired.iter().flat_map(|b| b.events()).collect();
        let scalar = scalar_reference(machine, &ref_events);
        let mut r = ShardedReplayer::new(machine, 3);
        let split = r.split(&bufs);
        assert_eq!(split.repaired_bufs(), 1);
        assert!(split.repaired_entries() > 0);
        r.replay(&split);
        assert_eq!(r.degradation().repaired_bufs, 1);
        assert_eq!(r.l1_stats(), scalar.system().l1_stats());
        assert_eq!(r.memory_cycles(), scalar.memory_cycles());
    }

    #[test]
    fn replayer_handles_tlbless_machines() {
        let machine = MachineConfig {
            tlb_entries: 0,
            ..overlapped()
        };
        let events = chase(11);
        let scalar = scalar_reference(machine, &events);
        let mut r = ShardedReplayer::new(machine, 4);
        let split = r.split(&pack(&events));
        assert_eq!(split.tlb_entries(), 0);
        r.replay(&split);
        assert_eq!(r.tlb_stats(), scalar.system().tlb_stats());
        assert_eq!(r.memory_cycles(), scalar.memory_cycles());
    }

    #[test]
    fn pooled_split_is_bit_identical_and_reuses_buffers() {
        let machine = overlapped();
        let events = chase(23);
        let bufs = pack(&events);
        let pool = SplitPool::new();
        for shards in [1usize, 3, 4, 8] {
            let plan = ShardPlan::new(&machine, shards);
            let eager = ShardedTrace::split(&machine, &plan, &bufs);
            let pooled = ShardedTrace::split_pooled(&machine, &plan, &bufs, &pool);
            // Lane-for-lane, entry-for-entry identical to the eager split.
            assert_eq!(pooled.lanes.len(), eager.lanes.len());
            for (p, e) in pooled.lanes.iter().zip(&eager.lanes) {
                assert_eq!(p.ops, e.ops);
                assert_eq!(p.addrs, e.addrs);
                assert_eq!(p.nows, e.nows);
                assert_eq!(p.read_runs, e.read_runs);
            }
            assert_eq!(pooled.tlb_lane.ops, eager.tlb_lane.ops);
            assert_eq!(pooled.tlb_lane.pages, eager.tlb_lane.pages);
            assert_eq!(pooled.base_cycles, eager.base_cycles);
            assert_eq!(pooled.l1_memo_reads, eager.l1_memo_reads);
            assert_eq!(pooled.tlb_memo_accesses, eager.tlb_memo_accesses);
            assert_eq!(pooled.events, eager.events);
            pool.recycle(pooled);
            // The recycled buffers go back to the pool and come out again.
            assert_eq!(pool.idle(), 1);
        }
        let plan = ShardPlan::new(&machine, 4);
        let again = ShardedTrace::split_pooled(&machine, &plan, &bufs, &pool);
        assert_eq!(pool.idle(), 0, "the warm buffer set was taken, not leaked");
        let scalar = scalar_reference(machine, &events);
        let mut r = ShardedReplayer::new(machine, 4);
        r.replay(&again);
        assert_eq!(r.l1_stats(), scalar.system().l1_stats());
        assert_eq!(r.memory_cycles(), scalar.memory_cycles());
        pool.recycle(again);
    }

    #[test]
    fn pooled_split_repairs_corrupt_buffers_too() {
        use crate::batch::TraceFault;
        let machine = overlapped();
        let mut bufs = pack(&chase(31));
        bufs[1].inject_fault(&TraceFault::TruncateAddrLane { keep: 2 });
        let pool = SplitPool::new();
        let plan = ShardPlan::new(&machine, 4);
        let eager = ShardedTrace::split(&machine, &plan, &bufs);
        let pooled = ShardedTrace::split_pooled(&machine, &plan, &bufs, &pool);
        assert_eq!(pooled.repaired_bufs(), eager.repaired_bufs());
        assert_eq!(pooled.repaired_entries(), eager.repaired_entries());
        let mut a = ShardedReplayer::new(machine, 4);
        let mut b = ShardedReplayer::new(machine, 4);
        a.replay(&eager);
        b.replay(&pooled);
        assert_eq!(a.l1_stats(), b.l1_stats());
        assert_eq!(a.l2_stats(), b.l2_stats());
        assert_eq!(a.tlb_stats(), b.tlb_stats());
        assert_eq!(a.memory_cycles(), b.memory_cycles());
    }

    #[test]
    fn parallel_split_matches_the_serial_walk() {
        // A stream long enough to clear PARALLEL_SPLIT_MIN_ENTRIES, so the
        // parallel fill actually engages on multi-core hosts (on a 1-core
        // host both sides take the serial walk — still a valid identity).
        let machine = overlapped();
        let mut events = Vec::new();
        for seed in 0..48 {
            events.extend(chase(1000 + seed));
        }
        assert!(events.len() >= PARALLEL_SPLIT_MIN_ENTRIES);
        let bufs = pack(&events);
        let plan = ShardPlan::new(&machine, 5);
        let split = ShardedTrace::split(&machine, &plan, &bufs);
        let scalar = scalar_reference(machine, &events);
        let mut r = ShardedReplayer::new(machine, 5);
        r.replay(&split);
        assert_eq!(r.l1_stats(), scalar.system().l1_stats());
        assert_eq!(r.l2_stats(), scalar.system().l2_stats());
        assert_eq!(r.tlb_stats(), scalar.system().tlb_stats());
        assert_eq!(r.memory_cycles(), scalar.memory_cycles());
    }

    #[test]
    #[should_panic(expected = "shard count")]
    fn mismatched_split_is_rejected() {
        let machine = overlapped();
        let bufs = pack(&chase(1));
        let a = ShardedReplayer::new(machine, 2);
        let mut b = ShardedReplayer::new(machine, 4);
        b.replay(&a.split(&bufs));
    }
}
