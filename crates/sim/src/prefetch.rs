//! Prefetching baselines the paper compares against (Section 4.4).
//!
//! * **Hardware prefetching** — the paper's scheme prefetches "all loads and
//!   stores currently in the reorder buffer". Two consequences are modelled:
//!   independent misses overlap inside the ROB window (that part lives in
//!   the [`crate::pipeline::Pipeline`]), and spatially sequential misses are
//!   anticipated. The second is modelled here as a tagged *next-N-block*
//!   prefetcher: every demand L1 miss triggers prefetches for the next
//!   `degree` L2 blocks. Like the paper's scheme, it helps layouts whose
//!   traversal order matches allocation order and is useless for
//!   pointer-chasing through scattered nodes.
//! * **Software prefetching** — Luk & Mowry's *greedy* scheme, which the
//!   paper implemented by hand: when a node is visited, non-binding
//!   prefetches are issued for all its pointer fields. In this codebase the
//!   workloads themselves emit [`crate::event::Event::Prefetch`] events when
//!   run in their software-prefetch variant; [`greedy_prefetch_children`]
//!   is the helper they use.

use crate::event::EventSink;
use crate::hierarchy::MemorySystem;

/// Tagged sequential (next-N-block) hardware prefetcher.
///
/// # Example
///
/// ```
/// use cc_sim::prefetch::HardwarePrefetcher;
/// use cc_sim::{MachineConfig, MemorySystem, AccessKind};
///
/// let mut mem = MemorySystem::new(MachineConfig::ultrasparc_e5000());
/// let pf = HardwarePrefetcher::new(1);
/// mem.access(0x1000, 8, AccessKind::Read, 0);
/// pf.on_l1_miss(&mut mem, 0x1000, 0);
/// assert!(mem.l2_contains(0x1040), "next 64-byte block was prefetched");
/// ```
#[derive(Clone, Copy, Debug)]
pub struct HardwarePrefetcher {
    degree: u32,
}

impl HardwarePrefetcher {
    /// Creates a prefetcher fetching the next `degree` blocks on each miss.
    ///
    /// # Panics
    ///
    /// Panics if `degree` is zero.
    pub fn new(degree: u32) -> Self {
        assert!(degree > 0, "prefetch degree must be nonzero");
        HardwarePrefetcher { degree }
    }

    /// Prefetch degree.
    pub fn degree(&self) -> u32 {
        self.degree
    }

    /// Reacts to a demand L1 miss at `addr`: issues prefetches for the next
    /// `degree` sequential L2 blocks. Returns how many were issued.
    pub fn on_l1_miss(&self, mem: &mut MemorySystem, addr: u64, now: u64) -> u32 {
        let block = mem.config().l2.block_bytes();
        let base = mem.config().l2.block_of(addr);
        let mut issued = 0;
        for i in 1..=u64::from(self.degree) {
            if mem.prefetch(base + i * block, now) {
                issued += 1;
            }
        }
        issued
    }
}

/// Emits greedy (Luk & Mowry) software prefetches for a node's pointer
/// fields: call it with the addresses the node points at, right after the
/// node itself is loaded. Each prefetch also costs one instruction slot,
/// which the pipeline charges — the overhead the paper notes software
/// prefetching pays.
pub fn greedy_prefetch_children<S: EventSink>(sink: &mut S, children: &[u64]) {
    for &c in children {
        sink.prefetch(c);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;
    use crate::event::TraceBuffer;
    use crate::hierarchy::AccessKind;

    #[test]
    fn next_block_prefetch_installs_lines() {
        let mut mem = MemorySystem::new(MachineConfig::ultrasparc_e5000());
        let pf = HardwarePrefetcher::new(2);
        mem.access(0x1000, 8, AccessKind::Read, 0);
        let issued = pf.on_l1_miss(&mut mem, 0x1000, 0);
        assert_eq!(issued, 2);
        assert!(mem.l2_contains(0x1040));
        assert!(mem.l2_contains(0x1080));
        assert!(!mem.l2_contains(0x10C0));
    }

    #[test]
    fn greedy_emits_one_prefetch_per_child() {
        let mut buf = TraceBuffer::new();
        greedy_prefetch_children(&mut buf, &[0x100, 0x200]);
        assert_eq!(buf.events().len(), 2);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_degree_rejected() {
        let _ = HardwarePrefetcher::new(0);
    }
}
