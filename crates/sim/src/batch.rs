//! Batched trace execution: the simulator's fast path.
//!
//! The scalar path ([`crate::MemorySink`] → [`MemorySystem::access`]) walks
//! one event at a time: an enum dispatch, a `Vec` of touched blocks, a
//! linear TLB scan, and a `HashMap` probe of the prefetch in-flight table
//! per event. That is the right *reference* implementation — every branch
//! maps onto a sentence of the paper's Section 5.1 — but it is the
//! bottleneck of every figure in this reproduction.
//!
//! This module adds the batched equivalent:
//!
//! * [`TraceBuf`] — a fixed-capacity structure-of-arrays buffer of packed
//!   events (kind bytes, addresses, and sizes in separate vectors), so the
//!   replay loop streams over dense arrays instead of matching a 24-byte
//!   enum per event;
//! * [`MemorySystem::access_batch`] — replays a full buffer with no per-event
//!   allocation, carrying a [`BatchCursor`] that short-circuits the dominant
//!   pattern of pointer chases over clustered nodes: consecutive references
//!   that stay in the last L1 block (and on the last translated page). Such
//!   a reference is *provably* an L1/TLB hit on the most-recently-used
//!   line/entry, so the probe, the LRU stamp bump, the in-flight lookup, and
//!   the TLB scan can all be skipped without changing a single counter or
//!   any future replacement decision (see the invariant notes on
//!   [`BatchCursor`]);
//! * [`BatchSink`] — an [`EventSink`] that buffers events and flushes them
//!   through `access_batch`, with an optional observer for consumers that
//!   need the raw stream (affinity tracing, tees). With no observer
//!   attached, no per-event dynamic dispatch or observer branching survives
//!   in the hot loop.
//!
//! The batched path is pinned to the scalar path by a differential property
//! test (`tests/batch_differential.rs`): over arbitrary event streams, both
//! produce bit-identical [`crate::CacheStats`], TLB counters, accumulated
//! cycles, and — crucially — identical *future* behaviour (same hits and
//! writebacks on a probe suffix), including write-back dirty-eviction
//! ordering.

use crate::cache::ReadTally;
use crate::event::{Event, EventSink, NullSink};
use crate::hierarchy::{AccessKind, MemorySystem};

/// Packed event kind for [`TraceBuf`]'s kind lane.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub(crate) enum PackedKind {
    /// `Event::Inst(n)` — `n` in the address lane.
    Inst,
    /// `Event::Branch(n)` — `n` in the address lane.
    Branch,
    /// Dependent load.
    LoadDep,
    /// Independent load.
    LoadIndep,
    /// Store.
    Store,
    /// Software prefetch.
    Prefetch,
    /// A run of events that only advance the logical clock (the address
    /// lane holds the run length). Runs normally fold into the *tick
    /// lane* of the preceding entry ([`TraceBuf::push_ticks`]); a `Gap`
    /// entry is staged only when there is no preceding entry to widen —
    /// a run at the head of a freshly drained buffer.
    Gap,
}

/// One packed memory-referencing entry of a [`TraceBuf`], as streamed by
/// [`TraceBuf::mem_refs`]. Prefetches stream as reads: a fingerprint cares
/// about the block touched, not the probe's side-channel semantics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemRef {
    /// Referenced virtual address.
    pub addr: u64,
    /// Access size in bytes (0 for prefetch probes).
    pub size: u32,
    /// Whether the entry writes (store) rather than reads.
    pub write: bool,
}

/// A fixed-capacity structure-of-arrays event buffer.
///
/// Events are split into parallel lanes (kind, address, size, trailing
/// ticks), so the batched replay loop touches a few dense bytes per entry,
/// all sequentially. Runs of clock-only events (instructions, branches —
/// whose counts the packer accounts for separately) occupy no entries of
/// their own: they fold into the tick lane of the entry they follow, so
/// the canonical load/inst/branch pointer-chase rhythm packs into one
/// entry per node. Unlike [`crate::event::TraceBuffer`] (a growable
/// array-of-structs recorder for tests and replays), a `TraceBuf` is a
/// bounded staging area: [`BatchSink`] fills it and drains it through
/// [`MemorySystem::access_batch`] every time it fills up.
///
/// # Example
///
/// ```
/// use cc_sim::batch::TraceBuf;
/// use cc_sim::event::Event;
///
/// let mut buf = TraceBuf::with_capacity(2);
/// buf.push(Event::load(0x40, 8));
/// assert!(!buf.is_full());
/// buf.push(Event::Inst(3));
/// assert!(buf.is_full());
/// assert_eq!(buf.events().count(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct TraceBuf {
    kinds: Vec<PackedKind>,
    addrs: Vec<u64>,
    sizes: Vec<u32>,
    /// Clock-only events *following* each entry (see [`TraceBuf::push_ticks`]).
    ticks: Vec<u32>,
    cap: usize,
    /// Address-space tag (see [`TraceBuf::set_space`]).
    space: u32,
}

impl TraceBuf {
    /// Creates an empty buffer holding at most `cap` events.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero.
    pub fn with_capacity(cap: usize) -> Self {
        assert!(cap > 0, "batch capacity must be nonzero");
        TraceBuf {
            kinds: Vec::with_capacity(cap),
            addrs: Vec::with_capacity(cap),
            sizes: Vec::with_capacity(cap),
            ticks: Vec::with_capacity(cap),
            cap,
            space: 0,
        }
    }

    /// The buffer's address-space tag (0 unless [`TraceBuf::set_space`]
    /// was called).
    pub fn space(&self) -> u32 {
        self.space
    }

    /// Tags the buffer with an address-space id.
    ///
    /// The caches are physically tagged in this simulator — the same
    /// numeric address in two spaces is the same block — but the TLB is a
    /// *virtual* structure: page `p` of space 1 is a different translation
    /// than page `p` of space 0. [`MemorySystem::access_batch`] therefore
    /// keys every TLB probe (and the cursor's same-page memo) by
    /// `(page, space)`, so replaying buffers from different spaces through
    /// one system never lets a memoized translation leak across spaces.
    /// Page numbers must stay below 2^32 for the combined key to be
    /// collision-free; every shipped machine config is far below that.
    pub fn set_space(&mut self, space: u32) {
        self.space = space;
    }

    /// Raw SoA lanes for in-crate consumers (the shard splitter walks the
    /// packed entries directly instead of decoding [`Event`]s).
    pub(crate) fn lanes(&self) -> (&[PackedKind], &[u64], &[u32], &[u32]) {
        (&self.kinds, &self.addrs, &self.sizes, &self.ticks)
    }

    /// Number of buffered entries (folded tick runs do not count; see
    /// [`TraceBuf::events`] for the decoded event stream).
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// Whether the buffer holds no events.
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    /// Whether the buffer is at capacity (the caller should drain it).
    pub fn is_full(&self) -> bool {
        self.kinds.len() >= self.cap
    }

    /// The fixed capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Empties the buffer, keeping its allocation.
    pub fn clear(&mut self) {
        self.kinds.clear();
        self.addrs.clear();
        self.sizes.clear();
        self.ticks.clear();
    }

    /// Appends one event.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is full.
    pub fn push(&mut self, ev: Event) {
        assert!(!self.is_full(), "TraceBuf overflow: drain before pushing");
        let (kind, addr, size) = match ev {
            Event::Inst(n) => (PackedKind::Inst, u64::from(n), 0),
            Event::Branch(n) => (PackedKind::Branch, u64::from(n), 0),
            Event::Load {
                addr,
                size,
                dep: true,
            } => (PackedKind::LoadDep, addr, size),
            Event::Load {
                addr,
                size,
                dep: false,
            } => (PackedKind::LoadIndep, addr, size),
            Event::Store { addr, size } => (PackedKind::Store, addr, size),
            Event::Prefetch { addr } => (PackedKind::Prefetch, addr, 0),
        };
        self.kinds.push(kind);
        self.addrs.push(addr);
        self.sizes.push(size);
        self.ticks.push(0);
    }

    /// Appends `ticks` clock-advance events that carry no memory traffic —
    /// the packed form of a run of instruction and branch events whose
    /// *counts* the caller accounts for separately
    /// ([`MemorySystem::access_batch`] only advances the clock by `ticks`).
    /// The run folds into the trailing entry's tick lane whenever one
    /// exists, so it usually consumes no entry at all; only a run with no
    /// entry to widen (an empty buffer, or a saturated tick counter)
    /// stages a standalone clock-gap entry. This is how a packer amortizes
    /// the dominant non-memory events of a trace; [`BatchSink`] does it
    /// automatically.
    ///
    /// # Panics
    ///
    /// Panics if `ticks` is zero, or if a standalone entry is needed and
    /// the buffer is full (see [`TraceBuf::can_fold_ticks`]).
    pub fn push_ticks(&mut self, ticks: u64) {
        assert!(ticks > 0, "a tick run must advance the clock");
        if let Some(i) = self.kinds.len().checked_sub(1) {
            if self.kinds[i] == PackedKind::Gap {
                self.addrs[i] += ticks;
                return;
            }
            let cur = u64::from(self.ticks[i]);
            if cur + ticks <= u64::from(u32::MAX) {
                self.ticks[i] = (cur + ticks) as u32;
                return;
            }
        }
        assert!(!self.is_full(), "TraceBuf overflow: drain before pushing");
        self.kinds.push(PackedKind::Gap);
        self.addrs.push(ticks);
        self.sizes.push(0);
        self.ticks.push(0);
    }

    /// Whether [`TraceBuf::push_ticks`] can absorb a run without staging a
    /// new entry (so it cannot panic even on a full buffer).
    pub fn can_fold_ticks(&self, ticks: u64) -> bool {
        match self.kinds.last() {
            Some(PackedKind::Gap) => true,
            Some(_) => {
                u64::from(*self.ticks.last().expect("lanes in step")) + ticks <= u64::from(u32::MAX)
            }
            None => false,
        }
    }

    /// Streams the memory-referencing entries (loads, stores, prefetches)
    /// as packed [`MemRef`]s without decoding the folded clock runs — the
    /// cheap per-entry walk interval fingerprinting needs. One item per
    /// packed entry: a fingerprint pass over a buffer touches each lane
    /// byte once, versus [`TraceBuf::events`] which re-expands every
    /// folded instruction run into individual events.
    pub fn mem_refs(&self) -> impl Iterator<Item = MemRef> + '_ {
        (0..self.len()).filter_map(move |i| {
            let write = match self.kinds[i] {
                PackedKind::LoadDep | PackedKind::LoadIndep | PackedKind::Prefetch => false,
                PackedKind::Store => true,
                PackedKind::Inst | PackedKind::Branch | PackedKind::Gap => return None,
            };
            Some(MemRef {
                write,
                addr: self.addrs[i],
                size: self.sizes[i],
            })
        })
    }

    /// Total decoded event count: packed entries, the instruction/branch
    /// runs folded into tick lanes, and clock-gap run lengths. This is the
    /// event total [`TraceBuf::events`] would yield, computed in one dense
    /// pass — the extrapolation weight basis for sampled simulation.
    pub fn event_total(&self) -> u64 {
        let mut total = 0u64;
        for i in 0..self.len() {
            total += match self.kinds[i] {
                PackedKind::Gap => self.addrs[i],
                _ => 1,
            };
            total += u64::from(self.ticks[i]);
        }
        total
    }

    /// Decodes the buffered events back into [`Event`]s, in order. Folded
    /// tick runs and clock-gap entries decode as that many `Inst(0)`
    /// events — the canonical event that ticks the clock and counts
    /// nothing.
    pub fn events(&self) -> impl Iterator<Item = Event> + '_ {
        (0..self.len()).flat_map(move |i| {
            let (ev, reps) = match self.kinds[i] {
                PackedKind::Inst => (Event::Inst(self.addrs[i] as u32), 1),
                PackedKind::Branch => (Event::Branch(self.addrs[i] as u32), 1),
                PackedKind::LoadDep => (Event::load(self.addrs[i], self.sizes[i]), 1),
                PackedKind::LoadIndep => (Event::load_indep(self.addrs[i], self.sizes[i]), 1),
                PackedKind::Store => (Event::store(self.addrs[i], self.sizes[i]), 1),
                PackedKind::Prefetch => (
                    Event::Prefetch {
                        addr: self.addrs[i],
                    },
                    1,
                ),
                PackedKind::Gap => (Event::Inst(0), self.addrs[i]),
            };
            std::iter::repeat_n(ev, reps as usize)
                .chain(std::iter::repeat_n(Event::Inst(0), self.ticks[i] as usize))
        })
    }
}

/// A deterministic corruption applied to a [`TraceBuf`] by fault
/// injection — the simulated analogue of a truncated trace file, a
/// dropped DMA, or a scribbled buffer.
///
/// Structural faults ([`TraceFault::TruncateAddrLane`],
/// [`TraceFault::ZeroGapRun`]) break the buffer's invariants and are
/// caught by [`TraceBuf::validate`]; [`TraceFault::ScrambleAddrs`] leaves
/// the structure valid but the *addresses* wrong — the class of fault only
/// determinism (replaying the seed) can expose.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceFault {
    /// Truncates the address lane to `keep` entries, leaving the other
    /// lanes long: the SoA invariant (all lanes in step) is broken.
    TruncateAddrLane {
        /// Entries the address lane keeps.
        keep: usize,
    },
    /// Zeroes the run length of the clock-gap entry at `entry` (modulo the
    /// buffer length) — a gap that advances the clock by zero events,
    /// which the replay loop must never see.
    ZeroGapRun {
        /// Target entry index (taken modulo the buffer length).
        entry: usize,
    },
    /// XORs a seed-derived mask into every memory-event address (loads,
    /// stores, prefetches — never the count lanes of instruction, branch,
    /// or gap entries, whose "addresses" are event counts).
    ScrambleAddrs {
        /// Seed for the deterministic mask stream.
        seed: u64,
    },
}

/// An invariant violation found by [`TraceBuf::validate`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceCorruption {
    /// The parallel lanes disagree in length.
    LaneMismatch {
        /// Kind-lane length.
        kinds: usize,
        /// Address-lane length.
        addrs: usize,
        /// Size-lane length.
        sizes: usize,
        /// Tick-lane length.
        ticks: usize,
    },
    /// A clock-gap entry advancing the clock by zero events.
    EmptyGapRun {
        /// Index of the offending entry.
        entry: usize,
    },
}

impl std::fmt::Display for TraceCorruption {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceCorruption::LaneMismatch {
                kinds,
                addrs,
                sizes,
                ticks,
            } => write!(
                f,
                "trace lanes out of step: {kinds} kinds, {addrs} addrs, {sizes} sizes, {ticks} ticks"
            ),
            TraceCorruption::EmptyGapRun { entry } => {
                write!(f, "zero-length clock gap at entry {entry}")
            }
        }
    }
}

impl std::error::Error for TraceCorruption {}

/// SplitMix64 step for the deterministic scramble mask stream (local copy:
/// `cc-core` sits above this crate in the dependency order).
fn splitmix_next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TraceBuf {
    /// Applies `fault` to the currently buffered entries. Deterministic:
    /// the same fault on the same buffer contents always produces the same
    /// corruption.
    pub fn inject_fault(&mut self, fault: &TraceFault) {
        match *fault {
            TraceFault::TruncateAddrLane { keep } => {
                self.addrs.truncate(keep.min(self.addrs.len()));
            }
            TraceFault::ZeroGapRun { entry } => {
                if self.kinds.is_empty() {
                    return;
                }
                let i = entry % self.kinds.len();
                if self.kinds[i] == PackedKind::Gap {
                    self.addrs[i] = 0;
                }
            }
            TraceFault::ScrambleAddrs { seed } => {
                let mut state = seed;
                for i in 0..self.kinds.len() {
                    let mask = splitmix_next(&mut state);
                    if matches!(
                        self.kinds[i],
                        PackedKind::LoadDep
                            | PackedKind::LoadIndep
                            | PackedKind::Store
                            | PackedKind::Prefetch
                    ) {
                        self.addrs[i] ^= mask >> 16;
                    }
                }
            }
        }
    }

    /// Checks the buffer's structural invariants: all lanes in step, no
    /// zero-length clock gaps. The replay loop assumes both; feeding it a
    /// buffer that fails validation silently drops entries (the lane zip
    /// stops at the shortest lane) or underflows the gap arithmetic.
    pub fn validate(&self) -> Result<(), TraceCorruption> {
        let (k, a, s, t) = (
            self.kinds.len(),
            self.addrs.len(),
            self.sizes.len(),
            self.ticks.len(),
        );
        if !(k == a && k == s && k == t) {
            return Err(TraceCorruption::LaneMismatch {
                kinds: k,
                addrs: a,
                sizes: s,
                ticks: t,
            });
        }
        if let Some(entry) =
            (0..k).find(|&i| self.kinds[i] == PackedKind::Gap && self.addrs[i] == 0)
        {
            return Err(TraceCorruption::EmptyGapRun { entry });
        }
        Ok(())
    }

    /// Restores the structural invariants after corruption, keeping every
    /// entry that can be kept: lanes are truncated to the shortest lane,
    /// and a zero-length gap either inherits its folded ticks as its run
    /// length or, with none, is removed. Returns the number of entries
    /// dropped.
    pub fn repair(&mut self) -> usize {
        let min = self
            .kinds
            .len()
            .min(self.addrs.len())
            .min(self.sizes.len())
            .min(self.ticks.len());
        let mut dropped = self.kinds.len().saturating_sub(min);
        self.kinds.truncate(min);
        self.addrs.truncate(min);
        self.sizes.truncate(min);
        self.ticks.truncate(min);
        let mut i = 0;
        while i < self.kinds.len() {
            if self.kinds[i] == PackedKind::Gap && self.addrs[i] == 0 {
                if self.ticks[i] > 0 {
                    // A gap of its folded ticks is the same event stream.
                    self.addrs[i] = u64::from(self.ticks[i]);
                    self.ticks[i] = 0;
                    i += 1;
                } else {
                    self.kinds.remove(i);
                    self.addrs.remove(i);
                    self.sizes.remove(i);
                    self.ticks.remove(i);
                    dropped += 1;
                }
            } else {
                i += 1;
            }
        }
        dropped
    }
}

/// Hex run-length encoding of a lane of small integers: `VALxRUN` tokens.
fn encode_rle(values: impl Iterator<Item = u64>, out: &mut String) {
    let mut run: Option<(u64, u64)> = None;
    for v in values {
        match &mut run {
            Some((cur, n)) if *cur == v => *n += 1,
            _ => {
                if let Some((cur, n)) = run {
                    out.push_str(&format!("{cur:x}x{n:x} "));
                }
                run = Some((v, 1));
            }
        }
    }
    if let Some((cur, n)) = run {
        out.push_str(&format!("{cur:x}x{n:x}"));
    }
}

/// Decodes an [`encode_rle`] lane; `None` on malformed input.
fn decode_rle(line: &str) -> Option<Vec<u64>> {
    let mut out = Vec::new();
    for tok in line.split_ascii_whitespace() {
        let (v, n) = tok.split_once('x')?;
        let v = u64::from_str_radix(v, 16).ok()?;
        let n = u64::from_str_radix(n, 16).ok()?;
        if n == 0 {
            return None;
        }
        for _ in 0..n {
            out.push(v);
        }
    }
    Some(out)
}

impl TraceBuf {
    /// Serializes the buffer as stable ASCII text for the `cc-sweep` trace
    /// store — the same hex-everything convention as sweep checkpoint
    /// files, so cached traces survive any locale or float-formatting
    /// drift. Lanes are compressed with the transforms that fit them:
    /// kind/size/tick lanes run-length encode (traces are long runs of
    /// same-shaped loads), the address lane stores zigzag deltas (pointer
    /// chases move in small strides, so most deltas are a few hex digits).
    pub fn encode_compact(&self) -> String {
        let mut s = format!(
            "ccbuf v1 {:x} {:x} {:x}\n",
            self.cap,
            self.space,
            self.len()
        );
        s.push('k');
        s.push(' ');
        encode_rle(self.kinds.iter().map(|&k| k as u64), &mut s);
        s.push('\n');
        s.push('a');
        let mut prev = 0u64;
        for &a in &self.addrs {
            let d = a.wrapping_sub(prev) as i64;
            let zz = ((d << 1) ^ (d >> 63)) as u64;
            s.push_str(&format!(" {zz:x}"));
            prev = a;
        }
        s.push('\n');
        s.push('s');
        s.push(' ');
        encode_rle(self.sizes.iter().map(|&v| u64::from(v)), &mut s);
        s.push('\n');
        s.push('t');
        s.push(' ');
        encode_rle(self.ticks.iter().map(|&v| u64::from(v)), &mut s);
        s.push('\n');
        s
    }

    /// Decodes an [`TraceBuf::encode_compact`] string. Returns `None` on
    /// any malformed input (wrong magic, lane mismatch, out-of-range kind
    /// or size) — a corrupt cache file is treated as a miss, never trusted.
    pub fn decode_compact(s: &str) -> Option<TraceBuf> {
        let mut lines = s.lines();
        let mut header = lines.next()?.split_ascii_whitespace();
        if header.next()? != "ccbuf" || header.next()? != "v1" {
            return None;
        }
        let cap = usize::from_str_radix(header.next()?, 16).ok()?;
        let space = u32::from_str_radix(header.next()?, 16).ok()?;
        let len = usize::from_str_radix(header.next()?, 16).ok()?;
        if cap == 0 || len > cap || header.next().is_some() {
            return None;
        }
        let kline = lines.next()?.strip_prefix('k')?;
        let aline = lines.next()?.strip_prefix('a')?;
        let sline = lines.next()?.strip_prefix('s')?;
        let tline = lines.next()?.strip_prefix('t')?;
        if lines.next().is_some() {
            return None;
        }
        let kinds: Vec<PackedKind> = decode_rle(kline)?
            .into_iter()
            .map(|v| {
                Some(match v {
                    0 => PackedKind::Inst,
                    1 => PackedKind::Branch,
                    2 => PackedKind::LoadDep,
                    3 => PackedKind::LoadIndep,
                    4 => PackedKind::Store,
                    5 => PackedKind::Prefetch,
                    6 => PackedKind::Gap,
                    _ => return None,
                })
            })
            .collect::<Option<_>>()?;
        let mut addrs = Vec::with_capacity(len);
        let mut prev = 0u64;
        for tok in aline.split_ascii_whitespace() {
            let zz = u64::from_str_radix(tok, 16).ok()?;
            let d = ((zz >> 1) as i64) ^ -((zz & 1) as i64);
            prev = prev.wrapping_add(d as u64);
            addrs.push(prev);
        }
        let sizes: Vec<u32> = decode_rle(sline)?
            .into_iter()
            .map(|v| u32::try_from(v).ok())
            .collect::<Option<_>>()?;
        let ticks: Vec<u32> = decode_rle(tline)?
            .into_iter()
            .map(|v| u32::try_from(v).ok())
            .collect::<Option<_>>()?;
        if kinds.len() != len || addrs.len() != len || sizes.len() != len || ticks.len() != len {
            return None;
        }
        let buf = TraceBuf {
            kinds,
            addrs,
            sizes,
            ticks,
            cap,
            space,
        };
        buf.validate().ok()?;
        Some(buf)
    }

    /// Approximate resident size in bytes — the trace store's unit for its
    /// byte-budget LRU accounting.
    pub fn approx_bytes(&self) -> usize {
        self.len() * (std::mem::size_of::<u64>() + 2 * std::mem::size_of::<u32>() + 1)
            + std::mem::size_of::<TraceBuf>()
    }
}

/// Cross-batch memoization state for [`MemorySystem::access_batch`].
///
/// The cursor remembers just enough about the immediately preceding memory
/// reference to prove the next one needs no simulation work:
///
/// * `block` — the last L1 block a *load* touched. That line is resident
///   (reads always fill) and is the most recently probed line in the whole
///   L1, so a following read confined to it is a guaranteed hit. Skipping
///   the probe also skips the LRU stamp bump, which is safe precisely
///   because the line already carries the newest stamp: no other line was
///   stamped in between, so every *relative* stamp comparison — and
///   therefore every future victim choice — is unchanged. The prefetch
///   in-flight check is skipped too: the entry for this block's L2 block
///   was consumed when the block was last really probed, and only a
///   `Prefetch` event (which clears the cursor) can create a new one.
///   Stores and prefetches clear this field: a write-back store miss or a
///   prefetch fill picks a victim and could evict the remembered line.
/// * `page` — the last page a load or store translated. That TLB entry is
///   resident and most recently used, so a following reference starting on
///   the same page skips the scan (the stamp argument is identical).
///   Instructions, branches, and prefetches never touch the TLB, so they
///   leave this field valid.
/// * `l2_block` — the L2 block of the most recent L2 probe issued by the
///   batch read path. An L2 probe either hits (line becomes MRU) or fills
///   (line becomes MRU), and *nothing else* touches the L2 between batch
///   reads — L1 hits and L1 fills stay in L1 — so a later L1 miss falling
///   in the same L2 block is a guaranteed L2 hit on the MRU line, and the
///   probe plus its LRU stamp bump can be skipped by the same argument as
///   `block`. Anything that can touch the L2 outside the batch read path
///   clears it: stores (a write-through L1 hit propagates the write into
///   L2; a write-back miss allocates), prefetches (they fill L2), and the
///   in-flight slow path (its probes are not tracked).
///
/// The cursor is only sound while **all** traffic flows through
/// `access_batch`: call [`BatchCursor::reset`] after any direct
/// [`MemorySystem::access`] / [`MemorySystem::prefetch`] call on the same
/// system. [`BatchSink`] owns both the system and the cursor, so it upholds
/// this by construction.
#[derive(Clone, Copy, Debug)]
pub struct BatchCursor {
    block: u64,
    page: u64,
    l2_block: u64,
}

/// "Nothing memoized" sentinel for [`BatchCursor`] fields. A real block or
/// page equal to it merely fails the memo compare and takes the full probe
/// path — the sentinel can cost time, never correctness — and no simulated
/// heap reaches the top of the address space anyway. Plain `u64` compares
/// keep the hot loop's memo checks to one fused compare-and-branch each,
/// where `Option<u64>` pays for a separate discriminant test.
const NO_MEMO: u64 = u64::MAX;

impl BatchCursor {
    /// A cursor with no memoized state.
    pub fn new() -> Self {
        BatchCursor {
            block: NO_MEMO,
            page: NO_MEMO,
            l2_block: NO_MEMO,
        }
    }

    /// Forgets all memoized state (required after any out-of-batch access).
    pub fn reset(&mut self) {
        *self = Self::new();
    }
}

impl Default for BatchCursor {
    fn default() -> Self {
        Self::new()
    }
}

/// Totals accumulated by one [`MemorySystem::access_batch`] call.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BatchOutcome {
    /// Processor-visible cycles, exactly as the scalar path would sum them.
    pub cycles: u64,
    /// Instructions retired (from `Event::Inst`).
    pub insts: u64,
    /// Branches observed (from `Event::Branch`).
    pub branches: u64,
    /// Events consumed — the caller's logical clock advances by this much.
    pub events: u64,
}

impl MemorySystem {
    /// Replays a buffered event stream, mirroring what feeding each event
    /// through [`crate::MemorySink`] would do — bit-identically, including
    /// every statistics counter, LRU decision, dirty bit, and prefetch
    /// arrival time — while skipping provably-redundant work (see
    /// [`BatchCursor`]).
    ///
    /// `now` is the logical clock *before* the first event; like the
    /// scalar sink, each event advances the clock by one before being
    /// processed.
    pub fn access_batch(
        &mut self,
        buf: &TraceBuf,
        now: u64,
        cursor: &mut BatchCursor,
    ) -> BatchOutcome {
        let lat = self.config.latency;
        let l1_geo = self.config.l1;
        let l2_geo = self.config.l2;
        let block_bytes = l1_geo.block_bytes();
        let page_bytes = self.config.page_bytes;
        // Every shipped config has power-of-two pages; hoist the test so
        // the per-load page arithmetic is a shift, not a 64-bit division.
        let page_pow2 = page_bytes.is_power_of_two();
        let page_shift = page_bytes.trailing_zeros();
        let page_of = |a: u64| {
            if page_pow2 {
                a >> page_shift
            } else {
                a / page_bytes
            }
        };
        // TLB keys carry the buffer's address-space tag in their high bits
        // (see [`TraceBuf::set_space`]): the caches are physically tagged,
        // the TLB is not. For the default space 0 the salt is zero and
        // every key is the bare page number, exactly as before.
        let space_salt = u64::from(buf.space) << 32;
        // At associativity one there is no replacement choice, so probes
        // take the stamp-free single-compare path (`Cache::read_direct`).
        let l1_direct = l1_geo.assoc() == 1;
        let l2_direct = l2_geo.assoc() == 1;
        // Adjacent blocks land in distinct sets whenever there are at
        // least two, which the paired both-hit probe requires.
        let l1_pair = l1_direct && l1_geo.sets() > 1;
        let mut out = BatchOutcome::default();
        let mut now = now;
        // Demand-read accounting for the paths that don't self-record
        // (memo skips and `read_direct` probes), tallied in registers and
        // flushed in bulk after the loop — equivalent to per-probe
        // recording because nothing reads the counters mid-batch.
        let mut l1_tally = ReadTally::default();
        let mut l2_tally = ReadTally::default();
        let mut tlb_acc = 0u64;
        let mut tlb_miss = 0u64;
        // Only `Prefetch` events arm the in-flight table, so one probe of
        // it per batch (cleared by the prefetch arm) replaces a probe per
        // load. A false negative is impossible; a stale `false` merely
        // routes loads through the reference slow path.
        let mut no_inflight = self.inflight.is_empty();
        // Attribution needs to see every individual probe (region, hit,
        // victim), so it forfeits the memo skips and inline read paths
        // below and routes all loads through `access_block`. Stats and
        // cycles are unchanged — those paths are provably-equivalent
        // shortcuts — only the speed differs.
        let attrib_on = self.attrib.is_some();

        let entries = buf
            .kinds
            .iter()
            .zip(buf.addrs.iter())
            .zip(buf.sizes.iter())
            .zip(buf.ticks.iter());
        for (((&kind, &addr), &size), &ticks) in entries {
            now += 1;
            out.events += 1;
            match kind {
                PackedKind::Inst => out.insts += addr,
                PackedKind::Branch => out.branches += addr,
                PackedKind::Gap => {
                    // A run of `addr` clock-only events; one was counted
                    // above, the rest advance here.
                    now += addr - 1;
                    out.events += addr - 1;
                }
                PackedKind::Prefetch => {
                    self.prefetch(addr, now);
                    no_inflight = false;
                    // The prefetch fill picks victims in both levels
                    // (possibly the memoized lines) and re-arms the
                    // in-flight table.
                    cursor.block = NO_MEMO;
                    cursor.l2_block = NO_MEMO;
                }
                PackedKind::LoadDep | PackedKind::LoadIndep => {
                    let span = u64::from(size).max(1) - 1;

                    // Translate once per page touched, skipping the scan
                    // when the first page is the one the previous
                    // reference left most-recently-used.
                    if let Some(tlb) = &mut self.tlb {
                        let first_p = page_of(addr);
                        let last_p = page_of(addr + span);
                        let mut p = first_p;
                        if cursor.page == (space_salt | first_p) {
                            // Guaranteed hit on the most-recently-used
                            // entry: that page is resident and already at
                            // the head of the recency list, so skipping
                            // the probe and the (no-op) move-to-front
                            // leaves every future eviction decision
                            // exactly as the probing path would. The memo
                            // key carries the space salt, so a buffer from
                            // another address space can never ride a
                            // translation this one left behind.
                            tlb_acc += 1;
                            p += 1;
                        }
                        while p <= last_p {
                            let miss = u64::from(!tlb.access_page_untallied(space_salt | p));
                            tlb_acc += 1;
                            tlb_miss += miss;
                            out.cycles += lat.tlb_miss * miss;
                            p += 1;
                        }
                        cursor.page = space_salt | last_p;
                    }

                    // Probe each touched block, skipping the leading block
                    // when it is the previous load's (still-MRU) block.
                    let first_b = l1_geo.block_of(addr);
                    let last_b = l1_geo.block_of(addr + span);
                    let mut b = first_b;
                    if !attrib_on && cursor.block == first_b {
                        l1_tally.reads += 1;
                        out.cycles += lat.l1_hit;
                        b += block_bytes;
                    }
                    if no_inflight && !attrib_on {
                        // No prefetch can be outstanding, so the in-flight
                        // probe `access_block` performs per block is a
                        // guaranteed no-op: take the read path inline
                        // without hashing the block address at all.
                        //
                        // A node that straddles one block boundary — the
                        // shape of every load in the paper's workloads —
                        // probes exactly two blocks; when both are
                        // resident, one paired compare retires the whole
                        // reference.
                        if l1_pair
                            && last_b.wrapping_sub(b) == block_bytes
                            && self.l1.hit_pair(b, last_b)
                        {
                            l1_tally.reads += 2;
                            out.cycles += 2 * lat.l1_hit;
                        } else {
                            while b <= last_b {
                                let l1_hit = if l1_direct {
                                    self.l1.read_direct(b, &mut l1_tally)
                                } else {
                                    self.l1.access(b, false).hit
                                };
                                if l1_hit {
                                    out.cycles += lat.l1_hit;
                                } else {
                                    let l2b = l2_geo.block_of(b);
                                    if cursor.l2_block == l2b {
                                        // Guaranteed hit on the L2's MRU
                                        // line; skip the probe and stamp.
                                        l2_tally.reads += 1;
                                        out.cycles += lat.l1_hit + lat.l1_miss;
                                    } else {
                                        cursor.l2_block = l2b;
                                        let l2_hit = if l2_direct {
                                            self.l2.read_direct(b, &mut l2_tally)
                                        } else {
                                            self.l2.access(b, false).hit
                                        };
                                        if l2_hit {
                                            out.cycles += lat.l1_hit + lat.l1_miss;
                                        } else {
                                            out.cycles += lat.l1_hit + lat.l1_miss + lat.l2_miss;
                                        }
                                    }
                                }
                                b += block_bytes;
                            }
                        }
                    } else {
                        while b <= last_b {
                            // First referenced byte, not the block base —
                            // probes mask internally (stats identical), but
                            // attribution resolves the precise field.
                            self.access_block(addr.max(b), false, now, &mut out.cycles);
                            b += block_bytes;
                        }
                        // The slow path's L2 probes are not tracked.
                        cursor.l2_block = NO_MEMO;
                    }
                    cursor.block = last_b;
                }
                PackedKind::Store => {
                    let span = u64::from(size).max(1) - 1;
                    if space_salt == 0 {
                        // Stores are rare in the pointer-chase workloads
                        // this path accelerates; take the reference
                        // implementation wholesale (its write-buffer cycle
                        // override and write-through L2 propagation stay
                        // in one place).
                        let o = self.access(addr, size, AccessKind::Write, now);
                        out.cycles += o.cycles;
                    } else {
                        // The reference path knows nothing about address
                        // spaces, so a salted store is decomposed by hand:
                        // salted TLB probes (write cost charges at most
                        // one TLB penalty — the scalar path's write-buffer
                        // override), then the block writes with their
                        // cycles discarded, exactly as `access` overrides
                        // them.
                        let mut tlb_missed = 0u64;
                        if let Some(tlb) = &mut self.tlb {
                            let mut p = page_of(addr);
                            let last_p = page_of(addr + span);
                            while p <= last_p {
                                let miss = u64::from(!tlb.access_page_untallied(space_salt | p));
                                tlb_acc += 1;
                                tlb_miss += miss;
                                tlb_missed |= miss;
                                p += 1;
                            }
                        }
                        let mut discard = 0u64;
                        let mut b = l1_geo.block_of(addr);
                        let last_b = l1_geo.block_of(addr + span);
                        while b <= last_b {
                            self.access_block(addr.max(b), true, now, &mut discard);
                            b += block_bytes;
                        }
                        out.cycles += lat.l1_hit + tlb_missed * lat.tlb_miss;
                    }
                    // A write-back store miss allocates and may evict the
                    // memoized lines at either level; the store did leave
                    // its last page most-recently-translated, though.
                    cursor.block = NO_MEMO;
                    cursor.l2_block = NO_MEMO;
                    if self.tlb.is_some() {
                        cursor.page = space_salt | page_of(addr + span);
                    }
                }
            }
            // The entry's folded tick run: clock-only events that
            // followed it in the original stream.
            let t = u64::from(ticks);
            now += t;
            out.events += t;
        }
        if l1_tally.any() {
            self.l1.stats_mut().add_read_tally(&l1_tally);
        }
        if l2_tally.any() {
            self.l2.stats_mut().add_read_tally(&l2_tally);
        }
        if tlb_acc > 0 {
            if let Some(tlb) = &mut self.tlb {
                tlb.add_bulk_stats(tlb_acc, tlb_miss);
            }
        }
        out
    }
}

/// An [`EventSink`] that buffers events into a [`TraceBuf`] and drains
/// them through [`MemorySystem::access_batch`] — the batched counterpart
/// of [`crate::MemorySink`], producing bit-identical statistics and
/// cycles.
///
/// Because events are applied in batches, accessors reflect the stream
/// only up to the last drain: call [`BatchSink::flush`] before reading
/// counters at a measurement point.
///
/// An optional observer receives every event as it arrives (before
/// batching), for consumers that need the raw stream — an
/// [`crate::AffinityTrace`], a [`crate::Tee`], a recorder. Without one,
/// the hot loop carries no per-event observer dispatch at all.
///
/// # Example
///
/// ```
/// use cc_sim::batch::BatchSink;
/// use cc_sim::event::EventSink;
/// use cc_sim::MachineConfig;
///
/// let mut sink = BatchSink::new(MachineConfig::ultrasparc_e5000());
/// sink.load(0x1000, 20);
/// sink.load(0x1014, 20); // same 64-byte L2 block
/// sink.flush();
/// assert_eq!(sink.system().l2_stats().misses(), 1);
/// ```
#[derive(Debug)]
pub struct BatchSink<O: EventSink = NullSink> {
    system: MemorySystem,
    buf: TraceBuf,
    cursor: BatchCursor,
    observer: Option<O>,
    insts: u64,
    branches: u64,
    now: u64,
    cycles: u64,
    /// When armed (only by fault injection), each flush validates the
    /// buffer first. Off by default, so the no-fault hot path is unchanged.
    validate: bool,
    /// Batches that failed validation and were replayed on the scalar path.
    fallback_batches: u64,
    /// Events salvaged through those scalar replays.
    fallback_events: u64,
}

/// Default number of events staged per drain: large enough to amortize the
/// flush bookkeeping, small enough that the three lanes stay resident in
/// the host's L1/L2 caches.
pub const DEFAULT_BATCH_CAPACITY: usize = 4096;

impl BatchSink<NullSink> {
    /// Creates an observer-less batched sink simulating `machine`.
    pub fn new(machine: crate::MachineConfig) -> Self {
        Self::with_capacity(machine, DEFAULT_BATCH_CAPACITY)
    }

    /// Creates an observer-less batched sink with a custom batch capacity.
    pub fn with_capacity(machine: crate::MachineConfig, cap: usize) -> Self {
        BatchSink {
            system: MemorySystem::new(machine),
            buf: TraceBuf::with_capacity(cap),
            cursor: BatchCursor::new(),
            observer: None,
            insts: 0,
            branches: 0,
            now: 0,
            cycles: 0,
            validate: false,
            fallback_batches: 0,
            fallback_events: 0,
        }
    }
}

impl<O: EventSink> BatchSink<O> {
    /// Creates a batched sink that also forwards every event to
    /// `observer` as it arrives.
    pub fn with_observer(machine: crate::MachineConfig, observer: O) -> Self {
        BatchSink {
            system: MemorySystem::new(machine),
            buf: TraceBuf::with_capacity(DEFAULT_BATCH_CAPACITY),
            cursor: BatchCursor::new(),
            observer: Some(observer),
            insts: 0,
            branches: 0,
            now: 0,
            cycles: 0,
            validate: false,
            fallback_batches: 0,
            fallback_events: 0,
        }
    }

    /// Applies `fault` to the currently staged events and arms per-flush
    /// validation for the rest of this sink's life. Only injection pays
    /// the validation cost; an unfaulted sink's flush path is untouched.
    pub fn inject_fault(&mut self, fault: &TraceFault) {
        self.buf.inject_fault(fault);
        self.validate = true;
    }

    /// Batches that failed validation and fell back to the scalar replay.
    pub fn fallback_batches(&self) -> u64 {
        self.fallback_batches
    }

    /// Events salvaged through scalar fallback replays.
    pub fn fallback_events(&self) -> u64 {
        self.fallback_events
    }

    /// Replays the (repaired) buffer one event at a time, mirroring
    /// [`crate::MemorySink::event`] exactly: the reference path the batched
    /// engine is differentially pinned to. Decoded instruction/branch
    /// events carry count 0 (their counts were folded at arrival), so the
    /// replay only advances the clock for them.
    fn scalar_replay(&mut self) {
        let events: Vec<Event> = self.buf.events().collect();
        for ev in events {
            self.now += 1;
            match ev {
                Event::Inst(n) => self.insts += u64::from(n),
                Event::Branch(n) => self.branches += u64::from(n),
                Event::Load { addr, size, .. } => {
                    self.cycles += self
                        .system
                        .access(addr, size, AccessKind::Read, self.now)
                        .cycles;
                }
                Event::Store { addr, size } => {
                    self.cycles += self
                        .system
                        .access(addr, size, AccessKind::Write, self.now)
                        .cycles;
                }
                Event::Prefetch { addr } => {
                    self.system.prefetch(addr, self.now);
                }
            }
            self.fallback_events += 1;
        }
        // The scalar path bypassed the cursor's memo, so its last-block /
        // last-page shortcuts are stale: drop them before the next batch.
        self.cursor.reset();
    }

    /// Drains buffered events into the memory system. Idempotent when the
    /// buffer is empty.
    pub fn flush(&mut self) {
        if self.buf.is_empty() {
            return;
        }
        if self.validate && self.buf.validate().is_err() {
            // Corrupt batch: repair what can be salvaged and replay it on
            // the scalar reference path, then resume batching.
            self.fallback_batches += 1;
            self.buf.repair();
            self.scalar_replay();
            self.buf.clear();
            return;
        }
        let out = self
            .system
            .access_batch(&self.buf, self.now, &mut self.cursor);
        self.now += out.events;
        self.cycles += out.cycles;
        self.insts += out.insts;
        self.branches += out.branches;
        self.buf.clear();
    }

    /// The underlying memory system. Reflects the stream up to the last
    /// [`BatchSink::flush`].
    pub fn system(&self) -> &MemorySystem {
        &self.system
    }

    /// Enables per-region miss attribution. Flushes buffered events first so
    /// the profile covers exactly the events delivered after this call.
    ///
    /// Attribution disables the batched fast paths and block memos (they
    /// aggregate probes the profiler must observe individually), so the
    /// stream costs more wall-clock time — but statistics and cycle totals
    /// remain bit-identical to the unattributed run.
    pub fn enable_attribution(&mut self, map: std::sync::Arc<cc_obs::RegionMap>) {
        self.flush();
        self.system.enable_attribution(map);
    }

    /// Additionally attributes demand accesses to struct fields; see
    /// [`MemorySystem::enable_field_attribution`]. Flushes buffered
    /// events first.
    ///
    /// # Panics
    ///
    /// Panics if [`BatchSink::enable_attribution`] was not called.
    pub fn enable_field_attribution(&mut self, map: std::sync::Arc<cc_obs::FieldMap>) {
        self.flush();
        self.system.enable_field_attribution(map);
    }

    /// The attribution profile, if [`BatchSink::enable_attribution`] was
    /// called. Reflects the stream up to the last [`BatchSink::flush`].
    pub fn attribution(&self) -> Option<&cc_obs::MissProfile> {
        self.system.attribution()
    }

    /// Instructions retired. Exact at any time: instruction counts are
    /// folded into the counter as events arrive, not at drain time.
    pub fn insts(&self) -> u64 {
        self.insts
    }

    /// Branches observed. Exact at any time, like [`BatchSink::insts`].
    pub fn branches(&self) -> u64 {
        self.branches
    }

    /// Accumulated Section 5.1 memory cycles, up to the last flush.
    pub fn memory_cycles(&self) -> u64 {
        self.cycles
    }

    /// The attached observer, if any.
    pub fn observer(&self) -> Option<&O> {
        self.observer.as_ref()
    }

    /// Flushes and decomposes the sink into its memory system and
    /// observer.
    pub fn into_parts(mut self) -> (MemorySystem, Option<O>) {
        self.flush();
        (self.system, self.observer)
    }

    /// Flushes pending events, then zeroes the statistics counters
    /// (cache and TLB *contents* are preserved), mirroring
    /// [`crate::MemorySink::reset_stats`].
    pub fn reset_stats(&mut self) {
        self.flush();
        self.system.reset_stats();
        self.insts = 0;
        self.branches = 0;
        self.cycles = 0;
    }
}

impl<O: EventSink> BatchSink<O> {
    /// Stages one clock tick for an instruction or branch event. Almost
    /// always folds into the trailing entry's tick lane; a tick arriving
    /// at a full buffer that cannot absorb it forces a drain first.
    fn stage_tick(&mut self) {
        if self.buf.is_full() && !self.buf.can_fold_ticks(1) {
            self.flush();
        }
        self.buf.push_ticks(1);
    }
}

impl<O: EventSink> EventSink for BatchSink<O> {
    fn event(&mut self, ev: Event) {
        if let Some(obs) = &mut self.observer {
            obs.event(ev);
        }
        match ev {
            // Instruction and branch events carry no address: fold their
            // counts in immediately and stage only the clock advance.
            Event::Inst(n) => {
                self.insts += u64::from(n);
                self.stage_tick();
            }
            Event::Branch(n) => {
                self.branches += u64::from(n);
                self.stage_tick();
            }
            _ => {
                // Drain lazily, just before the push that needs the room:
                // a full buffer can still fold trailing ticks, so keeping
                // it around lets tick runs at the boundary coalesce.
                if self.buf.is_full() {
                    self.flush();
                }
                self.buf.push(ev);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MachineConfig;

    #[test]
    fn tracebuf_roundtrips_all_kinds() {
        let evs = [
            Event::Inst(3),
            Event::Branch(1),
            Event::load(0x100, 8),
            Event::load_indep(0x200, 4),
            Event::store(0x300, 16),
            Event::Prefetch { addr: 0x400 },
        ];
        let mut buf = TraceBuf::with_capacity(8);
        for &e in &evs {
            buf.push(e);
        }
        let back: Vec<Event> = buf.events().collect();
        assert_eq!(back, evs);
        buf.clear();
        assert!(buf.is_empty());
        assert_eq!(buf.capacity(), 8);
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn tracebuf_rejects_overflow() {
        let mut buf = TraceBuf::with_capacity(1);
        buf.push(Event::Inst(1));
        buf.push(Event::Inst(1));
    }

    #[test]
    fn tick_runs_fold_into_the_preceding_entry() {
        let mut buf = TraceBuf::with_capacity(4);
        buf.push_ticks(2); // head of buffer: needs a standalone gap entry
        buf.push(Event::load(0x100, 8));
        buf.push_ticks(1);
        buf.push_ticks(2); // widens the same run
        buf.push(Event::store(0x200, 8));
        buf.push_ticks(1);
        assert_eq!(buf.len(), 3, "tick runs consumed no extra entries");
        let back: Vec<Event> = buf.events().collect();
        assert_eq!(
            back,
            vec![
                Event::Inst(0),
                Event::Inst(0),
                Event::load(0x100, 8),
                Event::Inst(0),
                Event::Inst(0),
                Event::Inst(0),
                Event::store(0x200, 8),
                Event::Inst(0),
            ]
        );
        assert!(buf.can_fold_ticks(1));
        assert!(!TraceBuf::with_capacity(1).can_fold_ticks(1));
    }

    #[test]
    fn full_buffer_still_absorbs_ticks() {
        let mut buf = TraceBuf::with_capacity(1);
        buf.push(Event::load(0x40, 8));
        assert!(buf.is_full());
        buf.push_ticks(3); // folds; must not panic
        assert_eq!(buf.events().count(), 4);
    }

    #[test]
    fn batch_sink_matches_scalar_on_a_pointer_chase() {
        use crate::{EventSink, MemorySink};
        let machine = MachineConfig::test_tiny();
        let mut scalar = MemorySink::new(machine);
        let mut batched = BatchSink::with_capacity(machine, 3); // force mid-stream drains
        drive(&mut scalar);
        drive(&mut batched);
        batched.flush();
        assert_eq!(batched.system().l1_stats(), scalar.system().l1_stats());
        assert_eq!(batched.system().l2_stats(), scalar.system().l2_stats());
        assert_eq!(batched.system().tlb_stats(), scalar.system().tlb_stats());
        assert_eq!(batched.memory_cycles(), scalar.memory_cycles());
        assert_eq!(batched.insts(), scalar.insts());

        fn drive<S: EventSink + ?Sized>(s: &mut S) {
            // Same-block run, a straddle, a store, a prefetch, a revisit.
            s.load(0x100, 8);
            s.load(0x104, 8);
            s.load(0x108, 8);
            s.inst(2);
            s.load(0x10c, 8); // straddles into the next block
            s.store(0x140, 8);
            s.prefetch(0x200);
            s.load(0x200, 8);
            s.load(0x100, 8);
        }
    }

    #[test]
    fn observer_sees_every_event() {
        use crate::event::TraceBuffer;
        use crate::EventSink;
        let mut sink = BatchSink::with_observer(MachineConfig::test_tiny(), TraceBuffer::new());
        sink.load(0x40, 8);
        sink.store(0x80, 8);
        sink.inst(1);
        let (_, obs) = sink.into_parts();
        assert_eq!(obs.expect("observer attached").events().len(), 3);
    }

    #[test]
    fn flush_is_idempotent_and_counters_accumulate() {
        use crate::EventSink;
        let mut sink = BatchSink::new(MachineConfig::test_tiny());
        sink.load(0x40, 8);
        sink.flush();
        let c = sink.memory_cycles();
        sink.flush();
        assert_eq!(sink.memory_cycles(), c);
        assert!(c > 0);
        sink.reset_stats();
        assert_eq!(sink.memory_cycles(), 0);
        assert_eq!(sink.system().l1_stats().accesses(), 0);
    }

    #[test]
    fn validate_catches_truncated_lanes_and_repair_restores_them() {
        let mut buf = TraceBuf::with_capacity(8);
        for i in 0..5 {
            buf.push(Event::load(0x100 + i * 0x40, 8));
        }
        assert_eq!(buf.validate(), Ok(()));
        buf.inject_fault(&TraceFault::TruncateAddrLane { keep: 3 });
        assert_eq!(
            buf.validate(),
            Err(TraceCorruption::LaneMismatch {
                kinds: 5,
                addrs: 3,
                sizes: 5,
                ticks: 5,
            })
        );
        assert_eq!(buf.repair(), 2, "two entries lost to truncation");
        assert_eq!(buf.validate(), Ok(()));
        let back: Vec<Event> = buf.events().collect();
        assert_eq!(
            back,
            vec![
                Event::load(0x100, 8),
                Event::load(0x140, 8),
                Event::load(0x180, 8),
            ]
        );
    }

    #[test]
    fn validate_catches_zero_gap_runs() {
        let mut buf = TraceBuf::with_capacity(8);
        buf.push_ticks(2); // standalone gap entry at index 0
        buf.push(Event::load(0x100, 8));
        buf.inject_fault(&TraceFault::ZeroGapRun { entry: 0 });
        assert_eq!(
            buf.validate(),
            Err(TraceCorruption::EmptyGapRun { entry: 0 })
        );
        assert_eq!(buf.repair(), 1, "the empty gap is dropped");
        assert_eq!(buf.validate(), Ok(()));
        assert_eq!(
            buf.events().collect::<Vec<_>>(),
            vec![Event::load(0x100, 8)]
        );
    }

    #[test]
    fn scramble_is_deterministic_and_spares_count_lanes() {
        let build = || {
            let mut buf = TraceBuf::with_capacity(8);
            buf.push(Event::Inst(7));
            buf.push(Event::load(0x1000, 8));
            buf.push_ticks(3);
            buf.push(Event::store(0x2000, 8));
            buf
        };
        let clean = build();
        let mut a = build();
        let mut b = build();
        a.inject_fault(&TraceFault::ScrambleAddrs { seed: 42 });
        b.inject_fault(&TraceFault::ScrambleAddrs { seed: 42 });
        // Same seed, same corruption — the replayable-fault property.
        assert_eq!(
            a.events().collect::<Vec<_>>(),
            b.events().collect::<Vec<_>>()
        );
        assert_ne!(
            a.events().collect::<Vec<_>>(),
            clean.events().collect::<Vec<_>>()
        );
        // Structure stays valid: scramble is a semantic fault.
        assert_eq!(a.validate(), Ok(()));
        // Counts (Inst run length, gap run length) are untouched.
        let back: Vec<Event> = a.events().collect();
        assert_eq!(back[0], Event::Inst(7));
        assert_eq!(&back[2..5], &[Event::Inst(0); 3]);
    }

    #[test]
    fn corrupt_batch_falls_back_to_scalar_and_matches_the_reference() {
        use crate::{EventSink, MemorySink};
        let machine = MachineConfig::test_tiny();
        let mut batched = BatchSink::with_capacity(machine, 8);
        batched.inst(2);
        for i in 0..5 {
            batched.load(0x100 + i * 0x40, 8);
        }
        batched.inject_fault(&TraceFault::TruncateAddrLane { keep: 4 });
        batched.flush();
        assert_eq!(batched.fallback_batches(), 1);
        assert!(batched.fallback_events() > 0);
        // Reference: the scalar sink fed the surviving (repaired) stream.
        // The instruction event's tick occupies one buffer entry ahead of
        // the loads, so truncating the address lane to 4 keeps 3 loads.
        let mut reference = MemorySink::new(machine);
        reference.inst(2);
        for i in 0..3 {
            reference.load(0x100 + i * 0x40, 8);
        }
        assert_eq!(batched.system().l1_stats(), reference.system().l1_stats());
        assert_eq!(batched.system().tlb_stats(), reference.system().tlb_stats());
        assert_eq!(batched.memory_cycles(), reference.memory_cycles());
        assert_eq!(batched.insts(), reference.insts());
        // The sink recovers: later batches run on the fast path again.
        batched.load(0x400, 8);
        batched.flush();
        assert_eq!(batched.fallback_batches(), 1, "clean batch stayed batched");
        assert_eq!(
            batched.system().l1_stats().accesses(),
            reference.system().l1_stats().accesses() + 1
        );
    }

    #[test]
    fn tlb_memo_is_keyed_by_page_and_space() {
        use crate::MemorySystem;
        let machine = MachineConfig::test_tiny();
        let mut sys = MemorySystem::new(machine);
        let mut cursor = BatchCursor::new();
        let mut a = TraceBuf::with_capacity(4);
        a.push(Event::load(0x100, 8));
        let mut b = TraceBuf::with_capacity(4);
        b.set_space(1);
        b.push(Event::load(0x100, 8)); // same numeric page, another space
        let o = sys.access_batch(&a, 0, &mut cursor);
        sys.access_batch(&b, o.events, &mut cursor);
        let t = sys.tlb_stats();
        assert_eq!(t.accesses(), 2);
        // Pinned regression: with the memo keyed by page alone, the second
        // buffer's translation would ride the first one's memo and this
        // would read 1 — a hit the other space never earned.
        assert_eq!(t.misses(), 2, "each space translates its page cold");
        // The caches are physically tagged, so the *block* memo must still
        // fire across spaces: one miss, then a guaranteed hit.
        assert_eq!(sys.l1_stats().reads(), 2);
        assert_eq!(sys.l1_stats().read_misses(), 1);
    }

    #[test]
    fn salted_store_arm_matches_the_reference_store_arm() {
        use crate::MemorySystem;
        // Within a single space the salt is a bijection on TLB keys, so a
        // space-1 replay (manual store decomposition) must be observably
        // identical to the same trace in space 0 (reference `access` arm).
        let machine = MachineConfig::test_tiny();
        let build = |space: u32| {
            let mut buf = TraceBuf::with_capacity(16);
            buf.set_space(space);
            buf.push(Event::store(0x100, 8));
            buf.push(Event::load(0x104, 8));
            buf.push(Event::store(0x1fc, 8)); // straddles a page boundary
            buf.push(Event::store(0x100, 20));
            buf.push(Event::load(0x400, 8));
            buf
        };
        let mut run = |space: u32| {
            let mut sys = MemorySystem::new(machine);
            let mut cursor = BatchCursor::new();
            let out = sys.access_batch(&build(space), 0, &mut cursor);
            (out, sys.l1_stats(), sys.l2_stats(), sys.tlb_stats())
        };
        assert_eq!(run(0), run(1));
    }

    #[test]
    fn compact_codec_roundtrips() {
        let mut buf = TraceBuf::with_capacity(16);
        buf.set_space(3);
        buf.push(Event::Inst(2));
        buf.push(Event::load(0x1000, 20));
        buf.push_ticks(5);
        buf.push(Event::load(0xfe0, 20)); // negative address delta
        buf.push(Event::store(0x2000, 8));
        buf.push(Event::Prefetch { addr: 0x40 });
        buf.push(Event::Branch(1));
        let text = buf.encode_compact();
        let back = TraceBuf::decode_compact(&text).expect("roundtrip");
        assert_eq!(back.capacity(), buf.capacity());
        assert_eq!(back.space(), buf.space());
        assert_eq!(
            back.events().collect::<Vec<_>>(),
            buf.events().collect::<Vec<_>>()
        );
        assert!(buf.approx_bytes() > 0);
    }

    #[test]
    fn compact_codec_rejects_tampered_text() {
        let mut buf = TraceBuf::with_capacity(4);
        buf.push(Event::load(0x40, 8));
        let text = buf.encode_compact();
        assert!(TraceBuf::decode_compact("").is_none());
        assert!(TraceBuf::decode_compact("ccbuf v2 4 0 1\nk \na \ns \nt ").is_none());
        // Truncating a lane line breaks the lane-length cross-check.
        let truncated: String = text.lines().take(3).collect::<Vec<_>>().join("\n");
        assert!(TraceBuf::decode_compact(&truncated).is_none());
        // An out-of-range kind digit is rejected, not wrapped.
        let bad = text.replace("k 2x1", "k 9x1");
        assert!(TraceBuf::decode_compact(&bad).is_none());
    }

    #[test]
    fn unfaulted_sink_never_pays_for_validation() {
        use crate::EventSink;
        let mut sink = BatchSink::new(MachineConfig::test_tiny());
        for i in 0..10 {
            sink.load(0x100 + i * 0x40, 8);
        }
        sink.flush();
        assert_eq!(sink.fallback_batches(), 0);
        assert_eq!(sink.fallback_events(), 0);
    }
}
