//! A deterministic, multiply-based hasher for the simulator's internal
//! integer-keyed tables (`ever_resident`, prefetch in-flight tracking).
//!
//! The standard library's default hasher is SipHash with a per-process
//! random seed: robust against adversarial keys, but tens of nanoseconds
//! per probe — which is most of the cost of simulating a cache hit — and
//! randomly seeded, so iteration-order-dependent behaviour could differ
//! between runs. Simulated block addresses are not adversarial, so a
//! Fibonacci-multiply mix is sufficient, an order of magnitude cheaper,
//! and (being unseeded) fully deterministic across processes — which the
//! sweep harness's byte-for-byte reproducibility leans on.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-mix hasher for integer keys (block and page addresses).
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct FastHasher {
    hash: u64,
}

/// 2^64 / φ, the usual Fibonacci-hashing multiplier: odd, and spreads
/// consecutive block addresses across the high bits the table indexes by.
/// Shared with the TLB's inline page table, which indexes by the same mix.
pub(crate) const K: u64 = 0x9E37_79B9_7F4A_7C15;

impl Hasher for FastHasher {
    fn finish(&self) -> u64 {
        self.hash
    }

    fn write(&mut self, bytes: &[u8]) {
        // Generic fallback (unused by the u64 keys this crate stores, but
        // required for completeness): fold 8-byte chunks.
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.write_u64(u64::from_le_bytes(buf));
        }
    }

    fn write_u64(&mut self, n: u64) {
        // Rotate before mixing so field order matters for multi-field keys;
        // multiply to diffuse low-entropy (block-aligned) inputs upward.
        self.hash = (self.hash.rotate_left(5) ^ n).wrapping_mul(K);
    }

    fn write_usize(&mut self, n: usize) {
        self.write_u64(n as u64);
    }
}

/// `HashMap` keyed by simulated addresses, with the fast deterministic
/// hasher.
pub(crate) type FastHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FastHasher>>;

/// `HashSet` of simulated addresses, with the fast deterministic hasher.
pub(crate) type FastHashSet<K> = HashSet<K, BuildHasherDefault<FastHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_spreading() {
        let mut set = FastHashSet::default();
        for b in (0..4096u64).map(|i| i * 64) {
            set.insert(b);
        }
        assert_eq!(set.len(), 4096);
        assert!(set.contains(&(64 * 100)));
        // Same key hashes identically across hasher instances.
        let mut a = FastHasher::default();
        let mut b = FastHasher::default();
        a.write_u64(0xABCD);
        b.write_u64(0xABCD);
        assert_eq!(a.finish(), b.finish());
        // Block-aligned neighbours do not collide to the same hash.
        let h = |n: u64| {
            let mut x = FastHasher::default();
            x.write_u64(n);
            x.finish()
        };
        assert_ne!(h(0), h(64));
    }

    #[test]
    fn byte_fallback_handles_ragged_lengths() {
        let mut a = FastHasher::default();
        a.write(&[1, 2, 3]);
        let mut b = FastHasher::default();
        b.write(&[1, 2, 3, 0, 0]);
        // Different logical inputs may or may not collide; just ensure the
        // fallback runs and produces a stable value.
        let mut a2 = FastHasher::default();
        a2.write(&[1, 2, 3]);
        assert_eq!(a.finish(), a2.finish());
        let _ = b.finish();
    }
}
