//! Trace-driven memory-hierarchy simulator for the *Cache-Conscious
//! Structure Layout* reproduction (Chilimbi, Hill & Larus, PLDI 1999).
//!
//! The paper measures its placement techniques on two substrates: a Sun
//! Ultraserver E5000 (tree microbenchmark, RADIANCE, VIS) and RSIM, a
//! cycle-level out-of-order simulator (the Olden suite, Table 1). Neither is
//! available here, so this crate provides the closest synthetic equivalent:
//!
//! * a two-level, set-associative, LRU [`cache::Cache`] hierarchy
//!   ([`MemorySystem`]) with write-through or write-back policies,
//! * a fully-associative [`tlb::Tlb`],
//! * hardware and software prefetching models ([`prefetch`]),
//! * a simplified out-of-order [`pipeline::Pipeline`] that attributes each
//!   cycle to *busy*, *instruction stall*, *data stall*, or *store stall*
//!   using the paper's attribution rule (Section 4.4), and
//! * machine presets ([`config::MachineConfig`]) for the E5000 and the
//!   paper's Table 1 RSIM configuration.
//!
//! Workloads are *programs over a simulated heap*: they emit [`event::Event`]
//! streams (instruction work, branches, loads, stores, prefetches) into an
//! [`event::EventSink`] — either a pure [`MemorySink`] when only miss rates
//! matter (Figures 5 and 10) or a [`pipeline::Pipeline`] when the stall
//! breakdown matters (Figure 7).
//!
//! # Example
//!
//! ```
//! use cc_sim::config::MachineConfig;
//! use cc_sim::event::{Event, EventSink};
//! use cc_sim::MemorySink;
//!
//! let mut mem = MemorySink::new(MachineConfig::ultrasparc_e5000());
//! // A tiny pointer chase: two nodes in the same 64-byte L2 block.
//! mem.event(Event::load(0x1000, 20));
//! mem.event(Event::load(0x1014, 20));
//! let s = mem.system().l2_stats();
//! assert_eq!(s.misses(), 1, "second access hits the block the first pulled in");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
mod blockset;
pub mod cache;
pub mod config;
pub mod event;
mod fasthash;
pub mod geometry;
pub mod hierarchy;
mod kernel;
pub mod pipeline;
pub mod prefetch;
pub mod shard;
pub mod stats;
pub mod tlb;

pub use batch::{
    BatchCursor, BatchOutcome, BatchSink, MemRef, TraceBuf, TraceCorruption, TraceFault,
};
pub use config::{Latency, MachineConfig};
pub use event::{AffinityTrace, Event, EventSink, Tee};
pub use geometry::CacheGeometry;
pub use hierarchy::{AccessKind, AccessOutcome, Level, MemorySystem};
pub use pipeline::{Breakdown, Pipeline, PipelineConfig};
pub use shard::{
    ShardDegradation, ShardPlan, ShardReplayOutcome, ShardedReplayer, ShardedTrace, SplitPool,
};
pub use stats::CacheStats;

/// An [`EventSink`] that drives a [`MemorySystem`] and ignores pipeline
/// timing — the measurement device for the miss-rate-only experiments
/// (tree microbenchmark, model validation).
///
/// Each event advances a logical access clock by one so that prefetch
/// completion still has a meaningful time base.
#[derive(Debug)]
pub struct MemorySink {
    system: MemorySystem,
    insts: u64,
    branches: u64,
    now: u64,
    /// Cycles accumulated by the Section 5.1 latency formula as accesses
    /// stream through (includes TLB penalties).
    cycles: u64,
}

impl MemorySink {
    /// Creates a sink simulating `machine`.
    pub fn new(machine: MachineConfig) -> Self {
        MemorySink {
            system: MemorySystem::new(machine),
            insts: 0,
            branches: 0,
            now: 0,
            cycles: 0,
        }
    }

    /// The underlying memory system (cache and TLB statistics).
    pub fn system(&self) -> &MemorySystem {
        &self.system
    }

    /// Enables per-region miss attribution on the underlying memory system
    /// (see [`MemorySystem::enable_attribution`]).
    pub fn enable_attribution(&mut self, map: std::sync::Arc<cc_obs::RegionMap>) {
        self.system.enable_attribution(map);
    }

    /// Additionally attributes demand accesses to struct fields (see
    /// [`MemorySystem::enable_field_attribution`]).
    ///
    /// # Panics
    ///
    /// Panics if [`MemorySink::enable_attribution`] was not called.
    pub fn enable_field_attribution(&mut self, map: std::sync::Arc<cc_obs::FieldMap>) {
        self.system.enable_field_attribution(map);
    }

    /// The attribution profile, if [`MemorySink::enable_attribution`] was
    /// called.
    pub fn attribution(&self) -> Option<&cc_obs::MissProfile> {
        self.system.attribution()
    }

    /// Instructions retired (from [`Event::Inst`]).
    pub fn insts(&self) -> u64 {
        self.insts
    }

    /// Branches observed (from [`Event::Branch`]).
    pub fn branches(&self) -> u64 {
        self.branches
    }

    /// Total memory cycles accumulated by the paper's Section 5.1 formula:
    /// every reference costs `t_h`, plus the L1/L2 miss penalties and TLB
    /// penalties actually incurred.
    pub fn memory_cycles(&self) -> u64 {
        self.cycles
    }

    /// Resets the statistics counters (cache *contents* are preserved), so a
    /// caller can separate warm-up from steady-state measurement.
    pub fn reset_stats(&mut self) {
        self.system.reset_stats();
        self.insts = 0;
        self.branches = 0;
        self.cycles = 0;
    }
}

impl EventSink for MemorySink {
    fn event(&mut self, ev: Event) {
        self.now += 1;
        match ev {
            Event::Inst(n) => self.insts += u64::from(n),
            Event::Branch(n) => self.branches += u64::from(n),
            Event::Load { addr, size, .. } => {
                let out = self.system.access(addr, size, AccessKind::Read, self.now);
                self.cycles += out.cycles;
            }
            Event::Store { addr, size } => {
                let out = self.system.access(addr, size, AccessKind::Write, self.now);
                self.cycles += out.cycles;
            }
            Event::Prefetch { addr } => {
                self.system.prefetch(addr, self.now);
            }
        }
    }
}
