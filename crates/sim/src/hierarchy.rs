//! The two-level memory system: L1 + L2 + TLB + in-flight prefetch state.

use crate::cache::{Cache, WritePolicy};
use crate::config::MachineConfig;
use crate::fasthash::FastHashMap;
use crate::stats::{CacheStats, TlbStats};
use crate::tlb::Tlb;
use cc_obs::attrib::Level as ObsLevel;
use cc_obs::{FieldMap, MissProfile, RegionMap};
use std::sync::Arc;

/// Which level serviced an access.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Serviced by the L1 data cache.
    L1,
    /// Missed L1, hit L2.
    L2,
    /// Missed both caches; went to memory.
    Memory,
}

/// Demand access kind.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessKind {
    /// A load.
    Read,
    /// A store.
    Write,
}

/// Result of one demand access.
// The u64 leads and the two one-byte tails pack behind it: 16 B instead
// of the 24 B the interleaved order cost (PAD-01); repr(C) pins it, the
// offset test at the bottom of this file holds it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(C)]
pub struct AccessOutcome {
    /// Processor-visible latency in cycles. For reads this follows the
    /// paper's Section 5.1 cost structure plus any TLB-miss penalty and any
    /// wait on an in-flight prefetch. For writes it is the L1 hit time plus
    /// TLB penalty: stores retire into the write buffer, whose occupancy
    /// the pipeline models separately.
    pub cycles: u64,
    /// Deepest level that had to be consulted.
    pub level: Level,
    /// Whether the TLB missed on this reference.
    pub tlb_miss: bool,
}

/// A two-level cache hierarchy with TLB and prefetch-in-flight tracking,
/// configured from a [`MachineConfig`].
///
/// # Example
///
/// ```
/// use cc_sim::{AccessKind, Level, MachineConfig, MemorySystem};
///
/// let mut mem = MemorySystem::new(MachineConfig::ultrasparc_e5000());
/// let first = mem.access(0x10000, 8, AccessKind::Read, 0);
/// assert_eq!(first.level, Level::Memory);
/// // 16-byte L1 lines: 8 bytes later still the same L1 block.
/// let second = mem.access(0x10008, 8, AccessKind::Read, 1);
/// assert_eq!(second.level, Level::L1);
/// assert_eq!(second.cycles, 1);
/// ```
#[derive(Clone, Debug)]
pub struct MemorySystem {
    pub(crate) config: MachineConfig,
    pub(crate) l1: Cache,
    pub(crate) l2: Cache,
    pub(crate) tlb: Option<Tlb>,
    /// L2-block-aligned address → cycle at which an issued prefetch's data
    /// actually arrives. The line is installed at issue time; a demand
    /// access before completion waits out the remainder. Probed per block
    /// on the demand path, so it uses the fast deterministic hasher.
    pub(crate) inflight: FastHashMap<u64, u64>,
    /// Per-region miss attribution, absent unless a caller opted in via
    /// [`MemorySystem::enable_attribution`]. Boxed so the disabled case
    /// costs one pointer in the struct and one null test per block
    /// access; while enabled, the batched fast paths that skip cache
    /// probes are turned off so every access is individually resolved.
    pub(crate) attrib: Option<Box<MissProfile>>,
}

impl MemorySystem {
    /// Creates a cold memory system for `config`.
    pub fn new(config: MachineConfig) -> Self {
        MemorySystem {
            l1: Cache::new(config.l1, config.l1_policy),
            l2: Cache::new(config.l2, config.l2_policy),
            tlb: (config.tlb_entries > 0).then(|| Tlb::new(config.tlb_entries, config.page_bytes)),
            config,
            inflight: FastHashMap::default(),
            attrib: None,
        }
    }

    /// Starts attributing every demand access and eviction to the
    /// regions of `map`. Replay results (stats, cycles) are unchanged —
    /// attribution only disables provably-equivalent batching shortcuts
    /// — but replay runs slower; see DESIGN.md §11 for the measured
    /// cost.
    pub fn enable_attribution(&mut self, map: Arc<RegionMap>) {
        self.attrib = Some(Box::new(MissProfile::new(map)));
    }

    /// Whether attribution is currently enabled.
    pub fn attribution_enabled(&self) -> bool {
        self.attrib.is_some()
    }

    /// Additionally resolves each demand access below region granularity
    /// to the struct *field* it touches, per `map` (see
    /// [`cc_obs::FieldMap`]). Requires region attribution to be enabled
    /// first — field tallies live inside the same [`MissProfile`].
    ///
    /// # Panics
    ///
    /// Panics if [`MemorySystem::enable_attribution`] was not called.
    pub fn enable_field_attribution(&mut self, map: Arc<FieldMap>) {
        let p = self
            .attrib
            .as_deref_mut()
            .expect("field attribution requires enable_attribution first");
        p.enable_fields(map);
    }

    /// The accumulated attribution profile, if enabled.
    pub fn attribution(&self) -> Option<&MissProfile> {
        self.attrib.as_deref()
    }

    /// Stops attributing and returns the accumulated profile.
    pub fn take_attribution(&mut self) -> Option<MissProfile> {
        self.attrib.take().map(|b| *b)
    }

    /// Records one attribution event: a demand access (`hit` is
    /// `Some`) or a bare fill (`hit` is `None`), plus the eviction it
    /// caused, if any. Kept out of line so the disabled hot path pays
    /// only the `is_some` test at each call site.
    #[cold]
    fn note(&mut self, level: ObsLevel, addr: u64, hit: Option<bool>, victim: Option<u64>) {
        let Some(p) = self.attrib.as_deref_mut() else {
            return;
        };
        let region = p.resolve(addr);
        if let Some(hit) = hit {
            p.record_access(level, region, hit);
            p.record_field_access(level, addr, hit);
        }
        if let Some(victim) = victim {
            let victim_region = p.resolve(victim);
            p.record_eviction(level, victim_region, region);
        }
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// L1 statistics.
    pub fn l1_stats(&self) -> CacheStats {
        self.l1.stats()
    }

    /// L2 statistics.
    pub fn l2_stats(&self) -> CacheStats {
        self.l2.stats()
    }

    /// TLB statistics (zeroes if the TLB is disabled).
    pub fn tlb_stats(&self) -> TlbStats {
        self.tlb.as_ref().map(|t| t.stats()).unwrap_or_default()
    }

    /// Zeroes all statistics, keeping cache/TLB contents — lets callers
    /// separate warm-up from steady state (Section 5's "start-up misses").
    pub fn reset_stats(&mut self) {
        self.l1.reset_stats();
        self.l2.reset_stats();
        if let Some(t) = &mut self.tlb {
            t.reset_stats();
        }
    }

    /// Expected per-reference memory access time from the measured miss
    /// rates, via the paper's Section 5.1 formula (TLB excluded).
    pub fn formula_access_time(&self) -> f64 {
        self.config
            .latency
            .access_time(self.l1.stats().miss_rate(), self.l2.stats().miss_rate())
    }

    /// Performs a demand access at cycle `now`.
    ///
    /// A reference that straddles block boundaries touches every block in
    /// `[addr, addr+size)`; the latencies add (the blocks are fetched
    /// serially), which penalizes layouts that split elements across
    /// blocks — one of the effects clustering avoids.
    pub fn access(&mut self, addr: u64, size: u32, kind: AccessKind, now: u64) -> AccessOutcome {
        let lat = self.config.latency;
        let mut cycles = 0;
        let mut deepest = Level::L1;
        let mut tlb_missed = false;

        // Translate once per page touched.
        if let Some(tlb) = &mut self.tlb {
            let page = self.config.page_bytes;
            let first = addr / page;
            let last = (addr + u64::from(size).max(1) - 1) / page;
            for p in first..=last {
                if !tlb.access(p * page) {
                    cycles += lat.tlb_miss;
                    tlb_missed = true;
                }
            }
        }

        let write = kind == AccessKind::Write;
        let blocks: Vec<u64> = self
            .config
            .l1
            .blocks_touched(addr, u64::from(size))
            .collect();
        for baddr in blocks {
            // Pass the first byte the reference actually touches in this
            // block (the raw address for the first block, the block base
            // for the rest): every probe below masks to block/set/tag
            // internally, so stats are unchanged, but attribution resolves
            // the precise byte — and thus the right region and *field* —
            // instead of smearing onto whatever owns the block base.
            let level = self.access_block(addr.max(baddr), write, now, &mut cycles);
            deepest = deepest.max(level);
        }

        if write {
            // Stores retire into the write buffer: processor-visible cost
            // is the hit time; the drain cost shows up as store stall in
            // the pipeline model.
            cycles = lat.l1_hit + if tlb_missed { lat.tlb_miss } else { 0 };
        }
        AccessOutcome {
            level: deepest,
            cycles,
            tlb_miss: tlb_missed,
        }
    }

    pub(crate) fn access_block(
        &mut self,
        addr: u64,
        write: bool,
        now: u64,
        cycles: &mut u64,
    ) -> Level {
        let lat = self.config.latency;
        let l2_block = self.config.l2.block_of(addr);

        // Wait out any in-flight prefetch covering this block.
        if let Some(done) = self.inflight.remove(&l2_block) {
            let wait = done.saturating_sub(now);
            *cycles += wait;
            self.l2.stats_record_prefetch_hit(wait > 0);
        }

        let l1 = self.l1.access(addr, write);
        if self.attrib.is_some() {
            self.note(ObsLevel::L1, addr, Some(l1.hit), self.l1.last_victim());
        }
        if l1.hit {
            *cycles += lat.l1_hit;
            // Write-through: the write still propagates to L2 (traffic is
            // accounted; latency is hidden by the write buffer).
            if write && self.l1.policy() == WritePolicy::WriteThrough {
                let l2 = self.l2.access(addr, true);
                if self.attrib.is_some() {
                    self.note(ObsLevel::L2, addr, Some(l2.hit), self.l2.last_victim());
                }
                return if l2.hit { Level::L2 } else { Level::Memory };
            }
            return Level::L1;
        }

        let l2 = self.l2.access(addr, write);
        if self.attrib.is_some() {
            self.note(ObsLevel::L2, addr, Some(l2.hit), self.l2.last_victim());
        }
        if l2.hit {
            *cycles += lat.l1_hit + lat.l1_miss;
            Level::L2
        } else {
            *cycles += lat.l1_hit + lat.l1_miss + lat.l2_miss;
            Level::Memory
        }
    }

    /// Issues a non-binding prefetch for the block containing `addr` at
    /// cycle `now`. The line is installed immediately (so later accesses
    /// and evictions see it) and marked in flight until the data would
    /// really arrive; a demand access before then waits the remainder.
    ///
    /// Returns `true` if a prefetch was actually issued (i.e. the block was
    /// not already resident in L1).
    pub fn prefetch(&mut self, addr: u64, now: u64) -> bool {
        let lat = self.config.latency;
        if self.l1.contains(addr) {
            return false;
        }
        let l2_block = self.config.l2.block_of(addr);
        let in_l2 = self.l2.contains(addr);
        self.l2.stats_record_prefetch_issued();
        self.l2.fill(addr);
        self.l1.fill(addr);
        if self.attrib.is_some() {
            // Prefetch fills displace blocks without a demand access:
            // record the evictions so a region whose prefetches thrash
            // another region still shows up as its evictor.
            self.note(ObsLevel::L2, addr, None, self.l2.last_victim());
            self.note(ObsLevel::L1, addr, None, self.l1.last_victim());
        }
        let arrival = if in_l2 {
            now + lat.l1_miss
        } else {
            now + lat.l1_miss + lat.l2_miss
        };
        // Keep the later arrival if a prefetch is already outstanding.
        let slot = self.inflight.entry(l2_block).or_insert(arrival);
        *slot = (*slot).max(arrival);
        true
    }

    /// Number of prefetches currently in flight (not yet arrived) at `now`.
    pub fn inflight_at(&self, now: u64) -> usize {
        self.inflight.values().filter(|&&t| t > now).count()
    }

    /// Drops in-flight records that completed before `now` (bookkeeping
    /// hygiene for long runs).
    pub fn retire_inflight(&mut self, now: u64) {
        self.inflight.retain(|_, &mut t| t > now);
    }

    /// Whether the block containing `addr` is resident in L1.
    pub fn l1_contains(&self, addr: u64) -> bool {
        self.l1.contains(addr)
    }

    /// Whether the block containing `addr` is resident in L2.
    pub fn l2_contains(&self, addr: u64) -> bool {
        self.l2.contains(addr)
    }
}

// Small private extensions so MemorySystem can record prefetch outcomes on
// the L2's stats without exposing mutable stats publicly.
impl Cache {
    fn stats_record_prefetch_issued(&mut self) {
        self.stats_mut().record_prefetch_issued();
    }
    fn stats_record_prefetch_hit(&mut self, partial: bool) {
        self.stats_mut().record_prefetch_hit(partial);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys() -> MemorySystem {
        MemorySystem::new(MachineConfig::ultrasparc_e5000())
    }

    // Compiler-backed pin of the repr(C) reorder: cycles leads, the two
    // byte-wide tails pack behind it (16 B total, down from 24).
    #[test]
    fn access_outcome_offsets_are_pinned() {
        assert_eq!(core::mem::offset_of!(AccessOutcome, cycles), 0);
        assert_eq!(core::mem::offset_of!(AccessOutcome, level), 8);
        assert_eq!(core::mem::offset_of!(AccessOutcome, tlb_miss), 9);
        assert_eq!(core::mem::size_of::<AccessOutcome>(), 16);
    }

    #[test]
    fn cold_read_costs_full_latency() {
        let mut m = sys();
        let out = m.access(0x4000_0000, 8, AccessKind::Read, 0);
        assert_eq!(out.level, Level::Memory);
        // 1 + 6 + 64 plus one TLB miss (30).
        assert_eq!(out.cycles, 71 + 30);
        assert!(out.tlb_miss);
    }

    #[test]
    fn l2_hit_after_l1_eviction() {
        let mut m = sys();
        let a = 0x1000;
        m.access(a, 8, AccessKind::Read, 0);
        // Evict from L1 (16 KB apart maps to same L1 set, different L2 set).
        m.access(a + 16 * 1024, 8, AccessKind::Read, 1);
        let out = m.access(a, 8, AccessKind::Read, 2);
        assert_eq!(out.level, Level::L2);
        assert_eq!(out.cycles, 7);
    }

    #[test]
    fn same_l2_block_is_an_l2_hit_for_neighbouring_l1_blocks() {
        // Two 20-byte "tree nodes" packed in one 64-byte L2 block: the
        // second node misses the 16-byte L1 but hits L2 — the clustering
        // effect the paper exploits.
        let mut m = sys();
        m.access(0x2000, 20, AccessKind::Read, 0);
        let out = m.access(0x2014, 20, AccessKind::Read, 1);
        assert_eq!(out.level, Level::L2);
    }

    #[test]
    fn straddling_reference_costs_more() {
        let mut m = sys();
        // 20-byte element at offset 56 straddles two L2 blocks.
        let a = m.access(0x3038, 20, AccessKind::Read, 0);
        let mut m2 = sys();
        let b = m2.access(0x3000, 20, AccessKind::Read, 0);
        assert!(a.cycles > b.cycles);
    }

    #[test]
    fn prefetch_then_access_is_a_hit_with_wait() {
        let mut m = sys();
        assert!(m.prefetch(0x8000, 0));
        // Demand access 10 cycles later: data arrives at 70, so wait 60,
        // plus the L1 hit (line already installed) and TLB miss.
        let out = m.access(0x8000, 8, AccessKind::Read, 10);
        assert_eq!(out.level, Level::L1);
        assert_eq!(out.cycles, 60 + 1 + 30);
        // After completion: free hit.
        let out2 = m.access(0x8008, 8, AccessKind::Read, 200);
        assert_eq!(out2.cycles, 1);
    }

    #[test]
    fn prefetch_to_resident_block_is_a_noop() {
        let mut m = sys();
        m.access(0x8000, 8, AccessKind::Read, 0);
        assert!(!m.prefetch(0x8000, 1));
        assert_eq!(m.l2_stats().prefetches_issued(), 0);
    }

    #[test]
    fn write_cost_is_buffered() {
        let mut m = sys();
        m.access(0x9000, 8, AccessKind::Read, 0); // warm TLB + caches
        let out = m.access(0x9008, 8, AccessKind::Write, 1);
        assert_eq!(out.cycles, 1, "store retires into the write buffer");
    }

    #[test]
    fn inflight_bookkeeping() {
        let mut m = sys();
        m.prefetch(0xA000, 0);
        m.prefetch(0xB000, 0);
        assert_eq!(m.inflight_at(10), 2);
        m.retire_inflight(1000);
        assert_eq!(m.inflight_at(10), 0);
    }

    #[test]
    fn formula_access_time_tracks_stats() {
        let mut m = sys();
        for i in 0..100u64 {
            m.access(i * 4096, 8, AccessKind::Read, i);
        }
        // Every access was a cold miss at both levels.
        let t = m.formula_access_time();
        assert!((t - 71.0).abs() < 1e-9, "t = {t}");
    }
}
