//! Cache geometry: the paper's cache configuration `C<c, b, a>` where `c` is
//! the number of sets, `b` the block size, and `a` the associativity
//! (Section 5.1).

use std::fmt;

/// Geometry of one cache level: `sets` × `assoc` blocks of `block_bytes`.
///
/// Addresses are 64-bit byte addresses in the simulated virtual address
/// space. The usual power-of-two decomposition applies: the block offset is
/// the low `log2(block_bytes)` bits and the set index the next
/// `log2(sets)` bits.
///
/// # Example
///
/// ```
/// use cc_sim::geometry::CacheGeometry;
///
/// let l2 = CacheGeometry::new(16 * 1024, 64, 1); // 1 MB direct-mapped
/// assert_eq!(l2.capacity_bytes(), 1 << 20);
/// assert_eq!(l2.set_of(0), l2.set_of(63));
/// assert_ne!(l2.set_of(0), l2.set_of(64));
/// ```
// Field order pinned per cc-lint PAD-01: declaration order interleaving the
// u32 shifts with the u64 mask wasted 8 padding bytes (48 B vs 40 B). The
// u64s lead, the two u32s pack the tail, and repr(C) guarantees it.
#[derive(Clone, Copy)]
#[repr(C)]
pub struct CacheGeometry {
    sets: u64,
    block_bytes: u64,
    assoc: u64,
    /// `sets - 1`, so `blockno & set_mask` is the set index.
    set_mask: u64, // cc-hot
    /// `log2(block_bytes)`, so `addr >> block_shift` is the block number.
    block_shift: u32, // cc-hot
    /// `log2(block_bytes) + log2(sets)`, so `addr >> tag_shift` is the tag.
    tag_shift: u32, // cc-hot
}

// Equality and hashing ignore the derived mask/shift fields (they are pure
// functions of `sets` and `block_bytes`).
impl PartialEq for CacheGeometry {
    fn eq(&self, other: &Self) -> bool {
        self.sets == other.sets
            && self.block_bytes == other.block_bytes
            && self.assoc == other.assoc
    }
}

impl Eq for CacheGeometry {}

impl std::hash::Hash for CacheGeometry {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.sets.hash(state);
        self.block_bytes.hash(state);
        self.assoc.hash(state);
    }
}

impl CacheGeometry {
    /// Creates a geometry with `sets` sets of `assoc` blocks of
    /// `block_bytes` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `sets` or `block_bytes` is not a nonzero power of two, or
    /// if `assoc` is zero.
    pub fn new(sets: u64, block_bytes: u64, assoc: u64) -> Self {
        assert!(
            sets.is_power_of_two(),
            "set count must be a power of two, got {sets}"
        );
        assert!(
            block_bytes.is_power_of_two(),
            "block size must be a power of two, got {block_bytes}"
        );
        assert!(assoc > 0, "associativity must be nonzero");
        let block_shift = block_bytes.trailing_zeros();
        CacheGeometry {
            sets,
            block_bytes,
            assoc,
            block_shift,
            set_mask: sets - 1,
            tag_shift: block_shift + sets.trailing_zeros(),
        }
    }

    /// Convenience constructor from a total capacity in bytes.
    ///
    /// # Panics
    ///
    /// Panics if the implied set count is not a power of two.
    pub fn with_capacity(capacity_bytes: u64, block_bytes: u64, assoc: u64) -> Self {
        assert!(assoc > 0 && block_bytes > 0);
        let sets = capacity_bytes / (block_bytes * assoc);
        Self::new(sets, block_bytes, assoc)
    }

    /// Number of sets (`c` in the paper's `C<c, b, a>`).
    pub fn sets(&self) -> u64 {
        self.sets
    }

    /// Block size in bytes (`b`).
    pub fn block_bytes(&self) -> u64 {
        self.block_bytes
    }

    /// Associativity (`a`).
    pub fn assoc(&self) -> u64 {
        self.assoc
    }

    /// Total capacity in bytes: `sets × assoc × block_bytes`.
    pub fn capacity_bytes(&self) -> u64 {
        self.sets * self.assoc * self.block_bytes
    }

    /// Bytes covered by one way: `sets × block_bytes`. Addresses equal
    /// modulo this distance conflict (map to the same set), which makes it
    /// the period of the paper's coloring scheme: a color picks an offset
    /// range within each way-sized window of the address space.
    pub fn way_bytes(&self) -> u64 {
        self.sets * self.block_bytes
    }

    /// The block-aligned address containing `addr`.
    ///
    /// Both dimensions are powers of two, so this and the other address
    /// decompositions are single mask/shift operations over fields
    /// precomputed in [`CacheGeometry::new`] — the hot path never divides.
    pub fn block_of(&self, addr: u64) -> u64 {
        addr & !(self.block_bytes - 1)
    }

    /// The set index `addr` maps to.
    pub fn set_of(&self, addr: u64) -> u64 {
        (addr >> self.block_shift) & self.set_mask
    }

    /// Inverse of the (tag, set) decomposition: the block-aligned address
    /// with tag `tag` in set `set`. Reconstructs eviction victims from
    /// stored tags — for every address `a`,
    /// `block_addr(tag_of(a), set_of(a)) == block_of(a)`.
    pub fn block_addr(&self, tag: u64, set: u64) -> u64 {
        (tag << self.tag_shift) | (set << self.block_shift)
    }

    /// The tag of `addr` (bits above the set index).
    pub fn tag_of(&self, addr: u64) -> u64 {
        addr >> self.tag_shift
    }

    /// The three probe-field constants `(block_shift, set_mask, tag_shift)`
    /// as one tuple, for the chunked probe kernel ([`crate::kernel`]): a
    /// lane loop wants the raw shift/mask values hoisted out of the loop
    /// rather than a method call per lane. These are exactly the fields
    /// [`CacheGeometry::set_of`] / [`CacheGeometry::tag_of`] read — and
    /// exactly the three marked `cc-hot` in the pinned layout, so one
    /// read of this tuple touches one contiguous 16-byte span.
    #[inline]
    pub(crate) fn probe_fields(&self) -> (u32, u64, u32) {
        (self.block_shift, self.set_mask, self.tag_shift)
    }

    /// Number of structure elements of `elem_bytes` bytes that fit in one
    /// block: the paper's `k = ⌊b/e⌋` (Section 5.3). Returns at least 1 so
    /// that oversized elements still occupy "a" block for analysis purposes.
    pub fn elems_per_block(&self, elem_bytes: u64) -> u64 {
        (self.block_bytes / elem_bytes.max(1)).max(1)
    }

    /// Iterator over the block-aligned addresses touched by the byte range
    /// `[addr, addr + size)`. A well-aligned scalar access touches exactly
    /// one block; an element straddling a block boundary touches two.
    pub fn blocks_touched(&self, addr: u64, size: u64) -> impl Iterator<Item = u64> {
        let first = self.block_of(addr);
        let last = self.block_of(addr + size.max(1) - 1);
        let step = self.block_bytes;
        (first..=last).step_by(step as usize)
    }
}

impl fmt::Debug for CacheGeometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "C<{} sets, {} B blocks, {}-way> ({} KB)",
            self.sets,
            self.block_bytes,
            self.assoc,
            self.capacity_bytes() / 1024
        )
    }
}

impl fmt::Display for CacheGeometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e5000_l1_geometry() {
        // 16 KB direct-mapped with 16 B lines => 1024 sets.
        let g = CacheGeometry::with_capacity(16 * 1024, 16, 1);
        assert_eq!(g.sets(), 1024);
        assert_eq!(g.capacity_bytes(), 16 * 1024);
    }

    #[test]
    fn way_bytes_is_the_conflict_period() {
        let g = CacheGeometry::new(4, 16, 2);
        assert_eq!(g.way_bytes(), 64);
        assert_eq!(g.set_of(0x12), g.set_of(0x12 + g.way_bytes()));
    }

    #[test]
    fn set_wraps_at_capacity() {
        let g = CacheGeometry::new(4, 16, 1);
        // Addresses one cache-capacity apart map to the same set.
        assert_eq!(g.set_of(0x0), g.set_of(4 * 16));
        assert_eq!(g.set_of(0x10), 1);
        assert_eq!(g.set_of(0x30), 3);
    }

    #[test]
    fn tags_distinguish_conflicting_blocks() {
        let g = CacheGeometry::new(4, 16, 1);
        assert_eq!(g.set_of(0), g.set_of(64));
        assert_ne!(g.tag_of(0), g.tag_of(64));
    }

    #[test]
    fn elems_per_block_matches_paper_k() {
        // The microbenchmark's 20-byte tree nodes in 64-byte L2 blocks:
        // k = 3 (Section 5.4 clusters subtrees of size 3).
        let l2 = CacheGeometry::with_capacity(1 << 20, 64, 1);
        assert_eq!(l2.elems_per_block(20), 3);
        // And 16-byte L1 blocks hold none fully; clamped to 1.
        let l1 = CacheGeometry::with_capacity(16 * 1024, 16, 1);
        assert_eq!(l1.elems_per_block(20), 1);
    }

    #[test]
    fn straddling_access_touches_two_blocks() {
        let g = CacheGeometry::new(1024, 64, 1);
        let blocks: Vec<u64> = g.blocks_touched(60, 8).collect();
        assert_eq!(blocks, vec![0, 64]);
        let one: Vec<u64> = g.blocks_touched(0, 64).collect();
        assert_eq!(one, vec![0]);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two_sets() {
        let _ = CacheGeometry::new(3, 16, 1);
    }

    #[test]
    fn zero_size_access_touches_one_block() {
        let g = CacheGeometry::new(16, 64, 1);
        assert_eq!(g.blocks_touched(128, 0).count(), 1);
    }
}

// Compiler-backed pin of the cc-lint offset model for `CacheGeometry`
// (fields are private, so the check lives in-crate); registered in the
// sweep in `cc-lint/tests/verify_offsets.rs`.
#[cfg(test)]
mod lint_verify {
    use super::CacheGeometry;
    use cc_lint::{analyze_sources, HotSpec, LintConfig};

    #[test]
    fn geometry_layout_matches_compiler() {
        let report = analyze_sources(
            &[(
                "geometry.rs".to_string(),
                include_str!("geometry.rs").to_string(),
            )],
            &HotSpec::empty(),
            &LintConfig::default(),
        );
        let g = report
            .structs
            .iter()
            .find(|s| s.name == "CacheGeometry")
            .expect("CacheGeometry modeled");
        assert!(g.exact);
        assert_eq!(g.size, core::mem::size_of::<CacheGeometry>() as u64);
        assert_eq!(g.align, core::mem::align_of::<CacheGeometry>() as u64);
        assert_eq!(g.size, 40, "reorder recovered the 8 padding bytes");
        assert_eq!(g.padding, 0);
        assert_eq!(g.optimal_size, g.size, "declaration order is optimal now");
        for (name, offset) in [
            ("sets", core::mem::offset_of!(CacheGeometry, sets)),
            (
                "block_bytes",
                core::mem::offset_of!(CacheGeometry, block_bytes),
            ),
            ("assoc", core::mem::offset_of!(CacheGeometry, assoc)),
            ("set_mask", core::mem::offset_of!(CacheGeometry, set_mask)),
            (
                "block_shift",
                core::mem::offset_of!(CacheGeometry, block_shift),
            ),
            ("tag_shift", core::mem::offset_of!(CacheGeometry, tag_shift)),
        ] {
            let modeled = g
                .fields
                .iter()
                .find(|(n, ..)| n == name)
                .map(|f| f.1)
                .expect("field modeled");
            assert_eq!(modeled, offset as u64, "offset of CacheGeometry.{name}");
        }
    }
}
