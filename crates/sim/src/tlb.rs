//! A fully-associative, LRU translation lookaside buffer.
//!
//! The paper notes (Section 5.4) that TLB effects are one reason its
//! analytic model *under*-predicts the measured speedup: packing structures
//! onto fewer pages shrinks the working set of pages. Modelling the TLB lets
//! the simulator reproduce that systematic gap.

use crate::fasthash::K;
use crate::stats::TlbStats;

/// List/table sentinel: "no slot".
const NONE: u32 = u32::MAX;

/// Fully-associative TLB with true-LRU replacement over virtual pages.
///
/// Lookups and replacement are both O(1): pages live in an open-addressed
/// table (linear probing at ≤ 50% load, backward-shift deletion) that maps
/// each resident page to a slot, and slots are threaded on a doubly-linked
/// recency list whose tail is the LRU entry. This is observably identical
/// to the textbook scan-all-entries formulation: a translation hits iff the
/// page is resident (pure membership), and because every access moves its
/// page to the list head, list order coincides with last-use order — the
/// tail is exactly the entry a min-over-stamps scan would evict. The big
/// traces make this matter: a working set of thousands of pages thrashes a
/// 64-entry TLB, and an O(entries) scan per reference would dominate the
/// whole simulation.
///
/// # Example
///
/// ```
/// use cc_sim::tlb::Tlb;
///
/// let mut tlb = Tlb::new(2, 8192);
/// assert!(!tlb.access(0));            // cold
/// assert!(tlb.access(100));           // same page
/// assert!(!tlb.access(8192));         // second page
/// assert!(!tlb.access(3 * 8192));     // evicts page 0 (LRU)
/// assert!(!tlb.access(0));
/// ```
#[derive(Clone, Debug)]
pub struct Tlb {
    /// Page number held by each slot (valid for slots below `len`).
    pages: Vec<u64>,
    /// Recency list links over slots; `head` is MRU, `tail` is LRU.
    prev: Vec<u32>,
    next: Vec<u32>,
    head: u32,
    tail: u32,
    /// Open-addressed `(page, slot)` table; `slot == NONE` marks a free
    /// cell. Sized to at least four times `capacity`, so probes stay short.
    table: Vec<(u64, u32)>,
    /// Table cell currently holding each slot's page — lets eviction jump
    /// straight to the victim's cell instead of re-probing for it.
    tindex: Vec<u32>,
    len: usize,
    capacity: usize,
    page_bytes: u64,
    /// `log2(page_bytes)`; `addr >> page_shift` is the page number.
    page_shift: u32,
    stats: TlbStats,
}

impl Tlb {
    /// Creates an empty TLB with `entries` slots over pages of
    /// `page_bytes` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero or `page_bytes` is not a power of two.
    pub fn new(entries: usize, page_bytes: u64) -> Self {
        assert!(entries > 0, "TLB needs at least one entry");
        assert!(
            page_bytes.is_power_of_two(),
            "page size must be a power of two"
        );
        // Quarter load factor: the table is tiny (a 64-entry TLB costs
        // 4KB), and thrashing workloads evict on nearly every access, so
        // short probe and backshift chains matter more than footprint.
        let table_len = (4 * entries).next_power_of_two().max(4);
        Tlb {
            pages: vec![0; entries],
            prev: vec![NONE; entries],
            next: vec![NONE; entries],
            head: NONE,
            tail: NONE,
            table: vec![(0, NONE); table_len],
            tindex: vec![NONE; entries],
            len: 0,
            capacity: entries,
            page_bytes,
            page_shift: page_bytes.trailing_zeros(),
            stats: TlbStats::new(),
        }
    }

    /// Page size in bytes.
    pub fn page_bytes(&self) -> u64 {
        self.page_bytes
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> TlbStats {
        self.stats
    }

    /// Zeroes statistics, keeping contents.
    pub fn reset_stats(&mut self) {
        self.stats = TlbStats::new();
    }

    /// Adds a batch worth of accesses and misses counted by a caller
    /// using [`Tlb::access_page_untallied`].
    pub(crate) fn add_bulk_stats(&mut self, accesses: u64, misses: u64) {
        self.stats.add_bulk(accesses, misses);
    }

    /// Home index of `page` in the open-addressed table.
    #[inline]
    fn home(&self, page: u64) -> usize {
        // Fibonacci hash, indexing by the top bits; the table is a power
        // of two at least 4 cells long, so the shift is in range.
        (page.wrapping_mul(K) >> (64 - self.table.len().trailing_zeros())) as usize
    }

    /// Looks `page` up in the table.
    #[inline]
    fn table_get(&self, page: u64) -> Option<u32> {
        let mask = self.table.len() - 1;
        let mut i = self.home(page);
        loop {
            let (p, s) = self.table[i];
            if s == NONE {
                return None;
            }
            if p == page {
                return Some(s);
            }
            i = (i + 1) & mask;
        }
    }

    /// Inserts `page → slot`; the page must not already be present.
    fn table_insert(&mut self, page: u64, slot: u32) {
        let mask = self.table.len() - 1;
        let mut i = self.home(page);
        while self.table[i].1 != NONE {
            i = (i + 1) & mask;
        }
        self.table[i] = (page, slot);
        self.tindex[slot as usize] = i as u32;
    }

    /// Removes the page held by `slot` from the table, back-shifting any
    /// entries the hole would otherwise cut off from their probe chains.
    fn table_remove_slot(&mut self, slot: u32) {
        let mask = self.table.len() - 1;
        let mut i = self.tindex[slot as usize] as usize;
        debug_assert_eq!(self.table[i].1, slot);
        let mut j = i;
        loop {
            j = (j + 1) & mask;
            if self.table[j].1 == NONE {
                break;
            }
            let home = self.home(self.table[j].0);
            // Move entry `j` into the hole unless its home lies cyclically
            // after the hole — in which case the probe chain from its home
            // never crosses the hole and it must stay put.
            if (j.wrapping_sub(home) & mask) >= (j.wrapping_sub(i) & mask) {
                self.table[i] = self.table[j];
                self.tindex[self.table[j].1 as usize] = i as u32;
                i = j;
            }
        }
        self.table[i] = (0, NONE);
    }

    /// Detaches `slot` from the recency list.
    #[inline]
    fn unlink(&mut self, slot: u32) {
        let (p, n) = (self.prev[slot as usize], self.next[slot as usize]);
        if p == NONE {
            self.head = n;
        } else {
            self.next[p as usize] = n;
        }
        if n == NONE {
            self.tail = p;
        } else {
            self.prev[n as usize] = p;
        }
    }

    /// Links `slot` at the head (MRU end) of the recency list.
    #[inline]
    fn push_front(&mut self, slot: u32) {
        self.prev[slot as usize] = NONE;
        self.next[slot as usize] = self.head;
        if self.head == NONE {
            self.tail = slot;
        } else {
            self.prev[self.head as usize] = slot;
        }
        self.head = slot;
    }

    /// Translates `addr`, returning `true` on a TLB hit.
    pub fn access(&mut self, addr: u64) -> bool {
        let page = addr >> self.page_shift;
        let hit = self.access_page_untallied(page);
        self.stats.record(!hit);
        hit
    }

    /// [`Tlb::access`] for a caller that already holds the page number and
    /// does its own bulk statistics ([`Tlb::add_bulk_stats`]) — the
    /// batched path derives pages once per reference, counts outcomes in
    /// registers, and flushes per batch.
    pub(crate) fn access_page_untallied(&mut self, page: u64) -> bool {
        if let Some(slot) = self.table_get(page) {
            if self.head != slot {
                self.unlink(slot);
                self.push_front(slot);
            }
            return true;
        }
        let slot = if self.len == self.capacity {
            let victim = self.tail;
            self.table_remove_slot(victim);
            self.unlink(victim);
            victim
        } else {
            let s = self.len as u32;
            self.len += 1;
            s
        };
        self.pages[slot as usize] = page;
        self.table_insert(page, slot);
        self.push_front(slot);
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_within_page() {
        let mut t = Tlb::new(4, 8192);
        assert!(!t.access(10));
        assert!(t.access(8191));
        assert!(!t.access(8192));
        assert_eq!(t.stats().misses(), 2);
        assert_eq!(t.stats().accesses(), 3);
    }

    #[test]
    fn lru_eviction_order() {
        let mut t = Tlb::new(2, 4096);
        t.access(0); // page 0
        t.access(4096); // page 1
        t.access(5); // touch page 0; page 1 is LRU
        t.access(2 * 4096); // page 2 evicts page 1
        assert!(t.access(1), "page 0 survived");
        assert!(!t.access(4096 + 1), "page 1 evicted");
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn rejects_zero_entries() {
        let _ = Tlb::new(0, 8192);
    }

    #[test]
    fn single_entry_tlb() {
        let mut t = Tlb::new(1, 4096);
        assert!(!t.access(0));
        assert!(t.access(100));
        assert!(!t.access(4096));
        assert!(!t.access(50), "page 0 was evicted by page 1");
    }

    /// The table/list implementation must match a naive scan-based LRU
    /// model access for access, including under heavy eviction churn.
    #[test]
    fn matches_naive_lru_model() {
        struct Naive {
            entries: Vec<(u64, u64)>, // (page, stamp)
            cap: usize,
            clock: u64,
        }
        impl Naive {
            fn access(&mut self, page: u64) -> bool {
                self.clock += 1;
                if let Some(e) = self.entries.iter_mut().find(|(p, _)| *p == page) {
                    e.1 = self.clock;
                    return true;
                }
                if self.entries.len() == self.cap {
                    let lru = self
                        .entries
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, (_, s))| *s)
                        .map(|(i, _)| i)
                        .unwrap();
                    self.entries.swap_remove(lru);
                }
                self.entries.push((page, self.clock));
                false
            }
        }
        let mut tlb = Tlb::new(8, 4096);
        let mut naive = Naive {
            entries: Vec::new(),
            cap: 8,
            clock: 0,
        };
        // Deterministic pseudo-random page walk over 3× the capacity.
        let mut x = 0x1234_5678_9abc_def0u64;
        for i in 0..10_000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let page = x % 24;
            let addr = page * 4096 + (i % 4096);
            assert_eq!(
                tlb.access(addr),
                naive.access(page),
                "diverged at access {i} (page {page})"
            );
        }
        assert!(
            tlb.stats().misses() > 1000,
            "churn actually exercised eviction"
        );
    }
}
