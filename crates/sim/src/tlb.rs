//! A fully-associative, LRU translation lookaside buffer.
//!
//! The paper notes (Section 5.4) that TLB effects are one reason its
//! analytic model *under*-predicts the measured speedup: packing structures
//! onto fewer pages shrinks the working set of pages. Modelling the TLB lets
//! the simulator reproduce that systematic gap.

use crate::stats::TlbStats;

/// Fully-associative TLB with true-LRU replacement over virtual pages.
///
/// # Example
///
/// ```
/// use cc_sim::tlb::Tlb;
///
/// let mut tlb = Tlb::new(2, 8192);
/// assert!(!tlb.access(0));            // cold
/// assert!(tlb.access(100));           // same page
/// assert!(!tlb.access(8192));         // second page
/// assert!(!tlb.access(3 * 8192));     // evicts page 0 (LRU)
/// assert!(!tlb.access(0));
/// ```
#[derive(Clone, Debug)]
pub struct Tlb {
    entries: Vec<(u64, u64)>, // (page number, last-use stamp)
    capacity: usize,
    page_bytes: u64,
    clock: u64,
    stats: TlbStats,
}

impl Tlb {
    /// Creates an empty TLB with `entries` slots over pages of
    /// `page_bytes` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero or `page_bytes` is not a power of two.
    pub fn new(entries: usize, page_bytes: u64) -> Self {
        assert!(entries > 0, "TLB needs at least one entry");
        assert!(
            page_bytes.is_power_of_two(),
            "page size must be a power of two"
        );
        Tlb {
            entries: Vec::with_capacity(entries),
            capacity: entries,
            page_bytes,
            clock: 0,
            stats: TlbStats::new(),
        }
    }

    /// Page size in bytes.
    pub fn page_bytes(&self) -> u64 {
        self.page_bytes
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> TlbStats {
        self.stats
    }

    /// Zeroes statistics, keeping contents.
    pub fn reset_stats(&mut self) {
        self.stats = TlbStats::new();
    }

    /// Translates `addr`, returning `true` on a TLB hit.
    pub fn access(&mut self, addr: u64) -> bool {
        self.clock += 1;
        let page = addr / self.page_bytes;
        if let Some(e) = self.entries.iter_mut().find(|(p, _)| *p == page) {
            e.1 = self.clock;
            self.stats.record(false);
            return true;
        }
        self.stats.record(true);
        if self.entries.len() == self.capacity {
            let lru = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, used))| *used)
                .map(|(i, _)| i)
                .expect("capacity > 0");
            self.entries.swap_remove(lru);
        }
        self.entries.push((page, self.clock));
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_within_page() {
        let mut t = Tlb::new(4, 8192);
        assert!(!t.access(10));
        assert!(t.access(8191));
        assert!(!t.access(8192));
        assert_eq!(t.stats().misses(), 2);
        assert_eq!(t.stats().accesses(), 3);
    }

    #[test]
    fn lru_eviction_order() {
        let mut t = Tlb::new(2, 4096);
        t.access(0); // page 0
        t.access(4096); // page 1
        t.access(5); // touch page 0; page 1 is LRU
        t.access(2 * 4096); // page 2 evicts page 1
        assert!(t.access(1), "page 0 survived");
        assert!(!t.access(4096 + 1), "page 1 evicted");
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn rejects_zero_entries() {
        let _ = Tlb::new(0, 8192);
    }
}
