//! Hit/miss counters for caches and TLBs.

/// Access counters for one cache level.
///
/// Misses are classified into the reasons relevant to the paper's placement
/// techniques: a *conflict* miss would have hit in a fully-associative cache
/// of the same capacity (approximated as "the victim block was referenced
/// more recently than `sets × assoc` distinct blocks ago" is too costly to
/// track exactly, so we use the standard simulator approximation: a miss on
/// a block that was previously resident and was evicted while fewer than
/// `capacity` distinct blocks intervened would require full LRU-stack
/// bookkeeping; instead we count *evicted-then-rereferenced* misses, which
/// upper-bounds conflict+capacity re-reference misses and is what coloring
/// reduces).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    reads: u64,
    writes: u64,
    read_misses: u64,
    write_misses: u64,
    evictions: u64,
    writebacks: u64,
    /// Misses to blocks that were resident earlier and got evicted —
    /// the re-reference misses that clustering/coloring attack.
    rereference_misses: u64,
    /// Demand accesses that found their block still in flight from a
    /// prefetch (hit, but had to wait for the remaining latency).
    prefetch_partial_hits: u64,
    /// Demand accesses fully covered by a completed prefetch.
    prefetch_full_hits: u64,
    prefetches_issued: u64,
}

impl CacheStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total demand accesses (reads + writes).
    pub fn accesses(&self) -> u64 {
        self.reads + self.writes
    }

    /// Demand reads.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Demand writes.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Total demand misses.
    pub fn misses(&self) -> u64 {
        self.read_misses + self.write_misses
    }

    /// Demand read misses.
    pub fn read_misses(&self) -> u64 {
        self.read_misses
    }

    /// Demand write misses.
    pub fn write_misses(&self) -> u64 {
        self.write_misses
    }

    /// Total demand hits.
    pub fn hits(&self) -> u64 {
        self.accesses() - self.misses()
    }

    /// Lines evicted to make room.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Dirty lines written back (write-back caches only).
    pub fn writebacks(&self) -> u64 {
        self.writebacks
    }

    /// Misses to blocks that had been resident before (see type docs).
    pub fn rereference_misses(&self) -> u64 {
        self.rereference_misses
    }

    /// Prefetches issued to this level.
    pub fn prefetches_issued(&self) -> u64 {
        self.prefetches_issued
    }

    /// Demand accesses that waited on an in-flight prefetch.
    pub fn prefetch_partial_hits(&self) -> u64 {
        self.prefetch_partial_hits
    }

    /// Demand accesses fully covered by a completed prefetch.
    pub fn prefetch_full_hits(&self) -> u64 {
        self.prefetch_full_hits
    }

    /// Demand miss rate `misses / accesses`; 0 when idle.
    ///
    /// This is the paper's per-level `m_L1` / `m_L2` (Section 5.1) — note
    /// the L2 rate is *local* (L2 misses over L2 accesses).
    pub fn miss_rate(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.misses() as f64 / self.accesses() as f64
        }
    }

    /// Adds another run's counters into these, field by field — the sweep
    /// harness uses this to combine per-cell statistics into fleet totals.
    pub fn merge(&mut self, other: &CacheStats) {
        self.reads += other.reads;
        self.writes += other.writes;
        self.read_misses += other.read_misses;
        self.write_misses += other.write_misses;
        self.evictions += other.evictions;
        self.writebacks += other.writebacks;
        self.rereference_misses += other.rereference_misses;
        self.prefetch_partial_hits += other.prefetch_partial_hits;
        self.prefetch_full_hits += other.prefetch_full_hits;
        self.prefetches_issued += other.prefetches_issued;
    }

    pub(crate) fn record_access(&mut self, write: bool) {
        if write {
            self.writes += 1;
        } else {
            self.reads += 1;
        }
    }

    /// Adds a batch worth of demand-read accounting at once — the batched
    /// replay path tallies its read probes in registers
    /// ([`crate::cache::ReadTally`]) and flushes them per batch, which is
    /// equivalent to per-probe recording because nothing reads the
    /// counters mid-batch.
    pub(crate) fn add_read_tally(&mut self, t: &crate::cache::ReadTally) {
        self.reads += t.reads;
        self.read_misses += t.misses;
        self.rereference_misses += t.rereferences;
        self.evictions += t.evictions;
        self.writebacks += t.writebacks;
    }

    pub(crate) fn record_miss(&mut self, write: bool, was_resident_before: bool) {
        if write {
            self.write_misses += 1;
        } else {
            self.read_misses += 1;
        }
        if was_resident_before {
            self.rereference_misses += 1;
        }
    }

    pub(crate) fn record_eviction(&mut self, dirty: bool) {
        self.evictions += 1;
        if dirty {
            self.writebacks += 1;
        }
    }

    pub(crate) fn record_prefetch_issued(&mut self) {
        self.prefetches_issued += 1;
    }

    pub(crate) fn record_prefetch_hit(&mut self, partial: bool) {
        if partial {
            self.prefetch_partial_hits += 1;
        } else {
            self.prefetch_full_hits += 1;
        }
    }
}

/// Counters for the TLB.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TlbStats {
    accesses: u64,
    misses: u64,
}

impl TlbStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total translations requested.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Translations that missed.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Miss rate; 0 when idle.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Adds another run's counters into these (see [`CacheStats::merge`]).
    pub fn merge(&mut self, other: &TlbStats) {
        self.accesses += other.accesses;
        self.misses += other.misses;
    }

    pub(crate) fn record(&mut self, miss: bool) {
        self.accesses += 1;
        if miss {
            self.misses += 1;
        }
    }

    /// Adds a batch worth of translations at once — the batched replay
    /// path counts in registers and flushes per batch (see
    /// [`CacheStats::add_read_tally`] for why that is equivalent).
    pub(crate) fn add_bulk(&mut self, accesses: u64, misses: u64) {
        self.accesses += accesses;
        self.misses += misses;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_rate_is_zero_when_idle() {
        assert_eq!(CacheStats::new().miss_rate(), 0.0);
        assert_eq!(TlbStats::new().miss_rate(), 0.0);
    }

    #[test]
    fn counters_accumulate() {
        let mut s = CacheStats::new();
        s.record_access(false);
        s.record_access(true);
        s.record_miss(true, false);
        assert_eq!(s.accesses(), 2);
        assert_eq!(s.hits(), 1);
        assert_eq!(s.misses(), 1);
        assert_eq!(s.write_misses(), 1);
        assert!((s.miss_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn rereference_misses_tracked() {
        let mut s = CacheStats::new();
        s.record_access(false);
        s.record_miss(false, true);
        assert_eq!(s.rereference_misses(), 1);
    }
}
