//! Differential properties for set-sharded replay: for any event stream,
//! any shard count, and any machine, the sharded replayer must be
//! observationally equal to both the scalar sink and the batched sink —
//! identical cache statistics, TLB counters, accumulated cycles, and
//! instruction/branch totals. The equality must survive segment
//! boundaries (persistent shard state), `TraceCorruption` faults
//! (repair-and-continue), and poisoned workers (serial fallback).

use cc_sim::batch::BatchSink;
use cc_sim::cache::WritePolicy;
use cc_sim::event::{Event, EventSink};
use cc_sim::geometry::CacheGeometry;
use cc_sim::{
    Latency, MachineConfig, MemorySink, ShardedReplayer, SplitPool, TraceBuf, TraceFault,
};
use proptest::prelude::*;

/// A machine with a *write-back* L1 and a 4-bit set-field overlap, so the
/// differential exercises dirty allocation and writeback ordering across
/// real shard boundaries (the stock tiny preset clamps to one shard).
fn writeback_overlapped() -> MachineConfig {
    MachineConfig {
        l1: CacheGeometry::new(64, 16, 2),
        l1_policy: WritePolicy::WriteBack,
        l2: CacheGeometry::new(64, 64, 2),
        l2_policy: WritePolicy::WriteBack,
        latency: Latency {
            l1_hit: 1,
            l1_miss: 6,
            l2_miss: 64,
            tlb_miss: 30,
        },
        page_bytes: 256,
        tlb_entries: 4,
        clock_mhz: 100,
    }
}

/// Same event decoder as the batched differential: biased toward the
/// same-block runs the memos short-circuit, with enough stores,
/// prefetches, and teleports to stress every invalidation edge.
fn decode_trace(words: &[u64]) -> Vec<Event> {
    const ARENA: u64 = 8 * 1024;
    let mut cur: u64 = 0x100;
    let mut evs = Vec::with_capacity(words.len());
    for &r in words {
        let op = r % 100;
        let material = r >> 8;
        if op < 55 {
            cur = (cur + material % 24) % ARENA;
            let size = [1u32, 4, 8, 20][(material % 4) as usize];
            evs.push(Event::load(cur, size));
        } else if op < 70 {
            cur = material % ARENA;
            evs.push(Event::load_indep(cur, 8));
        } else if op < 80 {
            evs.push(Event::store(
                material % ARENA,
                [1u32, 8, 20][(material % 3) as usize],
            ));
        } else if op < 85 {
            evs.push(Event::Prefetch {
                addr: material % ARENA,
            });
        } else if op < 91 {
            evs.push(Event::Inst((material % 7) as u32));
        } else if op < 96 {
            evs.push(Event::Branch((material % 3) as u32));
        } else {
            cur = material % ARENA;
        }
    }
    evs
}

/// Packs `events` into small buffers (capacity 7, many boundaries) tagged
/// with `space`.
fn pack(events: &[Event], space: u32) -> Vec<TraceBuf> {
    let mut bufs = Vec::new();
    let mut cur = TraceBuf::with_capacity(7);
    cur.set_space(space);
    for &ev in events {
        if cur.is_full() {
            let mut next = TraceBuf::with_capacity(7);
            next.set_space(space);
            bufs.push(std::mem::replace(&mut cur, next));
        }
        cur.push(ev);
    }
    if !cur.is_empty() {
        bufs.push(cur);
    }
    bufs
}

/// The tri-engine check: scalar vs batched vs sharded (the latter split
/// into two segments so persistent shard state crosses a boundary). The
/// sharded engine runs twice — once over eager splits and once over
/// pooled splits whose second segment reuses the first segment's
/// recycled lane buffers — and the two must agree exactly.
fn check_tri(machine: MachineConfig, trace: &[Event], shards: usize) -> Result<(), TestCaseError> {
    let mut scalar = MemorySink::new(machine);
    let mut batched = BatchSink::with_capacity(machine, 7);
    for &ev in trace {
        scalar.event(ev);
        batched.event(ev);
    }
    batched.flush();

    let mut sharded = ShardedReplayer::new(machine, shards);
    let (a, b) = trace.split_at(trace.len() / 2);
    for seg in [a, b] {
        let split = sharded.split(&pack(seg, 0));
        sharded.replay(&split);
    }

    // Same segments through the zero-copy pooled splitter: segment `b`
    // splits into the very buffers segment `a` handed back.
    let pool = SplitPool::new();
    let mut pooled = ShardedReplayer::new(machine, shards);
    for seg in [a, b] {
        let split = pooled.split_pooled(&pack(seg, 0), &pool);
        pooled.replay(&split);
        pool.recycle(split);
    }
    prop_assert_eq!(pool.idle(), 1, "recycled buffers not retained");
    prop_assert_eq!(
        pooled.l1_stats(),
        sharded.l1_stats(),
        "pooled split diverged from eager split at {} shards",
        shards
    );
    prop_assert_eq!(pooled.l2_stats(), sharded.l2_stats(), "pooled L2");
    prop_assert_eq!(pooled.tlb_stats(), sharded.tlb_stats(), "pooled TLB");
    prop_assert_eq!(
        pooled.memory_cycles(),
        sharded.memory_cycles(),
        "pooled cycles"
    );
    prop_assert_eq!(pooled.insts(), sharded.insts());
    prop_assert_eq!(pooled.branches(), sharded.branches());

    prop_assert_eq!(
        sharded.l1_stats(),
        scalar.system().l1_stats(),
        "sharded L1 diverged from scalar at {} shards",
        shards
    );
    prop_assert_eq!(sharded.l2_stats(), scalar.system().l2_stats(), "L2");
    prop_assert_eq!(sharded.tlb_stats(), scalar.system().tlb_stats(), "TLB");
    prop_assert_eq!(sharded.memory_cycles(), scalar.memory_cycles(), "cycles");
    prop_assert_eq!(sharded.insts(), scalar.insts());
    prop_assert_eq!(sharded.branches(), scalar.branches());

    prop_assert_eq!(
        sharded.l1_stats(),
        batched.system().l1_stats(),
        "vs batched L1"
    );
    prop_assert_eq!(
        sharded.l2_stats(),
        batched.system().l2_stats(),
        "vs batched L2"
    );
    prop_assert_eq!(
        sharded.tlb_stats(),
        batched.system().tlb_stats(),
        "vs batched TLB"
    );
    prop_assert_eq!(
        sharded.memory_cycles(),
        batched.memory_cycles(),
        "vs batched cycles"
    );
    Ok(())
}

proptest! {
    /// The tiny preset (empty overlap — requested counts clamp to one
    /// serial shard, which must still be exact).
    #[test]
    fn sharded_equals_scalar_test_tiny(
        words in prop::collection::vec(any::<u64>(), 40..400),
        shards in 1usize..9,
    ) {
        check_tri(MachineConfig::test_tiny(), &decode_trace(&words), shards)?;
    }

    /// The paper's Table 1 RSIM machine (7-bit overlap: all eight counts
    /// are exact, including the non-power-of-two ones).
    #[test]
    fn sharded_equals_scalar_table1(
        words in prop::collection::vec(any::<u64>(), 40..400),
        shards in 1usize..9,
    ) {
        check_tri(MachineConfig::table1(), &decode_trace(&words), shards)?;
    }

    /// The E5000 preset (8-bit overlap, mostly-hit traffic: maximal memo
    /// resolution at split time).
    #[test]
    fn sharded_equals_scalar_e5000(
        words in prop::collection::vec(any::<u64>(), 40..400),
        shards in 1usize..9,
    ) {
        check_tri(MachineConfig::ultrasparc_e5000(), &decode_trace(&words), shards)?;
    }

    /// Write-back policies across real shard boundaries.
    #[test]
    fn sharded_equals_scalar_write_back(
        words in prop::collection::vec(any::<u64>(), 40..400),
        shards in 1usize..9,
    ) {
        check_tri(writeback_overlapped(), &decode_trace(&words), shards)?;
    }

    /// `TraceCorruption` faults: the splitter repairs corrupt buffers and
    /// continues; the result must equal the scalar replay of the repaired
    /// stream, and the repair must be counted.
    #[test]
    fn sharded_survives_trace_faults(
        words in prop::collection::vec(any::<u64>(), 60..300),
        shards in 1usize..9,
        fault_sel in any::<u64>(),
    ) {
        let machine = writeback_overlapped();
        let mut bufs = pack(&decode_trace(&words), 0);
        let victim = (fault_sel as usize) % bufs.len();
        let fault = match fault_sel % 3 {
            0 => TraceFault::TruncateAddrLane { keep: (fault_sel >> 8) as usize % 7 },
            1 => TraceFault::ZeroGapRun { entry: (fault_sel >> 8) as usize },
            _ => TraceFault::ScrambleAddrs { seed: fault_sel >> 8 },
        };
        bufs[victim].inject_fault(&fault);
        let structural = bufs[victim].validate().is_err();

        // Reference: the post-repair event stream through the scalar sink
        // (repair is a no-op on semantically-scrambled-but-valid buffers).
        let mut repaired = bufs.clone();
        for buf in &mut repaired {
            buf.repair();
        }
        let ref_events: Vec<Event> = repaired.iter().flat_map(|b| b.events()).collect();
        let mut scalar = MemorySink::new(machine);
        for &ev in &ref_events {
            scalar.event(ev);
        }

        let mut sharded = ShardedReplayer::new(machine, shards);
        let split = sharded.split(&bufs);
        prop_assert_eq!(split.repaired_bufs(), u64::from(structural));
        sharded.replay(&split);
        prop_assert_eq!(sharded.degradation().repaired_bufs, u64::from(structural));
        prop_assert_eq!(sharded.l1_stats(), scalar.system().l1_stats());
        prop_assert_eq!(sharded.l2_stats(), scalar.system().l2_stats());
        prop_assert_eq!(sharded.tlb_stats(), scalar.system().tlb_stats());
        prop_assert_eq!(sharded.memory_cycles(), scalar.memory_cycles());
    }

    /// `TraceCorruption` faults through the *pooled* splitter, twice over
    /// the same pool: round two splits the corrupt buffers into lane
    /// storage recycled from round one, and both rounds must repair and
    /// match the scalar replay of the repaired stream exactly.
    #[test]
    fn pooled_split_survives_trace_faults(
        words in prop::collection::vec(any::<u64>(), 60..300),
        shards in 1usize..9,
        fault_sel in any::<u64>(),
    ) {
        let machine = writeback_overlapped();
        let mut bufs = pack(&decode_trace(&words), 0);
        let victim = (fault_sel as usize) % bufs.len();
        let fault = match fault_sel % 3 {
            0 => TraceFault::TruncateAddrLane { keep: (fault_sel >> 8) as usize % 7 },
            1 => TraceFault::ZeroGapRun { entry: (fault_sel >> 8) as usize },
            _ => TraceFault::ScrambleAddrs { seed: fault_sel >> 8 },
        };
        bufs[victim].inject_fault(&fault);
        let structural = bufs[victim].validate().is_err();

        let mut repaired = bufs.clone();
        for buf in &mut repaired {
            buf.repair();
        }
        let ref_events: Vec<Event> = repaired.iter().flat_map(|b| b.events()).collect();
        let mut scalar = MemorySink::new(machine);
        for &ev in &ref_events {
            scalar.event(ev);
        }

        let pool = SplitPool::new();
        for round in 0..2 {
            let mut sharded = ShardedReplayer::new(machine, shards);
            let split = sharded.split_pooled(&bufs, &pool);
            prop_assert_eq!(split.repaired_bufs(), u64::from(structural));
            sharded.replay(&split);
            pool.recycle(split);
            prop_assert_eq!(sharded.l1_stats(), scalar.system().l1_stats(),
                "pooled fault round {}", round);
            prop_assert_eq!(sharded.l2_stats(), scalar.system().l2_stats());
            prop_assert_eq!(sharded.tlb_stats(), scalar.system().tlb_stats());
            prop_assert_eq!(sharded.memory_cycles(), scalar.memory_cycles());
        }
        prop_assert_eq!(pool.idle(), 1);
    }

    /// Poisoned workers: any subset of lanes may panic at entry; every
    /// poisoned lane must come back through the serial fallback with the
    /// merge still bit-identical, and the counters must account for each.
    #[test]
    fn sharded_poison_fallback_stays_exact(
        words in prop::collection::vec(any::<u64>(), 40..300),
        shards in 2usize..9,
        poison_mask in any::<u64>(),
    ) {
        let machine = writeback_overlapped();
        let trace = decode_trace(&words);
        let mut scalar = MemorySink::new(machine);
        for &ev in &trace {
            scalar.event(ev);
        }
        let mut sharded = ShardedReplayer::new(machine, shards);
        let poisoned: Vec<usize> =
            (0..sharded.shards()).filter(|i| poison_mask & (1 << i) != 0).collect();
        let split = sharded.split(&pack(&trace, 0));
        sharded.replay_poisoned(&split, &poisoned);
        let d = sharded.degradation();
        prop_assert_eq!(d.worker_panics, poisoned.len() as u64);
        prop_assert_eq!(d.fallback_lanes, poisoned.len() as u64);
        prop_assert_eq!(d.lost_lanes, 0);
        prop_assert_eq!(sharded.l1_stats(), scalar.system().l1_stats());
        prop_assert_eq!(sharded.l2_stats(), scalar.system().l2_stats());
        prop_assert_eq!(sharded.tlb_stats(), scalar.system().tlb_stats());
        prop_assert_eq!(sharded.memory_cycles(), scalar.memory_cycles());
    }

    /// Address spaces: streams replayed under distinct `space` tags must
    /// match a batched replay of the same tagged buffers — the TLB lane
    /// carries the salt, the physically-tagged caches do not.
    #[test]
    fn sharded_respects_address_spaces(
        words_a in prop::collection::vec(any::<u64>(), 30..150),
        words_b in prop::collection::vec(any::<u64>(), 30..150),
        shards in 1usize..9,
    ) {
        let machine = writeback_overlapped();
        let bufs: Vec<TraceBuf> = pack(&decode_trace(&words_a), 0)
            .into_iter()
            .chain(pack(&decode_trace(&words_b), 3))
            .collect();

        // Reference: the batched engine over the same tagged buffers.
        let mut reference = cc_sim::MemorySystem::new(machine);
        let mut cursor = cc_sim::BatchCursor::default();
        let mut cycles = 0u64;
        let mut now = 0u64;
        for buf in &bufs {
            let out = reference.access_batch(buf, now, &mut cursor);
            cycles += out.cycles;
            now += out.events;
        }

        let mut sharded = ShardedReplayer::new(machine, shards);
        let split = sharded.split(&bufs);
        sharded.replay(&split);
        prop_assert_eq!(sharded.l1_stats(), reference.l1_stats());
        prop_assert_eq!(sharded.l2_stats(), reference.l2_stats());
        prop_assert_eq!(sharded.tlb_stats(), reference.tlb_stats());
        prop_assert_eq!(sharded.memory_cycles(), cycles);
    }
}
