//! Differential properties: the batched engine is *defined* to be
//! observationally equal to the scalar reference path. Over arbitrary
//! event streams — biased toward the same-block runs the fast path
//! short-circuits — both must produce bit-identical cache statistics,
//! TLB counters, accumulated cycles, and (the strong form) identical
//! *future* behaviour: a probe suffix replayed scalar-ly through both
//! final states must see the same hits, misses, writebacks, and cycles,
//! which pins down LRU orders and write-back dirty bits, not just the
//! counters.

use cc_sim::batch::BatchSink;
use cc_sim::cache::WritePolicy;
use cc_sim::event::{Event, EventSink};
use cc_sim::geometry::CacheGeometry;
use cc_sim::{AccessKind, Latency, MachineConfig, MemorySink, MemorySystem};
use proptest::prelude::*;

/// A machine with a *write-back* L1, so stores allocate, dirty lines, and
/// evictions order writebacks — the policy corner the stock presets
/// (write-through L1) never exercise.
fn writeback_l1() -> MachineConfig {
    MachineConfig {
        l1: CacheGeometry::new(4, 16, 2),
        l1_policy: WritePolicy::WriteBack,
        l2: CacheGeometry::new(16, 64, 2),
        l2_policy: WritePolicy::WriteBack,
        latency: Latency {
            l1_hit: 1,
            l1_miss: 6,
            l2_miss: 64,
            tlb_miss: 30,
        },
        page_bytes: 256,
        tlb_entries: 4,
        clock_mhz: 100,
    }
}

/// The tiny preset with the TLB model disabled (`tlb_entries: 0`).
fn no_tlb() -> MachineConfig {
    MachineConfig {
        tlb_entries: 0,
        ..MachineConfig::test_tiny()
    }
}

/// Decodes raw words into an event stream biased toward the patterns the
/// batch path memoizes: long same-block pointer-chase runs, short strides,
/// block straddles, plus enough stores / prefetches / jumps to stress every
/// cursor-invalidation edge. Addresses stay inside an 8 KB arena so the
/// tiny configs see real evictions and TLB churn.
fn decode_trace(words: &[u64]) -> Vec<Event> {
    const ARENA: u64 = 8 * 1024;
    let mut cur: u64 = 0x100;
    let mut evs = Vec::with_capacity(words.len());
    for &r in words {
        let op = r % 100;
        let material = r >> 8;
        if op < 55 {
            // Dependent load near the previous one: stride 0..24 bytes, so
            // most consecutive pairs share a 16-byte block or sit in
            // adjacent blocks.
            cur = (cur + material % 24) % ARENA;
            let size = [1u32, 4, 8, 20][(material % 4) as usize];
            evs.push(Event::load(cur, size));
        } else if op < 70 {
            // Independent load somewhere else in the arena.
            cur = material % ARENA;
            evs.push(Event::load_indep(cur, 8));
        } else if op < 80 {
            evs.push(Event::store(
                material % ARENA,
                [1u32, 8, 20][(material % 3) as usize],
            ));
        } else if op < 85 {
            evs.push(Event::Prefetch {
                addr: material % ARENA,
            });
        } else if op < 91 {
            evs.push(Event::Inst((material % 7) as u32));
        } else if op < 96 {
            evs.push(Event::Branch((material % 3) as u32));
        } else {
            // Teleport the chase pointer: the next dependent load lands far
            // from the memoized block/page.
            cur = material % ARENA;
        }
    }
    evs
}

/// Replays `trace` through the scalar sink and a batched sink (with a
/// deliberately small batch so the cursor crosses many flush boundaries),
/// checks every observable counter, then proves state equivalence by
/// running a deterministic probe suffix through both final systems.
fn check_differential(machine: MachineConfig, trace: &[Event]) -> Result<(), TestCaseError> {
    let mut scalar = MemorySink::new(machine);
    let mut batched = BatchSink::with_capacity(machine, 7);
    for &ev in trace {
        scalar.event(ev);
        batched.event(ev);
    }
    batched.flush();

    prop_assert_eq!(
        batched.system().l1_stats(),
        scalar.system().l1_stats(),
        "L1 stats diverged"
    );
    prop_assert_eq!(
        batched.system().l2_stats(),
        scalar.system().l2_stats(),
        "L2 stats diverged"
    );
    prop_assert_eq!(
        batched.system().tlb_stats(),
        scalar.system().tlb_stats(),
        "TLB stats diverged"
    );
    prop_assert_eq!(batched.memory_cycles(), scalar.memory_cycles());
    prop_assert_eq!(batched.insts(), scalar.insts());
    prop_assert_eq!(batched.branches(), scalar.branches());

    // Strong form: the two final systems must be behaviourally identical.
    // A scalar probe suffix touching every block of the arena compares
    // per-access outcomes (level, cycles, TLB miss) — any divergence in
    // LRU stamps order, dirty bits, or in-flight prefetch state shows up
    // here as a different hit/writeback/wait pattern.
    let (mut sys_b, _) = batched.into_parts();
    let mut sys_s = scalar_into_system(scalar);
    let t0 = trace.len() as u64 + 1;
    for (i, addr) in (0..8 * 1024u64).step_by(16).enumerate() {
        let kind = if i % 5 == 3 {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        let now = t0 + i as u64;
        let a = sys_s.access(addr, 8, kind, now);
        let b = sys_b.access(addr, 8, kind, now);
        prop_assert_eq!(a, b, "probe {} at {:#x} diverged", i, addr);
    }
    prop_assert_eq!(sys_b.l1_stats(), sys_s.l1_stats(), "post-probe L1");
    prop_assert_eq!(sys_b.l2_stats(), sys_s.l2_stats(), "post-probe L2");
    prop_assert_eq!(sys_b.tlb_stats(), sys_s.tlb_stats(), "post-probe TLB");
    Ok(())
}

/// `MemorySink` has no `into_parts`; replicate the system by cloning.
fn scalar_into_system(sink: MemorySink) -> MemorySystem {
    sink.system().clone()
}

proptest! {
    /// Write-through L1 over E5000-shaped tiny geometry (the fig5/fig7
    /// machine family).
    #[test]
    fn batched_equals_scalar_write_through(words in prop::collection::vec(any::<u64>(), 40..400)) {
        check_differential(MachineConfig::test_tiny(), &decode_trace(&words))?;
    }

    /// Write-back L1: dirty allocation on store misses plus dirty-eviction
    /// writeback ordering must match exactly.
    #[test]
    fn batched_equals_scalar_write_back(words in prop::collection::vec(any::<u64>(), 40..400)) {
        check_differential(writeback_l1(), &decode_trace(&words))?;
    }

    /// TLB disabled: the page-memo arm is skipped entirely and cycles carry
    /// no TLB penalties.
    #[test]
    fn batched_equals_scalar_without_tlb(words in prop::collection::vec(any::<u64>(), 40..400)) {
        check_differential(no_tlb(), &decode_trace(&words))?;
    }

    /// The full-size E5000 preset, where the arena fits comfortably: mostly
    /// hits, maximal memo traffic.
    #[test]
    fn batched_equals_scalar_e5000(words in prop::collection::vec(any::<u64>(), 40..400)) {
        check_differential(MachineConfig::ultrasparc_e5000(), &decode_trace(&words))?;
    }
}

/// Directed regression: a same-block run interrupted by each kind of
/// invalidating event, crossing a flush boundary at every alignment.
#[test]
fn cursor_invalidation_edges() {
    let mut trace = Vec::new();
    for k in 0..6u64 {
        // A run of same-block loads…
        for i in 0..5u64 {
            trace.push(Event::load(0x40 + i, 4));
        }
        // …interrupted by one of each hazard.
        match k {
            0 => trace.push(Event::store(0x40, 4)),
            1 => trace.push(Event::Prefetch { addr: 0x40 }),
            2 => trace.push(Event::Prefetch { addr: 0x400 }),
            3 => trace.push(Event::store(0x400, 20)),
            4 => trace.push(Event::Inst(3)),
            _ => trace.push(Event::Branch(1)),
        }
        // …then the run resumes.
        for i in 0..5u64 {
            trace.push(Event::load(0x40 + i * 3, 4));
        }
    }
    for cap in 1..12 {
        let machine = MachineConfig::test_tiny();
        let mut scalar = MemorySink::new(machine);
        let mut batched = BatchSink::with_capacity(machine, cap);
        for &ev in &trace {
            scalar.event(ev);
            batched.event(ev);
        }
        batched.flush();
        assert_eq!(batched.system().l1_stats(), scalar.system().l1_stats());
        assert_eq!(batched.system().l2_stats(), scalar.system().l2_stats());
        assert_eq!(batched.system().tlb_stats(), scalar.system().tlb_stats());
        assert_eq!(batched.memory_cycles(), scalar.memory_cycles());
    }
}
