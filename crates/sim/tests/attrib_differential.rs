//! Differential properties for miss attribution: enabling a
//! [`cc_obs::MissProfile`] on any engine must leave every observable —
//! cache statistics, TLB counters, accumulated cycles — bit-identical
//! to the unattributed run, and the profile's per-region tallies must
//! sum to exactly the engine's own `CacheStats` totals. Attribution is
//! a lens, not a different simulator.

use std::sync::Arc;

use cc_obs::attrib::Level as ObsLevel;
use cc_obs::RegionMap;
use cc_sim::batch::BatchSink;
use cc_sim::cache::WritePolicy;
use cc_sim::event::{Event, EventSink};
use cc_sim::geometry::CacheGeometry;
use cc_sim::stats::CacheStats;
use cc_sim::{Latency, MachineConfig, MemorySink, ShardedReplayer, TraceBuf};
use proptest::prelude::*;

/// A machine with a *write-back* L1 and a 4-bit set-field overlap, so
/// the differential exercises dirty allocation and real shard
/// boundaries (same shape as the shard differential).
fn writeback_overlapped() -> MachineConfig {
    MachineConfig {
        l1: CacheGeometry::new(64, 16, 2),
        l1_policy: WritePolicy::WriteBack,
        l2: CacheGeometry::new(64, 64, 2),
        l2_policy: WritePolicy::WriteBack,
        latency: Latency {
            l1_hit: 1,
            l1_miss: 6,
            l2_miss: 64,
            tlb_miss: 30,
        },
        page_bytes: 256,
        tlb_entries: 4,
        clock_mhz: 100,
    }
}

/// Same event decoder as the other differentials: biased toward
/// same-block runs (the memos the attributed path must forfeit), with
/// stores, prefetches, and teleports mixed in.
fn decode_trace(words: &[u64]) -> Vec<Event> {
    const ARENA: u64 = 8 * 1024;
    let mut cur: u64 = 0x100;
    let mut evs = Vec::with_capacity(words.len());
    for &r in words {
        let op = r % 100;
        let material = r >> 8;
        if op < 55 {
            cur = (cur + material % 24) % ARENA;
            let size = [1u32, 4, 8, 20][(material % 4) as usize];
            evs.push(Event::load(cur, size));
        } else if op < 70 {
            cur = material % ARENA;
            evs.push(Event::load_indep(cur, 8));
        } else if op < 80 {
            evs.push(Event::store(
                material % ARENA,
                [1u32, 8, 20][(material % 3) as usize],
            ));
        } else if op < 85 {
            evs.push(Event::Prefetch {
                addr: material % ARENA,
            });
        } else if op < 91 {
            evs.push(Event::Inst((material % 7) as u32));
        } else if op < 96 {
            evs.push(Event::Branch((material % 3) as u32));
        } else {
            cur = material % ARENA;
        }
    }
    evs
}

/// Packs `events` into small buffers (capacity 7, many boundaries).
fn pack(events: &[Event]) -> Vec<TraceBuf> {
    let mut bufs = Vec::new();
    let mut cur = TraceBuf::with_capacity(7);
    for &ev in events {
        if cur.is_full() {
            bufs.push(std::mem::replace(&mut cur, TraceBuf::with_capacity(7)));
        }
        cur.push(ev);
    }
    if !cur.is_empty() {
        bufs.push(cur);
    }
    bufs
}

/// Two named regions covering most of the 8 KB trace arena, with the
/// gaps falling to the implicit "other" region.
fn arena_regions() -> Arc<RegionMap> {
    let mut map = RegionMap::new();
    map.register("lo", 0x000, 0x1000);
    map.register("hi", 0x1000, 0x1800);
    Arc::new(map)
}

/// Per-level parity: the profile's summed tallies must equal the
/// engine's own `CacheStats` totals — every demand access and every
/// eviction (demand or prefetch fill) attributed exactly once.
fn assert_totals_match(
    profile: &cc_obs::MissProfile,
    l1: CacheStats,
    l2: CacheStats,
) -> Result<(), TestCaseError> {
    for (level, stats) in [(ObsLevel::L1, l1), (ObsLevel::L2, l2)] {
        let t = profile.totals(level);
        prop_assert_eq!(t.accesses, stats.accesses(), "accesses at {:?}", level);
        prop_assert_eq!(t.hits, stats.hits(), "hits at {:?}", level);
        prop_assert_eq!(t.misses, stats.misses(), "misses at {:?}", level);
        prop_assert_eq!(t.evictions, stats.evictions(), "evictions at {:?}", level);
    }
    Ok(())
}

/// The core differential: run the trace through every engine with and
/// without attribution; all observables must be bit-identical, the
/// three profiles must agree byte-for-byte, and tallies must sum to
/// the stats totals.
fn check_attrib(
    machine: MachineConfig,
    trace: &[Event],
    shards: usize,
) -> Result<(), TestCaseError> {
    let map = arena_regions();

    // Reference: the plain scalar sink.
    let mut plain = MemorySink::new(machine);
    for &ev in trace {
        plain.event(ev);
    }

    // Attributed scalar.
    let mut scalar = MemorySink::new(machine);
    scalar.enable_attribution(Arc::clone(&map));
    for &ev in trace {
        scalar.event(ev);
    }
    prop_assert_eq!(scalar.system().l1_stats(), plain.system().l1_stats());
    prop_assert_eq!(scalar.system().l2_stats(), plain.system().l2_stats());
    prop_assert_eq!(scalar.system().tlb_stats(), plain.system().tlb_stats());
    prop_assert_eq!(scalar.memory_cycles(), plain.memory_cycles());
    let scalar_profile = scalar.attribution().expect("attribution enabled").clone();
    assert_totals_match(
        &scalar_profile,
        plain.system().l1_stats(),
        plain.system().l2_stats(),
    )?;

    // Attributed batched (memos and inline fast paths forfeited).
    let mut batched = BatchSink::with_capacity(machine, 7);
    batched.enable_attribution(Arc::clone(&map));
    for &ev in trace {
        batched.event(ev);
    }
    batched.flush();
    prop_assert_eq!(batched.system().l1_stats(), plain.system().l1_stats());
    prop_assert_eq!(batched.system().l2_stats(), plain.system().l2_stats());
    prop_assert_eq!(batched.system().tlb_stats(), plain.system().tlb_stats());
    prop_assert_eq!(batched.memory_cycles(), plain.memory_cycles());
    let batched_profile = batched.attribution().expect("attribution enabled");
    prop_assert_eq!(
        batched_profile.to_json(),
        scalar_profile.to_json(),
        "batched profile diverged from scalar"
    );

    // Attributed sharded (split-time memos forfeited, lanes route
    // through the reference replay), crossing a segment boundary.
    let mut sharded = ShardedReplayer::new(machine, shards);
    sharded.enable_attribution(Arc::clone(&map));
    let (a, b) = trace.split_at(trace.len() / 2);
    for seg in [a, b] {
        let split = sharded.split(&pack(seg));
        sharded.replay(&split);
    }
    prop_assert_eq!(sharded.l1_stats(), plain.system().l1_stats());
    prop_assert_eq!(sharded.l2_stats(), plain.system().l2_stats());
    prop_assert_eq!(sharded.tlb_stats(), plain.system().tlb_stats());
    prop_assert_eq!(sharded.memory_cycles(), plain.memory_cycles());
    let sharded_profile = sharded.attribution().expect("attribution enabled");
    prop_assert_eq!(
        sharded_profile.to_json(),
        scalar_profile.to_json(),
        "merged sharded profile diverged from scalar at {} shards",
        shards
    );
    Ok(())
}

proptest! {
    /// The tiny preset (clamps to one serial shard — still exact).
    #[test]
    fn attribution_is_invisible_test_tiny(
        words in prop::collection::vec(any::<u64>(), 40..400),
        shards in 1usize..9,
    ) {
        check_attrib(MachineConfig::test_tiny(), &decode_trace(&words), shards)?;
    }

    /// Write-back policies across real shard boundaries: eviction
    /// attribution under dirty allocation and writeback ordering.
    #[test]
    fn attribution_is_invisible_write_back(
        words in prop::collection::vec(any::<u64>(), 40..400),
        shards in 1usize..9,
    ) {
        check_attrib(writeback_overlapped(), &decode_trace(&words), shards)?;
    }

    /// The E5000 preset (write-through no-allocate L1, mostly-hit
    /// traffic — maximal memo forfeiture on the batched path).
    #[test]
    fn attribution_is_invisible_e5000(
        words in prop::collection::vec(any::<u64>(), 40..400),
        shards in 1usize..9,
    ) {
        check_attrib(MachineConfig::ultrasparc_e5000(), &decode_trace(&words), shards)?;
    }
}

/// Two regions ping-ponging in a direct-mapped set must surface as a
/// mutual conflict pair — the exact signal the paper's coloring
/// decisions consume.
#[test]
fn ping_pong_regions_produce_conflict_pairs() {
    let machine = MachineConfig {
        l1: CacheGeometry::new(4, 16, 1),
        l1_policy: WritePolicy::WriteBack,
        l2: CacheGeometry::new(64, 64, 2),
        l2_policy: WritePolicy::WriteBack,
        latency: Latency {
            l1_hit: 1,
            l1_miss: 6,
            l2_miss: 64,
            tlb_miss: 30,
        },
        page_bytes: 256,
        tlb_entries: 4,
        clock_mhz: 100,
    };
    // way_bytes = 4 sets * 16 B = 64: addresses 0x00 and 0x40 collide
    // in L1 set 0.
    let mut map = RegionMap::new();
    let a = map.register("ping", 0x00, 0x10);
    let b = map.register("pong", 0x40, 0x50);
    let map = Arc::new(map);

    let mut sink = MemorySink::new(machine);
    sink.enable_attribution(Arc::clone(&map));
    for _ in 0..8 {
        sink.event(Event::load(0x00, 8));
        sink.event(Event::load(0x40, 8));
    }
    let profile = sink.attribution().expect("attribution enabled");
    let l1_pairs: Vec<_> = profile
        .conflict_pairs()
        .into_iter()
        .filter(|p| p.level == ObsLevel::L1)
        .collect();
    let ping_evicted_by_pong = l1_pairs
        .iter()
        .find(|p| p.victim == a && p.evictor == b)
        .expect("ping evicted by pong");
    let pong_evicted_by_ping = l1_pairs
        .iter()
        .find(|p| p.victim == b && p.evictor == a)
        .expect("pong evicted by ping");
    // First load of each region fills an invalid way; every later load
    // evicts the other region.
    assert_eq!(ping_evicted_by_pong.count, 8);
    assert_eq!(pong_evicted_by_ping.count, 7);
    assert_eq!(profile.tally(ObsLevel::L1, a).misses, 8);
    assert_eq!(profile.tally(ObsLevel::L1, b).misses, 8);
}
