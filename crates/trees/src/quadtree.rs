//! Quadtrees over bitmaps — the structure of Olden `perimeter`
//! (Table 2: "computes perimeter of regions in images", quadtree over a
//! 4K × 4K image).

use crate::NIL;
use cc_core::ccmorph::{ccmorph, CcMorphParams, Layout};
use cc_core::Topology;
use cc_heap::{Allocator, VirtualSpace};
use cc_sim::event::EventSink;
use cc_sim::prefetch::greedy_prefetch_children;

/// Bytes per quadtree node: four child pointers, parent pointer, color,
/// level (32-bit layout, as in Olden).
pub const QUAD_NODE_BYTES: u64 = 28;

/// Node color in the region quadtree.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Color {
    /// Entirely outside the region.
    White,
    /// Entirely inside the region.
    Black,
    /// Mixed: subdivided into four children.
    Grey,
}

#[derive(Clone, Copy, Debug)]
struct QNode {
    kids: [u32; 4],
    parent: u32,
    color: Color,
    addr: u64,
}

/// An arena-backed region quadtree at simulated addresses.
///
/// Built by recursive subdivision of a predicate over the image — node
/// allocation order is therefore depth-first, which is why the paper sees
/// only modest `ccmalloc` gains on `perimeter` (allocation order already
/// matches traversal order).
#[derive(Clone, Debug)]
pub struct QuadTree {
    nodes: Vec<QNode>,
    root: u32,
    size: u32,
}

/// Child quadrant order: NW, NE, SW, SE (matching the paper's Figure 3).
pub const QUADRANTS: [&str; 4] = ["nw", "ne", "sw", "se"];

impl QuadTree {
    /// Builds the quadtree of the region `inside` over a `size × size`
    /// image (`size` must be a power of two). Subdivision stops at
    /// uniform quadrants or single pixels. Node addresses are assigned
    /// from `alloc` in construction (depth-first) order; pass
    /// `hint_parent = true` to `ccmalloc` each node next to its parent.
    ///
    /// # Panics
    ///
    /// Panics if `size` is not a power of two.
    pub fn build<A, F, S>(
        size: u32,
        inside: &F,
        alloc: &mut A,
        sink: &mut S,
        hint_parent: bool,
    ) -> Self
    where
        A: Allocator,
        F: Fn(u32, u32) -> bool,
        S: EventSink,
    {
        assert!(size.is_power_of_two(), "image size must be a power of two");
        let mut t = QuadTree {
            nodes: Vec::new(),
            root: NIL,
            size,
        };
        t.root = t.subdivide(0, 0, size, NIL, inside, alloc, sink, hint_parent);
        t
    }

    #[allow(clippy::too_many_arguments)]
    fn subdivide<A, F, S>(
        &mut self,
        x: u32,
        y: u32,
        size: u32,
        parent: u32,
        inside: &F,
        alloc: &mut A,
        sink: &mut S,
        hint_parent: bool,
    ) -> u32
    where
        A: Allocator,
        F: Fn(u32, u32) -> bool,
        S: EventSink,
    {
        // Classify the quadrant exactly: scan pixels until a mismatch.
        // Mixed quadrants exit early; uniform ones pay a full scan, which
        // only happens once per leaf.
        let first = inside(x, y);
        let mut uniform = true;
        'outer: for yy in y..y + size {
            for xx in x..x + size {
                if inside(xx, yy) != first {
                    uniform = false;
                    break 'outer;
                }
            }
        }

        let hint = if hint_parent && parent != NIL {
            Some(self.nodes[parent as usize].addr)
        } else {
            None
        };
        sink.inst(alloc.cost_insts());
        let addr = alloc.alloc_hint(QUAD_NODE_BYTES, hint);
        sink.store(addr, QUAD_NODE_BYTES as u32);
        let id = self.nodes.len() as u32;
        self.nodes.push(QNode {
            kids: [NIL; 4],
            parent,
            color: if !uniform || size == 1 {
                if uniform {
                    if first {
                        Color::Black
                    } else {
                        Color::White
                    }
                } else {
                    Color::Grey
                }
            } else if first {
                Color::Black
            } else {
                Color::White
            },
            addr,
        });

        if self.nodes[id as usize].color == Color::Grey && size > 1 {
            let h = size / 2;
            let quads = [(x, y), (x + h, y), (x, y + h), (x + h, y + h)];
            for (i, (qx, qy)) in quads.into_iter().enumerate() {
                let c = self.subdivide(qx, qy, h, id, inside, alloc, sink, hint_parent);
                self.nodes[id as usize].kids[i] = c;
            }
        }
        id
    }

    /// Image edge length.
    pub fn size(&self) -> u32 {
        self.size
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Color of node `id`.
    pub fn color_of(&self, id: u32) -> Color {
        self.nodes[id as usize].color
    }

    /// Root node id.
    pub fn root_id(&self) -> u32 {
        self.root
    }

    /// Counts black leaves, walking the tree with loads into `sink` —
    /// a representative read traversal.
    pub fn count_black<S: EventSink>(&self, sink: &mut S, sw_prefetch: bool) -> usize {
        self.count_black_from(self.root, sink, sw_prefetch)
    }

    fn count_black_from<S: EventSink>(&self, id: u32, sink: &mut S, sw_prefetch: bool) -> usize {
        let n = &self.nodes[id as usize];
        sink.load(n.addr, QUAD_NODE_BYTES as u32);
        sink.inst(3);
        sink.branch(1);
        match n.color {
            Color::Black => 1,
            Color::White => 0,
            Color::Grey => {
                if sw_prefetch {
                    let kids: Vec<u64> = n
                        .kids
                        .iter()
                        .filter(|&&k| k != NIL)
                        .map(|&k| self.nodes[k as usize].addr)
                        .collect();
                    greedy_prefetch_children(sink, &kids);
                }
                n.kids
                    .iter()
                    .filter(|&&k| k != NIL)
                    .map(|&k| self.count_black_from(k, sink, sw_prefetch))
                    .sum()
            }
        }
    }

    /// Locates the deepest node containing pixel `(x, y)`, descending
    /// from the root and emitting one dependent load per level. Returns
    /// the node's color and its quadrant `(x0, y0, size)`.
    ///
    /// # Panics
    ///
    /// Panics if `(x, y)` lies outside the image.
    pub fn locate<S: EventSink>(&self, x: u32, y: u32, sink: &mut S) -> (Color, u32, u32, u32) {
        assert!(x < self.size && y < self.size, "pixel out of bounds");
        let (mut x0, mut y0, mut size) = (0u32, 0u32, self.size);
        let mut cur = self.root;
        loop {
            let n = &self.nodes[cur as usize];
            sink.load(n.addr, QUAD_NODE_BYTES as u32);
            sink.inst(4);
            sink.branch(1);
            if n.color != Color::Grey {
                return (n.color, x0, y0, size);
            }
            let h = size / 2;
            let east = x >= x0 + h;
            let south = y >= y0 + h;
            let idx = usize::from(east) + 2 * usize::from(south);
            if east {
                x0 += h;
            }
            if south {
                y0 += h;
            }
            size = h;
            cur = n.kids[idx];
        }
    }

    /// Visits every black leaf with its quadrant, emitting one load per
    /// node visited (the depth-first scan half of the perimeter
    /// computation).
    pub fn for_each_black_leaf<S, F>(&self, sink: &mut S, f: &mut F)
    where
        S: EventSink,
        F: FnMut(u32, u32, u32, u32),
    {
        self.black_leaves_from(self.root, 0, 0, self.size, sink, f);
    }

    fn black_leaves_from<S, F>(&self, id: u32, x0: u32, y0: u32, size: u32, sink: &mut S, f: &mut F)
    where
        S: EventSink,
        F: FnMut(u32, u32, u32, u32),
    {
        let n = &self.nodes[id as usize];
        sink.load(n.addr, QUAD_NODE_BYTES as u32);
        sink.inst(3);
        sink.branch(1);
        match n.color {
            Color::Black => f(id, x0, y0, size),
            Color::White => {}
            Color::Grey => {
                let h = size / 2;
                let quads = [(x0, y0), (x0 + h, y0), (x0, y0 + h), (x0 + h, y0 + h)];
                for (i, (qx, qy)) in quads.into_iter().enumerate() {
                    if n.kids[i] != NIL {
                        self.black_leaves_from(n.kids[i], qx, qy, h, sink, f);
                    }
                }
            }
        }
    }

    /// Reorganizes the tree with `ccmorph`, updating node addresses.
    pub fn morph(&mut self, vspace: &mut VirtualSpace, params: &CcMorphParams) -> Layout {
        let layout = ccmorph(self, vspace, params);
        for (id, node) in self.nodes.iter_mut().enumerate() {
            if let Some(a) = layout.try_addr_of(id) {
                node.addr = a;
            }
        }
        layout
    }

    /// Address of node `id` (for tests).
    pub fn addr_of(&self, id: u32) -> u64 {
        self.nodes[id as usize].addr
    }

    /// Child `i` of node `id`, if present.
    pub fn kid(&self, id: u32, i: usize) -> Option<u32> {
        let k = self.nodes[id as usize].kids[i];
        (k != NIL).then_some(k)
    }

    /// Parent of node `id`, if any.
    pub fn parent(&self, id: u32) -> Option<u32> {
        let p = self.nodes[id as usize].parent;
        (p != NIL).then_some(p)
    }
}

impl Topology for QuadTree {
    fn node_count(&self) -> usize {
        self.nodes.len()
    }

    fn root(&self) -> Option<usize> {
        (self.root != NIL).then_some(self.root as usize)
    }

    fn max_kids(&self) -> usize {
        4
    }

    fn child(&self, node: usize, i: usize) -> Option<usize> {
        let k = self.nodes[node].kids[i];
        (k != NIL).then_some(k as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_heap::Malloc;
    use cc_sim::event::NullSink;
    use cc_sim::MachineConfig;

    /// A quarter-plane region: inside iff x < size/2 && y < size/2.
    fn quarter(size: u32) -> impl Fn(u32, u32) -> bool {
        move |x, y| x < size / 2 && y < size / 2
    }

    #[test]
    fn uniform_image_is_one_node() {
        let mut heap = Malloc::new(8192);
        let t = QuadTree::build(64, &|_, _| true, &mut heap, &mut NullSink, false);
        assert_eq!(t.node_count(), 1);
        assert_eq!(t.color_of(t.root_id()), Color::Black);
    }

    #[test]
    fn quarter_region_subdivides_once() {
        let mut heap = Malloc::new(8192);
        let t = QuadTree::build(64, &quarter(64), &mut heap, &mut NullSink, false);
        // Root grey, NW black, other three white.
        assert_eq!(t.node_count(), 5);
        assert_eq!(t.color_of(t.root_id()), Color::Grey);
        let nw = t.kid(t.root_id(), 0).unwrap();
        assert_eq!(t.color_of(nw), Color::Black);
        for i in 1..4 {
            assert_eq!(t.color_of(t.kid(t.root_id(), i).unwrap()), Color::White);
        }
    }

    #[test]
    fn count_black_counts_leaves() {
        let mut heap = Malloc::new(8192);
        let t = QuadTree::build(64, &quarter(64), &mut heap, &mut NullSink, false);
        assert_eq!(t.count_black(&mut NullSink, false), 1);
    }

    #[test]
    fn checkerboard_produces_deep_tree() {
        let mut heap = Malloc::new(8192);
        // 8x8 tiles: forces subdivision down to tile granularity.
        let t = QuadTree::build(
            64,
            &|x, y| (x / 8 + y / 8) % 2 == 0,
            &mut heap,
            &mut NullSink,
            false,
        );
        assert!(t.node_count() > 64);
        assert_eq!(t.count_black(&mut NullSink, false), 32);
    }

    #[test]
    fn parent_pointers_consistent() {
        let mut heap = Malloc::new(8192);
        let t = QuadTree::build(64, &quarter(64), &mut heap, &mut NullSink, false);
        for i in 0..4 {
            let k = t.kid(t.root_id(), i).unwrap();
            assert_eq!(t.parent(k), Some(t.root_id()));
        }
        assert_eq!(t.parent(t.root_id()), None);
    }

    #[test]
    fn morph_preserves_counts() {
        let machine = MachineConfig::table1();
        let mut heap = Malloc::new(8192);
        let mut t = QuadTree::build(
            256,
            &|x, y| (x / 16 + y / 16) % 2 == 0,
            &mut heap,
            &mut NullSink,
            false,
        );
        let before = t.count_black(&mut NullSink, false);
        let mut vs = VirtualSpace::new(8192);
        t.morph(
            &mut vs,
            &CcMorphParams::clustering_only(&machine, QUAD_NODE_BYTES),
        );
        assert_eq!(t.count_black(&mut NullSink, false), before);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_size_rejected() {
        let mut heap = Malloc::new(8192);
        let _ = QuadTree::build(100, &|_, _| true, &mut heap, &mut NullSink, false);
    }
}
