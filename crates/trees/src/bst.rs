//! The balanced binary search tree of the paper's microbenchmark
//! (Section 4.2), with every layout the paper compares:
//! randomly clustered, depth-first clustered, and the transparent C-tree
//! (`ccmorph`ed: subtree-clustered, optionally colored).

use crate::{BST_NODE_BYTES, NIL};
use cc_core::ccmorph::{ccmorph, CcMorphParams, Layout};
use cc_core::cluster::{order, Order};
use cc_core::Topology;
use cc_heap::VirtualSpace;
use cc_sim::event::EventSink;
use cc_sim::prefetch::greedy_prefetch_children;

// Layout pinned per cc-lint: 24 B/node with zero padding, so a 64-byte line
// holds 2 whole nodes (2.67 on average across an arena) — under repr(Rust)
// the compiler was free to break that. The comparison key and child links
// are the traversal-hot bytes; `addr` is only read to emit trace events.
#[derive(Clone, Copy, Debug)]
#[repr(C)]
struct Node {
    key: u64,   // cc-hot
    left: u32,  // cc-hot
    right: u32, // cc-hot
    addr: u64,
}

/// An arena-backed balanced binary search tree whose nodes live at
/// simulated addresses.
///
/// # Example
///
/// ```
/// use cc_trees::bst::Bst;
/// use cc_core::cluster::Order;
/// use cc_sim::event::NullSink;
///
/// let mut t = Bst::build_complete(1023);
/// t.layout_sequential(Order::DepthFirst);
/// assert!(t.search(500, &mut NullSink, false));
/// assert!(!t.search(5000, &mut NullSink, false));
/// ```
#[derive(Clone, Debug)]
pub struct Bst {
    nodes: Vec<Node>,
    root: u32,
}

impl Bst {
    /// Builds a balanced tree over keys `0..n` (each key is `2i`, so odd
    /// probes test the miss path). Nodes are pushed in the order a
    /// recursive build allocates them — the "allocation order" baseline.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn build_complete(n: u64) -> Self {
        assert!(n > 0, "tree must be nonempty");
        let mut t = Bst {
            nodes: Vec::with_capacity(n as usize),
            root: NIL,
        };
        t.root = t.build_range(0, n);
        // Default layout: allocation order, contiguous.
        t.layout_sequential(Order::DepthFirst);
        t
    }

    /// Recursive midpoint build; allocation order is pre-order DFS.
    fn build_range(&mut self, lo: u64, hi: u64) -> u32 {
        if lo >= hi {
            return NIL;
        }
        let mid = lo + (hi - lo) / 2;
        let id = self.nodes.len() as u32;
        self.nodes.push(Node {
            key: 2 * mid,
            left: NIL,
            right: NIL,
            addr: 0,
        });
        let left = self.build_range(lo, mid);
        let right = self.build_range(mid + 1, hi);
        let node = &mut self.nodes[id as usize];
        node.left = left;
        node.right = right;
        id
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree is empty (never true: `build_complete` requires
    /// `n > 0`).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Height in nodes along the longest path.
    pub fn height(&self) -> usize {
        fn h(t: &Bst, n: u32) -> usize {
            if n == NIL {
                0
            } else {
                1 + h(t, t.nodes[n as usize].left).max(h(t, t.nodes[n as usize].right))
            }
        }
        h(self, self.root)
    }

    /// Address of node `id` (for tests).
    pub fn addr_of(&self, id: usize) -> u64 {
        self.nodes[id].addr
    }

    /// Memory consumed by the naive layouts: nodes packed at
    /// [`BST_NODE_BYTES`] pitch.
    pub fn data_bytes(&self) -> u64 {
        self.nodes.len() as u64 * BST_NODE_BYTES
    }

    /// Lays nodes out contiguously in the given order from a fresh
    /// address region — the paper's *randomly clustered*
    /// ([`Order::Random`]) and *depth-first clustered*
    /// ([`Order::DepthFirst`]) baselines.
    pub fn layout_sequential(&mut self, ord: Order) {
        let mut vspace = VirtualSpace::new(8192);
        let visit = order(self, ord);
        let base = vspace.alloc_bytes(self.data_bytes());
        for (i, node) in visit.into_iter().enumerate() {
            self.nodes[node].addr = base + i as u64 * BST_NODE_BYTES;
        }
    }

    /// Reorganizes the tree with `ccmorph` — the transparent C-tree. Pass
    /// `CcMorphParams::clustering_only` for "CI" or
    /// `::clustering_and_coloring` for the full C-tree, and returns the
    /// layout for footprint inspection.
    pub fn morph(&mut self, vspace: &mut VirtualSpace, params: &CcMorphParams) -> Layout {
        let layout = ccmorph(self, vspace, params);
        for (id, node) in self.nodes.iter_mut().enumerate() {
            node.addr = layout.addr_of(id);
        }
        layout
    }

    /// Searches for `key`, narrating loads into `sink`; with
    /// `sw_prefetch`, issues greedy (Luk & Mowry) prefetches for both
    /// children at every visited node.
    ///
    /// Per visited node the traversal emits one dependent load of the
    /// node (key and child pointers share the element), a couple of
    /// compare/address instructions, and a branch.
    pub fn search<S: EventSink>(&self, key: u64, sink: &mut S, sw_prefetch: bool) -> bool {
        let mut cur = self.root;
        while cur != NIL {
            let node = &self.nodes[cur as usize];
            sink.load(node.addr, BST_NODE_BYTES as u32);
            sink.inst(3);
            sink.branch(1);
            if sw_prefetch {
                let mut kids = [0u64; 2];
                let mut n = 0;
                for c in [node.left, node.right] {
                    if c != NIL {
                        kids[n] = self.nodes[c as usize].addr;
                        n += 1;
                    }
                }
                greedy_prefetch_children(sink, &kids[..n]);
            }
            cur = match key.cmp(&node.key) {
                std::cmp::Ordering::Equal => return true,
                std::cmp::Ordering::Less => node.left,
                std::cmp::Ordering::Greater => node.right,
            };
        }
        false
    }

    /// In-order key iteration (for correctness tests).
    pub fn keys_in_order(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.nodes.len());
        // Iterative in-order to avoid deep recursion on large trees.
        let mut stack = Vec::new();
        let mut cur = self.root;
        while cur != NIL || !stack.is_empty() {
            while cur != NIL {
                stack.push(cur);
                cur = self.nodes[cur as usize].left;
            }
            let n = stack.pop().expect("stack nonempty");
            out.push(self.nodes[n as usize].key);
            cur = self.nodes[n as usize].right;
        }
        out
    }
}

impl Topology for Bst {
    fn node_count(&self) -> usize {
        self.nodes.len()
    }

    fn root(&self) -> Option<usize> {
        (self.root != NIL).then_some(self.root as usize)
    }

    fn max_kids(&self) -> usize {
        2
    }

    fn child(&self, node: usize, i: usize) -> Option<usize> {
        let c = match i {
            0 => self.nodes[node].left,
            1 => self.nodes[node].right,
            _ => NIL,
        };
        (c != NIL).then_some(c as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_sim::event::{NullSink, TraceBuffer};
    use cc_sim::MachineConfig;

    #[test]
    fn bst_property_holds() {
        let t = Bst::build_complete(1000);
        let keys = t.keys_in_order();
        assert_eq!(keys.len(), 1000);
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(keys[0], 0);
        assert_eq!(keys[999], 1998);
    }

    #[test]
    fn search_finds_all_present_and_no_absent() {
        let t = Bst::build_complete(512);
        for i in 0..512 {
            assert!(t.search(2 * i, &mut NullSink, false), "key {}", 2 * i);
        }
        for i in 0..512 {
            assert!(!t.search(2 * i + 1, &mut NullSink, false));
        }
    }

    #[test]
    fn tree_is_balanced() {
        let t = Bst::build_complete((1 << 12) - 1);
        assert_eq!(t.height(), 12);
    }

    #[test]
    fn search_emits_one_load_per_level() {
        let t = Bst::build_complete((1 << 10) - 1);
        let mut buf = TraceBuffer::new();
        t.search(1, &mut buf, false);
        assert!(buf.memory_refs() <= 10);
        assert!(buf.memory_refs() >= 9);
    }

    #[test]
    fn prefetch_variant_emits_prefetches() {
        let t = Bst::build_complete(127);
        let mut buf = TraceBuffer::new();
        t.search(64, &mut buf, true);
        let prefetches = buf
            .events()
            .iter()
            .filter(|e| matches!(e, cc_sim::Event::Prefetch { .. }))
            .count();
        assert!(prefetches > 0);
    }

    #[test]
    fn layouts_place_all_nodes_distinctly() {
        let mut t = Bst::build_complete(300);
        for ord in [
            Order::DepthFirst,
            Order::BreadthFirst,
            Order::Random { seed: 9 },
        ] {
            t.layout_sequential(ord);
            let mut addrs: Vec<u64> = (0..300).map(|i| t.addr_of(i)).collect();
            addrs.sort_unstable();
            addrs.dedup();
            assert_eq!(addrs.len(), 300);
        }
    }

    #[test]
    fn morph_preserves_search_results() {
        let machine = MachineConfig::ultrasparc_e5000();
        let mut t = Bst::build_complete(2000);
        let mut vs = VirtualSpace::new(8192);
        t.morph(
            &mut vs,
            &CcMorphParams::clustering_and_coloring(&machine, BST_NODE_BYTES),
        );
        for i in (0..2000).step_by(97) {
            assert!(t.search(2 * i, &mut NullSink, false));
            assert!(!t.search(2 * i + 1, &mut NullSink, false));
        }
    }

    #[test]
    fn morphed_tree_clusters_root_children() {
        let machine = MachineConfig::ultrasparc_e5000();
        let mut t = Bst::build_complete((1 << 10) - 1);
        let mut vs = VirtualSpace::new(8192);
        t.morph(
            &mut vs,
            &CcMorphParams::clustering_only(&machine, BST_NODE_BYTES),
        );
        // Root is node 0 (first allocated); its children share its block.
        let rb = t.addr_of(0) / 64;
        let mut same = 0;
        for i in 1..t.len() {
            if t.addr_of(i) / 64 == rb {
                same += 1;
            }
        }
        assert_eq!(same, 2, "exactly the two children join the root block");
    }
}

// The cc-lint offset model for `Node` is pinned here, next to the
// definition, because `Node` is private: the workspace sweep in
// `cc-lint/tests/verify_offsets.rs` requires every exact-modeled repr(C)
// struct to have exactly this kind of compiler-backed check.
#[cfg(test)]
mod lint_verify {
    use super::Node;
    use cc_lint::{analyze_sources, HotSpec, LintConfig};

    #[test]
    fn node_layout_matches_compiler() {
        let report = analyze_sources(
            &[("bst.rs".to_string(), include_str!("bst.rs").to_string())],
            &HotSpec::empty(),
            &LintConfig::default(),
        );
        let node = report
            .structs
            .iter()
            .find(|s| s.name == "Node")
            .expect("Node modeled");
        assert!(node.exact, "repr(C) pin makes the model a guarantee");
        assert_eq!(node.size, core::mem::size_of::<Node>() as u64);
        assert_eq!(node.align, core::mem::align_of::<Node>() as u64);
        assert_eq!(node.padding, 0, "24 B/node with zero padding");
        for (name, offset) in [
            ("key", core::mem::offset_of!(Node, key)),
            ("left", core::mem::offset_of!(Node, left)),
            ("right", core::mem::offset_of!(Node, right)),
            ("addr", core::mem::offset_of!(Node, addr)),
        ] {
            let modeled = node
                .fields
                .iter()
                .find(|(n, ..)| n == name)
                .map(|f| f.1)
                .expect("field modeled");
            assert_eq!(modeled, offset as u64, "offset of Node.{name}");
        }
        // The traversal-hot annotations are picked up from the comments.
        for (name, _, _, _, hot) in &node.fields {
            assert_eq!(
                *hot,
                name != "addr",
                "cc-hot marks key/left/right, not addr"
            );
        }
    }
}
