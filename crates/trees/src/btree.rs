//! The in-core B-tree baseline of the microbenchmark (Section 4.2).
//!
//! Database B-trees bridge the memory/disk gap the same way the C-tree
//! bridges the cache/memory gap, so the paper measures a B-tree whose
//! nodes are exactly one L2 cache block, colored to reduce conflicts. The
//! paper's explanation for the C-tree's 1.5× advantage: "B-trees reserve
//! extra space in tree nodes to handle insertion gracefully, and hence do
//! not manage cache space as efficiently" — modelled here by the bulk-load
//! fill factor.

use crate::NIL;
use cc_core::color::ColoredSpace;
use cc_heap::VirtualSpace;
use cc_sim::event::EventSink;
use cc_sim::MachineConfig;

#[derive(Clone, Debug)]
struct BNode {
    keys: Vec<u64>,
    /// Child arena indices; empty for leaves.
    kids: Vec<u32>,
    addr: u64,
}

/// A bulk-loaded B+-style search tree with cache-block-sized nodes.
///
/// # Example
///
/// ```
/// use cc_trees::btree::BTree;
/// use cc_sim::event::NullSink;
///
/// let keys: Vec<u64> = (0..1000).map(|i| 2 * i).collect();
/// let t = BTree::build_from_sorted(&keys, 64, 0.7);
/// assert!(t.search(500, &mut NullSink));
/// assert!(!t.search(501, &mut NullSink));
/// ```
#[derive(Clone, Debug)]
pub struct BTree {
    nodes: Vec<BNode>,
    root: u32,
    node_bytes: u64,
    max_keys: usize,
    height: usize,
}

impl BTree {
    /// Maximum keys for a node of `node_bytes`: 8-byte keys, 4-byte child
    /// pointers, 4-byte count — the paper's 32-bit layout.
    pub fn max_keys_for(node_bytes: u64) -> usize {
        // max_keys*8 + (max_keys+1)*4 + 4 <= node_bytes
        (((node_bytes - 8) / 12) as usize).max(1)
    }

    /// Bulk-loads a B-tree from sorted, distinct `keys`. Nodes are
    /// `node_bytes` big (one cache block in the paper), filled to `fill`
    /// of capacity — the slack a real B-tree keeps for insertions.
    ///
    /// # Panics
    ///
    /// Panics if `keys` is empty, unsorted, or `fill ∉ (0, 1]`.
    pub fn build_from_sorted(keys: &[u64], node_bytes: u64, fill: f64) -> Self {
        assert!(!keys.is_empty(), "keys must be nonempty");
        assert!(keys.windows(2).all(|w| w[0] < w[1]), "keys must be sorted");
        assert!(fill > 0.0 && fill <= 1.0, "fill factor must be in (0, 1]");
        let max_keys = Self::max_keys_for(node_bytes);
        let per_node = ((max_keys as f64 * fill).round() as usize).clamp(1, max_keys);

        let mut t = BTree {
            nodes: Vec::new(),
            root: NIL,
            node_bytes,
            max_keys,
            height: 0,
        };

        // Leaves.
        let mut level: Vec<u32> = Vec::new();
        let mut seps: Vec<u64> = Vec::new(); // first key of each node
        for chunk in keys.chunks(per_node) {
            let id = t.nodes.len() as u32;
            t.nodes.push(BNode {
                keys: chunk.to_vec(),
                kids: Vec::new(),
                addr: 0,
            });
            level.push(id);
            seps.push(chunk[0]);
        }
        t.height = 1;

        // Internal levels: group per_node+1 children per parent.
        while level.len() > 1 {
            let group = per_node + 1;
            let mut next_level = Vec::new();
            let mut next_seps = Vec::new();
            for (chunk, sep_chunk) in level.chunks(group).zip(seps.chunks(group)) {
                let id = t.nodes.len() as u32;
                t.nodes.push(BNode {
                    // Separators: first key of each child except the first.
                    keys: sep_chunk[1..].to_vec(),
                    kids: chunk.to_vec(),
                    addr: 0,
                });
                next_level.push(id);
                next_seps.push(sep_chunk[0]);
            }
            level = next_level;
            seps = next_seps;
            t.height += 1;
        }
        t.root = level[0];
        t.layout_bfs();
        t
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Tree height in levels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Maximum keys a node can hold at this node size.
    pub fn max_keys(&self) -> usize {
        self.max_keys
    }

    /// Bytes of node storage.
    pub fn data_bytes(&self) -> u64 {
        self.nodes.len() as u64 * self.node_bytes
    }

    fn bfs_order(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.nodes.len());
        let mut q = std::collections::VecDeque::from([self.root]);
        while let Some(n) = q.pop_front() {
            out.push(n);
            q.extend(self.nodes[n as usize].kids.iter().copied());
        }
        out
    }

    /// Default layout: nodes contiguous in level (BFS) order.
    pub fn layout_bfs(&mut self) {
        let mut vspace = VirtualSpace::new(8192);
        let base = vspace.alloc_bytes(self.data_bytes());
        for (i, id) in self.bfs_order().into_iter().enumerate() {
            self.nodes[id as usize].addr = base + i as u64 * self.node_bytes;
        }
    }

    /// Colors the tree: the top levels (up to the hot region's capacity)
    /// go to the reserved hot portion of the cache, the rest to the cold
    /// portion — "an in-core B-tree, also colored to reduce cache
    /// conflicts" (Section 4.2).
    pub fn color(&mut self, vspace: &mut VirtualSpace, machine: &MachineConfig, hot_fraction: f64) {
        let mut cs = ColoredSpace::new(
            vspace,
            machine.l2,
            machine.page_bytes,
            hot_fraction,
            self.data_bytes(),
        );
        let hot_budget = (cs.hot_capacity() / self.node_bytes) as usize;
        for (i, id) in self.bfs_order().into_iter().enumerate() {
            self.nodes[id as usize].addr = if i < hot_budget {
                cs.alloc_hot(self.node_bytes)
            } else {
                cs.alloc_cold(self.node_bytes)
            };
        }
    }

    /// Searches for `key`, narrating one block-sized load plus in-node
    /// binary-search work per level.
    pub fn search<S: EventSink>(&self, key: u64, sink: &mut S) -> bool {
        let mut cur = self.root;
        loop {
            let node = &self.nodes[cur as usize];
            sink.load(node.addr, self.node_bytes as u32);
            // In-node binary search: ~log2(keys) compares and branches.
            let cmps = (node.keys.len().max(2) as f64).log2().ceil() as u32;
            sink.inst(2 * cmps);
            sink.branch(cmps);
            if node.kids.is_empty() {
                return node.keys.binary_search(&key).is_ok();
            }
            let idx = node.keys.partition_point(|&k| k <= key);
            cur = node.kids[idx];
        }
    }

    /// All keys in order (for correctness tests).
    pub fn keys_in_order(&self) -> Vec<u64> {
        fn walk(t: &BTree, n: u32, out: &mut Vec<u64>) {
            let node = &t.nodes[n as usize];
            if node.kids.is_empty() {
                out.extend(&node.keys);
            } else {
                for &k in &node.kids {
                    walk(t, k, out);
                }
            }
        }
        let mut out = Vec::new();
        walk(self, self.root, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_sim::event::{NullSink, TraceBuffer};

    fn keys(n: u64) -> Vec<u64> {
        (0..n).map(|i| 2 * i).collect()
    }

    #[test]
    fn node_capacity_for_64_byte_block() {
        // 4 keys * 8 + 5 kids * 4 + 4 = 56 <= 64.
        assert_eq!(BTree::max_keys_for(64), 4);
        assert_eq!(BTree::max_keys_for(128), 10);
    }

    #[test]
    fn bulk_load_preserves_keys() {
        let ks = keys(10_000);
        let t = BTree::build_from_sorted(&ks, 64, 0.7);
        assert_eq!(t.keys_in_order(), ks);
    }

    #[test]
    fn search_correctness() {
        let ks = keys(5000);
        let t = BTree::build_from_sorted(&ks, 64, 0.7);
        for i in (0..5000).step_by(37) {
            assert!(t.search(2 * i, &mut NullSink));
            assert!(!t.search(2 * i + 1, &mut NullSink));
        }
    }

    #[test]
    fn height_is_logarithmic() {
        let t = BTree::build_from_sorted(&keys(1 << 20), 64, 0.7);
        // per_node = 3, branching 4: height ~ log4(2^20/3) + 1 ≈ 10.
        assert!(t.height() >= 9 && t.height() <= 12, "{}", t.height());
    }

    #[test]
    fn search_costs_one_load_per_level() {
        let t = BTree::build_from_sorted(&keys(1 << 16), 64, 0.7);
        let mut buf = TraceBuffer::new();
        t.search(12345, &mut buf);
        assert_eq!(buf.memory_refs(), t.height());
    }

    #[test]
    fn fuller_nodes_make_shorter_trees() {
        let ks = keys(1 << 16);
        let loose = BTree::build_from_sorted(&ks, 64, 0.5);
        let tight = BTree::build_from_sorted(&ks, 64, 1.0);
        assert!(tight.height() <= loose.height());
        assert!(tight.node_count() < loose.node_count());
    }

    #[test]
    fn coloring_assigns_unique_addresses() {
        let mut t = BTree::build_from_sorted(&keys(50_000), 64, 0.7);
        let mut vs = VirtualSpace::new(8192);
        t.color(&mut vs, &cc_sim::MachineConfig::ultrasparc_e5000(), 0.5);
        let mut addrs: Vec<u64> = t.nodes.iter().map(|n| n.addr).collect();
        addrs.sort_unstable();
        addrs.dedup();
        assert_eq!(addrs.len(), t.node_count());
        // Still correct.
        assert!(t.search(2 * 31337, &mut NullSink));
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn unsorted_keys_rejected() {
        BTree::build_from_sorted(&[3, 1, 2], 64, 0.7);
    }
}
