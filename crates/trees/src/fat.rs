//! A *fat-node* binary search tree for the field-layout experiments
//! (the paper's Section 4.2 tree, grown the way production structures
//! grow: a handful of traversal-hot bytes buried in a cache block of
//! cold payload).
//!
//! Unlike [`crate::bst::Bst`], whose 20-byte node is already dense,
//! [`FatBst`] models a 64-byte struct in which only `key`, `left`, and
//! `right` are touched by a search — the shape where the paper's
//! structure-splitting pays. Its traversals emit **one load per field
//! actually read**, not one load per node, so a [`FieldLayout`] from
//! `cc-core` (hot/cold split, reorder, SoA) changes exactly the
//! addresses those loads touch and the simulator measures the layout's
//! true effect, field by field.

use crate::NIL;
use cc_core::field_layout::{FieldDef, FieldLayout, FieldSchema, HotSpec};
use cc_core::Topology;
use cc_heap::VirtualSpace;
use cc_sim::event::EventSink;

/// Declaration-order byte layout of one fat node (the AoS baseline):
/// `key` at 0, 16 bytes of metadata, the child links, then payload out
/// to a full 64-byte block.
const FAT_FIELDS: [(&str, u64, u64); 5] = [
    ("key", 8, 8),
    ("meta", 16, 8),
    ("left", 4, 4),
    ("right", 4, 4),
    ("payload", 32, 8),
];

/// Bytes per fat node in the declaration-order AoS baseline.
pub const FAT_NODE_BYTES: u64 = 64;

/// The schema of one fat node, as the field transforms consume it.
pub fn fat_schema() -> FieldSchema {
    FieldSchema::new(
        "FatNode",
        FAT_FIELDS
            .iter()
            .map(|&(name, size, align)| FieldDef::new(name, size, align))
            .collect(),
    )
}

/// The traversal-derived hot spec for [`fat_schema`]: searches read
/// `key` every visit and one of the links; `meta`/`payload` are cold.
pub fn fat_hot_spec() -> HotSpec {
    HotSpec::from_weights([
        ("key".to_string(), 1.0),
        ("left".to_string(), 0.5),
        ("right".to_string(), 0.5),
    ])
}

/// Arena node: the semantic fields plus the simulated address of each
/// field the traversals read.
#[derive(Clone, Copy, Debug)]
struct FatNode {
    key: u64,
    left: u32,
    right: u32,
    /// Simulated addresses of `key`, `left`, `right` under the current
    /// layout (in that order).
    addr: [u64; 3],
}

/// A balanced fat-node BST whose per-field addresses come from either
/// the declaration-order AoS baseline or a [`FieldLayout`] transform.
///
/// # Example
///
/// ```
/// use cc_trees::fat::FatBst;
/// use cc_sim::event::NullSink;
///
/// let t = FatBst::build_complete(1023);
/// assert!(t.search(500, &mut NullSink));
/// assert!(!t.search(5001, &mut NullSink));
/// ```
#[derive(Clone, Debug)]
pub struct FatBst {
    nodes: Vec<FatNode>,
    root: u32,
}

impl FatBst {
    /// Builds a balanced tree over keys `0, 2, 4, …, 2(n-1)` in the
    /// declaration-order AoS layout.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn build_complete(n: u64) -> Self {
        assert!(n > 0, "tree must be nonempty");
        let mut t = FatBst {
            nodes: Vec::with_capacity(n as usize),
            root: NIL,
        };
        t.root = t.build_range(0, n);
        t.layout_aos();
        t
    }

    fn build_range(&mut self, lo: u64, hi: u64) -> u32 {
        if lo >= hi {
            return NIL;
        }
        let mid = lo + (hi - lo) / 2;
        let id = self.nodes.len() as u32;
        self.nodes.push(FatNode {
            key: 2 * mid,
            left: NIL,
            right: NIL,
            addr: [0; 3],
        });
        let left = self.build_range(lo, mid);
        let right = self.build_range(mid + 1, hi);
        let node = &mut self.nodes[id as usize];
        node.left = left;
        node.right = right;
        id
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree is empty (never true after `build_complete`).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Lays nodes out in allocation order at [`FAT_NODE_BYTES`] pitch
    /// with declaration-order field offsets — the untransformed
    /// array-of-structs baseline every transform is measured against.
    /// Returns the byte extent `(base, end)` of the pool.
    pub fn layout_aos(&mut self) -> (u64, u64) {
        let mut vspace = VirtualSpace::new(8192);
        let base = vspace.alloc_bytes(self.nodes.len() as u64 * FAT_NODE_BYTES);
        self.layout_aos_at(base);
        (base, base + self.nodes.len() as u64 * FAT_NODE_BYTES)
    }

    fn layout_aos_at(&mut self, base: u64) {
        // Declaration-order offsets of key/left/right within the 64-byte
        // record: key at 0; meta pushes the links to 24 and 28.
        for (i, node) in self.nodes.iter_mut().enumerate() {
            let rec = base + i as u64 * FAT_NODE_BYTES;
            node.addr = [rec, rec + 24, rec + 28];
        }
    }

    /// Points every traversal-read field at the addresses `layout`
    /// assigned — the application step of a `cc-core` field transform.
    ///
    /// # Panics
    ///
    /// Panics if the layout lacks any of `key`/`left`/`right`, or laid
    /// out fewer nodes than the tree has (transforms run on this tree's
    /// topology never do).
    pub fn apply(&mut self, layout: &FieldLayout) {
        let fields = ["key", "left", "right"].map(|name| {
            layout
                .field_index(name)
                .unwrap_or_else(|| panic!("layout lacks field {name:?}"))
        });
        for (i, node) in self.nodes.iter_mut().enumerate() {
            node.addr = fields.map(|f| layout.field_addr(i, f));
        }
    }

    /// Searches for `key`, narrating one load per field read: the
    /// node's `key` (8 bytes, dependent), then the taken child link
    /// (4 bytes) — never the cold fields. Compares and branches mirror
    /// [`crate::bst::Bst::search`].
    pub fn search<S: EventSink>(&self, key: u64, sink: &mut S) -> bool {
        let mut cur = self.root;
        while cur != NIL {
            let node = &self.nodes[cur as usize];
            sink.load(node.addr[0], 8);
            sink.inst(2);
            sink.branch(1);
            cur = match key.cmp(&node.key) {
                std::cmp::Ordering::Equal => return true,
                std::cmp::Ordering::Less => {
                    sink.load(node.addr[1], 4);
                    sink.inst(1);
                    node.left
                }
                std::cmp::Ordering::Greater => {
                    sink.load(node.addr[2], 4);
                    sink.inst(1);
                    node.right
                }
            };
        }
        false
    }

    /// Scans every node's `key` in arena order — the array-ish workload
    /// where structure-of-arrays pays: under AoS each 8-byte key sits in
    /// its own 64-byte record; under SoA the keys pack densely.
    /// Loads are independent (no pointer chase between iterations).
    /// Returns the number of keys at or above `threshold`, so the scan
    /// has a checkable result.
    pub fn scan_keys<S: EventSink>(&self, threshold: u64, sink: &mut S) -> u64 {
        let mut hits = 0;
        for node in &self.nodes {
            sink.load_indep(node.addr[0], 8);
            sink.inst(1);
            sink.branch(1);
            hits += u64::from(node.key >= threshold);
        }
        hits
    }

    /// In-order key iteration (for correctness tests).
    pub fn keys_in_order(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.nodes.len());
        let mut stack = Vec::new();
        let mut cur = self.root;
        while cur != NIL || !stack.is_empty() {
            while cur != NIL {
                stack.push(cur);
                cur = self.nodes[cur as usize].left;
            }
            let n = stack.pop().expect("stack nonempty");
            out.push(self.nodes[n as usize].key);
            cur = self.nodes[n as usize].right;
        }
        out
    }
}

impl Topology for FatBst {
    fn node_count(&self) -> usize {
        self.nodes.len()
    }

    fn root(&self) -> Option<usize> {
        (self.root != NIL).then_some(self.root as usize)
    }

    fn max_kids(&self) -> usize {
        2
    }

    fn child(&self, node: usize, i: usize) -> Option<usize> {
        let c = match i {
            0 => self.nodes[node].left,
            1 => self.nodes[node].right,
            _ => NIL,
        };
        (c != NIL).then_some(c as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_core::field_layout::{FieldLayoutParams, FieldTransform};
    use cc_core::{try_reorder_fields, try_soa_convert, try_split_hot_cold};
    use cc_sim::event::{NullSink, TraceBuffer};
    use cc_sim::MachineConfig;

    fn transformed(t: &FatBst, which: FieldTransform) -> FieldLayout {
        let machine = MachineConfig::ultrasparc_e5000();
        let params = FieldLayoutParams::new(&machine);
        let mut vs = VirtualSpace::new(machine.page_bytes);
        let schema = fat_schema();
        let hot = fat_hot_spec();
        match which {
            FieldTransform::HotCold => try_split_hot_cold(t, &mut vs, &params, &schema, &hot),
            FieldTransform::Reorder => try_reorder_fields(t, &mut vs, &params, &schema, &hot),
            FieldTransform::Soa => try_soa_convert(&mut vs, &params, &schema, &hot, t.len()),
        }
        .expect("transform succeeds on a well-formed tree")
    }

    #[test]
    fn aos_offsets_follow_declaration_order() {
        let t = FatBst::build_complete(8);
        let base = t.nodes[0].addr[0];
        assert_eq!(t.nodes[0].addr, [base, base + 24, base + 28]);
        assert_eq!(t.nodes[1].addr[0], base + FAT_NODE_BYTES);
    }

    #[test]
    fn search_agrees_across_every_layout() {
        let mut t = FatBst::build_complete(500);
        let baseline: Vec<bool> = (0..1000).map(|k| t.search(k, &mut NullSink)).collect();
        for which in [
            FieldTransform::HotCold,
            FieldTransform::Reorder,
            FieldTransform::Soa,
        ] {
            let layout = transformed(&t, which);
            t.apply(&layout);
            let now: Vec<bool> = (0..1000).map(|k| t.search(k, &mut NullSink)).collect();
            assert_eq!(now, baseline, "{} changed search results", which.name());
        }
    }

    #[test]
    fn search_loads_only_hot_bytes() {
        let t = FatBst::build_complete((1 << 10) - 1);
        let mut buf = TraceBuffer::new();
        assert!(t.search(2 * 37, &mut buf));
        let loads: Vec<_> = buf
            .events()
            .iter()
            .filter_map(|e| match e {
                cc_sim::Event::Load { addr, size, .. } => Some((*addr, *size)),
                _ => None,
            })
            .collect();
        // Alternating key (8 B) and link (4 B) loads; 12 hot bytes per
        // visited node, out of the 64 the record occupies.
        assert!(loads.len() >= 2);
        assert!(loads.iter().all(|&(_, s)| s == 8 || s == 4));
    }

    #[test]
    fn split_tree_search_touches_only_hot_halves() {
        let mut t = FatBst::build_complete(255);
        let layout = transformed(&t, FieldTransform::HotCold);
        t.apply(&layout);
        assert_eq!(layout.hot_stride(), 16, "key + both links pack to 16 B");
        let spans = layout.hot_spans();
        let hot_ok = |addr: u64| {
            (0..t.len()).any(|n| {
                let base = layout.node_addr(n);
                spans
                    .iter()
                    .any(|&(_, off, size)| base + off <= addr && addr < base + off + size)
            })
        };
        let mut buf = TraceBuffer::new();
        t.search(2 * 101, &mut buf);
        for e in buf.events() {
            if let cc_sim::Event::Load { addr, .. } = e {
                assert!(hot_ok(*addr), "search read a cold byte at {addr:#x}");
            }
        }
    }

    #[test]
    fn scan_counts_match_across_layouts() {
        let mut t = FatBst::build_complete(333);
        let expect = t.scan_keys(300, &mut NullSink);
        assert_eq!(expect, 333 - 150);
        let layout = transformed(&t, FieldTransform::Soa);
        t.apply(&layout);
        assert_eq!(t.scan_keys(300, &mut NullSink), expect);
    }

    #[test]
    fn soa_scan_is_denser_than_aos() {
        let mut t = FatBst::build_complete(256);
        let mut aos = TraceBuffer::new();
        t.scan_keys(0, &mut aos);
        let layout = transformed(&t, FieldTransform::Soa);
        t.apply(&layout);
        let mut soa = TraceBuffer::new();
        t.scan_keys(0, &mut soa);
        let blocks = |buf: &TraceBuffer| {
            let mut b: Vec<u64> = buf
                .events()
                .iter()
                .filter_map(|e| match e {
                    cc_sim::Event::Load { addr, .. } => Some(addr / 64),
                    _ => None,
                })
                .collect();
            b.sort_unstable();
            b.dedup();
            b.len()
        };
        // 256 keys: one 64-byte block each under AoS, 8 per block under SoA.
        assert_eq!(blocks(&aos), 256);
        assert_eq!(blocks(&soa), 32);
    }
}

// Property tests for the field transforms' structural guarantees
// (satellite of the field-layout PR): layouts never alias two fields,
// and applying any transform preserves the tree's observable behaviour.
#[cfg(test)]
mod prop_tests {
    use super::*;
    use cc_core::field_layout::{FieldLayoutParams, FieldTransform};
    use cc_core::{try_reorder_fields, try_soa_convert, try_split_hot_cold};
    use cc_sim::event::NullSink;
    use cc_sim::MachineConfig;
    use proptest::prelude::*;

    fn layout_for(t: &FatBst, which: FieldTransform) -> FieldLayout {
        let machine = MachineConfig::ultrasparc_e5000();
        let params = FieldLayoutParams::new(&machine);
        let mut vs = VirtualSpace::new(machine.page_bytes);
        let (schema, hot) = (fat_schema(), fat_hot_spec());
        match which {
            FieldTransform::HotCold => try_split_hot_cold(t, &mut vs, &params, &schema, &hot),
            FieldTransform::Reorder => try_reorder_fields(t, &mut vs, &params, &schema, &hot),
            FieldTransform::Soa => try_soa_convert(&mut vs, &params, &schema, &hot, t.len()),
        }
        .expect("transform succeeds")
    }

    proptest! {
        #[test]
        fn transforms_preserve_search_and_never_alias(
            n in 1u64..400,
            probes in proptest::collection::vec(0u64..1000, 16..17),
            which in proptest::sample::select(vec![
                FieldTransform::HotCold,
                FieldTransform::Reorder,
                FieldTransform::Soa,
            ]),
        ) {
            let mut t = FatBst::build_complete(n);
            let before: Vec<bool> =
                probes.iter().map(|&k| t.search(k, &mut NullSink)).collect();
            let layout = layout_for(&t, which);
            t.apply(&layout);
            let after: Vec<bool> =
                probes.iter().map(|&k| t.search(k, &mut NullSink)).collect();
            prop_assert_eq!(before, after);

            // Reachability: every node of this (fully reachable) tree
            // got an address for every field, and no two field spans
            // alias.
            let mut spans: Vec<(u64, u64)> = Vec::new();
            for node in 0..t.len() {
                for field in 0..layout.field_count() {
                    let addr = layout.try_field_addr(node, field);
                    prop_assert!(addr.is_some(), "node {node} field {field} unplaced");
                    let a = addr.unwrap();
                    spans.push((a, a + layout.field_size(field)));
                }
            }
            spans.sort_unstable();
            for w in spans.windows(2) {
                prop_assert!(w[0].1 <= w[1].0, "field spans {w:?} alias");
            }
        }
    }
}
