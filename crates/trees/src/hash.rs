//! A chained hash table on the simulated heap — the primary structure of
//! Olden `mst` ("a hash table that uses chaining for collisions",
//! Section 4.4).

use crate::NIL;
use cc_heap::{Allocator, VirtualSpace};
use cc_sim::event::EventSink;

/// Bytes per chain cell: key, value, next pointer (32-bit layout).
pub const HASH_CELL_BYTES: u64 = 16;
/// Bytes per bucket-array slot (one 32-bit pointer).
pub const BUCKET_SLOT_BYTES: u64 = 4;

#[derive(Clone, Copy, Debug)]
struct HCell {
    key: u64,
    val: u64,
    next: u32,
    addr: u64,
}

/// Chained hash table whose bucket array and cells live at simulated
/// addresses.
///
/// Insertions can pass a `ccmalloc`-style hint: the predecessor cell in
/// the chain (or, for the first cell of a bucket, a recently used cell),
/// so chain neighbours share cache blocks.
///
/// # Example
///
/// ```
/// use cc_trees::hash::ChainedHash;
/// use cc_heap::Malloc;
/// use cc_sim::event::NullSink;
///
/// let mut heap = Malloc::new(8192);
/// let mut h = ChainedHash::new(64, &mut heap);
/// h.insert(10, 100, &mut heap, &mut NullSink, false);
/// h.insert(74, 740, &mut heap, &mut NullSink, false); // same bucket as 10
/// assert_eq!(h.lookup(74, &mut NullSink), Some(740));
/// assert_eq!(h.lookup(11, &mut NullSink), None);
/// ```
#[derive(Clone, Debug)]
pub struct ChainedHash {
    buckets: Vec<u32>,
    cells: Vec<HCell>,
    array_addr: u64,
    len: usize,
}

impl ChainedHash {
    /// Creates a table with `n_buckets` chains; the bucket array itself
    /// is allocated from `alloc`.
    ///
    /// # Panics
    ///
    /// Panics if `n_buckets` is zero.
    pub fn new<A: Allocator>(n_buckets: usize, alloc: &mut A) -> Self {
        assert!(n_buckets > 0, "need at least one bucket");
        let array_addr = alloc.alloc(n_buckets as u64 * BUCKET_SLOT_BYTES);
        ChainedHash {
            buckets: vec![NIL; n_buckets],
            cells: Vec::new(),
            array_addr,
            len: 0,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of buckets.
    pub fn n_buckets(&self) -> usize {
        self.buckets.len()
    }

    fn bucket_of(&self, key: u64) -> usize {
        // Multiplicative hashing (Knuth), like Olden's `mst`.
        (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % self.buckets.len()
    }

    fn slot_addr(&self, bucket: usize) -> u64 {
        self.array_addr + bucket as u64 * BUCKET_SLOT_BYTES
    }

    /// Inserts `key → val` (no duplicate check: `mst` inserts distinct
    /// keys). With `use_hint`, the heap is hinted with the chain's current
    /// head — the predecessor the new cell will point at.
    ///
    /// Emits the bucket-array load, the allocation cost, and the
    /// head-insertion stores.
    pub fn insert<A: Allocator, S: EventSink>(
        &mut self,
        key: u64,
        val: u64,
        alloc: &mut A,
        sink: &mut S,
        use_hint: bool,
    ) {
        let b = self.bucket_of(key);
        sink.inst(4);
        sink.load_indep(self.slot_addr(b), BUCKET_SLOT_BYTES as u32);
        let head = self.buckets[b];
        let hint = if use_hint && head != NIL {
            Some(self.cells[head as usize].addr)
        } else {
            None
        };
        sink.inst(alloc.cost_insts());
        let addr = alloc.alloc_hint(HASH_CELL_BYTES, hint);
        let id = self.cells.len() as u32;
        self.cells.push(HCell {
            key,
            val,
            next: head,
            addr,
        });
        sink.store(addr, HASH_CELL_BYTES as u32);
        sink.store(self.slot_addr(b), BUCKET_SLOT_BYTES as u32);
        self.buckets[b] = id;
        self.len += 1;
    }

    /// Looks up `key`: one independent load of the bucket slot, then a
    /// dependent chain walk.
    pub fn lookup<S: EventSink>(&self, key: u64, sink: &mut S) -> Option<u64> {
        let b = self.bucket_of(key);
        sink.inst(4);
        sink.load_indep(self.slot_addr(b), BUCKET_SLOT_BYTES as u32);
        let mut cur = self.buckets[b];
        while cur != NIL {
            let c = &self.cells[cur as usize];
            sink.load(c.addr, HASH_CELL_BYTES as u32);
            sink.inst(2);
            sink.branch(1);
            if c.key == key {
                return Some(c.val);
            }
            cur = c.next;
        }
        None
    }

    /// Updates the value for `key`, emitting the lookup walk plus one
    /// store. Returns false if absent.
    pub fn update<S: EventSink>(&mut self, key: u64, val: u64, sink: &mut S) -> bool {
        let b = self.bucket_of(key);
        sink.inst(4);
        sink.load_indep(self.slot_addr(b), BUCKET_SLOT_BYTES as u32);
        let mut cur = self.buckets[b];
        while cur != NIL {
            let c = self.cells[cur as usize];
            sink.load(c.addr, HASH_CELL_BYTES as u32);
            sink.inst(2);
            sink.branch(1);
            if c.key == key {
                self.cells[cur as usize].val = val;
                sink.store(c.addr + 8, 8);
                return true;
            }
            cur = c.next;
        }
        false
    }

    /// Longest chain length (for workload characterization).
    pub fn max_chain(&self) -> usize {
        (0..self.buckets.len())
            .map(|b| {
                let mut n = 0;
                let mut cur = self.buckets[b];
                while cur != NIL {
                    n += 1;
                    cur = self.cells[cur as usize].next;
                }
                n
            })
            .max()
            .unwrap_or(0)
    }

    /// Reorganizes every chain so its cells are consecutive — `ccmorph`
    /// applied per component, as the paper allows for "any data structure
    /// that can be decomposed into components" (Section 3.1.1). Chains
    /// are packed densely, but a chain short enough to fit in one cache
    /// block never straddles a block boundary (starting a fresh block
    /// instead), so one fetch brings the whole chain.
    pub fn morph_chains(&mut self, vspace: &mut VirtualSpace, block_bytes: u64) {
        let total = self.cells.len() as u64 * HASH_CELL_BYTES;
        let base = vspace.align_to(block_bytes.max(vspace.page_bytes()));
        if total > 0 {
            vspace.alloc_bytes(total + block_bytes * self.buckets.len() as u64);
        }
        let mut next = base;
        self.pack_chains(&mut next, block_bytes);
    }

    /// Packs this table's chains starting at `*cursor`, advancing it.
    /// Callers reorganizing *many* tables (Olden `mst` has one per graph
    /// vertex) must share one cursor over a single region: giving every
    /// small table its own page would blow the TLB reach and alias all
    /// tables onto the same cache sets.
    pub fn pack_chains(&mut self, cursor: &mut u64, block_bytes: u64) {
        let next = cursor;
        for b in 0..self.buckets.len() {
            // Measure the chain.
            let mut len = 0u64;
            let mut cur = self.buckets[b];
            while cur != NIL {
                len += 1;
                cur = self.cells[cur as usize].next;
            }
            let bytes = len * HASH_CELL_BYTES;
            let offset = *next % block_bytes;
            if bytes <= block_bytes && offset + bytes > block_bytes {
                *next = next.next_multiple_of(block_bytes);
            }
            let mut cur = self.buckets[b];
            while cur != NIL {
                self.cells[cur as usize].addr = *next;
                *next += HASH_CELL_BYTES;
                cur = self.cells[cur as usize].next;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_heap::{CcMalloc, Malloc, Strategy};
    use cc_sim::event::{NullSink, TraceBuffer};
    use cc_sim::MachineConfig;

    fn filled(n: u64) -> (Malloc, ChainedHash) {
        let mut heap = Malloc::new(8192);
        let mut h = ChainedHash::new(64, &mut heap);
        for i in 0..n {
            h.insert(i, i * 10, &mut heap, &mut NullSink, false);
        }
        (heap, h)
    }

    #[test]
    fn insert_lookup_roundtrip() {
        let (_, h) = filled(500);
        for i in 0..500 {
            assert_eq!(h.lookup(i, &mut NullSink), Some(i * 10));
        }
        assert_eq!(h.lookup(500, &mut NullSink), None);
        assert_eq!(h.len(), 500);
    }

    #[test]
    fn update_changes_value() {
        let (_, mut h) = filled(100);
        assert!(h.update(42, 999, &mut NullSink));
        assert_eq!(h.lookup(42, &mut NullSink), Some(999));
        assert!(!h.update(1000, 1, &mut NullSink));
    }

    #[test]
    fn lookup_emits_array_plus_chain_loads() {
        let (_, h) = filled(128);
        let mut buf = TraceBuffer::new();
        h.lookup(5, &mut buf);
        // 1 bucket slot + at least 1 chain cell.
        assert!(buf.memory_refs() >= 2);
    }

    #[test]
    fn hinted_chains_share_blocks() {
        let machine = MachineConfig::ultrasparc_e5000();
        let mut heap = CcMalloc::new(&machine, Strategy::NewBlock);
        let mut h = ChainedHash::new(4, &mut heap);
        // Force several keys into few buckets.
        for i in 0..32 {
            h.insert(i, i, &mut heap, &mut NullSink, true);
        }
        // Count blocks per chain: hinted co-location should put multiple
        // chain neighbours in one block at least somewhere.
        let mut shared = 0;
        for b in 0..4 {
            let mut cur = h.buckets[b];
            while cur != NIL {
                let c = &h.cells[cur as usize];
                if c.next != NIL && c.addr / 64 == h.cells[c.next as usize].addr / 64 {
                    shared += 1;
                }
                cur = c.next;
            }
        }
        assert!(shared > 0);
    }

    #[test]
    fn morph_packs_chains_consecutively() {
        let (_, mut h) = filled(256);
        let mut vs = VirtualSpace::new(8192);
        h.morph_chains(&mut vs, 64);
        // Still correct.
        for i in 0..256 {
            assert_eq!(h.lookup(i, &mut NullSink), Some(i * 10));
        }
        // Chain neighbours are exactly adjacent.
        for b in 0..h.n_buckets() {
            let mut cur = h.buckets[b];
            while cur != NIL {
                let c = &h.cells[cur as usize];
                if c.next != NIL {
                    let n = &h.cells[c.next as usize];
                    assert_eq!(n.addr, c.addr + HASH_CELL_BYTES);
                }
                cur = c.next;
            }
        }
        // Short chains never straddle a block.
        for b in 0..h.n_buckets() {
            let mut cells_in_chain = Vec::new();
            let mut cur = h.buckets[b];
            while cur != NIL {
                cells_in_chain.push(h.cells[cur as usize].addr);
                cur = h.cells[cur as usize].next;
            }
            if cells_in_chain.len() as u64 * HASH_CELL_BYTES <= 64 && !cells_in_chain.is_empty() {
                let first = cells_in_chain[0] / 64;
                let last = (cells_in_chain[cells_in_chain.len() - 1] + HASH_CELL_BYTES - 1) / 64;
                assert_eq!(first, last, "short chain straddles a block");
            }
        }
    }

    #[test]
    fn max_chain_sane() {
        let (_, h) = filled(640);
        assert!(h.max_chain() >= 640 / 64);
        assert!(h.max_chain() <= 64);
    }

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn zero_buckets_rejected() {
        let mut heap = Malloc::new(8192);
        let _ = ChainedHash::new(0, &mut heap);
    }
}
