//! Pointer-based data structures on the simulated heap, with
//! trace-emitting traversals.
//!
//! Every structure here follows the same pattern, which is the key
//! modelling decision of this reproduction (see DESIGN.md): node payloads
//! live in Rust arenas, each node carries a *simulated address* assigned by
//! an allocator or layout under test, and traversals narrate their memory
//! behaviour into a [`cc_sim::event::EventSink`]. Swapping the layout
//! (allocation-order vs. random vs. `ccmorph`ed) changes only the
//! addresses — the paper's locational transparency — and therefore only
//! the cache behaviour.
//!
//! Structures:
//!
//! * [`bst`] — the binary search tree of the paper's microbenchmark
//!   (Section 4.2), with random / depth-first / subtree-clustered /
//!   colored layouts;
//! * [`fat`] — the same tree with a production-shaped 64-byte node
//!   (12 traversal-hot bytes in a block of cold payload), traversed
//!   with one load per *field* so `cc-core`'s field transforms
//!   (hot/cold split, reorder, SoA) are measurable;
//! * [`btree`] — the in-core B-tree baseline the C-tree is compared with;
//! * [`list`] — doubly linked lists (Olden `health`);
//! * [`hash`] — an array of chained buckets (Olden `mst`);
//! * [`quadtree`] — the quadtree of Olden `perimeter`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bst;
pub mod btree;
pub mod fat;
pub mod hash;
pub mod list;
pub mod quadtree;

/// Node size used for binary-tree nodes, matching the paper's
/// microbenchmark: 2,097,151 keys consuming 40 MB is ~20 bytes per node
/// (key + two 32-bit child pointers + balance metadata on the 32-bit
/// SPARC). With 64-byte L2 blocks this gives the paper's clustering
/// factor k = 3.
pub const BST_NODE_BYTES: u64 = 20;

/// Sentinel for "no node" in arena indices.
pub(crate) const NIL: u32 = u32::MAX;
