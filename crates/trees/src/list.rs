//! Doubly linked lists on the simulated heap — the primary structure of
//! Olden `health` (paper Figure 4 shows `ccmalloc` applied to exactly
//! this `addList` routine).

use crate::NIL;
use cc_core::ccmorph::{ccmorph, CcMorphParams, Layout};
use cc_core::Topology;
use cc_heap::{Allocator, VirtualSpace};
use cc_sim::event::EventSink;

/// Bytes per list cell: value + forward + back pointers + payload pointer
/// on the paper's 32-bit SPARC.
pub const LIST_CELL_BYTES: u64 = 16;

#[derive(Clone, Copy, Debug)]
struct Cell {
    val: u64,
    prev: u32,
    next: u32,
    addr: u64,
    live: bool,
    /// Whether `addr` was issued by the allocator (and must be freed
    /// through it) or assigned by a `ccmorph` layout (whose region is
    /// reclaimed wholesale, not cell by cell).
    heap_owned: bool,
}

/// An arena-backed doubly linked list whose cells live at simulated
/// addresses assigned by an [`Allocator`].
///
/// # Example
///
/// ```
/// use cc_trees::list::DList;
/// use cc_heap::{Allocator, Malloc};
/// use cc_sim::event::NullSink;
///
/// let mut heap = Malloc::new(8192);
/// let mut l = DList::new();
/// for i in 0..10 {
///     l.push_back(i, &mut heap, &mut NullSink, false);
/// }
/// assert_eq!(l.len(), 10);
/// assert_eq!(l.values(), (0..10).collect::<Vec<_>>());
/// ```
#[derive(Clone, Debug, Default)]
pub struct DList {
    cells: Vec<Cell>,
    head: u32,
    tail: u32,
    len: usize,
    free_slots: Vec<u32>,
}

impl DList {
    /// Creates an empty list.
    pub fn new() -> Self {
        DList {
            cells: Vec::new(),
            head: NIL,
            tail: NIL,
            len: 0,
            free_slots: Vec::new(),
        }
    }

    /// Number of live cells.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends `val`, allocating the cell from `alloc`. With `use_hint`
    /// the allocation passes the tail cell as the `ccmalloc` hint (the
    /// paper's Figure 4 pattern); without it, a plain `malloc`.
    ///
    /// Emits the allocation's instruction cost and the pointer-fixup
    /// stores, but no list walk — `health`'s `addList` walk is emitted by
    /// the benchmark itself via [`Self::walk`].
    pub fn push_back<A: Allocator, S: EventSink>(
        &mut self,
        val: u64,
        alloc: &mut A,
        sink: &mut S,
        use_hint: bool,
    ) -> u32 {
        let hint = if use_hint && self.tail != NIL {
            Some(self.cells[self.tail as usize].addr)
        } else {
            None
        };
        sink.inst(alloc.cost_insts());
        let addr = alloc.alloc_hint(LIST_CELL_BYTES, hint);
        let id = match self.free_slots.pop() {
            Some(slot) => {
                self.cells[slot as usize] = Cell {
                    val,
                    prev: self.tail,
                    next: NIL,
                    addr,
                    live: true,
                    heap_owned: true,
                };
                slot
            }
            None => {
                self.cells.push(Cell {
                    val,
                    prev: self.tail,
                    next: NIL,
                    addr,
                    live: true,
                    heap_owned: true,
                });
                (self.cells.len() - 1) as u32
            }
        };
        // Initialize the new cell and patch the old tail's forward pointer.
        sink.store(addr, LIST_CELL_BYTES as u32);
        if self.tail != NIL {
            sink.store(self.cells[self.tail as usize].addr, 4);
            self.cells[self.tail as usize].next = id;
        } else {
            self.head = id;
        }
        self.tail = id;
        self.len += 1;
        id
    }

    /// Walks the whole list front to back, emitting one dependent load
    /// per cell (the `while (list != NULL)` loop of `addList`), and
    /// returns the number of cells visited. With `sw_prefetch`, each
    /// visit issues a greedy prefetch of the next cell.
    pub fn walk<S: EventSink>(&self, sink: &mut S, sw_prefetch: bool) -> usize {
        let mut cur = self.head;
        let mut n = 0;
        while cur != NIL {
            let c = &self.cells[cur as usize];
            sink.load(c.addr, LIST_CELL_BYTES as u32);
            sink.inst(2);
            sink.branch(1);
            if sw_prefetch && c.next != NIL {
                sink.prefetch(self.cells[c.next as usize].addr);
            }
            cur = c.next;
            n += 1;
        }
        n
    }

    /// Walks the list applying `f` to every value in place, emitting one
    /// dependent load and one store per cell (`health`'s per-timestep
    /// treatment update). Returns the number of cells visited.
    pub fn map_values<S: EventSink, F: FnMut(u64) -> u64>(
        &mut self,
        sink: &mut S,
        sw_prefetch: bool,
        mut f: F,
    ) -> usize {
        let mut cur = self.head;
        let mut n = 0;
        while cur != NIL {
            let c = self.cells[cur as usize];
            sink.load(c.addr, LIST_CELL_BYTES as u32);
            sink.inst(3);
            sink.branch(1);
            if sw_prefetch && c.next != NIL {
                sink.prefetch(self.cells[c.next as usize].addr);
            }
            let new = f(c.val);
            if new != c.val {
                self.cells[cur as usize].val = new;
                sink.store(c.addr, 8);
            }
            cur = c.next;
            n += 1;
        }
        n
    }

    /// Cell ids front to back (structural; emits nothing).
    pub fn ids(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.len);
        let mut cur = self.head;
        while cur != NIL {
            out.push(cur);
            cur = self.cells[cur as usize].next;
        }
        out
    }

    /// Walks until `pred(value)` holds, emitting loads; returns the
    /// matching cell id, if any.
    pub fn find<S: EventSink, P: Fn(u64) -> bool>(&self, sink: &mut S, pred: P) -> Option<u32> {
        let mut cur = self.head;
        while cur != NIL {
            let c = &self.cells[cur as usize];
            sink.load(c.addr, LIST_CELL_BYTES as u32);
            sink.inst(2);
            sink.branch(1);
            if pred(c.val) {
                return Some(cur);
            }
            cur = c.next;
        }
        None
    }

    /// Unlinks cell `id`, emitting the pointer-fixup stores, freeing its
    /// heap cell, and returning its value.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a live cell.
    pub fn remove<A: Allocator, S: EventSink>(
        &mut self,
        id: u32,
        alloc: &mut A,
        sink: &mut S,
    ) -> u64 {
        let c = self.cells[id as usize];
        assert!(c.live, "cell {id} is not live");
        if c.prev != NIL {
            sink.store(self.cells[c.prev as usize].addr, 4);
            self.cells[c.prev as usize].next = c.next;
        } else {
            self.head = c.next;
        }
        if c.next != NIL {
            sink.store(self.cells[c.next as usize].addr, 4);
            self.cells[c.next as usize].prev = c.prev;
        } else {
            self.tail = c.prev;
        }
        if c.heap_owned {
            alloc.free(c.addr);
        }
        self.cells[id as usize].live = false;
        self.free_slots.push(id);
        self.len -= 1;
        c.val
    }

    /// Value stored in cell `id`.
    pub fn value(&self, id: u32) -> u64 {
        self.cells[id as usize].val
    }

    /// Overwrites the value of cell `id` (no events emitted; callers
    /// narrating a structure that keeps data out-of-line — like `health`'s
    /// patient records — emit their own loads and stores).
    pub fn set_value(&mut self, id: u32, val: u64) {
        self.cells[id as usize].val = val;
    }

    /// Head cell id, if any.
    pub fn head(&self) -> Option<u32> {
        (self.head != NIL).then_some(self.head)
    }

    /// Live values front to back.
    pub fn values(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.len);
        let mut cur = self.head;
        while cur != NIL {
            out.push(self.cells[cur as usize].val);
            cur = self.cells[cur as usize].next;
        }
        out
    }

    /// Simulated address of cell `id` (for tests).
    pub fn addr_of(&self, id: u32) -> u64 {
        self.cells[id as usize].addr
    }

    /// Packs the live cells at consecutive addresses from `*cursor` in
    /// list order (the unary-tree case of subtree clustering), advancing
    /// the cursor. Returns the `(old, new)` address pairs so the caller
    /// can charge the copy.
    ///
    /// Callers reorganizing many lists (`health` has one per village)
    /// must share one cursor over a single region — separate page-aligned
    /// regions per list would exceed the TLB's reach and alias all lists
    /// onto the same cache sets. Cells still owned by `alloc` are freed
    /// back to it (the reorganizer releases the structure's old memory).
    pub fn pack<A: Allocator>(
        &mut self,
        cursor: &mut u64,
        block_bytes: u64,
        alloc: &mut A,
    ) -> Vec<(u64, u64)> {
        let mut moves = Vec::with_capacity(self.len);
        // A list shorter than a block should not straddle one.
        let bytes = self.len as u64 * LIST_CELL_BYTES;
        if bytes <= block_bytes && *cursor % block_bytes + bytes > block_bytes {
            *cursor = cursor.next_multiple_of(block_bytes);
        }
        let mut cur = self.head;
        while cur != NIL {
            let c = &mut self.cells[cur as usize];
            moves.push((c.addr, *cursor));
            if c.heap_owned {
                alloc.free(c.addr);
            }
            c.addr = *cursor;
            c.heap_owned = false;
            *cursor += LIST_CELL_BYTES;
            cur = c.next;
        }
        moves
    }

    /// Reorganizes the list with `ccmorph` (clusters consecutive cells
    /// into cache blocks), updating every live cell's address. `health`'s
    /// cache-conscious variant calls this periodically.
    pub fn morph(&mut self, vspace: &mut VirtualSpace, params: &CcMorphParams) -> Layout {
        let layout = ccmorph(self, vspace, params);
        for (id, cell) in self.cells.iter_mut().enumerate() {
            if cell.live {
                if let Some(a) = layout.try_addr_of(id) {
                    cell.addr = a;
                    // The old cell is abandoned to the morph region's
                    // wholesale reclamation; it must not be freed through
                    // the allocator any more.
                    cell.heap_owned = false;
                }
            }
        }
        layout
    }
}

impl Topology for DList {
    fn node_count(&self) -> usize {
        self.cells.len()
    }

    fn root(&self) -> Option<usize> {
        (self.head != NIL).then_some(self.head as usize)
    }

    fn max_kids(&self) -> usize {
        1
    }

    fn child(&self, node: usize, i: usize) -> Option<usize> {
        if i != 0 {
            return None;
        }
        let n = self.cells[node].next;
        (n != NIL).then_some(n as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_heap::{CcMalloc, Malloc, Strategy};
    use cc_sim::event::{NullSink, TraceBuffer};
    use cc_sim::MachineConfig;

    #[test]
    fn push_and_values() {
        let mut heap = Malloc::new(8192);
        let mut l = DList::new();
        for i in 0..100 {
            l.push_back(i, &mut heap, &mut NullSink, false);
        }
        assert_eq!(l.values(), (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn remove_middle_head_tail() {
        let mut heap = Malloc::new(8192);
        let mut l = DList::new();
        let ids: Vec<u32> = (0..5)
            .map(|i| l.push_back(i, &mut heap, &mut NullSink, false))
            .collect();
        l.remove(ids[2], &mut heap, &mut NullSink);
        assert_eq!(l.values(), vec![0, 1, 3, 4]);
        l.remove(ids[0], &mut heap, &mut NullSink);
        assert_eq!(l.values(), vec![1, 3, 4]);
        l.remove(ids[4], &mut heap, &mut NullSink);
        assert_eq!(l.values(), vec![1, 3]);
        assert_eq!(l.len(), 2);
    }

    #[test]
    fn removed_slots_are_reused() {
        let mut heap = Malloc::new(8192);
        let mut l = DList::new();
        let a = l.push_back(1, &mut heap, &mut NullSink, false);
        l.remove(a, &mut heap, &mut NullSink);
        let b = l.push_back(2, &mut heap, &mut NullSink, false);
        assert_eq!(a, b, "arena slot reused");
        assert_eq!(l.values(), vec![2]);
    }

    #[test]
    fn walk_emits_one_load_per_cell() {
        let mut heap = Malloc::new(8192);
        let mut l = DList::new();
        for i in 0..7 {
            l.push_back(i, &mut heap, &mut NullSink, false);
        }
        let mut buf = TraceBuffer::new();
        assert_eq!(l.walk(&mut buf, false), 7);
        assert_eq!(buf.memory_refs(), 7);
        let mut buf2 = TraceBuffer::new();
        l.walk(&mut buf2, true);
        assert!(buf2.events().len() > buf.events().len(), "prefetches added");
    }

    #[test]
    fn hinted_cells_share_blocks() {
        let machine = MachineConfig::ultrasparc_e5000();
        let mut heap = CcMalloc::new(&machine, Strategy::NewBlock);
        let mut l = DList::new();
        let a = l.push_back(0, &mut heap, &mut NullSink, true);
        let b = l.push_back(1, &mut heap, &mut NullSink, true);
        let c = l.push_back(2, &mut heap, &mut NullSink, true);
        assert_eq!(l.addr_of(a) / 64, l.addr_of(b) / 64);
        assert_eq!(l.addr_of(b) / 64, l.addr_of(c) / 64);
    }

    #[test]
    fn morph_clusters_and_preserves_order() {
        let machine = MachineConfig::ultrasparc_e5000();
        let mut heap = Malloc::new(8192);
        let mut l = DList::new();
        for i in 0..100 {
            l.push_back(i, &mut heap, &mut NullSink, false);
        }
        // Scatter: remove every third cell so addresses fragment.
        let ids: Vec<u32> = (0..100).step_by(3).collect();
        for id in ids {
            l.remove(id, &mut heap, &mut NullSink);
        }
        let mut vs = VirtualSpace::new(8192);
        l.morph(
            &mut vs,
            &CcMorphParams::clustering_only(&machine, LIST_CELL_BYTES),
        );
        let vals = l.values();
        assert_eq!(vals.len(), l.len());
        // After morphing, consecutive cells are at consecutive addresses:
        // 4 cells per 64-byte block.
        let mut cur = l.head().expect("nonempty");
        let mut addrs = Vec::new();
        while let Some(next) = {
            addrs.push(l.addr_of(cur));
            l.child(cur as usize, 0)
        } {
            cur = next as u32;
        }
        for w in addrs.windows(4) {
            // At least the first pair in each window of 4 is adjacent.
            assert!(w[1] - w[0] <= 64, "cells scattered: {w:?}");
        }
    }

    #[test]
    #[should_panic(expected = "not live")]
    fn double_remove_panics() {
        let mut heap = Malloc::new(8192);
        let mut l = DList::new();
        let a = l.push_back(1, &mut heap, &mut NullSink, false);
        l.remove(a, &mut heap, &mut NullSink);
        l.remove(a, &mut heap, &mut NullSink);
    }
}
