//! Deterministic fault schedules for the simulated heaps.
//!
//! A [`HeapFaultSchedule`] is plain data — sets of allocation *ordinals*
//! (the value of `HeapStats::allocations()` when the request arrives) at
//! which a specific misfortune strikes. Schedules are usually derived from
//! a single seed by `cc-fault`'s `FaultPlan`, but can be written by hand
//! for targeted tests. Because they are data, schedules clone with the
//! allocator and compare with `==`, which is what makes replayed fault
//! runs byte-for-byte reproducible.
//!
//! Three fault kinds:
//!
//! * **deny-fresh-page** — each listed ordinal *arms* one denial, consumed
//!   at the allocator's next fresh-page request (not necessarily on the
//!   listed allocation: most allocations never need a fresh page, so a
//!   strictly ordinal-matched denial would usually be a no-op). A denial
//!   forces the allocator down its scavenging fallback path, observable as
//!   `HeapStats::fallback_allocations`, or surfaces as
//!   [`HeapError::PageExhaustion`](crate::HeapError::PageExhaustion) when
//!   nothing can absorb the request.
//! * **drop-hint** — the listed allocation's co-location hint is removed
//!   before placement (the caller's ledger still records the original, so
//!   audits see what was *requested*).
//! * **corrupt-hint** — the listed allocation's hint is XORed with a mask,
//!   pointing it at an arbitrary (often foreign or dead) address. The
//!   paper's safety property says this may cost locality, never
//!   correctness; `HeapStats::degraded_hints` counts the cost.

use std::collections::{BTreeMap, BTreeSet};

/// Ordinal-indexed fault schedule for one allocator instance.
///
/// The default (empty) schedule injects nothing, and every allocator path
/// is bit-identical to an unscheduled run — the no-fault differential
/// guarantee.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HeapFaultSchedule {
    /// Allocation ordinals that each arm one fresh-page denial.
    pub deny_fresh_page: BTreeSet<u64>,
    /// Allocation ordinals whose hint is dropped.
    pub drop_hint: BTreeSet<u64>,
    /// Allocation ordinal → XOR mask applied to that allocation's hint.
    pub corrupt_hint: BTreeMap<u64, u64>,
}

impl HeapFaultSchedule {
    /// A schedule that injects nothing.
    pub fn empty() -> Self {
        Self::default()
    }

    /// True when no fault of any kind is scheduled.
    pub fn is_empty(&self) -> bool {
        self.deny_fresh_page.is_empty() && self.drop_hint.is_empty() && self.corrupt_hint.is_empty()
    }

    /// The hint allocation `ordinal` is actually placed with: dropped,
    /// corrupted, or passed through.
    pub fn tamper(&self, ordinal: u64, hint: Option<u64>) -> Option<u64> {
        if self.drop_hint.contains(&ordinal) {
            return None;
        }
        match (hint, self.corrupt_hint.get(&ordinal)) {
            (Some(h), Some(mask)) => Some(h ^ mask),
            (h, _) => h,
        }
    }

    /// How many denials are armed by ordinals `<= ordinal`. The allocator
    /// compares this against its count of denials already fired to decide
    /// whether the next fresh-page request must fail.
    pub fn denials_armed_through(&self, ordinal: u64) -> u64 {
        self.deny_fresh_page.range(..=ordinal).count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_schedule_tampers_nothing() {
        let s = HeapFaultSchedule::empty();
        assert!(s.is_empty());
        assert_eq!(s.tamper(0, Some(0x40)), Some(0x40));
        assert_eq!(s.tamper(7, None), None);
        assert_eq!(s.denials_armed_through(u64::MAX), 0);
    }

    #[test]
    fn drop_beats_corrupt() {
        let mut s = HeapFaultSchedule::empty();
        s.drop_hint.insert(3);
        s.corrupt_hint.insert(3, 0xFF);
        assert_eq!(s.tamper(3, Some(0x40)), None);
        assert_eq!(s.tamper(4, Some(0x40)), Some(0x40));
    }

    #[test]
    fn corrupt_xors_the_hint() {
        let mut s = HeapFaultSchedule::empty();
        s.corrupt_hint.insert(5, 0x1000);
        assert_eq!(s.tamper(5, Some(0x40)), Some(0x1040));
        // A corrupt entry cannot conjure a hint out of nothing.
        assert_eq!(s.tamper(5, None), None);
    }

    #[test]
    fn denials_accumulate_by_ordinal() {
        let mut s = HeapFaultSchedule::empty();
        s.deny_fresh_page.extend([2, 5, 9]);
        assert_eq!(s.denials_armed_through(1), 0);
        assert_eq!(s.denials_armed_through(2), 1);
        assert_eq!(s.denials_armed_through(8), 2);
        assert_eq!(s.denials_armed_through(100), 3);
    }
}
