//! Simulated heap and the **`ccmalloc`** cache-conscious allocator from
//! *Cache-Conscious Structure Layout* (Chilimbi, Hill & Larus, PLDI 1999),
//! Section 3.2.
//!
//! Data structures in this reproduction live at *simulated addresses*: node
//! payloads stay in Rust arenas while the allocator under test assigns each
//! node a 64-bit address in a simulated virtual address space. This is the
//! paper's "locational transparency" (Section 1): elements of a pointer
//! structure can be placed at any address without changing program
//! semantics, and *where* they are placed determines cache behaviour.
//!
//! Three allocators are provided behind the [`Allocator`] trait:
//!
//! * [`malloc::Malloc`] — a conventional segregated-free-list allocator,
//!   the baseline every experiment normalizes against;
//! * [`ccmalloc::CcMalloc`] — the paper's allocator: `ccmalloc(size, hint)`
//!   tries to put the new item in the same L2 cache block as the hinted
//!   existing item, falling back to the same virtual-memory page, with the
//!   paper's three block-selection strategies ([`ccmalloc::Strategy`]:
//!   closest, new-block, first-fit);
//! * the trait's `alloc` (hint-less) entry point, which both implement, so
//!   workloads can be written once and run against either.
//!
//! # Example
//!
//! ```
//! use cc_heap::{Allocator, ccmalloc::{CcMalloc, Strategy}};
//! use cc_sim::MachineConfig;
//!
//! let machine = MachineConfig::ultrasparc_e5000();
//! let mut heap = CcMalloc::new(&machine, Strategy::NewBlock);
//! let parent = heap.alloc(20);
//! let child = heap.alloc_hint(20, Some(parent));
//! // Co-located in the same 64-byte L2 cache block:
//! assert_eq!(parent / 64, child / 64);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ccmalloc;
pub mod error;
pub mod fault;
pub mod malloc;
pub mod obs;
pub mod snapshot;
pub mod stats;
pub mod vspace;

pub use ccmalloc::{CcMalloc, Strategy};
pub use error::HeapError;
pub use fault::HeapFaultSchedule;
pub use malloc::Malloc;
pub use snapshot::{AllocRecord, LayoutSnapshot};
pub use stats::HeapStats;
pub use vspace::VirtualSpace;

/// Common interface over the baseline and cache-conscious allocators.
///
/// Addresses are plain `u64` simulated virtual addresses, shared with
/// `cc-sim`'s event stream.
///
/// The *fallible* entry points ([`Allocator::try_alloc_hint`],
/// [`Allocator::try_free`]) are the required methods; the classic
/// infallible ones are provided wrappers that panic with the
/// [`HeapError`]'s `Display` text, preserving the historical panic
/// messages for callers (and tests) that treat heap misuse as fatal.
pub trait Allocator {
    /// Allocates `size` bytes, trying to co-locate the new item with
    /// `hint` (an address inside some existing item likely to be accessed
    /// contemporaneously — e.g. the parent of a new tree node). The
    /// baseline allocator ignores the hint, which is exactly the paper's
    /// control experiment.
    ///
    /// Fails with [`HeapError::ZeroAlloc`] for empty requests and
    /// [`HeapError::PageExhaustion`] when fresh pages are unavailable and
    /// no existing page can absorb the allocation.
    fn try_alloc_hint(&mut self, size: u64, hint: Option<u64>) -> Result<u64, HeapError>;

    /// Releases the allocation starting at `addr`, failing with
    /// [`HeapError::InvalidFree`] if `addr` is not a live allocation
    /// start (a double free or interior pointer).
    fn try_free(&mut self, addr: u64) -> Result<(), HeapError>;

    /// Allocates `size` bytes with no placement hint (fallible).
    fn try_alloc(&mut self, size: u64) -> Result<u64, HeapError> {
        self.try_alloc_hint(size, None)
    }

    /// Allocates `size` bytes with no placement hint.
    ///
    /// # Panics
    ///
    /// Panics on any [`HeapError`] (e.g. a zero-byte request).
    fn alloc(&mut self, size: u64) -> u64 {
        self.try_alloc(size).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Infallible form of [`Allocator::try_alloc_hint`].
    ///
    /// # Panics
    ///
    /// Panics on any [`HeapError`].
    fn alloc_hint(&mut self, size: u64, hint: Option<u64>) -> u64 {
        self.try_alloc_hint(size, hint)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Releases the allocation starting at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not a live allocation start.
    fn free(&mut self, addr: u64) {
        if let Err(e) = self.try_free(addr) {
            panic!("{e}");
        }
    }

    /// Allocation statistics, including the heap footprint used for the
    /// paper's Section 4.4 memory-overhead comparison.
    fn stats(&self) -> &HeapStats;

    /// A point-in-time picture of every live allocation (address, size,
    /// birth order, requested hint), for layout analysis by `cc-audit`.
    /// Hints are recorded even by allocators that ignore them.
    fn snapshot(&self) -> LayoutSnapshot;

    /// Rough instruction cost of one allocation, charged to the simulated
    /// pipeline by workloads. `ccmalloc` costs more than `malloc` — the
    /// bookkeeping the paper's control experiment exposes (it measured
    /// programs 2–6% *slower* when `ccmalloc` gets null hints).
    fn cost_insts(&self) -> u32 {
        40
    }
}

impl<A: Allocator + ?Sized> Allocator for Box<A> {
    fn try_alloc_hint(&mut self, size: u64, hint: Option<u64>) -> Result<u64, HeapError> {
        (**self).try_alloc_hint(size, hint)
    }
    fn try_free(&mut self, addr: u64) -> Result<(), HeapError> {
        (**self).try_free(addr)
    }
    fn alloc(&mut self, size: u64) -> u64 {
        (**self).alloc(size)
    }
    fn alloc_hint(&mut self, size: u64, hint: Option<u64>) -> u64 {
        (**self).alloc_hint(size, hint)
    }
    fn free(&mut self, addr: u64) {
        (**self).free(addr)
    }
    fn stats(&self) -> &HeapStats {
        (**self).stats()
    }
    fn snapshot(&self) -> LayoutSnapshot {
        (**self).snapshot()
    }
    fn cost_insts(&self) -> u32 {
        (**self).cost_insts()
    }
}

impl<A: Allocator + ?Sized> Allocator for &mut A {
    fn try_alloc_hint(&mut self, size: u64, hint: Option<u64>) -> Result<u64, HeapError> {
        (**self).try_alloc_hint(size, hint)
    }
    fn try_free(&mut self, addr: u64) -> Result<(), HeapError> {
        (**self).try_free(addr)
    }
    fn alloc(&mut self, size: u64) -> u64 {
        (**self).alloc(size)
    }
    fn alloc_hint(&mut self, size: u64, hint: Option<u64>) -> u64 {
        (**self).alloc_hint(size, hint)
    }
    fn free(&mut self, addr: u64) {
        (**self).free(addr)
    }
    fn stats(&self) -> &HeapStats {
        (**self).stats()
    }
    fn snapshot(&self) -> LayoutSnapshot {
        (**self).snapshot()
    }
    fn cost_insts(&self) -> u32 {
        (**self).cost_insts()
    }
}
