//! Bridges between the heap and the `cc-obs` observability layer.
//!
//! Two directions:
//!
//! * **metrics out** — [`export_stats`] copies a [`HeapStats`] into a
//!   [`MetricsRegistry`] under a caller-chosen prefix, so the unified
//!   snapshot carries the allocator's degradation counters
//!   (`fallback_allocations`, `degraded_hints`) next to everything else;
//! * **regions in** — [`register_heap_span`] and [`register_snapshot`]
//!   describe where heap data lives to a [`RegionMap`], so the
//!   simulator's miss-attribution profiler can charge misses to "the
//!   heap" (or to individual structures) rather than to the anonymous
//!   catch-all region.

use cc_obs::{MetricsRegistry, RegionId, RegionMap};

use crate::snapshot::LayoutSnapshot;
use crate::stats::HeapStats;
use crate::vspace::HEAP_BASE;

/// Copies every [`HeapStats`] counter into `registry` as
/// `{prefix}.{counter}`.
///
/// The degradation counters (`fallback_allocations`, `degraded_hints`)
/// are always exported, even when zero, so snapshots from healthy and
/// degraded runs have identical key sets and diff cleanly.
pub fn export_stats(registry: &mut MetricsRegistry, prefix: &str, stats: &HeapStats) {
    registry.set(&format!("{prefix}.allocations"), stats.allocations());
    registry.set(&format!("{prefix}.frees"), stats.frees());
    registry.set(
        &format!("{prefix}.bytes_requested"),
        stats.bytes_requested(),
    );
    registry.set(&format!("{prefix}.bytes_live"), stats.bytes_live());
    registry.set(
        &format!("{prefix}.bytes_live_peak"),
        stats.bytes_live_peak(),
    );
    registry.set(&format!("{prefix}.pages"), stats.pages());
    registry.set(
        &format!("{prefix}.footprint_bytes"),
        stats.footprint_bytes(),
    );
    registry.set(
        &format!("{prefix}.fallback_allocations"),
        stats.fallback_allocations(),
    );
    registry.set(&format!("{prefix}.degraded_hints"), stats.degraded_hints());
}

/// Registers the heap's whole span `[HEAP_BASE, HEAP_BASE + span_bytes)`
/// as one attribution region named `name`.
///
/// `span_bytes` is normally
/// [`VirtualSpace::span_bytes`](crate::VirtualSpace::span_bytes) (or the
/// footprint from [`HeapStats`]); a zero span registers nothing and
/// returns `None`.
pub fn register_heap_span(map: &mut RegionMap, name: &str, span_bytes: u64) -> Option<RegionId> {
    if span_bytes == 0 {
        return None;
    }
    Some(map.register(name, HEAP_BASE, HEAP_BASE + span_bytes))
}

/// Registers the address range covered by a [`LayoutSnapshot`] — from
/// its lowest live allocation to the end of its highest — as one region
/// named `name`. Returns `None` for an empty snapshot.
///
/// This is the per-structure companion to [`register_heap_span`]: a
/// workload that keeps its tree and its list in separate allocators can
/// snapshot each and register them as separate regions, which is what
/// turns the profiler's conflict pairs into "the list is evicting the
/// tree" reports.
pub fn register_snapshot(
    map: &mut RegionMap,
    name: &str,
    snapshot: &LayoutSnapshot,
) -> Option<RegionId> {
    let records = snapshot.records();
    let first = records.first()?;
    let last = records.last()?;
    Some(map.register(name, first.addr, last.end()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Allocator, Malloc};

    #[test]
    fn export_covers_every_counter_with_prefix() {
        let mut heap = Malloc::new(8192);
        let a = heap.alloc(100);
        heap.alloc(50);
        heap.free(a);
        let mut reg = MetricsRegistry::new();
        export_stats(&mut reg, "heap.malloc", heap.stats());
        assert_eq!(reg.get("heap.malloc.allocations"), Some(2));
        assert_eq!(reg.get("heap.malloc.frees"), Some(1));
        assert_eq!(reg.get("heap.malloc.bytes_live"), Some(50));
        // Degradation counters are present even at zero.
        assert_eq!(reg.get("heap.malloc.fallback_allocations"), Some(0));
        assert_eq!(reg.get("heap.malloc.degraded_hints"), Some(0));
    }

    #[test]
    fn heap_span_region_resolves_heap_addresses() {
        let mut map = RegionMap::new();
        let heap = register_heap_span(&mut map, "heap", 4 * 8192).expect("nonzero span");
        assert_eq!(map.resolve(HEAP_BASE), heap);
        assert_eq!(map.resolve(HEAP_BASE + 4 * 8192 - 1), heap);
        // Outside the span falls to the catch-all.
        assert_eq!(map.resolve(0x100), RegionId::OTHER);
        assert_eq!(register_heap_span(&mut map, "empty", 0), None);
    }

    #[test]
    fn snapshot_region_covers_live_extent() {
        let mut heap = Malloc::new(8192);
        let a = heap.alloc(20);
        let b = heap.alloc(20);
        let mut map = RegionMap::new();
        let tree = register_snapshot(&mut map, "tree", &heap.snapshot()).expect("live records");
        assert_eq!(map.resolve(a), tree);
        assert_eq!(map.resolve(b), tree);
        assert_eq!(
            register_snapshot(&mut map, "none", &LayoutSnapshot::default()),
            None
        );
    }
}
