//! Bridges between the heap and the `cc-obs` observability layer.
//!
//! Two directions:
//!
//! * **metrics out** — [`export_stats`] copies a [`HeapStats`] into a
//!   [`MetricsRegistry`] under a caller-chosen prefix, so the unified
//!   snapshot carries the allocator's degradation counters
//!   (`fallback_allocations`, `degraded_hints`) next to everything else;
//! * **regions in** — [`register_heap_span`] and [`register_snapshot`]
//!   describe where heap data lives to a [`RegionMap`], so the
//!   simulator's miss-attribution profiler can charge misses to "the
//!   heap" (or to individual structures) rather than to the anonymous
//!   catch-all region.

use cc_obs::{FieldMap, MetricsRegistry, RegionId, RegionMap};

use crate::snapshot::LayoutSnapshot;
use crate::stats::HeapStats;
use crate::vspace::HEAP_BASE;

/// Copies every [`HeapStats`] counter into `registry` as
/// `{prefix}.{counter}`.
///
/// The degradation counters (`fallback_allocations`, `degraded_hints`)
/// are always exported, even when zero, so snapshots from healthy and
/// degraded runs have identical key sets and diff cleanly.
pub fn export_stats(registry: &mut MetricsRegistry, prefix: &str, stats: &HeapStats) {
    registry.set(&format!("{prefix}.allocations"), stats.allocations());
    registry.set(&format!("{prefix}.frees"), stats.frees());
    registry.set(
        &format!("{prefix}.bytes_requested"),
        stats.bytes_requested(),
    );
    registry.set(&format!("{prefix}.bytes_live"), stats.bytes_live());
    registry.set(
        &format!("{prefix}.bytes_live_peak"),
        stats.bytes_live_peak(),
    );
    registry.set(&format!("{prefix}.pages"), stats.pages());
    registry.set(
        &format!("{prefix}.footprint_bytes"),
        stats.footprint_bytes(),
    );
    registry.set(
        &format!("{prefix}.fallback_allocations"),
        stats.fallback_allocations(),
    );
    registry.set(&format!("{prefix}.degraded_hints"), stats.degraded_hints());
}

/// Registers the heap's whole span `[HEAP_BASE, HEAP_BASE + span_bytes)`
/// as one attribution region named `name`.
///
/// `span_bytes` is normally
/// [`VirtualSpace::span_bytes`](crate::VirtualSpace::span_bytes) (or the
/// footprint from [`HeapStats`]); a zero span registers nothing and
/// returns `None`.
pub fn register_heap_span(map: &mut RegionMap, name: &str, span_bytes: u64) -> Option<RegionId> {
    if span_bytes == 0 {
        return None;
    }
    Some(map.register(name, HEAP_BASE, HEAP_BASE + span_bytes))
}

/// Registers the address range covered by a [`LayoutSnapshot`] — from
/// its lowest live allocation to the end of its highest — as one region
/// named `name`. Returns `None` for an empty snapshot.
///
/// This is the per-structure companion to [`register_heap_span`]: a
/// workload that keeps its tree and its list in separate allocators can
/// snapshot each and register them as separate regions, which is what
/// turns the profiler's conflict pairs into "the list is evicting the
/// tree" reports.
pub fn register_snapshot(
    map: &mut RegionMap,
    name: &str,
    snapshot: &LayoutSnapshot,
) -> Option<RegionId> {
    let records = snapshot.records();
    let first = records.first()?;
    let last = records.last()?;
    Some(map.register(name, first.addr, last.end()))
}

/// Registers every live allocation of `snapshot` as a field-resolution
/// extent of span table `table` in `map`, so the profiler can attribute
/// misses to the individual *fields* of the objects the allocator
/// reported. Returns the number of extents registered.
///
/// All records are assumed to share the layout `table` describes, with
/// the object's fields repeating at each record's own size. Runs of
/// equal-sized, back-to-back records (a dense pool) coalesce into one
/// strided extent, which keeps [`FieldMap::resolve`]'s binary search
/// shallow for arena allocators.
///
/// Snapshots that mix layouts (say, a hot/cold split's 16-byte hot
/// halves plus its cold arena) should instead register each group with
/// its own table via [`FieldMap::add_extent`] directly.
pub fn register_snapshot_fields(
    map: &mut FieldMap,
    table: u32,
    snapshot: &LayoutSnapshot,
) -> usize {
    let mut extents = 0;
    let mut run: Option<(u64, u64, u64)> = None; // (start, end, stride)
    for r in snapshot.records() {
        run = Some(match run {
            Some((start, end, stride)) if r.addr == end && r.size == stride => {
                (start, r.end(), stride)
            }
            Some((start, end, stride)) => {
                map.add_extent(start, end, stride, table);
                extents += 1;
                (r.addr, r.end(), r.size)
            }
            None => (r.addr, r.end(), r.size),
        });
    }
    if let Some((start, end, stride)) = run {
        map.add_extent(start, end, stride, table);
        extents += 1;
    }
    extents
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Allocator, Malloc};

    #[test]
    fn export_covers_every_counter_with_prefix() {
        let mut heap = Malloc::new(8192);
        let a = heap.alloc(100);
        heap.alloc(50);
        heap.free(a);
        let mut reg = MetricsRegistry::new();
        export_stats(&mut reg, "heap.malloc", heap.stats());
        assert_eq!(reg.get("heap.malloc.allocations"), Some(2));
        assert_eq!(reg.get("heap.malloc.frees"), Some(1));
        assert_eq!(reg.get("heap.malloc.bytes_live"), Some(50));
        // Degradation counters are present even at zero.
        assert_eq!(reg.get("heap.malloc.fallback_allocations"), Some(0));
        assert_eq!(reg.get("heap.malloc.degraded_hints"), Some(0));
    }

    #[test]
    fn heap_span_region_resolves_heap_addresses() {
        let mut map = RegionMap::new();
        let heap = register_heap_span(&mut map, "heap", 4 * 8192).expect("nonzero span");
        assert_eq!(map.resolve(HEAP_BASE), heap);
        assert_eq!(map.resolve(HEAP_BASE + 4 * 8192 - 1), heap);
        // Outside the span falls to the catch-all.
        assert_eq!(map.resolve(0x100), RegionId::OTHER);
        assert_eq!(register_heap_span(&mut map, "empty", 0), None);
    }

    #[test]
    fn snapshot_fields_resolve_per_object_offsets() {
        use crate::snapshot::AllocRecord;

        // Three back-to-back 16-byte objects, then a gap, then one more:
        // the dense run coalesces into a single strided extent.
        let rec = |addr| AllocRecord {
            addr,
            size: 16,
            id: addr,
            hint: None,
        };
        let snapshot =
            LayoutSnapshot::from_records(vec![rec(0x1000), rec(0x1010), rec(0x1020), rec(0x2000)]);
        let mut fmap = FieldMap::new();
        let key = fmap.field_id("key");
        let next = fmap.field_id("next");
        let t = fmap.add_table(&[(key, 0, 8), (next, 8, 8)]);
        assert_eq!(register_snapshot_fields(&mut fmap, t, &snapshot), 2);
        assert_eq!(fmap.resolve(0x1000), Some(key));
        assert_eq!(fmap.resolve(0x1010 + 8), Some(next));
        assert_eq!(fmap.resolve(0x102f), Some(next));
        assert_eq!(fmap.resolve(0x1030), None, "gap after the dense run");
        assert_eq!(fmap.resolve(0x2008), Some(next));
        assert_eq!(
            register_snapshot_fields(&mut fmap, t, &LayoutSnapshot::default()),
            0,
            "empty snapshot registers nothing"
        );
    }

    #[test]
    fn snapshot_region_covers_live_extent() {
        let mut heap = Malloc::new(8192);
        let a = heap.alloc(20);
        let b = heap.alloc(20);
        let mut map = RegionMap::new();
        let tree = register_snapshot(&mut map, "tree", &heap.snapshot()).expect("live records");
        assert_eq!(map.resolve(a), tree);
        assert_eq!(map.resolve(b), tree);
        assert_eq!(
            register_snapshot(&mut map, "none", &LayoutSnapshot::default()),
            None
        );
    }
}
