//! A simulated, page-granular virtual address space.

use crate::error::HeapError;

/// Page-granular region allocator: a `brk`-style bump over a simulated
/// 64-bit virtual address space.
///
/// Both allocators and `ccmorph` carve page-aligned regions from one of
/// these. The footprint statistic (`pages_allocated`) is what the paper's
/// Section 4.4 memory-overhead comparison measures: strategies that spread
/// data over more cache blocks touch more pages.
///
/// # Example
///
/// ```
/// use cc_heap::VirtualSpace;
///
/// let mut vs = VirtualSpace::new(8192);
/// let a = vs.alloc_pages(1);
/// let b = vs.alloc_pages(2);
/// assert_eq!(b, a + 8192);
/// assert_eq!(vs.pages_allocated(), 3);
/// ```
#[derive(Clone, Debug)]
pub struct VirtualSpace {
    page_bytes: u64,
    base: u64,
    next: u64,
    /// Pages handed out via `alloc_pages`/`try_alloc_pages` (holes left by
    /// `skip_pages`/`align_to` are not claimed and don't count here).
    claimed: u64,
    /// Optional cap on `claimed` — a simulated arena limit. `None` (the
    /// default) preserves the unbounded `brk`-style behaviour.
    page_limit: Option<u64>,
}

/// Heap regions start well above zero so address arithmetic bugs (null
/// pointers, tiny offsets) are easy to spot in traces. Public so
/// observability tooling can register `[HEAP_BASE, HEAP_BASE + span)`
/// as an attribution region.
pub const HEAP_BASE: u64 = 0x1000_0000;

impl VirtualSpace {
    /// Creates an empty address space with the given page size.
    ///
    /// # Panics
    ///
    /// Panics if `page_bytes` is not a power of two.
    pub fn new(page_bytes: u64) -> Self {
        assert!(
            page_bytes.is_power_of_two(),
            "page size must be a power of two"
        );
        VirtualSpace {
            page_bytes,
            base: HEAP_BASE,
            next: HEAP_BASE,
            claimed: 0,
            page_limit: None,
        }
    }

    /// Creates an address space that refuses to claim more than `limit`
    /// pages — the simulated analogue of a fixed-size arena.
    ///
    /// # Panics
    ///
    /// Panics if `page_bytes` is not a power of two.
    pub fn with_page_limit(page_bytes: u64, limit: u64) -> Self {
        let mut vs = Self::new(page_bytes);
        vs.page_limit = Some(limit);
        vs
    }

    /// Sets or clears the page limit. Lowering the limit below the pages
    /// already claimed only affects future requests.
    pub fn set_page_limit(&mut self, limit: Option<u64>) {
        self.page_limit = limit;
    }

    /// The configured page limit, if any.
    pub fn page_limit(&self) -> Option<u64> {
        self.page_limit
    }

    /// Page size in bytes.
    pub fn page_bytes(&self) -> u64 {
        self.page_bytes
    }

    /// Allocates `n` contiguous pages and returns the region's base address
    /// (always page-aligned).
    ///
    /// # Panics
    ///
    /// Panics if a page limit is set and would be exceeded; use
    /// [`Self::try_alloc_pages`] to observe exhaustion as an error.
    pub fn alloc_pages(&mut self, n: u64) -> u64 {
        self.try_alloc_pages(n).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Allocates `n` contiguous pages, failing with
    /// [`HeapError::PageExhaustion`] when a configured page limit would be
    /// exceeded.
    pub fn try_alloc_pages(&mut self, n: u64) -> Result<u64, HeapError> {
        if let Some(limit) = self.page_limit {
            if self.claimed + n > limit {
                return Err(HeapError::PageExhaustion { pages: n });
            }
        }
        let addr = self.next;
        self.next += n * self.page_bytes;
        self.claimed += n;
        Ok(addr)
    }

    /// Allocates the fewest pages covering `bytes` and returns the base.
    pub fn alloc_bytes(&mut self, bytes: u64) -> u64 {
        self.alloc_pages(bytes.div_ceil(self.page_bytes).max(1))
    }

    /// Skips `n` pages without allocating them, leaving a hole. `ccmorph`'s
    /// coloring uses this: "gaps in the virtual address space that
    /// implement coloring correspond to multiples of the virtual memory
    /// page size" (Section 3.1.1).
    pub fn skip_pages(&mut self, n: u64) {
        self.next += n * self.page_bytes;
    }

    /// Skips forward until the frontier is a multiple of `align_bytes`,
    /// returning the aligned frontier. Used to align colored regions to
    /// the cache way size.
    ///
    /// # Panics
    ///
    /// Panics unless `align_bytes` is a page multiple and a power of two.
    pub fn align_to(&mut self, align_bytes: u64) -> u64 {
        assert!(
            align_bytes.is_power_of_two() && align_bytes >= self.page_bytes,
            "alignment must be a power-of-two page multiple"
        );
        self.next = self.next.next_multiple_of(align_bytes);
        self.next
    }

    /// Total pages handed out (holes excluded).
    pub fn pages_allocated(&self) -> u64 {
        // Holes are part of the span but were skipped, not allocated; the
        // span-based footprint is reported separately.
        (self.next - self.base) / self.page_bytes
    }

    /// Total bytes in the span from heap base to the high-water mark,
    /// including any coloring holes.
    pub fn span_bytes(&self) -> u64 {
        self.next - self.base
    }

    /// The page-aligned address of the page containing `addr`.
    pub fn page_of(&self, addr: u64) -> u64 {
        addr & !(self.page_bytes - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_are_contiguous_and_aligned() {
        let mut vs = VirtualSpace::new(4096);
        let a = vs.alloc_pages(2);
        let b = vs.alloc_pages(1);
        assert_eq!(a % 4096, 0);
        assert_eq!(b, a + 2 * 4096);
    }

    #[test]
    fn alloc_bytes_rounds_up() {
        let mut vs = VirtualSpace::new(4096);
        let a = vs.alloc_bytes(1);
        let b = vs.alloc_bytes(4097);
        assert_eq!(b, a + 4096);
        let c = vs.alloc_bytes(1);
        assert_eq!(c, b + 2 * 4096);
    }

    #[test]
    fn skip_leaves_holes() {
        let mut vs = VirtualSpace::new(4096);
        let a = vs.alloc_pages(1);
        vs.skip_pages(3);
        let b = vs.alloc_pages(1);
        assert_eq!(b, a + 4 * 4096);
        assert_eq!(vs.span_bytes(), 5 * 4096);
    }

    #[test]
    fn page_of_masks_offset() {
        let vs = VirtualSpace::new(8192);
        assert_eq!(vs.page_of(0x1000_1FFF), 0x1000_0000);
        assert_eq!(vs.page_of(0x1000_2000), 0x1000_2000);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_odd_page_size() {
        let _ = VirtualSpace::new(1000);
    }

    #[test]
    fn page_limit_denies_over_budget_requests() {
        let mut vs = VirtualSpace::with_page_limit(4096, 3);
        assert!(vs.try_alloc_pages(2).is_ok());
        assert_eq!(
            vs.try_alloc_pages(2),
            Err(HeapError::PageExhaustion { pages: 2 })
        );
        // A smaller request still fits under the cap.
        assert!(vs.try_alloc_pages(1).is_ok());
        assert_eq!(
            vs.try_alloc_pages(1),
            Err(HeapError::PageExhaustion { pages: 1 })
        );
    }

    #[test]
    fn skipped_holes_do_not_consume_the_limit() {
        let mut vs = VirtualSpace::with_page_limit(4096, 2);
        vs.skip_pages(10);
        assert!(vs.try_alloc_pages(2).is_ok());
    }

    #[test]
    fn limit_can_be_set_and_cleared() {
        let mut vs = VirtualSpace::new(4096);
        vs.set_page_limit(Some(1));
        assert!(vs.try_alloc_pages(1).is_ok());
        assert!(vs.try_alloc_pages(1).is_err());
        vs.set_page_limit(None);
        assert!(vs.try_alloc_pages(100).is_ok());
        assert_eq!(vs.page_limit(), None);
    }
}
