//! The conventional heap allocator used as the paper's baseline.
//!
//! A simulated version of a classic segregated-free-list `malloc`: small
//! requests are rounded to 8-byte size classes served from per-class free
//! lists, carving fresh space from page-sized chunks when a list is empty;
//! large requests get their own page runs. Every allocation pays an 8-byte
//! boundary header, as real allocators do — which is one of the reasons a
//! 20-byte tree node ends up on a 28-byte pitch and structure elements
//! scatter across cache blocks.

use crate::error::HeapError;
use crate::fault::HeapFaultSchedule;
use crate::snapshot::{LayoutSnapshot, SnapshotLedger};
use crate::stats::HeapStats;
use crate::vspace::VirtualSpace;
use crate::Allocator;

/// Size classes step by 8 bytes up to this bound; larger requests are
/// served from dedicated page runs.
const LARGE_THRESHOLD: u64 = 2048;
/// Boundary-tag header preceding each payload.
const HEADER: u64 = 8;

/// Baseline segregated-free-list allocator.
///
/// # Example
///
/// ```
/// use cc_heap::{Allocator, Malloc};
///
/// let mut heap = Malloc::new(8192);
/// let a = heap.alloc(20);
/// let b = heap.alloc(20);
/// // Consecutive allocations are adjacent (modulo the 8-byte header):
/// assert_eq!(b - a, 32);
/// heap.free(a);
/// let c = heap.alloc(20); // reuses the freed slot
/// assert_eq!(c, a);
/// ```
#[derive(Clone, Debug)]
pub struct Malloc {
    vspace: VirtualSpace,
    /// Free lists indexed by size class (LIFO, like Lea-style allocators).
    free_lists: Vec<Vec<u64>>,
    /// Bump state of the current carving chunk per class: (next, end).
    chunks: Vec<(u64, u64)>,
    /// Live allocation records (simulating the boundary tag, plus the
    /// birth order and requested hint that `snapshot` reports).
    live: SnapshotLedger,
    stats: HeapStats,
    /// Injected faults, keyed by allocation ordinal (empty by default).
    /// The baseline ignores hints, so only fresh-page denials apply.
    schedule: HeapFaultSchedule,
    /// Armed fresh-page denials already consumed.
    denials_fired: u64,
}

impl Malloc {
    /// Creates an empty heap over pages of `page_bytes`.
    pub fn new(page_bytes: u64) -> Self {
        let classes = (LARGE_THRESHOLD / 8) as usize + 1;
        Malloc {
            vspace: VirtualSpace::new(page_bytes),
            free_lists: vec![Vec::new(); classes],
            chunks: vec![(0, 0); classes],
            live: SnapshotLedger::default(),
            stats: HeapStats::new(page_bytes),
            schedule: HeapFaultSchedule::empty(),
            denials_fired: 0,
        }
    }

    /// Installs a fault schedule (replacing any previous one).
    pub fn set_fault_schedule(&mut self, schedule: HeapFaultSchedule) {
        self.schedule = schedule;
    }

    /// The installed fault schedule.
    pub fn fault_schedule(&self) -> &HeapFaultSchedule {
        &self.schedule
    }

    /// Caps the pages this heap may claim; `None` removes the cap.
    pub fn set_page_limit(&mut self, limit: Option<u64>) {
        self.vspace.set_page_limit(limit);
    }

    fn class_of(size: u64) -> usize {
        (size.div_ceil(8)) as usize
    }

    fn class_bytes(class: usize) -> u64 {
        class as u64 * 8
    }

    /// The virtual space, exposing footprint data.
    pub fn vspace(&self) -> &VirtualSpace {
        &self.vspace
    }

    /// Consumes one armed fresh-page denial if the schedule has any left
    /// for this ordinal (see `HeapFaultSchedule::denials_armed_through`).
    fn fresh_denied(&mut self, ordinal: u64) -> bool {
        if self.denials_fired < self.schedule.denials_armed_through(ordinal) {
            self.denials_fired += 1;
            true
        } else {
            false
        }
    }

    /// Degraded-mode reuse when fresh pages are denied: pop a slot from
    /// the smallest *larger* size class with a free entry. The slot is
    /// oversized for the request (internal fragmentation, and when freed
    /// again it re-enters the smaller class — the big slot shrinks), but
    /// the program keeps running, which is the point.
    fn scavenge_larger_class(&mut self, class: usize) -> Option<u64> {
        (class + 1..self.free_lists.len()).find_map(|c| self.free_lists[c].pop())
    }

    /// Placement logic shared by the hinted and hint-less entry points;
    /// `hint` only reaches the ledger (the baseline ignores it for
    /// placement — the paper's control experiment).
    fn alloc_recorded(&mut self, size: u64, hint: Option<u64>) -> Result<u64, HeapError> {
        if size == 0 {
            return Err(HeapError::ZeroAlloc);
        }
        let ordinal = self.stats.allocations();
        if size > LARGE_THRESHOLD {
            let pages = (size + HEADER).div_ceil(self.vspace.page_bytes());
            // Dedicated runs have no degraded mode: denial is terminal.
            if self.fresh_denied(ordinal) {
                return Err(HeapError::PageExhaustion { pages });
            }
            let base = self.vspace.try_alloc_pages(pages)?;
            self.stats.record_pages(pages);
            self.stats.record_alloc(size);
            let addr = base + HEADER;
            self.live.record(addr, size, hint);
            return Ok(addr);
        }
        let class = Self::class_of(size);
        if let Some(addr) = self.free_lists[class].pop() {
            self.stats.record_alloc(size);
            self.live.record(addr, size, hint);
            return Ok(addr);
        }
        let pitch = Self::class_bytes(class) + HEADER;
        let (mut next, mut end) = self.chunks[class];
        if next + pitch > end {
            let page_bytes = self.vspace.page_bytes();
            let fresh = if self.fresh_denied(ordinal) {
                Err(HeapError::PageExhaustion { pages: 1 })
            } else {
                self.vspace.try_alloc_pages(1)
            };
            match fresh {
                Ok(base) => {
                    self.stats.record_pages(1);
                    next = base;
                    end = base + page_bytes;
                }
                Err(e) => {
                    let Some(addr) = self.scavenge_larger_class(class) else {
                        return Err(e);
                    };
                    self.stats.record_alloc(size);
                    self.stats.record_fallback();
                    self.live.record(addr, size, hint);
                    return Ok(addr);
                }
            }
        }
        let addr = next + HEADER;
        self.chunks[class] = (next + pitch, end);
        self.stats.record_alloc(size);
        self.live.record(addr, size, hint);
        Ok(addr)
    }
}

impl Allocator for Malloc {
    fn try_alloc_hint(&mut self, size: u64, hint: Option<u64>) -> Result<u64, HeapError> {
        // The baseline ignores placement hints (but records them, so an
        // audit can report the co-location that was requested and lost).
        self.alloc_recorded(size, hint)
    }

    fn try_free(&mut self, addr: u64) -> Result<(), HeapError> {
        let (size, _, _) = self
            .live
            .forget(addr)
            .ok_or(HeapError::InvalidFree { addr })?;
        self.stats.record_free(size);
        if size <= LARGE_THRESHOLD {
            self.free_lists[Self::class_of(size)].push(addr);
        }
        // Large runs are returned to the OS in real allocators; the
        // simulated footprint keeps its high-water semantics either way.
        Ok(())
    }

    fn stats(&self) -> &HeapStats {
        &self.stats
    }

    fn snapshot(&self) -> LayoutSnapshot {
        self.live.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_allocations_are_contiguous() {
        let mut h = Malloc::new(8192);
        let a = h.alloc(16);
        let b = h.alloc(16);
        let c = h.alloc(16);
        assert_eq!(b - a, 24);
        assert_eq!(c - b, 24);
    }

    #[test]
    fn different_classes_use_different_chunks() {
        let mut h = Malloc::new(8192);
        let a = h.alloc(16);
        let b = h.alloc(100);
        // Different size classes carve from different pages.
        assert_ne!(a & !8191, b & !8191);
    }

    #[test]
    fn free_then_alloc_reuses_lifo() {
        let mut h = Malloc::new(8192);
        let a = h.alloc(20);
        let b = h.alloc(20);
        h.free(a);
        h.free(b);
        assert_eq!(h.alloc(20), b, "LIFO reuse");
        assert_eq!(h.alloc(20), a);
    }

    #[test]
    fn large_allocation_gets_own_pages() {
        let mut h = Malloc::new(8192);
        let a = h.alloc(10_000);
        assert_eq!((a - 8) % 8192, 0, "page aligned after header");
        assert_eq!(h.stats().pages(), 2);
    }

    #[test]
    #[should_panic(expected = "non-live address")]
    fn double_free_panics() {
        let mut h = Malloc::new(8192);
        let a = h.alloc(8);
        h.free(a);
        h.free(a);
    }

    #[test]
    fn double_free_is_typed_invalid_free() {
        let mut h = Malloc::new(8192);
        let a = h.alloc(8);
        assert_eq!(h.try_free(a), Ok(()));
        assert_eq!(h.try_free(a), Err(HeapError::InvalidFree { addr: a }));
    }

    #[test]
    fn free_of_stray_address_is_typed() {
        let mut h = Malloc::new(8192);
        h.alloc(8);
        assert_eq!(
            h.try_free(0xDEAD),
            Err(HeapError::InvalidFree { addr: 0xDEAD })
        );
    }

    #[test]
    fn zero_alloc_is_typed() {
        assert_eq!(Malloc::new(8192).try_alloc(0), Err(HeapError::ZeroAlloc));
    }

    #[test]
    fn stats_track_footprint() {
        let mut h = Malloc::new(8192);
        for _ in 0..1000 {
            h.alloc(20);
        }
        // 1000 * 32-byte pitch = 32000 bytes -> 4 pages.
        assert_eq!(h.stats().pages(), 4);
        assert_eq!(h.stats().allocations(), 1000);
    }

    #[test]
    fn denied_fresh_page_falls_back_to_larger_class() {
        let mut h = Malloc::new(8192);
        let big = h.alloc(100);
        h.free(big);
        let mut s = HeapFaultSchedule::empty();
        s.deny_fresh_page.insert(0);
        h.set_fault_schedule(s);
        // 16-byte class has no chunk yet: the fresh-page request is
        // denied, so the freed 100-byte slot is scavenged instead.
        let a = h.try_alloc(16).unwrap();
        assert_eq!(a, big, "reused the larger class's freed slot");
        assert_eq!(h.stats().fallback_allocations(), 1);
        // The denial was one-shot; the heap recovers.
        assert!(h.try_alloc(16).is_ok());
        assert_eq!(h.stats().fallback_allocations(), 1);
    }

    #[test]
    fn exhaustion_with_nothing_to_scavenge_is_typed() {
        let mut h = Malloc::new(8192);
        let mut s = HeapFaultSchedule::empty();
        s.deny_fresh_page.insert(0);
        h.set_fault_schedule(s);
        assert_eq!(h.try_alloc(16), Err(HeapError::PageExhaustion { pages: 1 }));
        // A failed allocation is invisible in the stats…
        assert_eq!(h.stats().allocations(), 0);
        // …and does not poison the heap: the denial is now consumed.
        assert!(h.try_alloc(16).is_ok());
    }

    #[test]
    fn page_limit_denies_large_runs() {
        let mut h = Malloc::new(8192);
        h.set_page_limit(Some(1));
        assert!(h.try_alloc(16).is_ok());
        assert_eq!(
            h.try_alloc(10_000),
            Err(HeapError::PageExhaustion { pages: 2 })
        );
    }

    #[test]
    fn hint_is_ignored() {
        let mut h = Malloc::new(8192);
        let a = h.alloc(20);
        let b = h.alloc_hint(20, Some(a));
        let c = h.alloc(20);
        assert_eq!(b - a, c - b, "hint changed nothing");
    }
}
