//! The conventional heap allocator used as the paper's baseline.
//!
//! A simulated version of a classic segregated-free-list `malloc`: small
//! requests are rounded to 8-byte size classes served from per-class free
//! lists, carving fresh space from page-sized chunks when a list is empty;
//! large requests get their own page runs. Every allocation pays an 8-byte
//! boundary header, as real allocators do — which is one of the reasons a
//! 20-byte tree node ends up on a 28-byte pitch and structure elements
//! scatter across cache blocks.

use crate::error::HeapError;
use crate::snapshot::{LayoutSnapshot, SnapshotLedger};
use crate::stats::HeapStats;
use crate::vspace::VirtualSpace;
use crate::Allocator;

/// Size classes step by 8 bytes up to this bound; larger requests are
/// served from dedicated page runs.
const LARGE_THRESHOLD: u64 = 2048;
/// Boundary-tag header preceding each payload.
const HEADER: u64 = 8;

/// Baseline segregated-free-list allocator.
///
/// # Example
///
/// ```
/// use cc_heap::{Allocator, Malloc};
///
/// let mut heap = Malloc::new(8192);
/// let a = heap.alloc(20);
/// let b = heap.alloc(20);
/// // Consecutive allocations are adjacent (modulo the 8-byte header):
/// assert_eq!(b - a, 32);
/// heap.free(a);
/// let c = heap.alloc(20); // reuses the freed slot
/// assert_eq!(c, a);
/// ```
#[derive(Clone, Debug)]
pub struct Malloc {
    vspace: VirtualSpace,
    /// Free lists indexed by size class (LIFO, like Lea-style allocators).
    free_lists: Vec<Vec<u64>>,
    /// Bump state of the current carving chunk per class: (next, end).
    chunks: Vec<(u64, u64)>,
    /// Live allocation records (simulating the boundary tag, plus the
    /// birth order and requested hint that `snapshot` reports).
    live: SnapshotLedger,
    stats: HeapStats,
}

impl Malloc {
    /// Creates an empty heap over pages of `page_bytes`.
    pub fn new(page_bytes: u64) -> Self {
        let classes = (LARGE_THRESHOLD / 8) as usize + 1;
        Malloc {
            vspace: VirtualSpace::new(page_bytes),
            free_lists: vec![Vec::new(); classes],
            chunks: vec![(0, 0); classes],
            live: SnapshotLedger::default(),
            stats: HeapStats::new(page_bytes),
        }
    }

    fn class_of(size: u64) -> usize {
        (size.div_ceil(8)) as usize
    }

    fn class_bytes(class: usize) -> u64 {
        class as u64 * 8
    }

    /// The virtual space, exposing footprint data.
    pub fn vspace(&self) -> &VirtualSpace {
        &self.vspace
    }

    /// Placement logic shared by the hinted and hint-less entry points;
    /// `hint` only reaches the ledger (the baseline ignores it for
    /// placement — the paper's control experiment).
    fn alloc_recorded(&mut self, size: u64, hint: Option<u64>) -> Result<u64, HeapError> {
        if size == 0 {
            return Err(HeapError::ZeroAlloc);
        }
        self.stats.record_alloc(size);
        if size > LARGE_THRESHOLD {
            let pages = (size + HEADER).div_ceil(self.vspace.page_bytes());
            self.stats.record_pages(pages);
            let base = self.vspace.alloc_pages(pages);
            let addr = base + HEADER;
            self.live.record(addr, size, hint);
            return Ok(addr);
        }
        let class = Self::class_of(size);
        if let Some(addr) = self.free_lists[class].pop() {
            self.live.record(addr, size, hint);
            return Ok(addr);
        }
        let pitch = Self::class_bytes(class) + HEADER;
        let (next, end) = &mut self.chunks[class];
        if *next + pitch > *end {
            let page_bytes = self.vspace.page_bytes();
            self.stats.record_pages(1);
            let base = self.vspace.alloc_pages(1);
            *next = base;
            *end = base + page_bytes;
        }
        let addr = *next + HEADER;
        *next += pitch;
        self.live.record(addr, size, hint);
        Ok(addr)
    }
}

impl Allocator for Malloc {
    fn try_alloc_hint(&mut self, size: u64, hint: Option<u64>) -> Result<u64, HeapError> {
        // The baseline ignores placement hints (but records them, so an
        // audit can report the co-location that was requested and lost).
        self.alloc_recorded(size, hint)
    }

    fn try_free(&mut self, addr: u64) -> Result<(), HeapError> {
        let (size, _, _) = self
            .live
            .forget(addr)
            .ok_or(HeapError::InvalidFree { addr })?;
        self.stats.record_free(size);
        if size <= LARGE_THRESHOLD {
            self.free_lists[Self::class_of(size)].push(addr);
        }
        // Large runs are returned to the OS in real allocators; the
        // simulated footprint keeps its high-water semantics either way.
        Ok(())
    }

    fn stats(&self) -> &HeapStats {
        &self.stats
    }

    fn snapshot(&self) -> LayoutSnapshot {
        self.live.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_allocations_are_contiguous() {
        let mut h = Malloc::new(8192);
        let a = h.alloc(16);
        let b = h.alloc(16);
        let c = h.alloc(16);
        assert_eq!(b - a, 24);
        assert_eq!(c - b, 24);
    }

    #[test]
    fn different_classes_use_different_chunks() {
        let mut h = Malloc::new(8192);
        let a = h.alloc(16);
        let b = h.alloc(100);
        // Different size classes carve from different pages.
        assert_ne!(a & !8191, b & !8191);
    }

    #[test]
    fn free_then_alloc_reuses_lifo() {
        let mut h = Malloc::new(8192);
        let a = h.alloc(20);
        let b = h.alloc(20);
        h.free(a);
        h.free(b);
        assert_eq!(h.alloc(20), b, "LIFO reuse");
        assert_eq!(h.alloc(20), a);
    }

    #[test]
    fn large_allocation_gets_own_pages() {
        let mut h = Malloc::new(8192);
        let a = h.alloc(10_000);
        assert_eq!((a - 8) % 8192, 0, "page aligned after header");
        assert_eq!(h.stats().pages(), 2);
    }

    #[test]
    #[should_panic(expected = "non-live address")]
    fn double_free_panics() {
        let mut h = Malloc::new(8192);
        let a = h.alloc(8);
        h.free(a);
        h.free(a);
    }

    #[test]
    fn double_free_is_typed_invalid_free() {
        let mut h = Malloc::new(8192);
        let a = h.alloc(8);
        assert_eq!(h.try_free(a), Ok(()));
        assert_eq!(h.try_free(a), Err(HeapError::InvalidFree { addr: a }));
    }

    #[test]
    fn free_of_stray_address_is_typed() {
        let mut h = Malloc::new(8192);
        h.alloc(8);
        assert_eq!(
            h.try_free(0xDEAD),
            Err(HeapError::InvalidFree { addr: 0xDEAD })
        );
    }

    #[test]
    fn zero_alloc_is_typed() {
        assert_eq!(Malloc::new(8192).try_alloc(0), Err(HeapError::ZeroAlloc));
    }

    #[test]
    fn stats_track_footprint() {
        let mut h = Malloc::new(8192);
        for _ in 0..1000 {
            h.alloc(20);
        }
        // 1000 * 32-byte pitch = 32000 bytes -> 4 pages.
        assert_eq!(h.stats().pages(), 4);
        assert_eq!(h.stats().allocations(), 1000);
    }

    #[test]
    fn hint_is_ignored() {
        let mut h = Malloc::new(8192);
        let a = h.alloc(20);
        let b = h.alloc_hint(20, Some(a));
        let c = h.alloc(20);
        assert_eq!(b - a, c - b, "hint changed nothing");
    }
}
