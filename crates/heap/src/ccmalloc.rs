//! **`ccmalloc`** — cache-conscious heap allocation (paper Section 3.2.1).
//!
//! `ccmalloc(size, hint)` is `malloc` with one extra argument: a pointer to
//! an existing structure element likely to be accessed contemporaneously
//! with the new one (e.g. the parent of a new tree node, or the list cell
//! ahead of a new cell — Figure 4 of the paper). The allocator tries to
//! put the new item:
//!
//! 1. in the **same L2 cache block** as the hint;
//! 2. failing that, in another block on the **same virtual-memory page**
//!    (reducing working set and TLB pressure, and guaranteeing the two
//!    items cannot conflict in the cache);
//! 3. failing that, on a fresh page.
//!
//! Step 2 admits three block-selection strategies, all evaluated in the
//! paper's Section 4.4: [`Strategy::Closest`], [`Strategy::NewBlock`]
//! (consistently the best performer, at some extra memory), and
//! [`Strategy::FirstFit`].
//!
//! `ccmalloc` is *safe* in the paper's sense: a bad hint can only cost
//! performance, never correctness.

use crate::error::HeapError;
use crate::fault::HeapFaultSchedule;
use crate::snapshot::{LayoutSnapshot, SnapshotLedger};
use crate::stats::HeapStats;
use crate::vspace::VirtualSpace;
use crate::Allocator;
use cc_sim::MachineConfig;
use std::collections::HashMap;

/// Block-selection strategy when the hinted cache block is full
/// (paper Section 3.2.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Allocate in the block *closest* to the hint's block on the page.
    Closest,
    /// Allocate in an *unused* cache block, optimistically reserving the
    /// rest of the block for future `ccmalloc` calls hinting at this item.
    NewBlock,
    /// First block on the page with sufficient empty space.
    FirstFit,
}

impl Strategy {
    /// All strategies, in the paper's presentation order.
    pub const ALL: [Strategy; 3] = [Strategy::Closest, Strategy::NewBlock, Strategy::FirstFit];

    /// Short label used in figure output ("CA", "NA", "FA" in Figure 7).
    pub fn label(&self) -> &'static str {
        match self {
            Strategy::Closest => "closest",
            Strategy::NewBlock => "new-block",
            Strategy::FirstFit => "first-fit",
        }
    }
}

/// Per-cache-block occupancy on a ccmalloc-managed page.
#[derive(Clone, Debug, Default)]
struct BlockState {
    /// Bump offset of the next free byte within the block.
    bump: u64,
    /// Live bytes (for block recycling after frees).
    live: u64,
    /// Freed slots `(offset, size)` available for reuse — without this,
    /// churn-heavy programs (health) leak partially-live blocks and the
    /// working set balloons past the cache.
    holes: Vec<(u16, u16)>,
}

impl BlockState {
    fn fits(&self, size: u64, block_bytes: u64) -> bool {
        self.bump + size <= block_bytes || self.holes.iter().any(|&(_, hs)| u64::from(hs) >= size)
    }
}

#[derive(Clone, Debug)]
struct PageState {
    blocks: Vec<BlockState>,
}

/// The cache-conscious allocator.
///
/// # Example
///
/// ```
/// use cc_heap::{Allocator, CcMalloc, Strategy};
/// use cc_sim::MachineConfig;
///
/// let mut heap = CcMalloc::new(&MachineConfig::ultrasparc_e5000(), Strategy::Closest);
/// let list_head = heap.alloc(24);
/// let cell = heap.alloc_hint(24, Some(list_head));
/// assert_eq!(list_head / 64, cell / 64, "same 64-byte L2 block");
/// ```
#[derive(Clone, Debug)]
pub struct CcMalloc {
    vspace: VirtualSpace,
    block_bytes: u64,
    page_bytes: u64,
    strategy: Strategy,
    pages: HashMap<u64, PageState>,
    /// Page used for hint-less allocations until it fills.
    current: Option<u64>,
    /// Live allocations: address → (size, page base). Pages the entry
    /// does not know about are large dedicated runs.
    live: HashMap<u64, (u64, Option<u64>)>,
    /// Requested sizes, birth order, and hints for `snapshot` (the `live`
    /// map holds *rounded* sizes, which drive block bookkeeping).
    ledger: SnapshotLedger,
    /// Blocks that drained back to empty, reusable by hint-less
    /// allocations (verified lazily when popped).
    empty_blocks: Vec<(u64, usize)>,
    /// Blocks with freed slots awaiting reuse (verified lazily when
    /// popped) — the analogue of malloc's free lists for the hint-less
    /// path.
    holey_blocks: Vec<(u64, usize)>,
    stats: HeapStats,
    /// Injected faults, keyed by allocation ordinal (empty by default).
    schedule: HeapFaultSchedule,
    /// Armed fresh-page denials already consumed.
    denials_fired: u64,
}

/// How an allocation ended up being placed, relative to its hint and the
/// fresh-page budget — the observable degradation level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Placement {
    /// On the hint's page (same cache block, or a strategy-selected block).
    Hinted,
    /// The regular hint-less policy (also where failed hints degrade to).
    Normal,
    /// Last-resort scavenging of existing pages after a fresh page was
    /// denied by an arena limit or an injected fault.
    Fallback,
}

/// Payload alignment. Four bytes, as on the paper's 32-bit SPARC: a
/// 20-byte tree node stays 20 bytes, so k = ⌊64/20⌋ = 3 nodes share an L2
/// block (the clustering factor Section 5.4 uses).
const ALIGN: u64 = 4;

impl CcMalloc {
    /// Creates a `ccmalloc` heap targeting `machine`'s L2 block and page
    /// size — the paper's choice: "ccmalloc focuses only on L2 cache
    /// blocks" because L1 blocks (16 bytes) are too small to co-locate
    /// multiple objects.
    pub fn new(machine: &MachineConfig, strategy: Strategy) -> Self {
        Self::with_geometry(machine.l2.block_bytes(), machine.page_bytes, strategy)
    }

    /// Creates a heap with explicit block/page geometry.
    ///
    /// # Panics
    ///
    /// Panics unless `block_bytes` divides `page_bytes`.
    pub fn with_geometry(block_bytes: u64, page_bytes: u64, strategy: Strategy) -> Self {
        assert!(
            page_bytes.is_multiple_of(block_bytes),
            "cache block must divide the page"
        );
        CcMalloc {
            vspace: VirtualSpace::new(page_bytes),
            block_bytes,
            page_bytes,
            strategy,
            pages: HashMap::new(),
            current: None,
            live: HashMap::new(),
            ledger: SnapshotLedger::default(),
            empty_blocks: Vec::new(),
            holey_blocks: Vec::new(),
            stats: HeapStats::new(page_bytes),
            schedule: HeapFaultSchedule::empty(),
            denials_fired: 0,
        }
    }

    /// The block-selection strategy.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// Installs a fault schedule (replacing any previous one). An empty
    /// schedule restores fault-free behaviour; denials already fired stay
    /// consumed.
    pub fn set_fault_schedule(&mut self, schedule: HeapFaultSchedule) {
        self.schedule = schedule;
    }

    /// The installed fault schedule.
    pub fn fault_schedule(&self) -> &HeapFaultSchedule {
        &self.schedule
    }

    /// Caps the pages this heap may claim from its virtual space; `None`
    /// removes the cap. Once the cap is hit, allocations degrade to the
    /// scavenging fallback and finally to
    /// [`HeapError::PageExhaustion`](crate::HeapError::PageExhaustion).
    pub fn set_page_limit(&mut self, limit: Option<u64>) {
        self.vspace.set_page_limit(limit);
    }

    /// The L2 cache-block size this heap co-locates into.
    pub fn block_bytes(&self) -> u64 {
        self.block_bytes
    }

    fn blocks_per_page(&self) -> usize {
        (self.page_bytes / self.block_bytes) as usize
    }

    /// Consumes one armed fresh-page denial, if the schedule has any left
    /// for this ordinal. Armed (rather than ordinal-exact) semantics
    /// guarantee the fault is observable: most allocations never reach a
    /// fresh-page request, so an exact match would usually be a no-op.
    fn fresh_denied(&mut self, ordinal: u64) -> bool {
        if self.denials_fired < self.schedule.denials_armed_through(ordinal) {
            self.denials_fired += 1;
            true
        } else {
            false
        }
    }

    fn try_new_page(&mut self, ordinal: u64) -> Result<u64, HeapError> {
        if self.fresh_denied(ordinal) {
            return Err(HeapError::PageExhaustion { pages: 1 });
        }
        let base = self.vspace.try_alloc_pages(1)?;
        self.stats.record_pages(1);
        self.pages.insert(
            base,
            PageState {
                blocks: vec![BlockState::default(); self.blocks_per_page()],
            },
        );
        Ok(base)
    }

    /// Last-resort search when fresh pages are denied: first block with
    /// room anywhere in the heap, scanning pages in address order (the
    /// `HashMap` iteration order is not deterministic, so the keys are
    /// sorted first — fault runs must replay bit-identically).
    fn scavenge_block(&self, size: u64) -> Option<(u64, usize)> {
        let mut keys: Vec<u64> = self.pages.keys().copied().collect();
        keys.sort_unstable();
        keys.into_iter().find_map(|page| {
            (0..self.blocks_per_page())
                .find(|&i| self.fits(page, i, size))
                .map(|i| (page, i))
        })
    }

    /// Last-resort search for a run of `nblocks` empty blocks anywhere.
    fn scavenge_run(&self, nblocks: usize) -> Option<(u64, usize)> {
        let mut keys: Vec<u64> = self.pages.keys().copied().collect();
        keys.sort_unstable();
        keys.into_iter()
            .find_map(|page| self.find_run(page, nblocks).map(|s| (page, s)))
    }

    fn fits(&self, page: u64, idx: usize, size: u64) -> bool {
        self.pages[&page].blocks[idx].fits(size, self.block_bytes)
    }

    fn place(&mut self, page: u64, idx: usize, size: u64) -> u64 {
        let block_bytes = self.block_bytes;
        let st = &mut self.pages.get_mut(&page).expect("page exists").blocks[idx];
        // Prefer refilling a freed slot; fall back to the bump frontier.
        let offset = match st.holes.iter().position(|&(_, hs)| u64::from(hs) >= size) {
            Some(h) => {
                let (off, hs) = st.holes[h];
                if u64::from(hs) == size {
                    st.holes.swap_remove(h);
                } else {
                    st.holes[h] = (off + size as u16, hs - size as u16);
                }
                u64::from(off)
            }
            None => {
                debug_assert!(st.bump + size <= block_bytes);
                let off = st.bump;
                st.bump += size;
                off
            }
        };
        let addr = page + idx as u64 * block_bytes + offset;
        st.live += size;
        self.live.insert(addr, (size, Some(page)));
        addr
    }

    /// Picks a block on `page` per the strategy; `None` if the page can't
    /// take this allocation.
    fn select_block(&self, page: u64, near: usize, size: u64) -> Option<usize> {
        let n = self.blocks_per_page();
        match self.strategy {
            Strategy::Closest => (1..n).find_map(|d| {
                // Alternate outward from the hint block.
                let lo = near.checked_sub(d);
                let hi = (near + d < n).then_some(near + d);
                [lo, hi]
                    .into_iter()
                    .flatten()
                    .find(|&i| self.fits(page, i, size))
            }),
            Strategy::NewBlock => (0..n).find(|&i| self.pages[&page].blocks[i].bump == 0),
            Strategy::FirstFit => (0..n).find(|&i| self.fits(page, i, size)),
        }
    }

    /// Finds `nblocks` consecutive empty blocks on `page`.
    fn find_run(&self, page: u64, nblocks: usize) -> Option<usize> {
        let blocks = &self.pages[&page].blocks;
        (0..blocks.len().saturating_sub(nblocks - 1))
            .find(|&s| blocks[s..s + nblocks].iter().all(|b| b.bump == 0))
    }

    /// Claims a block run for one multi-block allocation.
    fn place_run(&mut self, page: u64, start: usize, size: u64) -> u64 {
        let block = self.block_bytes;
        let blocks = &mut self.pages.get_mut(&page).expect("page exists").blocks;
        let mut remaining = size;
        let mut i = start;
        while remaining > 0 {
            let covered = remaining.min(block);
            blocks[i].bump = block;
            blocks[i].live += covered;
            remaining -= covered;
            i += 1;
        }
        let addr = page + start as u64 * block;
        self.live.insert(addr, (size, Some(page)));
        addr
    }

    fn try_alloc_sized(
        &mut self,
        size: u64,
        hint: Option<u64>,
        ordinal: u64,
    ) -> Result<(u64, Placement), HeapError> {
        // Large objects get dedicated page runs, as in the baseline; no
        // existing page can absorb them, so a denied request is terminal.
        if size > self.page_bytes / 2 {
            let pages = size.div_ceil(self.page_bytes);
            if self.fresh_denied(ordinal) {
                return Err(HeapError::PageExhaustion { pages });
            }
            let addr = self.vspace.try_alloc_pages(pages)?;
            self.stats.record_pages(pages);
            self.live.insert(addr, (size, None));
            return Ok((addr, Placement::Normal));
        }

        // Objects bigger than a cache block take a run of whole blocks —
        // co-location within a block is moot, but same-page placement
        // still helps, so try the hint's page first.
        if size > self.block_bytes {
            let nblocks = size.div_ceil(self.block_bytes) as usize;
            let hint_page = hint
                .map(|h| h & !(self.page_bytes - 1))
                .filter(|p| self.pages.contains_key(p));
            for page in [hint_page, self.current].into_iter().flatten() {
                if let Some(start) = self.find_run(page, nblocks) {
                    let placement = if Some(page) == hint_page {
                        Placement::Hinted
                    } else {
                        Placement::Normal
                    };
                    return Ok((self.place_run(page, start, size), placement));
                }
            }
            return match self.try_new_page(ordinal) {
                Ok(page) => {
                    self.current = Some(page);
                    Ok((self.place_run(page, 0, size), Placement::Normal))
                }
                Err(e) => match self.scavenge_run(nblocks) {
                    Some((page, start)) => {
                        Ok((self.place_run(page, start, size), Placement::Fallback))
                    }
                    None => Err(e),
                },
            };
        }

        if let Some(h) = hint {
            let page = h & !(self.page_bytes - 1);
            if self.pages.contains_key(&page) {
                let idx = ((h - page) / self.block_bytes) as usize;
                // 1. Same cache block as the hint.
                if self.fits(page, idx, size) {
                    return Ok((self.place(page, idx, size), Placement::Hinted));
                }
                // 2. Same page, strategy-selected block.
                if let Some(i) = self.select_block(page, idx, size) {
                    return Ok((self.place(page, i, size), Placement::Hinted));
                }
            }
            // 3. The hint's page is full (or foreign): co-location is
            // impossible, so degrade to a normal allocation — burning a
            // fresh page per failed hint would explode the footprint.
        }

        // Hint-less path: sequential first-fit through the current page…
        if let Some(page) = self.current {
            if let Some(i) = (0..self.blocks_per_page()).find(|&i| self.fits(page, i, size)) {
                return Ok((self.place(page, i, size), Placement::Normal));
            }
        }
        // …then freed slots anywhere (malloc's free-list behaviour:
        // stranding holes on old pages would balloon the footprint)…
        while let Some((page, idx)) = self.holey_blocks.pop() {
            if self.fits(page, idx, size) {
                let addr = self.place(page, idx, size);
                if !self.pages[&page].blocks[idx].holes.is_empty() {
                    self.holey_blocks.push((page, idx));
                }
                return Ok((addr, Placement::Normal));
            }
        }
        // …then a recycled empty block…
        while let Some((page, idx)) = self.empty_blocks.pop() {
            let st = &self.pages[&page].blocks[idx];
            if st.bump == 0 && st.live == 0 {
                return Ok((self.place(page, idx, size), Placement::Normal));
            }
        }
        // …then a fresh page — and only if that is denied, scavenge any
        // block with room anywhere in the heap (the paper's "if space
        // permits" degraded to "wherever space remains").
        match self.try_new_page(ordinal) {
            Ok(page) => {
                self.current = Some(page);
                Ok((self.place(page, 0, size), Placement::Normal))
            }
            Err(e) => match self.scavenge_block(size) {
                Some((page, idx)) => Ok((self.place(page, idx, size), Placement::Fallback)),
                None => Err(e),
            },
        }
    }
}

impl Allocator for CcMalloc {
    fn try_alloc_hint(&mut self, size: u64, hint: Option<u64>) -> Result<u64, HeapError> {
        if size == 0 {
            return Err(HeapError::ZeroAlloc);
        }
        let ordinal = self.stats.allocations();
        // The schedule may drop or corrupt the hint used for *placement*;
        // the ledger records what the caller asked for, so audits compare
        // requested co-location against what actually happened.
        let effective = self.schedule.tamper(ordinal, hint);
        let rounded = size.div_ceil(ALIGN) * ALIGN;
        let (addr, placement) = self.try_alloc_sized(rounded, effective, ordinal)?;
        self.stats.record_alloc(size);
        if hint.is_some() && placement != Placement::Hinted {
            self.stats.record_degraded();
        }
        if placement == Placement::Fallback {
            self.stats.record_fallback();
        }
        self.ledger.record(addr, size, hint);
        Ok(addr)
    }

    fn try_free(&mut self, addr: u64) -> Result<(), HeapError> {
        let (size, page) = self
            .live
            .remove(&addr)
            .ok_or(HeapError::InvalidFree { addr })?;
        self.ledger.forget(addr);
        self.stats.record_free(size);
        if let Some(page) = page {
            // Walk the covered blocks (one for intra-block allocations, a
            // run for multi-block ones).
            let block_bytes = self.block_bytes;
            let blocks = &mut self.pages.get_mut(&page).expect("page exists").blocks;
            let mut remaining = size;
            let mut idx = ((addr - page) / block_bytes) as usize;
            let single_block = size <= block_bytes;
            while remaining > 0 {
                let covered = remaining.min(block_bytes);
                let st = &mut blocks[idx];
                st.live = st.live.saturating_sub(covered);
                if st.live == 0 {
                    // Whole block free again: recycle it.
                    st.bump = 0;
                    st.holes.clear();
                    self.empty_blocks.push((page, idx));
                } else if single_block {
                    // Record the slot for reuse by later allocations.
                    let off = (addr - page - idx as u64 * block_bytes) as u16;
                    st.holes.push((off, covered as u16));
                    self.holey_blocks.push((page, idx));
                }
                remaining -= covered;
                idx += 1;
            }
        }
        Ok(())
    }

    fn stats(&self) -> &HeapStats {
        &self.stats
    }

    fn snapshot(&self) -> LayoutSnapshot {
        self.ledger.snapshot()
    }

    fn cost_insts(&self) -> u32 {
        // Hint lookup + page/block bookkeeping costs more than a
        // free-list pop — the overhead the control experiment measures.
        60
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn heap(s: Strategy) -> CcMalloc {
        CcMalloc::with_geometry(64, 8192, s)
    }

    #[test]
    fn hint_colocates_in_block() {
        for s in Strategy::ALL {
            let mut h = heap(s);
            let a = h.alloc(20);
            let b = h.alloc_hint(20, Some(a));
            let c = h.alloc_hint(20, Some(a));
            assert_eq!(a / 64, b / 64, "{s:?}");
            assert_eq!(a / 64, c / 64, "{s:?}");
        }
    }

    #[test]
    fn full_block_overflows_per_strategy() {
        // Fill block 0 with three 20-byte items (60/64 used).
        let build = |s| {
            let mut h = heap(s);
            let a = h.alloc(20);
            h.alloc_hint(20, Some(a));
            h.alloc_hint(20, Some(a));
            let d = h.alloc_hint(20, Some(a)); // block full -> strategy
            (a, d)
        };
        let (a, d) = build(Strategy::Closest);
        assert_eq!(d / 64, a / 64 + 1, "closest picks the adjacent block");
        let (a, d) = build(Strategy::FirstFit);
        assert_eq!(d / 64, a / 64 + 1, "block 1 is the first with space");
        let (a, d) = build(Strategy::NewBlock);
        assert_eq!(d / 64, a / 64 + 1, "block 1 is also the first unused");
        assert_eq!(d % 8192 / 64, 1);
    }

    #[test]
    fn new_block_reserves_space() {
        let mut h = heap(Strategy::NewBlock);
        let a = h.alloc(20); // block 0
        let b = h.alloc(20); // hint-less: first-fit -> block 0 too
        assert_eq!(a / 64, b / 64);
        // Fill block 0.
        h.alloc_hint(20, Some(a));
        // Overflow with NewBlock: lands in block 1 (first unused).
        let d = h.alloc_hint(20, Some(a));
        // A second hinted overflow from `a` cannot reuse block 1
        // (it's used now): goes to block 2.
        let e = h.alloc_hint(60, Some(a));
        assert_eq!(d % 8192 / 64, 1);
        assert_eq!(e % 8192 / 64, 2);
        // But a hint at `d` shares d's block.
        let f = h.alloc_hint(20, Some(d));
        assert_eq!(d / 64, f / 64);
    }

    #[test]
    fn same_page_fallback() {
        let mut h = heap(Strategy::Closest);
        let a = h.alloc(60); // nearly fills block 0
        let b = h.alloc_hint(60, Some(a));
        assert_ne!(a / 64, b / 64);
        assert_eq!(a / 8192, b / 8192, "same page");
    }

    #[test]
    fn fresh_page_when_page_exhausted() {
        let mut h = heap(Strategy::FirstFit);
        let a = h.alloc(60);
        // Exhaust the page: 128 blocks of 64 bytes.
        for _ in 0..127 {
            h.alloc_hint(60, Some(a));
        }
        let z = h.alloc_hint(60, Some(a));
        assert_ne!(a / 8192, z / 8192);
        assert_eq!(h.stats().pages(), 2);
    }

    #[test]
    fn new_block_uses_more_memory() {
        // The Section 4.4 memory-overhead effect: hinted leaf allocations
        // under NewBlock burn a block each.
        let run = |s| {
            let mut h = heap(s);
            let mut parent = h.alloc(20);
            for i in 0..2000 {
                let c = h.alloc_hint(20, Some(parent));
                if i % 2 == 0 {
                    parent = c;
                }
            }
            h.stats().footprint_bytes()
        };
        let nb = run(Strategy::NewBlock);
        let ff = run(Strategy::FirstFit);
        assert!(nb >= ff, "new-block {nb} vs first-fit {ff}");
    }

    #[test]
    fn free_recycles_empty_blocks() {
        let mut h = heap(Strategy::FirstFit);
        let a = h.alloc(60);
        h.free(a);
        let b = h.alloc(60);
        assert_eq!(a, b, "block was recycled after emptying");
    }

    #[test]
    fn large_allocations_bypass_blocks() {
        let mut h = heap(Strategy::NewBlock);
        let a = h.alloc(8192);
        assert_eq!(a % 8192, 0);
        h.free(a);
    }

    #[test]
    fn alignment_keeps_three_nodes_per_block() {
        let mut h = heap(Strategy::FirstFit);
        let a = h.alloc(20);
        let b = h.alloc_hint(20, Some(a));
        let c = h.alloc_hint(20, Some(a));
        assert_eq!(b - a, 20);
        assert_eq!(c - b, 20);
    }

    #[test]
    fn multi_block_allocations_take_block_runs() {
        let mut h = heap(Strategy::FirstFit);
        let a = h.alloc(65); // needs 2 blocks
        assert_eq!(a % 64, 0, "run starts block-aligned");
        let b = h.alloc(1);
        assert!(
            b >= a + 128,
            "next alloc skips the whole run: {b:#x} vs {a:#x}"
        );
        h.free(a);
        let c = h.alloc(65);
        assert_eq!(c, a, "freed run is recycled");
    }

    #[test]
    fn multi_block_prefers_hint_page() {
        let mut h = heap(Strategy::NewBlock);
        let small = h.alloc(20);
        let big = h.alloc_hint(200, Some(small));
        assert_eq!(small / 8192, big / 8192, "same page as the hint");
    }

    #[test]
    #[should_panic(expected = "zero-byte")]
    fn zero_alloc_rejected() {
        heap(Strategy::Closest).alloc(0);
    }

    #[test]
    fn zero_alloc_is_typed() {
        assert_eq!(
            heap(Strategy::Closest).try_alloc(0),
            Err(HeapError::ZeroAlloc)
        );
    }

    #[test]
    fn double_free_is_typed_invalid_free() {
        let mut h = heap(Strategy::NewBlock);
        let a = h.alloc(20);
        assert_eq!(h.try_free(a), Ok(()));
        assert_eq!(h.try_free(a), Err(HeapError::InvalidFree { addr: a }));
    }

    #[test]
    #[should_panic(expected = "non-live address")]
    fn double_free_panics_via_wrapper() {
        let mut h = heap(Strategy::NewBlock);
        let a = h.alloc(20);
        h.free(a);
        h.free(a);
    }

    #[test]
    fn denied_fresh_page_scavenges_partially_used_blocks() {
        let mut h = heap(Strategy::FirstFit);
        let a = h.alloc(20); // page 1, block 0: 44 bytes left
        for _ in 0..127 {
            h.alloc(64); // fill the rest of page 1
        }
        h.alloc(64); // page 2 (current)
        for _ in 0..127 {
            h.alloc(64); // fill page 2
        }
        h.set_page_limit(Some(2));
        // No block on the current page fits, no holes, no empties, no
        // fresh page allowed — scavenging finds block 0's leftover.
        let b = h.try_alloc(40).unwrap();
        assert_eq!(b, a + 20, "packed behind the first allocation");
        assert_eq!(h.stats().fallback_allocations(), 1);
        // Nothing left that can take 60 bytes: typed exhaustion.
        assert_eq!(h.try_alloc(60), Err(HeapError::PageExhaustion { pages: 1 }));
        // Failed allocations are invisible in the stats.
        assert_eq!(h.stats().allocations(), 257);
    }

    #[test]
    fn armed_denial_fires_at_next_fresh_page_request() {
        let mut h = CcMalloc::with_geometry(64, 256, Strategy::FirstFit);
        h.alloc(60); // page 1 exists before the schedule is installed
        let mut s = HeapFaultSchedule::empty();
        s.deny_fresh_page.insert(1);
        h.set_fault_schedule(s);
        for _ in 0..3 {
            h.alloc(60); // ordinals 1-3 never need a fresh page: still armed
        }
        // Ordinal 4 needs a fresh page; the armed denial fires and the
        // full heap has nothing to scavenge for 60 bytes.
        assert_eq!(h.try_alloc(60), Err(HeapError::PageExhaustion { pages: 1 }));
        // One-shot: the next request gets its fresh page and recovers.
        assert!(h.try_alloc(60).is_ok());
        assert_eq!(h.stats().pages(), 2);
    }

    #[test]
    fn corrupted_hint_degrades_placement_but_not_ledger() {
        let mut h = heap(Strategy::FirstFit);
        let a = h.alloc(20);
        let mut s = HeapFaultSchedule::empty();
        s.corrupt_hint.insert(1, 1 << 40); // a page this heap never owned
        h.set_fault_schedule(s);
        let b = h.alloc_hint(20, Some(a));
        assert_eq!(h.stats().degraded_hints(), 1);
        // The snapshot reports the co-location the caller *requested*, so
        // audits can flag the degradation.
        let snap = h.snapshot();
        let rec = snap
            .records()
            .iter()
            .find(|r| r.addr == b)
            .expect("allocation recorded");
        assert_eq!(rec.hint, Some(a));
    }

    #[test]
    fn dropped_hint_is_counted_as_degraded() {
        let mut h = heap(Strategy::NewBlock);
        let a = h.alloc(20);
        let mut s = HeapFaultSchedule::empty();
        s.drop_hint.insert(1);
        h.set_fault_schedule(s);
        h.alloc_hint(20, Some(a));
        assert_eq!(h.stats().degraded_hints(), 1);
        // An honored hint afterwards is not degraded.
        h.alloc_hint(20, Some(a));
        assert_eq!(h.stats().degraded_hints(), 1);
        assert_eq!(h.stats().fallback_allocations(), 0);
    }

    #[test]
    fn machine_constructor_uses_l2_geometry() {
        let h = CcMalloc::new(&MachineConfig::ultrasparc_e5000(), Strategy::NewBlock);
        assert_eq!(h.block_bytes(), 64);
    }
}
