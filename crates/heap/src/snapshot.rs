//! Point-in-time heap layout snapshots — the input side of `cc-audit`.
//!
//! The paper's techniques make *structural* claims about where elements
//! land (same cache block as the hint, hot elements in hot sets, …).
//! Checking those claims needs a queryable picture of the live heap:
//! every allocation's address, size, birth order, and the placement hint
//! it was requested with. [`LayoutSnapshot`] is that picture, produced by
//! [`Allocator::snapshot`](crate::Allocator::snapshot) on every
//! allocator — including the baseline `Malloc`, which records the hints
//! it *ignored* so an auditor can measure what co-location was asked for
//! but not delivered.

use std::collections::HashMap;

/// One live allocation, as the allocator saw it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AllocRecord {
    /// Payload start address.
    pub addr: u64,
    /// Requested payload size in bytes (before any allocator rounding).
    pub size: u64,
    /// Birth order: the 0-based index of the `alloc`/`alloc_hint` call
    /// that produced this record. Ids are never reused, so they order
    /// allocations even across frees.
    pub id: u64,
    /// The placement hint passed at allocation time, whether or not the
    /// allocator honoured it. `None` for hint-less allocations.
    pub hint: Option<u64>,
}

impl AllocRecord {
    /// Exclusive end address of the payload.
    pub fn end(&self) -> u64 {
        self.addr + self.size
    }

    /// Whether `addr` falls inside this allocation's payload.
    pub fn contains(&self, addr: u64) -> bool {
        self.addr <= addr && addr < self.end()
    }
}

/// An immutable, address-ordered view of all live allocations.
///
/// # Example
///
/// ```
/// use cc_heap::{Allocator, Malloc};
///
/// let mut heap = Malloc::new(8192);
/// let a = heap.alloc(20);
/// let b = heap.alloc_hint(20, Some(a));
/// let snap = heap.snapshot();
/// assert_eq!(snap.len(), 2);
/// assert_eq!(snap.record_at(b).unwrap().hint, Some(a));
/// ```
#[derive(Clone, Debug, Default)]
pub struct LayoutSnapshot {
    /// Sorted by `addr`; allocations never overlap.
    records: Vec<AllocRecord>,
}

impl LayoutSnapshot {
    /// Builds a snapshot from unordered records.
    ///
    /// # Panics
    ///
    /// Panics if two records overlap — live allocations are disjoint by
    /// construction, so an overlap is an allocator bug worth failing
    /// loudly on.
    pub fn from_records(mut records: Vec<AllocRecord>) -> Self {
        records.sort_by_key(|r| r.addr);
        for pair in records.windows(2) {
            assert!(
                pair[0].end() <= pair[1].addr,
                "overlapping allocations: {:#x}+{} and {:#x}",
                pair[0].addr,
                pair[0].size,
                pair[1].addr,
            );
        }
        LayoutSnapshot { records }
    }

    /// All records, in address order.
    pub fn records(&self) -> &[AllocRecord] {
        &self.records
    }

    /// Number of live allocations.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the heap is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The record whose payload contains `addr`, if any.
    pub fn record_at(&self, addr: u64) -> Option<&AllocRecord> {
        let idx = self.records.partition_point(|r| r.addr <= addr);
        let r = &self.records[idx.checked_sub(1)?];
        r.contains(addr).then_some(r)
    }

    /// Total live payload bytes.
    pub fn live_bytes(&self) -> u64 {
        self.records.iter().map(|r| r.size).sum()
    }
}

/// Bookkeeping an allocator keeps per live allocation so it can answer
/// [`Allocator::snapshot`](crate::Allocator::snapshot). Shared by both
/// allocator implementations.
#[derive(Clone, Debug, Default)]
pub(crate) struct SnapshotLedger {
    /// Address → (requested size, id, hint).
    live: HashMap<u64, (u64, u64, Option<u64>)>,
    next_id: u64,
}

impl SnapshotLedger {
    /// Records a new allocation, assigning it the next birth id.
    pub(crate) fn record(&mut self, addr: u64, size: u64, hint: Option<u64>) {
        let id = self.next_id;
        self.next_id += 1;
        self.live.insert(addr, (size, id, hint));
    }

    /// Drops and returns the `(size, id, hint)` record for a freed
    /// allocation, so the caller can double as the boundary tag.
    pub(crate) fn forget(&mut self, addr: u64) -> Option<(u64, u64, Option<u64>)> {
        self.live.remove(&addr)
    }

    /// Materializes the snapshot.
    pub(crate) fn snapshot(&self) -> LayoutSnapshot {
        LayoutSnapshot::from_records(
            self.live
                .iter()
                .map(|(&addr, &(size, id, hint))| AllocRecord {
                    addr,
                    size,
                    id,
                    hint,
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_sorted_and_queryable() {
        let snap = LayoutSnapshot::from_records(vec![
            AllocRecord {
                addr: 0x200,
                size: 16,
                id: 1,
                hint: Some(0x100),
            },
            AllocRecord {
                addr: 0x100,
                size: 32,
                id: 0,
                hint: None,
            },
        ]);
        assert_eq!(snap.records()[0].addr, 0x100);
        assert_eq!(snap.record_at(0x11f).unwrap().id, 0);
        assert!(snap.record_at(0x120).is_none());
        assert_eq!(snap.record_at(0x20f).unwrap().hint, Some(0x100));
        assert_eq!(snap.live_bytes(), 48);
    }

    #[test]
    #[should_panic(expected = "overlapping")]
    fn overlap_is_rejected() {
        LayoutSnapshot::from_records(vec![
            AllocRecord {
                addr: 0x100,
                size: 32,
                id: 0,
                hint: None,
            },
            AllocRecord {
                addr: 0x110,
                size: 8,
                id: 1,
                hint: None,
            },
        ]);
    }

    #[test]
    fn ledger_assigns_birth_order_across_frees() {
        let mut ledger = SnapshotLedger::default();
        ledger.record(0x100, 8, None);
        ledger.forget(0x100);
        ledger.record(0x100, 8, Some(0x50));
        let snap = ledger.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap.records()[0].id, 1, "ids are not reused");
    }
}
